// bassctl — operator CLI for the BASS simulator.
//
//   bassctl validate <scenario.ini>        check a scenario without running
//   bassctl run <scenario.ini> [--journal out.jsonl] [--metrics out.json]
//               [--trace out.trace.json] [--prom out.prom]
//                                          run it and print the report;
//                                          optionally export the event
//                                          journal (JSON Lines), metrics
//                                          snapshot (JSON or Prometheus
//                                          text), and Perfetto trace
//   bassctl events <journal.jsonl> [--type T] [--since S] [--until S]
//                  [--last N]               filter/pretty-print a journal
//   bassctl report <journal.jsonl> [--metrics metrics.json] [--prom out.prom]
//                                          post-mortem: event census,
//                                          decision-latency percentiles,
//                                          fault timeline, and causal
//                                          round->decision->migration chains.
//                                          Sharded artifacts (merged journal,
//                                          zone-labelled metrics) additionally
//                                          get a per-zone census and per-zone
//                                          + pooled latency rows
//   bassctl journal query <journal.jsonl> [--type T] [--span N]
//                  [--since-us U] [--last N]
//                                          raw JSONL queries; --span selects
//                                          a causal span and every event it
//                                          transitively caused
//   bassctl serve <scenario.ini> [--duration S] [--arrival-rate R]
//                 [--mode static|adaptive|dynamic] [--seed N]
//                 [--policy fifo|reject|defer] [--journal out.jsonl]
//                 [--metrics out.json] [--trace out.trace.json] [--prom out.prom]
//                                          long-running control-plane mode:
//                                          churn arrivals/departures through
//                                          the admission queue; prints
//                                          admission + decision latency
//                                          percentiles. Flags override the
//                                          ini's [serve]/[run] sections (a
//                                          missing [serve] section is
//                                          created), so any mesh-only
//                                          scenario can serve. With a
//                                          [zones] section the run shards
//                                          across per-zone solver worlds on
//                                          --jobs workers (default 1;
//                                          0 = one per zone) with border
//                                          reconciliation between rounds
//   bassctl dot <scenario.ini> [out.dot]   export the initial placement
//   bassctl trace --mean-mbps M [--stddev-frac F] [--duration-s S]
//                 [--fades] [--seed N] [--out trace.csv]
//                                          generate a bandwidth trace CSV
//   bassctl chaos <scenario.ini> [--seeds N] [--base-seed B] [--jobs N]
//                 [--journal-dir DIR] [--flight-dir DIR]
//                                          run the scenario's [chaos]/[fault]
//                                          plan under N seeds (fanned across
//                                          N worker threads), report
//                                          recovery-time and failed-placement
//                                          stats, verify per-seed determinism
//   bassctl sweep <scenario.ini> [--thresholds a,b,..] [--headrooms a,b,..]
//                 [--seeds N] [--base-seed B] [--jobs N] [--out sweep.json]
//                                          parameter-grid sweep over the
//                                          migration controller (threshold ×
//                                          headroom × seed), in parallel,
//                                          with deterministic output order
//
// The global --log-level {debug,info,warn,error,off} flag (or the BASS_LOG
// environment variable) controls library logging on stderr.
#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "app/dot.h"
#include "exec/sweep.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "scenario/scenario.h"
#include "trace/generator.h"
#include "util/logging.h"
#include "util/strings.h"
#include "zone/sharded.h"

using namespace bass;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bassctl [--log-level L] validate <scenario.ini>\n"
               "  bassctl [--log-level L] run <scenario.ini> [--journal out.jsonl]\n"
               "          [--metrics out.json] [--trace out.trace.json] [--prom out.prom]\n"
               "  bassctl events <journal.jsonl> [--type T] [--since S] [--until S]\n"
               "                 [--last N]\n"
               "  bassctl report <journal.jsonl> [--metrics metrics.json]\n"
               "                 [--prom out.prom]\n"
               "  bassctl journal query <journal.jsonl> [--type T] [--span N]\n"
               "                 [--since-us U] [--last N]\n"
               "  bassctl serve <scenario.ini> [--duration S] [--arrival-rate R]\n"
               "                [--jobs N]\n"
               "                [--mode static|adaptive|dynamic] [--seed N]\n"
               "                [--policy fifo|reject|defer] [--journal out.jsonl]\n"
               "                [--metrics out.json] [--trace out.trace.json]\n"
               "                [--prom out.prom]\n"
               "  bassctl dot <scenario.ini> [out.dot]\n"
               "  bassctl trace --mean-mbps M [--stddev-frac F] [--duration-s S]\n"
               "                [--fades] [--seed N] [--out trace.csv]\n"
               "  bassctl chaos <scenario.ini> [--seeds N] [--base-seed B]\n"
               "                [--jobs N] [--journal-dir DIR] [--flight-dir DIR]\n"
               "  bassctl sweep <scenario.ini> [--thresholds a,b,..] [--headrooms a,b,..]\n"
               "                [--seeds N] [--base-seed B] [--jobs N] [--out sweep.json]\n");
  return 2;
}

// Strict integer parsing for count-like flags: the whole token must be a
// base-10 unsigned integer within range. Unlike atoi, garbage ("abc",
// "12x", "", negatives) is rejected with a clear message instead of
// silently collapsing to 0.
bool parse_u64_flag(const char* flag, const std::string& text,
                    std::uint64_t min_value, std::uint64_t& out) {
  const char* begin = text.c_str();
  const char* end = begin + text.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (text.empty() || ec != std::errc() || ptr != end || value < min_value) {
    std::fprintf(stderr, "bassctl: %s expects an integer >= %llu, got '%s'\n",
                 flag, static_cast<unsigned long long>(min_value), text.c_str());
    return false;
  }
  out = value;
  return true;
}

// Comma-separated list of fractions in (0, 1], e.g. "0.25,0.5,0.95".
bool parse_fraction_list(const char* flag, const std::string& text,
                         std::vector<double>& out) {
  out.clear();
  for (const std::string& piece : util::split(text, ',')) {
    const std::string token = util::trim(piece);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() || value <= 0 ||
        value > 1) {
      std::fprintf(stderr,
                   "bassctl: %s expects comma-separated fractions in (0, 1], got '%s'\n",
                   flag, text.c_str());
      return false;
    }
    out.push_back(value);
  }
  if (out.empty()) {
    std::fprintf(stderr, "bassctl: %s expects at least one value\n", flag);
    return false;
  }
  return true;
}

int cmd_validate(const std::string& path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  if (scene.serving() != nullptr) {
    std::printf("OK: serving scenario on %zu nodes, %.0f s run\n",
                static_cast<std::size_t>(scene.network().topology().node_count()),
                sim::to_seconds(scene.duration()));
    return 0;
  }
  std::printf("OK: %d components on %zu nodes, %.0f s run\n",
              scene.app().component_count(),
              static_cast<std::size_t>(scene.network().topology().node_count()),
              sim::to_seconds(scene.duration()));
  return 0;
}

// Shared --journal/--metrics/--trace/--prom export tail of run and serve.
int export_observability(scenario::Scenario& scene, const std::string& journal_path,
                         const std::string& metrics_path, const std::string& trace_path,
                         const std::string& prom_path) {
  const obs::Recorder& recorder = scene.recorder();
  if (!journal_path.empty()) {
    if (!recorder.journal().write_jsonl(journal_path)) {
      std::fprintf(stderr, "cannot write '%s'\n", journal_path.c_str());
      return 1;
    }
    std::printf("journal    %zu events -> %s (%lld dropped)\n",
                recorder.journal().size(), journal_path.c_str(),
                static_cast<long long>(recorder.journal().dropped()));
  }
  if (!metrics_path.empty()) {
    if (!recorder.metrics().write_json(metrics_path, scene.now())) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics    %zu instruments -> %s\n",
                recorder.metrics().instrument_count(), metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!recorder.journal().write_trace(trace_path)) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace      %s (open in https://ui.perfetto.dev)\n", trace_path.c_str());
  }
  if (!prom_path.empty()) {
    std::ofstream out(prom_path);
    if (!out || !(out << recorder.metrics().to_prometheus(scene.now()))) {
      std::fprintf(stderr, "cannot write '%s'\n", prom_path.c_str());
      return 1;
    }
    std::printf("prom       %zu instruments -> %s\n",
                recorder.metrics().instrument_count(), prom_path.c_str());
  }
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string path;
  std::string journal_path, metrics_path, trace_path, prom_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--journal" && i + 1 < args.size()) {
      journal_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--prom" && i + 1 < args.size()) {
      prom_path = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  const auto report = scene.run();
  if (report.median_bitrate_bps.empty()) {
    std::printf("requests   %lld issued, %lld completed, %lld shed\n",
                static_cast<long long>(report.requests_issued),
                static_cast<long long>(report.requests_completed),
                static_cast<long long>(report.requests_shed));
    std::printf("latency    mean %.1f ms | median %.1f ms | p99 %.1f ms\n",
                report.latency_mean_ms, report.latency_median_ms,
                report.latency_p99_ms);
  } else {
    for (const auto& [node, bps] : report.median_bitrate_bps) {
      std::printf("bitrate    %-12s median %7.0f Kbps per client\n",
                  scene.node_name(node).c_str(), bps / 1e3);
    }
  }
  std::printf("migrations %zu\n", report.migrations);
  std::printf("probes     %.2f MB\n", static_cast<double>(report.probe_bytes) / 1e6);
  if (report.faults_injected > 0 || report.invariant_violations > 0) {
    std::printf("faults     %d injected, %d invariant violations\n",
                report.faults_injected, report.invariant_violations);
  }
  return export_observability(scene, journal_path, metrics_path, trace_path,
                              prom_path);
}

// ---- bassctl serve ----

// Sharded serve: a [zones] section routes the scenario through one solver
// world per zone with border reconciliation between rounds, overlapping
// zone rounds on --jobs workers. Same seed + any --jobs value produce a
// byte-identical --journal.
int serve_sharded(const util::IniFile& ini, std::uint64_t jobs,
                  const std::string& journal_path, const std::string& metrics_path,
                  const std::string& trace_path, const std::string& prom_path) {
  auto built =
      zone::ShardedOrchestrator::from_ini(ini, static_cast<std::size_t>(jobs));
  if (!built.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", built.error().c_str());
    return 1;
  }
  auto orch = built.take();
  const zone::ShardedReport report = orch->run();

  const zone::Partition& part = orch->partition();
  std::printf("zones      %d zones over %zu nodes, %zu border links,"
              " %zu transit streams",
              orch->zones(), part.zone_of.size(), report.border_links,
              report.transit_streams);
  if (report.transit_unroutable > 0) {
    std::printf(" (%zu unroutable)", report.transit_unroutable);
  }
  std::printf("\n");
  std::printf("rounds     %d rounds, %lld reconcile iterations\n", report.rounds,
              static_cast<long long>(report.reconcile_iterations));
  std::printf("gating     %lld zone-rounds full, %lld skipped (tick only);"
              " %lld border rebuilds across %zu components, %lld reconciles"
              " skipped\n",
              static_cast<long long>(report.zone_rounds_full),
              static_cast<long long>(report.zone_rounds_skipped),
              static_cast<long long>(report.border_rebuilds),
              report.border_components,
              static_cast<long long>(report.reconcile_rounds_skipped));
  std::printf("churn      %lld arrivals, %lld departures (%lld cancelled in"
              " queue), %d live at end\n",
              static_cast<long long>(report.serve_arrivals),
              static_cast<long long>(report.serve_departures),
              static_cast<long long>(report.serve_cancelled),
              report.serve_live_at_end);
  std::printf("admission  %lld admitted, %lld rejected, %lld deferred"
              " (peak queue depth %d)\n",
              static_cast<long long>(report.serve_admitted),
              static_cast<long long>(report.serve_rejected),
              static_cast<long long>(report.serve_deferred),
              report.serve_peak_queue_depth);
  std::printf("migrations %zu\n", report.migrations);

  // Pooled SLOs: finish() folded every zone's instruments into the
  // coordinator registry under {zone} labels; merging them back gives the
  // city-wide distribution in the same format the unsharded path prints.
  obs::MetricsRegistry& metrics = orch->recorder().metrics();
  obs::LogHistogram wait, decision;
  metrics.for_each_log_histogram(
      [&](const std::string& name, const obs::Labels&, const obs::LogHistogram& h) {
        if (name == "orchestrator.admission_wait_us") wait.merge(h);
        if (name == "orchestrator.decision_us") decision.merge(h);
      });
  if (wait.count() > 0) {
    std::printf("admission latency: p50 %.1f ms, p99 %.1f ms, max %.1f ms"
                " over %lld decisions\n",
                wait.percentile(0.50) / 1e3, wait.percentile(0.99) / 1e3,
                wait.max() / 1e3, static_cast<long long>(wait.count()));
  }
  if (decision.count() > 0) {
    std::printf("decision latency:  p50 %.1f us, p99 %.1f us, max %.1f us"
                " over %lld rounds\n",
                decision.percentile(0.50), decision.percentile(0.99),
                decision.max(), static_cast<long long>(decision.count()));
  }
  for (int z = 0; z < orch->zones(); ++z) {
    const obs::LogHistogram& wall = metrics.log_timer_us(
        "zone.round_wall_us", {{"zone", std::to_string(z)}});
    std::printf("zone %d     %zu nodes, round wall p50 %.1f ms over %lld rounds\n",
                z, part.members[static_cast<std::size_t>(z)].size(),
                wall.percentile(0.50) / 1e3, static_cast<long long>(wall.count()));
  }

  int rc = 0;
  if (!journal_path.empty()) {
    const std::string merged = orch->merged_journal();
    std::ofstream out(journal_path);
    if (!out || !(out << merged)) {
      std::fprintf(stderr, "cannot write '%s'\n", journal_path.c_str());
      rc = 1;
    } else {
      std::printf("journal    merged %d zones -> %s\n", orch->zones(),
                  journal_path.c_str());
    }
  }
  if (!metrics_path.empty()) {
    if (!metrics.write_json(metrics_path, orch->now())) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_path.c_str());
      rc = 1;
    } else {
      std::printf("metrics    %zu instruments -> %s\n",
                  metrics.instrument_count(), metrics_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    std::printf("trace      not supported with [zones] (per-zone clocks);"
                " use --journal + bassctl events\n");
  }
  if (!prom_path.empty()) {
    std::ofstream out(prom_path);
    if (!out || !(out << metrics.to_prometheus(orch->now()))) {
      std::fprintf(stderr, "cannot write '%s'\n", prom_path.c_str());
      rc = 1;
    } else {
      std::printf("prom       %zu instruments -> %s\n",
                  metrics.instrument_count(), prom_path.c_str());
    }
  }
  if (report.invariant_violations > 0) {
    std::fprintf(stderr, "FAIL: %d invariant violations\n",
                 report.invariant_violations);
    return rc != 0 ? rc : 1;
  }
  return rc;
}

// Long-running control-plane mode: builds the mesh from the scenario, then
// hands the orchestrator to the serving loop (churn arrivals through the
// admission queue, undeploy on departure) instead of a one-shot app.
int cmd_serve(const std::vector<std::string>& args) {
  std::string path;
  std::string journal_path, metrics_path, trace_path, prom_path;
  std::string mode, policy;
  std::uint64_t duration_s = 0, seed = 0, jobs = 1;
  bool has_duration = false, has_seed = false;
  double arrival_per_min = -1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--duration" && i + 1 < args.size()) {
      if (!parse_u64_flag("--duration", args[++i], 1, duration_s)) return 2;
      has_duration = true;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_u64_flag("--jobs", args[++i], 0, jobs)) return 2;
    } else if (args[i] == "--arrival-rate" && i + 1 < args.size()) {
      const std::string& token = args[++i];
      char* end = nullptr;
      arrival_per_min = std::strtod(token.c_str(), &end);
      if (token.empty() || end != token.c_str() + token.size() || arrival_per_min <= 0) {
        std::fprintf(stderr, "bassctl: --arrival-rate expects a rate/min > 0, got '%s'\n",
                     token.c_str());
        return 2;
      }
    } else if (args[i] == "--mode" && i + 1 < args.size()) {
      mode = args[++i];
      if (auto parsed = scenario::parse_serve_mode(mode); !parsed.ok()) {
        std::fprintf(stderr, "bassctl: %s\n", parsed.error().c_str());
        return 2;
      }
    } else if (args[i] == "--policy" && i + 1 < args.size()) {
      policy = args[++i];
      if (auto parsed = core::parse_admission_policy(policy); !parsed.ok()) {
        std::fprintf(stderr, "bassctl: %s\n", parsed.error().c_str());
        return 2;
      }
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!parse_u64_flag("--seed", args[++i], 0, seed)) return 2;
      has_seed = true;
    } else if (args[i] == "--journal" && i + 1 < args.size()) {
      journal_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i] == "--prom" && i + 1 < args.size()) {
      prom_path = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  auto ini = util::load_ini(path);
  if (!ini.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", ini.error().c_str());
    return 1;
  }
  // Flags override the ini; a missing [serve] section is created so any
  // mesh-only scenario can serve with defaults.
  std::vector<exec::IniOverride> overrides;
  if (ini.value().first_of_kind("serve") == nullptr) {
    overrides.push_back({"serve", "mode", mode.empty() ? "adaptive" : mode});
  }
  if (has_duration) {
    overrides.push_back({"run", "duration_s", std::to_string(duration_s)});
  }
  if (arrival_per_min > 0) {
    overrides.push_back(
        {"serve", "arrival_per_min", util::str_format("%.6f", arrival_per_min)});
  }
  if (!mode.empty()) overrides.push_back({"serve", "mode", mode});
  if (!policy.empty()) overrides.push_back({"serve", "policy", policy});
  if (has_seed) overrides.push_back({"serve", "seed", std::to_string(seed)});
  exec::apply_overrides(ini.value(), overrides);

  if (ini.value().first_of_kind("zones") != nullptr) {
    return serve_sharded(ini.value(), jobs, journal_path, metrics_path,
                         trace_path, prom_path);
  }

  auto s = scenario::Scenario::from_ini(ini.value());
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  const auto report = scene.run();

  std::printf("churn      %lld arrivals, %lld departures (%lld cancelled in"
              " queue), %d live at end\n",
              static_cast<long long>(report.serve_arrivals),
              static_cast<long long>(report.serve_departures),
              static_cast<long long>(report.serve_cancelled),
              report.serve_live_at_end);
  std::printf("admission  %lld admitted, %lld rejected, %lld deferred"
              " (peak queue depth %d)\n",
              static_cast<long long>(report.serve_admitted),
              static_cast<long long>(report.serve_rejected),
              static_cast<long long>(report.serve_deferred),
              report.serve_peak_queue_depth);
  std::printf("migrations %zu (%lld from rebalance)\n", report.migrations,
              static_cast<long long>(report.serve_rebalance_moves));
  // The serving SLO numbers: how long arrivals waited for a yes/no, and how
  // long controller decisions took — both sim-clock, straight off the
  // metrics registry (the same instruments --metrics/--prom export).
  obs::MetricsRegistry& metrics = scene.recorder().metrics();
  const obs::LogHistogram& wait = metrics.log_timer_us("orchestrator.admission_wait_us");
  if (wait.count() > 0) {
    std::printf("admission latency: p50 %.1f ms, p99 %.1f ms, max %.1f ms"
                " over %lld decisions\n",
                wait.percentile(0.50) / 1e3, wait.percentile(0.99) / 1e3,
                wait.max() / 1e3, static_cast<long long>(wait.count()));
  }
  const obs::LogHistogram& decision = metrics.log_timer_us("orchestrator.decision_us");
  if (decision.count() > 0) {
    std::printf("decision latency:  p50 %.1f us, p99 %.1f us, max %.1f us"
                " over %lld rounds\n",
                decision.percentile(0.50), decision.percentile(0.99),
                decision.max(), static_cast<long long>(decision.count()));
  }
  const int rc = export_observability(scene, journal_path, metrics_path,
                                      trace_path, prom_path);
  if (report.invariant_violations > 0) {
    std::fprintf(stderr, "FAIL: %d invariant violations\n",
                 report.invariant_violations);
    return rc != 0 ? rc : 1;
  }
  return rc;
}

// Filters and pretty-prints a journal written by `run --journal`. Times are
// printed in sim seconds; string values lose their JSON quotes.
int cmd_events(const std::vector<std::string>& args) {
  std::string path;
  std::string type_filter;
  double since_s = -1, until_s = -1;
  std::uint64_t last = 0;  // 0 = unlimited
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--type" && i + 1 < args.size()) {
      type_filter = args[++i];
    } else if (args[i] == "--since" && i + 1 < args.size()) {
      since_s = std::atof(args[++i].c_str());
    } else if (args[i] == "--until" && i + 1 < args.size()) {
      until_s = std::atof(args[++i].c_str());
    } else if (args[i] == "--last" && i + 1 < args.size()) {
      if (!parse_u64_flag("--last", args[++i], 1, last)) return 2;
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
    return 1;
  }
  std::string line;
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t lineno = 0;
  std::vector<std::string> formatted;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!obs::parse_journal_line(line, fields)) {
      std::fprintf(stderr, "%s:%zu: not a journal line\n", path.c_str(), lineno);
      return 1;
    }
    double t_s = 0;
    std::string type;
    std::string rest;
    for (const auto& [key, value] : fields) {
      if (key == "t_us") {
        t_s = std::atof(value.c_str()) / 1e6;
      } else if (key == "type") {
        type = value.size() >= 2 ? value.substr(1, value.size() - 2) : value;
      } else if ((key == "span" || key == "parent") && value == "0") {
        // An unset span id is noise, not information — hide it.
      } else {
        if (!rest.empty()) rest += "  ";
        rest += key + "=";
        // Strip the JSON quotes from string values for readability.
        if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
          rest += value.substr(1, value.size() - 2);
        } else {
          rest += value;
        }
      }
    }
    if (!type_filter.empty() && type != type_filter) continue;
    if (since_s >= 0 && t_s < since_s) continue;
    if (until_s >= 0 && t_s > until_s) continue;
    formatted.push_back(
        util::str_format("%10.3fs  %-22s %s", t_s, type.c_str(), rest.c_str()));
  }
  // --last applies after the other filters: "the last 20 migrations", not
  // "migrations among the last 20 events".
  const std::size_t first =
      last != 0 && formatted.size() > last ? formatted.size() - last : 0;
  for (std::size_t i = first; i < formatted.size(); ++i) {
    std::printf("%s\n", formatted[i].c_str());
  }
  std::fprintf(stderr, "%zu events\n", formatted.size() - first);
  return 0;
}

int cmd_dot(const std::string& path, const std::string& out_path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  std::unordered_map<app::ComponentId, net::NodeId> placement;
  for (app::ComponentId c = 0; c < scene.app().component_count(); ++c) {
    placement[c] = scene.orchestrator().node_of(scene.deployment(), c);
  }
  const std::string dot = app::to_dot(scene.app(), &placement);
  if (out_path.empty()) {
    std::fputs(dot.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << dot;
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args) {
  std::map<std::string, std::string> opts;
  bool fades = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--fades") {
      fades = true;
    } else if (args[i].rfind("--", 0) == 0 && i + 1 < args.size()) {
      const std::string key = args[i];
      opts[key] = args[++i];
    } else {
      return usage();
    }
  }
  if (!opts.count("--mean-mbps")) return usage();

  trace::GeneratorParams params;
  params.mean_bps = static_cast<net::Bps>(std::atof(opts["--mean-mbps"].c_str()) * 1e6);
  if (opts.count("--stddev-frac")) {
    params.stddev_frac = std::atof(opts["--stddev-frac"].c_str());
  }
  params.duration = sim::seconds_f(
      opts.count("--duration-s") ? std::atof(opts["--duration-s"].c_str()) : 1200);
  if (fades) params.fade_probability = 0.002;
  util::Rng rng(opts.count("--seed")
                    ? static_cast<std::uint64_t>(std::atoll(opts["--seed"].c_str()))
                    : 1);
  const auto generated = trace::generate_trace(params, rng);

  const std::string out = opts.count("--out") ? opts["--out"] : "";
  if (out.empty()) {
    for (const auto& p : generated.points()) {
      std::printf("%.0f,%lld\n", sim::to_seconds(p.at),
                  static_cast<long long>(p.bps));
    }
  } else if (!generated.save_csv(out)) {
    std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
    return 1;
  } else {
    std::printf("wrote %zu points to %s (mean %.2f Mbps, std %.1f%%)\n",
                generated.size(), out.c_str(), generated.mean_bps() / 1e6,
                100.0 * generated.stddev_bps() / generated.mean_bps());
  }
  return 0;
}

// ---- journal analysis (report / journal query) ----

// One parsed journal line. `raw` keeps the original text so queries can
// re-emit valid JSONL.
struct JournalLine {
  std::string raw;
  double t_us = 0;
  std::string type;
  std::uint64_t span = 0, parent = 0;
  std::vector<std::pair<std::string, std::string>> fields;
};

// Field lookup with JSON string quotes stripped; "" when absent.
std::string field_of(const JournalLine& e, const char* key) {
  for (const auto& [k, v] : e.fields) {
    if (k == key) {
      if (v.size() >= 2 && v.front() == '"' && v.back() == '"') {
        return v.substr(1, v.size() - 2);
      }
      return v;
    }
  }
  return "";
}

// Loads a journal, tolerating non-event lines (a flight dump's metrics
// trailer nests objects the flat parser rejects) with a warning — the
// analysis commands should work on flight recordings too.
bool load_journal(const std::string& path, std::vector<JournalLine>& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
    return false;
  }
  std::string line;
  std::size_t lineno = 0, skipped = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JournalLine e;
    if (!obs::parse_journal_line(line, e.fields)) {
      ++skipped;
      continue;
    }
    e.raw = std::move(line);
    line.clear();
    e.t_us = std::atof(field_of(e, "t_us").c_str());
    e.type = field_of(e, "type");
    e.span = std::strtoull(field_of(e, "span").c_str(), nullptr, 10);
    e.parent = std::strtoull(field_of(e, "parent").c_str(), nullptr, 10);
    out.push_back(std::move(e));
  }
  if (skipped != 0) {
    std::fprintf(stderr, "%s: skipped %zu non-event lines\n", path.c_str(),
                 skipped);
  }
  return true;
}

// Extracts `"key":value` from one line of a metrics snapshot. Not a JSON
// parser: the snapshot is our own single-instrument-per-line format with
// percentiles pre-computed at export time, so a string scan suffices.
bool json_field(const std::string& line, const char* key, std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  if (i < line.size() && line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return false;
    out = line.substr(i + 1, end - i - 1);
  } else {
    std::size_t end = i;
    while (end < line.size() && line[end] != ',' && line[end] != '}' &&
           line[end] != ']') {
      ++end;
    }
    out = util::trim(line.substr(i, end - i));
  }
  return !out.empty();
}

struct LatencySummary {
  std::string name;
  std::string zone;  // "" unless the instrument carries a {zone} label
  long long count = 0;
  double p50 = 0, p90 = 0, p99 = 0, max = 0;
  // Sparse log2 buckets as exported: [bucket_upper, count] pairs, ascending.
  // Pooling across zones merges these instead of averaging percentiles.
  std::vector<std::pair<std::uint64_t, long long>> buckets;
};

// Lifts every histogram instrument (fixed or log2) out of a metrics
// snapshot written by `bassctl run --metrics` / `chaos --journal-dir`.
std::vector<LatencySummary> load_latency_summaries(const std::string& path) {
  std::vector<LatencySummary> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    std::string name, p50, v;
    if (!json_field(line, "p50", p50) || !json_field(line, "name", name)) {
      continue;
    }
    LatencySummary s;
    s.name = std::move(name);
    s.p50 = std::atof(p50.c_str());
    if (json_field(line, "p90", v)) s.p90 = std::atof(v.c_str());
    if (json_field(line, "p99", v)) s.p99 = std::atof(v.c_str());
    if (json_field(line, "max", v)) s.max = std::atof(v.c_str());
    if (json_field(line, "count", v)) s.count = std::atoll(v.c_str());
    // Sharded serves fold per-zone histograms into the coordinator registry
    // with an appended {zone} label; surface it so the report can group.
    json_field(line, "zone", s.zone);
    std::string kind;
    if (json_field(line, "kind", kind) && kind == "log2") {
      const std::size_t b = line.find("\"buckets\":[");
      if (b != std::string::npos) {
        const char* p = line.c_str() + b + 11;
        while (*p == '[') {
          char* end = nullptr;
          const std::uint64_t upper = std::strtoull(p + 1, &end, 10);
          if (end == nullptr || *end != ',') break;
          const long long n = std::strtoll(end + 1, &end, 10);
          if (end == nullptr || *end != ']') break;
          s.buckets.emplace_back(upper, n);
          p = end + 1;
          if (*p == ',') ++p;
        }
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string prom_safe(const std::string& name) {
  std::string out = "bass_";
  for (char c : name) out += (c == '.' || c == '-') ? '_' : c;
  return out;
}

// Post-mortem over a journal: event census, latency percentiles from the
// sibling metrics snapshot, the fault timeline, and causal chains stitched
// from span/parent links — which round or fault caused which migration.
int cmd_report(const std::vector<std::string>& args) {
  std::string path, metrics_path, prom_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--prom" && i + 1 < args.size()) {
      prom_path = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::vector<JournalLine> events;
  if (!load_journal(path, events)) return 1;

  // Auto-discover the sibling snapshot `chaos --journal-dir` writes:
  // seed_7.jsonl -> seed_7.metrics.json.
  if (metrics_path.empty()) {
    std::string candidate = path;
    const std::size_t suffix = candidate.rfind(".jsonl");
    if (suffix != std::string::npos) candidate.resize(suffix);
    candidate += ".metrics.json";
    if (std::ifstream(candidate).good()) metrics_path = candidate;
  }

  // Event census.
  std::map<std::string, std::size_t> counts;
  for (const JournalLine& e : events) ++counts[e.type];
  std::printf("journal    %zu events", events.size());
  if (!events.empty()) {
    std::printf(" over %.3f s", events.back().t_us / 1e6);
  }
  std::printf("\n");
  for (const auto& [type, n] : counts) {
    std::printf("  %-24s %6zu\n", type.c_str(), n);
  }

  // Sharded serves tag every merged-journal event with its source zone
  // (-1 = coordinator); group the census so per-zone skew is visible.
  std::map<long long, std::map<std::string, std::size_t>> zone_census;
  for (const JournalLine& e : events) {
    const std::string z = field_of(e, "zone");
    if (z.empty()) continue;
    ++zone_census[std::atoll(z.c_str())][e.type];
  }
  // Activity gating leaves quiescent zones out of the journal almost
  // entirely; the metrics sidecar's per-zone skip counters let the census
  // tell "quiet because gated" apart from "missing".
  std::map<long long, long long> skipped_by_zone;
  if (!metrics_path.empty()) {
    std::ifstream min(metrics_path);
    std::string mline;
    while (std::getline(min, mline)) {
      std::string name, zone, value;
      if (!json_field(mline, "name", name) || name != "zone.skipped_rounds") {
        continue;
      }
      if (!json_field(mline, "zone", zone) ||
          !json_field(mline, "value", value)) {
        continue;
      }
      skipped_by_zone[std::atoll(zone.c_str())] = std::atoll(value.c_str());
    }
  }
  if (!zone_census.empty() || !skipped_by_zone.empty()) {
    // Every zone the run knew about gets a row: zones absent from the
    // journal (all rounds skipped, no events of their own) print as
    // explicit idle rows instead of silently vanishing from the census.
    long long max_zone = -1;
    if (!zone_census.empty()) max_zone = zone_census.rbegin()->first;
    if (!skipped_by_zone.empty()) {
      max_zone = std::max(max_zone, skipped_by_zone.rbegin()->first);
    }
    for (long long z = 0; z <= max_zone; ++z) zone_census[z];  // gap-fill
    std::printf("\nper-zone census\n");
    for (const auto& [z, types] : zone_census) {
      std::size_t total = 0, own = 0;
      const std::pair<const std::string, std::size_t>* top = nullptr;
      for (const auto& t : types) {
        total += t.second;
        // zone_round summaries are coordinator-emitted on the zone's
        // behalf every round; everything else came out of the zone's own
        // world, so `own == 0` means the zone was quiescent end to end.
        if (t.first != "zone_round") own += t.second;
        if (top == nullptr || t.second > top->second) top = &t;
      }
      const std::string label =
          z < 0 ? std::string("coord") : "zone " + std::to_string(z);
      std::printf("  %-10s %6zu events", label.c_str(), total);
      if (z >= 0 && own == 0) {
        std::printf("  (idle)");
      } else if (top != nullptr) {
        std::printf("  (top: %s %zu)", top->first.c_str(), top->second);
      }
      const auto skipped = skipped_by_zone.find(z);
      if (skipped != skipped_by_zone.end() && skipped->second > 0) {
        std::printf("  %lld rounds skipped", skipped->second);
      }
      std::printf("\n");
    }
  }

  // Latency percentiles.
  const std::vector<LatencySummary> latencies =
      metrics_path.empty() ? std::vector<LatencySummary>{}
                           : load_latency_summaries(metrics_path);
  if (!latencies.empty()) {
    std::printf("\nlatency (%s)\n  %-28s %8s %10s %10s %10s %10s\n",
                metrics_path.c_str(), "histogram", "count", "p50", "p90",
                "p99", "max");
    bool decision_printed = false;
    for (const LatencySummary& s : latencies) {
      if (!s.zone.empty()) continue;  // zoned instruments grouped below
      std::printf("  %-28s %8lld %10.1f %10.1f %10.1f %10.1f\n",
                  s.name.c_str(), s.count, s.p50, s.p90, s.p99, s.max);
      if (s.name == "orchestrator.decision_us") {
        std::printf("  decision latency: p50 %.1f us, p99 %.1f us over %lld"
                    " controller rounds\n", s.p50, s.p99, s.count);
        decision_printed = true;
      }
    }
    // Zone-labelled histograms from a sharded serve: per-zone rows, then a
    // pooled row rebuilt by merging each zone's sparse log2 buckets — the
    // only way to pool percentiles correctly (averaging p99s is wrong).
    std::map<std::string, std::vector<const LatencySummary*>> zoned;
    for (const LatencySummary& s : latencies) {
      if (!s.zone.empty()) zoned[s.name].push_back(&s);
    }
    for (auto& [name, rows] : zoned) {
      std::sort(rows.begin(), rows.end(),
                [](const LatencySummary* a, const LatencySummary* b) {
                  return std::atoll(a->zone.c_str()) <
                         std::atoll(b->zone.c_str());
                });
      std::map<std::uint64_t, long long> merged;
      long long total = 0;
      double max = 0;
      for (const LatencySummary* r : rows) {
        const std::string label = name + "{zone=" + r->zone + "}";
        std::printf("  %-28s %8lld %10.1f %10.1f %10.1f %10.1f\n",
                    label.c_str(), r->count, r->p50, r->p90, r->p99, r->max);
        total += r->count;
        if (r->max > max) max = r->max;
        for (const auto& [upper, n] : r->buckets) merged[upper] += n;
      }
      const auto pooled_pct = [&](double q) {
        if (total <= 0 || merged.empty()) return 0.0;
        const double target = q * static_cast<double>(total);
        long long cum = 0;
        for (const auto& [upper, n] : merged) {
          cum += n;
          if (static_cast<double>(cum) >= target) {
            return std::min(static_cast<double>(upper), max);
          }
        }
        return max;
      };
      const double p50 = pooled_pct(0.50), p90 = pooled_pct(0.90),
                   p99 = pooled_pct(0.99);
      const std::string label = name + " (all zones)";
      std::printf("  %-28s %8lld %10.1f %10.1f %10.1f %10.1f\n", label.c_str(),
                  total, p50, p90, p99, max);
      if (name == "orchestrator.decision_us" && !decision_printed) {
        std::printf("  decision latency: p50 %.1f us, p99 %.1f us over %lld"
                    " controller rounds\n", p50, p99, total);
      }
    }
  } else {
    std::printf("\nno metrics snapshot found (pass --metrics, or export one"
                " with `bassctl run --metrics`); skipping latency"
                " percentiles\n");
  }

  // Fault timeline.
  bool any_fault = false;
  for (const JournalLine& e : events) {
    if (e.type != "fault_injected" && e.type != "invariant_violation") continue;
    if (!any_fault) std::printf("\nfault timeline\n");
    any_fault = true;
    if (e.type == "fault_injected") {
      const std::string peer = field_of(e, "peer");
      std::printf("  %9.3fs  %-18s node %s%s%s  (span %llu)\n", e.t_us / 1e6,
                  field_of(e, "kind").c_str(), field_of(e, "node").c_str(),
                  peer == "-1" ? "" : " peer ",
                  peer == "-1" ? "" : peer.c_str(),
                  static_cast<unsigned long long>(e.span));
    } else {
      std::printf("  %9.3fs  INVARIANT %-9s %s\n", e.t_us / 1e6,
                  field_of(e, "name").c_str(), field_of(e, "detail").c_str());
    }
  }

  // Causal chains: every completed migration traced back through its span's
  // parent to the controller round or fault that decided it.
  std::unordered_map<std::uint64_t, const JournalLine*> cause_by_span;
  std::unordered_map<std::uint64_t, const JournalLine*> started_by_span;
  std::unordered_map<std::uint64_t, std::size_t> reallocs_by_parent;
  for (const JournalLine& e : events) {
    if (e.span != 0 &&
        (e.type == "controller_round" || e.type == "fault_injected" ||
         e.type == "probe_completed")) {
      cause_by_span.emplace(e.span, &e);
    }
    if (e.type == "migration_started" && e.span != 0) {
      started_by_span.emplace(e.span, &e);
    }
    if (e.type == "reallocation_solved" && e.parent != 0) {
      ++reallocs_by_parent[e.parent];
    }
  }
  std::size_t chains = 0, migrations = 0;
  std::string chain_text;
  for (const JournalLine& e : events) {
    if (e.type != "migration_completed") continue;
    ++migrations;
    const auto started = started_by_span.find(e.span);
    const std::uint64_t parent =
        started != started_by_span.end() ? started->second->parent : e.parent;
    std::string line = "  ";
    const auto cause = cause_by_span.find(parent);
    if (cause != cause_by_span.end()) {
      const JournalLine& c = *cause->second;
      if (c.type == "controller_round") {
        line += util::str_format("round@%.3fs (span %llu, %s violating)",
                                 c.t_us / 1e6,
                                 static_cast<unsigned long long>(c.span),
                                 field_of(c, "violating").c_str());
      } else {
        line += util::str_format("%s %s@%.3fs (span %llu)", c.type.c_str(),
                                 field_of(c, "kind").c_str(), c.t_us / 1e6,
                                 static_cast<unsigned long long>(c.span));
      }
      ++chains;
    } else if (parent != 0) {
      line += util::str_format("span %llu (cause not in journal)",
                               static_cast<unsigned long long>(parent));
    } else {
      line += "manual/experiment";
    }
    const auto reallocs = reallocs_by_parent.find(parent);
    line += util::str_format(
        " -> decision (%zu reallocs)",
        reallocs != reallocs_by_parent.end() ? reallocs->second
                                             : static_cast<std::size_t>(0));
    line += util::str_format(
        " -> migration c%s n%s->n%s %s (span %llu, downtime %.1fs)",
        field_of(e, "component").c_str(), field_of(e, "from").c_str(),
        field_of(e, "to").c_str(), field_of(e, "reason").c_str(),
        static_cast<unsigned long long>(e.span),
        std::atof(field_of(e, "downtime_us").c_str()) / 1e6);
    chain_text += line + "\n";
  }
  if (migrations != 0) {
    std::printf("\ncausality (%zu/%zu migrations traced to their cause)\n%s",
                chains, migrations, chain_text.c_str());
  }

  // Optional Prometheus re-export of what the report parsed — enough for a
  // scrape job that only has the artifacts, not a live run.
  if (!prom_path.empty()) {
    std::string prom;
    std::map<std::string, bool> typed;  // one TYPE line per metric name
    for (const LatencySummary& s : latencies) {
      const std::string name = prom_safe(s.name);
      if (!typed[name]) {
        typed[name] = true;
        prom += "# TYPE " + name + " summary\n";
      }
      const std::string zl =
          s.zone.empty() ? std::string{} : ",zone=\"" + s.zone + "\"";
      prom += name + "{quantile=\"0.5\"" + zl + "} " +
              util::str_format("%g", s.p50) + "\n";
      prom += name + "{quantile=\"0.9\"" + zl + "} " +
              util::str_format("%g", s.p90) + "\n";
      prom += name + "{quantile=\"0.99\"" + zl + "} " +
              util::str_format("%g", s.p99) + "\n";
      prom += name + "_count" +
              (s.zone.empty() ? std::string{} : "{zone=\"" + s.zone + "\"}") +
              util::str_format(" %lld\n", s.count);
    }
    for (const auto& [type, n] : counts) {
      const std::string name = prom_safe("journal.events_total");
      prom += name + "{type=\"" + type + "\"} " + std::to_string(n) + "\n";
    }
    std::ofstream out(prom_path);
    if (!out || !(out << prom)) {
      std::fprintf(stderr, "cannot write '%s'\n", prom_path.c_str());
      return 1;
    }
    std::printf("\nprom       %s\n", prom_path.c_str());
  }
  return 0;
}

// Raw JSONL queries for scripting: output lines are the original journal
// records, so results pipe straight back into `events`, `report`, or jq.
int cmd_journal(const std::vector<std::string>& args) {
  if (args.empty() || args[0] != "query") return usage();
  std::string path, type_filter;
  std::uint64_t span = 0, last = 0, since_us = 0;
  bool have_span = false, have_since = false;
  for (std::size_t i = 1; i < args.size(); ++i) {
    if (args[i] == "--type" && i + 1 < args.size()) {
      type_filter = args[++i];
    } else if (args[i] == "--span" && i + 1 < args.size()) {
      if (!parse_u64_flag("--span", args[++i], 1, span)) return 2;
      have_span = true;
    } else if (args[i] == "--since-us" && i + 1 < args.size()) {
      if (!parse_u64_flag("--since-us", args[++i], 0, since_us)) return 2;
      have_since = true;
    } else if (args[i] == "--last" && i + 1 < args.size()) {
      if (!parse_u64_flag("--last", args[++i], 1, last)) return 2;
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::vector<JournalLine> events;
  if (!load_journal(path, events)) return 1;

  // --span selects the causal subtree: the span's own events plus everything
  // it transitively caused. Span ids are allocated parent-first, so one
  // forward pass closes the tree; iterate to a fixpoint anyway — journals
  // get truncated and concatenated by hand.
  std::unordered_set<std::uint64_t> in_tree;
  if (have_span) {
    in_tree.insert(span);
    for (bool changed = true; changed;) {
      changed = false;
      for (const JournalLine& e : events) {
        if (e.span != 0 && in_tree.count(e.parent) != 0 &&
            in_tree.insert(e.span).second) {
          changed = true;
        }
      }
    }
  }

  std::vector<const std::string*> matched;
  for (const JournalLine& e : events) {
    if (!type_filter.empty() && e.type != type_filter) continue;
    if (have_since && e.t_us < static_cast<double>(since_us)) continue;
    if (have_span && in_tree.count(e.span) == 0 &&
        in_tree.count(e.parent) == 0) {
      continue;
    }
    matched.push_back(&e.raw);
  }
  const std::size_t first =
      last != 0 && matched.size() > last ? matched.size() - last : 0;
  for (std::size_t i = first; i < matched.size(); ++i) {
    std::printf("%s\n", matched[i]->c_str());
  }
  std::fprintf(stderr, "%zu events\n", matched.size() - first);
  return 0;
}

// ---- bassctl chaos ----

// Per-seed run specs for a chaos soak: only the [chaos] seed differs.
std::vector<exec::RunSpec> chaos_specs(bool has_chaos, std::uint64_t base_seed,
                                       std::uint64_t seeds) {
  std::vector<exec::RunSpec> specs;
  for (std::uint64_t i = 0; i < seeds; ++i) {
    const std::uint64_t seed = base_seed + i;
    exec::RunSpec spec;
    spec.label = "seed " + std::to_string(seed);
    if (has_chaos) spec.overrides.push_back({"chaos", "seed", std::to_string(seed)});
    specs.push_back(std::move(spec));
  }
  return specs;
}

int cmd_chaos(const std::vector<std::string>& args) {
  std::string path, journal_dir, flight_dir;
  std::uint64_t seeds = 3, base_seed = 1, jobs = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seeds" && i + 1 < args.size()) {
      if (!parse_u64_flag("--seeds", args[++i], 1, seeds)) return 2;
    } else if (args[i] == "--base-seed" && i + 1 < args.size()) {
      if (!parse_u64_flag("--base-seed", args[++i], 0, base_seed)) return 2;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      // 0 = one worker per hardware thread.
      if (!parse_u64_flag("--jobs", args[++i], 0, jobs)) return 2;
    } else if (args[i] == "--journal-dir" && i + 1 < args.size()) {
      journal_dir = args[++i];
    } else if (args[i] == "--flight-dir" && i + 1 < args.size()) {
      flight_dir = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  auto loaded = util::load_ini(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", loaded.error().c_str());
    return 1;
  }
  const bool has_chaos = loaded.value().first_of_kind("chaos") != nullptr;
  if (!has_chaos && loaded.value().of_kind("fault").empty()) {
    std::fprintf(stderr,
                 "scenario error: '%s' has no [chaos] or [fault ...] sections\n",
                 path.c_str());
    return 1;
  }
  auto artifacts = exec::SweepArtifacts::from_ini(loaded.take());
  if (!artifacts.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", artifacts.error().c_str());
    return 1;
  }
  for (const std::string& dir : {journal_dir, flight_dir}) {
    if (dir.empty()) continue;
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create '%s': %s\n", dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  // Fan the seeds across workers; outcomes come back indexed by seed order,
  // so everything below prints exactly as the serial soak did.
  std::vector<exec::RunSpec> specs = chaos_specs(has_chaos, base_seed, seeds);
  if (!flight_dir.empty()) {
    // Arm the in-scenario flight recorder: a seed that trips an invariant
    // leaves flight_<seed>.jsonl behind even though its Scenario is torn
    // down inside the sweep (the seed overrides above become the tag).
    for (exec::RunSpec& spec : specs) {
      spec.overrides.push_back({"obs", "flight", "true"});
      spec.overrides.push_back({"obs", "flight_dir", flight_dir});
    }
  }
  const auto outcomes = exec::run_sweep(artifacts.value(), specs, jobs);

  int total_violations = 0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const exec::RunOutcome& r = outcomes[i];
    const std::uint64_t seed = base_seed + i;
    if (!r.error.empty()) {
      std::fprintf(stderr, "scenario error (seed %llu): %s\n",
                   static_cast<unsigned long long>(seed), r.error.c_str());
      return 1;
    }
    total_violations += r.report.invariant_violations;

    double mean_s = 0, max_s = 0;
    for (double s : r.recovery_s) {
      mean_s += s;
      max_s = std::max(max_s, s);
    }
    if (!r.recovery_s.empty()) mean_s /= static_cast<double>(r.recovery_s.size());
    std::printf(
        "seed %-4llu %3d faults  %d violations  %zu failovers"
        " (recovery mean %.1f s, max %.1f s)  %d components down at end\n",
        static_cast<unsigned long long>(seed), r.report.faults_injected,
        r.report.invariant_violations, r.recovery_s.size(), mean_s, max_s,
        r.components_down);

    if (!journal_dir.empty()) {
      const std::string stem = journal_dir + "/seed_" + std::to_string(seed);
      std::ofstream out(stem + ".jsonl");
      if (!out || !(out << r.journal)) {
        std::fprintf(stderr, "cannot write '%s.jsonl'\n", stem.c_str());
        return 1;
      }
      // Sibling snapshot so `bassctl report <stem>.jsonl` can auto-discover
      // the latency percentiles — wall-clock timings never enter journals.
      std::ofstream metrics(stem + ".metrics.json");
      if (!metrics || !(metrics << r.metrics_json)) {
        std::fprintf(stderr, "cannot write '%s.metrics.json'\n", stem.c_str());
        return 1;
      }
    }
  }

  // Soak-wide decision latency: merge the per-seed log histograms (each seed
  // ran in its own recorder) and report the pooled percentiles.
  obs::LogHistogram decision_us;
  for (const exec::RunOutcome& r : outcomes) {
    for (const auto& [name, h] : r.latency_histograms) {
      if (name == "orchestrator.decision_us") decision_us.merge(h);
    }
  }
  if (decision_us.count() > 0) {
    std::printf("decision latency: p50 %.1f us, p99 %.1f us, max %.1f us"
                " over %lld controller rounds (%llu seeds)\n",
                decision_us.percentile(0.50), decision_us.percentile(0.99),
                decision_us.max(), static_cast<long long>(decision_us.count()),
                static_cast<unsigned long long>(seeds));
  }

  // Determinism: replaying the first seed (serially) must produce a
  // byte-identical fault-event journal regardless of how the parallel soak
  // interleaved (chaos generation + injection are all Rng-driven).
  const auto replay =
      exec::run_sweep(artifacts.value(), chaos_specs(has_chaos, base_seed, 1), 1);
  if (!replay[0].error.empty()) {
    std::fprintf(stderr, "scenario error (replay): %s\n", replay[0].error.c_str());
    return 1;
  }
  const std::string& first_fault_events = outcomes[0].fault_events;
  const bool deterministic = replay[0].fault_events == first_fault_events;
  const std::size_t fault_lines =
      static_cast<std::size_t>(std::count(first_fault_events.begin(),
                                          first_fault_events.end(), '\n'));
  std::printf("determinism: seed %llu replay %s (%zu fault events)\n",
              static_cast<unsigned long long>(base_seed),
              deterministic ? "byte-identical" : "MISMATCH", fault_lines);

  if (total_violations > 0) {
    std::fprintf(stderr, "FAIL: %d invariant violations across %llu seeds\n",
                 total_violations, static_cast<unsigned long long>(seeds));
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: fault journal not reproducible for seed %llu\n",
                 static_cast<unsigned long long>(base_seed));
    return 1;
  }
  std::printf("chaos soak: %llu/%llu seeds clean\n",
              static_cast<unsigned long long>(seeds),
              static_cast<unsigned long long>(seeds));
  return 0;
}

// ---- bassctl sweep ----

// Parameter-grid sweep over the migration controller: every (threshold,
// headroom, seed) cell is an independent scenario run, fanned across worker
// threads with deterministic (grid-order) reporting.
int cmd_sweep(const std::vector<std::string>& args) {
  std::string path, out_path;
  std::vector<double> thresholds = {0.25, 0.50, 0.65, 0.75, 0.95};
  std::vector<double> headrooms = {0.10, 0.20, 0.30};
  std::uint64_t seeds = 1, base_seed = 1, jobs = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--thresholds" && i + 1 < args.size()) {
      if (!parse_fraction_list("--thresholds", args[++i], thresholds)) return 2;
    } else if (args[i] == "--headrooms" && i + 1 < args.size()) {
      if (!parse_fraction_list("--headrooms", args[++i], headrooms)) return 2;
    } else if (args[i] == "--seeds" && i + 1 < args.size()) {
      if (!parse_u64_flag("--seeds", args[++i], 1, seeds)) return 2;
    } else if (args[i] == "--base-seed" && i + 1 < args.size()) {
      if (!parse_u64_flag("--base-seed", args[++i], 0, base_seed)) return 2;
    } else if (args[i] == "--jobs" && i + 1 < args.size()) {
      if (!parse_u64_flag("--jobs", args[++i], 0, jobs)) return 2;
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  auto artifacts = exec::SweepArtifacts::load(path);
  if (!artifacts.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", artifacts.error().c_str());
    return 1;
  }
  const bool has_chaos = artifacts.value().ini->first_of_kind("chaos") != nullptr;
  const bool has_workload = artifacts.value().ini->first_of_kind("workload") != nullptr;

  std::vector<exec::RunSpec> specs;
  for (const double threshold : thresholds) {
    for (const double headroom : headrooms) {
      for (std::uint64_t i = 0; i < seeds; ++i) {
        const std::uint64_t seed = base_seed + i;
        exec::RunSpec spec;
        spec.label = util::str_format("t=%.2f h=%.2f seed=%llu", threshold,
                                      headroom, static_cast<unsigned long long>(seed));
        spec.overrides.push_back({"migration", "enabled", "true"});
        spec.overrides.push_back({"migration", "threshold", std::to_string(threshold)});
        spec.overrides.push_back({"migration", "headroom", std::to_string(headroom)});
        // Seed whatever stochastic inputs the scenario declares; sections
        // the scenario lacks are left untouched.
        if (has_workload) {
          spec.overrides.push_back({"workload", "seed", std::to_string(seed)});
        }
        if (has_chaos) {
          spec.overrides.push_back({"chaos", "seed", std::to_string(seed)});
        }
        specs.push_back(std::move(spec));
      }
    }
  }

  const auto outcomes = exec::run_sweep(artifacts.value(), specs, jobs);

  obs::MetricsRegistry registry;
  std::printf("%-26s %12s %12s %12s %8s %8s\n", "cell", "median(ms)", "p99(ms)",
              "migrations", "faults", "violations");
  int total_violations = 0;
  struct Cell {
    double threshold = 0, headroom = 0, mean_median = 0, mean_p99 = 0;
  };
  Cell best;
  best.mean_p99 = -1;
  std::size_t run_index = 0;
  for (const double threshold : thresholds) {
    for (const double headroom : headrooms) {
      double sum_median = 0, sum_p99 = 0;
      for (std::uint64_t i = 0; i < seeds; ++i, ++run_index) {
        const exec::RunOutcome& r = outcomes[run_index];
        if (!r.error.empty()) {
          std::fprintf(stderr, "scenario error (%s): %s\n", r.label.c_str(),
                       r.error.c_str());
          return 1;
        }
        total_violations += r.report.invariant_violations;
        sum_median += r.report.latency_median_ms;
        sum_p99 += r.report.latency_p99_ms;
        std::printf("%-26s %12.1f %12.1f %12zu %8d %8d\n", r.label.c_str(),
                    r.report.latency_median_ms, r.report.latency_p99_ms,
                    r.report.migrations, r.report.faults_injected,
                    r.report.invariant_violations);
        const obs::Labels labels = {
            {"threshold", util::str_format("%.2f", threshold)},
            {"headroom", util::str_format("%.2f", headroom)},
            {"seed", std::to_string(base_seed + i)}};
        registry.gauge("sweep.latency_median_ms", labels)
            .set(r.report.latency_median_ms);
        registry.gauge("sweep.latency_p99_ms", labels).set(r.report.latency_p99_ms);
        registry.gauge("sweep.migrations", labels)
            .set(static_cast<double>(r.report.migrations));
      }
      const double n = static_cast<double>(seeds);
      const Cell cell{threshold, headroom, sum_median / n, sum_p99 / n};
      if (best.mean_p99 < 0 || cell.mean_p99 < best.mean_p99) best = cell;
    }
  }
  std::printf("best cell: threshold %.0f%% headroom %.0f%%"
              " (mean median %.1f ms, mean p99 %.1f ms over %llu seed%s)\n",
              best.threshold * 100, best.headroom * 100, best.mean_median,
              best.mean_p99, static_cast<unsigned long long>(seeds),
              seeds == 1 ? "" : "s");

  if (!out_path.empty()) {
    if (!registry.write_json(out_path, 0)) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    std::printf("results    %zu cells x %llu seeds -> %s\n",
                thresholds.size() * headrooms.size(),
                static_cast<unsigned long long>(seeds), out_path.c_str());
  }
  if (total_violations > 0) {
    std::fprintf(stderr, "FAIL: %d invariant violations across the sweep\n",
                 total_violations);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> all(argv + 1, argv + argc);
  // The global --log-level flag may appear anywhere; it wins over BASS_LOG.
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i] == "--log-level") {
      if (i + 1 >= all.size()) return usage();
      util::LogLevel level;
      if (!util::parse_log_level(all[++i], level)) {
        std::fprintf(stderr, "unknown log level '%s' (debug|info|warn|error|off)\n",
                     all[i].c_str());
        return 2;
      }
      util::set_log_level(level);
    } else {
      rest.push_back(all[i]);
    }
  }
  if (rest.empty()) return usage();
  const std::string cmd = rest[0];
  std::vector<std::string> args(rest.begin() + 1, rest.end());
  if (cmd == "validate" && args.size() == 1) return cmd_validate(args[0]);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "events") return cmd_events(args);
  if (cmd == "report") return cmd_report(args);
  if (cmd == "journal") return cmd_journal(args);
  if (cmd == "dot" && (args.size() == 1 || args.size() == 2)) {
    return cmd_dot(args[0], args.size() == 2 ? args[1] : "");
  }
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "chaos") return cmd_chaos(args);
  if (cmd == "sweep") return cmd_sweep(args);
  return usage();
}
