// bassctl — operator CLI for the BASS simulator.
//
//   bassctl validate <scenario.ini>        check a scenario without running
//   bassctl run <scenario.ini>             run it and print the report
//   bassctl dot <scenario.ini> [out.dot]   export the initial placement
//   bassctl trace --mean-mbps M [--stddev-frac F] [--duration-s S]
//                 [--fades] [--seed N] [--out trace.csv]
//                                          generate a bandwidth trace CSV
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "app/dot.h"
#include "scenario/scenario.h"
#include "trace/generator.h"

using namespace bass;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bassctl validate <scenario.ini>\n"
               "  bassctl run <scenario.ini>\n"
               "  bassctl dot <scenario.ini> [out.dot]\n"
               "  bassctl trace --mean-mbps M [--stddev-frac F] [--duration-s S]\n"
               "                [--fades] [--seed N] [--out trace.csv]\n");
  return 2;
}

int cmd_validate(const std::string& path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  std::printf("OK: %d components on %zu nodes, %.0f s run\n",
              scene.app().component_count(),
              static_cast<std::size_t>(scene.network().topology().node_count()),
              sim::to_seconds(scene.duration()));
  return 0;
}

int cmd_run(const std::string& path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  const auto report = scene.run();
  if (report.median_bitrate_bps.empty()) {
    std::printf("requests   %lld issued, %lld completed, %lld shed\n",
                static_cast<long long>(report.requests_issued),
                static_cast<long long>(report.requests_completed),
                static_cast<long long>(report.requests_shed));
    std::printf("latency    mean %.1f ms | median %.1f ms | p99 %.1f ms\n",
                report.latency_mean_ms, report.latency_median_ms,
                report.latency_p99_ms);
  } else {
    for (const auto& [node, bps] : report.median_bitrate_bps) {
      std::printf("bitrate    %-12s median %7.0f Kbps per client\n",
                  scene.node_name(node).c_str(), bps / 1e3);
    }
  }
  std::printf("migrations %zu\n", report.migrations);
  std::printf("probes     %.2f MB\n", static_cast<double>(report.probe_bytes) / 1e6);
  return 0;
}

int cmd_dot(const std::string& path, const std::string& out_path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  std::unordered_map<app::ComponentId, net::NodeId> placement;
  for (app::ComponentId c = 0; c < scene.app().component_count(); ++c) {
    placement[c] = scene.orchestrator().node_of(scene.deployment(), c);
  }
  const std::string dot = app::to_dot(scene.app(), &placement);
  if (out_path.empty()) {
    std::fputs(dot.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << dot;
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args) {
  std::map<std::string, std::string> opts;
  bool fades = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--fades") {
      fades = true;
    } else if (args[i].rfind("--", 0) == 0 && i + 1 < args.size()) {
      const std::string key = args[i];
      opts[key] = args[++i];
    } else {
      return usage();
    }
  }
  if (!opts.count("--mean-mbps")) return usage();

  trace::GeneratorParams params;
  params.mean_bps = static_cast<net::Bps>(std::atof(opts["--mean-mbps"].c_str()) * 1e6);
  if (opts.count("--stddev-frac")) {
    params.stddev_frac = std::atof(opts["--stddev-frac"].c_str());
  }
  params.duration = sim::seconds_f(
      opts.count("--duration-s") ? std::atof(opts["--duration-s"].c_str()) : 1200);
  if (fades) params.fade_probability = 0.002;
  util::Rng rng(opts.count("--seed")
                    ? static_cast<std::uint64_t>(std::atoll(opts["--seed"].c_str()))
                    : 1);
  const auto generated = trace::generate_trace(params, rng);

  const std::string out = opts.count("--out") ? opts["--out"] : "";
  if (out.empty()) {
    for (const auto& p : generated.points()) {
      std::printf("%.0f,%lld\n", sim::to_seconds(p.at),
                  static_cast<long long>(p.bps));
    }
  } else if (!generated.save_csv(out)) {
    std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
    return 1;
  } else {
    std::printf("wrote %zu points to %s (mean %.2f Mbps, std %.1f%%)\n",
                generated.size(), out.c_str(), generated.mean_bps() / 1e6,
                100.0 * generated.stddev_bps() / generated.mean_bps());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  if (cmd == "validate" && args.size() == 1) return cmd_validate(args[0]);
  if (cmd == "run" && args.size() == 1) return cmd_run(args[0]);
  if (cmd == "dot" && (args.size() == 1 || args.size() == 2)) {
    return cmd_dot(args[0], args.size() == 2 ? args[1] : "");
  }
  if (cmd == "trace") return cmd_trace(args);
  return usage();
}
