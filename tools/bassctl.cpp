// bassctl — operator CLI for the BASS simulator.
//
//   bassctl validate <scenario.ini>        check a scenario without running
//   bassctl run <scenario.ini> [--journal out.jsonl] [--metrics out.json]
//               [--trace out.trace.json]   run it and print the report;
//                                          optionally export the event
//                                          journal (JSON Lines), metrics
//                                          snapshot, and Perfetto trace
//   bassctl events <journal.jsonl> [--type T] [--since S] [--until S]
//                                          filter/pretty-print a journal
//   bassctl dot <scenario.ini> [out.dot]   export the initial placement
//   bassctl trace --mean-mbps M [--stddev-frac F] [--duration-s S]
//                 [--fades] [--seed N] [--out trace.csv]
//                                          generate a bandwidth trace CSV
//   bassctl chaos <scenario.ini> [--seeds N] [--base-seed B]
//                 [--journal-dir DIR]      run the scenario's [chaos]/[fault]
//                                          plan under N seeds, report
//                                          recovery-time and failed-placement
//                                          stats, verify per-seed determinism
//
// The global --log-level {debug,info,warn,error,off} flag (or the BASS_LOG
// environment variable) controls library logging on stderr.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "app/dot.h"
#include "obs/journal.h"
#include "scenario/scenario.h"
#include "trace/generator.h"
#include "util/logging.h"

using namespace bass;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  bassctl [--log-level L] validate <scenario.ini>\n"
               "  bassctl [--log-level L] run <scenario.ini> [--journal out.jsonl]\n"
               "          [--metrics out.json] [--trace out.trace.json]\n"
               "  bassctl events <journal.jsonl> [--type T] [--since S] [--until S]\n"
               "  bassctl dot <scenario.ini> [out.dot]\n"
               "  bassctl trace --mean-mbps M [--stddev-frac F] [--duration-s S]\n"
               "                [--fades] [--seed N] [--out trace.csv]\n"
               "  bassctl chaos <scenario.ini> [--seeds N] [--base-seed B]\n"
               "                [--journal-dir DIR]\n");
  return 2;
}

int cmd_validate(const std::string& path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "INVALID: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  std::printf("OK: %d components on %zu nodes, %.0f s run\n",
              scene.app().component_count(),
              static_cast<std::size_t>(scene.network().topology().node_count()),
              sim::to_seconds(scene.duration()));
  return 0;
}

int cmd_run(const std::vector<std::string>& args) {
  std::string path;
  std::string journal_path, metrics_path, trace_path;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--journal" && i + 1 < args.size()) {
      journal_path = args[++i];
    } else if (args[i] == "--metrics" && i + 1 < args.size()) {
      metrics_path = args[++i];
    } else if (args[i] == "--trace" && i + 1 < args.size()) {
      trace_path = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  const auto report = scene.run();
  if (report.median_bitrate_bps.empty()) {
    std::printf("requests   %lld issued, %lld completed, %lld shed\n",
                static_cast<long long>(report.requests_issued),
                static_cast<long long>(report.requests_completed),
                static_cast<long long>(report.requests_shed));
    std::printf("latency    mean %.1f ms | median %.1f ms | p99 %.1f ms\n",
                report.latency_mean_ms, report.latency_median_ms,
                report.latency_p99_ms);
  } else {
    for (const auto& [node, bps] : report.median_bitrate_bps) {
      std::printf("bitrate    %-12s median %7.0f Kbps per client\n",
                  scene.node_name(node).c_str(), bps / 1e3);
    }
  }
  std::printf("migrations %zu\n", report.migrations);
  std::printf("probes     %.2f MB\n", static_cast<double>(report.probe_bytes) / 1e6);
  if (report.faults_injected > 0 || report.invariant_violations > 0) {
    std::printf("faults     %d injected, %d invariant violations\n",
                report.faults_injected, report.invariant_violations);
  }

  const obs::Recorder& recorder = scene.recorder();
  if (!journal_path.empty()) {
    if (!recorder.journal().write_jsonl(journal_path)) {
      std::fprintf(stderr, "cannot write '%s'\n", journal_path.c_str());
      return 1;
    }
    std::printf("journal    %zu events -> %s (%lld dropped)\n",
                recorder.journal().size(), journal_path.c_str(),
                static_cast<long long>(recorder.journal().dropped()));
  }
  if (!metrics_path.empty()) {
    if (!recorder.metrics().write_json(metrics_path, scene.now())) {
      std::fprintf(stderr, "cannot write '%s'\n", metrics_path.c_str());
      return 1;
    }
    std::printf("metrics    %zu instruments -> %s\n",
                recorder.metrics().instrument_count(), metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    if (!recorder.journal().write_trace(trace_path)) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
    std::printf("trace      %s (open in https://ui.perfetto.dev)\n", trace_path.c_str());
  }
  return 0;
}

// Filters and pretty-prints a journal written by `run --journal`. Times are
// printed in sim seconds; string values lose their JSON quotes.
int cmd_events(const std::vector<std::string>& args) {
  std::string path;
  std::string type_filter;
  double since_s = -1, until_s = -1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--type" && i + 1 < args.size()) {
      type_filter = args[++i];
    } else if (args[i] == "--since" && i + 1 < args.size()) {
      since_s = std::atof(args[++i].c_str());
    } else if (args[i] == "--until" && i + 1 < args.size()) {
      until_s = std::atof(args[++i].c_str());
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read '%s'\n", path.c_str());
    return 1;
  }
  std::string line;
  std::vector<std::pair<std::string, std::string>> fields;
  std::size_t lineno = 0, shown = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (!obs::parse_journal_line(line, fields)) {
      std::fprintf(stderr, "%s:%zu: not a journal line\n", path.c_str(), lineno);
      return 1;
    }
    double t_s = 0;
    std::string type;
    std::string rest;
    for (const auto& [key, value] : fields) {
      if (key == "t_us") {
        t_s = std::atof(value.c_str()) / 1e6;
      } else if (key == "type") {
        type = value.size() >= 2 ? value.substr(1, value.size() - 2) : value;
      } else {
        if (!rest.empty()) rest += "  ";
        rest += key + "=";
        // Strip the JSON quotes from string values for readability.
        if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
          rest += value.substr(1, value.size() - 2);
        } else {
          rest += value;
        }
      }
    }
    if (!type_filter.empty() && type != type_filter) continue;
    if (since_s >= 0 && t_s < since_s) continue;
    if (until_s >= 0 && t_s > until_s) continue;
    std::printf("%10.3fs  %-22s %s\n", t_s, type.c_str(), rest.c_str());
    ++shown;
  }
  std::fprintf(stderr, "%zu events\n", shown);
  return 0;
}

int cmd_dot(const std::string& path, const std::string& out_path) {
  auto s = scenario::Scenario::from_file(path);
  if (!s.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", s.error().c_str());
    return 1;
  }
  auto& scene = *s.value();
  std::unordered_map<app::ComponentId, net::NodeId> placement;
  for (app::ComponentId c = 0; c < scene.app().component_count(); ++c) {
    placement[c] = scene.orchestrator().node_of(scene.deployment(), c);
  }
  const std::string dot = app::to_dot(scene.app(), &placement);
  if (out_path.empty()) {
    std::fputs(dot.c_str(), stdout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
      return 1;
    }
    out << dot;
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}

int cmd_trace(const std::vector<std::string>& args) {
  std::map<std::string, std::string> opts;
  bool fades = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--fades") {
      fades = true;
    } else if (args[i].rfind("--", 0) == 0 && i + 1 < args.size()) {
      const std::string key = args[i];
      opts[key] = args[++i];
    } else {
      return usage();
    }
  }
  if (!opts.count("--mean-mbps")) return usage();

  trace::GeneratorParams params;
  params.mean_bps = static_cast<net::Bps>(std::atof(opts["--mean-mbps"].c_str()) * 1e6);
  if (opts.count("--stddev-frac")) {
    params.stddev_frac = std::atof(opts["--stddev-frac"].c_str());
  }
  params.duration = sim::seconds_f(
      opts.count("--duration-s") ? std::atof(opts["--duration-s"].c_str()) : 1200);
  if (fades) params.fade_probability = 0.002;
  util::Rng rng(opts.count("--seed")
                    ? static_cast<std::uint64_t>(std::atoll(opts["--seed"].c_str()))
                    : 1);
  const auto generated = trace::generate_trace(params, rng);

  const std::string out = opts.count("--out") ? opts["--out"] : "";
  if (out.empty()) {
    for (const auto& p : generated.points()) {
      std::printf("%.0f,%lld\n", sim::to_seconds(p.at),
                  static_cast<long long>(p.bps));
    }
  } else if (!generated.save_csv(out)) {
    std::fprintf(stderr, "cannot write '%s'\n", out.c_str());
    return 1;
  } else {
    std::printf("wrote %zu points to %s (mean %.2f Mbps, std %.1f%%)\n",
                generated.size(), out.c_str(), generated.mean_bps() / 1e6,
                100.0 * generated.stddev_bps() / generated.mean_bps());
  }
  return 0;
}

// ---- bassctl chaos ----

// Result of one seeded chaos run.
struct ChaosRun {
  scenario::RunReport report;
  std::string fault_events;         // fault_injected records, JSONL
  std::string journal;              // full journal, JSONL
  int components_down = 0;          // still down when the run ended
  std::vector<double> recovery_s;   // failover outage lengths, seconds
};

void ini_set(util::IniSection& section, const std::string& key,
             const std::string& value) {
  for (auto& [k, v] : section.entries) {
    if (k == key) {
      v = value;
      return;
    }
  }
  section.entries.emplace_back(key, value);
}

util::Expected<ChaosRun> run_chaos_seed(const util::IniFile& base,
                                        std::uint64_t seed) {
  util::IniFile ini = base;  // per-seed copy; only the seed key differs
  for (auto& section : ini.sections) {
    if (section.kind() == "chaos") {
      ini_set(section, "seed", std::to_string(seed));
      break;
    }
  }
  auto s = scenario::Scenario::from_ini(ini);
  if (!s.ok()) return util::make_error(s.error());
  auto& scene = *s.value();

  ChaosRun out;
  out.report = scene.run();
  core::Orchestrator& orch = scene.orchestrator();
  for (const core::MigrationEvent& ev : orch.migration_events()) {
    if (ev.reason == core::MoveReason::kFailover) {
      out.recovery_s.push_back(sim::to_seconds(ev.at - ev.started_at));
    }
  }
  for (core::DeploymentId id = 0; id < orch.deployment_count(); ++id) {
    for (app::ComponentId c = 0; c < orch.app(id).component_count(); ++c) {
      if (!orch.is_up(id, c)) ++out.components_down;
    }
  }
  scene.recorder().journal().for_each([&out](const obs::Event& e) {
    if (std::holds_alternative<obs::FaultInjected>(e)) {
      obs::append_jsonl(e, out.fault_events);
      out.fault_events += '\n';
    }
  });
  out.journal = scene.recorder().journal().to_jsonl();
  return out;
}

int cmd_chaos(const std::vector<std::string>& args) {
  std::string path, journal_dir;
  int seeds = 3;
  std::uint64_t base_seed = 1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--seeds" && i + 1 < args.size()) {
      seeds = std::atoi(args[++i].c_str());
    } else if (args[i] == "--base-seed" && i + 1 < args.size()) {
      base_seed = static_cast<std::uint64_t>(std::atoll(args[++i].c_str()));
    } else if (args[i] == "--journal-dir" && i + 1 < args.size()) {
      journal_dir = args[++i];
    } else if (args[i].rfind("--", 0) != 0 && path.empty()) {
      path = args[i];
    } else {
      return usage();
    }
  }
  if (path.empty() || seeds < 1) return usage();

  auto loaded = util::load_ini(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", loaded.error().c_str());
    return 1;
  }
  const util::IniFile base = loaded.take();
  const bool has_chaos = base.first_of_kind("chaos") != nullptr;
  if (!has_chaos && base.of_kind("fault").empty()) {
    std::fprintf(stderr,
                 "scenario error: '%s' has no [chaos] or [fault ...] sections\n",
                 path.c_str());
    return 1;
  }
  if (!journal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(journal_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create '%s': %s\n", journal_dir.c_str(),
                   ec.message().c_str());
      return 1;
    }
  }

  int total_violations = 0;
  std::string first_fault_events;
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = base_seed + static_cast<std::uint64_t>(i);
    auto run = run_chaos_seed(base, seed);
    if (!run.ok()) {
      std::fprintf(stderr, "scenario error (seed %llu): %s\n",
                   static_cast<unsigned long long>(seed), run.error().c_str());
      return 1;
    }
    const ChaosRun& r = run.value();
    if (i == 0) first_fault_events = r.fault_events;
    total_violations += r.report.invariant_violations;

    double mean_s = 0, max_s = 0;
    for (double s : r.recovery_s) {
      mean_s += s;
      max_s = std::max(max_s, s);
    }
    if (!r.recovery_s.empty()) mean_s /= static_cast<double>(r.recovery_s.size());
    std::printf(
        "seed %-4llu %3d faults  %d violations  %zu failovers"
        " (recovery mean %.1f s, max %.1f s)  %d components down at end\n",
        static_cast<unsigned long long>(seed), r.report.faults_injected,
        r.report.invariant_violations, r.recovery_s.size(), mean_s, max_s,
        r.components_down);

    if (!journal_dir.empty()) {
      const std::string out_path =
          journal_dir + "/seed_" + std::to_string(seed) + ".jsonl";
      std::ofstream out(out_path);
      if (!out || !(out << r.journal)) {
        std::fprintf(stderr, "cannot write '%s'\n", out_path.c_str());
        return 1;
      }
    }
  }

  // Determinism: replaying the first seed must produce a byte-identical
  // fault-event journal (chaos generation + injection are all Rng-driven).
  auto replay = run_chaos_seed(base, base_seed);
  if (!replay.ok()) {
    std::fprintf(stderr, "scenario error (replay): %s\n", replay.error().c_str());
    return 1;
  }
  const bool deterministic = replay.value().fault_events == first_fault_events;
  const std::size_t fault_lines =
      static_cast<std::size_t>(std::count(first_fault_events.begin(),
                                          first_fault_events.end(), '\n'));
  std::printf("determinism: seed %llu replay %s (%zu fault events)\n",
              static_cast<unsigned long long>(base_seed),
              deterministic ? "byte-identical" : "MISMATCH", fault_lines);

  if (total_violations > 0) {
    std::fprintf(stderr, "FAIL: %d invariant violations across %d seeds\n",
                 total_violations, seeds);
    return 1;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: fault journal not reproducible for seed %llu\n",
                 static_cast<unsigned long long>(base_seed));
    return 1;
  }
  std::printf("chaos soak: %d/%d seeds clean\n", seeds, seeds);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> all(argv + 1, argv + argc);
  // The global --log-level flag may appear anywhere; it wins over BASS_LOG.
  std::vector<std::string> rest;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (all[i] == "--log-level") {
      if (i + 1 >= all.size()) return usage();
      util::LogLevel level;
      if (!util::parse_log_level(all[++i], level)) {
        std::fprintf(stderr, "unknown log level '%s' (debug|info|warn|error|off)\n",
                     all[i].c_str());
        return 2;
      }
      util::set_log_level(level);
    } else {
      rest.push_back(all[i]);
    }
  }
  if (rest.empty()) return usage();
  const std::string cmd = rest[0];
  std::vector<std::string> args(rest.begin() + 1, rest.end());
  if (cmd == "validate" && args.size() == 1) return cmd_validate(args[0]);
  if (cmd == "run") return cmd_run(args);
  if (cmd == "events") return cmd_events(args);
  if (cmd == "dot" && (args.size() == 1 || args.size() == 2)) {
    return cmd_dot(args[0], args.size() == 2 ? args[1] : "");
  }
  if (cmd == "trace") return cmd_trace(args);
  if (cmd == "chaos") return cmd_chaos(args);
  return usage();
}
