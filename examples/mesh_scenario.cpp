// Scenario runner: stand up a mesh + application + workload from a
// declarative INI file and report what happened — no C++ required.
//
//   ./build/examples/mesh_scenario examples/scenarios/community_mesh.ini
#include <cstdio>
#include <fstream>

#include "app/dot.h"
#include "scenario/scenario.h"

using namespace bass;

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "examples/scenarios/community_mesh.ini";
  auto loaded = scenario::Scenario::from_file(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "scenario error: %s\n", loaded.error().c_str());
    return 1;
  }
  auto& scene = *loaded.value();

  std::printf("scenario: %s (%.0f s simulated)\n", path.c_str(),
              sim::to_seconds(scene.duration()));
  std::printf("initial placement:\n");
  const auto& graph = scene.app();
  for (app::ComponentId c = 0; c < graph.component_count(); ++c) {
    std::printf("  %-16s -> %s\n", graph.component(c).name.c_str(),
                scene.node_name(scene.orchestrator().node_of(scene.deployment(), c))
                    .c_str());
  }

  const auto report = scene.run();

  std::printf("\nresults:\n");
  std::printf("  requests: %lld issued, %lld completed, %lld shed\n",
              static_cast<long long>(report.requests_issued),
              static_cast<long long>(report.requests_completed),
              static_cast<long long>(report.requests_shed));
  std::printf("  latency:  mean %.1f ms  median %.1f ms  p99 %.1f ms\n",
              report.latency_mean_ms, report.latency_median_ms,
              report.latency_p99_ms);
  std::printf("  probes:   %.2f MB of measurement traffic\n",
              static_cast<double>(report.probe_bytes) / 1e6);
  std::printf("  migrations: %zu\n", report.migrations);
  for (const auto& m : scene.orchestrator().migration_events()) {
    std::printf("    t=%5.0fs %-16s %s -> %s\n", sim::to_seconds(m.at),
                graph.component(m.component).name.c_str(),
                scene.node_name(m.from).c_str(), scene.node_name(m.to).c_str());
  }

  if (!scene.dot_path().empty()) {
    std::ofstream out(scene.dot_path());
    std::unordered_map<app::ComponentId, net::NodeId> placement;
    for (app::ComponentId c = 0; c < graph.component_count(); ++c) {
      placement[c] = scene.orchestrator().node_of(scene.deployment(), c);
    }
    out << app::to_dot(graph, &placement);
    std::printf("  placement graph written to %s\n", scene.dot_path().c_str());
  }
  return 0;
}
