// Smart-intersection camera pipeline on a mesh: the paper's second
// application. A camera feed flows through a frame sampler into a YOLO
// object detector whose annotated frames and labels fan out to listeners.
// The example contrasts the three schedulers' placements and end-to-end
// latency on a small heterogeneous cluster.
//
// Run:  ./build/examples/camera_pipeline
#include <cstdio>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "workload/camera_pipeline.h"

using namespace bass;

namespace {

void run(core::SchedulerKind kind) {
  sim::Simulation sim;
  net::Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node("node" + std::to_string(i + 1));
  topo.add_link(0, 1, net::mbps(50));
  topo.add_link(1, 2, net::mbps(50));
  topo.add_link(0, 2, net::mbps(30));
  net::Network network(sim, std::move(topo));
  cluster::ClusterState cluster;
  for (int i = 0; i < 3; ++i) cluster.add_node(i, {12000, 16384, true});
  core::Orchestrator orch(sim, network, cluster);

  const auto id = orch.deploy(app::camera_pipeline_app(), kind);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    return;
  }
  const auto& graph = orch.app(id.value());

  std::printf("\n%s placement:\n", core::scheduler_kind_name(kind));
  for (app::ComponentId c = 0; c < graph.component_count(); ++c) {
    std::printf("  %-16s -> node%d\n", graph.component(c).name.c_str(),
                orch.node_of(id.value(), c) + 1);
  }

  // 10 fps for 3 minutes; per-frame end-to-end latency through the DAG.
  workload::CameraPipelineConfig cfg;
  cfg.fps = 10;
  workload::CameraPipelineEngine engine(orch, id.value(), cfg);
  engine.start();
  sim.run_until(sim::minutes(3));
  engine.stop();
  sim.run_until(sim::minutes(4));

  std::printf("  frames: %lld annotated, %lld dropped\n",
              static_cast<long long>(engine.frames_annotated()),
              static_cast<long long>(engine.frames_dropped()));
  std::printf("  e2e latency mean %.0f ms  median %.0f ms  p99 %.0f ms\n",
              engine.e2e().mean_ms(), engine.e2e().median_ms(), engine.e2e().p99_ms());
  std::printf("  stage means: ->sampler %.0f ms, ->detector %.0f ms, ->image %.0f ms\n",
              engine.to_sampler().mean_ms(), engine.to_detector().mean_ms(),
              engine.to_image().mean_ms());
}

}  // namespace

int main() {
  std::printf("camera pipeline: camera -> sampler -> detector -> listeners\n");
  run(core::SchedulerKind::kBassBfs);
  run(core::SchedulerKind::kBassLongestPath);
  run(core::SchedulerKind::kK3sDefault);
  return 0;
}
