// Community-mesh video conferencing: the paper's motivating scenario.
// Twelve neighbours (3 per mesh node) hold a conference over the emulated
// CityLab mesh while the wireless links fluctuate; BASS watches the SFU's
// links and migrates it when its node can no longer carry the forwarding
// load.
//
// Run:  ./build/examples/video_conference_mesh
#include <cstdio>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "trace/citylab.h"
#include "workload/video_conference.h"

using namespace bass;

int main() {
  // Emulated CityLab mesh with real-statistics traces (20 minutes).
  const auto mesh = trace::citylab_mesh();
  sim::Simulation sim;
  net::Network network(sim, mesh.topology);
  cluster::ClusterState cluster;
  cluster.add_node(0, {8000, 8192, false});  // control plane
  cluster.add_node(1, {12000, 8192, true});
  cluster.add_node(2, {12000, 8192, true});
  cluster.add_node(3, {12000, 8192, true});
  cluster.add_node(4, {8000, 8192, true});

  core::Orchestrator orch(sim, network, cluster);
  monitor::NetMonitor netmon(network);
  orch.attach_monitor(&netmon);
  netmon.start();

  trace::TracePlayer player(network);
  trace::bind_citylab_traces(mesh, player, sim::minutes(20), /*fades=*/true, 7);
  player.start();

  // 3 participants at each worker node, 150 Kbps per published stream.
  const std::vector<std::pair<net::NodeId, int>> groups{{1, 3}, {2, 3}, {3, 3}, {4, 3}};
  const net::Bps stream = net::kbps(150);
  const auto id = orch.deploy(app::video_conference_app(groups, stream),
                              core::SchedulerKind::kBassLongestPath);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    return 1;
  }
  std::printf("SFU deployed on %s\n",
              mesh.topology.node_name(orch.node_of(id.value(), 0)).c_str());

  controller::MigrationParams params;
  params.utilization_threshold = 0.65;
  params.headroom_frac = 0.20;
  params.evaluation_interval = sim::seconds(30);
  params.cooldown = sim::seconds(30);
  params.min_migration_gap = sim::minutes(2);
  orch.enable_migration(id.value(), params);

  workload::VideoConferenceConfig cfg;
  cfg.groups = {{1, 3}, {2, 3}, {3, 3}, {4, 3}};
  cfg.per_stream = stream;
  workload::VideoConferenceEngine engine(orch, id.value(), cfg);
  engine.start();

  sim.run_until(sim::minutes(20));
  engine.stop();
  netmon.stop();

  std::printf("\nconference summary (20 minutes, 12 participants):\n");
  for (const auto& g : cfg.groups) {
    std::printf("  %s: median %4.0f Kbps  mean loss %4.1f%%\n",
                mesh.topology.node_name(g.node).c_str(),
                engine.median_bitrate(g.node, sim::seconds(10)) / 1e3,
                engine.mean_loss(g.node, sim::seconds(10)) * 100);
  }
  std::printf("migrations: %zu\n", orch.migration_events().size());
  for (const auto& m : orch.migration_events()) {
    std::printf("  t=%4.0fs SFU %s -> %s\n", sim::to_seconds(m.at),
                mesh.topology.node_name(m.from).c_str(),
                mesh.topology.node_name(m.to).c_str());
  }
  std::printf("probe overhead: %.2f MB over 20 minutes (%d full probes)\n",
              static_cast<double>(netmon.probe_bytes_sent()) / 1e6,
              netmon.full_probe_count());
  return 0;
}
