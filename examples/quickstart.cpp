// Quickstart: the BASS public API in ~80 lines.
//
//   1. Describe a mesh (nodes + links with capacities).
//   2. Describe an application as a component DAG with bandwidth edges.
//   3. Deploy with a BASS heuristic and inspect the placement.
//   4. Shrink a link, let the net-monitor + controller migrate the
//      offending component, and watch goodput recover.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>

#include "core/orchestrator.h"
#include "workload/pair_stream.h"

using namespace bass;

int main() {
  // --- 1. The mesh: a triangle of 20 Mbps wireless links. ---
  sim::Simulation sim;
  net::Topology topo;
  const auto alpha = topo.add_node("alpha");
  const auto beta = topo.add_node("beta");
  const auto gamma = topo.add_node("gamma");
  topo.add_link(alpha, beta, net::mbps(20));
  topo.add_link(beta, gamma, net::mbps(20));
  topo.add_link(alpha, gamma, net::mbps(20));
  net::Network network(sim, std::move(topo));

  cluster::ClusterState cluster;
  cluster.add_node(alpha, {.cpu_milli = 4000, .memory_mb = 4096});
  cluster.add_node(beta, {.cpu_milli = 4000, .memory_mb = 4096});
  cluster.add_node(gamma, {.cpu_milli = 4000, .memory_mb = 4096});

  core::Orchestrator orch(sim, network, cluster);
  monitor::NetMonitor netmon(network);  // probes links, caches capacities
  orch.attach_monitor(&netmon);
  netmon.start();

  // --- 2. The application: producer -> consumer needing 8 Mbps. The
  // producer sits with its sensor hardware on alpha; the consumer is too
  // big to share that node, so it must ride a mesh link somewhere. ---
  app::AppGraph app("hello-mesh");
  app::Component producer_spec{.name = "producer", .cpu_milli = 3000,
                               .memory_mb = 512};
  producer_spec.pinned_node = alpha;
  const auto producer = app.add_component(producer_spec);
  const auto consumer = app.add_component(
      {.name = "consumer", .cpu_milli = 3000, .memory_mb = 512});
  app.add_dependency({.from = producer, .to = consumer, .bandwidth = net::mbps(8)});

  // --- 3. Deploy with the longest-path heuristic. ---
  const auto id = orch.deploy(app, core::SchedulerKind::kBassLongestPath);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    return 1;
  }
  std::printf("placement: producer->%s  consumer->%s\n",
              network.topology().node_name(orch.node_of(id.value(), producer)).c_str(),
              network.topology().node_name(orch.node_of(id.value(), consumer)).c_str());

  // --- 4. Enable migration and degrade the link the pair is using. ---
  controller::MigrationParams params;
  params.utilization_threshold = 0.5;
  params.headroom_frac = 0.2;
  params.evaluation_interval = sim::seconds(30);
  params.cooldown = sim::seconds(30);
  orch.enable_migration(id.value(), params);

  workload::PairStreamConfig traffic{.from = producer, .to = consumer,
                                     .demand = net::mbps(8)};
  workload::PairStreamEngine engine(orch, id.value(), traffic);
  engine.start();

  sim.schedule_at(sim::minutes(2), [&] {
    const auto a = orch.node_of(id.value(), producer);
    const auto b = orch.node_of(id.value(), consumer);
    if (a != b) {
      std::printf("t=120s: degrading the %s-%s link to 3 Mbps\n",
                  network.topology().node_name(a).c_str(),
                  network.topology().node_name(b).c_str());
      network.set_link_capacity_between(a, b, net::mbps(3));
    } else {
      std::printf("t=120s: pair colocated on %s; nothing to degrade\n",
                  network.topology().node_name(a).c_str());
    }
  });

  sim.run_until(sim::minutes(10));
  engine.stop();
  netmon.stop();

  for (const auto& m : orch.migration_events()) {
    std::printf("t=%.0fs: migrated %s from %s to %s\n", sim::to_seconds(m.at),
                app.component(m.component).name.c_str(),
                network.topology().node_name(m.from).c_str(),
                network.topology().node_name(m.to).c_str());
  }
  std::printf("goodput before degradation: %3.0f%%   after recovery: %3.0f%%\n",
              100 * engine.goodput_series().mean_in(sim::seconds(30), sim::minutes(2)),
              100 * engine.goodput_series().mean_in(sim::minutes(8), sim::minutes(10)));
  return 0;
}
