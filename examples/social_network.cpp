// Disaster-recovery social network on a community mesh: the paper's third
// application. The 27-microservice DeathStarBench-style graph runs over
// the emulated CityLab mesh while the links fluctuate; BASS's longest-path
// placement keeps the frontend-service-cache-database chains co-located
// and the controller migrates services whose links degrade.
//
// Run:  ./build/examples/social_network
#include <cstdio>
#include <map>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "trace/citylab.h"
#include "workload/request_engine.h"

using namespace bass;

int main() {
  const auto mesh = trace::citylab_mesh();
  sim::Simulation sim;
  net::Network network(sim, mesh.topology);
  cluster::ClusterState cluster;
  cluster.add_node(0, {8000, 8192, false});
  cluster.add_node(1, {12000, 8192, true});
  cluster.add_node(2, {12000, 8192, true});
  cluster.add_node(3, {12000, 8192, true});
  cluster.add_node(4, {8000, 8192, true});
  core::Orchestrator orch(sim, network, cluster);
  monitor::NetMonitor netmon(network);
  orch.attach_monitor(&netmon);
  netmon.start();

  trace::TracePlayer player(network);
  trace::bind_citylab_traces(mesh, player, sim::minutes(15), /*fades=*/true, 99);
  player.start();

  const auto id =
      orch.deploy(app::social_network_app(50.0 / 400.0), core::SchedulerKind::kBassLongestPath);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    return 1;
  }
  const auto& graph = orch.app(id.value());

  std::printf("placement (longest-path heuristic):\n");
  std::map<net::NodeId, std::vector<std::string>> by_node;
  for (app::ComponentId c = 0; c < graph.component_count(); ++c) {
    by_node[orch.node_of(id.value(), c)].push_back(graph.component(c).name);
  }
  for (const auto& [node, names] : by_node) {
    std::printf("  %s:", mesh.topology.node_name(node).c_str());
    for (const auto& n : names) std::printf(" %s", n.c_str());
    std::printf("\n");
  }

  controller::MigrationParams params;
  params.utilization_threshold = 0.50;
  params.headroom_frac = 0.20;
  params.evaluation_interval = sim::seconds(30);
  params.cooldown = sim::seconds(30);
  params.min_migration_gap = sim::seconds(90);
  orch.enable_migration(id.value(), params);

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 50;
  cfg.arrival = workload::RequestWorkloadConfig::Arrival::kExponential;
  cfg.client_node = 0;  // requests arrive via the control-plane gateway
  workload::RequestEngine engine(orch, id.value(), cfg);
  engine.start();
  sim.run_until(sim::minutes(15));
  engine.stop();
  sim.run_until(sim::minutes(17));
  netmon.stop();

  std::printf("\n15-minute run at ~50 RPS (exponential arrivals):\n");
  std::printf("  requests completed: %lld\n", static_cast<long long>(engine.completed()));
  std::printf("  latency mean %.0f ms  median %.0f ms  p99 %.0f ms\n",
              engine.latencies().mean_ms(), engine.latencies().median_ms(),
              engine.latencies().p99_ms());
  std::printf("  migrations: %zu\n", orch.migration_events().size());
  for (const auto& m : orch.migration_events()) {
    std::printf("    t=%4.0fs %-24s %s -> %s\n", sim::to_seconds(m.at),
                graph.component(m.component).name.c_str(),
                mesh.topology.node_name(m.from).c_str(),
                mesh.topology.node_name(m.to).c_str());
  }
  return 0;
}
