file(REMOVE_RECURSE
  "../bench/bench_fig12_vc_migration"
  "../bench/bench_fig12_vc_migration.pdb"
  "CMakeFiles/bench_fig12_vc_migration.dir/bench_fig12_vc_migration.cpp.o"
  "CMakeFiles/bench_fig12_vc_migration.dir/bench_fig12_vc_migration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_vc_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
