# Empty dependencies file for bench_fig13_socialnet_migration.
# This may be replaced when dependencies are built.
