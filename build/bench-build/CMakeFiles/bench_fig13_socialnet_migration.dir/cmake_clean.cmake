file(REMOVE_RECURSE
  "../bench/bench_fig13_socialnet_migration"
  "../bench/bench_fig13_socialnet_migration.pdb"
  "CMakeFiles/bench_fig13_socialnet_migration.dir/bench_fig13_socialnet_migration.cpp.o"
  "CMakeFiles/bench_fig13_socialnet_migration.dir/bench_fig13_socialnet_migration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_socialnet_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
