# Empty compiler generated dependencies file for bench_fig11_socialnet_static.
# This may be replaced when dependencies are built.
