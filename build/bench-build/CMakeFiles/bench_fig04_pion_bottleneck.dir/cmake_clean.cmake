file(REMOVE_RECURSE
  "../bench/bench_fig04_pion_bottleneck"
  "../bench/bench_fig04_pion_bottleneck.pdb"
  "CMakeFiles/bench_fig04_pion_bottleneck.dir/bench_fig04_pion_bottleneck.cpp.o"
  "CMakeFiles/bench_fig04_pion_bottleneck.dir/bench_fig04_pion_bottleneck.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_pion_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
