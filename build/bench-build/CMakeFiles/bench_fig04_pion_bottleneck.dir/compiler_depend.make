# Empty compiler generated dependencies file for bench_fig04_pion_bottleneck.
# This may be replaced when dependencies are built.
