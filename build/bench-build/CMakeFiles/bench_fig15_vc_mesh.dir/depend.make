# Empty dependencies file for bench_fig15_vc_mesh.
# This may be replaced when dependencies are built.
