file(REMOVE_RECURSE
  "../bench/bench_fig15_vc_mesh"
  "../bench/bench_fig15_vc_mesh.pdb"
  "CMakeFiles/bench_fig15_vc_mesh.dir/bench_fig15_vc_mesh.cpp.o"
  "CMakeFiles/bench_fig15_vc_mesh.dir/bench_fig15_vc_mesh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_vc_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
