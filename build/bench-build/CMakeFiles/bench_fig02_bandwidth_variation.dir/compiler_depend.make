# Empty compiler generated dependencies file for bench_fig02_bandwidth_variation.
# This may be replaced when dependencies are built.
