file(REMOVE_RECURSE
  "../bench/bench_table2_camera_mesh"
  "../bench/bench_table2_camera_mesh.pdb"
  "CMakeFiles/bench_table2_camera_mesh.dir/bench_table2_camera_mesh.cpp.o"
  "CMakeFiles/bench_table2_camera_mesh.dir/bench_table2_camera_mesh.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_camera_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
