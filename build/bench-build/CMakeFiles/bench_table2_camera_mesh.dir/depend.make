# Empty dependencies file for bench_table2_camera_mesh.
# This may be replaced when dependencies are built.
