file(REMOVE_RECURSE
  "../bench/bench_ablation_fairness"
  "../bench/bench_ablation_fairness.pdb"
  "CMakeFiles/bench_ablation_fairness.dir/bench_ablation_fairness.cpp.o"
  "CMakeFiles/bench_ablation_fairness.dir/bench_ablation_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
