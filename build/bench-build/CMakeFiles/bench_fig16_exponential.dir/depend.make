# Empty dependencies file for bench_fig16_exponential.
# This may be replaced when dependencies are built.
