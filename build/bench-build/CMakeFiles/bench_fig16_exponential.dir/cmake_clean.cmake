file(REMOVE_RECURSE
  "../bench/bench_fig16_exponential"
  "../bench/bench_fig16_exponential.pdb"
  "CMakeFiles/bench_fig16_exponential.dir/bench_fig16_exponential.cpp.o"
  "CMakeFiles/bench_fig16_exponential.dir/bench_fig16_exponential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_exponential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
