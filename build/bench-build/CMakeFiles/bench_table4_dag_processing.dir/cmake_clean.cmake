file(REMOVE_RECURSE
  "../bench/bench_table4_dag_processing"
  "../bench/bench_table4_dag_processing.pdb"
  "CMakeFiles/bench_table4_dag_processing.dir/bench_table4_dag_processing.cpp.o"
  "CMakeFiles/bench_table4_dag_processing.dir/bench_table4_dag_processing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_dag_processing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
