# Empty dependencies file for bench_table4_dag_processing.
# This may be replaced when dependencies are built.
