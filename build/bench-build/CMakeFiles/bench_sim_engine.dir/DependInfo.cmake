
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sim_engine.cpp" "bench-build/CMakeFiles/bench_sim_engine.dir/bench_sim_engine.cpp.o" "gcc" "bench-build/CMakeFiles/bench_sim_engine.dir/bench_sim_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/bass_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/bass_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/bass_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/bass_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/bass_controller.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bass_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/bass_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bass_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/bass_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bass_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
