file(REMOVE_RECURSE
  "../bench/bench_sim_engine"
  "../bench/bench_sim_engine.pdb"
  "CMakeFiles/bench_sim_engine.dir/bench_sim_engine.cpp.o"
  "CMakeFiles/bench_sim_engine.dir/bench_sim_engine.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sim_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
