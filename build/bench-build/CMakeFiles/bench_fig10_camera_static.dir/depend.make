# Empty dependencies file for bench_fig10_camera_static.
# This may be replaced when dependencies are built.
