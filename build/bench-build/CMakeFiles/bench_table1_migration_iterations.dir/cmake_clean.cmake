file(REMOVE_RECURSE
  "../bench/bench_table1_migration_iterations"
  "../bench/bench_table1_migration_iterations.pdb"
  "CMakeFiles/bench_table1_migration_iterations.dir/bench_table1_migration_iterations.cpp.o"
  "CMakeFiles/bench_table1_migration_iterations.dir/bench_table1_migration_iterations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_migration_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
