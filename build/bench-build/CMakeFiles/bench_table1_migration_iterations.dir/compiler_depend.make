# Empty compiler generated dependencies file for bench_table1_migration_iterations.
# This may be replaced when dependencies are built.
