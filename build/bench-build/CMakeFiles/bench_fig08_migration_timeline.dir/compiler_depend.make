# Empty compiler generated dependencies file for bench_fig08_migration_timeline.
# This may be replaced when dependencies are built.
