file(REMOVE_RECURSE
  "../bench/bench_ablation_probing"
  "../bench/bench_ablation_probing.pdb"
  "CMakeFiles/bench_ablation_probing.dir/bench_ablation_probing.cpp.o"
  "CMakeFiles/bench_ablation_probing.dir/bench_ablation_probing.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_probing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
