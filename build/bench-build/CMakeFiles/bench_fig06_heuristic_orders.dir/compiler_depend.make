# Empty compiler generated dependencies file for bench_fig06_heuristic_orders.
# This may be replaced when dependencies are built.
