file(REMOVE_RECURSE
  "../bench/bench_fig06_heuristic_orders"
  "../bench/bench_fig06_heuristic_orders.pdb"
  "CMakeFiles/bench_fig06_heuristic_orders.dir/bench_fig06_heuristic_orders.cpp.o"
  "CMakeFiles/bench_fig06_heuristic_orders.dir/bench_fig06_heuristic_orders.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_heuristic_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
