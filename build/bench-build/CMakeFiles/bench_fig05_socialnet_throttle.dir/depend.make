# Empty dependencies file for bench_fig05_socialnet_throttle.
# This may be replaced when dependencies are built.
