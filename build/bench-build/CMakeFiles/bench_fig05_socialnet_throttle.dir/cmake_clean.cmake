file(REMOVE_RECURSE
  "../bench/bench_fig05_socialnet_throttle"
  "../bench/bench_fig05_socialnet_throttle.pdb"
  "CMakeFiles/bench_fig05_socialnet_throttle.dir/bench_fig05_socialnet_throttle.cpp.o"
  "CMakeFiles/bench_fig05_socialnet_throttle.dir/bench_fig05_socialnet_throttle.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_socialnet_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
