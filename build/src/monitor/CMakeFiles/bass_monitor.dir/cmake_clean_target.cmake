file(REMOVE_RECURSE
  "libbass_monitor.a"
)
