
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/monitor/net_monitor.cpp" "src/monitor/CMakeFiles/bass_monitor.dir/net_monitor.cpp.o" "gcc" "src/monitor/CMakeFiles/bass_monitor.dir/net_monitor.cpp.o.d"
  "/root/repo/src/monitor/traffic_stats.cpp" "src/monitor/CMakeFiles/bass_monitor.dir/traffic_stats.cpp.o" "gcc" "src/monitor/CMakeFiles/bass_monitor.dir/traffic_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/bass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/bass_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/app/CMakeFiles/bass_app.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bass_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bass_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
