file(REMOVE_RECURSE
  "CMakeFiles/bass_monitor.dir/net_monitor.cpp.o"
  "CMakeFiles/bass_monitor.dir/net_monitor.cpp.o.d"
  "CMakeFiles/bass_monitor.dir/traffic_stats.cpp.o"
  "CMakeFiles/bass_monitor.dir/traffic_stats.cpp.o.d"
  "libbass_monitor.a"
  "libbass_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
