# Empty compiler generated dependencies file for bass_monitor.
# This may be replaced when dependencies are built.
