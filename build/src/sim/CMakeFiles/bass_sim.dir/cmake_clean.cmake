file(REMOVE_RECURSE
  "CMakeFiles/bass_sim.dir/event_queue.cpp.o"
  "CMakeFiles/bass_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/bass_sim.dir/simulation.cpp.o"
  "CMakeFiles/bass_sim.dir/simulation.cpp.o.d"
  "libbass_sim.a"
  "libbass_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
