file(REMOVE_RECURSE
  "libbass_sim.a"
)
