# Empty compiler generated dependencies file for bass_sim.
# This may be replaced when dependencies are built.
