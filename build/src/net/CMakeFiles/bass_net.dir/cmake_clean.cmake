file(REMOVE_RECURSE
  "CMakeFiles/bass_net.dir/maxmin.cpp.o"
  "CMakeFiles/bass_net.dir/maxmin.cpp.o.d"
  "CMakeFiles/bass_net.dir/network.cpp.o"
  "CMakeFiles/bass_net.dir/network.cpp.o.d"
  "CMakeFiles/bass_net.dir/routing.cpp.o"
  "CMakeFiles/bass_net.dir/routing.cpp.o.d"
  "CMakeFiles/bass_net.dir/topology.cpp.o"
  "CMakeFiles/bass_net.dir/topology.cpp.o.d"
  "libbass_net.a"
  "libbass_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
