file(REMOVE_RECURSE
  "libbass_net.a"
)
