# Empty dependencies file for bass_net.
# This may be replaced when dependencies are built.
