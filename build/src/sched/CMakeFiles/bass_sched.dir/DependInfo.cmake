
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/bass_scheduler.cpp" "src/sched/CMakeFiles/bass_sched.dir/bass_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/bass_scheduler.cpp.o.d"
  "/root/repo/src/sched/heuristics.cpp" "src/sched/CMakeFiles/bass_sched.dir/heuristics.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/heuristics.cpp.o.d"
  "/root/repo/src/sched/k3s_scheduler.cpp" "src/sched/CMakeFiles/bass_sched.dir/k3s_scheduler.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/k3s_scheduler.cpp.o.d"
  "/root/repo/src/sched/network_view.cpp" "src/sched/CMakeFiles/bass_sched.dir/network_view.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/network_view.cpp.o.d"
  "/root/repo/src/sched/node_ranker.cpp" "src/sched/CMakeFiles/bass_sched.dir/node_ranker.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/node_ranker.cpp.o.d"
  "/root/repo/src/sched/packer.cpp" "src/sched/CMakeFiles/bass_sched.dir/packer.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/packer.cpp.o.d"
  "/root/repo/src/sched/rescheduler.cpp" "src/sched/CMakeFiles/bass_sched.dir/rescheduler.cpp.o" "gcc" "src/sched/CMakeFiles/bass_sched.dir/rescheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/bass_app.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/bass_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/bass_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/bass_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/bass_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
