# Empty dependencies file for bass_sched.
# This may be replaced when dependencies are built.
