file(REMOVE_RECURSE
  "libbass_sched.a"
)
