file(REMOVE_RECURSE
  "CMakeFiles/bass_sched.dir/bass_scheduler.cpp.o"
  "CMakeFiles/bass_sched.dir/bass_scheduler.cpp.o.d"
  "CMakeFiles/bass_sched.dir/heuristics.cpp.o"
  "CMakeFiles/bass_sched.dir/heuristics.cpp.o.d"
  "CMakeFiles/bass_sched.dir/k3s_scheduler.cpp.o"
  "CMakeFiles/bass_sched.dir/k3s_scheduler.cpp.o.d"
  "CMakeFiles/bass_sched.dir/network_view.cpp.o"
  "CMakeFiles/bass_sched.dir/network_view.cpp.o.d"
  "CMakeFiles/bass_sched.dir/node_ranker.cpp.o"
  "CMakeFiles/bass_sched.dir/node_ranker.cpp.o.d"
  "CMakeFiles/bass_sched.dir/packer.cpp.o"
  "CMakeFiles/bass_sched.dir/packer.cpp.o.d"
  "CMakeFiles/bass_sched.dir/rescheduler.cpp.o"
  "CMakeFiles/bass_sched.dir/rescheduler.cpp.o.d"
  "libbass_sched.a"
  "libbass_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
