# Empty dependencies file for bass_scenario.
# This may be replaced when dependencies are built.
