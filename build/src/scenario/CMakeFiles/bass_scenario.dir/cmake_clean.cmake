file(REMOVE_RECURSE
  "CMakeFiles/bass_scenario.dir/scenario.cpp.o"
  "CMakeFiles/bass_scenario.dir/scenario.cpp.o.d"
  "libbass_scenario.a"
  "libbass_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
