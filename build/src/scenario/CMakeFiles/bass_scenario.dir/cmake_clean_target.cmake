file(REMOVE_RECURSE
  "libbass_scenario.a"
)
