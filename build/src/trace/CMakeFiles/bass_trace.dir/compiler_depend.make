# Empty compiler generated dependencies file for bass_trace.
# This may be replaced when dependencies are built.
