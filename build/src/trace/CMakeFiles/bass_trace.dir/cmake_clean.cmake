file(REMOVE_RECURSE
  "CMakeFiles/bass_trace.dir/citylab.cpp.o"
  "CMakeFiles/bass_trace.dir/citylab.cpp.o.d"
  "CMakeFiles/bass_trace.dir/generator.cpp.o"
  "CMakeFiles/bass_trace.dir/generator.cpp.o.d"
  "CMakeFiles/bass_trace.dir/player.cpp.o"
  "CMakeFiles/bass_trace.dir/player.cpp.o.d"
  "CMakeFiles/bass_trace.dir/trace.cpp.o"
  "CMakeFiles/bass_trace.dir/trace.cpp.o.d"
  "libbass_trace.a"
  "libbass_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
