file(REMOVE_RECURSE
  "libbass_trace.a"
)
