# Empty compiler generated dependencies file for bass_profiler.
# This may be replaced when dependencies are built.
