file(REMOVE_RECURSE
  "CMakeFiles/bass_profiler.dir/online_profiler.cpp.o"
  "CMakeFiles/bass_profiler.dir/online_profiler.cpp.o.d"
  "libbass_profiler.a"
  "libbass_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
