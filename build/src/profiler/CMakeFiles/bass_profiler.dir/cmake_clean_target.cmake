file(REMOVE_RECURSE
  "libbass_profiler.a"
)
