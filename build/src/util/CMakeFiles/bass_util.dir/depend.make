# Empty dependencies file for bass_util.
# This may be replaced when dependencies are built.
