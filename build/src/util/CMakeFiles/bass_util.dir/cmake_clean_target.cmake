file(REMOVE_RECURSE
  "libbass_util.a"
)
