file(REMOVE_RECURSE
  "CMakeFiles/bass_util.dir/csv.cpp.o"
  "CMakeFiles/bass_util.dir/csv.cpp.o.d"
  "CMakeFiles/bass_util.dir/ini.cpp.o"
  "CMakeFiles/bass_util.dir/ini.cpp.o.d"
  "CMakeFiles/bass_util.dir/logging.cpp.o"
  "CMakeFiles/bass_util.dir/logging.cpp.o.d"
  "CMakeFiles/bass_util.dir/stats.cpp.o"
  "CMakeFiles/bass_util.dir/stats.cpp.o.d"
  "CMakeFiles/bass_util.dir/strings.cpp.o"
  "CMakeFiles/bass_util.dir/strings.cpp.o.d"
  "libbass_util.a"
  "libbass_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
