file(REMOVE_RECURSE
  "CMakeFiles/bass_controller.dir/migration_policy.cpp.o"
  "CMakeFiles/bass_controller.dir/migration_policy.cpp.o.d"
  "libbass_controller.a"
  "libbass_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
