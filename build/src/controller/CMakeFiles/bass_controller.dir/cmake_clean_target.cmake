file(REMOVE_RECURSE
  "libbass_controller.a"
)
