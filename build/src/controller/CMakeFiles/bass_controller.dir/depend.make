# Empty dependencies file for bass_controller.
# This may be replaced when dependencies are built.
