# Empty compiler generated dependencies file for bass_workload.
# This may be replaced when dependencies are built.
