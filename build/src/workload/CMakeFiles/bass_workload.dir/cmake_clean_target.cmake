file(REMOVE_RECURSE
  "libbass_workload.a"
)
