file(REMOVE_RECURSE
  "CMakeFiles/bass_workload.dir/camera_pipeline.cpp.o"
  "CMakeFiles/bass_workload.dir/camera_pipeline.cpp.o.d"
  "CMakeFiles/bass_workload.dir/pair_stream.cpp.o"
  "CMakeFiles/bass_workload.dir/pair_stream.cpp.o.d"
  "CMakeFiles/bass_workload.dir/request_engine.cpp.o"
  "CMakeFiles/bass_workload.dir/request_engine.cpp.o.d"
  "CMakeFiles/bass_workload.dir/video_conference.cpp.o"
  "CMakeFiles/bass_workload.dir/video_conference.cpp.o.d"
  "libbass_workload.a"
  "libbass_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
