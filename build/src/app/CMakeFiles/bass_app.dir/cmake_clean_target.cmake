file(REMOVE_RECURSE
  "libbass_app.a"
)
