file(REMOVE_RECURSE
  "CMakeFiles/bass_app.dir/app_graph.cpp.o"
  "CMakeFiles/bass_app.dir/app_graph.cpp.o.d"
  "CMakeFiles/bass_app.dir/catalog.cpp.o"
  "CMakeFiles/bass_app.dir/catalog.cpp.o.d"
  "CMakeFiles/bass_app.dir/dot.cpp.o"
  "CMakeFiles/bass_app.dir/dot.cpp.o.d"
  "libbass_app.a"
  "libbass_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
