# Empty compiler generated dependencies file for bass_app.
# This may be replaced when dependencies are built.
