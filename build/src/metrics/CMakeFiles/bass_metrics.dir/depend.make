# Empty dependencies file for bass_metrics.
# This may be replaced when dependencies are built.
