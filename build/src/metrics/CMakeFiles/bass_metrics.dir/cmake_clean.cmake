file(REMOVE_RECURSE
  "CMakeFiles/bass_metrics.dir/cdf.cpp.o"
  "CMakeFiles/bass_metrics.dir/cdf.cpp.o.d"
  "CMakeFiles/bass_metrics.dir/latency_recorder.cpp.o"
  "CMakeFiles/bass_metrics.dir/latency_recorder.cpp.o.d"
  "CMakeFiles/bass_metrics.dir/time_series.cpp.o"
  "CMakeFiles/bass_metrics.dir/time_series.cpp.o.d"
  "libbass_metrics.a"
  "libbass_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
