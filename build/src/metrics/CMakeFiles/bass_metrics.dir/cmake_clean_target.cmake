file(REMOVE_RECURSE
  "libbass_metrics.a"
)
