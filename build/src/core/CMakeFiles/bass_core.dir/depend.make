# Empty dependencies file for bass_core.
# This may be replaced when dependencies are built.
