file(REMOVE_RECURSE
  "libbass_core.a"
)
