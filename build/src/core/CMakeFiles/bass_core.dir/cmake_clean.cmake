file(REMOVE_RECURSE
  "CMakeFiles/bass_core.dir/orchestrator.cpp.o"
  "CMakeFiles/bass_core.dir/orchestrator.cpp.o.d"
  "libbass_core.a"
  "libbass_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
