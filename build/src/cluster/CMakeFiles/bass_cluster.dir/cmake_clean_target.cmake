file(REMOVE_RECURSE
  "libbass_cluster.a"
)
