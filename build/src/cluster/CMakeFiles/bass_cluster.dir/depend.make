# Empty dependencies file for bass_cluster.
# This may be replaced when dependencies are built.
