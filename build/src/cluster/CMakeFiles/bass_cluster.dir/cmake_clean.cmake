file(REMOVE_RECURSE
  "CMakeFiles/bass_cluster.dir/cluster.cpp.o"
  "CMakeFiles/bass_cluster.dir/cluster.cpp.o.d"
  "libbass_cluster.a"
  "libbass_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bass_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
