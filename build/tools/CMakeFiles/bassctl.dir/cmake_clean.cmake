file(REMOVE_RECURSE
  "CMakeFiles/bassctl.dir/bassctl.cpp.o"
  "CMakeFiles/bassctl.dir/bassctl.cpp.o.d"
  "bassctl"
  "bassctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bassctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
