# Empty dependencies file for bassctl.
# This may be replaced when dependencies are built.
