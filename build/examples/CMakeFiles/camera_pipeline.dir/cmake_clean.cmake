file(REMOVE_RECURSE
  "CMakeFiles/camera_pipeline.dir/camera_pipeline.cpp.o"
  "CMakeFiles/camera_pipeline.dir/camera_pipeline.cpp.o.d"
  "camera_pipeline"
  "camera_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camera_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
