file(REMOVE_RECURSE
  "CMakeFiles/video_conference_mesh.dir/video_conference_mesh.cpp.o"
  "CMakeFiles/video_conference_mesh.dir/video_conference_mesh.cpp.o.d"
  "video_conference_mesh"
  "video_conference_mesh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_conference_mesh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
