# Empty compiler generated dependencies file for video_conference_mesh.
# This may be replaced when dependencies are built.
