# Empty compiler generated dependencies file for mesh_scenario.
# This may be replaced when dependencies are built.
