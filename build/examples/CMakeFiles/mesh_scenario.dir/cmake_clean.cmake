file(REMOVE_RECURSE
  "CMakeFiles/mesh_scenario.dir/mesh_scenario.cpp.o"
  "CMakeFiles/mesh_scenario.dir/mesh_scenario.cpp.o.d"
  "mesh_scenario"
  "mesh_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesh_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
