file(REMOVE_RECURSE
  "CMakeFiles/packer_property_test.dir/packer_property_test.cpp.o"
  "CMakeFiles/packer_property_test.dir/packer_property_test.cpp.o.d"
  "packer_property_test"
  "packer_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packer_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
