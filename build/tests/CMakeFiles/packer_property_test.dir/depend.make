# Empty dependencies file for packer_property_test.
# This may be replaced when dependencies are built.
