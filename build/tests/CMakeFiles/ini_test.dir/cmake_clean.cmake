file(REMOVE_RECURSE
  "CMakeFiles/ini_test.dir/ini_test.cpp.o"
  "CMakeFiles/ini_test.dir/ini_test.cpp.o.d"
  "ini_test"
  "ini_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ini_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
