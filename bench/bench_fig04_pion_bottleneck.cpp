// Fig. 4 — Per-client bandwidth and packet loss vs participant count for
// the Pion SFU behind a 30 Mbps bottleneck (the Fig. 3 setup: clients on
// node 3, server on node 2, node 2's egress tc-limited to 30 Mbps).
//
// One participant publishes a ~3 Mbps feed; every other participant
// subscribes to it (the paper's conference mode). Beyond ~10 participants
// the forwarded copies exceed the bottleneck, bitrate per client collapses
// and loss climbs — the bandwidth-obliviousness k3s cannot see.
#include "common.h"

#include "workload/video_conference.h"

using namespace bass;

int main() {
  bench::print_header("Fig. 4: Pion per-client bitrate & loss vs participants");
  std::printf("bottleneck 30 Mbps at server egress, 3 Mbps published stream\n");
  std::printf("%12s %18s %12s\n", "participants", "bitrate/client", "loss");

  const net::Bps kStream = net::mbps(3);
  for (int participants = 2; participants <= 20; participants += 2) {
    // Fresh 3-node LAN per point (node index 1 = "node 2" of the paper).
    bench::LanCluster rig(3, 16000, 131072);
    rig.limit_node_egress(1, net::mbps(30));

    const std::vector<std::pair<net::NodeId, int>> groups{{2, participants}};
    auto app_graph = app::video_conference_app(groups, kStream);
    sched::Placement manual;
    manual[app_graph.find("pion-sfu")] = 1;  // server fixed on node 2
    const auto id = rig.orch->deploy_with_placement(std::move(app_graph), manual);
    if (!id.ok()) {
      std::printf("deploy failed: %s\n", id.error().c_str());
      return 1;
    }

    workload::VideoConferenceConfig cfg;
    cfg.groups = {{2, participants}};
    cfg.per_stream = kStream;
    cfg.single_publisher = true;
    workload::VideoConferenceEngine engine(*rig.orch, id.value(), cfg);
    engine.start();
    rig.sim.run_until(sim::minutes(2));
    engine.stop();

    const double bitrate = engine.mean_bitrate(2, sim::seconds(5));
    const double loss = engine.mean_loss(2, sim::seconds(5));
    std::printf("%12d %15.0f Kbps %11.1f%%\n", participants, bitrate / 1e3,
                loss * 100.0);
  }
  std::printf("\nexpect: full 3 Mbps and ~0%% loss up to ~10 participants, then "
              "collapse (paper Fig. 4)\n");
  return 0;
}
