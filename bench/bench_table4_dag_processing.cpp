// Table 4 — DAG processing time per application: the one-time cost of
// running the ordering heuristics over the component graph before packing
// (paper: 63.9 ms for the 27-component social network, 26.3 ms for the
// 1-component video conference, 30.6 ms for the 5-component camera
// pipeline — theirs includes Go runtime overheads; ours times the pure
// graph processing).
#include <benchmark/benchmark.h>

#include "app/catalog.h"
#include "sched/heuristics.h"

using namespace bass;

namespace {

app::AppGraph make_app(const std::string& name) {
  if (name == "social-network") return app::social_network_app();
  if (name == "video-conference") {
    return app::video_conference_app({{1, 3}, {2, 3}, {3, 3}}, net::kbps(800));
  }
  return app::camera_pipeline_app();
}

void BM_DagProcessing(benchmark::State& state, const std::string& app_name) {
  const app::AppGraph graph = make_app(app_name);
  for (auto _ : state) {
    // The full pre-packing pipeline: topo sort + both heuristics.
    auto bfs = sched::bfs_order(graph);
    auto paths = sched::longest_path_paths(graph);
    benchmark::DoNotOptimize(bfs);
    benchmark::DoNotOptimize(paths);
  }
  state.counters["components"] = static_cast<double>(graph.component_count());
}

BENCHMARK_CAPTURE(BM_DagProcessing, social_network_27_comps,
                  std::string("social-network"));
BENCHMARK_CAPTURE(BM_DagProcessing, video_conference_4_comps,
                  std::string("video-conference"));
BENCHMARK_CAPTURE(BM_DagProcessing, camera_5_comps, std::string("camera-pipeline"));

// Scaling sanity: random layered DAGs of growing size.
void BM_DagProcessingScaling(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  app::AppGraph g("scaling");
  for (int i = 0; i < n; ++i) {
    g.add_component({.name = "c" + std::to_string(i), .cpu_milli = 100,
                     .memory_mb = 64});
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < std::min(i + 4, n); ++j) {
      g.add_dependency({.from = i, .to = j,
                        .bandwidth = net::kbps(100 + 13 * ((i * 7 + j) % 97))});
    }
  }
  for (auto _ : state) {
    auto bfs = sched::bfs_order(g);
    auto paths = sched::longest_path_paths(g);
    benchmark::DoNotOptimize(bfs);
    benchmark::DoNotOptimize(paths);
  }
}
BENCHMARK(BM_DagProcessingScaling)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
