// Fig. 2 — Bandwidth variation (10-second rolling mean) on two CityLab
// links: one stable (paper: mean 19.9 Mbps, std 10% of mean) and one
// variable (mean 7.62 Mbps, std 27% of mean). Regenerates both traces from
// the calibrated generator and reports the statistics the caption states,
// plus a downsampled rolling-mean series for plotting.
#include "common.h"

#include "metrics/time_series.h"
#include "trace/citylab.h"
#include "trace/generator.h"
#include "util/stats.h"

using namespace bass;

namespace {

void report(const char* name, const trace::GeneratorParams& params,
            std::uint64_t seed) {
  util::Rng rng(seed);
  const trace::BandwidthTrace t = trace::generate_trace(params, rng);

  metrics::TimeSeries raw;
  for (const auto& p : t.points()) raw.record(p.at, static_cast<double>(p.bps) / 1e6);
  const metrics::TimeSeries rolling = raw.rolling_mean(sim::seconds(10));

  const double mean = t.mean_bps() / 1e6;
  const double std_pct = 100.0 * t.stddev_bps() / t.mean_bps();
  std::printf("%-14s mean=%6.2f Mbps  std=%4.1f%% of mean  min=%5.2f  max=%5.2f\n",
              name, mean, std_pct, static_cast<double>(t.min_bps()) / 1e6,
              static_cast<double>(t.max_bps()) / 1e6);

  std::printf("  10s rolling mean (every 2 min): ");
  for (const auto& s : rolling.samples()) {
    if (s.at % sim::minutes(2) == 0) std::printf("%5.2f ", s.value);
  }
  std::printf("\n");

  if (bench::csv_enabled()) {
    rolling.write_csv(std::string("fig02_") + name + ".csv", "mbps");
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 2: bandwidth variation on two CityLab links (10 s rolling mean)");
  std::printf("paper: link1 mean 19.9 Mbps std 10%% | link2 mean 7.62 Mbps std 27%%\n\n");
  report("stable-link", trace::fig2_stable_link(), 19);
  report("variable-link", trace::fig2_variable_link(), 7);
  return 0;
}
