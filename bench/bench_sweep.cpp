// Sweep-engine scaling harness: fans the chaos_soak scenario across worker
// threads and reports runs/sec at each job count, plus the speedup over the
// serial baseline. Every parallel pass is also checked for byte-identical
// journals against the serial pass — throughput that breaks determinism
// does not count.
//
//   bench_sweep [scenario.ini] [--smoke]
//
// --smoke shrinks the seed pool and only probes {1, max} jobs so CI can run
// the parity check cheaply; the ">= 4x at 8 threads" gate only applies to
// full runs on machines with at least 8 hardware threads.
//
// The binary links the global allocation probe, so each job point also
// reports heap allocations per run — a coarse watch on allocator churn in
// the sweep engine itself (runs allocate their own worlds, so this is a
// per-run total, not a zero gate like bench_alloc_fastpath's).
#include "../tests/alloc_probe.h"  // global new/delete counters (one TU rule)

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common.h"
#include "exec/sweep.h"
#include "obs/metrics.h"
#include "util/strings.h"

namespace bass {
namespace {

std::vector<exec::RunSpec> seed_specs(std::uint64_t count) {
  std::vector<exec::RunSpec> specs;
  for (std::uint64_t seed = 1; seed <= count; ++seed) {
    specs.push_back({util::str_format("seed %llu",
                                      static_cast<unsigned long long>(seed)),
                     {{"chaos", "seed", std::to_string(seed)}}});
  }
  return specs;
}

int run(int argc, char** argv) {
  bool smoke = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      path = argv[i];
    }
  }

  bench::print_header("Sweep-engine scaling (runs/sec vs worker threads)");

  // Resolve the scenario relative to common launch directories (repo root,
  // build/, build/bench/).
  util::Expected<exec::SweepArtifacts> artifacts = util::make_error("unset");
  const std::vector<std::string> candidates =
      path.empty() ? std::vector<std::string>{
                         "examples/scenarios/chaos_soak.ini",
                         "../examples/scenarios/chaos_soak.ini",
                         "../../examples/scenarios/chaos_soak.ini"}
                   : std::vector<std::string>{path};
  for (const auto& candidate : candidates) {
    artifacts = exec::SweepArtifacts::load(candidate);
    if (artifacts.ok()) {
      std::printf("scenario: %s\n", candidate.c_str());
      break;
    }
  }
  if (!artifacts.ok()) {
    std::fprintf(stderr, "bench_sweep: %s\n", artifacts.error().c_str());
    return 1;
  }

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::uint64_t seeds = smoke ? 4 : 32;
  const auto specs = seed_specs(seeds);

  std::vector<std::size_t> job_points{1};
  if (smoke) {
    if (hw > 1) job_points.push_back(hw);
  } else {
    for (std::size_t j = 2; j <= hw; j *= 2) job_points.push_back(j);
    if (job_points.back() != hw) job_points.push_back(hw);
  }

  std::printf("seeds: %llu   hardware threads: %u\n\n",
              static_cast<unsigned long long>(seeds), hw);
  std::printf("%6s  %10s  %9s  %8s  %12s\n", "jobs", "wall ms", "runs/sec",
              "speedup", "allocs/run");

  obs::MetricsRegistry reg;
  bench::emit_build_info(reg);
  std::vector<exec::RunOutcome> baseline;
  double serial_runs_per_sec = 0.0;
  double speedup_at_8 = 0.0;
  bool parity_ok = true;

  for (const std::size_t jobs : job_points) {
    const auto alloc_snap = testing::take_alloc_snapshot();
    const auto t0 = std::chrono::steady_clock::now();
    const auto outcomes = exec::run_sweep(artifacts.value(), specs, jobs);
    const double allocs_per_run =
        static_cast<double>(testing::allocations_since(alloc_snap)) / seeds;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    const double runs_per_sec =
        wall_ms > 0.0 ? static_cast<double>(seeds) * 1000.0 / wall_ms : 0.0;

    for (const auto& outcome : outcomes) {
      if (!outcome.error.empty()) {
        std::fprintf(stderr, "bench_sweep: run failed: %s\n", outcome.error.c_str());
        return 1;
      }
    }
    if (jobs == 1) {
      baseline = outcomes;
      serial_runs_per_sec = runs_per_sec;
    } else {
      for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].journal != baseline[i].journal) {
          std::fprintf(stderr,
                       "bench_sweep: PARITY VIOLATION at jobs=%zu, %s — journal "
                       "differs from serial run\n",
                       jobs, outcomes[i].label.c_str());
          parity_ok = false;
        }
      }
    }

    const double speedup =
        serial_runs_per_sec > 0.0 ? runs_per_sec / serial_runs_per_sec : 0.0;
    if (jobs == 8) speedup_at_8 = speedup;
    std::printf("%6zu  %10.1f  %9.1f  %7.2fx  %12.0f\n", jobs, wall_ms,
                runs_per_sec, speedup, allocs_per_run);

    const obs::Labels labels{{"jobs", std::to_string(jobs)}};
    reg.gauge("sweep.wall_ms", labels).set(wall_ms);
    reg.gauge("sweep.runs_per_sec", labels).set(runs_per_sec);
    reg.gauge("sweep.speedup", labels).set(speedup);
    reg.gauge("sweep.allocs_per_run", labels).set(allocs_per_run);
  }
  reg.gauge("sweep.seeds").set(static_cast<double>(seeds));
  reg.gauge("sweep.hardware_threads").set(static_cast<double>(hw));
  reg.gauge("sweep.parity_ok").set(parity_ok ? 1.0 : 0.0);

  // Pooled decision latency across the serial pass: every run carried its
  // own recorder, so the per-run log histograms merge into sweep-wide
  // percentiles — the load the sweep engine puts on each run's controller.
  obs::LogHistogram decision_us;
  for (const exec::RunOutcome& outcome : baseline) {
    for (const auto& [name, h] : outcome.latency_histograms) {
      if (name == "orchestrator.decision_us") decision_us.merge(h);
    }
  }
  if (decision_us.count() > 0) {
    std::printf("\ndecision latency across %llu seeds: p50 %.1f us,"
                " p99 %.1f us, max %.1f us (%lld rounds)\n",
                static_cast<unsigned long long>(seeds),
                decision_us.percentile(0.50), decision_us.percentile(0.99),
                decision_us.max(), static_cast<long long>(decision_us.count()));
    reg.gauge("sweep.decision_us_p50").set(decision_us.percentile(0.50));
    reg.gauge("sweep.decision_us_p99").set(decision_us.percentile(0.99));
  }

  if (!bench::write_bench_json("sweep", reg)) return 1;
  if (!parity_ok) return 1;

  if (!smoke && hw >= 8) {
    std::printf("\nspeedup at 8 jobs: %.2fx (gate: >= 4x)\n", speedup_at_8);
    if (speedup_at_8 < 4.0) {
      std::fprintf(stderr, "bench_sweep: speedup gate FAILED (%.2fx < 4x)\n",
                   speedup_at_8);
      return 1;
    }
  } else if (hw < 8) {
    std::printf("\n(speedup gate skipped: only %u hardware threads)\n", hw);
  }
  return 0;
}

}  // namespace
}  // namespace bass

int main(int argc, char** argv) { return bass::run(argc, argv); }
