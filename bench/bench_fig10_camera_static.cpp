// Fig. 10 — Camera-processing pipeline end-to-end latency under the three
// schedulers on a 3-node cluster with no bandwidth limits (§6.2.2), plus
// the placements each scheduler chose (Fig. 10(b)).
//
// Paper: BFS 410 ms < longest-path 428 ms < k3s 433 ms (means). The BFS
// packing keeps the camera->sampler hot path on one node; the longest-path
// packing strands a listener; k3s spreads everything.
#include "common.h"

#include "workload/camera_pipeline.h"

using namespace bass;

namespace {

struct Result {
  double mean_ms;
  double p99_ms;
  std::string placement;
};

Result run(core::SchedulerKind kind) {
  // c6525-25g machines: 16 cores, ~12 allocatable after system pods.
  bench::LanCluster rig(3, 12000, 131072);
  auto graph = app::camera_pipeline_app();
  const auto id = rig.orch->deploy(std::move(graph), kind);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }

  // 10 fps frame pipeline for 5 minutes (the looped 12 s intersection clip).
  workload::CameraPipelineConfig cfg;
  cfg.fps = 10;
  cfg.seed = 10;
  workload::CameraPipelineEngine engine(*rig.orch, id.value(), cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(5));
  engine.stop();
  rig.sim.run_until(sim::minutes(6));

  Result r;
  r.mean_ms = engine.e2e().mean_ms();
  r.p99_ms = engine.e2e().p99_ms();
  const auto& g = rig.orch->app(id.value());
  for (app::ComponentId c = 0; c < g.component_count(); ++c) {
    r.placement += g.component(c).name + "->node" +
                   std::to_string(rig.orch->node_of(id.value(), c) + 1) + "  ";
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header("Fig. 10: camera pipeline latency by scheduler (no limits)");
  const struct {
    const char* name;
    core::SchedulerKind kind;
    double paper_ms;
  } rows[] = {
      {"bass-bfs", core::SchedulerKind::kBassBfs, 410},
      {"bass-longest-path", core::SchedulerKind::kBassLongestPath, 428},
      {"k3s-default", core::SchedulerKind::kK3sDefault, 433},
  };

  std::printf("%-20s %12s %12s %10s\n", "scheduler", "mean (ms)", "p99 (ms)",
              "paper(ms)");
  for (const auto& row : rows) {
    const Result r = run(row.kind);
    std::printf("%-20s %12.1f %12.1f %10.0f\n", row.name, r.mean_ms, r.p99_ms,
                row.paper_ms);
    std::printf("    %s\n", r.placement.c_str());
  }
  std::printf("\nexpect ordering: bfs <= longest-path <= k3s (paper Fig. 10(a))\n");
  return 0;
}
