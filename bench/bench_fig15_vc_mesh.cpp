// Fig. 15(b) — Video conference on the emulated CityLab mesh: 3 clients at
// each of the 4 worker nodes, a 10-minute conference over the replayed
// bandwidth trace, comparing no migration against migration at 65% and 85%
// link-utilization thresholds.
//
// Paper: migration at the 65% threshold lifts node 1's median from
// ~1.4 Mbps to ~1.6 Mbps and doubles node 2's (240 -> 480 Kbps); nodes 3
// and 4 see no improvement.
#include "common.h"

#include "workload/video_conference.h"

using namespace bass;

namespace {

struct Row {
  double median_bps[5] = {0, 0, 0, 0, 0};  // indexed by node id
  std::size_t migrations = 0;
};

Row run(bool migration, double threshold) {
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(20);  // §6.3.2 measured overhead
  bench::CityLabRig rig(sim::minutes(10), /*variation=*/true, /*fades=*/true,
                        /*seed=*/151, orch_cfg);
  rig.start();

  const net::Bps kStream = net::kbps(250);
  const std::vector<std::pair<net::NodeId, int>> groups{{1, 3}, {2, 3}, {3, 3}, {4, 3}};
  // The paper deploys the Pion server "on one of the 4 worker nodes"
  // (§6.3.2) — a fixed starting point, not a bandwidth-aware placement —
  // and relies on migration to correct it. Node 3 reaches node 2's clients
  // only over the weak 7.62 Mbps link, which cannot carry the forwarding
  // load; BASS's own scheduler would never pick it (it chooses node 1).
  auto graph = app::video_conference_app(groups, kStream);
  sched::Placement manual;
  manual[graph.find("pion-sfu")] = 3;
  const auto id = rig.orch->deploy_with_placement(std::move(graph), manual);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  if (migration) {
    controller::MigrationParams params;
    params.evaluation_interval = sim::seconds(30);
    params.utilization_threshold = threshold;
    params.headroom_frac = 0.20;
    params.cooldown = sim::seconds(30);
    params.min_migration_gap = sim::minutes(2);
    rig.orch->enable_migration(id.value(), params);
  }

  workload::VideoConferenceConfig cfg;
  cfg.groups = {{1, 3}, {2, 3}, {3, 3}, {4, 3}};
  cfg.per_stream = kStream;
  cfg.reconnect_delay = sim::seconds(10);
  workload::VideoConferenceEngine engine(*rig.orch, id.value(), cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(10));
  engine.stop();

  if (std::getenv("BASS_BENCH_VERBOSE") != nullptr) {
    for (const auto& m : rig.orch->migration_events()) {
      std::printf("    moved t=%4.0fs SFU node%d -> node%d\n", sim::to_seconds(m.at),
                  m.from, m.to);
    }
  }

  Row row;
  for (net::NodeId n = 1; n <= 4; ++n) {
    row.median_bps[n] = engine.median_bitrate(n, sim::seconds(10));
  }
  row.migrations = rig.orch->migration_events().size();
  return row;
}

}  // namespace

int main() {
  bench::print_header("Fig. 15(b): per-node conference bitrate on the CityLab mesh");
  std::printf("12 participants (3 per worker node), 10-minute conference\n\n");
  std::printf("%-22s %10s %10s %10s %10s %11s\n", "strategy", "node1", "node2",
              "node3", "node4", "migrations");

  const struct {
    const char* name;
    bool migration;
    double threshold;
  } rows[] = {
      {"no-migration", false, 0.0},
      {"migration@65%", true, 0.65},
      {"migration@85%", true, 0.85},
  };
  for (const auto& r : rows) {
    const Row row = run(r.migration, r.threshold);
    std::printf("%-22s %7.0fKbps %7.0fKbps %7.0fKbps %7.0fKbps %11zu\n", r.name,
                row.median_bps[1] / 1e3, row.median_bps[2] / 1e3,
                row.median_bps[3] / 1e3, row.median_bps[4] / 1e3, row.migrations);
  }
  std::printf("\nexpect: the 65%% threshold lifts the medians at the constrained\n"
              "nodes (paper: node1 1.4->1.6 Mbps, node2 240->480 Kbps) and leaves\n"
              "the healthy nodes unchanged (paper Fig. 15(b))\n");
  return 0;
}
