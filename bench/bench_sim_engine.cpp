// Simulator engine microbenchmarks (google-benchmark): regression guard
// for the hot paths every experiment leans on — the event queue, the
// max-min allocator, and the flow engine's transfer pipeline. A 20-minute
// social-network run executes a few million events; these keep that cheap.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/maxmin.h"
#include "net/network.h"
#include "sim/simulation.h"
#include "util/rng.h"

using namespace bass;

namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  util::Rng rng(1);
  // Pre-generate timestamps so RNG cost stays out of the loop.
  std::vector<sim::Time> times;
  for (int i = 0; i < batch; ++i) times.push_back(rng.uniform_int(0, 1'000'000));
  for (auto _ : state) {
    sim::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < batch; ++i) {
      queue.push(times[static_cast<std::size_t>(i)], [&fired] { ++fired; });
    }
    while (!queue.empty()) queue.pop_and_run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueuePushPop)->Arg(1'000)->Arg(10'000);

void BM_MaxMinAllocate(benchmark::State& state) {
  const int links = static_cast<int>(state.range(0));
  const int flows = static_cast<int>(state.range(1));
  util::Rng rng(2);
  std::vector<double> capacities;
  for (int l = 0; l < links; ++l) capacities.push_back(rng.uniform(1e6, 100e6));
  std::vector<net::AllocEntity> entities;
  for (int f = 0; f < flows; ++f) {
    net::AllocEntity e;
    e.demand = rng.chance(0.5) ? static_cast<double>(net::kUnlimitedRate)
                               : rng.uniform(1e6, 50e6);
    const int hops = static_cast<int>(rng.uniform_int(1, 4));
    for (int h = 0; h < hops; ++h) {
      const net::LinkId l = static_cast<net::LinkId>(rng.uniform_int(0, links - 1));
      if (std::find(e.links.begin(), e.links.end(), l) == e.links.end()) {
        e.links.push_back(l);
      }
    }
    entities.push_back(std::move(e));
  }
  for (auto _ : state) {
    auto rates = net::max_min_allocate(capacities, entities);
    benchmark::DoNotOptimize(rates);
  }
  state.SetItemsProcessed(state.iterations() * flows);
}
BENCHMARK(BM_MaxMinAllocate)->Args({16, 32})->Args({16, 128})->Args({64, 512});

void BM_NetworkTransferPipeline(benchmark::State& state) {
  // Sustained small transfers across a contended 4-node line: measures the
  // full settle/reallocate/event path.
  const int transfers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    net::Topology topo;
    for (int i = 0; i < 4; ++i) topo.add_node();
    for (int i = 0; i < 3; ++i) topo.add_link(i, i + 1, net::mbps(50));
    net::Network network(sim, std::move(topo));
    int completed = 0;
    for (int t = 0; t < transfers; ++t) {
      const net::NodeId src = t % 4;
      const net::NodeId dst = (t + 1 + t % 3) % 4;
      sim.schedule_at(sim::millis(t), [&network, src, dst, &completed] {
        network.start_transfer(src, dst, 20'000, [&completed] { ++completed; });
      });
    }
    sim.run_all();
    benchmark::DoNotOptimize(completed);
  }
  state.SetItemsProcessed(state.iterations() * transfers);
}
BENCHMARK(BM_NetworkTransferPipeline)->Arg(1'000)->Arg(5'000);

void BM_StreamChurn(benchmark::State& state) {
  // Open/close streams under contention: every call is a reallocation.
  for (auto _ : state) {
    sim::Simulation sim;
    net::Topology topo;
    for (int i = 0; i < 5; ++i) topo.add_node();
    for (int i = 0; i < 4; ++i) topo.add_link(i, i + 1, net::mbps(30));
    net::Network network(sim, std::move(topo));
    std::vector<net::StreamId> live;
    for (int round = 0; round < 200; ++round) {
      live.push_back(network.open_stream(round % 5, (round + 2) % 5, net::mbps(3)));
      if (live.size() > 16) {
        network.close_stream(live.front());
        live.erase(live.begin());
      }
    }
    benchmark::DoNotOptimize(network.reallocation_count());
  }
  state.SetItemsProcessed(state.iterations() * 200);
}
BENCHMARK(BM_StreamChurn);

}  // namespace

BENCHMARK_MAIN();
