// Fig. 11 — Social-network p99 latency: longest-path vs default k3s, with
// and without a 25 Mbps restriction on one node, at 100/200/300 RPS on a
// 4-node (4-core, 12 GB) cluster (§6.2.2).
//
// Paper: without restriction the schedulers are comparable; with the
// restriction, k3s's tail is orders of magnitude worse at 200/300 RPS
// because heavy component pairs straddle the throttled node.
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

namespace {

struct Cell {
  double p99_ms;
  double mean_ms;
};

Cell run(core::SchedulerKind kind, bool restricted, double rps, std::uint64_t seed) {
  bench::LanCluster rig(4, 4000, 12288);  // d710: 4 cores, 12 GB
  const auto id = rig.orch->deploy(app::social_network_app(), kind);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  if (restricted) {
    // Throttle a fixed node (the paper restricts "bandwidth on one node",
    // the same node regardless of scheduler). Bandwidth-aware placement
    // concentrates the heavy chains away from any single point, so little
    // of LP's traffic crosses the throttled egress; k3s's spread placement
    // strands heavy component pairs behind it.
    rig.limit_node_egress(3, net::mbps(25));
  }

  workload::RequestWorkloadConfig cfg;
  cfg.rps = rps;
  cfg.client_node = 0;
  cfg.seed = seed;
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(2));
  engine.stop();
  rig.sim.run_until(sim::minutes(4));
  return {engine.latencies().p99_ms(), engine.latencies().mean_ms()};
}

}  // namespace

int main() {
  bench::print_header("Fig. 11: social network p99 latency, LP vs k3s");
  std::printf("%-12s %-22s %8s %14s %14s\n", "bandwidth", "scheduler", "rps",
              "p99 (ms)", "mean (ms)");
  for (const bool restricted : {false, true}) {
    for (const auto kind :
         {core::SchedulerKind::kBassLongestPath, core::SchedulerKind::kK3sDefault}) {
      for (const double rps : {100.0, 200.0, 300.0}) {
        const Cell cell = run(kind, restricted, rps, 11);
        std::printf("%-12s %-22s %8.0f %14.1f %14.1f\n",
                    restricted ? "25Mbps@node" : "unrestricted",
                    core::scheduler_kind_name(kind), rps, cell.p99_ms, cell.mean_ms);
      }
    }
  }
  std::printf("\nexpect: comparable tails unrestricted; k3s explodes at 200/300 RPS\n"
              "under the 25 Mbps restriction while longest-path stays low (Fig. 11)\n");
  return 0;
}
