// Ablation — Algorithm 3's pair rule: "by migrating only one component of
// the dependency pair, we avoid cascading effects" (§3.2.2). With the rule
// disabled, both ends of every violating pair become migration candidates,
// so communicating components can leapfrog each other round after round.
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

namespace {

struct Result {
  std::size_t migrations;
  double median_ms;
  double p99_ms;
};

Result run(bool dedup) {
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(10);
  bench::LanCluster rig(3, 6000, 131072, net::gbps(1), orch_cfg);
  monitor::NetMonitor netmon(*rig.network);
  rig.orch->attach_monitor(&netmon);
  netmon.start();

  const auto id = rig.orch->deploy(app::social_network_app(),
                                   core::SchedulerKind::kBassLongestPath);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(30);
  params.utilization_threshold = 0.50;
  params.headroom_frac = 0.20;
  params.cooldown = sim::seconds(30);
  params.min_migration_gap = sim::seconds(60);
  params.dedup_pairs = dedup;
  // Give the ablation room to misbehave: no per-round cap.
  params.max_migrations_per_round = dedup ? 2 : 8;
  rig.orch->enable_migration(id.value(), params);

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 400;
  cfg.client_node = 0;
  cfg.seed = 42;
  cfg.max_in_flight = 4000;
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();

  rig.sim.schedule_at(sim::seconds(10), [&] {
    rig.limit_node_egress(0, net::mbps(25));
    rig.limit_node_egress(1, net::mbps(25));
  });
  rig.sim.schedule_at(sim::seconds(190), [&] {
    for (net::NodeId n = 0; n < 3; ++n) rig.restore_node_egress(n, net::gbps(1));
  });

  rig.sim.run_until(sim::minutes(5));
  engine.stop();
  rig.sim.run_until(sim::minutes(7));
  netmon.stop();
  return {rig.orch->migration_events().size(), engine.latencies().median_ms(),
          engine.latencies().p99_ms()};
}

}  // namespace

int main() {
  bench::print_header("Ablation: migrate one endpoint of a pair vs both");
  std::printf("%-22s %12s %12s %12s\n", "policy", "migrations", "median(ms)",
              "p99(ms)");
  const Result with = run(true);
  const Result without = run(false);
  std::printf("%-22s %12zu %12.1f %12.1f\n", "pair-dedup (paper)", with.migrations,
              with.median_ms, with.p99_ms);
  std::printf("%-22s %12zu %12.1f %12.1f\n", "no-dedup (ablation)",
              without.migrations, without.median_ms, without.p99_ms);
  std::printf("\nexpect: without the pair rule, more components churn through\n"
              "restarts (each a ~10 s outage) for no placement benefit\n");
  return 0;
}
