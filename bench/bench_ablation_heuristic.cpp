// Ablation — heuristic choice per application shape (§3.2.1, §8).
//
// The paper asks the developer to pick BFS for fan-out-shaped apps and
// longest-path for pipelines, and floats combining them as future work.
// This harness scores all three (plus k3s) on both application shapes by
// the scheduler's own figure of merit — bandwidth left crossing the mesh —
// and verifies the auto heuristic always matches the better specialist.
#include "common.h"

#include <set>

#include "sched/bass_scheduler.h"
#include "sched/k3s_scheduler.h"

using namespace bass;

namespace {

void score(const app::AppGraph& g, const cluster::ClusterState& cluster,
           const sched::NetworkView& view) {
  std::printf("\n%s (%d components, %.1f cores):\n", g.name().c_str(),
              g.component_count(), static_cast<double>(g.total_cpu_milli()) / 1000.0);
  const sched::BassScheduler bfs(sched::Heuristic::kBreadthFirst);
  const sched::BassScheduler lp(sched::Heuristic::kLongestPath);
  const sched::BassScheduler combined(sched::Heuristic::kAuto);
  const sched::K3sScheduler k3s;
  const sched::K3sScheduler k3s_pack(sched::K3sScoring::kMostAllocated);
  const sched::Scheduler* schedulers[] = {&bfs, &lp, &combined, &k3s, &k3s_pack};
  for (const sched::Scheduler* s : schedulers) {
    const auto r = s->schedule(g, cluster, view);
    if (!r.ok()) {
      std::printf("  %-18s FAILED: %s\n", s->name().c_str(), r.error().c_str());
      continue;
    }
    std::set<net::NodeId> nodes;
    for (const auto& [c, n] : r.value()) nodes.insert(n);
    std::printf("  %-18s crossing bandwidth %7.2f Mbps on %zu nodes\n",
                s->name().c_str(),
                static_cast<double>(sched::crossing_bandwidth(g, r.value())) / 1e6,
                nodes.size());
  }
}

}  // namespace

int main() {
  bench::print_header("Ablation: ordering heuristic vs application shape");

  {
    // The microbenchmark LAN cluster (generous links).
    bench::LanCluster rig(3, 12000, 131072);
    sched::LiveNetworkView view(*rig.network);
    score(app::camera_pipeline_app(), rig.cluster, view);
    score(app::social_network_app(), rig.cluster, view);
    score(app::fig6_example(), rig.cluster, view);
  }
  {
    // The CityLab mesh (constrained, heterogeneous links).
    bench::CityLabRig rig(sim::minutes(1), false, false);
    sched::LiveNetworkView view(*rig.network);
    score(app::camera_pipeline_app(), rig.cluster, view);
    score(app::social_network_app(100.0 / 400.0), rig.cluster, view);
  }

  std::printf(
      "\nexpect: bass-auto always ties the better of bfs/longest-path;\n"
      "k3s-default strands the most bandwidth on the mesh. k3s-most-allocated\n"
      "(kube's bin-packing strategy) co-locates by accident and narrows the\n"
      "gap, but without seeing edge weights it still picks the wrong\n"
      "roommates — the rest of the gap is bandwidth *awareness*\n");
  return 0;
}
