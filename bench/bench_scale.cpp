// Scaling study for the sharded orchestrator (DESIGN.md §11): orchestrator
// round time and solver throughput vs city size, sharded against unsharded
// on the identical generated topology and serve workload.
//
// Usage:
//   bench_scale [--smoke] [--jobs N] [--check-baseline[=path]]
//
// Full mode sweeps 512..8192 nodes (the 8192-node row runs sharded only:
// the unsharded all-pairs routing table at that size costs ~7 GB and tells
// us nothing new). --smoke runs the single 2048-node/4-zone row plus its
// unsharded twin — the CI gate. --check-baseline compares against
// bench/baselines/scale_baseline.json:
//   * determinism: 512-node merged journals for --jobs 1 and --jobs 2 must
//     be byte-identical — unconditional, cheap, and the contract the whole
//     subsystem rests on;
//   * speedup: sharded round time must beat unsharded by the baseline's
//     minimum at the gated sizes — skipped under sanitizers;
//   * gating: the sparse-churn scenario (all arrivals in 1 of 32 zones) must
//     run its rounds at least min_sparse_speedup faster gated than with
//     always-full rounds, the dense scenario must not regress past
//     min_dense_ratio, and the idle city must hold steady-state rounds at
//     max_idle_allocs_per_round heap allocations (unconditional — alloc
//     counts are machine-independent).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "../tests/alloc_probe.h"  // global new/delete counters (one TU rule)
#include "common.h"
#include "obs/journal.h"
#include "scenario/scenario.h"
#include "util/ini.h"
#include "util/strings.h"
#include "zone/sharded.h"

namespace bass::bench {
namespace {

struct Row {
  int nodes = 0;
  int blocks_x = 0;
  int blocks_y = 0;  // nodes = blocks_x * blocks_y * 4
  int zones = 0;
  bool run_unsharded = true;
};

constexpr int kRoundSeconds = 10;
constexpr int kDurationSeconds = 60;

std::string make_ini(const Row& row, bool zoned,
                     const std::string& zones_extra = "",
                     int arrival_per_min = -1,
                     int duration_s = kDurationSeconds) {
  if (arrival_per_min < 0) arrival_per_min = std::max(row.nodes / 8, 1);
  std::string text = util::str_format(
      "[topology]\n"
      "kind = city_grid\n"
      "blocks_x = %d\n"
      "blocks_y = %d\n"
      "nodes_per_block = 4\n"
      "gateway_every = 8\n"
      "[monitor]\n"
      "enabled = false\n"
      "[invariants]\n"
      "enabled = false\n"
      "[serve]\n"
      "mode = adaptive\n"
      "seed = 42\n"
      "arrival_per_min = %d\n"
      "mean_lifetime_s = 120\n"
      "resource_scale = 0.1\n"
      "[run]\n"
      "duration_s = %d\n",
      row.blocks_x, row.blocks_y, arrival_per_min, duration_s);
  if (zoned) {
    // Extras go first: the ini parser takes the first occurrence of a key,
    // so scenario overrides (e.g. method) win over the defaults below.
    text += util::str_format(
        "[zones]\n"
        "%s"
        "count = %d\n"
        "method = bfs\n"
        "round_interval_s = %d\n",
        zones_extra.c_str(), row.zones, kRoundSeconds);
  }
  return text;
}

struct SideResult {
  double round_ms = 0.0;
  double solver_flows_per_sec = 0.0;
  std::int64_t flows_touched = 0;
  double alloc_seconds = 0.0;
  // Sharded only: wall split across the run's phases, for reading where the
  // time goes (warmup + transit bring-up / rounds / drain + teardown).
  double start_ms = 0.0;
  double rounds_ms = 0.0;
  double finish_ms = 0.0;
  // Sharded only: per-round split of the round loop itself (quiescent-zone
  // ticks / full zone passes / border reconciliation) and the activity
  // gating tallies from the report.
  int rounds = 0;
  double tick_ms = 0.0;
  double full_ms = 0.0;
  double reconcile_ms = 0.0;
  std::int64_t rounds_skipped = 0;
  std::int64_t border_rebuilds = 0;
  std::int64_t reconcile_rounds_skipped = 0;
  std::size_t border_components = 0;
  // Heap allocations per steady-state round (measured from round 3 on, so
  // first-round arena growth and cache warming don't count).
  double allocs_per_round = 0.0;
  // Round-loop wall only, excluding start (warmup + transit bring-up) and
  // finish (drain + metric fold), which are identical either side of a
  // gating comparison and would otherwise drown it in noise.
  double loop_round_ms() const {
    return rounds > 0 ? rounds_ms / rounds : 0.0;
  }
};

util::Expected<std::unique_ptr<zone::ShardedOrchestrator>> build_sharded(
    const Row& row, std::size_t jobs, const std::string& zones_extra = "",
    int arrival_per_min = -1, int duration_s = kDurationSeconds) {
  auto ini = util::parse_ini(
      make_ini(row, true, zones_extra, arrival_per_min, duration_s));
  if (!ini.ok()) return util::make_error(ini.error());
  return zone::ShardedOrchestrator::from_ini(ini.value(), jobs);
}

SideResult run_sharded(const Row& row, std::size_t jobs,
                       const std::string& zones_extra = "",
                       int arrival_per_min = -1,
                       int duration_s = kDurationSeconds) {
  auto built =
      build_sharded(row, jobs, zones_extra, arrival_per_min, duration_s);
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", built.error().c_str());
    std::exit(1);
  }
  auto orch = built.take();
  const auto ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto t0 = std::chrono::steady_clock::now();
  orch->start();
  SideResult r;
  r.start_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  // Steady-state window: skip the first two rounds. Round 0's reconcile
  // imposes every initial transit rate (a full two-pass rebuild of all
  // border components) and round 1 still settles; averaging them in would
  // hide the per-round cost the gate actually changes. The alloc probe
  // uses the same window.
  auto t_steady = t0;
  zone::ShardedOrchestrator::PhaseWalls walls0;
  testing::AllocSnapshot snap{};
  int warm = 0;
  while (orch->rounds_done() < orch->rounds_total()) {
    orch->run_round();
    if (++warm == 2) {
      snap = testing::take_alloc_snapshot();
      walls0 = orch->phase_walls();
      t_steady = std::chrono::steady_clock::now();
    }
  }
  const int measured_rounds = orch->rounds_done() - 2;
  const double steady_ms = ms_since(t_steady);
  const auto walls1 = orch->phase_walls();
  if (measured_rounds > 0) {
    r.allocs_per_round = static_cast<double>(testing::allocations_since(snap)) /
                         measured_rounds;
  }
  r.rounds_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  orch->finish();
  r.finish_ms = ms_since(t0);
  const zone::ShardedReport& report = orch->report();
  const int rounds = std::max(report.rounds, 1);
  r.round_ms = (r.start_ms + r.rounds_ms + r.finish_ms) / rounds;
  if (measured_rounds > 0) {
    r.rounds = measured_rounds;
    r.rounds_ms = steady_ms;
    r.tick_ms = (walls1.tick_us - walls0.tick_us) / 1000.0 / measured_rounds;
    r.full_ms =
        (walls1.advance_us - walls0.advance_us) / 1000.0 / measured_rounds;
    r.reconcile_ms =
        (walls1.reconcile_us - walls0.reconcile_us) / 1000.0 / measured_rounds;
    r.border_rebuilds = walls1.border_rebuilds - walls0.border_rebuilds;
  } else {
    r.rounds = rounds;
    r.tick_ms = report.tick_wall_us / 1000.0 / rounds;
    r.full_ms = report.advance_wall_us / 1000.0 / rounds;
    r.reconcile_ms = report.reconcile_wall_us / 1000.0 / rounds;
    r.border_rebuilds = report.border_rebuilds;
  }
  r.rounds_skipped = report.zone_rounds_skipped;
  r.reconcile_rounds_skipped = report.reconcile_rounds_skipped;
  r.border_components = report.border_components;
  for (int z = 0; z < orch->zones(); ++z) {
    const auto stats = orch->zone_network(z).alloc_stats();
    r.flows_touched += stats.flows_touched;
    r.alloc_seconds += stats.alloc_seconds;
  }
  if (r.alloc_seconds > 0.0) {
    r.solver_flows_per_sec =
        static_cast<double>(r.flows_touched) / r.alloc_seconds;
  }
  return r;
}

SideResult run_unsharded(const Row& row) {
  auto ini = util::parse_ini(make_ini(row, false));
  if (!ini.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", ini.error().c_str());
    std::exit(1);
  }
  auto s = scenario::Scenario::from_ini(ini.value());
  if (!s.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", s.error().c_str());
    std::exit(1);
  }
  auto& scene = *s.value();
  const auto t0 = std::chrono::steady_clock::now();
  scene.run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  SideResult r;
  r.round_ms = wall_ms / (kDurationSeconds / kRoundSeconds);
  const auto stats = scene.network().alloc_stats();
  r.flows_touched = stats.flows_touched;
  r.alloc_seconds = stats.alloc_seconds;
  if (stats.alloc_seconds > 0.0) {
    r.solver_flows_per_sec =
        static_cast<double>(stats.flows_touched) / stats.alloc_seconds;
  }
  return r;
}

// The determinism gate: same seed, different worker counts, byte-identical
// merged journals. Cheap (512 nodes) and unconditional.
bool determinism_gate() {
  const Row row{512, 16, 8, 2, false};
  std::string journals[2];
  const std::size_t jobs[2] = {1, 2};
  for (int i = 0; i < 2; ++i) {
    auto built = build_sharded(row, jobs[i]);
    if (!built.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", built.error().c_str());
      return false;
    }
    auto orch = built.take();
    orch->run();
    journals[i] = orch->merged_journal();
  }
  const bool ok = !journals[0].empty() && journals[0] == journals[1];
  std::printf("  %-44s %12zu vs %12zu  %s\n", "determinism: journal bytes 1j/2j",
              journals[0].size(), journals[1].size(), ok ? "ok" : "REGRESSION");
  return ok;
}

double field_as_double(
    const std::vector<std::pair<std::string, std::string>>& fields,
    const std::string& key, double fallback) {
  for (const auto& [k, v] : fields) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  return fallback;
}

bool timing_gates_enabled() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#else
  return true;
#endif
}

struct RowResult {
  Row row;
  SideResult sharded;
  SideResult unsharded;  // round_ms == 0 when not run
  double speedup() const {
    return unsharded.round_ms > 0.0 && sharded.round_ms > 0.0
               ? unsharded.round_ms / sharded.round_ms
               : 0.0;
  }
};

// One gating comparison: the same sharded scenario with activity gating on
// (default) and forced always-full rounds.
struct GatingResult {
  const char* scenario = "";
  Row row;
  SideResult gated;
  SideResult ungated;  // round_ms == 0 when the scenario has no ungated twin
  // Rounds-loop time only: start (transit bring-up) and finish (drain) are
  // identical with gating on or off, so including them would only add
  // noise to what the gate actually claims — per-round cost.
  double ratio() const {
    return ungated.loop_round_ms() > 0.0 && gated.loop_round_ms() > 0.0
               ? ungated.loop_round_ms() / gated.loop_round_ms()
               : 0.0;
  }
};

// A measurement registered under the exact baseline key that gates it:
// min_* keys bound it from below, max_* keys from above. min_* gates are
// wall-clock comparisons and are skipped under sanitizers; max_* gates
// (allocation counts) are machine-independent and always enforced.
struct Gate {
  std::string key;
  std::string what;
  double measured = 0.0;
};

int check_baseline(const std::string& path, const std::vector<Gate>& gates) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  std::printf("baseline check (%s)%s:\n", path.c_str(),
              timing_gates_enabled() ? "" : " [sanitized: timing gates skipped]");
  if (!determinism_gate()) ++failures;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::pair<std::string, std::string>> fields;
    if (!obs::parse_journal_line(line, fields)) {
      std::fprintf(stderr, "unparseable baseline line: %s\n", line.c_str());
      return 1;
    }
    for (const Gate& g : gates) {
      const bool is_min = g.key.rfind("min_", 0) == 0;
      if (is_min && !timing_gates_enabled()) continue;
      const double bound = field_as_double(fields, g.key, -1.0);
      if (bound < 0.0) continue;  // key not in this baseline line
      const bool ok = is_min ? g.measured >= bound : g.measured <= bound;
      std::printf("  %-44s %12.1f vs %12.1f  %s\n", g.what.c_str(), g.measured,
                  bound, ok ? "ok" : "REGRESSION");
      if (!ok) ++failures;
    }
  }
  std::printf(failures == 0 ? "RESULT: PASS\n"
                            : "RESULT: FAIL (baseline regression)\n");
  return failures == 0 ? 0 : 1;
}

int run(int argc, char** argv) {
  bool smoke = false;
  bool baseline = false;
  std::size_t jobs = 1;
  std::string baseline_path = "bench/baselines/scale_baseline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--check-baseline") == 0) {
      baseline = true;
    } else if (std::strncmp(argv[i], "--check-baseline=", 17) == 0) {
      baseline = true;
      baseline_path = argv[i] + 17;
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--smoke] [--jobs N]"
                   " [--check-baseline[=path]]\n");
      return 2;
    }
  }
  print_header(smoke ? "orchestrator scaling (smoke)" : "orchestrator scaling");

  std::vector<Row> rows;
  if (smoke) {
    rows.push_back({2048, 32, 16, 4, true});
  } else {
    rows.push_back({512, 16, 8, 2, true});
    rows.push_back({1024, 16, 16, 4, true});
    rows.push_back({2048, 32, 16, 4, true});
    rows.push_back({4096, 32, 32, 8, true});
    rows.push_back({8192, 64, 32, 16, false});
  }

  std::printf("%7s %6s %14s %14s %9s %16s\n", "nodes", "zones", "sharded ms/rd",
              "unsharded ms", "speedup", "solver flows/s");
  std::vector<RowResult> results;
  for (const Row& row : rows) {
    RowResult r;
    r.row = row;
    r.sharded = run_sharded(row, jobs);
    if (row.run_unsharded) {
      r.unsharded = run_unsharded(row);
      std::printf("%7d %6d %14.1f %14.1f %8.1fx %16.0f\n", row.nodes, row.zones,
                  r.sharded.round_ms, r.unsharded.round_ms, r.speedup(),
                  r.sharded.solver_flows_per_sec);
    } else {
      std::printf("%7d %6d %14.1f %14s %9s %16.0f  (unsharded skipped:"
                  " O(n^2) routing)\n",
                  row.nodes, row.zones, r.sharded.round_ms, "-", "-",
                  r.sharded.solver_flows_per_sec);
    }
    results.push_back(r);
  }

  // Where a sharded round's time goes: quiescent-zone ticks, full zone
  // passes, border reconciliation — plus steady-state heap allocations.
  std::printf("\nsharded round phase split (per round):\n");
  std::printf("%7s %6s %9s %9s %9s %10s %9s\n", "nodes", "zones", "tick ms",
              "full ms", "recon ms", "allocs/rd", "skipped");
  for (const RowResult& r : results) {
    std::printf("%7d %6d %9.2f %9.2f %9.2f %10.0f %9lld\n", r.row.nodes,
                r.row.zones, r.sharded.tick_ms, r.sharded.full_ms,
                r.sharded.reconcile_ms, r.sharded.allocs_per_round,
                static_cast<long long>(r.sharded.rounds_skipped));
  }

  // ---- Activity gating study (ISSUE 10): round cost must track churn ----
  //
  // sparse: all arrivals confined to zone 0 of 8, fat transit — the other
  //   seven zones tick and almost every border component stays clean, so
  //   gated rounds should beat always-full rounds by min_sparse_speedup.
  // dense:  every zone busy (the main scenario) — the gate predicate runs
  //   but never fires; gated must stay within min_dense_ratio of ungated.
  // idle:   no churn at all — after transit settles, steady-state rounds
  //   must hold at max_idle_allocs_per_round heap allocations.
  std::printf("\nactivity gating (gated vs always-full rounds,"
              " rounds-loop ms/rd):\n");
  std::printf("%9s %7s %6s %13s %15s %7s %9s %11s %9s %10s\n", "scenario",
              "nodes", "zones", "gated ms/rd", "ungated ms/rd", "ratio",
              "recon ms", "un-recon ms", "skipped", "allocs/rd");
  std::vector<GatingResult> gating;
  // Sparse churn wants reconciliation to be the round's dominant cost:
  // few arrivals (so zone 0's own pass stays small) over fat, link-local
  // transit (32 flows per directed border link entering/exiting at the
  // border routers, so each border is its own contention component and
  // only zone 0's borders go dirty), measured over a longer run so the
  // loop time is stable.
  // Chunked (band) partitioning gives zone 0 a single neighbour, so the
  // dirty border set is one band boundary out of zones-1 — the regime the
  // gate is meant to exploit.
  const char* sparse_extra =
      "transit_per_border = 32\ntransit_local = true\nactive_zones = 1\n"
      "method = chunks\n";
  constexpr int kGatingDuration = 120;
  std::vector<Row> sparse_rows = {{2048, 32, 16, 32, false}};
  if (!smoke) sparse_rows.push_back({4096, 32, 32, 32, false});
  for (const Row& row : sparse_rows) {
    GatingResult g;
    g.scenario = "sparse";
    g.row = row;
    const int arrivals = std::max(row.nodes / 512, 1);
    g.gated = run_sharded(row, jobs, sparse_extra, arrivals, kGatingDuration);
    g.ungated = run_sharded(row, jobs,
                            std::string(sparse_extra) + "gating = false\n",
                            arrivals, kGatingDuration);
    gating.push_back(g);
  }
  {
    // Dense: the main workload (churn in every zone) — run as a fresh
    // back-to-back pair, ungated first, so neither side carries the main
    // sweep's cold-start advantage.
    GatingResult g;
    g.scenario = "dense";
    g.row = {2048, 32, 16, 4, false};
    g.ungated = run_sharded(g.row, jobs, "gating = false\n", -1, kGatingDuration);
    g.gated = run_sharded(g.row, jobs, "", -1, kGatingDuration);
    gating.push_back(g);
  }
  {
    GatingResult g;
    g.scenario = "idle";
    g.row = {2048, 32, 16, 8, false};
    g.gated = run_sharded(g.row, jobs, "", /*arrival_per_min=*/0);
    gating.push_back(g);
  }
  for (const GatingResult& g : gating) {
    if (g.ungated.round_ms > 0.0) {
      std::printf("%9s %7d %6d %13.2f %15.2f %6.1fx %9.2f %11.2f %9lld %10.0f"
                  "  (%lld/%zu comps rebuilt)\n",
                  g.scenario, g.row.nodes, g.row.zones, g.gated.loop_round_ms(),
                  g.ungated.loop_round_ms(), g.ratio(), g.gated.reconcile_ms,
                  g.ungated.reconcile_ms,
                  static_cast<long long>(g.gated.rounds_skipped),
                  g.gated.allocs_per_round,
                  static_cast<long long>(g.gated.border_rebuilds),
                  g.gated.border_components);
    } else {
      std::printf("%9s %7d %6d %13.2f %15s %7s %9.2f %11s %9lld %10.0f\n",
                  g.scenario, g.row.nodes, g.row.zones, g.gated.loop_round_ms(),
                  "-", "-", g.gated.reconcile_ms, "-",
                  static_cast<long long>(g.gated.rounds_skipped),
                  g.gated.allocs_per_round);
    }
  }

  obs::MetricsRegistry reg;
  emit_build_info(reg);
  reg.gauge("smoke").set(smoke ? 1 : 0);
  reg.gauge("jobs").set(static_cast<double>(jobs));
  for (const RowResult& r : results) {
    const obs::Labels labels = {{"nodes", std::to_string(r.row.nodes)},
                                {"zones", std::to_string(r.row.zones)}};
    reg.gauge("sharded.round_ms", labels).set(r.sharded.round_ms);
    reg.gauge("sharded.start_ms", labels).set(r.sharded.start_ms);
    reg.gauge("sharded.rounds_ms", labels).set(r.sharded.rounds_ms);
    reg.gauge("sharded.finish_ms", labels).set(r.sharded.finish_ms);
    reg.gauge("sharded.alloc_seconds", labels).set(r.sharded.alloc_seconds);
    reg.gauge("sharded.solver_flows_per_sec", labels)
        .set(r.sharded.solver_flows_per_sec);
    reg.gauge("sharded.tick_ms", labels).set(r.sharded.tick_ms);
    reg.gauge("sharded.full_ms", labels).set(r.sharded.full_ms);
    reg.gauge("sharded.reconcile_ms", labels).set(r.sharded.reconcile_ms);
    reg.gauge("sharded.allocs_per_round", labels)
        .set(r.sharded.allocs_per_round);
    if (r.unsharded.round_ms > 0.0) {
      reg.gauge("unsharded.round_ms", labels).set(r.unsharded.round_ms);
      reg.gauge("unsharded.alloc_seconds", labels).set(r.unsharded.alloc_seconds);
      reg.gauge("unsharded.solver_flows_per_sec", labels)
          .set(r.unsharded.solver_flows_per_sec);
      reg.gauge("speedup", labels).set(r.speedup());
    }
  }
  for (const GatingResult& g : gating) {
    const obs::Labels labels = {{"scenario", g.scenario},
                                {"nodes", std::to_string(g.row.nodes)},
                                {"zones", std::to_string(g.row.zones)}};
    reg.gauge("gating.gated_round_ms", labels).set(g.gated.round_ms);
    reg.gauge("gating.reconcile_ms", labels).set(g.gated.reconcile_ms);
    reg.gauge("gating.rounds_skipped", labels)
        .set(static_cast<double>(g.gated.rounds_skipped));
    reg.gauge("gating.allocs_per_round", labels).set(g.gated.allocs_per_round);
    if (g.ungated.round_ms > 0.0) {
      reg.gauge("gating.ungated_round_ms", labels).set(g.ungated.round_ms);
      reg.gauge("gating.ratio", labels).set(g.ratio());
    }
  }
  write_bench_json("scale", reg);

  if (baseline) {
    std::vector<Gate> gates;
    for (const RowResult& r : results) {
      if (r.unsharded.round_ms <= 0.0) continue;
      gates.push_back(
          {util::str_format("min_speedup_%d_%d", r.row.nodes, r.row.zones),
           util::str_format("sharded speedup %d nodes / %d zones", r.row.nodes,
                            r.row.zones),
           r.speedup()});
    }
    for (const GatingResult& g : gating) {
      if (std::strcmp(g.scenario, "sparse") == 0) {
        gates.push_back({util::str_format("min_sparse_speedup_%d_%d",
                                          g.row.nodes, g.row.zones),
                         util::str_format("gating sparse speedup %d nodes",
                                          g.row.nodes),
                         g.ratio()});
      } else if (std::strcmp(g.scenario, "dense") == 0) {
        gates.push_back({util::str_format("min_dense_ratio_%d_%d", g.row.nodes,
                                          g.row.zones),
                         util::str_format("gating dense ratio %d nodes",
                                          g.row.nodes),
                         g.ratio()});
      } else if (std::strcmp(g.scenario, "idle") == 0) {
        gates.push_back({util::str_format("max_idle_allocs_per_round_%d_%d",
                                          g.row.nodes, g.row.zones),
                         util::str_format("idle allocs/round %d nodes",
                                          g.row.nodes),
                         g.gated.allocs_per_round});
      }
    }
    return check_baseline(baseline_path, gates);
  }
  return 0;
}

}  // namespace
}  // namespace bass::bench

int main(int argc, char** argv) { return bass::bench::run(argc, argv); }
