// Scaling study for the sharded orchestrator (DESIGN.md §11): orchestrator
// round time and solver throughput vs city size, sharded against unsharded
// on the identical generated topology and serve workload.
//
// Usage:
//   bench_scale [--smoke] [--jobs N] [--check-baseline[=path]]
//
// Full mode sweeps 512..8192 nodes (the 8192-node row runs sharded only:
// the unsharded all-pairs routing table at that size costs ~7 GB and tells
// us nothing new). --smoke runs the single 2048-node/4-zone row plus its
// unsharded twin — the CI gate. --check-baseline compares against
// bench/baselines/scale_baseline.json:
//   * determinism: 512-node merged journals for --jobs 1 and --jobs 2 must
//     be byte-identical — unconditional, cheap, and the contract the whole
//     subsystem rests on;
//   * speedup: sharded round time must beat unsharded by the baseline's
//     minimum at the gated sizes — skipped under sanitizers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common.h"
#include "obs/journal.h"
#include "scenario/scenario.h"
#include "util/ini.h"
#include "util/strings.h"
#include "zone/sharded.h"

namespace bass::bench {
namespace {

struct Row {
  int nodes = 0;
  int blocks_x = 0;
  int blocks_y = 0;  // nodes = blocks_x * blocks_y * 4
  int zones = 0;
  bool run_unsharded = true;
};

constexpr int kRoundSeconds = 10;
constexpr int kDurationSeconds = 60;

std::string make_ini(const Row& row, bool zoned) {
  std::string text = util::str_format(
      "[topology]\n"
      "kind = city_grid\n"
      "blocks_x = %d\n"
      "blocks_y = %d\n"
      "nodes_per_block = 4\n"
      "gateway_every = 8\n"
      "[monitor]\n"
      "enabled = false\n"
      "[invariants]\n"
      "enabled = false\n"
      "[serve]\n"
      "mode = adaptive\n"
      "seed = 42\n"
      "arrival_per_min = %d\n"
      "mean_lifetime_s = 120\n"
      "resource_scale = 0.1\n"
      "[run]\n"
      "duration_s = %d\n",
      row.blocks_x, row.blocks_y, std::max(row.nodes / 8, 1), kDurationSeconds);
  if (zoned) {
    text += util::str_format(
        "[zones]\n"
        "count = %d\n"
        "method = bfs\n"
        "round_interval_s = %d\n",
        row.zones, kRoundSeconds);
  }
  return text;
}

struct SideResult {
  double round_ms = 0.0;
  double solver_flows_per_sec = 0.0;
  std::int64_t flows_touched = 0;
  double alloc_seconds = 0.0;
  // Sharded only: wall split across the run's phases, for reading where the
  // time goes (warmup + transit bring-up / rounds / drain + teardown).
  double start_ms = 0.0;
  double rounds_ms = 0.0;
  double finish_ms = 0.0;
};

util::Expected<std::unique_ptr<zone::ShardedOrchestrator>> build_sharded(
    const Row& row, std::size_t jobs) {
  auto ini = util::parse_ini(make_ini(row, true));
  if (!ini.ok()) return util::make_error(ini.error());
  return zone::ShardedOrchestrator::from_ini(ini.value(), jobs);
}

SideResult run_sharded(const Row& row, std::size_t jobs) {
  auto built = build_sharded(row, jobs);
  if (!built.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", built.error().c_str());
    std::exit(1);
  }
  auto orch = built.take();
  const auto ms_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };
  auto t0 = std::chrono::steady_clock::now();
  orch->start();
  SideResult r;
  r.start_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  while (orch->rounds_done() < orch->rounds_total()) orch->run_round();
  r.rounds_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  orch->finish();
  r.finish_ms = ms_since(t0);
  const zone::ShardedReport& report = orch->report();
  r.round_ms = (r.start_ms + r.rounds_ms + r.finish_ms) /
               std::max(report.rounds, 1);
  for (int z = 0; z < orch->zones(); ++z) {
    const auto stats = orch->zone_network(z).alloc_stats();
    r.flows_touched += stats.flows_touched;
    r.alloc_seconds += stats.alloc_seconds;
  }
  if (r.alloc_seconds > 0.0) {
    r.solver_flows_per_sec =
        static_cast<double>(r.flows_touched) / r.alloc_seconds;
  }
  return r;
}

SideResult run_unsharded(const Row& row) {
  auto ini = util::parse_ini(make_ini(row, false));
  if (!ini.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", ini.error().c_str());
    std::exit(1);
  }
  auto s = scenario::Scenario::from_ini(ini.value());
  if (!s.ok()) {
    std::fprintf(stderr, "FAIL: %s\n", s.error().c_str());
    std::exit(1);
  }
  auto& scene = *s.value();
  const auto t0 = std::chrono::steady_clock::now();
  scene.run();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  SideResult r;
  r.round_ms = wall_ms / (kDurationSeconds / kRoundSeconds);
  const auto stats = scene.network().alloc_stats();
  r.flows_touched = stats.flows_touched;
  r.alloc_seconds = stats.alloc_seconds;
  if (stats.alloc_seconds > 0.0) {
    r.solver_flows_per_sec =
        static_cast<double>(stats.flows_touched) / stats.alloc_seconds;
  }
  return r;
}

// The determinism gate: same seed, different worker counts, byte-identical
// merged journals. Cheap (512 nodes) and unconditional.
bool determinism_gate() {
  const Row row{512, 16, 8, 2, false};
  std::string journals[2];
  const std::size_t jobs[2] = {1, 2};
  for (int i = 0; i < 2; ++i) {
    auto built = build_sharded(row, jobs[i]);
    if (!built.ok()) {
      std::fprintf(stderr, "FAIL: %s\n", built.error().c_str());
      return false;
    }
    auto orch = built.take();
    orch->run();
    journals[i] = orch->merged_journal();
  }
  const bool ok = !journals[0].empty() && journals[0] == journals[1];
  std::printf("  %-44s %12zu vs %12zu  %s\n", "determinism: journal bytes 1j/2j",
              journals[0].size(), journals[1].size(), ok ? "ok" : "REGRESSION");
  return ok;
}

double field_as_double(
    const std::vector<std::pair<std::string, std::string>>& fields,
    const std::string& key, double fallback) {
  for (const auto& [k, v] : fields) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  return fallback;
}

bool timing_gates_enabled() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#else
  return true;
#endif
}

struct RowResult {
  Row row;
  SideResult sharded;
  SideResult unsharded;  // round_ms == 0 when not run
  double speedup() const {
    return unsharded.round_ms > 0.0 && sharded.round_ms > 0.0
               ? unsharded.round_ms / sharded.round_ms
               : 0.0;
  }
};

int check_baseline(const std::string& path, const std::vector<RowResult>& results) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  auto gate = [&](bool ok, const char* what, double got, double bound) {
    std::printf("  %-44s %12.1f vs %12.1f  %s\n", what, got, bound,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  };
  std::printf("baseline check (%s)%s:\n", path.c_str(),
              timing_gates_enabled() ? "" : " [sanitized: timing gates skipped]");
  if (!determinism_gate()) ++failures;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::pair<std::string, std::string>> fields;
    if (!obs::parse_journal_line(line, fields)) {
      std::fprintf(stderr, "unparseable baseline line: %s\n", line.c_str());
      return 1;
    }
    if (!timing_gates_enabled()) continue;
    for (const RowResult& r : results) {
      if (r.unsharded.round_ms <= 0.0) continue;
      const std::string key = util::str_format(
          "min_speedup_%d_%d", r.row.nodes, r.row.zones);
      const double min_speedup = field_as_double(fields, key, 0.0);
      if (min_speedup > 0.0) {
        gate(r.speedup() >= min_speedup,
             util::str_format("sharded speedup %d nodes / %d zones",
                              r.row.nodes, r.row.zones)
                 .c_str(),
             r.speedup(), min_speedup);
      }
    }
  }
  std::printf(failures == 0 ? "RESULT: PASS\n"
                            : "RESULT: FAIL (baseline regression)\n");
  return failures == 0 ? 0 : 1;
}

int run(int argc, char** argv) {
  bool smoke = false;
  bool baseline = false;
  std::size_t jobs = 1;
  std::string baseline_path = "bench/baselines/scale_baseline.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--check-baseline") == 0) {
      baseline = true;
    } else if (std::strncmp(argv[i], "--check-baseline=", 17) == 0) {
      baseline = true;
      baseline_path = argv[i] + 17;
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--smoke] [--jobs N]"
                   " [--check-baseline[=path]]\n");
      return 2;
    }
  }
  print_header(smoke ? "orchestrator scaling (smoke)" : "orchestrator scaling");

  std::vector<Row> rows;
  if (smoke) {
    rows.push_back({2048, 32, 16, 4, true});
  } else {
    rows.push_back({512, 16, 8, 2, true});
    rows.push_back({1024, 16, 16, 4, true});
    rows.push_back({2048, 32, 16, 4, true});
    rows.push_back({4096, 32, 32, 8, true});
    rows.push_back({8192, 64, 32, 16, false});
  }

  std::printf("%7s %6s %14s %14s %9s %16s\n", "nodes", "zones", "sharded ms/rd",
              "unsharded ms", "speedup", "solver flows/s");
  std::vector<RowResult> results;
  for (const Row& row : rows) {
    RowResult r;
    r.row = row;
    r.sharded = run_sharded(row, jobs);
    if (row.run_unsharded) {
      r.unsharded = run_unsharded(row);
      std::printf("%7d %6d %14.1f %14.1f %8.1fx %16.0f\n", row.nodes, row.zones,
                  r.sharded.round_ms, r.unsharded.round_ms, r.speedup(),
                  r.sharded.solver_flows_per_sec);
    } else {
      std::printf("%7d %6d %14.1f %14s %9s %16.0f  (unsharded skipped:"
                  " O(n^2) routing)\n",
                  row.nodes, row.zones, r.sharded.round_ms, "-", "-",
                  r.sharded.solver_flows_per_sec);
    }
    results.push_back(r);
  }

  obs::MetricsRegistry reg;
  emit_build_info(reg);
  reg.gauge("smoke").set(smoke ? 1 : 0);
  reg.gauge("jobs").set(static_cast<double>(jobs));
  for (const RowResult& r : results) {
    const obs::Labels labels = {{"nodes", std::to_string(r.row.nodes)},
                                {"zones", std::to_string(r.row.zones)}};
    reg.gauge("sharded.round_ms", labels).set(r.sharded.round_ms);
    reg.gauge("sharded.start_ms", labels).set(r.sharded.start_ms);
    reg.gauge("sharded.rounds_ms", labels).set(r.sharded.rounds_ms);
    reg.gauge("sharded.finish_ms", labels).set(r.sharded.finish_ms);
    reg.gauge("sharded.alloc_seconds", labels).set(r.sharded.alloc_seconds);
    reg.gauge("sharded.solver_flows_per_sec", labels)
        .set(r.sharded.solver_flows_per_sec);
    if (r.unsharded.round_ms > 0.0) {
      reg.gauge("unsharded.round_ms", labels).set(r.unsharded.round_ms);
      reg.gauge("unsharded.alloc_seconds", labels).set(r.unsharded.alloc_seconds);
      reg.gauge("unsharded.solver_flows_per_sec", labels)
          .set(r.unsharded.solver_flows_per_sec);
      reg.gauge("speedup", labels).set(r.speedup());
    }
  }
  write_bench_json("scale", reg);

  if (baseline) return check_baseline(baseline_path, results);
  return 0;
}

}  // namespace
}  // namespace bass::bench

int main(int argc, char** argv) { return bass::bench::run(argc, argv); }
