// Ablation — bandwidth-sharing model (DESIGN.md §5): the evaluation's
// conclusions should not hinge on the simulator's max-min assumption.
// Re-runs the Fig. 4 bottleneck sweep under both fairness policies: the
// collapse point and trend must agree even though the sharing rule differs.
#include "common.h"

#include "workload/video_conference.h"

using namespace bass;

namespace {

struct Point {
  double bitrate;
  double loss;
};

Point run(net::FairnessPolicy policy, int participants) {
  sim::Simulation sim;
  net::Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node();
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) topo.add_link(i, j, net::gbps(1));
  }
  net::NetworkConfig ncfg;
  ncfg.fairness = policy;
  net::Network network(sim, std::move(topo), ncfg);
  cluster::ClusterState cluster;
  for (int i = 0; i < 3; ++i) cluster.add_node(i, {16000, 131072, true});
  core::Orchestrator orch(sim, network, cluster);

  {
    net::Network::BatchUpdate batch(network);
    for (net::LinkId l : network.topology().out_links(1)) {
      network.set_link_capacity(l, net::mbps(30));
    }
  }

  const net::Bps kStream = net::mbps(3);
  auto graph = app::video_conference_app({{2, participants}}, kStream);
  sched::Placement manual;
  manual[graph.find("pion-sfu")] = 1;
  const auto id = orch.deploy_with_placement(std::move(graph), manual).take();

  workload::VideoConferenceConfig cfg;
  cfg.groups = {{2, participants}};
  cfg.per_stream = kStream;
  cfg.single_publisher = true;
  workload::VideoConferenceEngine engine(orch, id, cfg);
  engine.start();
  sim.run_until(sim::minutes(1));
  engine.stop();
  return {engine.mean_bitrate(2, sim::seconds(5)), engine.mean_loss(2, sim::seconds(5))};
}

}  // namespace

int main() {
  bench::print_header("Ablation: max-min vs proportional sharing (Fig. 4 sweep)");
  std::printf("%12s | %18s %8s | %18s %8s\n", "participants", "maxmin Kbps/client",
              "loss", "prop Kbps/client", "loss");
  for (int participants = 4; participants <= 20; participants += 4) {
    const Point mm = run(net::FairnessPolicy::kMaxMin, participants);
    const Point pr = run(net::FairnessPolicy::kProportional, participants);
    std::printf("%12d | %18.0f %7.1f%% | %18.0f %7.1f%%\n", participants,
                mm.bitrate / 1e3, mm.loss * 100, pr.bitrate / 1e3, pr.loss * 100);
  }
  std::printf("\nexpect: identical trend and collapse point (~10 participants at\n"
              "30 Mbps / 3 Mbps streams) under both sharing models — the paper's\n"
              "conclusions do not depend on the max-min assumption\n");
  return 0;
}
