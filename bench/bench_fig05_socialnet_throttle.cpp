// Fig. 5 — Average end-to-end latency of the DeathStarBench social network
// at 400 RPS (exponential arrivals) on a 3-node cluster, with one node's
// egress throttled to 25 Mbps for 2 minutes mid-run. The "sufficient
// bandwidth" run stays flat; the throttled run's latency inflates by an
// order of magnitude during the restriction (paper Fig. 5).
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

namespace {

metrics::TimeSeries run(bool throttle) {
  // The paper deploys with the default k3s scheduler for this motivation
  // experiment (BASS is not in the picture yet).
  bench::LanCluster rig(3, 12000, 131072);
  const auto id =
      rig.orch->deploy(app::social_network_app(), core::SchedulerKind::kK3sDefault);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 400;
  cfg.arrival = workload::RequestWorkloadConfig::Arrival::kExponential;
  cfg.client_node = 0;
  cfg.seed = 5;
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();

  if (throttle) {
    // Find a node hosting a heavy-traffic service and throttle it between
    // t=120 s and t=240 s (the paper throttles "one of the links").
    const auto target = rig.orch->node_of(
        id.value(), rig.orch->app(id.value()).find("post-storage-service"));
    rig.sim.schedule_at(sim::minutes(2),
                        [&, target] { rig.limit_node_egress(target, net::mbps(25)); });
    rig.sim.schedule_at(sim::minutes(4),
                        [&, target] { rig.restore_node_egress(target, net::gbps(1)); });
  }

  rig.sim.run_until(sim::minutes(6));
  engine.stop();
  rig.sim.run_until(sim::minutes(8));
  return engine.latencies().series().binned_mean(sim::seconds(10));
}

void print_series(const char* name, const metrics::TimeSeries& series) {
  std::printf("%s (mean latency ms per 10 s bin):\n", name);
  for (const auto& s : series.samples()) {
    if (s.at > sim::minutes(6)) break;
    std::printf("  t=%3.0fs %10.1f ms\n", sim::to_seconds(s.at), s.value);
  }
  if (bench::csv_enabled()) {
    series.write_csv(std::string("fig05_") + name + ".csv", "latency_ms");
  }
}

}  // namespace

int main() {
  bench::print_header(
      "Fig. 5: social network latency under a 25 Mbps throttle (400 RPS)");
  const auto baseline = run(false);
  const auto throttled = run(true);
  print_series("sufficient-bandwidth", baseline);
  print_series("throttled-120s-240s", throttled);

  const double calm = baseline.mean_in(sim::minutes(2), sim::minutes(4));
  const double constrained = throttled.mean_in(sim::minutes(2), sim::minutes(4));
  std::printf("\nmean latency during the window: %.1f ms (sufficient) vs %.1f ms "
              "(throttled) -> %.1fx inflation (paper: ~an order of magnitude)\n",
              calm, constrained, constrained / std::max(calm, 1e-9));
  return 0;
}
