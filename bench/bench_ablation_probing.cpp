// Ablation — headroom probing vs always flooding (§4.2, §6.3.4).
//
// BASS's two-tier probing exists to keep measurement traffic negligible:
// the paper reports ~0.3% of link traffic for 30 s/10% headroom probes and
// notes full probes were needed only a handful of times in 20 minutes.
// This harness runs the social-network workload on the CityLab mesh under
// (a) BASS's headroom probing and (b) the naive flood-every-round strategy,
// and reports probe bytes, probe share of all traffic, and the collateral
// damage to application latency.
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

namespace {

struct Result {
  double probe_mb;
  double probe_share;  // of total delivered bytes
  int full_probes;
  int headroom_probes;
  double median_ms;
  double p99_ms;
};

Result run(bool always_full) {
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(10);
  bench::CityLabRig rig(sim::minutes(10), /*variation=*/true, /*fades=*/false,
                        /*seed=*/71, orch_cfg);
  // Swap the rig's monitor for one with the requested strategy.
  rig.monitor = std::make_unique<monitor::NetMonitor>(
      *rig.network, monitor::MonitorConfig{.always_full_probe = always_full});
  rig.orch->attach_monitor(rig.monitor.get());
  rig.start();

  const auto id = rig.orch->deploy(app::social_network_app(100.0 / 400.0),
                                   core::SchedulerKind::kBassAuto);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  workload::RequestWorkloadConfig cfg;
  cfg.rps = 100;
  cfg.client_node = 0;
  cfg.max_in_flight = 1000;
  cfg.seed = 71;
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(10));
  engine.stop();
  rig.sim.run_until(sim::minutes(12));

  Result r;
  r.probe_mb = static_cast<double>(rig.monitor->probe_bytes_sent()) / 1e6;
  r.probe_share = static_cast<double>(rig.monitor->probe_bytes_sent()) /
                  static_cast<double>(rig.network->total_bytes_delivered());
  r.full_probes = rig.monitor->full_probe_count();
  r.headroom_probes = rig.monitor->headroom_probe_count();
  r.median_ms = engine.latencies().median_ms();
  r.p99_ms = engine.latencies().p99_ms();
  return r;
}

}  // namespace

int main() {
  bench::print_header("Ablation: headroom probing vs flood-every-round");
  std::printf("%-18s %10s %12s %8s %10s %12s %10s\n", "strategy", "probe MB",
              "probe share", "floods", "headroom", "median(ms)", "p99(ms)");
  const Result headroom = run(false);
  const Result flood = run(true);
  std::printf("%-18s %10.1f %11.2f%% %8d %10d %12.1f %10.1f\n", "bass-headroom",
              headroom.probe_mb, headroom.probe_share * 100, headroom.full_probes,
              headroom.headroom_probes, headroom.median_ms, headroom.p99_ms);
  std::printf("%-18s %10.1f %11.2f%% %8d %10d %12.1f %10.1f\n", "flood-always",
              flood.probe_mb, flood.probe_share * 100, flood.full_probes,
              flood.headroom_probes, flood.median_ms, flood.p99_ms);
  std::printf("\nexpect: headroom probing uses a small fraction of the flood\n"
              "strategy's measurement traffic (paper: ~0.3%% of link traffic)\n"
              "with equal or better application latency\n");
  return 0;
}
