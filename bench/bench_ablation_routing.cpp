// Ablation — the mesh's routing protocol (§1/§3.1: BASS must work "with
// any routing mechanism"). Min-hop routing (802.11s-style) pins traffic to
// the geometric shortest path even when it crosses a weak link; a
// link-quality metric (BATMAN/OLSR-ETX-style, modelled as widest-path)
// routes around weak links. BASS's conclusions should hold under both: the
// bandwidth-oblivious baseline suffers more under min-hop (the network
// can't save it), while BASS placements barely care because they avoid
// weak paths at placement time.
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

namespace {

double run(net::RoutingPolicy routing, core::SchedulerKind kind) {
  const auto mesh = trace::citylab_mesh();
  sim::Simulation sim;
  net::NetworkConfig ncfg;
  ncfg.routing = routing;
  net::Network network(sim, mesh.topology, ncfg);
  cluster::ClusterState cluster;
  cluster.add_node(0, {8000, 8192, false});
  cluster.add_node(1, {8000, 6144, true});
  cluster.add_node(2, {8000, 6144, true});
  cluster.add_node(3, {8000, 6144, true});
  cluster.add_node(4, {5000, 6144, true});
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(10);
  core::Orchestrator orch(sim, network, cluster, orch_cfg);
  monitor::NetMonitor netmon(network);
  orch.attach_monitor(&netmon);
  netmon.start();
  trace::TracePlayer player(network);
  trace::bind_citylab_traces(mesh, player, sim::minutes(8), /*fades=*/true, 81);
  player.start();

  const auto id = orch.deploy(app::social_network_app(100.0 / 400.0), kind);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  workload::RequestWorkloadConfig cfg;
  cfg.rps = 100;
  cfg.client_node = 0;
  cfg.max_in_flight = 1000;
  cfg.seed = 81;
  workload::RequestEngine engine(orch, id.value(), cfg);
  engine.start();
  sim.run_until(sim::minutes(8));
  engine.stop();
  sim.run_until(sim::minutes(10));
  netmon.stop();
  return engine.latencies().median_ms();
}

}  // namespace

int main() {
  bench::print_header("Ablation: mesh routing protocol (min-hop vs link-quality)");
  std::printf("%-14s %22s %18s\n", "routing", "bass-auto median(ms)",
              "k3s median(ms)");
  for (const auto routing :
       {net::RoutingPolicy::kMinHop, net::RoutingPolicy::kWidestPath}) {
    const double bass = run(routing, core::SchedulerKind::kBassAuto);
    const double k3s = run(routing, core::SchedulerKind::kK3sDefault);
    std::printf("%-14s %22.1f %18.1f\n",
                routing == net::RoutingPolicy::kMinHop ? "min-hop" : "widest-path",
                bass, k3s);
  }
  std::printf("\nexpect: BASS stays low under both protocols (it avoids weak\n"
              "paths at placement time); k3s improves under link-quality routing\n"
              "but remains worse — routing alone cannot fix a bad placement\n");
  return 0;
}
