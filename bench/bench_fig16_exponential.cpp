// Fig. 16 — Migration-threshold sweep under *exponential* request arrivals
// (mean 50 RPS) on the CityLab mesh with the longest-path scheduler and
// 20% headroom (§6.3.3).
//
// Paper: unlike the constant-rate workload (Fig. 14(c,d)), bursty arrivals
// favor *lower* thresholds — early migration doesn't inflate latency the
// way it does for steady traffic, and it dodges the bursts. In our
// reproduction the optimum likewise shifts downward (the 95% threshold
// collapses under bursts), though the extreme 25% setting still pays for
// migration churn.
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

int main() {
  bench::print_header("Fig. 16: threshold sweep, exponential arrivals (130 RPS mean)");
  std::printf("%10s %12s %12s %12s %12s\n", "threshold", "median(ms)", "p75(ms)",
              "p99(ms)", "migrations");

  for (const double threshold : {0.25, 0.50, 0.65, 0.75, 0.95}) {
    core::OrchestratorConfig orch_cfg;
    orch_cfg.restart_duration = sim::seconds(10);  // stateless pod restart
    bench::CityLabRig rig(sim::minutes(12), /*variation=*/true, /*fades=*/true,
                          /*seed=*/161, orch_cfg);
    rig.start();
    const auto id = rig.orch->deploy(app::social_network_app(130.0 / 400.0),
                                     core::SchedulerKind::kBassLongestPath);
    if (!id.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
      return 1;
    }
    controller::MigrationParams params;
    params.evaluation_interval = sim::seconds(30);
    params.utilization_threshold = threshold;
    params.headroom_frac = 0.20;
    params.cooldown = sim::seconds(30);
    params.min_migration_gap = sim::seconds(90);
    rig.orch->enable_migration(id.value(), params);

    workload::RequestWorkloadConfig cfg;
    cfg.rps = 130;
    cfg.max_in_flight = 1000;  // wrk-style bounded connection pool
    cfg.arrival = workload::RequestWorkloadConfig::Arrival::kExponential;
    cfg.client_node = 0;
    cfg.seed = 16;
    workload::RequestEngine engine(*rig.orch, id.value(), cfg);
    engine.start();
    rig.sim.run_until(sim::minutes(12));
    engine.stop();
    rig.sim.run_until(sim::minutes(14));

    std::printf("%9.0f%% %12.1f %12.1f %12.1f %12zu\n", threshold * 100,
                engine.latencies().median_ms(), engine.latencies().percentile_ms(75),
                engine.latencies().p99_ms(), rig.orch->migration_events().size());
  }
  std::printf(
      "\nexpect: with bursty arrivals the optimum shifts to lower thresholds\n"
      "than under constant arrivals (paper Fig. 16): waiting for 95%% link\n"
      "utilization before migrating is punished hard by bursts, while the\n"
      "constant-arrival sweep (Fig. 14(c,d)) tolerates high thresholds.\n");
  return 0;
}
