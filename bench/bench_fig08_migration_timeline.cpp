// Fig. 8 — Migration walkthrough. A component pair requiring 8 Mbps runs
// between node 3 and node 4 of the CityLab subset (node3-node4 link:
// 25 Mbps). Headroom is 4 Mbps (~20% of capacity), probed every 30 s; the
// goodput/utilization threshold is 50%.
//
// Timeline (mirroring the paper):  the node3-node4 link capacity drops at
// t=540 s -> the headroom probe detects the shrink -> a full probe
// re-estimates the link -> goodput falls under threshold -> the moveable
// end migrates node4 -> node1. At t=1119 s node1-node3 degrades and
// node3-node4 recovers -> the component migrates back.
#include "common.h"

#include "workload/pair_stream.h"

using namespace bass;

int main() {
  bench::print_header("Fig. 8: migration on bandwidth change (component pair)");

  // CityLab topology with calm links (we drive the two relevant links by
  // hand to follow the paper's timeline exactly).
  const auto mesh = trace::citylab_mesh();
  sim::Simulation sim;
  net::Network network(sim, mesh.topology);
  cluster::ClusterState cluster;
  cluster.add_node(0, {8000, 8192, false});
  for (net::NodeId w : mesh.workers) cluster.add_node(w, {12000, 8192, true});
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(20);
  core::Orchestrator orch(sim, network, cluster, orch_cfg);
  monitor::NetMonitor netmon(network);
  obs::Recorder recorder;
  network.set_recorder(&recorder);
  orch.set_recorder(&recorder);
  netmon.set_recorder(&recorder);
  orch.attach_monitor(&netmon);
  netmon.start();

  // The pair: "anchor" pinned at node 3 (filling it — so the pair can
  // never co-locate and must ride the mesh, as in the paper's walkthrough),
  // "worker" initially on node 4.
  app::AppGraph g("pair");
  app::Component anchor{.name = "anchor", .cpu_milli = 12000, .memory_mb = 1024};
  anchor.pinned_node = 3;
  g.add_component(anchor);
  g.add_component({.name = "worker", .cpu_milli = 500, .memory_mb = 128});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  sched::Placement manual{{0, 3}, {1, 4}};
  const auto id = orch.deploy_with_placement(std::move(g), manual);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    return 1;
  }

  controller::MigrationParams params;
  params.utilization_threshold = 0.50;  // 50% goodput threshold
  params.headroom_frac = 0.16;          // 4 Mbps of the 25 Mbps link
  params.evaluation_interval = sim::seconds(30);
  params.cooldown = sim::seconds(60);
  params.min_migration_gap = sim::seconds(120);
  orch.enable_migration(id.value(), params);

  workload::PairStreamConfig pcfg;
  pcfg.from = 0;
  pcfg.to = 1;
  pcfg.demand = net::mbps(8);
  workload::PairStreamEngine pair(orch, id.value(), pcfg);
  pair.start();

  // ---- The paper's capacity script ----
  sim.schedule_at(sim::seconds(540), [&] {
    std::printf("t= 540s  node3-node4 capacity drops 25 -> 7 Mbps\n");
    network.set_link_capacity_between(3, 4, net::mbps(7));
  });
  sim.schedule_at(sim::seconds(1119), [&] {
    std::printf("t=1119s  node1-node3 degrades to 6 Mbps, node3-node4 back to 25\n");
    network.set_link_capacity_between(1, 3, net::mbps(6));
    network.set_link_capacity_between(3, 4, net::mbps(25));
  });

  netmon.set_violation_callback([&](net::LinkId link, net::Bps delivered) {
    const auto& l = network.topology().link(link);
    std::printf("t=%5.0fs  headroom violation on %s->%s (probe delivered %.1f Mbps)\n",
                sim::to_seconds(sim.now()),
                network.topology().node_name(l.src).c_str(),
                network.topology().node_name(l.dst).c_str(),
                static_cast<double>(delivered) / 1e6);
  });

  sim.run_until(sim::minutes(30));
  pair.stop();
  netmon.stop();

  std::printf("\nmigrations:\n");
  for (const auto& m : orch.migration_events()) {
    std::printf("  t=%5.0fs  %s: node%d -> node%d\n", sim::to_seconds(m.at),
                orch.app(id.value()).component(m.component).name.c_str(), m.from, m.to);
  }

  std::printf("\ngoodput (60 s means):\n");
  const auto goodput = pair.goodput_series().binned_mean(sim::minutes(1));
  for (const auto& s : goodput.samples()) {
    std::printf("  t=%5.0fs  goodput=%4.0f%%\n", sim::to_seconds(s.at), s.value * 100);
  }
  if (bench::csv_enabled()) {
    pair.goodput_series().write_csv("fig08_goodput.csv", "goodput_frac");
  }

  std::printf("\nexpect: goodput collapses after t=540, recovers after the first\n"
              "migration (node4->node1), collapses again after t=1119 and recovers\n"
              "after migrating back (paper Fig. 8)\n");

  // Probe costs, headroom violations, and migration downtimes accumulated
  // by the live instrumentation, through the shared snapshot path.
  bench::write_bench_json("fig08_migration_timeline", recorder.metrics(), sim.now());
  return 0;
}
