// Shared experiment rigs for the bench harnesses: the CloudLab-style LAN
// microbenchmark cluster (§6.2) and the emulated CityLab mesh (§6.3).
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "monitor/net_monitor.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "trace/citylab.h"
#include "util/logging.h"
#include "util/simd.h"
#include "util/strings.h"

namespace bass::bench {

// True when the harness should also dump CSV series next to the binary.
inline bool csv_enabled() {
  const char* v = std::getenv("BASS_BENCH_CSV");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline void print_header(const std::string& title) {
  if (std::getenv("BASS_BENCH_DEBUG") != nullptr) {
    util::set_log_level(util::LogLevel::kDebug);
  } else if (std::getenv("BASS_LOG") == nullptr) {
    // Keep harness output to the tables themselves — unless the user asked
    // for a specific level via BASS_LOG (honored by the logger at startup).
    util::set_log_level(util::LogLevel::kError);
  }
  std::printf("\n=== %s ===\n", title.c_str());
}

// Machine/build metadata for baseline comparability: one "build.info" gauge
// whose labels carry the compiler, build type, flags, and SIMD/sanitizer
// state. A checked-in baseline is only meaningful against a comparable
// build, and this row is how a reader (or CI) tells at a glance whether
// two BENCH_*.json files can be compared.
inline void emit_build_info(obs::MetricsRegistry& registry) {
#ifdef BASS_BUILD_TYPE
  const char* build_type = BASS_BUILD_TYPE;
#else
  const char* build_type = "unknown";
#endif
#ifdef BASS_CXX_FLAGS
  const char* flags = BASS_CXX_FLAGS;
#else
  const char* flags = "";
#endif
  bool sanitized = false;
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  sanitized = true;
#endif
  registry
      .gauge("build.info",
             {{"compiler", __VERSION__},
              {"build_type", build_type},
              {"flags", flags},
              {"simd", util::simd::kCompiled ? "on" : "off"},
              {"sanitizer", sanitized ? "on" : "off"}})
      .set(1.0);
}

// Writes BENCH_<name>.json through the metrics snapshot path: callers put
// their results into an obs::MetricsRegistry (labels distinguish scenario
// rows) and every bench emits the same self-describing schema — counters,
// gauges, and histograms with name/labels/value — instead of hand-rolled
// fprintf JSON per harness. A registry fed by a live obs::Recorder works
// too; the bench's own summary numbers just go into the same registry.
inline bool write_bench_json(const std::string& name,
                             const obs::MetricsRegistry& registry,
                             sim::Time now = 0) {
  const std::string path = "BENCH_" + name + ".json";
  if (!registry.write_json(path, now)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

// ---- Microbenchmark rig: N nodes on a full-mesh LAN (§6.2.1) ----
//
// CloudLab machines on a bridged LAN; tc imposes per-node egress limits.
// c6525-25g: 16 cores (12 allocatable after k3s system reservations),
// d710: 4 cores. LAN links default to 1 Gbps.
struct LanCluster {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;

  LanCluster(int nodes, std::int64_t cpu_milli, std::int64_t memory_mb,
             net::Bps lan = net::gbps(1),
             core::OrchestratorConfig config = {}) {
    net::Topology topo;
    for (int i = 0; i < nodes; ++i) topo.add_node("node" + std::to_string(i + 1));
    for (int i = 0; i < nodes; ++i) {
      for (int j = i + 1; j < nodes; ++j) topo.add_link(i, j, lan);
    }
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < nodes; ++i) cluster.add_node(i, {cpu_milli, memory_mb, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster, config);
  }

  // tc-style egress limit: caps every outgoing link of `node`.
  void limit_node_egress(net::NodeId node, net::Bps cap) {
    net::Network::BatchUpdate batch(*network);
    for (net::LinkId l : network->topology().out_links(node)) {
      network->set_link_capacity(l, cap);
    }
  }

  void restore_node_egress(net::NodeId node, net::Bps cap) { limit_node_egress(node, cap); }
};

// ---- Emulated CityLab mesh rig (§6.3) ----
//
// The 5-node CityLab subset: node 0 runs the control plane (unschedulable),
// nodes 1-4 are heterogeneous workers (12 or 8 cores, 8 GB). Traces drive
// every link; the net-monitor probes them; BASS schedules off the monitor's
// cache.
struct CityLabRig {
  sim::Simulation sim;
  trace::CityLabMesh mesh;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<monitor::NetMonitor> monitor;
  std::unique_ptr<core::Orchestrator> orch;
  std::unique_ptr<trace::TracePlayer> player;

  explicit CityLabRig(sim::Duration trace_duration, bool variation, bool fades,
                      std::uint64_t seed = 42,
                      core::OrchestratorConfig config = {}) {
    mesh = trace::citylab_mesh();
    network = std::make_unique<net::Network>(sim, mesh.topology);
    cluster.add_node(0, {8000, 8192, false});  // control plane
    // Heterogeneous workers: 12, 12, 12, 8 cores with 8 GB (§6.3), of
    // which roughly two thirds is allocatable to application pods — the
    // rest runs k3s system pods, the BASS net-monitor daemon, Prometheus
    // scrapers, and the per-pod Istio sidecars of §5.
    cluster.add_node(1, {8000, 6144, true});
    cluster.add_node(2, {8000, 6144, true});
    cluster.add_node(3, {8000, 6144, true});
    cluster.add_node(4, {5000, 6144, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster, config);
    monitor = std::make_unique<monitor::NetMonitor>(*network);
    orch->attach_monitor(monitor.get());
    player = std::make_unique<trace::TracePlayer>(*network);
    if (variation) {
      trace::bind_citylab_traces(mesh, *player, trace_duration, fades, seed);
    }
    // Without variation, links stay at the trace means — the paper's
    // "bandwidth on the links set to the maximum observed" baseline uses
    // the calm capacities.
  }

  void start() {
    monitor->start();
    player->start();
  }
};

}  // namespace bass::bench
