// Table 2 — Median camera-pipeline end-to-end latency on the emulated
// CityLab mesh, with and without bandwidth variation, under the three
// schedulers (§6.3.1: sampler 4 cores, detector 8 cores, 4 worker nodes).
//
// Paper (ms):            BFS   longest-path   k3s
//   no variation         540        551       577
//   with variation       538        552       692   (k3s inflates ~20%)
#include "common.h"

#include "workload/camera_pipeline.h"

using namespace bass;

namespace {

struct Row {
  double median_ms;
  double mean_ms;
};

Row run(core::SchedulerKind kind, bool variation) {
  bench::CityLabRig rig(sim::minutes(20), variation, /*fades=*/variation, /*seed=*/22);
  rig.start();
  const auto id = rig.orch->deploy(app::camera_pipeline_app(), kind);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  // Migration support is on (threshold 65%) — the paper notes no
  // migrations fired for this workload because headroom held.
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(30);
  params.utilization_threshold = 0.65;
  params.headroom_frac = 0.20;
  params.cooldown = sim::seconds(60);
  rig.orch->enable_migration(id.value(), params);

  workload::CameraPipelineConfig cfg;
  cfg.fps = 10;
  cfg.seed = 22;
  cfg.frame_buffer = 8;  // stale frames are dropped, not parked
  workload::CameraPipelineEngine engine(*rig.orch, id.value(), cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(20));
  engine.stop();
  rig.sim.run_until(sim::minutes(22));
  return {engine.e2e().median_ms(), engine.e2e().mean_ms()};
}

}  // namespace

int main() {
  bench::print_header("Table 2: camera pipeline median latency on the CityLab mesh");
  std::printf("%-24s %16s %22s %16s\n", "scenario (median|mean)", "BFS (ms)",
              "longest-path (ms)", "k3s (ms)");
  for (const bool variation : {false, true}) {
    const Row bfs = run(core::SchedulerKind::kBassBfs, variation);
    const Row lp = run(core::SchedulerKind::kBassLongestPath, variation);
    const Row k3s = run(core::SchedulerKind::kK3sDefault, variation);
    std::printf("%-24s %8.0f|%-7.0f %14.0f|%-7.0f %8.0f|%-7.0f\n",
                variation ? "with bandwidth variation" : "no bandwidth variation",
                bfs.median_ms, bfs.mean_ms, lp.median_ms, lp.mean_ms, k3s.median_ms,
                k3s.mean_ms);
  }
  std::printf("\npaper (median):             540/538        551/552    577/692\n");
  std::printf("expect: BASS rows stable across variation; k3s inflates ~20%%\n"
              "under the varying trace (paper Table 2: 577 -> 692 ms) — in our\n"
              "reproduction the inflation shows in the mean (fade episodes are\n"
              "bounded by the camera's 8-frame buffer, so the median is sticky)\n");
  return 0;
}
