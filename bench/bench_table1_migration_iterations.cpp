// Table 1 — Social-network component migrations across successive
// controller iterations (30 s querying interval, bandwidth reduced to
// 25 Mbps at one node).
//
// Paper: iteration 1 sees 6 components exceeding their link-utilization
// quota but migrates only 2 (communicating pairs are deduplicated; §3.2.2),
// then 1/1 and 1/1 in the following iterations.
#include "common.h"

#include "workload/request_engine.h"

using namespace bass;

int main() {
  bench::print_header("Table 1: migration iterations (social network, 30 s interval)");

  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(20);
  bench::LanCluster rig(3, 12000, 131072, net::gbps(1), orch_cfg);
  monitor::NetMonitor netmon(*rig.network);
  obs::Recorder recorder;
  rig.network->set_recorder(&recorder);
  rig.orch->set_recorder(&recorder);
  netmon.set_recorder(&recorder);
  rig.orch->attach_monitor(&netmon);
  netmon.start();

  const auto id = rig.orch->deploy(app::social_network_app(),
                                   core::SchedulerKind::kK3sDefault);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    return 1;
  }
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(30);
  params.utilization_threshold = 0.50;
  params.headroom_frac = 0.20;
  params.cooldown = sim::seconds(30);
  params.min_migration_gap = sim::seconds(60);
  rig.orch->enable_migration(id.value(), params);

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 400;
  cfg.client_node = 0;
  cfg.seed = 21;
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();

  // Throttle the node hosting post-storage (the hub of the heavy edges).
  rig.sim.schedule_at(sim::seconds(10), [&] {
    const auto node = rig.orch->node_of(
        id.value(), rig.orch->app(id.value()).find("post-storage-service"));
    rig.limit_node_egress(node, net::mbps(25));
  });

  rig.sim.run_until(sim::minutes(6));
  engine.stop();
  rig.sim.run_until(sim::minutes(8));
  netmon.stop();

  std::printf("%10s %38s %18s\n", "iteration", "components exceeding utilization quota",
              "components migrated");
  int iteration = 0;
  for (const auto& round : rig.orch->controller_rounds(id.value())) {
    ++iteration;
    std::printf("%10d %38d %18d   (t=%.0fs)\n", iteration, round.violating_components,
                round.migrations_started, sim::to_seconds(round.at));
  }
  if (iteration == 0) std::printf("(no violating rounds recorded)\n");

  std::printf("\nmigrated components:\n");
  for (const auto& m : rig.orch->migration_events()) {
    std::printf("  t=%4.0fs %-28s node%d -> node%d\n", sim::to_seconds(m.at),
                rig.orch->app(id.value()).component(m.component).name.c_str(),
                m.from + 1, m.to + 1);
  }
  std::printf("\nexpect: first iteration has several violators but migrates only a\n"
              "subset (pair dedup); later iterations shrink (paper Table 1: 6/2,\n"
              "1/1, 1/1)\n");

  // The live instrumentation (probe costs, controller rounds, migration
  // downtimes) plus the table itself, through the shared snapshot path.
  obs::MetricsRegistry& reg = recorder.metrics();
  iteration = 0;
  for (const auto& round : rig.orch->controller_rounds(id.value())) {
    ++iteration;
    const obs::Labels labels = {{"iteration", std::to_string(iteration)}};
    reg.gauge("table1.violating_components", labels).set(round.violating_components);
    reg.gauge("table1.migrations_started", labels).set(round.migrations_started);
  }
  bench::write_bench_json("table1_migration_iterations", reg, rig.sim.now());
  return 0;
}
