// Fig. 12 — Video conference under a mid-run bandwidth restriction, with
// and without BASS's migration support (§6.2.3). Nine participants at
// node 3, the Pion server starts on node 2 (the Fig. 3 setup); 10 s into
// the run, node 2's egress is throttled; the restriction lifts after
// 3 minutes.
//
// With a 30 s evaluation interval BASS migrates the SFU to node 1 and the
// participants regain their bitrate after the ~30 s reconnect window; with
// no migration the conference limps through the full 3-minute restriction.
#include "common.h"

#include "workload/video_conference.h"

using namespace bass;

namespace {

metrics::TimeSeries run(bool migration_enabled, sim::Duration interval) {
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(20);  // + 10 s reconnect = ~30 s outage
  bench::LanCluster rig(3, 16000, 131072, net::gbps(1), orch_cfg);
  // Node 3 only hosts the client processes (the paper's load machine) —
  // cordon it so the SFU can't colocate with its own clients.
  rig.cluster.set_schedulable(2, false);
  // The monitor keeps the controller's capacity view honest.
  monitor::NetMonitor netmon(*rig.network);
  rig.orch->attach_monitor(&netmon);
  netmon.start();

  const net::Bps kStream = net::mbps(2);
  const int kParticipants = 9;
  auto graph = app::video_conference_app({{2, kParticipants}}, kStream);
  sched::Placement manual;
  manual[graph.find("pion-sfu")] = 1;  // server starts on node 2
  const auto id = rig.orch->deploy_with_placement(std::move(graph), manual);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }

  if (migration_enabled) {
    controller::MigrationParams params;
    params.evaluation_interval = interval;
    params.utilization_threshold = 0.65;
    params.headroom_frac = 0.20;
    params.cooldown = interval;  // react after one confirming round
    params.min_migration_gap = sim::minutes(2);
    rig.orch->enable_migration(id.value(), params);
  }

  workload::VideoConferenceConfig cfg;
  cfg.groups = {{2, kParticipants}};
  cfg.per_stream = kStream;
  cfg.single_publisher = true;
  cfg.reconnect_delay = sim::seconds(10);
  workload::VideoConferenceEngine engine(*rig.orch, id.value(), cfg);
  engine.start();

  // t=10 s: node 2 egress throttled below the 16 Mbps forwarding demand;
  // t=190 s: restriction lifted (red vertical lines in the paper's figure).
  rig.sim.schedule_at(sim::seconds(10), [&] {
    rig.limit_node_egress(1, net::mbps(6));
  });
  rig.sim.schedule_at(sim::seconds(190), [&] {
    rig.restore_node_egress(1, net::gbps(1));
  });

  rig.sim.run_until(sim::minutes(5));
  engine.stop();
  netmon.stop();
  return engine.bitrate_series(2).binned_mean(sim::seconds(10));
}

void print_series(const char* name, const metrics::TimeSeries& s) {
  std::printf("\n%s (per-client bitrate, 10 s bins):\n", name);
  for (const auto& p : s.samples()) {
    std::printf("  t=%3.0fs %8.0f Kbps\n", sim::to_seconds(p.at), p.value / 1e3);
  }
  if (bench::csv_enabled()) {
    s.write_csv(std::string("fig12_") + name + ".csv", "bps");
  }
}

}  // namespace

int main() {
  bench::print_header("Fig. 12: video conference bitrate, migration vs none");
  std::printf("restriction imposed t=10s, lifted t=190s (red lines in the paper)\n");
  const auto with30 = run(true, sim::seconds(30));
  const auto without = run(false, sim::seconds(30));
  print_series("migration-30s-interval", with30);
  print_series("no-migration", without);
  std::printf("\nexpect: the 30 s-interval run dips during the ~30 s migration+\n"
              "reconnect window then recovers to full bitrate; the no-migration\n"
              "run stays degraded for the whole 3-minute restriction (Fig. 12)\n");
  return 0;
}
