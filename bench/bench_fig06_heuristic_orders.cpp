// Fig. 6 — Component orders chosen by the two heuristics on the example
// DAG, and the resulting placements assuming two 4-core nodes with 1-core
// components (the figure's colors). Published orders:
//   BFS:          1, 3, 2, 4, 5, 7, 6
//   longest-path: 1, 2, 4, 5, 7, 3, 6
#include "common.h"

#include "sched/heuristics.h"
#include "sched/node_ranker.h"
#include "sched/packer.h"

using namespace bass;

namespace {

std::string join(const app::AppGraph& g, const std::vector<app::ComponentId>& ids) {
  std::string out;
  for (app::ComponentId c : ids) {
    if (!out.empty()) out += ", ";
    out += g.component(c).name;
  }
  return out;
}

void print_placement(const char* name, const app::AppGraph& g,
                     const sched::Placement& p) {
  std::printf("%-13s placement: ", name);
  for (app::ComponentId c = 0; c < g.component_count(); ++c) {
    std::printf("%s->node%d  ", g.component(c).name.c_str(), p.at(c) + 1);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header("Fig. 6: heuristic component orders on the example DAG");
  const app::AppGraph g = app::fig6_example();

  const auto bfs = sched::bfs_order(g);
  const auto lp = sched::longest_path_order(g);
  std::printf("BFS order:          %s   (paper: 1, 3, 2, 4, 5, 7, 6)\n",
              join(g, bfs).c_str());
  std::printf("longest-path order: %s   (paper: 1, 2, 4, 5, 7, 3, 6)\n",
              join(g, lp).c_str());

  // Two 4-core nodes, each component needs one core (figure caption).
  bench::LanCluster rig(2, 4000, 8192);
  sched::LiveNetworkView view(*rig.network);
  sched::PackInput in{g, rig.cluster, view, sched::rank_nodes(rig.cluster, view)};

  const auto bfs_placed = sched::sequential_pack(in, bfs);
  const auto lp_placed = sched::path_pack(in, sched::longest_path_paths(g));
  if (bfs_placed.ok()) print_placement("BFS", g, bfs_placed.value());
  if (lp_placed.ok()) print_placement("longest-path", g, lp_placed.value());
  return 0;
}
