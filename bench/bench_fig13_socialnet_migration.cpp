// Fig. 13 — Social network end-to-end latency at 400 RPS under a 25 Mbps
// throttle on two nodes, comparing monitoring/migration intervals of
// 30/60/90 s against no migration (§6.2.3).
//
// Paper: no migration runs up to ~50% higher latency; the 30 s interval
// reacts fastest and yields the lowest tail.
#include "common.h"

#include "util/logging.h"
#include "workload/request_engine.h"

using namespace bass;

namespace {

struct Result {
  metrics::TimeSeries series;
  double mean_ms;
  double p99_ms;
  std::size_t migrations;
};

Result run(bool migration, sim::Duration interval) {
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(20);
  // 6 cores allocatable per node: the 12.6-core app must spread across all
  // three nodes, as in the paper ("we enable component scheduling on all 3
  // nodes"), leaving the third node room to absorb migrating components.
  bench::LanCluster rig(3, 6000, 131072, net::gbps(1), orch_cfg);
  monitor::NetMonitor netmon(*rig.network);
  rig.orch->attach_monitor(&netmon);
  netmon.start();

  const auto id = rig.orch->deploy(app::social_network_app(),
                                   core::SchedulerKind::kBassLongestPath);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  if (migration) {
    controller::MigrationParams params;
    params.evaluation_interval = interval;
    params.utilization_threshold = 0.50;
    params.headroom_frac = 0.20;
    params.cooldown = interval;
    params.min_migration_gap = interval * 2;
    rig.orch->enable_migration(id.value(), params);
  }

  if (std::getenv("BASS_BENCH_VERBOSE") != nullptr) {
    const auto& g = rig.orch->app(id.value());
    for (const auto& e : g.edges()) {
      const auto a = rig.orch->node_of(id.value(), e.from);
      const auto b = rig.orch->node_of(id.value(), e.to);
      if (a != b) {
        std::printf("    crossing %-22s -> %-22s req=%5.1fM node%d->node%d\n",
                    g.component(e.from).name.c_str(), g.component(e.to).name.c_str(),
                    static_cast<double>(e.bandwidth) / 1e6, a + 1, b + 1);
      }
    }
  }

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 400;
  cfg.client_node = 0;
  cfg.seed = 13;
  cfg.max_in_flight = 4000;  // wrk-style bounded connection pool
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();

  // Ten seconds in, throttle the egress of two of the three nodes
  // (whichever two host the most components); lift after 3 minutes.
  rig.sim.schedule_at(sim::seconds(10), [&] {
    std::vector<int> count(3, 0);
    for (const auto& [c, n] : rig.orch->placement(id.value())) ++count[n];
    std::vector<net::NodeId> nodes{0, 1, 2};
    std::sort(nodes.begin(), nodes.end(),
              [&](net::NodeId a, net::NodeId b) { return count[a] > count[b]; });
    rig.limit_node_egress(nodes[0], net::mbps(25));
    rig.limit_node_egress(nodes[1], net::mbps(25));
  });
  rig.sim.schedule_at(sim::seconds(190), [&] {
    for (net::NodeId n = 0; n < 3; ++n) rig.restore_node_egress(n, net::gbps(1));
  });

  rig.sim.run_until(sim::minutes(5));
  engine.stop();
  rig.sim.run_until(sim::minutes(7));
  netmon.stop();

  Result r;
  r.series = engine.latencies().series().binned_mean(sim::seconds(10));
  r.mean_ms = engine.latencies().mean_ms();
  r.p99_ms = engine.latencies().p99_ms();
  r.migrations = rig.orch->migration_events().size();
  if (std::getenv("BASS_BENCH_VERBOSE") != nullptr) {
    for (const auto& round : rig.orch->controller_rounds(id.value())) {
      std::printf("    round t=%4.0fs violating=%d migrated=%d\n",
                  sim::to_seconds(round.at), round.violating_components,
                  round.migrations_started);
    }
    for (const auto& m : rig.orch->migration_events()) {
      std::printf("    moved t=%4.0fs %-24s node%d->node%d\n", sim::to_seconds(m.at),
                  rig.orch->app(id.value()).component(m.component).name.c_str(),
                  m.from + 1, m.to + 1);
    }
  }
  return r;
}

}  // namespace

int main() {
  if (std::getenv("BASS_BENCH_DEBUG") != nullptr) {
    util::set_log_level(util::LogLevel::kDebug);
  }
  bench::print_header("Fig. 13: social net latency under throttling, by interval");
  std::printf("throttle 25 Mbps on two nodes, t=10s..190s; 400 RPS\n");
  std::printf("%-16s %10s %12s %12s\n", "config", "mean (ms)", "p99 (ms)",
              "migrations");

  const struct {
    const char* name;
    bool migration;
    sim::Duration interval;
  } configs[] = {
      {"interval-30s", true, sim::seconds(30)},
      {"interval-60s", true, sim::seconds(60)},
      {"interval-90s", true, sim::seconds(90)},
      {"no-migration", false, sim::seconds(30)},
  };

  std::vector<std::pair<const char*, metrics::TimeSeries>> all;
  for (const auto& c : configs) {
    const Result r = run(c.migration, c.interval);
    std::printf("%-16s %10.1f %12.1f %12zu\n", c.name, r.mean_ms, r.p99_ms,
                r.migrations);
    all.emplace_back(c.name, r.series);
  }

  std::printf("\nper-10s mean latency (ms):\n      t(s)");
  for (const auto& [name, s] : all) std::printf(" %14s", name);
  std::printf("\n");
  for (sim::Time t = 0; t <= sim::minutes(5); t += sim::seconds(10)) {
    std::printf("%10.0f", sim::to_seconds(t));
    for (const auto& [name, s] : all) {
      double v = 0;
      for (const auto& p : s.samples()) {
        if (p.at == t) v = p.value;
      }
      std::printf(" %14.1f", v);
    }
    std::printf("\n");
  }
  if (bench::csv_enabled()) {
    for (const auto& [name, s] : all) {
      s.write_csv(std::string("fig13_") + name + ".csv", "latency_ms");
    }
  }
  std::printf("\nexpect: no-migration worst (paper: up to 50%% higher); 30 s interval\n"
              "reacts fastest and has the best tail (paper Fig. 13)\n");
  return 0;
}
