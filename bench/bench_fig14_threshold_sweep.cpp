// Fig. 14 — Social network on the emulated CityLab mesh at 100 RPS:
//  (a) CDF of end-to-end latency while a component restarts (migration
//      overhead; paper: mean inflates from ~552 ms to ~4.9 s),
//  (b) latency CDFs of BFS/longest-path/k3s and longest-path without
//      migration under the varying trace,
//  (c,d) end-to-end latency across migration (link-utilization) thresholds
//      {25,50,65,75,95}% and headroom {10,20,30}% for both heuristics.
#include "common.h"

#include "metrics/cdf.h"
#include "workload/request_engine.h"

using namespace bass;

namespace {

struct RunResult {
  std::vector<double> latencies_ms;
  double mean_ms = 0;
  double median_ms = 0;
  double p75_ms = 0;  // "upper quartile" used to pick Fig. 14(b)'s configs
  double p99_ms = 0;
  std::size_t migrations = 0;
};

RunResult run_socialnet(core::SchedulerKind kind, bool migration,
                        double threshold, double headroom,
                        sim::Duration duration, bool restart_probe,
                        std::uint64_t seed, bool fades = true, double rps = 100) {
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(10);  // stateless pod restart
  bench::CityLabRig rig(duration, /*variation=*/true, fades, seed, orch_cfg);
  rig.start();

  // Bandwidth requirements are profiled at the deployed workload (§5).
  const auto id = rig.orch->deploy(app::social_network_app(rps / 400.0), kind);
  if (!id.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", id.error().c_str());
    std::exit(1);
  }
  if (migration) {
    controller::MigrationParams params;
    params.evaluation_interval = sim::seconds(30);
    params.utilization_threshold = threshold;
    params.headroom_frac = headroom;
    params.cooldown = sim::seconds(30);
    params.min_migration_gap = sim::seconds(90);
    rig.orch->enable_migration(id.value(), params);
  }

  workload::RequestWorkloadConfig cfg;
  cfg.rps = rps;
  cfg.max_in_flight = 1000;  // wrk-style bounded connection pool
  cfg.client_node = 0;  // requests enter at the control-plane node
  cfg.seed = seed;
  workload::RequestEngine engine(*rig.orch, id.value(), cfg);
  engine.start();

  if (restart_probe) {
    // Fig. 14(a): restart one mid-tier component while the workload runs.
    rig.sim.schedule_at(sim::minutes(2), [&] {
      rig.orch->restart_component(
          id.value(), rig.orch->app(id.value()).find("post-storage-service"));
    });
  }

  rig.sim.run_until(duration);
  engine.stop();
  rig.sim.run_until(duration + sim::minutes(2));

  RunResult r;
  r.latencies_ms = engine.latencies().latencies_ms();
  r.mean_ms = engine.latencies().mean_ms();
  r.median_ms = engine.latencies().median_ms();
  r.p75_ms = engine.latencies().percentile_ms(75);
  r.p99_ms = engine.latencies().p99_ms();
  r.migrations = rig.orch->migration_events().size();
  return r;
}

void print_cdf(const char* name, const std::vector<double>& values) {
  metrics::Cdf cdf(values);
  std::printf("%-26s", name);
  for (double p : {0.10, 0.25, 0.50, 0.75, 0.90, 0.99}) {
    std::printf(" p%02.0f=%8.1f", p * 100, cdf.value_at(p));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // ---- (a) restart overhead ----
  // Measured on a calm run (trace variation but no deep fades; §6.3.2 runs
  // this at a fixed 50 RPS) so the single restart stands out.
  bench::print_header("Fig. 14(a): latency CDF while restarting a component");
  const auto calm = run_socialnet(core::SchedulerKind::kBassLongestPath, false, 0, 0,
                                  sim::minutes(6), false, 141, /*fades=*/false,
                                  /*rps=*/50);
  const auto restarted =
      run_socialnet(core::SchedulerKind::kBassLongestPath, false, 0, 0,
                    sim::minutes(6), true, 141, /*fades=*/false, /*rps=*/50);
  print_cdf("no-restart", calm.latencies_ms);
  print_cdf("with-restart", restarted.latencies_ms);
  std::printf("means: %.1f ms vs %.1f ms (paper: 552 ms -> ~4.9 s averaged)\n",
              calm.mean_ms, restarted.mean_ms);

  // ---- (c,d) threshold x headroom sweep ----
  bench::print_header("Fig. 14(c,d): migration threshold x headroom sweep (100 RPS)");
  struct Best {
    double threshold = 0.5, headroom = 0.2, p75 = 1e18;
  };
  Best best_bfs, best_lp;
  std::printf("%-18s %10s %10s %12s %12s %12s\n", "heuristic", "threshold",
              "headroom", "median(ms)", "p75(ms)", "migrations");
  for (const auto kind :
       {core::SchedulerKind::kBassBfs, core::SchedulerKind::kBassLongestPath}) {
    Best& best = kind == core::SchedulerKind::kBassBfs ? best_bfs : best_lp;
    for (const double threshold : {0.25, 0.50, 0.65, 0.75, 0.95}) {
      for (const double headroom : {0.10, 0.20, 0.30}) {
        const auto r = run_socialnet(kind, true, threshold, headroom,
                                     sim::minutes(8), false, 142);
        std::printf("%-18s %9.0f%% %9.0f%% %12.1f %12.1f %12zu\n",
                    core::scheduler_kind_name(kind), threshold * 100, headroom * 100,
                    r.median_ms, r.p75_ms, r.migrations);
        if (r.p75_ms < best.p75) best = {threshold, headroom, r.p75_ms};
      }
    }
  }
  std::printf("best upper-quartile: bfs@(%.0f%%,%.0f%%)  lp@(%.0f%%,%.0f%%)\n",
              best_bfs.threshold * 100, best_bfs.headroom * 100,
              best_lp.threshold * 100, best_lp.headroom * 100);

  // ---- (b) scheduler CDFs at each heuristic's best setting ----
  bench::print_header("Fig. 14(b): latency CDFs of the schedulers (CityLab trace)");
  const auto bfs = run_socialnet(core::SchedulerKind::kBassBfs, true,
                                 best_bfs.threshold, best_bfs.headroom,
                                 sim::minutes(8), false, 143);
  const auto lp = run_socialnet(core::SchedulerKind::kBassLongestPath, true,
                                best_lp.threshold, best_lp.headroom, sim::minutes(8),
                                false, 143);
  const auto lp_nomig = run_socialnet(core::SchedulerKind::kBassLongestPath, false, 0,
                                      0, sim::minutes(8), false, 143);
  const auto k3s = run_socialnet(core::SchedulerKind::kK3sDefault, false, 0, 0,
                                 sim::minutes(8), false, 143);
  print_cdf("bass-bfs+migration", bfs.latencies_ms);
  print_cdf("bass-lp+migration", lp.latencies_ms);
  print_cdf("bass-lp-no-migration", lp_nomig.latencies_ms);
  print_cdf("k3s-default", k3s.latencies_ms);
  std::printf("\np99: lp+mig=%.0f ms vs k3s=%.0f ms (paper: 28 s vs 66 s)\n",
              lp.p99_ms, k3s.p99_ms);
  std::printf("expect: lp+migration best, k3s worst; real gains come from\n"
              "right-timed migrations (paper Fig. 14(b))\n");
  return 0;
}
