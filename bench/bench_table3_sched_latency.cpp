// Table 3 — Per-component scheduling latency, k3s vs BASS (longest-path),
// for all three applications. The paper reports 1.27-1.5 ms per component
// (dominated by k3s machinery); here we time the pure scheduling decision,
// so absolute values are far smaller — the comparison of interest is
// BASS-vs-k3s per app, which the paper found comparable.
#include <benchmark/benchmark.h>

#include "app/catalog.h"
#include "sched/bass_scheduler.h"
#include "sched/k3s_scheduler.h"
#include "sim/simulation.h"

using namespace bass;

namespace {

struct Rig {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<sched::LiveNetworkView> view;

  Rig() {
    net::Topology topo;
    for (int i = 0; i < 4; ++i) topo.add_node();
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) topo.add_link(i, j, net::gbps(1));
    }
    network = std::make_unique<net::Network>(sim, std::move(topo));
    view = std::make_unique<sched::LiveNetworkView>(*network);
    for (int i = 0; i < 4; ++i) cluster.add_node(i, {16000, 131072, true});
  }
};

app::AppGraph make_app(const std::string& name) {
  if (name == "social-network") return app::social_network_app();
  if (name == "video-conference") {
    return app::video_conference_app({{1, 3}, {2, 3}, {3, 3}}, net::kbps(800));
  }
  return app::camera_pipeline_app();
}

void schedule_per_component(benchmark::State& state, const sched::Scheduler& sched,
                            const std::string& app_name) {
  Rig rig;
  const app::AppGraph graph = make_app(app_name);
  for (auto _ : state) {
    auto result = sched.schedule(graph, rig.cluster, *rig.view);
    benchmark::DoNotOptimize(result);
    if (!result.ok()) state.SkipWithError(result.error().c_str());
  }
  // "items" = components, so items/s inverts to the paper's per-component
  // scheduling latency (Table 3).
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(graph.component_count()));
}

void BM_K3s(benchmark::State& state, const std::string& app_name) {
  schedule_per_component(state, sched::K3sScheduler(), app_name);
}

void BM_BassLongestPath(benchmark::State& state, const std::string& app_name) {
  schedule_per_component(state, sched::BassScheduler(sched::Heuristic::kLongestPath),
                         app_name);
}

BENCHMARK_CAPTURE(BM_K3s, social_network, std::string("social-network"));
BENCHMARK_CAPTURE(BM_BassLongestPath, social_network, std::string("social-network"));
BENCHMARK_CAPTURE(BM_K3s, video_conference, std::string("video-conference"));
BENCHMARK_CAPTURE(BM_BassLongestPath, video_conference, std::string("video-conference"));
BENCHMARK_CAPTURE(BM_K3s, camera, std::string("camera-pipeline"));
BENCHMARK_CAPTURE(BM_BassLongestPath, camera, std::string("camera-pipeline"));

}  // namespace

BENCHMARK_MAIN();
