// Allocator fast-path throughput: the incremental engine (entity cache +
// active-set kernel + contention-component reallocation) vs. the seed's
// from-scratch approach (rebuild every entity with copied paths, run the
// brute-force kernel) on synthetic meshes under trace-driven churn.
//
// Every tick batches 1-4 link capacity updates (a CityLab trace tick) and
// occasionally churns a flow (close + reopen elsewhere), the mix the BASS
// control loop generates at scale. Both sides replay the identical
// pre-generated op sequence; at the end the incremental engine's rates are
// checked against a from-scratch reference solve of the final state.
//
// A standalone solver-churn section measures the kernel itself on the
// 128-node/200-flow churn workload (SIMD on and off): ns per churn round
// and — via the global allocation probe this binary links in — allocations
// per round, which must be exactly zero at steady state.
//
// Emits BENCH_alloc_fastpath.json next to the working directory so the
// speedup is on the record; `--smoke` (or BASS_BENCH_SMOKE=1) runs a tiny
// config for CI. `--check-baseline[=path]` additionally compares against
// the checked-in baseline (bench/baselines/alloc_fastpath_baseline.json)
// and exits nonzero on regression: the allocation gate is unconditional,
// the timing gates are skipped under sanitizers.
#include "../tests/alloc_probe.h"  // global new/delete counters (one TU rule)

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "net/maxmin.h"
#include "net/network.h"
#include "obs/journal.h"
#include "util/rng.h"

namespace bass::bench {
namespace {

struct FlowSpec {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  net::Bps demand = 0;  // kUnlimitedRate models a backlogged bulk flow
};

struct Tick {
  std::vector<std::pair<net::LinkId, net::Bps>> cap_updates;
  int churn_flow = -1;  // index into the flow set, or -1
  FlowSpec churn_spec;
};

struct Scenario {
  int nodes = 0;
  int flows = 0;
  int ticks = 0;
};

struct SideResult {
  std::int64_t events = 0;  // allocator passes
  double seconds = 0.0;
  double events_per_sec() const { return events / std::max(seconds, 1e-12); }
};

struct ScenarioResult {
  Scenario scenario;
  int links = 0;
  SideResult incremental;
  SideResult baseline;
  double avg_flows_touched = 0.0;
  double alloc_seconds = 0.0;  // wall time inside the incremental allocator
  double allocs_per_pass = 0.0;  // heap allocations per allocator pass
  double max_rate_diff_bps = 0.0;
  // Network::stream_rate() quantizes to integer bps while the baseline
  // keeps doubles, and the kernels may differ by kAllocEps around freeze
  // thresholds — so up to ~1 bps of apparent difference is measurement
  // noise, not divergence.
  static constexpr double kRateTolBps = 2.0;
  double speedup() const {
    return incremental.events_per_sec() / std::max(baseline.events_per_sec(), 1e-12);
  }
};

// Random connected mesh: ring plus chords, directed capacities 5-100 Mbps.
net::Topology make_mesh(int nodes, util::Rng& rng) {
  net::Topology topo;
  for (int i = 0; i < nodes; ++i) topo.add_node("n" + std::to_string(i));
  for (int i = 0; i < nodes; ++i) {
    topo.add_link(i, (i + 1) % nodes, net::mbps(rng.uniform_int(5, 100)),
                  net::mbps(rng.uniform_int(5, 100)));
  }
  // ~1.5 chords per node keeps paths multi-hop but the mesh sparse, like a
  // community deployment.
  const int chords = nodes + nodes / 2;
  for (int c = 0; c < chords; ++c) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    const auto b = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    if (a == b || topo.link_between(a, b)) continue;
    topo.add_link(a, b, net::mbps(rng.uniform_int(5, 100)),
                  net::mbps(rng.uniform_int(5, 100)));
  }
  return topo;
}

// Community-mesh traffic is locality-biased: most flows terminate at a
// nearby node (a neighbourhood gateway or peer), not a uniformly random
// one. Destinations are drawn within a ring distance that grows slowly
// with mesh size, so large meshes keep several contention components —
// all-pairs uniform traffic would weld the whole mesh into one.
FlowSpec random_flow(int nodes, util::Rng& rng) {
  FlowSpec f;
  f.src = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
  // A neighbourhood's reach does not grow with the size of the mesh.
  const int reach = std::min(8, std::max(2, nodes / 16));
  const int offset = static_cast<int>(rng.uniform_int(1, reach));
  const int step = rng.chance(0.5) ? offset : nodes - offset;
  f.dst = static_cast<net::NodeId>((f.src + step) % nodes);
  f.demand = rng.chance(0.2) ? net::kUnlimitedRate
                             : net::mbps(rng.uniform_int(1, 50));
  return f;
}

std::vector<Tick> make_ticks(const Scenario& sc, const net::Topology& topo,
                             util::Rng& rng) {
  std::vector<Tick> ticks(static_cast<std::size_t>(sc.ticks));
  for (Tick& tick : ticks) {
    const int updates = static_cast<int>(rng.uniform_int(1, 4));
    for (int u = 0; u < updates; ++u) {
      tick.cap_updates.emplace_back(
          static_cast<net::LinkId>(rng.uniform_int(0, topo.link_count() - 1)),
          net::mbps(rng.uniform_int(1, 100)));
    }
    if (rng.chance(0.15)) {
      tick.churn_flow = static_cast<int>(rng.uniform_int(0, sc.flows - 1));
      tick.churn_spec = random_flow(sc.nodes, rng);
    }
  }
  return ticks;
}

// ---- Incremental side: drive the real Network ----

SideResult run_incremental(const net::Topology& topo,
                           const std::vector<Tick>& ticks,
                           const std::vector<FlowSpec>& flows,
                           std::vector<double>& final_rates,
                           double& avg_flows_touched, double& alloc_seconds,
                           double& allocs_per_pass) {
  sim::Simulation sim;
  net::Network network(sim, topo);
  std::vector<net::StreamId> ids;
  std::vector<FlowSpec> live = flows;
  ids.reserve(flows.size());
  for (const FlowSpec& f : flows) {
    ids.push_back(network.open_stream(f.src, f.dst, f.demand));
  }

  const auto passes_before = network.reallocation_count();
  const auto touched_before = network.alloc_stats().flows_touched;
  const auto alloc_before = network.alloc_stats().alloc_seconds;
  const auto alloc_snap = testing::take_alloc_snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  for (const Tick& tick : ticks) {
    {
      net::Network::BatchUpdate batch(network);
      for (const auto& [link, bps] : tick.cap_updates) {
        network.set_link_capacity(link, bps);
      }
    }
    if (tick.churn_flow >= 0) {
      const auto idx = static_cast<std::size_t>(tick.churn_flow);
      network.close_stream(ids[idx]);
      ids[idx] = network.open_stream(tick.churn_spec.src, tick.churn_spec.dst,
                                     tick.churn_spec.demand);
      live[idx] = tick.churn_spec;
    }
  }
  SideResult res;
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  res.events = network.reallocation_count() - passes_before;
  const auto passes = std::max<std::int64_t>(res.events, 1);
  avg_flows_touched =
      static_cast<double>(network.alloc_stats().flows_touched - touched_before) /
      static_cast<double>(passes);
  alloc_seconds = network.alloc_stats().alloc_seconds - alloc_before;
  // Random flows keep nudging per-link occupancy high-water marks, so this
  // is amortized vector growth trending toward zero, not a strict-zero gate
  // (the kernel-level gate below is the strict one).
  allocs_per_pass = static_cast<double>(testing::allocations_since(alloc_snap)) /
                    static_cast<double>(passes);

  final_rates.clear();
  for (net::StreamId id : ids) {
    final_rates.push_back(static_cast<double>(network.stream_rate(id)));
  }
  return res;
}

// ---- Baseline side: the seed engine's cost model ----
//
// What Network::reallocate() did before the fast path: every pass rebuilds
// the full entity vector (copying each flow's path out of the routing
// table) and runs the brute-force kernel over all flows × all links.

SideResult run_baseline(const net::Topology& topo,
                        const std::vector<Tick>& ticks,
                        const std::vector<FlowSpec>& flows,
                        std::vector<double>& final_rates) {
  sim::Simulation sim;
  net::Network network(sim, topo);  // routing table + capacities only
  const net::RoutingTable& routing = network.routing();

  std::vector<double> caps(static_cast<std::size_t>(topo.link_count()));
  for (int l = 0; l < topo.link_count(); ++l) {
    caps[static_cast<std::size_t>(l)] = static_cast<double>(topo.link(l).capacity);
  }
  std::vector<FlowSpec> live = flows;

  std::vector<double> rates;
  auto scratch_pass = [&] {
    std::vector<net::AllocEntity> entities;
    entities.reserve(live.size());
    for (const FlowSpec& f : live) {
      entities.push_back({static_cast<double>(f.demand), routing.path(f.src, f.dst)});
    }
    rates = net::max_min_allocate_reference(caps, entities);
  };

  SideResult res;
  const auto t0 = std::chrono::steady_clock::now();
  scratch_pass();  // flows just opened: the seed engine priced them per open
  ++res.events;
  for (const Tick& tick : ticks) {
    for (const auto& [link, bps] : tick.cap_updates) {
      caps[static_cast<std::size_t>(link)] = static_cast<double>(bps);
    }
    scratch_pass();  // one pass per batched tick
    ++res.events;
    if (tick.churn_flow >= 0) {
      // Close then reopen: the seed engine repriced on each.
      const auto idx = static_cast<std::size_t>(tick.churn_flow);
      live[idx].demand = 0;
      scratch_pass();
      live[idx] = tick.churn_spec;
      scratch_pass();
      res.events += 2;
    }
  }
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  final_rates = rates;
  return res;
}

// ---- Standalone solver churn: the kernel-level gate ----
//
// Drives MaxMinSolver directly (no engine, no simulation) on the
// 128-node/200-flow churn workload from the acceptance criteria: each round
// replaces one flow with a fresh (path, demand) draw and re-solves. After
// warm-up the arena is at its high-water mark, so the allocation probe must
// read exactly zero per round; ns/round is the kernel's steady-state cost.

struct ChurnResult {
  double ns_per_round = 0.0;
  double allocs_per_round = 0.0;
  double bytes_per_round = 0.0;
  std::size_t scratch_bytes = 0;
};

ChurnResult solver_churn(bool simd, int rounds) {
  util::Rng rng(0xBA55);
  const int nodes = 128, nflows = 200;
  const net::Topology topo = make_mesh(nodes, rng);
  sim::Simulation sim;
  net::Network network(sim, topo);  // used only for its routing table
  const net::RoutingTable& routing = network.routing();

  std::vector<double> caps(static_cast<std::size_t>(topo.link_count()));
  for (int l = 0; l < topo.link_count(); ++l) {
    caps[static_cast<std::size_t>(l)] = static_cast<double>(topo.link(l).capacity);
  }
  std::vector<net::AllocEntityRef> entities;
  for (int f = 0; f < nflows; ++f) {
    const FlowSpec spec = random_flow(nodes, rng);
    entities.push_back({static_cast<double>(spec.demand),
                        routing.path_ptr(spec.src, spec.dst)});
  }
  net::MaxMinSolver solver;
  solver.set_use_simd(simd);
  auto churn_round = [&] {
    const auto victim = static_cast<std::size_t>(rng.uniform_int(0, nflows - 1));
    const FlowSpec spec = random_flow(nodes, rng);
    entities[victim] = {static_cast<double>(spec.demand),
                        routing.path_ptr(spec.src, spec.dst)};
    solver.solve(caps, entities);
  };
  for (int i = 0; i < 200; ++i) churn_round();  // warm-up to arena high-water

  // Timing is best-of-batches: the measured rounds run in 8 batches and the
  // fastest batch is reported, damping scheduler/frequency noise that would
  // otherwise make the CI timing gate flaky. Allocation counters span every
  // measured round — the zero-alloc gate has no noise to damp.
  const int batches = 8;
  const int per_batch = std::max(1, rounds / batches);
  const auto snap = testing::take_alloc_snapshot();
  double best_ns = std::numeric_limits<double>::infinity();
  for (int b = 0; b < batches; ++b) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < per_batch; ++i) churn_round();
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    best_ns = std::min(best_ns, ns / per_batch);
  }
  const double measured = static_cast<double>(batches) * per_batch;
  ChurnResult r;
  r.ns_per_round = best_ns;
  r.allocs_per_round =
      static_cast<double>(testing::allocations_since(snap)) / measured;
  r.bytes_per_round = static_cast<double>(testing::bytes_since(snap)) / measured;
  r.scratch_bytes = solver.scratch_bytes();
  return r;
}

ScenarioResult run_scenario(const Scenario& sc) {
  util::Rng rng(0xBA55 + static_cast<std::uint64_t>(sc.nodes) * 31 +
                static_cast<std::uint64_t>(sc.flows));
  const net::Topology topo = make_mesh(sc.nodes, rng);
  std::vector<FlowSpec> flows;
  for (int f = 0; f < sc.flows; ++f) flows.push_back(random_flow(sc.nodes, rng));
  const std::vector<Tick> ticks = make_ticks(sc, topo, rng);

  ScenarioResult result;
  result.scenario = sc;
  result.links = topo.link_count();

  std::vector<double> inc_rates, base_rates;
  result.incremental =
      run_incremental(topo, ticks, flows, inc_rates, result.avg_flows_touched,
                      result.alloc_seconds, result.allocs_per_pass);
  result.baseline = run_baseline(topo, ticks, flows, base_rates);

  // The incremental engine must land on the same final rates as a
  // from-scratch solve of the identical end state.
  for (std::size_t i = 0; i < inc_rates.size() && i < base_rates.size(); ++i) {
    result.max_rate_diff_bps = std::max(
        result.max_rate_diff_bps, std::abs(inc_rates[i] - base_rates[i]));
  }
  if (result.max_rate_diff_bps > ScenarioResult::kRateTolBps) {
    std::fprintf(stderr, "FAIL: incremental/base rates diverged by %.3f bps\n",
                 result.max_rate_diff_bps);
  }
  return result;
}

void write_json(const std::vector<ScenarioResult>& results,
                const ChurnResult& churn_simd, const ChurnResult& churn_scalar,
                bool smoke) {
  // One registry row per scenario, distinguished by labels — the shared
  // BENCH_*.json schema (bench::write_bench_json).
  obs::MetricsRegistry reg;
  emit_build_info(reg);
  reg.gauge("smoke").set(smoke ? 1 : 0);
  for (const ScenarioResult& r : results) {
    const obs::Labels labels = {
        {"nodes", std::to_string(r.scenario.nodes)},
        {"links", std::to_string(r.links)},
        {"flows", std::to_string(r.scenario.flows)},
        {"ticks", std::to_string(r.scenario.ticks)},
    };
    reg.counter("incremental.passes", labels).add(r.incremental.events);
    reg.gauge("incremental.seconds", labels).set(r.incremental.seconds);
    reg.gauge("incremental.passes_per_sec", labels).set(r.incremental.events_per_sec());
    reg.gauge("incremental.avg_flows_touched", labels).set(r.avg_flows_touched);
    reg.gauge("incremental.alloc_seconds", labels).set(r.alloc_seconds);
    reg.gauge("incremental.allocs_per_pass", labels).set(r.allocs_per_pass);
    reg.counter("baseline.passes", labels).add(r.baseline.events);
    reg.gauge("baseline.seconds", labels).set(r.baseline.seconds);
    reg.gauge("baseline.passes_per_sec", labels).set(r.baseline.events_per_sec());
    reg.gauge("speedup", labels).set(r.speedup());
    reg.gauge("max_rate_diff_bps", labels).set(r.max_rate_diff_bps);
  }
  const struct {
    const char* simd;
    const ChurnResult& r;
  } churn_rows[] = {{"on", churn_simd}, {"off", churn_scalar}};
  for (const auto& row : churn_rows) {
    const obs::Labels labels = {{"workload", "solver_churn_128x200"},
                                {"simd", row.simd}};
    reg.gauge("solver_churn.ns_per_round", labels).set(row.r.ns_per_round);
    reg.gauge("solver_churn.allocs_per_round", labels).set(row.r.allocs_per_round);
    reg.gauge("solver_churn.bytes_per_round", labels).set(row.r.bytes_per_round);
    reg.gauge("solver_churn.scratch_bytes", labels)
        .set(static_cast<double>(row.r.scratch_bytes));
  }
  write_bench_json("alloc_fastpath", reg);
}

// ---- Baseline comparison (`--check-baseline`) ----
//
// The baseline file is flat JSON, one object per line, readable with the
// journal's own line parser. Gates:
//   * allocs per churn round must be exactly zero — unconditional;
//   * ns/round must beat the recorded PR-4 scalar kernel by min_speedup and
//     stay inside expected*(1+tolerance) — skipped under sanitizers, whose
//     instrumentation rescales all timings.

double field_as_double(
    const std::vector<std::pair<std::string, std::string>>& fields,
    const std::string& key, double fallback) {
  for (const auto& [k, v] : fields) {
    if (k == key) return std::strtod(v.c_str(), nullptr);
  }
  return fallback;
}

bool timing_gates_enabled() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return false;
#else
  return true;
#endif
}

int check_baseline(const std::string& path, const ChurnResult& churn_simd,
                   const ChurnResult& churn_scalar,
                   const std::vector<ScenarioResult>& results) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot read baseline %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  auto gate = [&](bool ok, const char* what, double got, double bound) {
    std::printf("  %-44s %12.1f vs %12.1f  %s\n", what, got, bound,
                ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  };
  std::printf("baseline check (%s)%s:\n", path.c_str(),
              timing_gates_enabled() ? "" : " [sanitized: timing gates skipped]");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::pair<std::string, std::string>> fields;
    if (!obs::parse_journal_line(line, fields)) {
      std::fprintf(stderr, "unparseable baseline line: %s\n", line.c_str());
      return 1;
    }
    const double max_allocs = field_as_double(fields, "max_allocs_per_round", 0.0);
    gate(churn_simd.allocs_per_round <= max_allocs,
         "solver_churn allocs/round (simd)", churn_simd.allocs_per_round,
         max_allocs);
    gate(churn_scalar.allocs_per_round <= max_allocs,
         "solver_churn allocs/round (scalar)", churn_scalar.allocs_per_round,
         max_allocs);
    if (!timing_gates_enabled()) continue;
    const double pr4_ns = field_as_double(fields, "pr4_scalar_ns_per_round", 0.0);
    const double min_speedup = field_as_double(fields, "min_speedup_vs_pr4", 1.5);
    if (pr4_ns > 0.0) {
      gate(pr4_ns / churn_simd.ns_per_round >= min_speedup,
           "solver_churn speedup vs PR-4 scalar",
           pr4_ns / churn_simd.ns_per_round, min_speedup);
    }
    const double expected_ns = field_as_double(fields, "expected_ns_per_round", 0.0);
    const double tol = field_as_double(fields, "ns_tolerance_ratio", 0.6);
    if (expected_ns > 0.0) {
      gate(churn_simd.ns_per_round <= expected_ns * (1.0 + tol),
           "solver_churn ns/round (simd)", churn_simd.ns_per_round,
           expected_ns * (1.0 + tol));
    }
    const double engine_pps =
        field_as_double(fields, "engine128_expected_passes_per_sec", 0.0);
    const double engine_tol = field_as_double(fields, "engine_tolerance_ratio", 0.5);
    for (const ScenarioResult& r : results) {
      if (engine_pps > 0.0 && r.scenario.nodes == 128 && r.scenario.flows == 200) {
        gate(r.incremental.events_per_sec() >= engine_pps * (1.0 - engine_tol),
             "engine 128/200 passes/sec", r.incremental.events_per_sec(),
             engine_pps * (1.0 - engine_tol));
      }
    }
  }
  return failures > 0 ? 1 : 0;
}

int run(bool smoke, const std::string& baseline_path) {
  print_header("alloc fast path: incremental engine vs from-scratch baseline");
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios = {{16, 10, 20}, {64, 50, 20}};
  } else {
    scenarios = {{16, 10, 400}, {64, 50, 400}, {128, 200, 300}, {256, 500, 200}};
  }

  std::printf("%6s %6s %6s %6s | %12s %12s | %8s %10s %10s %12s\n", "nodes",
              "links", "flows", "ticks", "inc pass/s", "base pass/s", "speedup",
              "avg comp", "alloc/pass", "maxdiff bps");
  std::vector<ScenarioResult> results;
  bool rates_ok = true;
  for (const Scenario& sc : scenarios) {
    results.push_back(run_scenario(sc));
    const ScenarioResult& r = results.back();
    std::printf("%6d %6d %6d %6d | %12.1f %12.1f | %7.1fx %10.2f %10.3f %12.4f\n",
                r.scenario.nodes, r.links, r.scenario.flows, r.scenario.ticks,
                r.incremental.events_per_sec(), r.baseline.events_per_sec(),
                r.speedup(), r.avg_flows_touched, r.allocs_per_pass,
                r.max_rate_diff_bps);
    rates_ok = rates_ok && r.max_rate_diff_bps <= ScenarioResult::kRateTolBps;
  }

  // Kernel-level churn: cheap enough to run in every mode (~2000 solves).
  const int churn_rounds = smoke ? 500 : 2000;
  const ChurnResult churn_simd = solver_churn(true, churn_rounds);
  const ChurnResult churn_scalar = solver_churn(false, churn_rounds);
  std::printf("solver churn 128x200: simd %8.0f ns/round (%.3f allocs, %.1f B)"
              " | scalar %8.0f ns/round (%.3f allocs, %.1f B)\n",
              churn_simd.ns_per_round, churn_simd.allocs_per_round,
              churn_simd.bytes_per_round, churn_scalar.ns_per_round,
              churn_scalar.allocs_per_round, churn_scalar.bytes_per_round);

  write_json(results, churn_simd, churn_scalar, smoke);
  int rc = 0;
  if (!baseline_path.empty()) {
    rc = check_baseline(baseline_path, churn_simd, churn_scalar, results);
  }
  if (!rates_ok) {
    std::printf("RESULT: FAIL (incremental rates diverged from reference)\n");
    return 1;
  }
  if (rc != 0) {
    std::printf("RESULT: FAIL (baseline regression)\n");
    return rc;
  }
  return 0;
}

}  // namespace
}  // namespace bass::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--check-baseline") == 0) {
      baseline_path = "bench/baselines/alloc_fastpath_baseline.json";
    }
    if (std::strncmp(argv[i], "--check-baseline=", 17) == 0) {
      baseline_path = argv[i] + 17;
    }
  }
  const char* env = std::getenv("BASS_BENCH_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;
  return bass::bench::run(smoke, baseline_path);
}
