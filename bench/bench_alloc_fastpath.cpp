// Allocator fast-path throughput: the incremental engine (entity cache +
// active-set kernel + contention-component reallocation) vs. the seed's
// from-scratch approach (rebuild every entity with copied paths, run the
// brute-force kernel) on synthetic meshes under trace-driven churn.
//
// Every tick batches 1-4 link capacity updates (a CityLab trace tick) and
// occasionally churns a flow (close + reopen elsewhere), the mix the BASS
// control loop generates at scale. Both sides replay the identical
// pre-generated op sequence; at the end the incremental engine's rates are
// checked against a from-scratch reference solve of the final state.
//
// Emits BENCH_alloc_fastpath.json next to the working directory so the
// speedup is on the record; `--smoke` (or BASS_BENCH_SMOKE=1) runs a tiny
// config for CI.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "net/maxmin.h"
#include "net/network.h"
#include "util/rng.h"

namespace bass::bench {
namespace {

struct FlowSpec {
  net::NodeId src = 0;
  net::NodeId dst = 0;
  net::Bps demand = 0;  // kUnlimitedRate models a backlogged bulk flow
};

struct Tick {
  std::vector<std::pair<net::LinkId, net::Bps>> cap_updates;
  int churn_flow = -1;  // index into the flow set, or -1
  FlowSpec churn_spec;
};

struct Scenario {
  int nodes = 0;
  int flows = 0;
  int ticks = 0;
};

struct SideResult {
  std::int64_t events = 0;  // allocator passes
  double seconds = 0.0;
  double events_per_sec() const { return events / std::max(seconds, 1e-12); }
};

struct ScenarioResult {
  Scenario scenario;
  int links = 0;
  SideResult incremental;
  SideResult baseline;
  double avg_flows_touched = 0.0;
  double alloc_seconds = 0.0;  // wall time inside the incremental allocator
  double max_rate_diff_bps = 0.0;
  // Network::stream_rate() quantizes to integer bps while the baseline
  // keeps doubles, and the kernels may differ by kAllocEps around freeze
  // thresholds — so up to ~1 bps of apparent difference is measurement
  // noise, not divergence.
  static constexpr double kRateTolBps = 2.0;
  double speedup() const {
    return incremental.events_per_sec() / std::max(baseline.events_per_sec(), 1e-12);
  }
};

// Random connected mesh: ring plus chords, directed capacities 5-100 Mbps.
net::Topology make_mesh(int nodes, util::Rng& rng) {
  net::Topology topo;
  for (int i = 0; i < nodes; ++i) topo.add_node("n" + std::to_string(i));
  for (int i = 0; i < nodes; ++i) {
    topo.add_link(i, (i + 1) % nodes, net::mbps(rng.uniform_int(5, 100)),
                  net::mbps(rng.uniform_int(5, 100)));
  }
  // ~1.5 chords per node keeps paths multi-hop but the mesh sparse, like a
  // community deployment.
  const int chords = nodes + nodes / 2;
  for (int c = 0; c < chords; ++c) {
    const auto a = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    const auto b = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
    if (a == b || topo.link_between(a, b)) continue;
    topo.add_link(a, b, net::mbps(rng.uniform_int(5, 100)),
                  net::mbps(rng.uniform_int(5, 100)));
  }
  return topo;
}

// Community-mesh traffic is locality-biased: most flows terminate at a
// nearby node (a neighbourhood gateway or peer), not a uniformly random
// one. Destinations are drawn within a ring distance that grows slowly
// with mesh size, so large meshes keep several contention components —
// all-pairs uniform traffic would weld the whole mesh into one.
FlowSpec random_flow(int nodes, util::Rng& rng) {
  FlowSpec f;
  f.src = static_cast<net::NodeId>(rng.uniform_int(0, nodes - 1));
  // A neighbourhood's reach does not grow with the size of the mesh.
  const int reach = std::min(8, std::max(2, nodes / 16));
  const int offset = static_cast<int>(rng.uniform_int(1, reach));
  const int step = rng.chance(0.5) ? offset : nodes - offset;
  f.dst = static_cast<net::NodeId>((f.src + step) % nodes);
  f.demand = rng.chance(0.2) ? net::kUnlimitedRate
                             : net::mbps(rng.uniform_int(1, 50));
  return f;
}

std::vector<Tick> make_ticks(const Scenario& sc, const net::Topology& topo,
                             util::Rng& rng) {
  std::vector<Tick> ticks(static_cast<std::size_t>(sc.ticks));
  for (Tick& tick : ticks) {
    const int updates = static_cast<int>(rng.uniform_int(1, 4));
    for (int u = 0; u < updates; ++u) {
      tick.cap_updates.emplace_back(
          static_cast<net::LinkId>(rng.uniform_int(0, topo.link_count() - 1)),
          net::mbps(rng.uniform_int(1, 100)));
    }
    if (rng.chance(0.15)) {
      tick.churn_flow = static_cast<int>(rng.uniform_int(0, sc.flows - 1));
      tick.churn_spec = random_flow(sc.nodes, rng);
    }
  }
  return ticks;
}

// ---- Incremental side: drive the real Network ----

SideResult run_incremental(const net::Topology& topo,
                           const std::vector<Tick>& ticks,
                           const std::vector<FlowSpec>& flows,
                           std::vector<double>& final_rates,
                           double& avg_flows_touched, double& alloc_seconds) {
  sim::Simulation sim;
  net::Network network(sim, topo);
  std::vector<net::StreamId> ids;
  std::vector<FlowSpec> live = flows;
  ids.reserve(flows.size());
  for (const FlowSpec& f : flows) {
    ids.push_back(network.open_stream(f.src, f.dst, f.demand));
  }

  const auto passes_before = network.reallocation_count();
  const auto touched_before = network.alloc_stats().flows_touched;
  const auto alloc_before = network.alloc_stats().alloc_seconds;
  const auto t0 = std::chrono::steady_clock::now();
  for (const Tick& tick : ticks) {
    {
      net::Network::BatchUpdate batch(network);
      for (const auto& [link, bps] : tick.cap_updates) {
        network.set_link_capacity(link, bps);
      }
    }
    if (tick.churn_flow >= 0) {
      const auto idx = static_cast<std::size_t>(tick.churn_flow);
      network.close_stream(ids[idx]);
      ids[idx] = network.open_stream(tick.churn_spec.src, tick.churn_spec.dst,
                                     tick.churn_spec.demand);
      live[idx] = tick.churn_spec;
    }
  }
  SideResult res;
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  res.events = network.reallocation_count() - passes_before;
  const auto passes = std::max<std::int64_t>(res.events, 1);
  avg_flows_touched =
      static_cast<double>(network.alloc_stats().flows_touched - touched_before) /
      static_cast<double>(passes);
  alloc_seconds = network.alloc_stats().alloc_seconds - alloc_before;

  final_rates.clear();
  for (net::StreamId id : ids) {
    final_rates.push_back(static_cast<double>(network.stream_rate(id)));
  }
  return res;
}

// ---- Baseline side: the seed engine's cost model ----
//
// What Network::reallocate() did before the fast path: every pass rebuilds
// the full entity vector (copying each flow's path out of the routing
// table) and runs the brute-force kernel over all flows × all links.

SideResult run_baseline(const net::Topology& topo,
                        const std::vector<Tick>& ticks,
                        const std::vector<FlowSpec>& flows,
                        std::vector<double>& final_rates) {
  sim::Simulation sim;
  net::Network network(sim, topo);  // routing table + capacities only
  const net::RoutingTable& routing = network.routing();

  std::vector<double> caps(static_cast<std::size_t>(topo.link_count()));
  for (int l = 0; l < topo.link_count(); ++l) {
    caps[static_cast<std::size_t>(l)] = static_cast<double>(topo.link(l).capacity);
  }
  std::vector<FlowSpec> live = flows;

  std::vector<double> rates;
  auto scratch_pass = [&] {
    std::vector<net::AllocEntity> entities;
    entities.reserve(live.size());
    for (const FlowSpec& f : live) {
      entities.push_back({static_cast<double>(f.demand), routing.path(f.src, f.dst)});
    }
    rates = net::max_min_allocate_reference(caps, entities);
  };

  SideResult res;
  const auto t0 = std::chrono::steady_clock::now();
  scratch_pass();  // flows just opened: the seed engine priced them per open
  ++res.events;
  for (const Tick& tick : ticks) {
    for (const auto& [link, bps] : tick.cap_updates) {
      caps[static_cast<std::size_t>(link)] = static_cast<double>(bps);
    }
    scratch_pass();  // one pass per batched tick
    ++res.events;
    if (tick.churn_flow >= 0) {
      // Close then reopen: the seed engine repriced on each.
      const auto idx = static_cast<std::size_t>(tick.churn_flow);
      live[idx].demand = 0;
      scratch_pass();
      live[idx] = tick.churn_spec;
      scratch_pass();
      res.events += 2;
    }
  }
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  final_rates = rates;
  return res;
}

ScenarioResult run_scenario(const Scenario& sc) {
  util::Rng rng(0xBA55 + static_cast<std::uint64_t>(sc.nodes) * 31 +
                static_cast<std::uint64_t>(sc.flows));
  const net::Topology topo = make_mesh(sc.nodes, rng);
  std::vector<FlowSpec> flows;
  for (int f = 0; f < sc.flows; ++f) flows.push_back(random_flow(sc.nodes, rng));
  const std::vector<Tick> ticks = make_ticks(sc, topo, rng);

  ScenarioResult result;
  result.scenario = sc;
  result.links = topo.link_count();

  std::vector<double> inc_rates, base_rates;
  result.incremental =
      run_incremental(topo, ticks, flows, inc_rates,
                      result.avg_flows_touched, result.alloc_seconds);
  result.baseline = run_baseline(topo, ticks, flows, base_rates);

  // The incremental engine must land on the same final rates as a
  // from-scratch solve of the identical end state.
  for (std::size_t i = 0; i < inc_rates.size() && i < base_rates.size(); ++i) {
    result.max_rate_diff_bps = std::max(
        result.max_rate_diff_bps, std::abs(inc_rates[i] - base_rates[i]));
  }
  if (result.max_rate_diff_bps > ScenarioResult::kRateTolBps) {
    std::fprintf(stderr, "FAIL: incremental/base rates diverged by %.3f bps\n",
                 result.max_rate_diff_bps);
  }
  return result;
}

void write_json(const std::vector<ScenarioResult>& results, bool smoke) {
  // One registry row per scenario, distinguished by labels — the shared
  // BENCH_*.json schema (bench::write_bench_json).
  obs::MetricsRegistry reg;
  reg.gauge("smoke").set(smoke ? 1 : 0);
  for (const ScenarioResult& r : results) {
    const obs::Labels labels = {
        {"nodes", std::to_string(r.scenario.nodes)},
        {"links", std::to_string(r.links)},
        {"flows", std::to_string(r.scenario.flows)},
        {"ticks", std::to_string(r.scenario.ticks)},
    };
    reg.counter("incremental.passes", labels).add(r.incremental.events);
    reg.gauge("incremental.seconds", labels).set(r.incremental.seconds);
    reg.gauge("incremental.passes_per_sec", labels).set(r.incremental.events_per_sec());
    reg.gauge("incremental.avg_flows_touched", labels).set(r.avg_flows_touched);
    reg.gauge("incremental.alloc_seconds", labels).set(r.alloc_seconds);
    reg.counter("baseline.passes", labels).add(r.baseline.events);
    reg.gauge("baseline.seconds", labels).set(r.baseline.seconds);
    reg.gauge("baseline.passes_per_sec", labels).set(r.baseline.events_per_sec());
    reg.gauge("speedup", labels).set(r.speedup());
    reg.gauge("max_rate_diff_bps", labels).set(r.max_rate_diff_bps);
  }
  write_bench_json("alloc_fastpath", reg);
}

int run(bool smoke) {
  print_header("alloc fast path: incremental engine vs from-scratch baseline");
  std::vector<Scenario> scenarios;
  if (smoke) {
    scenarios = {{16, 10, 20}, {64, 50, 20}};
  } else {
    scenarios = {{16, 10, 400}, {64, 50, 400}, {128, 200, 300}, {256, 500, 200}};
  }

  std::printf("%6s %6s %6s %6s | %12s %12s | %8s %10s %12s\n", "nodes", "links",
              "flows", "ticks", "inc pass/s", "base pass/s", "speedup",
              "avg comp", "maxdiff bps");
  std::vector<ScenarioResult> results;
  bool rates_ok = true;
  for (const Scenario& sc : scenarios) {
    results.push_back(run_scenario(sc));
    const ScenarioResult& r = results.back();
    std::printf("%6d %6d %6d %6d | %12.1f %12.1f | %7.1fx %10.2f %12.4f\n",
                r.scenario.nodes, r.links, r.scenario.flows, r.scenario.ticks,
                r.incremental.events_per_sec(), r.baseline.events_per_sec(),
                r.speedup(), r.avg_flows_touched, r.max_rate_diff_bps);
    rates_ok = rates_ok && r.max_rate_diff_bps <= ScenarioResult::kRateTolBps;
  }
  write_json(results, smoke);
  if (!rates_ok) {
    std::printf("RESULT: FAIL (incremental rates diverged from reference)\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bass::bench

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const char* env = std::getenv("BASS_BENCH_SMOKE");
  if (env != nullptr && env[0] != '\0' && env[0] != '0') smoke = true;
  return bass::bench::run(smoke);
}
