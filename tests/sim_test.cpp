#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "sim/simulation.h"

namespace bass::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> fired;
  sim.schedule_at(seconds(3), [&] { fired.push_back(3); });
  sim.schedule_at(seconds(1), [&] { fired.push_back(1); });
  sim.schedule_at(seconds(2), [&] { fired.push_back(2); });
  sim.run_all();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(EventQueue, SameTimestampIsFifo) {
  Simulation sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(seconds(1), [&fired, i] { fired.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule_at(seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports failure
  sim.run_all();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelUnknownIdFails) {
  Simulation sim;
  EXPECT_FALSE(sim.cancel(kInvalidEvent));
  EXPECT_FALSE(sim.cancel(9999));
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  Time fired_at = -1;
  sim.schedule_at(seconds(5), [&] {
    sim.schedule_after(seconds(2), [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, seconds(7));
}

TEST(Simulation, NegativeDelayClampsToNow) {
  Simulation sim;
  Time fired_at = -1;
  sim.schedule_at(seconds(1), [&] {
    sim.schedule_after(-seconds(10), [&] { fired_at = sim.now(); });
  });
  sim.run_all();
  EXPECT_EQ(fired_at, seconds(1));
}

TEST(Simulation, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  sim.schedule_at(seconds(1), [&] { ++count; });
  sim.schedule_at(seconds(5), [&] { ++count; });
  sim.run_until(seconds(3));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), seconds(3));
  sim.run_until(seconds(10));
  EXPECT_EQ(count, 2);
}

TEST(Simulation, EventAtDeadlineRuns) {
  Simulation sim;
  bool fired = false;
  sim.schedule_at(seconds(3), [&] { fired = true; });
  sim.run_until(seconds(3));
  EXPECT_TRUE(fired);
}

TEST(Simulation, PeriodicRepeats) {
  Simulation sim;
  int ticks = 0;
  const EventId handle = sim.schedule_periodic(seconds(10), [&] { ++ticks; });
  sim.run_until(seconds(35));
  EXPECT_EQ(ticks, 3);  // t=10,20,30
  EXPECT_TRUE(sim.cancel_periodic(handle));
  sim.run_until(seconds(100));
  EXPECT_EQ(ticks, 3);
}

TEST(Simulation, PeriodicCancelFromInsideCallback) {
  Simulation sim;
  int ticks = 0;
  EventId handle = 0;
  handle = sim.schedule_periodic(seconds(1), [&] {
    if (++ticks == 2) sim.cancel_periodic(handle);
  });
  sim.run_until(seconds(10));
  EXPECT_EQ(ticks, 2);
}

TEST(Simulation, CancelPeriodicTwiceFails) {
  Simulation sim;
  const EventId handle = sim.schedule_periodic(seconds(1), [] {});
  EXPECT_TRUE(sim.cancel_periodic(handle));
  EXPECT_FALSE(sim.cancel_periodic(handle));
}

TEST(Simulation, EventsScheduledDuringRunExecute) {
  Simulation sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule_after(seconds(1), recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), seconds(4));
}

TEST(Time, Conversions) {
  EXPECT_EQ(seconds(2), 2'000'000);
  EXPECT_EQ(millis(3), 3'000);
  EXPECT_EQ(minutes(1), 60'000'000);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(5)), 5.0);
  EXPECT_DOUBLE_EQ(to_millis(millis(7)), 7.0);
  EXPECT_EQ(seconds_f(0.5), 500'000);
}

}  // namespace
}  // namespace bass::sim

namespace bass::sim {
namespace {

// Property: the queue drains N randomized events in nondecreasing time
// order regardless of insertion order, with cancellations interleaved.
class EventQueueProperty : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueProperty, FiresInOrderUnderChurn) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()));
  Simulation sim;
  std::vector<Time> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    const Time at = static_cast<Time>(rng() % 1'000'000);
    ids.push_back(sim.schedule_at(at, [&fired, &sim] { fired.push_back(sim.now()); }));
  }
  // Cancel a random third.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (sim.cancel(ids[i])) ++cancelled;
  }
  sim.run_all();
  EXPECT_EQ(static_cast<int>(fired.size()), 500 - cancelled);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueProperty, ::testing::Range(1, 9));

TEST(Simulation, PendingEventsCountsLiveOnly) {
  Simulation sim;
  const EventId a = sim.schedule_at(seconds(1), [] {});
  sim.schedule_at(seconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_TRUE(sim.idle());
}

TEST(EventQueue, CancelAfterFireIsRejectedAndLeavesNoTombstone) {
  Simulation sim;
  const EventId id = sim.schedule_at(seconds(1), [] {});
  sim.run_all();
  // The event already fired: cancelling it must fail, must not disturb the
  // live count, and must not leave an uncollectable tombstone behind.
  EXPECT_FALSE(sim.cancel(id));
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_EQ(sim.cancelled_backlog(), 0u);
  sim.schedule_at(seconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_all();
  EXPECT_TRUE(sim.idle());
}

// Regression for the unbounded-tombstone leak: one million cancel-heavy
// events, including a large fraction of bogus cancels aimed at ids that have
// already fired. The cancelled set must stay bounded by the pending-event
// window, not grow with the total number of cancels issued.
TEST(EventQueue, TombstoneBacklogStaysBoundedOverCancelHeavyChurn) {
  Simulation sim;
  std::mt19937_64 rng(7);
  constexpr int kEvents = 1'000'000;
  constexpr std::size_t kWindow = 64;  // max events in flight at once
  std::vector<EventId> window;
  std::size_t peak_backlog = 0;
  int fired = 0;
  for (int i = 0; i < kEvents; ++i) {
    const Time at = sim.now() + 1 + static_cast<Time>(rng() % 16);
    window.push_back(sim.schedule_at(at, [&fired] { ++fired; }));
    if (window.size() >= kWindow) {
      // Cancel half the window; the other half is left to fire below, after
      // which cancelling those ids again must be a no-op.
      for (std::size_t j = 0; j < window.size(); j += 2) sim.cancel(window[j]);
      sim.run_until(sim.now() + 32);
      for (const EventId id : window) sim.cancel(id);  // mostly stale ids
      window.clear();
    }
    peak_backlog = std::max(peak_backlog, sim.cancelled_backlog());
  }
  sim.run_all();
  EXPECT_GT(fired, 0);
  // Bounded by the in-flight window, never by the 1M total events or the
  // ~1.5M cancel attempts. (A handful of trailing tombstones may outlive
  // run_all when the final heap entries are all cancelled — still bounded.)
  EXPECT_LE(peak_backlog, kWindow);
  EXPECT_LE(sim.cancelled_backlog(), kWindow);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulation, PeriodicFirstFiringIsOnePeriodOut) {
  Simulation sim;
  Time first = -1;
  sim.schedule_periodic(seconds(7), [&] {
    if (first < 0) first = sim.now();
  });
  sim.run_until(minutes(1));
  EXPECT_EQ(first, seconds(7));
}

}  // namespace
}  // namespace bass::sim
