#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "exec/sweep.h"
#include "fault/invariants.h"
#include "obs/flight.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "util/ini.h"
#include "util/strings.h"

namespace bass::obs {
namespace {

// ---- Journal ring ----

TEST(Journal, RingOverwritesOldestAndCountsDropped) {
  EventJournal journal(4);
  for (int i = 0; i < 6; ++i) {
    journal.record(ReallocationSolved{sim::seconds(i), i, 1, false});
  }
  EXPECT_EQ(journal.size(), 4u);
  EXPECT_EQ(journal.capacity(), 4u);
  EXPECT_EQ(journal.dropped(), 2);
  // Oldest-first: events 2..5 survive.
  std::vector<std::int64_t> flows;
  journal.for_each([&](const Event& e) {
    flows.push_back(std::get<ReallocationSolved>(e).flows);
  });
  EXPECT_EQ(flows, (std::vector<std::int64_t>{2, 3, 4, 5}));
}

TEST(Journal, SnapshotMatchesForEach) {
  EventJournal journal(8);
  journal.record(HeadroomViolation{sim::seconds(1), 3, net::mbps(2)});
  journal.record(LinkCapacityChanged{sim::seconds(2), 3, net::mbps(10), net::mbps(5)});
  const auto events = journal.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(event_type_name(events[0]), "headroom_violation");
  EXPECT_STREQ(event_type_name(events[1]), "link_capacity_changed");
  EXPECT_EQ(event_time(events[1]), sim::seconds(2));
}

// ---- JSONL round trip ----

std::string field(const std::vector<std::pair<std::string, std::string>>& fields,
                  const std::string& key) {
  for (const auto& [k, v] : fields) {
    if (k == key) return v;
  }
  return "<missing>";
}

TEST(Journal, JsonlRoundTripsThroughParser) {
  EventJournal journal;
  journal.record(MigrationCompleted{sim::seconds(42), 0, 2, 3, 1, sim::seconds(20)});
  journal.record(ScheduleDecision{sim::seconds(1), 0, "bass-auto", 5, net::mbps(12),
                                  37.5, true});
  const std::string jsonl = journal.to_jsonl();

  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t nl = jsonl.find('\n'); nl != std::string::npos;
       start = nl + 1, nl = jsonl.find('\n', start)) {
    lines.push_back(jsonl.substr(start, nl - start));
  }
  ASSERT_EQ(lines.size(), 2u);

  std::vector<std::pair<std::string, std::string>> fields;
  ASSERT_TRUE(parse_journal_line(lines[0], fields));
  EXPECT_EQ(field(fields, "type"), "\"migration_completed\"");
  EXPECT_EQ(field(fields, "t_us"), std::to_string(sim::seconds(42)));
  EXPECT_EQ(field(fields, "downtime_us"), std::to_string(sim::seconds(20)));
  EXPECT_EQ(field(fields, "from"), "3");
  EXPECT_EQ(field(fields, "to"), "1");

  ASSERT_TRUE(parse_journal_line(lines[1], fields));
  EXPECT_EQ(field(fields, "type"), "\"schedule_decision\"");
  EXPECT_EQ(field(fields, "scheduler"), "\"bass-auto\"");
  EXPECT_EQ(field(fields, "success"), "true");

  EXPECT_FALSE(parse_journal_line("not json", fields));
}

TEST(Journal, TraceExportCarriesTracksAndSlices) {
  EventJournal journal;
  journal.record(MigrationStarted{sim::seconds(10), 0, 1, 2, 0});
  journal.record(MigrationCompleted{sim::seconds(30), 0, 1, 2, 0, sim::seconds(20)});
  const std::string trace = journal.to_trace();
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(trace.find("\"controller\""), std::string::npos);
  // The completed migration renders as a duration slice covering the outage.
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"dur\":" + std::to_string(sim::seconds(20))),
            std::string::npos);
}

// ---- Metrics registry ----

TEST(Metrics, HandlesAreStableAndLabelled) {
  MetricsRegistry reg;
  Counter& a = reg.counter("probes", {{"kind", "full"}});
  Counter& b = reg.counter("probes", {{"kind", "headroom"}});
  Counter& a2 = reg.counter("probes", {{"kind", "full"}});
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &a2);
  a.add(3);
  a2.inc();
  EXPECT_EQ(a.value(), 4);
  EXPECT_EQ(b.value(), 0);
  EXPECT_EQ(reg.instrument_count(), 2u);
}

TEST(Metrics, HistogramBucketsAndExtremes) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("lat_ms", {1.0, 10.0, 100.0});
  h.observe(0.5);   // bucket 0
  h.observe(10.0);  // bucket 1 (inclusive upper bound)
  h.observe(50.0);  // bucket 2
  h.observe(1e6);   // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::int64_t>{1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 1e6);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 10.0 + 50.0 + 1e6);
}

TEST(Metrics, HistogramPercentileAtBucketBoundary) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("edge_ms", {1.0, 10.0, 100.0});
  // Regression: all samples sit exactly ON a bucket boundary. The quantile
  // must report that value, not the bucket's nominal upper edge of a
  // neighbouring bucket or an unclamped boundary.
  for (int i = 0; i < 8; ++i) h.observe(10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.50), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.99), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), h.max());
  // A sample past every boundary lands in the overflow bucket, which has no
  // upper edge — the observed max is the honest answer.
  h.observe(1e9);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1e9);
  // And a single tiny sample clamps to min from below.
  Histogram& low = reg.histogram("low_ms", {1.0, 10.0});
  low.observe(0.25);
  EXPECT_DOUBLE_EQ(low.percentile(0.5), 0.25);
}

TEST(Metrics, EmptyHistogramExtremesAreNaN) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("empty_ms", {1.0, 10.0});
  EXPECT_TRUE(h.empty());
  EXPECT_TRUE(std::isnan(h.min()));
  EXPECT_TRUE(std::isnan(h.max()));
  LogHistogram lh;
  EXPECT_TRUE(lh.empty());
  EXPECT_TRUE(std::isnan(lh.min()));
  EXPECT_TRUE(std::isnan(lh.max()));
  // One observation resolves both to the sample, even a literal 0.0 — the
  // ambiguity the NaN sentinel exists to remove.
  h.observe(0.0);
  lh.observe(0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(lh.min(), 0.0);
  EXPECT_DOUBLE_EQ(lh.max(), 0.0);
}

TEST(Metrics, HistogramMergeEmptySideIsIdentityBothOrders) {
  MetricsRegistry reg;
  // Non-empty <- empty: nothing changes.
  Histogram& a = reg.histogram("a_ms", {1.0, 10.0, 100.0});
  a.observe(5.0);
  a.observe(50.0);
  Histogram& empty = reg.histogram("e_ms", {1.0, 10.0, 100.0});
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);
  EXPECT_DOUBLE_EQ(a.sum(), 55.0);
  EXPECT_EQ(a.bucket_counts(), (std::vector<std::int64_t>{0, 1, 1, 0}));

  // Empty <- non-empty: adopts the source exactly; the empty side's 0.0
  // min/max sentinels must not leak in as fabricated extremes.
  Histogram& b = reg.histogram("b_ms", {1.0, 10.0, 100.0});
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.min(), 5.0);
  EXPECT_DOUBLE_EQ(b.max(), 50.0);
  EXPECT_DOUBLE_EQ(b.sum(), 55.0);
  EXPECT_EQ(b.bucket_counts(), a.bucket_counts());

  // Empty <- empty stays empty (and NaN-extremed).
  Histogram& c = reg.histogram("c_ms", {1.0, 10.0, 100.0});
  Histogram& d = reg.histogram("d_ms", {1.0, 10.0, 100.0});
  c.merge(d);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(std::isnan(c.min()));
}

TEST(Metrics, LogHistogramMergeEmptySideIsIdentityBothOrders) {
  LogHistogram a;
  a.observe(5.0);
  a.observe(50.0);
  LogHistogram empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.min(), 5.0);
  EXPECT_DOUBLE_EQ(a.max(), 50.0);

  LogHistogram b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.min(), 5.0);
  EXPECT_DOUBLE_EQ(b.max(), 50.0);
  EXPECT_DOUBLE_EQ(b.sum(), a.sum());

  LogHistogram c, d;
  c.merge(d);
  EXPECT_TRUE(c.empty());
  EXPECT_TRUE(std::isnan(c.min()));
  EXPECT_TRUE(std::isnan(c.max()));
}

TEST(Metrics, LogHistogramBucketMath) {
  // Below one octave of sub-buckets values map exactly.
  for (std::uint64_t v = 0; v < LogHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LogHistogram::bucket_upper(LogHistogram::bucket_index(v)), v);
  }
  // Everywhere: v is never above its bucket's representative, and the
  // representative is within the 1/16 relative-error budget.
  for (std::uint64_t v : {16ull, 17ull, 31ull, 32ull, 63ull, 100ull, 1000ull,
                          123456789ull, (1ull << 62) + 12345}) {
    const std::uint64_t upper =
        LogHistogram::bucket_upper(LogHistogram::bucket_index(v));
    EXPECT_GE(upper, v);
    EXPECT_LE(static_cast<double>(upper - v),
              static_cast<double>(v) / LogHistogram::kSubBuckets);
  }
}

TEST(Metrics, LogHistogramPercentilesAndMerge) {
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 1000);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 1000.0);
  // Relative quantile error is bounded by the sub-bucket width (1/16).
  EXPECT_NEAR(h.percentile(0.50), 500.0, 500.0 / 16 + 1);
  EXPECT_NEAR(h.percentile(0.90), 900.0, 900.0 / 16 + 1);
  EXPECT_NEAR(h.percentile(0.99), 990.0, 990.0 / 16 + 1);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);

  // Merge folds counts, sum, and extremes — the sweep-worker fold.
  LogHistogram other;
  other.observe(1e9);
  other.merge(h);
  EXPECT_EQ(other.count(), 1001);
  EXPECT_DOUBLE_EQ(other.min(), 1.0);
  EXPECT_DOUBLE_EQ(other.max(), 1e9);
  EXPECT_DOUBLE_EQ(other.sum(), h.sum() + 1e9);
  EXPECT_NEAR(other.percentile(0.50), 500.0, 500.0 / 16 + 1);
  EXPECT_DOUBLE_EQ(other.percentile(1.0), 1e9);

  // Sparse iteration visits ascending uppers with the right total.
  std::int64_t total = 0;
  std::uint64_t prev = 0;
  other.for_each_nonzero([&](std::uint64_t upper, std::int64_t n) {
    EXPECT_GE(upper, prev);
    prev = upper;
    total += n;
  });
  EXPECT_EQ(total, other.count());
}

TEST(Metrics, PrometheusExportCoversEveryKind) {
  MetricsRegistry reg;
  reg.counter("events.probe_completed", {{"full", "true"}}).add(3);
  reg.gauge("cluster.cpu_free").set(1.5);
  reg.histogram("core.downtime_ms", {1.0, 10.0}).observe(5.0);
  reg.log_timer_us("orchestrator.decision_us").observe(42.0);
  const std::string prom = reg.to_prometheus(sim::seconds(1));
  EXPECT_NE(prom.find("# TYPE bass_events_probe_completed counter"),
            std::string::npos);
  EXPECT_NE(prom.find("bass_events_probe_completed{full=\"true\"} 3"),
            std::string::npos);
  EXPECT_NE(prom.find("bass_cluster_cpu_free 1.5"), std::string::npos);
  EXPECT_NE(prom.find("bass_core_downtime_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("bass_orchestrator_decision_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.find("bass_orchestrator_decision_us_count 1"),
            std::string::npos);
}

TEST(Metrics, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("events.weird", {{"path", "a\"b\\c\nd"}}).add(1);
  const std::string prom = reg.to_prometheus(0);
  // Prometheus text format: backslash, double-quote, and newline in label
  // values must come out as \\, \", and \n — a raw newline splits the
  // sample line and corrupts the whole exposition.
  EXPECT_NE(prom.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  EXPECT_EQ(prom.find("c\nd"), std::string::npos);
}

TEST(Metrics, PrometheusSanitizesLabelNames) {
  MetricsRegistry reg;
  reg.counter("events.tagged", {{"app-id", "x"}, {"9lives", "y"}}).add(2);
  const std::string prom = reg.to_prometheus(0);
  // Label names must match [a-zA-Z_][a-zA-Z0-9_]*: dashes become
  // underscores and a leading digit gets an underscore prefix.
  EXPECT_NE(prom.find("app_id=\"x\""), std::string::npos);
  EXPECT_NE(prom.find("_9lives=\"y\""), std::string::npos);
  EXPECT_EQ(prom.find("app-id"), std::string::npos);
}

TEST(Metrics, JsonEscapesControlCharactersInLabels) {
  MetricsRegistry reg;
  reg.counter("events.ctl", {{"k", "a\tb\x01"}}).add(1);
  const std::string path = "/tmp/bass_metrics_escape_test.json";
  ASSERT_TRUE(reg.write_json(path, 0));
  std::ifstream in(path);
  const std::string json((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  std::remove(path.c_str());
  EXPECT_NE(json.find("a\\tb\\u0001"), std::string::npos);
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

TEST(Metrics, LabelOrderDoesNotSplitInstruments) {
  MetricsRegistry reg;
  Counter& a = reg.counter("zone.rounds", {{"zone", "0"}, {"kind", "full"}});
  Counter& b = reg.counter("zone.rounds", {{"kind", "full"}, {"zone", "0"}});
  // Same label set in a different order is the same instrument — callers
  // fold registries from different sources and must not double-register.
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.instrument_count(), 1u);
}

TEST(Metrics, ForEachCounterAndGaugeVisitEverything) {
  MetricsRegistry reg;
  reg.counter("c.one").add(1);
  reg.counter("c.two", {{"zone", "3"}}).add(2);
  reg.gauge("g.one").set(1.5);
  int counters = 0;
  std::int64_t sum = 0;
  reg.for_each_counter(
      [&](const std::string&, const Labels&, const Counter& c) {
        ++counters;
        sum += c.value();
      });
  int gauges = 0;
  reg.for_each_gauge([&](const std::string& name, const Labels&,
                         const Gauge& g) {
    ++gauges;
    EXPECT_EQ(name, "g.one");
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
  });
  EXPECT_EQ(counters, 2);
  EXPECT_EQ(sum, 3);
  EXPECT_EQ(gauges, 1);
}

TEST(Metrics, JsonSnapshotListsEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("net.reallocations").add(7);
  reg.gauge("cluster.cpu_free").set(1.5);
  reg.histogram("core.downtime_ms", {1.0, 10.0}).observe(5.0);
  reg.log_timer_us("sched.place_us").observe(42.0);
  const std::string json = reg.to_json(sim::seconds(9));
  EXPECT_NE(json.find("\"t_us\":" + std::to_string(sim::seconds(9))),
            std::string::npos);
  EXPECT_NE(json.find("\"net.reallocations\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":7"), std::string::npos);
  EXPECT_NE(json.find("\"cluster.cpu_free\""), std::string::npos);
  EXPECT_NE(json.find("\"sched.place_us\""), std::string::npos);
  EXPECT_NE(json.find("\"boundaries\""), std::string::npos);
  // Log2 timers carry their kind and pre-computed percentiles.
  EXPECT_NE(json.find("\"kind\":\"log2\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

// ---- Recorder ----

TEST(Recorder, CountsEventsPerType) {
  Recorder rec;
  rec.record(HeadroomViolation{sim::seconds(1), 0, 0});
  rec.record(HeadroomViolation{sim::seconds(2), 0, 0});
  rec.record(ControllerRound{sim::seconds(3), 0, 1, 1});
  EXPECT_EQ(rec.journal().size(), 3u);
  EXPECT_EQ(rec.metrics().counter("events.headroom_violation").value(), 2);
  EXPECT_EQ(rec.metrics().counter("events.controller_round").value(), 1);
}

TEST(Recorder, DisabledRecorderDropsAtEmitSite) {
  Recorder rec({.journal_capacity = 16, .enabled = false});
  // The per-type event counters exist from construction; nothing else may
  // appear while disabled.
  const auto instruments = rec.metrics().instrument_count();
  rec.record(HeadroomViolation{sim::seconds(1), 0, 0});
  EXPECT_TRUE(rec.journal().empty());
  EXPECT_EQ(rec.metrics().counter("events.headroom_violation").value(), 0);
  {
    ScopedTimer t(&rec, "noop_us");
  }
  EXPECT_EQ(rec.metrics().instrument_count(), instruments);
}

TEST(Recorder, ScopedTimerFeedsTimerHistogram) {
  Recorder rec;
  {
    ScopedTimer t(&rec, "solve_us");
  }
  {
    ScopedTimer null_ok(nullptr, "ignored");  // must not crash
  }
  EXPECT_EQ(rec.metrics().log_timer_us("solve_us").count(), 1);
}

// ---- Deferred-encode ring ----

TEST(Recorder, DeferredEventsFlushInEmitOrder) {
  Recorder rec({.journal_capacity = 64, .deferred_capacity = 8});
  // POD events stage; the string-bearing ScheduleDecision must flush them
  // first so the journal preserves interleaved emit order exactly.
  rec.record(HeadroomViolation{sim::seconds(1), 3, 100});
  rec.record(ControllerRound{sim::seconds(2), 0, 1, 1});
  EXPECT_EQ(rec.deferred_pending(), 2u);
  ScheduleDecision sd;
  sd.at = sim::seconds(3);
  sd.scheduler = "bass-auto";
  rec.record(Event{sd});
  rec.record(HeadroomViolation{sim::seconds(4), 5, 200});

  std::vector<std::string> order;
  rec.journal().for_each(
      [&](const Event& e) { order.emplace_back(event_type_name(e)); });
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], "headroom_violation");
  EXPECT_EQ(order[1], "controller_round");
  EXPECT_EQ(order[2], "schedule_decision");
  EXPECT_EQ(order[3], "headroom_violation");
  EXPECT_EQ(rec.deferred_pending(), 0u);  // journal() access flushed

  // Payloads survive the memcpy round trip intact.
  int seen = 0;
  rec.journal().for_each([&](const Event& e) {
    if (const auto* hv = std::get_if<HeadroomViolation>(&e)) {
      ++seen;
      EXPECT_TRUE((hv->link == 3 && hv->delivered_bps == 100) ||
                  (hv->link == 5 && hv->delivered_bps == 200));
    }
  });
  EXPECT_EQ(seen, 2);
}

TEST(Recorder, DeferredRingFullFlushesBeforeStaging) {
  Recorder rec({.journal_capacity = 64, .deferred_capacity = 4});
  for (int i = 0; i < 11; ++i) {
    rec.record(HeadroomViolation{sim::seconds(i), i, i});
  }
  // 11 = 2 full ring drains + 3 still staged.
  EXPECT_EQ(rec.deferred_pending(), 3u);
  // Counters are live at record time, before any flush.
  EXPECT_EQ(rec.metrics().counter("events.headroom_violation").value(), 11);
  // Journal access drains the rest, in order.
  EXPECT_EQ(rec.journal().size(), 11u);
  int expect_link = 0;
  rec.journal().for_each([&](const Event& e) {
    EXPECT_EQ(std::get<HeadroomViolation>(e).link, expect_link++);
  });
}

TEST(Recorder, DeferredCapacityZeroJournalsEagerly) {
  Recorder rec({.journal_capacity = 16, .deferred_capacity = 0});
  rec.record(HeadroomViolation{sim::seconds(1), 0, 0});
  EXPECT_EQ(rec.deferred_pending(), 0u);
  EXPECT_EQ(rec.journal().size(), 1u);
}

TEST(Recorder, DisabledRecorderDropsDeferredToo) {
  Recorder rec({.journal_capacity = 16, .deferred_capacity = 8, .enabled = false});
  rec.record(HeadroomViolation{sim::seconds(1), 0, 0});
  EXPECT_EQ(rec.deferred_pending(), 0u);
  EXPECT_TRUE(rec.journal().empty());
}

TEST(Recorder, GlobalRecorderDrivesKernelScopes) {
  Recorder rec;
  set_global_recorder(&rec);
  {
    BASS_OBS_SCOPE("kernel.test_us");
  }
  set_global_recorder(nullptr);
  {
    BASS_OBS_SCOPE("kernel.test_us");  // detached: no observation
  }
  EXPECT_EQ(rec.metrics().log_timer_us("kernel.test_us").count(), 1);
}

// ---- End-to-end: journal vs. orchestrator migration history ----

struct Rig {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;
  Recorder recorder;

  Rig() {
    net::Topology topo;
    for (int i = 0; i < 3; ++i) topo.add_node();
    topo.add_link(0, 1, net::mbps(50));
    topo.add_link(1, 2, net::mbps(50));
    topo.add_link(0, 2, net::mbps(50));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < 3; ++i) cluster.add_node(i, {12000, 16384, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster);
    network->set_recorder(&recorder);
    orch->set_recorder(&recorder);
  }
};

app::AppGraph tiny_app() {
  app::AppGraph g("tiny");
  g.add_component({.name = "a", .cpu_milli = 1000, .memory_mb = 128});
  g.add_component({.name = "b", .cpu_milli = 1000, .memory_mb = 128});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  return g;
}

std::vector<MigrationCompleted> completed_events(const EventJournal& journal) {
  std::vector<MigrationCompleted> out;
  journal.for_each([&](const Event& e) {
    if (const auto* m = std::get_if<MigrationCompleted>(&e)) out.push_back(*m);
  });
  return out;
}

TEST(EndToEnd, JournalMatchesMigrationHistoryExactly) {
  Rig rig;
  const auto id = rig.orch->deploy(tiny_app(), core::SchedulerKind::kBassBfs).take();

  // Mix migration flavors: manual moves, an in-place restart, and a node
  // failure with cold recovery — every path must journal its completion.
  const net::NodeId from = rig.orch->node_of(id, 1);
  const net::NodeId target = from == 2 ? 0 : 2;
  EXPECT_TRUE(rig.orch->migrate(id, 1, target));
  rig.sim.run_all();
  rig.orch->restart_component(id, 0);
  rig.sim.run_all();
  rig.orch->fail_node(rig.orch->node_of(id, 1));
  rig.sim.run_all();

  const auto& history = rig.orch->migration_events();
  const auto journalled = completed_events(rig.recorder.journal());
  ASSERT_GE(history.size(), 3u);
  ASSERT_EQ(journalled.size(), history.size());
  for (std::size_t i = 0; i < history.size(); ++i) {
    EXPECT_EQ(journalled[i].at, history[i].at) << "event " << i;
    EXPECT_EQ(journalled[i].deployment, history[i].deployment) << "event " << i;
    EXPECT_EQ(journalled[i].component, history[i].component) << "event " << i;
    EXPECT_EQ(journalled[i].from, history[i].from) << "event " << i;
    EXPECT_EQ(journalled[i].to, history[i].to) << "event " << i;
    // Downtime spans the whole outage: never negative, never past `at`.
    EXPECT_GE(journalled[i].downtime, 0);
    EXPECT_LE(journalled[i].downtime, journalled[i].at);
  }
  EXPECT_EQ(rig.recorder.metrics().counter("events.migration_completed").value(),
            static_cast<std::int64_t>(history.size()));
  // Every start has a completion (no migration left dangling).
  std::size_t started = 0;
  rig.recorder.journal().for_each([&](const Event& e) {
    if (std::holds_alternative<MigrationStarted>(e)) ++started;
  });
  EXPECT_EQ(started, journalled.size());
}

TEST(EndToEnd, ScheduleDecisionJournalsPlacementLatency) {
  Rig rig;
  rig.orch->deploy(tiny_app(), core::SchedulerKind::kBassBfs).take();
  ScheduleDecision decision;
  bool found = false;
  rig.recorder.journal().for_each([&](const Event& e) {
    if (const auto* d = std::get_if<ScheduleDecision>(&e)) {
      decision = *d;
      found = true;
    }
  });
  ASSERT_TRUE(found);
  EXPECT_TRUE(decision.success);
  EXPECT_EQ(decision.scheduler, std::string("bass-bfs"));
  EXPECT_EQ(decision.components, 2);
  EXPECT_GT(decision.place_us, 0.0);
  EXPECT_EQ(rig.recorder.metrics().log_timer_us("sched.place_us").count(), 1);
}

// ---- Causal spans ----

TEST(Spans, MigrationSpansPairStartAndCompletion) {
  Rig rig;
  const auto id = rig.orch->deploy(tiny_app(), core::SchedulerKind::kBassBfs).take();
  const net::NodeId from = rig.orch->node_of(id, 1);
  EXPECT_TRUE(rig.orch->migrate(id, 1, from == 2 ? 0 : 2));
  rig.sim.run_all();
  rig.orch->fail_node(rig.orch->node_of(id, 0));
  rig.sim.run_all();

  // Every migration gets its own span, shared by exactly its two endpoint
  // events — `journal query --span` can stitch any move from its id alone.
  std::map<SpanId, int> started, completed;
  rig.recorder.journal().for_each([&](const Event& e) {
    if (const auto* s = std::get_if<MigrationStarted>(&e)) {
      EXPECT_NE(s->span, kNoSpan);
      ++started[s->span];
    } else if (const auto* c = std::get_if<MigrationCompleted>(&e)) {
      EXPECT_NE(c->span, kNoSpan);
      ++completed[c->span];
    }
  });
  ASSERT_GE(started.size(), 2u);
  EXPECT_EQ(started.size(), completed.size());
  for (const auto& [span, n] : started) {
    EXPECT_EQ(n, 1) << "span " << span;
    EXPECT_EQ(completed[span], 1) << "span " << span;
  }
}

TEST(Spans, SameSeedJournalsAreByteIdenticalAcrossJobCounts) {
  // Span ids come from a deterministic per-recorder counter, so the JSONL —
  // spans included — must not change with scheduling or parallelism.
  constexpr const char* kIni = R"(
[node alpha]
cpu = 4000
[node beta]
cpu = 4000
[link alpha beta]
capacity_mbps = 20
[component producer]
cpu = 500
pinned = alpha
[component consumer]
cpu = 500
pinned = beta
[edge producer consumer]
bandwidth_mbps = 4
[monitor]
probe_interval_s = 10
[chaos]
seed = 7
crash_mtbf_s = 20
mttr_s = 10
flap_mtbf_s = 15
flap_down_s = 5
[run]
duration_s = 60
)";
  auto ini = util::parse_ini(kIni);
  ASSERT_TRUE(ini.ok()) << ini.error();
  auto artifacts = exec::SweepArtifacts::from_ini(ini.take());
  ASSERT_TRUE(artifacts.ok()) << artifacts.error();
  const std::vector<exec::RunSpec> specs{{"a", {}}, {"b", {}}, {"c", {}}};
  const auto serial = exec::run_sweep(artifacts.value(), specs, 1);
  const auto parallel = exec::run_sweep(artifacts.value(), specs, 3);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].error.empty()) << serial[i].error;
    EXPECT_FALSE(serial[i].journal.empty());
    EXPECT_EQ(serial[i].journal, parallel[i].journal) << "run " << i;
    EXPECT_NE(serial[i].journal.find("\"span\":"), std::string::npos);
  }
}

TEST(Spans, FaultSpanParentsFailoverMigrations) {
  constexpr const char* kIni = R"(
[node alpha]
cpu = 4000
[node beta]
cpu = 4000
[link alpha beta]
capacity_mbps = 20
[component producer]
cpu = 500
pinned = alpha
[component consumer]
cpu = 500
pinned = beta
[edge producer consumer]
bandwidth_mbps = 4
[fault node_crash beta]
at_s = 10
duration_s = 20
[run]
duration_s = 60
)";
  auto ini = util::parse_ini(kIni);
  ASSERT_TRUE(ini.ok()) << ini.error();
  auto s = scenario::Scenario::from_ini(ini.value());
  ASSERT_TRUE(s.ok()) << s.error();
  auto& scene = *s.value();
  scene.run();

  SpanId fault_span = kNoSpan;
  scene.recorder().journal().for_each([&](const Event& e) {
    if (const auto* f = std::get_if<FaultInjected>(&e)) {
      if (std::string(f->kind) == "node_crash") fault_span = f->span;
    }
  });
  ASSERT_NE(fault_span, kNoSpan);
  // The failover migration of the component hosted on the downed node must
  // carry the fault's span as its parent — the causal chain the report and
  // `journal query --span` walk.
  bool chained = false;
  scene.recorder().journal().for_each([&](const Event& e) {
    if (const auto* m = std::get_if<MigrationStarted>(&e)) {
      if (m->parent == fault_span) chained = true;
    }
  });
  EXPECT_TRUE(chained);
}

// ---- Perfetto trace round trip ----

TEST(Journal, TraceRoundTripPreservesNestingAndCounts) {
  EventJournal journal;
  ControllerRound round{sim::seconds(10), 0, 1, 1};
  round.span = 7;
  ReallocationSolved realloc_ev{sim::seconds(10), 3, 2, false};
  realloc_ev.span = 8;
  realloc_ev.parent = 7;
  MigrationStarted started{sim::seconds(10), 0, 1, 0, 1};
  started.span = 9;
  started.parent = 7;
  MigrationCompleted done{sim::seconds(30), 0, 1, 0, 1, sim::seconds(20)};
  done.span = 9;
  done.parent = 7;
  journal.record(realloc_ev);
  journal.record(started);
  journal.record(done);
  journal.record(round);  // parents may be journalled after their children

  const std::string trace = journal.to_trace();

  // Parse the entries back out: one line per event, identified by "cat".
  std::size_t entries = 0;
  std::string round_line;
  std::size_t start = 0;
  for (std::size_t nl = trace.find('\n'); nl != std::string::npos;
       start = nl + 1, nl = trace.find('\n', start)) {
    const std::string line = trace.substr(start, nl - start);
    if (line.find("\"cat\":") == std::string::npos) continue;
    ++entries;
    if (line.find("\"cat\":\"controller_round\"") != std::string::npos) {
      round_line = line;
    }
    // Every entry's args carry the full journal record with span ids.
    EXPECT_NE(line.find("\"span\":"), std::string::npos) << line;
  }
  EXPECT_EQ(entries, journal.size());

  // The round caused work ending at t=30s, so its instant is promoted to a
  // duration slice spanning the whole subtree — descendants nest inside.
  ASSERT_FALSE(round_line.empty());
  EXPECT_NE(round_line.find("\"ph\":\"X\""), std::string::npos) << round_line;
  EXPECT_NE(round_line.find(util::str_format(
                "\"dur\":%lld", static_cast<long long>(sim::seconds(20)))),
            std::string::npos)
      << round_line;
  EXPECT_NE(round_line.find("\"parent\":0"), std::string::npos) << round_line;
}

// ---- Flight recorder ----

TEST(Flight, DumpKeepsLastEventsWithHeaderAndMetrics) {
  Recorder rec;
  for (int i = 0; i < 10; ++i) {
    rec.record(HeadroomViolation{sim::seconds(i), i, i});
  }
  FlightRecorder flight(rec, {.last_events = 3,
                              .directory = ::testing::TempDir(),
                              .tag = "unit"});
  ASSERT_TRUE(flight.dump("test_reason"));
  EXPECT_TRUE(flight.dumped());

  std::ifstream in(flight.path());
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  // header + 3 kept events + metrics trailer.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines[0].find("\"type\":\"flight_header\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"why\":\"test_reason\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"build\":{"), std::string::npos);
  std::vector<std::pair<std::string, std::string>> fields;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(parse_journal_line(lines[i], fields)) << lines[i];
    // The kept events are the LAST three (links 7..9).
    EXPECT_EQ(field(fields, "link"), std::to_string(6 + i));
  }
  EXPECT_NE(lines[4].find("\"type\":\"flight_metrics\""), std::string::npos);
  std::remove(flight.path().c_str());
}

TEST(Flight, InvariantViolationTriggersOneDump) {
  Rig rig;
  rig.orch->deploy(tiny_app(), core::SchedulerKind::kBassBfs).take();
  FlightRecorder flight(rig.recorder, {.last_events = 16,
                                       .directory = ::testing::TempDir(),
                                       .tag = "invariant_unit"});
  std::remove(flight.path().c_str());
  fault::Invariants inv(*rig.orch, &rig.recorder);
  int hook_calls = 0;
  inv.set_violation_hook([&](const char* name, const std::string&) {
    ++hook_calls;
    flight.dump_once(name);
  });
  EXPECT_EQ(inv.check_now(), 0);
  EXPECT_EQ(hook_calls, 0);

  // Corrupt resource accounting behind the orchestrator's back: a phantom
  // allocation the deployment bookkeeping can never explain.
  ASSERT_TRUE(rig.cluster.allocate(0, 500, 64));
  EXPECT_GT(inv.check_now(), 0);
  EXPECT_GT(hook_calls, 0);
  EXPECT_TRUE(flight.dumped());

  // The dump is parseable and carries the violation's journal record.
  std::ifstream in(flight.path());
  ASSERT_TRUE(in.good());
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_NE(contents.find("\"type\":\"flight_header\""), std::string::npos);
  EXPECT_NE(contents.find("\"type\":\"invariant_violation\""), std::string::npos);
  EXPECT_NE(contents.find("\"type\":\"flight_metrics\""), std::string::npos);

  // dump_once is once: further violations must not rewrite the file.
  std::remove(flight.path().c_str());
  EXPECT_GT(inv.check_now(), 0);  // still violated
  EXPECT_FALSE(std::ifstream(flight.path()).good());
}

// ---- Scenario wiring ----

constexpr const char* kScenarioIni = R"(
[node alpha]
cpu = 4000
[node beta]
cpu = 4000
[link alpha beta]
capacity_mbps = 20
[component producer]
cpu = 500
pinned = alpha
[component consumer]
cpu = 500
[edge producer consumer]
bandwidth_mbps = 4
[monitor]
probe_interval_s = 10
[obs]
journal_capacity = 4096
[workload]
type = requests
rps = 5
client = alpha
[run]
duration_s = 60
)";

TEST(Scenario, RecorderCoversConstructionAndRun) {
  auto ini = util::parse_ini(kScenarioIni);
  ASSERT_TRUE(ini.ok()) << ini.error();
  auto s = scenario::Scenario::from_ini(ini.value());
  ASSERT_TRUE(s.ok()) << s.error();
  auto& scene = *s.value();
  EXPECT_EQ(scene.recorder().journal().capacity(), 4096u);
  // The initial probe round and the deploy happen during construction and
  // must already be journalled.
  const auto before_run = scene.recorder().journal().snapshot();
  bool probed = false, scheduled = false;
  for (const Event& e : before_run) {
    probed = probed || std::holds_alternative<ProbeCompleted>(e);
    scheduled = scheduled || std::holds_alternative<ScheduleDecision>(e);
  }
  EXPECT_TRUE(probed);
  EXPECT_TRUE(scheduled);

  scene.run();
  MetricsRegistry& metrics = scene.recorder().metrics();
  EXPECT_GT(metrics.counter("monitor.probe_bytes").value(), 0);
  EXPECT_GT(metrics.counter("net.reallocations").value(), 0);

  // Export + reparse: every journal line must satisfy the flat-JSON schema.
  const std::string path = ::testing::TempDir() + "obs_test_journal.jsonl";
  ASSERT_TRUE(scene.recorder().journal().write_jsonl(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string line;
  std::vector<std::pair<std::string, std::string>> fields;
  char buf[4096];
  std::size_t lines = 0;
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line.assign(buf);
    if (!line.empty() && line.back() == '\n') line.pop_back();
    ASSERT_TRUE(parse_journal_line(line, fields)) << line;
    EXPECT_NE(field(fields, "t_us"), "<missing>");
    EXPECT_NE(field(fields, "type"), "<missing>");
    EXPECT_NE(field(fields, "span"), "<missing>");
    EXPECT_NE(field(fields, "parent"), "<missing>");
    ++lines;
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(lines, scene.recorder().journal().size());

  // Disabling the scenario recorder is honored at the emit sites.
  const auto count_before = scene.recorder().journal().size();
  scene.recorder().set_enabled(false);
  scene.network().set_link_capacity(0, net::mbps(10));
  EXPECT_EQ(scene.recorder().journal().size(), count_before);
}

}  // namespace
}  // namespace bass::obs
