// Property suite for the flow-level network engine: conservation,
// completion, and fairness invariants under randomized traffic and
// capacity churn. These are the guarantees every experiment leans on.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace bass::net {
namespace {

struct Scenario {
  std::uint64_t seed;
};

class NetworkChurn : public ::testing::TestWithParam<Scenario> {};

TEST_P(NetworkChurn, EveryTransferCompletesAndBytesBalance) {
  util::Rng rng(GetParam().seed);
  sim::Simulation sim;

  // Random connected topology: a ring plus random chords.
  const int n = static_cast<int>(rng.uniform_int(3, 7));
  Topology topo;
  for (int i = 0; i < n; ++i) topo.add_node();
  for (int i = 0; i < n; ++i) {
    topo.add_link(i, (i + 1) % n, mbps(rng.uniform_int(2, 30)));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 2; j < n; ++j) {
      if ((i + 1) % n == j || (j + 1) % n == i) continue;
      if (!topo.link_between(i, j) && rng.chance(0.3)) {
        topo.add_link(i, j, mbps(rng.uniform_int(2, 30)));
      }
    }
  }
  Network network(sim, topo);

  // Random transfers with random start times, plus streams that open and
  // close, plus capacity churn every ~5 s.
  std::int64_t bytes_sent = 0;
  int completed = 0;
  const int transfers = static_cast<int>(rng.uniform_int(20, 60));
  for (int t = 0; t < transfers; ++t) {
    const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    NodeId dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const std::int64_t bytes = rng.uniform_int(1'000, 2'000'000);
    bytes_sent += bytes;
    sim.schedule_at(sim::seconds_f(rng.uniform(0, 60)), [&, src, dst, bytes] {
      network.start_transfer(src, dst, bytes, [&completed] { ++completed; });
    });
  }
  std::vector<StreamId> streams;
  for (int s = 0; s < 5; ++s) {
    const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    NodeId dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const Bps demand = mbps(rng.uniform_int(1, 10));
    sim.schedule_at(sim::seconds_f(rng.uniform(0, 30)), [&, src, dst, demand] {
      streams.push_back(network.open_stream(src, dst, demand));
    });
  }
  for (int c = 0; c < 12; ++c) {
    sim.schedule_at(sim::seconds_f(rng.uniform(1, 90)), [&] {
      const LinkId l =
          static_cast<LinkId>(rng.uniform_int(0, topo.link_count() - 1));
      network.set_link_capacity(l, mbps(rng.uniform_int(1, 30)));
    });
  }
  sim.schedule_at(sim::seconds(95), [&] {
    for (StreamId s : streams) network.close_stream(s);
    streams.clear();
  });

  sim.run_until(sim::minutes(60));

  // (1) No transfer is lost, however the capacities churned.
  EXPECT_EQ(completed, transfers);
  // (2) Transfer bytes are fully accounted (streams add on top).
  EXPECT_GE(network.total_bytes_delivered() + 64, bytes_sent);
  // (3) The simulator quiesced: no livelock of reallocation events.
  EXPECT_EQ(network.active_channel_count(), 0u);
  EXPECT_EQ(network.stream_count(), 0u);
}

TEST_P(NetworkChurn, LinkAllocationNeverExceedsCapacity) {
  util::Rng rng(GetParam().seed + 1000);
  sim::Simulation sim;
  Topology topo;
  const int n = 4;
  for (int i = 0; i < n; ++i) topo.add_node();
  topo.add_link(0, 1, mbps(10));
  topo.add_link(1, 2, mbps(5));
  topo.add_link(2, 3, mbps(8));
  topo.add_link(0, 3, mbps(3));
  Network network(sim, topo);

  for (int s = 0; s < 12; ++s) {
    const NodeId src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    NodeId dst = static_cast<NodeId>((src + rng.uniform_int(1, n - 1)) % n);
    network.open_stream(src, dst, mbps(rng.uniform_int(1, 20)));
  }
  network.start_transfer(0, 2, 50'000'000, [] {});
  network.start_transfer(3, 1, 50'000'000, [] {});
  sim.run_until(sim::seconds(5));

  for (int l = 0; l < topo.link_count(); ++l) {
    EXPECT_LE(network.link_allocated(l), network.link_capacity(l) + 1)
        << "link " << l << " oversubscribed";
  }
}

TEST_P(NetworkChurn, PathAvailableNeverExceedsPathCapacity) {
  util::Rng rng(GetParam().seed + 2000);
  sim::Simulation sim;
  Topology topo;
  for (int i = 0; i < 4; ++i) topo.add_node();
  topo.add_link(0, 1, mbps(rng.uniform_int(2, 20)));
  topo.add_link(1, 2, mbps(rng.uniform_int(2, 20)));
  topo.add_link(2, 3, mbps(rng.uniform_int(2, 20)));
  Network network(sim, topo);
  for (int s = 0; s < 4; ++s) {
    network.open_stream(static_cast<NodeId>(rng.uniform_int(0, 2)), 3,
                        mbps(rng.uniform_int(1, 8)));
  }
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      if (u == v) continue;
      EXPECT_LE(network.path_available(u, v), network.path_capacity(u, v));
      EXPECT_GE(network.path_available(u, v), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkChurn,
                         ::testing::Values(Scenario{1}, Scenario{2}, Scenario{3},
                                           Scenario{4}, Scenario{5}, Scenario{6},
                                           Scenario{7}, Scenario{8}, Scenario{9},
                                           Scenario{10}, Scenario{11}, Scenario{12}));

// ---- Focused dynamics checks ----

TEST(NetworkDynamics, RateReactsToCompetitorDeparture) {
  sim::Simulation sim;
  Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, mbps(10));
  Network network(sim, topo);
  const StreamId a = network.open_stream(0, 1, kUnlimitedRate);
  const StreamId b = network.open_stream(0, 1, kUnlimitedRate);
  EXPECT_NEAR(static_cast<double>(network.stream_rate(a)), 5e6, 1e4);
  network.close_stream(b);
  EXPECT_NEAR(static_cast<double>(network.stream_rate(a)), 10e6, 1e4);
}

TEST(NetworkDynamics, ReverseDirectionsDoNotContend) {
  sim::Simulation sim;
  Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, mbps(10));
  Network network(sim, topo);
  const StreamId fwd = network.open_stream(0, 1, mbps(9));
  const StreamId rev = network.open_stream(1, 0, mbps(9));
  // Directed links: full rate both ways.
  EXPECT_NEAR(static_cast<double>(network.stream_rate(fwd)), 9e6, 1e4);
  EXPECT_NEAR(static_cast<double>(network.stream_rate(rev)), 9e6, 1e4);
}

TEST(NetworkDynamics, ZeroByteTransferStillCompletes) {
  sim::Simulation sim;
  Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, mbps(10));
  Network network(sim, topo);
  bool done = false;
  network.start_transfer(0, 1, 0, [&] { done = true; });
  sim.run_all();
  EXPECT_TRUE(done);
}

TEST(NetworkDynamics, ManySmallTransfersOneChannelFewReallocations) {
  sim::Simulation sim;
  Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, mbps(10));
  Network network(sim, topo);
  int completed = 0;
  // Queue 100 transfers back-to-back on one channel: the allocator should
  // run ~twice (activation + deactivation), not per transfer.
  for (int i = 0; i < 100; ++i) {
    network.start_transfer(0, 1, 10'000, [&] { ++completed; });
  }
  const auto reallocs = network.reallocation_count();
  sim.run_all();
  EXPECT_EQ(completed, 100);
  EXPECT_LE(network.reallocation_count() - reallocs, 2);
}

TEST(NetworkDynamics, StreamRateZeroOnDeadLink) {
  sim::Simulation sim;
  Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, 0);
  Network network(sim, topo);
  const StreamId s = network.open_stream(0, 1, mbps(5));
  EXPECT_EQ(network.stream_rate(s), 0);
}

}  // namespace
}  // namespace bass::net
