#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "net/network.h"
#include "scenario/scenario.h"
#include "sim/simulation.h"
#include "topo/city_grid.h"
#include "util/ini.h"
#include "util/strings.h"
#include "zone/partition.h"
#include "zone/sharded.h"

namespace bass::zone {
namespace {

topo::CityGridParams small_params(int bx, int by) {
  topo::CityGridParams p;
  p.blocks_x = bx;
  p.blocks_y = by;
  p.nodes_per_block = 4;
  p.gateway_every = 8;
  return p;
}

// ---- City grid generator ----

TEST(CityGrid, CountsNamesAndConnectivity) {
  const topo::CityGridParams p = small_params(4, 4);
  topo::CityGrid city = topo::CityGridGenerator(p).build();
  EXPECT_EQ(city.topology.node_count(), 64);
  EXPECT_EQ(city.routers.size(), 16u);
  // gateway_every = 8 over 16 blocks: blocks 0 and 8.
  EXPECT_EQ(city.gateways.size(), 2u);
  EXPECT_EQ(city.topology.node_name(0), "r0x0");
  EXPECT_EQ(city.topology.node_name(1), "n0x0_1");

  sim::Simulation sim;
  net::Network network(sim, city.topology);
  for (net::NodeId n = 1; n < city.topology.node_count(); ++n) {
    ASSERT_TRUE(network.routing().reachable(0, n)) << "node " << n;
  }
}

TEST(CityGrid, BuildIsDeterministic) {
  const topo::CityGridParams p = small_params(3, 5);
  topo::CityGrid a = topo::CityGridGenerator(p).build();
  topo::CityGrid b = topo::CityGridGenerator(p).build();
  ASSERT_EQ(a.topology.node_count(), b.topology.node_count());
  ASSERT_EQ(a.topology.link_count(), b.topology.link_count());
  for (net::LinkId l = 0; l < a.topology.link_count(); ++l) {
    EXPECT_EQ(a.topology.link(l).src, b.topology.link(l).src);
    EXPECT_EQ(a.topology.link(l).dst, b.topology.link(l).dst);
    EXPECT_EQ(a.topology.link(l).capacity, b.topology.link(l).capacity);
  }
}

TEST(CityGrid, RejectsNonPositiveDimensions) {
  topo::CityGridParams p = small_params(0, 4);
  EXPECT_FALSE(topo::make_city_grid(p).ok());
  p = small_params(4, 4);
  p.nodes_per_block = 0;
  EXPECT_FALSE(topo::make_city_grid(p).ok());
}

// ---- Partitioner ----

net::Topology city_topology(int bx, int by) {
  return topo::CityGridGenerator(small_params(bx, by)).build().topology;
}

TEST(Partition, CoversEveryNodeExactlyOnce) {
  const net::Topology topo = city_topology(4, 4);
  const Partition part = ZonePartitioner(4).partition(topo);
  ASSERT_EQ(part.zones, 4);
  ASSERT_EQ(part.zone_of.size(), static_cast<std::size_t>(topo.node_count()));
  std::size_t total = 0;
  for (int z = 0; z < part.zones; ++z) {
    total += part.members[static_cast<std::size_t>(z)].size();
    for (const net::NodeId n : part.members[static_cast<std::size_t>(z)]) {
      EXPECT_EQ(part.zone_of[static_cast<std::size_t>(n)], z);
    }
    // Members are ascending — world construction depends on it.
    EXPECT_TRUE(std::is_sorted(part.members[static_cast<std::size_t>(z)].begin(),
                               part.members[static_cast<std::size_t>(z)].end()));
  }
  EXPECT_EQ(total, static_cast<std::size_t>(topo.node_count()));
}

TEST(Partition, BorderLinksAreExactlyCrossZoneLinks) {
  const net::Topology topo = city_topology(4, 4);
  const Partition part = ZonePartitioner(4).partition(topo);
  std::vector<net::LinkId> expected;
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    const net::Link& link = topo.link(l);
    if (part.zone_of[static_cast<std::size_t>(link.src)] !=
        part.zone_of[static_cast<std::size_t>(link.dst)]) {
      expected.push_back(l);
    }
  }
  EXPECT_EQ(part.border_links, expected);
  EXPECT_FALSE(part.border_links.empty());
}

TEST(Partition, BfsZonesAreRoughlyBalanced) {
  const net::Topology topo = city_topology(8, 8);
  const Partition part = ZonePartitioner(4).partition(topo);
  std::size_t smallest = part.members[0].size(), largest = part.members[0].size();
  for (const auto& m : part.members) {
    smallest = std::min(smallest, m.size());
    largest = std::max(largest, m.size());
  }
  EXPECT_GT(smallest, 0u);
  // Lockstep growth keeps zones near-balanced; a zone can get boxed in by
  // faster-growing neighbours, so the bound is loose, not exact.
  EXPECT_LE(largest, smallest * 2);
}

TEST(Partition, IsDeterministic) {
  const net::Topology topo = city_topology(6, 6);
  const Partition a = ZonePartitioner(5).partition(topo);
  const Partition b = ZonePartitioner(5).partition(topo);
  EXPECT_EQ(a.zone_of, b.zone_of);
  EXPECT_EQ(a.border_links, b.border_links);
}

TEST(Partition, ChunksFollowIdRanges) {
  const net::Topology topo = city_topology(4, 4);
  const Partition part =
      ZonePartitioner(4, PartitionMethod::kChunks).partition(topo);
  EXPECT_TRUE(std::is_sorted(part.zone_of.begin(), part.zone_of.end()));
  for (const auto& m : part.members) EXPECT_EQ(m.size(), 16u);
}

TEST(Partition, ClampsZoneCountToNodes) {
  net::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_node("c");
  topo.add_link(0, 1, net::mbps(10));
  topo.add_link(1, 2, net::mbps(10));
  const Partition part = ZonePartitioner(8).partition(topo);
  EXPECT_EQ(part.zones, 3);
}

// ---- Sharded orchestrator ----

ShardedBuild non_serving_build(int bx, int by, int zones, int transit) {
  ShardedBuild b;
  topo::CityGrid city = topo::CityGridGenerator(small_params(bx, by)).build();
  b.topology = std::move(city.topology);
  b.specs.assign(static_cast<std::size_t>(b.topology.node_count()),
                 {4000, 4096, true});
  b.zones.count = zones;
  b.zones.method = PartitionMethod::kChunks;  // chunks align with city blocks
  b.zones.round_interval = sim::seconds(10);
  b.zones.transit_per_border = transit;
  b.zones.transit_bps = net::mbps(100);  // above street rate: forces caps
  b.serving = false;
  b.monitor_enabled = false;
  b.invariants_enabled = false;
  b.duration = sim::seconds(40);
  return b;
}

// When no contention component crosses a border, the per-zone solver must
// land on bitwise-identical rates to a global solve of the same streams:
// zone slices carry the same links at the same capacities, and max-min
// water-filling is local to a contention component.
TEST(Sharded, IntraZoneAllocationsMatchGlobalSolverBitwise) {
  ShardedBuild build = non_serving_build(4, 4, 4, 0);
  const net::Topology global_topo = build.topology;
  auto built = ShardedOrchestrator::create(std::move(build), 1);
  ASSERT_TRUE(built.ok()) << built.error();
  auto orch = built.take();

  sim::Simulation gsim;
  net::Network global(gsim, global_topo);

  // Three streams inside every block, sharing the block's star links with
  // total demand over the intra capacity — real contention, resolved
  // entirely inside one zone.
  std::vector<std::pair<net::StreamId, net::StreamId>> pairs;
  const Partition& part = orch->partition();
  const int npb = 4;
  for (int block = 0; block < 16; ++block) {
    const net::NodeId base = static_cast<net::NodeId>(block * npb);
    const int z = part.zone_of[static_cast<std::size_t>(base)];
    const net::NodeId leaf[3] = {base + 1, base + 2, base + 3};
    const std::pair<int, int> ends[3] = {{0, 1}, {0, 2}, {1, 2}};
    for (const auto& [i, j] : ends) {
      const net::Bps demand = net::mbps(60);
      const net::StreamId zs = orch->zone_network(z).open_stream(
          orch->local_node(z, leaf[i]), orch->local_node(z, leaf[j]), demand);
      const net::StreamId gs = global.open_stream(leaf[i], leaf[j], demand);
      pairs.emplace_back(zs, gs);
      // Both solvers saw the same component: rates match exactly, stream by
      // stream, even mid-buildup.
      const int zz = z;
      EXPECT_EQ(orch->zone_network(zz).stream_rate(zs), global.stream_rate(gs));
    }
  }
  for (int block = 0; block < 16; ++block) {
    const net::NodeId base = static_cast<net::NodeId>(block * npb);
    const int z = part.zone_of[static_cast<std::size_t>(base)];
    for (int k = 0; k < 3; ++k) {
      const auto& [zs, gs] = pairs[static_cast<std::size_t>(block * 3 + k)];
      EXPECT_EQ(orch->zone_network(z).stream_rate(zs), global.stream_rate(gs))
          << "block " << block << " stream " << k;
    }
  }
}

TEST(Sharded, LocalGlobalNodeMappingRoundTrips) {
  auto built = ShardedOrchestrator::create(non_serving_build(4, 4, 4, 1), 1);
  ASSERT_TRUE(built.ok()) << built.error();
  auto orch = built.take();
  const Partition& part = orch->partition();
  for (int z = 0; z < orch->zones(); ++z) {
    for (const net::NodeId g : part.members[static_cast<std::size_t>(z)]) {
      const net::NodeId local = orch->local_node(z, g);
      ASSERT_NE(local, net::kInvalidNode);
      EXPECT_EQ(orch->global_node(z, local), g);
    }
  }
  // A node interior to zone 0 is not interior to zone 1 — at most a halo
  // entry, and halo locals still map back to the right global id.
  EXPECT_EQ(orch->local_node(0, net::kInvalidNode), net::kInvalidNode);
  EXPECT_EQ(orch->global_node(0, net::kInvalidNode), net::kInvalidNode);
}

// Border reconciliation settles in at most one rate-changing pass per
// round once transit is up: the first round caps the over-demanded halves,
// and with nothing else moving, every later round is already at the
// fixpoint.
TEST(Sharded, ReconciliationSettlesWithinOnePassPerRound) {
  auto built = ShardedOrchestrator::create(non_serving_build(4, 4, 2, 1), 1);
  ASSERT_TRUE(built.ok()) << built.error();
  auto orch = built.take();
  const ShardedReport report = orch->run();
  ASSERT_EQ(report.rounds, 4);
  ASSERT_GT(report.transit_streams, 0u);
  EXPECT_LE(report.reconcile_iterations, 2);

  // The per-round breakdown from the coordinator journal: after the first
  // round no pass changes a rate.
  const std::string merged = orch->merged_journal();
  std::vector<int> per_round;
  std::size_t pos = 0;
  while ((pos = merged.find("\"type\":\"zone_round\"", pos)) != std::string::npos) {
    const std::size_t line_end = merged.find('\n', pos);
    const std::string line = merged.substr(pos, line_end - pos);
    if (line.find("\"zone\":-1") != std::string::npos) {
      const std::size_t it = line.find("\"recon_iterations\":");
      ASSERT_NE(it, std::string::npos);
      per_round.push_back(std::atoi(line.c_str() + it + 19));
    }
    pos = line_end;
  }
  ASSERT_EQ(per_round.size(), 4u);
  for (std::size_t r = 1; r < per_round.size(); ++r) {
    EXPECT_EQ(per_round[r], 0) << "round " << r;
  }
  EXPECT_LE(per_round[0], 2);
}

std::string serving_ini(int zones, int transit_per_border,
                        const std::string& zone_extra = "") {
  return util::str_format(
      "[topology]\n"
      "kind = city_grid\n"
      "blocks_x = 4\n"
      "blocks_y = 4\n"
      "nodes_per_block = 4\n"
      "gateway_every = 8\n"
      "[zones]\n"
      "count = %d\n"
      "method = bfs\n"
      "round_interval_s = 10\n"
      "transit_per_border = %d\n"
      "%s"
      "[monitor]\n"
      "enabled = false\n"
      "[invariants]\n"
      "enabled = false\n"
      "[serve]\n"
      "mode = adaptive\n"
      "seed = 7\n"
      "arrival_per_min = 30\n"
      "mean_lifetime_s = 60\n"
      "resource_scale = 0.1\n"
      "[run]\n"
      "duration_s = 40\n",
      zones, transit_per_border, zone_extra.c_str());
}

std::unique_ptr<ShardedOrchestrator> serving_orchestrator(
    int zones, int transit, std::size_t jobs, const std::string& zone_extra = "") {
  auto ini = util::parse_ini(serving_ini(zones, transit, zone_extra));
  EXPECT_TRUE(ini.ok()) << ini.error();
  auto built = ShardedOrchestrator::from_ini(ini.value(), jobs);
  EXPECT_TRUE(built.ok()) << built.error();
  return built.take();
}

TEST(Sharded, ServingReportAggregatesZones) {
  auto orch = serving_orchestrator(2, 1, 1);
  const ShardedReport report = orch->run();
  EXPECT_GT(report.serve_arrivals, 0);
  EXPECT_EQ(report.serve_admitted,
            report.serve_arrivals);  // uncontended small city admits all
  EXPECT_EQ(report.invariant_violations, 0);
  EXPECT_EQ(report.rounds, 4);
}

// Same seed, different worker counts: the merged journal must not move by
// a byte. This is the determinism contract the sharded subsystem promises.
TEST(Sharded, MergedJournalIdenticalAcrossJobs) {
  auto a = serving_orchestrator(2, 1, 1);
  a->run();
  auto b = serving_orchestrator(2, 1, 4);
  b->run();
  const std::string ja = a->merged_journal();
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, b->merged_journal());
}

// Bitwise comparison of everything a finished run can show: final link
// allocations in every zone world, plus each zone's migration history.
void expect_bitwise_equal_outcomes(ShardedOrchestrator& a,
                                   ShardedOrchestrator& b) {
  ASSERT_EQ(a.zones(), b.zones());
  for (int z = 0; z < a.zones(); ++z) {
    const net::Network& na = a.zone_network(z);
    const net::Network& nb = b.zone_network(z);
    ASSERT_EQ(na.topology().link_count(), nb.topology().link_count());
    for (net::LinkId l = 0; l < na.topology().link_count(); ++l) {
      ASSERT_EQ(na.link_allocated(l), nb.link_allocated(l))
          << "zone " << z << " link " << l;
    }
    const auto& ma = a.zone_orchestrator(z).migration_events();
    const auto& mb = b.zone_orchestrator(z).migration_events();
    ASSERT_EQ(ma.size(), mb.size()) << "zone " << z;
    for (std::size_t i = 0; i < ma.size(); ++i) {
      EXPECT_EQ(ma[i].at, mb[i].at);
      EXPECT_EQ(ma[i].deployment, mb[i].deployment);
      EXPECT_EQ(ma[i].component, mb[i].component);
      EXPECT_EQ(ma[i].from, mb[i].from);
      EXPECT_EQ(ma[i].to, mb[i].to);
    }
  }
}

// Activity gating must be invisible to every observable outcome: the same
// scenario with gating on and off lands on a byte-identical merged journal
// and bitwise-equal allocations/migrations. Sparse churn (all arrivals in
// zone 0) makes zone 1 actually take the cheap tick in the gated run, so
// the equality is exercised, not vacuous.
TEST(Sharded, GatedMatchesUngatedBitwise) {
  auto gated = serving_orchestrator(2, 1, 1, "active_zones = 1\n");
  auto ungated =
      serving_orchestrator(2, 1, 1, "active_zones = 1\ngating = false\n");
  gated->run();
  ungated->run();
  EXPECT_GT(gated->report().zone_rounds_skipped, 0);
  EXPECT_EQ(ungated->report().zone_rounds_skipped, 0);
  EXPECT_EQ(gated->merged_journal(), ungated->merged_journal());
  expect_bitwise_equal_outcomes(*gated, *ungated);
}

// Same contract under chaos: a mid-run node crash (failure detection,
// restart timers, placement retries — all events the gate must see) still
// produces identical journals and outcomes gated vs ungated.
TEST(Sharded, ChaosGatedMatchesUngatedBitwise) {
  auto gated = serving_orchestrator(2, 1, 1, "active_zones = 1\n");
  auto ungated =
      serving_orchestrator(2, 1, 1, "active_zones = 1\ngating = false\n");
  const net::NodeId victim_global = gated->partition().members[0][0];
  for (auto* orch : {gated.get(), ungated.get()}) {
    orch->start();
    orch->run_round();
    orch->run_round();
    orch->zone_orchestrator(0).fail_node(orch->local_node(0, victim_global));
    while (orch->rounds_done() < orch->rounds_total()) orch->run_round();
    orch->finish();
  }
  EXPECT_EQ(gated->merged_journal(), ungated->merged_journal());
  expect_bitwise_equal_outcomes(*gated, *ungated);
}

// The k-way heap merge against a from-scratch reference of the original
// implementation: annotate each zone line, concatenate zones in order with
// the coordinator last, stable_sort by t_us.
TEST(Sharded, MergedJournalMatchesStableSortReference) {
  auto orch = serving_orchestrator(3, 2, 1);
  orch->run();
  // merged_journal() flushes deferred events — call it before reading the
  // per-zone journals the reference is built from.
  const std::string merged = orch->merged_journal();
  ASSERT_FALSE(merged.empty());

  struct Line {
    long long t;
    std::string text;
  };
  std::vector<Line> lines;
  const auto add = [&lines](const std::string& jsonl, int zone) {
    std::size_t start = 0;
    while (start < jsonl.size()) {
      std::size_t end = jsonl.find('\n', start);
      if (end == std::string::npos) end = jsonl.size();
      if (end > start) {
        std::string text = jsonl.substr(start, end - start);
        if (zone >= 0 && !text.empty() && text.back() == '}') {
          text.pop_back();
          text += util::str_format(",\"zone\":%d}", zone);
        }
        const long long t = std::strtoll(text.c_str() + 8, nullptr, 10);
        lines.push_back({t, std::move(text)});
      }
      start = end + 1;
    }
  };
  for (int z = 0; z < orch->zones(); ++z) {
    add(orch->zone_recorder(z).journal().to_jsonl(), z);
  }
  add(orch->recorder().journal().to_jsonl(), -1);
  std::stable_sort(lines.begin(), lines.end(),
                   [](const Line& a, const Line& b) { return a.t < b.t; });
  std::string expected;
  for (const Line& l : lines) {
    expected += l.text;
    expected += '\n';
  }
  EXPECT_EQ(merged, expected);
}

// An idle zone may coast on the cheap tick for at most max_skip
// consecutive rounds before the heartbeat forces a full pass.
TEST(Sharded, HeartbeatBoundsConsecutiveSkips) {
  auto orch = serving_orchestrator(2, 1, 1, "active_zones = 1\nmax_skip = 3\n");
  const ShardedReport report = orch->run();
  EXPECT_GT(report.zone_rounds_skipped, 0);
  EXPECT_LE(orch->max_consecutive_skips(), 3);
  // 4 rounds, one idle zone: it skips rounds 1-3 (hitting the bound), then
  // the heartbeat forces round 4 — while the busy zone runs full every
  // round.
  EXPECT_EQ(report.zone_rounds_skipped, 3);
  EXPECT_EQ(report.zone_rounds_full, 5);
}

// Chaos interaction across the shard boundary: with transit disabled the
// zones share nothing, so a node crash in zone 0 must not move a single
// byte of zone 1's journal.
TEST(Sharded, NodeCrashInOneZoneDoesNotPerturbTheOther) {
  auto crashed = serving_orchestrator(2, 0, 1);
  auto control = serving_orchestrator(2, 0, 1);

  const net::NodeId victim_global = crashed->partition().members[0][0];
  for (auto* orch : {crashed.get(), control.get()}) {
    orch->start();
    orch->run_round();
    orch->run_round();
  }
  crashed->zone_orchestrator(0).fail_node(
      crashed->local_node(0, victim_global));
  for (auto* orch : {crashed.get(), control.get()}) {
    while (orch->rounds_done() < orch->rounds_total()) orch->run_round();
    orch->finish();
  }

  const std::string zone1_crashed = crashed->zone_recorder(1).journal().to_jsonl();
  const std::string zone1_control = control->zone_recorder(1).journal().to_jsonl();
  ASSERT_FALSE(zone1_crashed.empty());
  EXPECT_EQ(zone1_crashed, zone1_control);
  // Sanity: the crash did land in zone 0.
  EXPECT_NE(crashed->zone_recorder(0).journal().to_jsonl(),
            control->zone_recorder(0).journal().to_jsonl());
}

TEST(Sharded, FromIniValidatesSections) {
  auto no_zones = util::parse_ini(
      "[topology]\nkind = city_grid\n[serve]\nmode = adaptive\n");
  ASSERT_TRUE(no_zones.ok());
  EXPECT_FALSE(ShardedOrchestrator::from_ini(no_zones.value(), 1).ok());

  auto no_serve = util::parse_ini(
      "[topology]\nkind = city_grid\n[zones]\ncount = 2\n");
  ASSERT_TRUE(no_serve.ok());
  auto r = ShardedOrchestrator::from_ini(no_serve.value(), 1);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("[serve]"), std::string::npos);

  auto bad_method = util::parse_ini(
      "[topology]\nkind = city_grid\n"
      "[zones]\ncount = 2\nmethod = voronoi\n"
      "[serve]\nmode = adaptive\n");
  ASSERT_TRUE(bad_method.ok());
  auto m = ShardedOrchestrator::from_ini(bad_method.value(), 1);
  ASSERT_FALSE(m.ok());
  EXPECT_NE(m.error().find("voronoi"), std::string::npos);

  auto bad_skip = util::parse_ini(
      "[topology]\nkind = city_grid\n"
      "[zones]\ncount = 2\nmax_skip = 0\n"
      "[serve]\nmode = adaptive\n");
  ASSERT_TRUE(bad_skip.ok());
  auto s = ShardedOrchestrator::from_ini(bad_skip.value(), 1);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("max_skip"), std::string::npos);

  auto bad_active = util::parse_ini(
      "[topology]\nkind = city_grid\n"
      "[zones]\ncount = 2\nactive_zones = -1\n"
      "[serve]\nmode = adaptive\n");
  ASSERT_TRUE(bad_active.ok());
  auto a = ShardedOrchestrator::from_ini(bad_active.value(), 1);
  ASSERT_FALSE(a.ok());
  EXPECT_NE(a.error().find("active_zones"), std::string::npos);
}

}  // namespace
}  // namespace bass::zone
