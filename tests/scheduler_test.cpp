#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "app/catalog.h"
#include "sched/bass_scheduler.h"
#include "sched/k3s_scheduler.h"
#include "sched/rescheduler.h"
#include "sim/simulation.h"

namespace bass::sched {
namespace {

struct MeshFixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<LiveNetworkView> view;

  // 4 workers in a line with generous links, 4 cores / 12 GB each (the
  // Fig. 11 d710 cluster shape).
  MeshFixture() {
    net::Topology topo;
    for (int i = 0; i < 4; ++i) topo.add_node();
    topo.add_link(0, 1, net::gbps(1));
    topo.add_link(1, 2, net::gbps(1));
    topo.add_link(2, 3, net::gbps(1));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    view = std::make_unique<LiveNetworkView>(*network);
    for (int i = 0; i < 4; ++i) cluster.add_node(i, {4000, 12288, true});
  }
};

TEST(BassScheduler, SchedulesSocialNetwork) {
  MeshFixture f;
  BassScheduler sched(Heuristic::kLongestPath);
  const auto r = sched.schedule(app::social_network_app(), f.cluster, *f.view);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().size(), 27u);
  // CPU capacity respected on every node.
  std::map<net::NodeId, std::int64_t> used;
  const auto g = app::social_network_app();
  for (const auto& [c, n] : r.value()) used[n] += g.component(c).cpu_milli;
  for (const auto& [n, cpu] : used) EXPECT_LE(cpu, 4000);
}

TEST(BassScheduler, NameAndHeuristic) {
  EXPECT_EQ(BassScheduler(Heuristic::kBreadthFirst).name(), "bass-bfs");
  EXPECT_EQ(BassScheduler(Heuristic::kLongestPath).name(), "bass-longest-path");
}

TEST(BassScheduler, RejectsInvalidApp) {
  MeshFixture f;
  app::AppGraph g("cyclic");
  g.add_component({.name = "a"});
  g.add_component({.name = "b"});
  g.add_dependency({.from = 0, .to = 1});
  g.add_dependency({.from = 1, .to = 0});
  const auto r = BassScheduler(Heuristic::kBreadthFirst).schedule(g, f.cluster, *f.view);
  EXPECT_FALSE(r.ok());
}

TEST(BassScheduler, ColocatesHeavyChainsMoreThanK3s) {
  MeshFixture f;
  const auto g = app::social_network_app();
  const auto bass = BassScheduler(Heuristic::kLongestPath).schedule(g, f.cluster, *f.view);
  const auto k3s = K3sScheduler().schedule(g, f.cluster, *f.view);
  ASSERT_TRUE(bass.ok() && k3s.ok());
  auto crossing_bw = [&](const Placement& p) {
    net::Bps total = 0;
    for (const auto& e : g.edges()) {
      if (p.at(e.from) != p.at(e.to)) total += e.bandwidth;
    }
    return total;
  };
  // The whole point of BASS: far less bandwidth crosses the mesh.
  EXPECT_LT(crossing_bw(bass.value()), crossing_bw(k3s.value()));
}

TEST(K3sScheduler, SpreadsAcrossNodes) {
  MeshFixture f;
  app::AppGraph g("spread");
  for (int i = 0; i < 4; ++i) {
    g.add_component({.name = "s" + std::to_string(i), .cpu_milli = 500, .memory_mb = 64});
  }
  const auto r = K3sScheduler().schedule(g, f.cluster, *f.view);
  ASSERT_TRUE(r.ok());
  std::set<net::NodeId> used;
  for (const auto& [c, n] : r.value()) used.insert(n);
  // LeastAllocated puts each pod on the emptiest node: all four nodes used.
  EXPECT_EQ(used.size(), 4u);
}

TEST(K3sScheduler, IgnoresBandwidth) {
  // Two nodes joined by a dead link: k3s still spreads (it cannot see
  // bandwidth), which is exactly the failure mode BASS fixes.
  sim::Simulation sim;
  net::Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, net::kbps(1));
  net::Network network(sim, std::move(topo));
  LiveNetworkView view(network);
  cluster::ClusterState cl;
  cl.add_node(0, {4000, 1024, true});
  cl.add_node(1, {4000, 1024, true});
  app::AppGraph g("pair");
  g.add_component({.name = "a", .cpu_milli = 500, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 500, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(50)});
  const auto r = K3sScheduler().schedule(g, cl, view);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().at(0), r.value().at(1));
}

TEST(K3sScheduler, FailsWhenNothingFits) {
  MeshFixture f;
  app::AppGraph g("huge");
  g.add_component({.name = "x", .cpu_milli = 9000, .memory_mb = 64});
  EXPECT_FALSE(K3sScheduler().schedule(g, f.cluster, *f.view).ok());
}

TEST(Rescheduler, PrefersNodeWithMostDependencies) {
  MeshFixture f;
  app::AppGraph g("deps");
  g.add_component({.name = "m", .cpu_milli = 500, .memory_mb = 64});   // migrating
  g.add_component({.name = "d1", .cpu_milli = 500, .memory_mb = 64});
  g.add_component({.name = "d2", .cpu_milli = 500, .memory_mb = 64});
  g.add_component({.name = "d3", .cpu_milli = 500, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1)});
  g.add_dependency({.from = 0, .to = 2, .bandwidth = net::mbps(1)});
  g.add_dependency({.from = 3, .to = 0, .bandwidth = net::mbps(1)});
  Placement p{{0, 0}, {1, 2}, {2, 2}, {3, 3}};
  // Mark current resource usage.
  f.cluster.allocate(0, 500, 64);
  f.cluster.allocate(2, 1000, 128);
  f.cluster.allocate(3, 500, 64);
  const auto target = pick_migration_target(g, p, 0, f.cluster, *f.view);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, 2);  // two dependencies live on node 2
}

TEST(Rescheduler, NeverReturnsCurrentNode) {
  MeshFixture f;
  app::AppGraph g("pair");
  g.add_component({.name = "m", .cpu_milli = 500, .memory_mb = 64});
  g.add_component({.name = "d", .cpu_milli = 500, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1)});
  Placement p{{0, 1}, {1, 1}};
  const auto target = pick_migration_target(g, p, 0, f.cluster, *f.view);
  ASSERT_TRUE(target.has_value());
  EXPECT_NE(*target, 1);
}

TEST(Rescheduler, PinnedComponentNeverMoves) {
  MeshFixture f;
  app::AppGraph g("pin");
  app::Component c{.name = "clients"};
  c.pinned_node = 2;
  g.add_component(c);
  Placement p{{0, 2}};
  EXPECT_FALSE(pick_migration_target(g, p, 0, f.cluster, *f.view).has_value());
}

TEST(Rescheduler, NoTargetWhenClusterFull) {
  MeshFixture f;
  for (int i = 0; i < 4; ++i) f.cluster.allocate(i, 4000, 1024);
  app::AppGraph g("full");
  g.add_component({.name = "m", .cpu_milli = 500, .memory_mb = 64});
  Placement p{{0, 0}};
  EXPECT_FALSE(pick_migration_target(g, p, 0, f.cluster, *f.view).has_value());
}

TEST(Rescheduler, RespectsBandwidthOnTarget) {
  // Node 3 has a starved link; the component's 5 Mbps edge cannot terminate
  // there, so the rescheduler must pick a different node.
  sim::Simulation sim;
  net::Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node();
  topo.add_link(0, 1, net::mbps(50));
  topo.add_link(0, 2, net::kbps(100));
  net::Network network(sim, std::move(topo));
  LiveNetworkView view(network);
  cluster::ClusterState cl;
  for (int i = 0; i < 3; ++i) cl.add_node(i, {4000, 1024, true});
  app::AppGraph g("bw");
  g.add_component({.name = "m", .cpu_milli = 500, .memory_mb = 64});
  g.add_component({.name = "peer", .cpu_milli = 500, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(5)});
  Placement p{{0, 0}, {1, 0}};
  cl.allocate(0, 1000, 128);
  const auto target = pick_migration_target(g, p, 0, cl, view);
  ASSERT_TRUE(target.has_value());
  EXPECT_EQ(*target, 1);  // node 2 is bandwidth-infeasible
}

}  // namespace
}  // namespace bass::sched

namespace bass::sched {
namespace {

TEST(K3sScheduler, MostAllocatedBinPacks) {
  MeshFixture f;
  app::AppGraph g("pack");
  for (int i = 0; i < 4; ++i) {
    g.add_component({.name = "s" + std::to_string(i), .cpu_milli = 500, .memory_mb = 64});
  }
  const auto r = K3sScheduler(K3sScoring::kMostAllocated).schedule(g, f.cluster, *f.view);
  ASSERT_TRUE(r.ok());
  std::set<net::NodeId> used;
  for (const auto& [c, n] : r.value()) used.insert(n);
  // All four pods pile onto one node (they fit).
  EXPECT_EQ(used.size(), 1u);
}

TEST(K3sScheduler, MostAllocatedStillBandwidthOblivious) {
  // Even the bin-packing variant happily splits a heavy pair when CPU
  // forces it, without consulting the link.
  sim::Simulation sim;
  net::Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, net::kbps(1));
  net::Network network(sim, std::move(topo));
  LiveNetworkView view(network);
  cluster::ClusterState cl;
  cl.add_node(0, {1000, 1024, true});
  cl.add_node(1, {1000, 1024, true});
  app::AppGraph g("pair");
  g.add_component({.name = "a", .cpu_milli = 800, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 800, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(50)});
  const auto r = K3sScheduler(K3sScoring::kMostAllocated).schedule(g, cl, view);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r.value().at(0), r.value().at(1));
}

TEST(K3sScheduler, Names) {
  EXPECT_EQ(K3sScheduler().name(), "k3s-default");
  EXPECT_EQ(K3sScheduler(K3sScoring::kMostAllocated).name(), "k3s-most-allocated");
}

}  // namespace
}  // namespace bass::sched
