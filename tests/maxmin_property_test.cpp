// Property suite for the allocation fast path. Two layers of oracle:
//
//  1. Kernel: the active-set MaxMinSolver must produce rates identical
//     (within kAllocEps-scale tolerance) to the retained brute-force
//     reference kernel on random instances.
//  2. Engine: a Network driven through random topology/flow/capacity churn
//     must report, after every mutation, exactly the rates a from-scratch
//     reference allocation over its current flow set would assign — the
//     invariant that incremental contention-component reallocation is
//     indistinguishable from recomputing the world.
//
// Plus focused checks that a change reprices only its contention component
// (via the flows-touched counter), which is the whole point of the engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "net/network.h"
#include "util/rng.h"

namespace bass::net {
namespace {

constexpr double kUnlimited = static_cast<double>(kUnlimitedRate);

// Rates live on the 1e5..5e7 bps scale; both kernels freeze at kAllocEps
// thresholds, so agreement well below 1 bps is expected.
constexpr double kRateTol = 1.0;

// ---- Layer 1: kernel vs. brute-force reference ----

struct KernelCase {
  std::uint64_t seed;
};

class KernelEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelEquivalence, ActiveSetMatchesReference) {
  util::Rng rng(GetParam().seed);
  const int n_links = static_cast<int>(rng.uniform_int(1, 64));
  const int n_flows = static_cast<int>(rng.uniform_int(1, 128));
  std::vector<double> caps;
  for (int l = 0; l < n_links; ++l) {
    // Include dead links and huge spreads to stress freeze thresholds.
    caps.push_back(rng.chance(0.05) ? 0.0 : rng.uniform(1e5, 50e6));
  }
  std::vector<AllocEntity> entities;
  for (int f = 0; f < n_flows; ++f) {
    AllocEntity e;
    e.demand = rng.chance(0.3) ? kUnlimited : rng.uniform(0.1e6, 40e6);
    if (rng.chance(0.05)) e.demand = 0.0;  // idle entity
    const int path_len = static_cast<int>(rng.uniform_int(1, std::min(n_links, 6)));
    for (int i = 0; i < path_len; ++i) {
      const LinkId l = static_cast<LinkId>(rng.uniform_int(0, n_links - 1));
      if (std::find(e.links.begin(), e.links.end(), l) == e.links.end()) {
        e.links.push_back(l);
      }
    }
    entities.push_back(std::move(e));
  }

  const auto fast = max_min_allocate(caps, entities);
  const auto ref = max_min_allocate_reference(caps, entities);
  ASSERT_EQ(fast.size(), ref.size());
  for (std::size_t f = 0; f < ref.size(); ++f) {
    EXPECT_NEAR(fast[f], ref[f], kRateTol) << "flow " << f;
  }
}

TEST_P(KernelEquivalence, SolverScratchReuseIsClean) {
  // Back-to-back solves on one solver instance must match fresh solves:
  // stamped scratch may not leak state between calls.
  util::Rng rng(GetParam().seed + 7000);
  MaxMinSolver solver;
  for (int round = 0; round < 8; ++round) {
    const int n_links = static_cast<int>(rng.uniform_int(1, 16));
    const int n_flows = static_cast<int>(rng.uniform_int(1, 24));
    std::vector<double> caps;
    for (int l = 0; l < n_links; ++l) caps.push_back(rng.uniform(1e6, 30e6));
    std::vector<AllocEntity> owned;
    std::vector<AllocEntityRef> refs;
    for (int f = 0; f < n_flows; ++f) {
      AllocEntity e;
      e.demand = rng.chance(0.4) ? kUnlimited : rng.uniform(0.5e6, 20e6);
      e.links.push_back(static_cast<LinkId>(rng.uniform_int(0, n_links - 1)));
      owned.push_back(std::move(e));
    }
    for (const AllocEntity& e : owned) refs.push_back({e.demand, &e.links});
    const auto& fast = solver.solve(caps, refs);
    const auto ref = max_min_allocate_reference(caps, owned);
    for (std::size_t f = 0; f < ref.size(); ++f) {
      EXPECT_NEAR(fast[f], ref[f], kRateTol) << "round " << round << " flow " << f;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KernelEquivalence,
                         ::testing::Values(KernelCase{1}, KernelCase{2}, KernelCase{3},
                                           KernelCase{4}, KernelCase{5}, KernelCase{6},
                                           KernelCase{7}, KernelCase{8}, KernelCase{9},
                                           KernelCase{10}, KernelCase{11}, KernelCase{12},
                                           KernelCase{13}, KernelCase{14}, KernelCase{15},
                                           KernelCase{16}, KernelCase{17}, KernelCase{18},
                                           KernelCase{19}, KernelCase{20}));

// ---- Layer 2: incremental engine vs. from-scratch reference ----

// Shadow model of the Network's flow set, independent of its entity cache.
struct Shadow {
  struct Flow {
    NodeId src, dst;
    double demand;  // kUnlimited for backlogged channels
    bool is_stream;
    StreamId stream = 0;
  };
  std::map<std::pair<NodeId, NodeId>, int> channel_backlog;  // queued transfers
  std::vector<std::pair<StreamId, Flow>> streams;            // open mesh streams

  // From-scratch allocation over the current flow set, using the retained
  // reference kernel — the oracle the incremental engine must match.
  std::map<StreamId, double> reference_rates(const Network& net) const {
    std::vector<double> caps(static_cast<std::size_t>(net.topology().link_count()));
    for (int l = 0; l < net.topology().link_count(); ++l) {
      caps[static_cast<std::size_t>(l)] =
          static_cast<double>(net.topology().link(l).capacity);
    }
    std::vector<AllocEntity> entities;
    std::vector<StreamId> ids;
    for (const auto& [pair, backlog] : channel_backlog) {
      if (backlog <= 0) continue;
      entities.push_back({kUnlimited, net.routing().path(pair.first, pair.second)});
      ids.push_back(0);  // channel: no stream id
    }
    for (const auto& [id, flow] : streams) {
      if (flow.demand <= 0.0) continue;
      entities.push_back({flow.demand, net.routing().path(flow.src, flow.dst)});
      ids.push_back(id);
    }
    const auto rates = max_min_allocate_reference(caps, entities);
    std::map<StreamId, double> by_stream;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      if (ids[i] != 0) by_stream[ids[i]] = rates[i];
    }
    return by_stream;
  }
};

struct ChurnCase {
  std::uint64_t seed;
};

class IncrementalEquivalence : public ::testing::TestWithParam<ChurnCase> {};

TEST_P(IncrementalEquivalence, ChurnMatchesFromScratchReference) {
  util::Rng rng(GetParam().seed * 7919);
  sim::Simulation sim;

  // Random topology of 2-4 islands so contention components are real:
  // rings with chords per island, no links between islands.
  Topology topo;
  const int islands = static_cast<int>(rng.uniform_int(2, 4));
  std::vector<std::vector<NodeId>> members(static_cast<std::size_t>(islands));
  for (int i = 0; i < islands; ++i) {
    const int n = static_cast<int>(rng.uniform_int(3, 6));
    for (int k = 0; k < n; ++k) {
      members[static_cast<std::size_t>(i)].push_back(topo.add_node());
    }
    const auto& isle = members[static_cast<std::size_t>(i)];
    for (std::size_t k = 0; k < isle.size(); ++k) {
      topo.add_link(isle[k], isle[(k + 1) % isle.size()],
                    mbps(rng.uniform_int(2, 30)));
    }
    if (isle.size() >= 4 && rng.chance(0.5)) {
      topo.add_link(isle[0], isle[2], mbps(rng.uniform_int(2, 30)));
    }
  }
  // Zero per-hop latency so completion callbacks land in the same
  // run_until() window as the channel deactivation they report — the
  // shadow's channel set then exactly mirrors the engine's at check time.
  NetworkConfig cfg;
  cfg.per_hop_latency = 0;
  Network net(sim, topo, cfg);
  Shadow shadow;

  auto random_pair = [&](NodeId& src, NodeId& dst) {
    const auto& isle =
        members[static_cast<std::size_t>(rng.uniform_int(0, islands - 1))];
    src = isle[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(isle.size()) - 1))];
    do {
      dst = isle[static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(isle.size()) - 1))];
    } while (dst == src);
  };

  auto check = [&] {
    const auto expected = shadow.reference_rates(net);
    for (const auto& [id, rate] : expected) {
      EXPECT_NEAR(static_cast<double>(net.stream_rate(id)), rate, kRateTol)
          << "stream " << id;
    }
    for (int l = 0; l < topo.link_count(); ++l) {
      EXPECT_LE(net.link_allocated(l), net.link_capacity(l) + 1)
          << "link " << l << " oversubscribed";
    }
  };

  // 120 random mutations: stream open/close/demand-change, transfer
  // start/completion (via time advance), capacity churn — sometimes
  // batched like a trace tick.
  for (int step = 0; step < 120; ++step) {
    const double op = rng.uniform(0.0, 1.0);
    if (op < 0.25) {
      NodeId src, dst;
      random_pair(src, dst);
      const Bps demand = rng.chance(0.2) ? 0 : mbps(rng.uniform_int(1, 20));
      const StreamId id = net.open_stream(src, dst, demand);
      shadow.streams.push_back(
          {id, {src, dst, static_cast<double>(demand), true, id}});
    } else if (op < 0.4 && !shadow.streams.empty()) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shadow.streams.size()) - 1));
      net.close_stream(shadow.streams[idx].first);
      shadow.streams.erase(shadow.streams.begin() +
                           static_cast<std::ptrdiff_t>(idx));
    } else if (op < 0.55 && !shadow.streams.empty()) {
      const auto idx = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(shadow.streams.size()) - 1));
      const Bps demand = rng.chance(0.2) ? 0 : mbps(rng.uniform_int(1, 20));
      net.set_stream_demand(shadow.streams[idx].first, demand);
      shadow.streams[idx].second.demand = static_cast<double>(demand);
    } else if (op < 0.7) {
      NodeId src, dst;
      random_pair(src, dst);
      const auto key = std::make_pair(src, dst);
      ++shadow.channel_backlog[key];
      net.start_transfer(src, dst, rng.uniform_int(100'000, 5'000'000),
                         [&shadow, key] { --shadow.channel_backlog[key]; });
    } else if (op < 0.9) {
      // Trace tick: batch-update 1-4 random links.
      Network::BatchUpdate batch(net);
      const int updates = static_cast<int>(rng.uniform_int(1, 4));
      for (int u = 0; u < updates; ++u) {
        const LinkId l =
            static_cast<LinkId>(rng.uniform_int(0, topo.link_count() - 1));
        net.set_link_capacity(l, mbps(rng.uniform_int(1, 30)));
      }
    } else {
      // Let transfers drain / complete so channels churn too.
      sim.run_until(sim.now() + sim::millis(rng.uniform_int(50, 2000)));
    }
    check();
  }
  sim.run_all();
  check();
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalEquivalence,
                         ::testing::Values(ChurnCase{1}, ChurnCase{2}, ChurnCase{3},
                                           ChurnCase{4}, ChurnCase{5}, ChurnCase{6},
                                           ChurnCase{7}, ChurnCase{8}, ChurnCase{9},
                                           ChurnCase{10}, ChurnCase{11}, ChurnCase{12}));

// ---- Contention-component isolation ----

TEST(ContentionComponents, CapacityChangeTouchesOnlyItsComponent) {
  sim::Simulation sim;
  // Two disjoint islands: 0-1-2 (line) and 3-4-5 (line).
  Topology topo;
  for (int i = 0; i < 6; ++i) topo.add_node();
  topo.add_link(0, 1, mbps(10));
  topo.add_link(1, 2, mbps(10));
  topo.add_link(3, 4, mbps(10));
  topo.add_link(4, 5, mbps(10));
  Network net(sim, topo);

  // Island A: 3 flows across 0-1-2. Island B: 2 flows across 3-4-5.
  net.open_stream(0, 2, mbps(6));
  net.open_stream(0, 1, mbps(6));
  net.open_stream(1, 2, mbps(6));
  const StreamId b1 = net.open_stream(3, 5, mbps(6));
  const StreamId b2 = net.open_stream(3, 4, mbps(6));

  // A capacity blip on island A's 0->1 link must reprice only island A.
  const auto before = net.alloc_stats().flows_touched;
  if (auto l = net.topology().link_between(0, 1)) {
    net.set_link_capacity(*l, mbps(4));
  }
  EXPECT_EQ(net.alloc_stats().last_flows_touched, 3);
  EXPECT_EQ(net.alloc_stats().flows_touched - before, 3);
  // Island B's rates are untouched (and still correct).
  EXPECT_NEAR(static_cast<double>(net.stream_rate(b1)), 5e6, kRateTol);
  EXPECT_NEAR(static_cast<double>(net.stream_rate(b2)), 5e6, kRateTol);
}

TEST(ContentionComponents, DisjointPathsOnSharedIslandStayIndependent) {
  sim::Simulation sim;
  // Star: center 0 with leaves 1..4. Flow 1->0 and flow 2->0 share no
  // directed link with flow 0->3, so they are separate components even in
  // one connected island.
  Topology topo;
  for (int i = 0; i < 5; ++i) topo.add_node();
  topo.add_link(0, 1, mbps(10));
  topo.add_link(0, 2, mbps(10));
  topo.add_link(0, 3, mbps(10));
  topo.add_link(0, 4, mbps(10));
  Network net(sim, topo);

  net.open_stream(1, 0, mbps(8));
  net.open_stream(0, 3, mbps(8));
  net.open_stream(0, 4, mbps(8));

  if (auto l = net.topology().link_between(1, 0)) {
    net.set_link_capacity(*l, mbps(3));
  }
  // Only the 1->0 stream shares the dirtied directed link.
  EXPECT_EQ(net.alloc_stats().last_flows_touched, 1);
}

TEST(ContentionComponents, IdleLinkChangeTouchesNoFlows) {
  sim::Simulation sim;
  Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node();
  topo.add_link(0, 1, mbps(10));
  topo.add_link(1, 2, mbps(10));
  Network net(sim, topo);
  net.open_stream(0, 1, mbps(5));

  if (auto l = net.topology().link_between(2, 1)) {
    net.set_link_capacity(*l, mbps(3));  // reverse direction: no flows
  }
  EXPECT_EQ(net.alloc_stats().last_flows_touched, 0);
  EXPECT_GT(net.alloc_stats().reallocations, 0);
}

// ---- SIMD vs scalar: bit-for-bit, not "close" ----
//
// Every SIMD kernel is element-wise, so its results must be IDENTICAL to
// the scalar path — exact double equality, no tolerance. On builds without
// compiled SIMD support set_use_simd(true) stays scalar and these pass
// trivially.

std::vector<double> solve_with(bool simd, const std::vector<double>& caps,
                               const std::vector<AllocEntity>& entities) {
  std::vector<AllocEntityRef> refs;
  refs.reserve(entities.size());
  for (const AllocEntity& e : entities) refs.push_back({e.demand, &e.links});
  MaxMinSolver solver;
  solver.set_use_simd(simd);
  return solver.solve(caps, refs);
}

void expect_bitwise_equal(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "flow " << i << " differs between SIMD and scalar";
  }
}

class SimdEquivalence : public ::testing::TestWithParam<KernelCase> {};

TEST_P(SimdEquivalence, SimdMatchesScalarBitForBit) {
  util::Rng rng(GetParam().seed * 104729);
  const int n_links = static_cast<int>(rng.uniform_int(1, 48));
  const int n_flows = static_cast<int>(rng.uniform_int(1, 96));
  std::vector<double> caps;
  for (int l = 0; l < n_links; ++l) {
    caps.push_back(rng.chance(0.1) ? 0.0 : rng.uniform(1e5, 50e6));
  }
  std::vector<AllocEntity> entities;
  for (int f = 0; f < n_flows; ++f) {
    AllocEntity e;
    e.demand = rng.chance(0.3) ? kUnlimited : rng.uniform(0.1e6, 40e6);
    const int path_len = static_cast<int>(rng.uniform_int(1, std::min(n_links, 7)));
    for (int i = 0; i < path_len; ++i) {
      const LinkId l = static_cast<LinkId>(rng.uniform_int(0, n_links - 1));
      if (std::find(e.links.begin(), e.links.end(), l) == e.links.end()) {
        e.links.push_back(l);
      }
    }
    entities.push_back(std::move(e));
  }
  expect_bitwise_equal(solve_with(true, caps, entities),
                       solve_with(false, caps, entities));
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SimdEquivalence,
                         ::testing::Values(KernelCase{1}, KernelCase{2}, KernelCase{3},
                                           KernelCase{4}, KernelCase{5}, KernelCase{6},
                                           KernelCase{7}, KernelCase{8}, KernelCase{9},
                                           KernelCase{10}, KernelCase{11}, KernelCase{12}));

TEST(SimdEquivalenceEdges, RaggedPathsInfiniteDemandsExtremeCapacities) {
  // Path lengths 0/1/3/5 exercise every vector-tail combination; capacities
  // span 1e-6..1e15 so shares underflow toward the freeze threshold and
  // dwarf every demand respectively; idle entities (demand 0, empty path)
  // ride along legally.
  const std::vector<double> caps = {1e-6, 1e15, 3e7, 5e5, 1e12, 2.5e6, 1e-3};
  std::vector<AllocEntity> entities;
  entities.push_back({0.0, {}});                               // 0 links, idle
  entities.push_back({kUnlimited, {0}});                       // 1 link, tiny cap
  entities.push_back({kUnlimited, {1}});                       // 1 link, huge cap
  entities.push_back({5e6, {2, 3, 4}});                        // 3 links
  entities.push_back({kUnlimited, {0, 2, 4, 5, 6}});           // 5 links
  entities.push_back({3e5, {6, 5, 3, 1, 0}});                  // 5 links reversed
  entities.push_back({0.0, {}});                               // another idle
  entities.push_back({kUnlimited, {3}});
  expect_bitwise_equal(solve_with(true, caps, entities),
                       solve_with(false, caps, entities));
}

TEST(SimdKernels, FairShareClampAndFreezeMatchScalarExactly) {
  // Direct kernel-level cross-check across ragged sizes, including values
  // chosen to produce inf/denormal shares.
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{5}, std::size_t{8}, std::size_t{13}}) {
    std::vector<double> remaining(n), unfrozen(n);
    std::vector<std::uint32_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) {
      remaining[i] = (i % 3 == 0) ? 1e-300 : (i % 3 == 1 ? 1e15 : -4.2e6);
      unfrozen[i] = (i % 4 == 0) ? 0.0 : static_cast<double>(i);  // div by 0 → inf
      idx[i] = static_cast<std::uint32_t>(n - 1 - i);
    }
    std::vector<double> out_simd(n, -1.0), out_scalar(n, -1.0);
    util::simd::fair_share(out_simd.data(), remaining.data(), unfrozen.data(), n, true);
    util::simd::fair_share(out_scalar.data(), remaining.data(), unfrozen.data(), n, false);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out_simd[i], out_scalar[i]) << "fair_share n=" << n << " i=" << i;
    }

    std::vector<double> clamp_simd = remaining, clamp_scalar = remaining;
    clamp_simd.push_back(-0.0);  // -0.0 must map to +0.0 on both paths
    clamp_scalar.push_back(-0.0);
    util::simd::clamp_nonnegative(clamp_simd.data(), clamp_simd.size(), true);
    util::simd::clamp_nonnegative(clamp_scalar.data(), clamp_scalar.size(), false);
    for (std::size_t i = 0; i < clamp_simd.size(); ++i) {
      EXPECT_EQ(clamp_simd[i], clamp_scalar[i]) << "clamp n=" << n << " i=" << i;
      EXPECT_GE(clamp_simd[i], 0.0);
    }

    // freeze_subtract has one implementation (unrolled scalar scatter); run
    // it against a plain loop to pin its semantics.
    std::vector<double> rem_a = remaining, unf_a = unfrozen;
    std::vector<double> rem_b = remaining, unf_b = unfrozen;
    util::simd::freeze_subtract(rem_a.data(), unf_a.data(), idx.data(), n, 7.5e5);
    for (std::size_t j = 0; j < n; ++j) {
      rem_b[idx[j]] -= 7.5e5;
      unf_b[idx[j]] -= 1.0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(rem_a[i], rem_b[i]) << "freeze remaining n=" << n << " i=" << i;
      EXPECT_EQ(unf_a[i], unf_b[i]) << "freeze unfrozen n=" << n << " i=" << i;
    }
  }
}

TEST(ContentionComponents, StatsAccumulate) {
  sim::Simulation sim;
  Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, mbps(10));
  Network net(sim, topo);
  net.open_stream(0, 1, mbps(4));
  net.open_stream(0, 1, mbps(4));
  const auto& stats = net.alloc_stats();
  EXPECT_EQ(stats.reallocations, 2);
  EXPECT_EQ(stats.flows_touched, 1 + 2);  // first solo, then both
  EXPECT_EQ(stats.max_component_flows, 2);
  EXPECT_EQ(stats.full_reallocations, 2);  // one shared link: all flows
  EXPECT_GE(stats.alloc_seconds, 0.0);
}

}  // namespace
}  // namespace bass::net
