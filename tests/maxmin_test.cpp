#include <gtest/gtest.h>

#include <numeric>

#include "net/maxmin.h"
#include "util/rng.h"

namespace bass::net {
namespace {

constexpr double kUnlimited = static_cast<double>(kUnlimitedRate);

TEST(MaxMin, SingleFlowGetsLinkCapacity) {
  const auto r = max_min_allocate({10e6}, {{kUnlimited, {0}}});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_NEAR(r[0], 10e6, 1.0);
}

TEST(MaxMin, TwoFlowsShareEqually) {
  const auto r = max_min_allocate({10e6}, {{kUnlimited, {0}}, {kUnlimited, {0}}});
  EXPECT_NEAR(r[0], 5e6, 1.0);
  EXPECT_NEAR(r[1], 5e6, 1.0);
}

TEST(MaxMin, DemandCapRedistributesToOthers) {
  // Flow 0 wants only 2 Mbps; flow 1 should take the remaining 8.
  const auto r = max_min_allocate({10e6}, {{2e6, {0}}, {kUnlimited, {0}}});
  EXPECT_NEAR(r[0], 2e6, 1.0);
  EXPECT_NEAR(r[1], 8e6, 1.0);
}

TEST(MaxMin, MultiLinkBottleneck) {
  // Flow over links {0,1}; link 1 is the 3 Mbps bottleneck.
  const auto r = max_min_allocate({10e6, 3e6}, {{kUnlimited, {0, 1}}});
  EXPECT_NEAR(r[0], 3e6, 1.0);
}

TEST(MaxMin, ClassicParkingLot) {
  // Long flow crosses both links; two short flows cross one link each.
  // Max-min: everyone gets 5 on link0=10, but link1=10 shared too -> all 5.
  const auto r = max_min_allocate(
      {10e6, 10e6},
      {{kUnlimited, {0, 1}}, {kUnlimited, {0}}, {kUnlimited, {1}}});
  EXPECT_NEAR(r[0], 5e6, 1.0);
  EXPECT_NEAR(r[1], 5e6, 1.0);
  EXPECT_NEAR(r[2], 5e6, 1.0);
}

TEST(MaxMin, AsymmetricParkingLot) {
  // Link 0 = 10, link 1 = 4. The long flow is limited to 2 on link 1
  // (shared with the short flow there); the short flow on link 0 takes 8.
  const auto r = max_min_allocate(
      {10e6, 4e6},
      {{kUnlimited, {0, 1}}, {kUnlimited, {0}}, {kUnlimited, {1}}});
  EXPECT_NEAR(r[0], 2e6, 1.0);
  EXPECT_NEAR(r[1], 8e6, 1.0);
  EXPECT_NEAR(r[2], 2e6, 1.0);
}

TEST(MaxMin, ZeroDemandGetsZero) {
  const auto r = max_min_allocate({10e6}, {{0.0, {}}, {kUnlimited, {0}}});
  EXPECT_EQ(r[0], 0.0);
  EXPECT_NEAR(r[1], 10e6, 1.0);
}

TEST(MaxMin, ZeroCapacityLink) {
  const auto r = max_min_allocate({0.0}, {{kUnlimited, {0}}});
  EXPECT_NEAR(r[0], 0.0, 1e-3);
}

TEST(MaxMin, NoEntities) {
  EXPECT_TRUE(max_min_allocate({10e6}, {}).empty());
}

// ---- Property suite: fairness invariants on random instances ----

struct RandomCase {
  std::uint64_t seed;
};

class MaxMinProperty : public ::testing::TestWithParam<RandomCase> {};

TEST_P(MaxMinProperty, FeasibleEfficientAndFair) {
  util::Rng rng(GetParam().seed);
  const int n_links = static_cast<int>(rng.uniform_int(1, 8));
  const int n_flows = static_cast<int>(rng.uniform_int(1, 12));
  std::vector<double> caps;
  for (int l = 0; l < n_links; ++l) caps.push_back(rng.uniform(1e6, 50e6));
  std::vector<AllocEntity> entities;
  for (int f = 0; f < n_flows; ++f) {
    AllocEntity e;
    e.demand = rng.chance(0.3) ? static_cast<double>(kUnlimitedRate)
                               : rng.uniform(0.5e6, 40e6);
    // Random non-empty subset of links, no duplicates.
    for (int l = 0; l < n_links; ++l) {
      if (rng.chance(0.5)) e.links.push_back(l);
    }
    if (e.links.empty()) e.links.push_back(static_cast<LinkId>(rng.uniform_int(0, n_links - 1)));
    entities.push_back(std::move(e));
  }

  const auto alloc = max_min_allocate(caps, entities);
  ASSERT_EQ(alloc.size(), entities.size());

  // (1) Feasibility: no link oversubscribed, no demand exceeded.
  std::vector<double> used(static_cast<std::size_t>(n_links), 0.0);
  for (std::size_t f = 0; f < entities.size(); ++f) {
    EXPECT_GE(alloc[f], 0.0);
    EXPECT_LE(alloc[f], entities[f].demand * (1 + 1e-9) + 1e-2);
    for (LinkId l : entities[f].links) used[static_cast<std::size_t>(l)] += alloc[f];
  }
  for (int l = 0; l < n_links; ++l) {
    EXPECT_LE(used[static_cast<std::size_t>(l)], caps[static_cast<std::size_t>(l)] + 1.0);
  }

  // (2) Efficiency (Pareto): every flow short of its demand crosses at
  // least one saturated link.
  for (std::size_t f = 0; f < entities.size(); ++f) {
    if (alloc[f] + 1.0 >= entities[f].demand) continue;
    bool bottlenecked = false;
    for (LinkId l : entities[f].links) {
      if (used[static_cast<std::size_t>(l)] >= caps[static_cast<std::size_t>(l)] - 1.0) {
        bottlenecked = true;
        break;
      }
    }
    EXPECT_TRUE(bottlenecked) << "flow " << f << " starved with slack everywhere";
  }

  // (3) Max-min fairness: a flow short of demand must, on some saturated
  // link it crosses, have the (approx) maximal allocation among flows
  // crossing that link.
  for (std::size_t f = 0; f < entities.size(); ++f) {
    if (alloc[f] + 1.0 >= entities[f].demand) continue;
    bool has_bottleneck_where_maximal = false;
    for (LinkId l : entities[f].links) {
      if (used[static_cast<std::size_t>(l)] < caps[static_cast<std::size_t>(l)] - 1.0) continue;
      bool is_max = true;
      for (std::size_t g = 0; g < entities.size(); ++g) {
        if (g == f) continue;
        const bool crosses =
            std::find(entities[g].links.begin(), entities[g].links.end(), l) !=
            entities[g].links.end();
        if (crosses && alloc[g] > alloc[f] + 1.0) {
          is_max = false;
          break;
        }
      }
      if (is_max) {
        has_bottleneck_where_maximal = true;
        break;
      }
    }
    EXPECT_TRUE(has_bottleneck_where_maximal) << "flow " << f << " not max-min fair";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, MaxMinProperty,
                         ::testing::Values(RandomCase{1}, RandomCase{2}, RandomCase{3},
                                           RandomCase{4}, RandomCase{5}, RandomCase{6},
                                           RandomCase{7}, RandomCase{8}, RandomCase{9},
                                           RandomCase{10}, RandomCase{11}, RandomCase{12},
                                           RandomCase{13}, RandomCase{14}, RandomCase{15},
                                           RandomCase{16}, RandomCase{17}, RandomCase{18},
                                           RandomCase{19}, RandomCase{20}));

}  // namespace
}  // namespace bass::net
