#include <gtest/gtest.h>

#include <memory>

#include "profiler/online_profiler.h"
#include "workload/request_engine.h"

namespace bass::profiler {
namespace {

struct Fixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;
  core::DeploymentId id = core::kInvalidDeployment;

  Fixture() {
    net::Topology topo;
    topo.add_node();
    topo.add_node();
    topo.add_link(0, 1, net::mbps(100));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    cluster.add_node(0, {8000, 8192, true});
    cluster.add_node(1, {8000, 8192, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster);

    app::AppGraph g("profiled");
    g.add_component({.name = "front", .cpu_milli = 100, .memory_mb = 64,
                     .service_time = sim::millis(1), .concurrency = 8});
    g.add_component({.name = "back", .cpu_milli = 100, .memory_mb = 64,
                     .service_time = sim::millis(1), .concurrency = 8});
    // Deliberately wrong offline profile: 50 Mbps claimed.
    g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(50),
                      .request_bytes = 4000, .response_bytes = 6000});
    id = orch->deploy(g, core::SchedulerKind::kBassBfs).take();
  }
};

TEST(OnlineProfiler, ConvergesToObservedRate) {
  Fixture f;
  workload::RequestWorkloadConfig cfg;
  cfg.rps = 50;  // 50 * 10 KB * 8 = 4 Mbps of edge traffic
  cfg.client_node = 0;
  workload::RequestEngine engine(*f.orch, f.id, cfg);
  engine.start();

  ProfilerConfig pcfg;
  pcfg.sample_interval = sim::seconds(10);
  pcfg.safety_factor = 1.25;
  OnlineProfiler profiler(*f.orch, f.id, pcfg);
  profiler.start();

  f.sim.run_until(sim::minutes(3));
  engine.stop();
  profiler.stop();

  // 4 Mbps observed * 1.25 safety = ~5 Mbps requirement.
  const double estimate = static_cast<double>(profiler.estimate(0, 1));
  EXPECT_NEAR(estimate, 5e6, 1e6);
  // The deployment's edge weight was rewritten from the bogus 50 Mbps.
  net::Bps deployed = 0;
  for (const auto& e : f.orch->app(f.id).edges()) {
    if (e.from == 0 && e.to == 1) deployed = e.bandwidth;
  }
  EXPECT_NEAR(static_cast<double>(deployed), estimate, 1e5);
  EXPECT_GT(profiler.updates_published(), 0);
}

TEST(OnlineProfiler, EnvelopeTracksSurgeImmediately) {
  Fixture f;
  workload::RequestWorkloadConfig cfg;
  cfg.rps = 10;
  cfg.client_node = 0;
  workload::RequestEngine engine(*f.orch, f.id, cfg);
  engine.start();
  OnlineProfiler profiler(*f.orch, f.id, {.sample_interval = sim::seconds(5)});
  profiler.start();
  f.sim.run_until(sim::minutes(1));
  const auto low = profiler.estimate(0, 1);

  // Surge: feed extra traffic directly into the stats (a burst).
  f.orch->traffic_stats(f.id).record(0, 1, 20'000'000);  // 20 MB burst
  f.sim.run_until(sim::minutes(1) + sim::seconds(6));
  const auto high = profiler.estimate(0, 1);
  EXPECT_GT(high, low * 5);
}

TEST(OnlineProfiler, EnvelopeDecaysAfterBurst) {
  Fixture f;
  OnlineProfiler profiler(*f.orch, f.id,
                          {.sample_interval = sim::seconds(5), .release = 0.2});
  profiler.start();
  f.orch->traffic_stats(f.id).record(0, 1, 50'000'000);
  f.sim.run_until(sim::seconds(6));
  const auto peak = profiler.estimate(0, 1);
  ASSERT_GT(peak, 0);
  f.sim.run_until(sim::minutes(3));
  const auto decayed = profiler.estimate(0, 1);
  EXPECT_LT(decayed, peak / 2);
  EXPECT_GT(decayed, 0);
}

TEST(OnlineProfiler, NoUpdatesBeforeWarmup) {
  Fixture f;
  ProfilerConfig pcfg;
  pcfg.sample_interval = sim::seconds(10);
  pcfg.warmup_samples = 100;  // effectively never within this test
  OnlineProfiler profiler(*f.orch, f.id, pcfg);
  profiler.start();
  f.orch->traffic_stats(f.id).record(0, 1, 10'000'000);
  f.sim.run_until(sim::minutes(2));
  EXPECT_EQ(profiler.updates_published(), 0);
  // The original (wrong) offline profile is untouched.
  EXPECT_EQ(f.orch->app(f.id).edges()[0].bandwidth, net::mbps(50));
}

TEST(OnlineProfiler, StopHaltsSampling) {
  Fixture f;
  OnlineProfiler profiler(*f.orch, f.id, {.sample_interval = sim::seconds(5)});
  profiler.start();
  f.sim.run_until(sim::seconds(21));
  profiler.stop();
  const int samples = profiler.samples_taken();
  EXPECT_EQ(samples, 4);
  f.sim.run_until(sim::minutes(2));
  EXPECT_EQ(profiler.samples_taken(), samples);
}

TEST(AppGraph, SetEdgeBandwidth) {
  app::AppGraph g("mut");
  g.add_component({.name = "a"});
  g.add_component({.name = "b"});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1)});
  EXPECT_TRUE(g.set_edge_bandwidth(0, 1, net::mbps(7)));
  EXPECT_EQ(g.edges()[0].bandwidth, net::mbps(7));
  EXPECT_FALSE(g.set_edge_bandwidth(1, 0, net::mbps(7)));  // no such edge
}

}  // namespace
}  // namespace bass::profiler
