#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"

namespace bass::net {
namespace {

struct Fixture {
  sim::Simulation sim;
  std::unique_ptr<Network> net;

  // Line: 0 -(10 Mbps)- 1 -(10 Mbps)- 2
  explicit Fixture(Bps cap = mbps(10)) {
    Topology t;
    const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node();
    t.add_link(a, b, cap);
    t.add_link(b, c, cap);
    net = std::make_unique<Network>(sim, std::move(t));
  }
};

TEST(Network, SingleTransferDrainTime) {
  Fixture f;
  sim::Time done_at = -1;
  // 10 Mbit over a 10 Mbps 1-hop path: 1 s drain + 1 ms hop latency.
  f.net->start_transfer(0, 1, 10'000'000 / 8, [&] { done_at = f.sim.now(); });
  f.sim.run_all();
  EXPECT_NEAR(sim::to_seconds(done_at), 1.001, 0.001);
}

TEST(Network, MultiHopAddsLatencyOnly) {
  Fixture f;
  sim::Time done_at = -1;
  f.net->start_transfer(0, 2, 10'000'000 / 8, [&] { done_at = f.sim.now(); });
  f.sim.run_all();
  // Flow-level model: one drain at the bottleneck rate plus 2 hops latency.
  EXPECT_NEAR(sim::to_seconds(done_at), 1.002, 0.001);
}

TEST(Network, TwoChannelsShareALink) {
  Fixture f;
  sim::Time done0 = -1, done1 = -1;
  // Both cross link 0->1. Each should get ~5 Mbps: 10 Mbit takes ~2 s.
  f.net->start_transfer(0, 1, 10'000'000 / 8, [&] { done0 = f.sim.now(); });
  f.net->start_transfer(0, 2, 10'000'000 / 8, [&] { done1 = f.sim.now(); });
  f.sim.run_all();
  EXPECT_NEAR(sim::to_seconds(done0), 2.0, 0.02);
  // After the first finishes, the second speeds up to 10 Mbps — but both
  // had the same size so they finish nearly together.
  EXPECT_NEAR(sim::to_seconds(done1), 2.0, 0.02);
}

TEST(Network, FifoWithinChannel) {
  Fixture f;
  std::vector<int> completed;
  f.net->start_transfer(0, 1, 1'000'000, [&] { completed.push_back(1); });
  f.net->start_transfer(0, 1, 1'000, [&] { completed.push_back(2); });
  f.sim.run_all();
  // Same channel is FIFO: the big head transfer completes first.
  EXPECT_EQ(completed, (std::vector<int>{1, 2}));
}

TEST(Network, CapacityChangeSlowsTransfer) {
  Fixture f;
  sim::Time done_at = -1;
  f.net->start_transfer(0, 1, 10'000'000 / 8, [&] { done_at = f.sim.now(); });
  // At t=0.5 s, halve the link: remaining 5 Mbit at 5 Mbps -> 1 more second.
  f.sim.schedule_at(sim::seconds_f(0.5), [&] {
    f.net->set_link_capacity_between(0, 1, mbps(5));
  });
  f.sim.run_all();
  EXPECT_NEAR(sim::to_seconds(done_at), 1.501, 0.01);
}

TEST(Network, ZeroCapacityStallsThenResumes) {
  Fixture f;
  sim::Time done_at = -1;
  f.net->start_transfer(0, 1, 10'000'000 / 8, [&] { done_at = f.sim.now(); });
  f.sim.schedule_at(sim::seconds_f(0.5), [&] {
    f.net->set_link_capacity_between(0, 1, 0);
  });
  f.sim.schedule_at(sim::seconds_f(10.5), [&] {
    f.net->set_link_capacity_between(0, 1, mbps(10));
  });
  f.sim.run_all();
  // 0.5 s at 10 Mbps, 10 s stalled, then 0.5 s to finish.
  EXPECT_NEAR(sim::to_seconds(done_at), 11.0, 0.02);
}

TEST(Network, LoopbackTransferIsFast) {
  Fixture f;
  sim::Time done_at = -1;
  f.net->start_transfer(1, 1, 1'000'000, [&] { done_at = f.sim.now(); });
  f.sim.run_all();
  EXPECT_LT(done_at, sim::millis(2));
  EXPECT_GE(done_at, 0);
}

TEST(Network, CancelQueuedTransfer) {
  Fixture f;
  bool head_done = false, second_done = false;
  f.net->start_transfer(0, 1, 1'000'000, [&] { head_done = true; });
  const TransferId second =
      f.net->start_transfer(0, 1, 1'000'000, [&] { second_done = true; });
  EXPECT_TRUE(f.net->cancel_transfer(second));
  EXPECT_FALSE(f.net->cancel_transfer(second));
  f.sim.run_all();
  EXPECT_TRUE(head_done);
  EXPECT_FALSE(second_done);
}

TEST(Network, CancelHeadPromotesNext) {
  Fixture f;
  bool second_done = false;
  const TransferId head = f.net->start_transfer(0, 1, 100'000'000, [] {});
  f.net->start_transfer(0, 1, 1'000'000 / 8, [&] { second_done = true; });
  f.sim.schedule_at(sim::seconds(1), [&] { f.net->cancel_transfer(head); });
  f.sim.run_all();
  EXPECT_TRUE(second_done);
  // 1 Mbit at 10 Mbps from t=1: finishes ~t=1.1, far before the 80 s the
  // cancelled head would have taken.
  EXPECT_LT(f.sim.now(), sim::seconds(3));
}

TEST(Network, StreamGetsDemandWhenUncontended) {
  Fixture f;
  const StreamId s = f.net->open_stream(0, 1, mbps(3));
  f.sim.run_until(sim::seconds(1));
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(s)), 3e6, 1e3);
  f.net->close_stream(s);
  EXPECT_EQ(f.net->stream_rate(s), 0);
}

TEST(Network, StreamSharesWithTransfers) {
  Fixture f;
  const StreamId s = f.net->open_stream(0, 1, mbps(8));
  sim::Time done_at = -1;
  f.net->start_transfer(0, 1, 10'000'000 / 8, [&] { done_at = f.sim.now(); });
  // Max-min: stream capped at 5 (fair share), transfer gets 5 Mbps.
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(s)), 5e6, 1e4);
  f.sim.run_all();
  EXPECT_NEAR(sim::to_seconds(done_at), 2.0, 0.05);
  // After the transfer completes the stream returns to full demand.
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(s)), 8e6, 1e4);
}

TEST(Network, StreamDemandChange) {
  Fixture f;
  const StreamId s = f.net->open_stream(0, 1, mbps(2));
  f.net->set_stream_demand(s, mbps(7));
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(s)), 7e6, 1e3);
}

TEST(Network, StaleStreamIdsAreInertAfterSlotReuse) {
  Fixture f;
  const StreamId first = f.net->open_stream(0, 1, mbps(3));
  f.net->close_stream(first);
  // The slot is reused, but the generation tag makes the new id distinct
  // and the old one stale.
  const StreamId second = f.net->open_stream(0, 1, mbps(5));
  EXPECT_NE(first, second);
  EXPECT_EQ(f.net->stream_rate(first), 0);
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(second)), 5e6, 1e3);

  // Operations through the stale id must not disturb the live stream.
  f.net->set_stream_demand(first, mbps(1));
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(second)), 5e6, 1e3);
  f.net->close_stream(first);  // double close: safe no-op
  EXPECT_EQ(f.net->stream_count(), 1u);
  EXPECT_NEAR(static_cast<double>(f.net->stream_rate(second)), 5e6, 1e3);

  f.net->close_stream(second);
  EXPECT_EQ(f.net->stream_count(), 0u);
  EXPECT_EQ(f.net->stream_rate(second), 0);
}

TEST(Network, StreamSlotReuseSurvivesHeavyChurn) {
  Fixture f;
  std::vector<StreamId> live;
  std::vector<StreamId> dead;
  for (int round = 0; round < 50; ++round) {
    live.push_back(f.net->open_stream(0, 1, mbps(1 + round % 5)));
    if (live.size() > 3) {
      f.net->close_stream(live.front());
      dead.push_back(live.front());
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(f.net->stream_count(), live.size());
  for (StreamId id : dead) {
    EXPECT_EQ(f.net->stream_rate(id), 0) << "stale id " << id << " resolved";
  }
  for (StreamId id : live) {
    EXPECT_GT(f.net->stream_rate(id), 0) << "live id " << id << " lost";
  }
}

TEST(Network, TagByteAccounting) {
  Fixture f;
  f.net->start_transfer(0, 1, 500'000, [] {}, /*tag=*/42);
  f.sim.run_all();
  EXPECT_NEAR(static_cast<double>(f.net->take_tag_bytes(42)), 500'000, 10);
  EXPECT_EQ(f.net->take_tag_bytes(42), 0);  // window resets
  EXPECT_NEAR(static_cast<double>(f.net->total_tag_bytes(42)), 500'000, 10);
}

TEST(Network, StreamTagAccountingMatchesRateTimesTime) {
  Fixture f;
  f.net->open_stream(0, 1, mbps(4), /*tag=*/7);
  f.sim.run_until(sim::seconds(10));
  // 4 Mbps for 10 s = 5 MB.
  EXPECT_NEAR(static_cast<double>(f.net->take_tag_bytes(7)), 5e6, 5e4);
}

TEST(Network, PathCapacityAndAvailable) {
  Fixture f;
  EXPECT_EQ(f.net->path_capacity(0, 2), mbps(10));
  f.net->set_link_capacity_between(1, 2, mbps(4));
  EXPECT_EQ(f.net->path_capacity(0, 2), mbps(4));
  // An unbounded stream on 0->1 leaves the 0->2 path bottlenecked at 1->2.
  f.net->open_stream(0, 1, mbps(8));
  const Bps avail = f.net->path_available(0, 2);
  // Phantom flow would get max-min share: link0 10 shared (phantom vs 8 Mbps
  // stream -> 5 each, stream capped at 8 but fair share 5) => phantom gets
  // min(5 on link0... then 4 on link 1->2) = 4.
  EXPECT_NEAR(static_cast<double>(avail), 4e6, 1e5);
}

TEST(Network, BatchUpdateCoalescesReallocations) {
  Fixture f;
  f.net->open_stream(0, 1, mbps(5));
  const auto before = f.net->reallocation_count();
  {
    Network::BatchUpdate batch(*f.net);
    f.net->set_link_capacity_between(0, 1, mbps(7));
    f.net->set_link_capacity_between(1, 2, mbps(7));
  }
  EXPECT_EQ(f.net->reallocation_count(), before + 1);
}

TEST(Network, AllocStatsTrackComponentScope) {
  Fixture f;
  const AllocStats& stats = f.net->alloc_stats();
  const auto base_full = stats.full_reallocations;

  // First stream is the whole active set: a full pass touching one flow.
  f.net->open_stream(0, 1, mbps(4));
  EXPECT_EQ(stats.reallocations, 1);
  EXPECT_EQ(stats.last_flows_touched, 1);
  EXPECT_EQ(stats.full_reallocations, base_full + 1);

  // Second stream lives on the other link: disjoint contention component,
  // so the pass reprices only the new flow and is not "full".
  f.net->open_stream(1, 2, mbps(4));
  EXPECT_EQ(stats.reallocations, 2);
  EXPECT_EQ(stats.last_flows_touched, 1);
  EXPECT_EQ(stats.full_reallocations, base_full + 1);

  // A stream spanning both links welds everything into one component.
  f.net->open_stream(0, 2, mbps(4));
  EXPECT_EQ(stats.reallocations, 3);
  EXPECT_EQ(stats.last_flows_touched, 3);
  EXPECT_EQ(stats.last_links_touched, 2);
  EXPECT_EQ(stats.max_component_flows, 3);
  // Cumulative touch count is the sum over the three passes.
  EXPECT_EQ(stats.flows_touched, 1 + 1 + 3);
  EXPECT_GT(stats.alloc_seconds, 0.0);
}

TEST(Network, AllocStatsBatchedTickCountsOnePass) {
  Fixture f;
  f.net->open_stream(0, 2, mbps(4));
  const AllocStats& stats = f.net->alloc_stats();
  const auto passes = stats.reallocations;
  const auto touched = stats.flows_touched;
  {
    Network::BatchUpdate batch(*f.net);
    f.net->set_link_capacity_between(0, 1, mbps(6));
    f.net->set_link_capacity_between(1, 2, mbps(6));
  }
  // One batched tick = one pass repricing the single affected flow once.
  EXPECT_EQ(stats.reallocations, passes + 1);
  EXPECT_EQ(stats.flows_touched, touched + 1);
  EXPECT_EQ(stats.last_flows_touched, 1);
}

TEST(Network, BatchedCapacityChangeSettlesAccountingExactly) {
  Fixture f;
  // 4 Mbps stream for 5 s, then a batched two-link capacity drop pins it to
  // 2 Mbps for 5 s. Byte accounting must settle exactly once at the old
  // rate before the new rates apply: (4*5 + 2*5) Mbit = 3.75 MB.
  f.net->open_stream(0, 2, mbps(4), /*tag=*/9);
  f.sim.schedule_at(sim::seconds(5), [&] {
    Network::BatchUpdate batch(*f.net);
    f.net->set_link_capacity_between(0, 1, mbps(2));
    f.net->set_link_capacity_between(1, 2, mbps(2));
  });
  f.sim.run_until(sim::seconds(10));
  EXPECT_NEAR(static_cast<double>(f.net->take_tag_bytes(9)), 3.75e6, 2e4);
}

TEST(Network, ConservationAcrossManyTransfers) {
  Fixture f;
  // 20 staggered transfers in alternating directions; total delivered bytes
  // must equal total sent.
  std::int64_t sent = 0;
  int completed = 0;
  for (int i = 0; i < 20; ++i) {
    const std::int64_t bytes = 50'000 + 10'000 * i;
    const NodeId src = (i % 2 == 0) ? 0 : 2;
    const NodeId dst = (i % 2 == 0) ? 2 : 0;
    sent += bytes;
    f.sim.schedule_at(sim::millis(100 * i), [&f, bytes, src, dst, &completed] {
      f.net->start_transfer(src, dst, bytes, [&completed] { ++completed; });
    });
  }
  f.sim.run_all();
  EXPECT_EQ(completed, 20);
  EXPECT_NEAR(static_cast<double>(f.net->total_bytes_delivered()),
              static_cast<double>(sent), 100.0);
}

}  // namespace
}  // namespace bass::net
