// End-to-end integration: the full BASS stack (trace player -> network ->
// monitor -> orchestrator -> controller -> workload engines) on the
// emulated CityLab mesh, asserting system-level invariants rather than
// exact numbers.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "fault/invariants.h"
#include "profiler/online_profiler.h"
#include "trace/citylab.h"
#include "workload/pair_stream.h"
#include "workload/request_engine.h"
#include "workload/video_conference.h"

namespace bass {
namespace {

struct MeshRig {
  sim::Simulation sim;
  trace::CityLabMesh mesh;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<monitor::NetMonitor> netmon;
  std::unique_ptr<core::Orchestrator> orch;
  std::unique_ptr<fault::Invariants> invariants;
  std::unique_ptr<trace::TracePlayer> player;

  explicit MeshRig(bool fades, std::uint64_t seed = 7) {
    mesh = trace::citylab_mesh();
    network = std::make_unique<net::Network>(sim, mesh.topology);
    cluster.add_node(0, {8000, 8192, false});
    cluster.add_node(1, {8000, 6144, true});
    cluster.add_node(2, {8000, 6144, true});
    cluster.add_node(3, {8000, 6144, true});
    cluster.add_node(4, {5000, 6144, true});
    core::OrchestratorConfig cfg;
    cfg.restart_duration = sim::seconds(10);
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster, cfg);
    // Continuous safety checking after every controller round; tests assert
    // clean() so any invariant regression fails loudly.
    invariants = std::make_unique<fault::Invariants>(*orch);
    invariants->attach();
    netmon = std::make_unique<monitor::NetMonitor>(*network);
    orch->attach_monitor(netmon.get());
    player = std::make_unique<trace::TracePlayer>(*network);
    trace::bind_citylab_traces(mesh, *player, sim::minutes(12), fades, seed);
    netmon->start();
    player->start();
  }
};

TEST(Integration, SocialNetworkSurvivesTheTrace) {
  MeshRig rig(/*fades=*/true);
  const auto id = rig.orch
                      ->deploy(app::social_network_app(0.25),
                               core::SchedulerKind::kBassAuto)
                      .take();
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(30);
  params.utilization_threshold = 0.5;
  params.headroom_frac = 0.2;
  params.cooldown = sim::seconds(30);
  params.min_migration_gap = sim::seconds(90);
  rig.orch->enable_migration(id, params);

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 100;
  cfg.client_node = 0;
  cfg.max_in_flight = 1000;
  cfg.seed = 3;
  workload::RequestEngine engine(*rig.orch, id, cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(10));
  engine.stop();
  rig.sim.run_until(sim::minutes(12));

  // Liveness: the overwhelming majority of issued requests complete, every
  // in-flight request drains, and every component ends the run up.
  EXPECT_GT(engine.completed(), engine.issued() * 95 / 100);
  EXPECT_EQ(engine.in_flight(), 0);
  for (app::ComponentId c = 0; c < 27; ++c) {
    EXPECT_TRUE(rig.orch->is_up(id, c));
    EXPECT_NE(rig.orch->node_of(id, c), net::kInvalidNode);
  }
  // Resource accounting closed: total allocated CPU equals the app's.
  std::int64_t cpu = 0;
  for (net::NodeId n = 0; n <= 4; ++n) cpu += rig.cluster.usage(n).cpu_milli;
  EXPECT_EQ(cpu, app::social_network_app(0.25).total_cpu_milli());
  // Control-plane node hosts nothing.
  EXPECT_EQ(rig.cluster.usage(0).cpu_milli, 0);
  rig.invariants->check_now();
  EXPECT_EQ(rig.invariants->violations(), 0);
}

TEST(Integration, MigrationsOnlyMoveUnpinnedComponents) {
  MeshRig rig(/*fades=*/true, /*seed=*/11);
  const std::vector<std::pair<net::NodeId, int>> groups{{1, 3}, {2, 3}, {3, 3}, {4, 3}};
  auto graph = app::video_conference_app(groups, net::kbps(250));
  sched::Placement manual;
  manual[graph.find("pion-sfu")] = 3;
  const auto id = rig.orch->deploy_with_placement(std::move(graph), manual).take();
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(30);
  params.utilization_threshold = 0.65;
  params.headroom_frac = 0.2;
  params.cooldown = sim::seconds(30);
  params.min_migration_gap = sim::minutes(2);
  rig.orch->enable_migration(id, params);

  workload::VideoConferenceConfig cfg;
  cfg.groups = {{1, 3}, {2, 3}, {3, 3}, {4, 3}};
  cfg.per_stream = net::kbps(250);
  workload::VideoConferenceEngine engine(*rig.orch, id, cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(10));
  engine.stop();

  const auto& g = rig.orch->app(id);
  for (const auto& m : rig.orch->migration_events()) {
    EXPECT_FALSE(g.component(m.component).pinned_node.has_value());
    EXPECT_NE(m.from, m.to);
  }
  // Client groups never moved from their pinned nodes.
  for (const auto& [node, count] : groups) {
    const auto cg = g.find("clients@node" + std::to_string(node));
    EXPECT_EQ(rig.orch->node_of(id, cg), node);
  }
  rig.invariants->check_now();
  EXPECT_EQ(rig.invariants->violations(), 0);
}

TEST(Integration, ProfilerAndControllerCoexist) {
  MeshRig rig(/*fades=*/false);
  const auto id = rig.orch
                      ->deploy(app::social_network_app(0.25),
                               core::SchedulerKind::kBassLongestPath)
                      .take();
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(30);
  rig.orch->enable_migration(id, params);
  profiler::OnlineProfiler prof(*rig.orch, id, {.sample_interval = sim::seconds(15)});
  prof.start();

  workload::RequestWorkloadConfig cfg;
  cfg.rps = 100;
  cfg.client_node = 0;
  cfg.max_in_flight = 1000;
  workload::RequestEngine engine(*rig.orch, id, cfg);
  engine.start();
  rig.sim.run_until(sim::minutes(5));
  engine.stop();
  prof.stop();
  rig.sim.run_until(sim::minutes(7));

  // The profiler rewrote at least the busy edges, with sane magnitudes
  // (well under the 400-RPS offline profile it replaced).
  EXPECT_GT(prof.updates_published(), 0);
  const auto& g = rig.orch->app(id);
  const auto nginx = g.find("nginx-web-server");
  const auto home = g.find("home-timeline-service");
  net::Bps bw = 0;
  for (const auto& e : g.edges()) {
    if (e.from == nginx && e.to == home) bw = e.bandwidth;
  }
  EXPECT_GT(bw, net::mbps(2));
  EXPECT_LT(bw, net::mbps(40));
  rig.invariants->check_now();
  EXPECT_EQ(rig.invariants->violations(), 0);
}

TEST(Integration, MonitorCacheConvergesToTraceReality) {
  MeshRig rig(/*fades=*/false, /*seed=*/5);
  rig.sim.run_until(sim::minutes(6));  // past a full refresh cycle
  // Every link's cached capacity is within 40% of the live trace value
  // (the trace keeps moving between probes, so exactness is impossible).
  for (int l = 0; l < rig.network->topology().link_count(); ++l) {
    const double cached = static_cast<double>(rig.netmon->cached_capacity(l));
    const double live = static_cast<double>(rig.network->topology().link(l).capacity);
    EXPECT_GT(cached, live * 0.6) << "link " << l;
    EXPECT_LT(cached, live * 1.7) << "link " << l;
  }
}

TEST(Integration, DeterministicReplay) {
  auto run = [] {
    MeshRig rig(/*fades=*/true, /*seed=*/9);
    const auto id = rig.orch
                        ->deploy(app::social_network_app(0.25),
                                 core::SchedulerKind::kBassBfs)
                        .take();
    controller::MigrationParams params;
    params.evaluation_interval = sim::seconds(30);
    rig.orch->enable_migration(id, params);
    workload::RequestWorkloadConfig cfg;
    cfg.rps = 100;
    cfg.client_node = 0;
    cfg.max_in_flight = 1000;
    cfg.seed = 4;
    workload::RequestEngine engine(*rig.orch, id, cfg);
    engine.start();
    rig.sim.run_until(sim::minutes(5));
    engine.stop();
    rig.sim.run_until(sim::minutes(6));
    return std::tuple<std::int64_t, double, std::size_t>(
        engine.completed(), engine.latencies().mean_ms(),
        rig.orch->migration_events().size());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_DOUBLE_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_EQ(std::get<2>(a), std::get<2>(b));
}

}  // namespace
}  // namespace bass

namespace bass {
namespace {

// The Fig. 8 causal chain as a regression test: capacity drop -> probed
// headroom violation -> starved pair -> migrate away; reverse degradation
// -> migrate back. Uses a compressed version of the bench timeline.
TEST(Integration, Fig8WalkthroughMigratesThereAndBack) {
  const auto mesh = trace::citylab_mesh();
  sim::Simulation sim;
  net::Network network(sim, mesh.topology);
  cluster::ClusterState cluster;
  cluster.add_node(0, {8000, 8192, false});
  for (net::NodeId w : mesh.workers) cluster.add_node(w, {12000, 8192, true});
  core::OrchestratorConfig orch_cfg;
  orch_cfg.restart_duration = sim::seconds(20);
  core::Orchestrator orch(sim, network, cluster, orch_cfg);
  fault::Invariants invariants(orch);
  invariants.attach();
  monitor::NetMonitor netmon(network);
  orch.attach_monitor(&netmon);
  netmon.start();

  app::AppGraph g("pair");
  app::Component anchor{.name = "anchor", .cpu_milli = 12000, .memory_mb = 1024};
  anchor.pinned_node = 3;
  g.add_component(anchor);
  g.add_component({.name = "worker", .cpu_milli = 500, .memory_mb = 128});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  const auto id = orch.deploy_with_placement(std::move(g), {{0, 3}, {1, 4}}).take();

  controller::MigrationParams params;
  params.utilization_threshold = 0.50;
  params.headroom_frac = 0.16;
  params.evaluation_interval = sim::seconds(30);
  params.cooldown = sim::seconds(60);
  params.min_migration_gap = sim::seconds(120);
  orch.enable_migration(id, params);

  workload::PairStreamConfig pcfg{.from = 0, .to = 1, .demand = net::mbps(8)};
  workload::PairStreamEngine pair(orch, id, pcfg);
  pair.start();

  sim.schedule_at(sim::seconds(200), [&] {
    network.set_link_capacity_between(3, 4, net::mbps(7));
  });
  sim.schedule_at(sim::seconds(700), [&] {
    network.set_link_capacity_between(1, 3, net::mbps(6));
    network.set_link_capacity_between(3, 4, net::mbps(25));
  });

  sim.run_until(sim::minutes(20));
  pair.stop();
  netmon.stop();

  // The paper's round trip: the worker leaves node4 when its link dies and
  // ends up back on node4 once it recovers. (The compressed timeline may
  // route through one intermediate node while the capacity cache
  // refreshes.)
  const auto& events = orch.migration_events();
  ASSERT_GE(events.size(), 2u);
  ASSERT_LE(events.size(), 3u);
  EXPECT_EQ(events.front().from, 4);
  EXPECT_EQ(events.back().to, 4);
  // Goodput recovered after each move (full demand within the last phase).
  EXPECT_GT(pair.goodput_series().mean_in(sim::minutes(18), sim::minutes(20)), 0.95);
  // Goodput was hurt during the first degradation window before recovery.
  EXPECT_LT(pair.goodput_series().mean_in(sim::seconds(210), sim::seconds(260)), 0.95);
  invariants.check_now();
  EXPECT_EQ(invariants.violations(), 0);
}

}  // namespace
}  // namespace bass
