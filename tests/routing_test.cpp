#include <gtest/gtest.h>

#include "net/network.h"
#include "net/routing.h"

namespace bass::net {
namespace {

// Line topology a - b - c - d.
Topology line4() {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node(), d = t.add_node();
  t.add_link(a, b, mbps(10));
  t.add_link(b, c, mbps(10));
  t.add_link(c, d, mbps(10));
  return t;
}

TEST(Routing, DirectNeighbor) {
  Topology t = line4();
  RoutingTable rt(t);
  EXPECT_EQ(rt.hops(0, 1), 1);
  ASSERT_EQ(rt.path(0, 1).size(), 1u);
  EXPECT_EQ(t.link(rt.path(0, 1)[0]).dst, 1);
}

TEST(Routing, MultiHopPathIsConnected) {
  Topology t = line4();
  RoutingTable rt(t);
  const auto& p = rt.path(0, 3);
  ASSERT_EQ(p.size(), 3u);
  NodeId at = 0;
  for (LinkId l : p) {
    EXPECT_EQ(t.link(l).src, at);
    at = t.link(l).dst;
  }
  EXPECT_EQ(at, 3);
}

TEST(Routing, SelfPathIsEmpty) {
  Topology t = line4();
  RoutingTable rt(t);
  EXPECT_TRUE(rt.path(2, 2).empty());
  EXPECT_EQ(rt.hops(2, 2), 0);
  EXPECT_TRUE(rt.reachable(2, 2));
}

TEST(Routing, PrefersShortestHopCount) {
  // Square with a diagonal: a-b, b-c, a-c. a->c should use the diagonal.
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node();
  t.add_link(a, b, mbps(10));
  t.add_link(b, c, mbps(10));
  t.add_link(a, c, mbps(1));
  RoutingTable rt(t);
  EXPECT_EQ(rt.hops(a, c), 1);
}

TEST(Routing, UnreachablePartition) {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node(), d = t.add_node();
  t.add_link(a, b, mbps(10));
  t.add_link(c, d, mbps(10));
  RoutingTable rt(t);
  EXPECT_FALSE(rt.reachable(a, c));
  EXPECT_TRUE(rt.path(a, c).empty());
  EXPECT_TRUE(rt.reachable(a, b));
}

TEST(Routing, DeterministicTieBreak) {
  // Two equal-length routes a->d: via b or via c. BFS explores out-links in
  // insertion order, so the route must go via b (added first) every time.
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node(), d = t.add_node();
  t.add_link(a, b, mbps(10));
  t.add_link(a, c, mbps(10));
  t.add_link(b, d, mbps(10));
  t.add_link(c, d, mbps(10));
  RoutingTable rt(t);
  ASSERT_EQ(rt.path(a, d).size(), 2u);
  EXPECT_EQ(t.link(rt.path(a, d)[0]).dst, b);
  RoutingTable rt2(t);
  EXPECT_EQ(rt.path(a, d), rt2.path(a, d));
}

TEST(Routing, SymmetricReachability) {
  Topology t = line4();
  RoutingTable rt(t);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_EQ(rt.hops(u, v), rt.hops(v, u));
    }
  }
}

}  // namespace
}  // namespace bass::net

namespace bass::net {
namespace {

// Diamond: a-b-d is wide (20,20), a-c-d is narrow (5,5), plus a direct
// skinny a-d link (2).
Topology diamond() {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node(), d = t.add_node();
  t.add_link(a, b, mbps(20));
  t.add_link(b, d, mbps(20));
  t.add_link(a, c, mbps(5));
  t.add_link(c, d, mbps(5));
  t.add_link(a, d, mbps(2));
  return t;
}

TEST(WidestPath, PrefersFatTwoHopOverSkinnyDirect) {
  Topology t = diamond();
  RoutingTable min_hop(t, RoutingPolicy::kMinHop);
  RoutingTable widest(t, RoutingPolicy::kWidestPath);
  // Min-hop takes the direct 2 Mbps link; widest goes via b at 20 Mbps.
  EXPECT_EQ(min_hop.hops(0, 3), 1);
  ASSERT_EQ(widest.hops(0, 3), 2);
  Bps bottleneck = kUnlimitedRate;
  for (LinkId l : widest.path(0, 3)) bottleneck = std::min(bottleneck, t.link(l).capacity);
  EXPECT_EQ(bottleneck, mbps(20));
}

TEST(WidestPath, TieBreaksByHops) {
  // Equal-width routes: direct (10) vs 2-hop (10,10): prefer direct.
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node();
  t.add_link(a, c, mbps(10));
  t.add_link(a, b, mbps(10));
  t.add_link(b, c, mbps(10));
  RoutingTable widest(t, RoutingPolicy::kWidestPath);
  EXPECT_EQ(widest.hops(a, c), 1);
}

TEST(WidestPath, PathsAreConnectedAndReachable) {
  Topology t = diamond();
  RoutingTable widest(t, RoutingPolicy::kWidestPath);
  for (NodeId u = 0; u < 4; ++u) {
    for (NodeId v = 0; v < 4; ++v) {
      EXPECT_TRUE(widest.reachable(u, v));
      if (u == v) continue;
      NodeId at = u;
      for (LinkId l : widest.path(u, v)) {
        EXPECT_EQ(t.link(l).src, at);
        at = t.link(l).dst;
      }
      EXPECT_EQ(at, v);
    }
  }
}

TEST(WidestPath, RecomputeFollowsCapacityChanges) {
  Topology t = diamond();
  RoutingTable widest(t, RoutingPolicy::kWidestPath);
  ASSERT_EQ(widest.hops(0, 3), 2);
  // Fatten the direct link beyond the b route: routes switch on recompute.
  t.set_capacity(*t.link_between(0, 3), mbps(50));
  widest.recompute();
  EXPECT_EQ(widest.hops(0, 3), 1);
}

TEST(WidestPath, NetworkUsesConfiguredPolicy) {
  bass::sim::Simulation sim;
  NetworkConfig cfg;
  cfg.routing = RoutingPolicy::kWidestPath;
  Network network(sim, diamond(), cfg);
  EXPECT_EQ(network.routing().policy(), RoutingPolicy::kWidestPath);
  // Transfers follow the wide route: a 20 Mbit transfer at 20 Mbps takes
  // ~1 s (the skinny direct link would take 10 s).
  bass::sim::Time done_at = -1;
  network.start_transfer(0, 3, 20'000'000 / 8, [&] { done_at = sim.now(); });
  sim.run_all();
  EXPECT_NEAR(bass::sim::to_seconds(done_at), 1.0, 0.05);
}

}  // namespace
}  // namespace bass::net
