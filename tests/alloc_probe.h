// Test-only global operator new/delete counting hook.
//
// Include this header in EXACTLY ONE translation unit per test binary: it
// defines the global allocation operators, so a second inclusion in the
// same binary is an ODR violation the linker will reject. Binaries that
// include it count every heap allocation in the process, which is what the
// zero-alloc steady-state assertions need — a hidden allocation anywhere
// (solver, journal, std container rehash) is caught, not just ones behind
// an instrumented interface.
//
// Counters are atomics so multi-threaded tests read coherent totals, and
// the hooks never allocate themselves. Sized, array, nothrow, and aligned
// variants all funnel through the same two counting functions; the
// alignment overloads exist because the arena's aligned growth path would
// otherwise bypass the probe.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

namespace bass::testing {

struct AllocCounters {
  std::atomic<std::int64_t> allocations{0};
  std::atomic<std::int64_t> deallocations{0};
  std::atomic<std::int64_t> bytes{0};
};

inline AllocCounters& alloc_counters() {
  static AllocCounters counters;
  return counters;
}

// Snapshot for before/after deltas around a region of interest.
struct AllocSnapshot {
  std::int64_t allocations = 0;
  std::int64_t bytes = 0;
};

inline AllocSnapshot take_alloc_snapshot() {
  auto& c = alloc_counters();
  return {c.allocations.load(std::memory_order_relaxed),
          c.bytes.load(std::memory_order_relaxed)};
}

inline std::int64_t allocations_since(const AllocSnapshot& snap) {
  return alloc_counters().allocations.load(std::memory_order_relaxed) -
         snap.allocations;
}

inline std::int64_t bytes_since(const AllocSnapshot& snap) {
  return alloc_counters().bytes.load(std::memory_order_relaxed) - snap.bytes;
}

namespace detail {

inline void* counted_alloc(std::size_t size, std::size_t align) {
  auto& c = alloc_counters();
  c.allocations.fetch_add(1, std::memory_order_relaxed);
  c.bytes.fetch_add(static_cast<std::int64_t>(size), std::memory_order_relaxed);
  void* p = align > alignof(std::max_align_t)
                ? std::aligned_alloc(align, (size + align - 1) / align * align)
                : std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  alloc_counters().deallocations.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace detail
}  // namespace bass::testing

// ---- Global operator replacements (one TU per binary) ----

void* operator new(std::size_t size) {
  return bass::testing::detail::counted_alloc(size, 0);
}
void* operator new[](std::size_t size) {
  return bass::testing::detail::counted_alloc(size, 0);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return bass::testing::detail::counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return bass::testing::detail::counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return bass::testing::detail::counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return bass::testing::detail::counted_alloc(size, 0);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept { bass::testing::detail::counted_free(p); }
void operator delete[](void* p) noexcept { bass::testing::detail::counted_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  bass::testing::detail::counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  bass::testing::detail::counted_free(p);
}
