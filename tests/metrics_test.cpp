#include <gtest/gtest.h>

#include "metrics/cdf.h"
#include "metrics/latency_recorder.h"
#include "metrics/time_series.h"

namespace bass::metrics {
namespace {

TEST(TimeSeries, RecordAndValues) {
  TimeSeries ts;
  ts.record(sim::seconds(1), 10.0);
  ts.record(sim::seconds(2), 20.0);
  EXPECT_EQ(ts.size(), 2u);
  EXPECT_EQ(ts.values(), (std::vector<double>{10.0, 20.0}));
}

TEST(TimeSeries, MeanInWindow) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) ts.record(sim::seconds(i), static_cast<double>(i));
  EXPECT_DOUBLE_EQ(ts.mean_in(sim::seconds(2), sim::seconds(5)), 3.0);  // 2,3,4
  EXPECT_DOUBLE_EQ(ts.mean_in(sim::seconds(100), sim::seconds(200)), 0.0);
}

TEST(TimeSeries, RollingMean) {
  TimeSeries ts;
  ts.record(sim::seconds(0), 10.0);
  ts.record(sim::seconds(1), 20.0);
  ts.record(sim::seconds(2), 30.0);
  ts.record(sim::seconds(20), 100.0);
  const TimeSeries rm = ts.rolling_mean(sim::seconds(10));
  ASSERT_EQ(rm.size(), 4u);
  EXPECT_DOUBLE_EQ(rm.samples()[0].value, 10.0);
  EXPECT_DOUBLE_EQ(rm.samples()[1].value, 15.0);
  EXPECT_DOUBLE_EQ(rm.samples()[2].value, 20.0);
  // The old samples fell out of the 10 s window.
  EXPECT_DOUBLE_EQ(rm.samples()[3].value, 100.0);
}

TEST(TimeSeries, BinnedMean) {
  TimeSeries ts;
  ts.record(sim::millis(100), 1.0);
  ts.record(sim::millis(900), 3.0);
  ts.record(sim::millis(1500), 10.0);
  const TimeSeries b = ts.binned_mean(sim::seconds(1));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_DOUBLE_EQ(b.samples()[0].value, 2.0);
  EXPECT_DOUBLE_EQ(b.samples()[1].value, 10.0);
  EXPECT_EQ(b.samples()[1].at, sim::seconds(1));
}

TEST(TimeSeries, BinnedMeanEmptyAndZeroBin) {
  TimeSeries ts;
  EXPECT_TRUE(ts.binned_mean(sim::seconds(1)).empty());
  ts.record(0, 1.0);
  EXPECT_TRUE(ts.binned_mean(0).empty());
}

TEST(LatencyRecorder, Percentiles) {
  LatencyRecorder rec;
  for (int i = 1; i <= 100; ++i) rec.record(sim::seconds(i), sim::millis(i));
  EXPECT_EQ(rec.count(), 100u);
  EXPECT_NEAR(rec.mean_ms(), 50.5, 0.01);
  EXPECT_NEAR(rec.median_ms(), 50.5, 0.01);
  EXPECT_NEAR(rec.p99_ms(), 99.01, 0.1);
  EXPECT_NEAR(rec.max_ms(), 100.0, 0.001);
}

TEST(LatencyRecorder, SeriesTracksCompletionTime) {
  LatencyRecorder rec;
  rec.record(sim::seconds(5), sim::millis(42));
  ASSERT_EQ(rec.series().size(), 1u);
  EXPECT_EQ(rec.series().samples()[0].at, sim::seconds(5));
  EXPECT_DOUBLE_EQ(rec.series().samples()[0].value, 42.0);
}

TEST(Cdf, ValueAtAndProbabilityOf) {
  Cdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cdf.probability_of(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.probability_of(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.probability_of(10.0), 1.0);
}

TEST(Cdf, PointsAreMonotonic) {
  Cdf cdf({5.0, 1.0, 3.0, 2.0, 4.0});
  const auto pts = cdf.points(11);
  ASSERT_EQ(pts.size(), 11u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].value, pts[i - 1].value);
    EXPECT_GE(pts[i].probability, pts[i - 1].probability);
  }
}

TEST(Cdf, Empty) {
  Cdf cdf({});
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.probability_of(1.0), 0.0);
  EXPECT_TRUE(cdf.points(5).empty());
}

}  // namespace
}  // namespace bass::metrics

namespace bass::metrics {
namespace {

TEST(TimeSeries, RollingMeanWindowBoundaryIsExclusive) {
  TimeSeries ts;
  ts.record(0, 10.0);
  ts.record(sim::seconds(10), 20.0);
  const TimeSeries rm = ts.rolling_mean(sim::seconds(10));
  // The t=0 sample is exactly window-aged at t=10 and falls out.
  EXPECT_DOUBLE_EQ(rm.samples()[1].value, 20.0);
}

TEST(TimeSeries, BinnedMeanSkipsEmptyBins) {
  TimeSeries ts;
  ts.record(sim::seconds(0), 1.0);
  ts.record(sim::seconds(5), 9.0);  // bins 1-4 empty
  const TimeSeries b = ts.binned_mean(sim::seconds(1));
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b.samples()[1].at, sim::seconds(5));
}

TEST(LatencyRecorder, EmptyRecorderIsZero) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.mean_ms(), 0.0);
  EXPECT_EQ(rec.median_ms(), 0.0);
  EXPECT_EQ(rec.p99_ms(), 0.0);
  EXPECT_EQ(rec.max_ms(), 0.0);
}

TEST(Cdf, SingleSample) {
  Cdf cdf({5.0});
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 5.0);
  EXPECT_DOUBLE_EQ(cdf.probability_of(5.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.probability_of(4.9), 0.0);
}

TEST(Cdf, ValueAtMatchesProbabilityOfRoundTrip) {
  std::vector<double> samples;
  for (int i = 1; i <= 100; ++i) samples.push_back(static_cast<double>(i));
  Cdf cdf(samples);
  for (double p : {0.1, 0.25, 0.5, 0.9}) {
    const double v = cdf.value_at(p);
    EXPECT_NEAR(cdf.probability_of(v), p, 0.02);
  }
}

}  // namespace
}  // namespace bass::metrics
