// Zero-allocation steady-state guarantees. The perf contract (DESIGN.md
// §5c) is that once the solver's arena and the engine's pools reach their
// workload high-water mark, churn rounds touch no allocator at all. These
// tests measure that with a global operator new/delete probe rather than
// trusting the arena's own bookkeeping: any allocation anywhere in the
// process during the measured window fails the test.
#include "alloc_probe.h"  // must be the only TU in this binary including it

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "net/maxmin.h"
#include "net/network.h"
#include "util/rng.h"

namespace bass::net {
namespace {

// A fixed pool of paths over a synthetic link space, with churn that
// mutates demands and swaps entities in and out — the access pattern
// Network generates, minus the engine.
struct SolverWorkload {
  std::vector<double> capacities;
  std::vector<std::vector<LinkId>> paths;
  std::vector<AllocEntityRef> entities;
  util::Rng rng{0xBA55};

  SolverWorkload(std::size_t links, std::size_t flows) {
    capacities.resize(links);
    for (auto& c : capacities) {
      c = static_cast<double>(mbps(rng.uniform_int(5, 100)));
    }
    paths.resize(flows);
    entities.resize(flows);
    for (std::size_t f = 0; f < flows; ++f) {
      const std::size_t hops = rng.uniform_int(1, 6);
      for (std::size_t h = 0; h < hops; ++h) {
        const LinkId l = static_cast<LinkId>(
            (f * 37 + h * 11 + rng.uniform_int(0, links - 1)) % links);
        bool dup = false;
        for (LinkId seen : paths[f]) dup |= (seen == l);
        if (!dup) paths[f].push_back(l);
      }
      entities[f] = {demand_for(f), &paths[f]};
    }
  }

  double demand_for(std::size_t f) {
    if (rng.chance(0.2)) return static_cast<double>(kUnlimitedRate);
    (void)f;
    return static_cast<double>(mbps(rng.uniform_int(1, 50)));
  }

  // One churn round: a demand flip plus one entity leaving and re-entering
  // with a different path from the pool.
  void churn() {
    const std::size_t a = rng.uniform_int(0, entities.size() - 1);
    entities[a].demand = demand_for(a);
    const std::size_t b = rng.uniform_int(0, entities.size() - 1);
    const std::size_t p = rng.uniform_int(0, paths.size() - 1);
    entities[b] = {demand_for(b), &paths[p]};
  }
};

TEST(MaxMinAlloc, SolverSteadyStateAllocatesNothing) {
  SolverWorkload w(/*links=*/120, /*flows=*/200);
  MaxMinSolver solver;

  for (int round = 0; round < 200; ++round) {  // warm-up: arena finds its high-water
    w.churn();
    solver.solve(w.capacities, w.entities);
  }
  const std::int64_t growths = solver.scratch_growths();

  const auto snap = testing::take_alloc_snapshot();
  for (int round = 0; round < 1000; ++round) {
    w.churn();
    solver.solve(w.capacities, w.entities);
  }
  EXPECT_EQ(testing::allocations_since(snap), 0);
  EXPECT_EQ(testing::bytes_since(snap), 0);
  EXPECT_EQ(solver.scratch_growths(), growths) << "arena grew after warm-up";
  EXPECT_GT(solver.scratch_bytes(), 0u);
}

TEST(MaxMinAlloc, ScalarPathIsAlsoZeroAlloc) {
  SolverWorkload w(/*links=*/60, /*flows=*/80);
  MaxMinSolver solver;
  solver.set_use_simd(false);
  for (int round = 0; round < 100; ++round) {
    w.churn();
    solver.solve(w.capacities, w.entities);
  }
  const auto snap = testing::take_alloc_snapshot();
  for (int round = 0; round < 300; ++round) {
    w.churn();
    solver.solve(w.capacities, w.entities);
  }
  EXPECT_EQ(testing::allocations_since(snap), 0);
}

// End-to-end: the engine's stream churn path (open → reallocate → close →
// reallocate) is allocation-free once slot pools, occupancy lists, and the
// solver arena are warm.
TEST(MaxMinAlloc, NetworkStreamChurnSteadyStateAllocatesNothing) {
  util::Rng rng(7);
  sim::Simulation sim;
  Topology topo;
  const int n = 32;
  for (int i = 0; i < n; ++i) topo.add_node();
  for (int i = 0; i < n; ++i) {
    topo.add_link(i, (i + 1) % n, mbps(rng.uniform_int(5, 60)));
  }
  for (int i = 0; i < n / 2; ++i) {
    const auto a = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    const auto b = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (a != b && !topo.link_between(a, b)) {
      topo.add_link(a, b, mbps(rng.uniform_int(5, 60)));
    }
  }
  Network network(sim, topo);

  // A steady state needs a recurring flow population: churn closes a stream
  // and reopens the same (src, dst, demand) triple, so the concurrent flow
  // multiset — and with it every per-link occupancy high-water mark — is
  // constant after the pool is first filled. (Fully random flows keep
  // setting new per-link occupancy records, which is legitimate amortized
  // vector growth, not steady state.)
  struct Triple {
    NodeId src, dst;
    Bps demand;
  };
  std::vector<Triple> triples;
  for (int i = 0; i < 48; ++i) {
    const auto src = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    auto dst = static_cast<NodeId>(rng.uniform_int(0, n - 1));
    if (dst == src) dst = static_cast<NodeId>((dst + 1) % n);
    triples.push_back({src, dst, mbps(rng.uniform_int(1, 40))});
  }
  std::vector<StreamId> pool;
  pool.reserve(triples.size());
  for (const Triple& t : triples) {
    pool.push_back(network.open_stream(t.src, t.dst, t.demand));
  }

  auto churn = [&] {
    const std::size_t victim = rng.uniform_int(0, pool.size() - 1);
    network.close_stream(pool[victim]);
    const Triple& t = triples[victim];
    pool[victim] = network.open_stream(t.src, t.dst, t.demand);
  };
  for (int i = 0; i < 200; ++i) churn();  // warm-up: pools reach high-water

  const auto snap = testing::take_alloc_snapshot();
  for (int i = 0; i < 200; ++i) churn();
  EXPECT_EQ(testing::allocations_since(snap), 0)
      << "engine stream churn allocated after warm-up";
  EXPECT_EQ(network.stream_count(), 48u);
}

}  // namespace
}  // namespace bass::net
