#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "app/catalog.h"
#include "sched/heuristics.h"
#include "sched/node_ranker.h"
#include "sched/packer.h"
#include "sim/simulation.h"

namespace bass::sched {
namespace {

// Two 12-core worker nodes on a fast LAN (the Fig. 10 microbenchmark shape:
// 16-core machines with ~12 cores allocatable after system reservations).
struct TwoNodeFixture {
  sim::Simulation sim;
  net::Topology topo;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<LiveNetworkView> view;

  explicit TwoNodeFixture(net::Bps link = net::gbps(1)) {
    const auto a = topo.add_node("node1"), b = topo.add_node("node2");
    topo.add_link(a, b, link);
    network = std::make_unique<net::Network>(sim, topo);
    view = std::make_unique<LiveNetworkView>(*network);
    cluster.add_node(a, {12000, 65536, true});
    cluster.add_node(b, {12000, 65536, true});
  }

  PackInput input() {
    return PackInput{app_, cluster, *view, rank_nodes(cluster, *view)};
  }

  void set_app(app::AppGraph g) { app_ = std::move(g); }
  const app::AppGraph& app() const { return app_; }

 private:
  app::AppGraph app_{"unset"};
};

TEST(Packer, SequentialPacksCameraLikeThePaper) {
  TwoNodeFixture f;
  f.set_app(app::camera_pipeline_app());
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  ASSERT_TRUE(r.ok()) << r.error();
  const Placement& p = r.value();
  // Fig. 10(b): BFS puts camera+sampler together; detector (8 cores)
  // doesn't fit with them on a 12-core node, so it and the listeners land
  // on the second node.
  const auto n = [&](const char* name) { return p.at(f.app().find(name)); };
  EXPECT_EQ(n("camera-stream"), n("frame-sampler"));
  EXPECT_NE(n("camera-stream"), n("object-detector"));
  EXPECT_EQ(n("object-detector"), n("image-listener"));
  EXPECT_EQ(n("object-detector"), n("label-listener"));
}

TEST(Packer, PathPackPutsLeftoverBackOnFirstNode) {
  TwoNodeFixture f;
  f.set_app(app::camera_pipeline_app());
  const auto r = path_pack(f.input(), longest_path_paths(f.app()));
  ASSERT_TRUE(r.ok()) << r.error();
  const Placement& p = r.value();
  const auto n = [&](const char* name) { return p.at(f.app().find(name)); };
  // The heaviest path breaks at the detector (capacity), continuing on
  // node2; the leftover label-listener first-fits back onto node1.
  EXPECT_EQ(n("camera-stream"), n("frame-sampler"));
  EXPECT_NE(n("frame-sampler"), n("object-detector"));
  EXPECT_EQ(n("object-detector"), n("image-listener"));
  EXPECT_EQ(n("label-listener"), n("camera-stream"));
}

TEST(Packer, EverythingOnOneNodeWhenItFits) {
  TwoNodeFixture f;
  app::AppGraph g("small");
  for (int i = 0; i < 4; ++i) {
    g.add_component({.name = "s" + std::to_string(i), .cpu_milli = 1000, .memory_mb = 64});
  }
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(5)});
  g.add_dependency({.from = 1, .to = 2, .bandwidth = net::mbps(5)});
  g.add_dependency({.from = 2, .to = 3, .bandwidth = net::mbps(5)});
  f.set_app(std::move(g));
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  ASSERT_TRUE(r.ok());
  std::set<net::NodeId> used;
  for (const auto& [c, n] : r.value()) used.insert(n);
  EXPECT_EQ(used.size(), 1u);
}

TEST(Packer, FailsWhenCpuExhausted) {
  TwoNodeFixture f;
  app::AppGraph g("huge");
  g.add_component({.name = "x", .cpu_milli = 20000, .memory_mb = 64});
  f.set_app(std::move(g));
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("x"), std::string::npos);
}

TEST(Packer, FallbackUsesStrandedCapacity) {
  TwoNodeFixture f;
  app::AppGraph g("stranded");
  // Order: small(4) big(10) small(4). Advance-only would strand node1's
  // remaining 8 cores when the final small lands; the first-fit fallback
  // must recover.
  g.add_component({.name = "a", .cpu_milli = 4000, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 10000, .memory_mb = 64});
  g.add_component({.name = "c", .cpu_milli = 4000, .memory_mb = 64});
  g.add_component({.name = "d", .cpu_milli = 2000, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(9)});
  g.add_dependency({.from = 1, .to = 2, .bandwidth = net::mbps(8)});
  g.add_dependency({.from = 2, .to = 3, .bandwidth = net::mbps(7)});
  f.set_app(std::move(g));
  // BFS order a,b,c,d: node1 {a}, b->node2, c->node2 (4+10... no: 14>12 so
  // c fits node2? 10+4=14>12 -> fallback finds node1). Either way all four
  // must place.
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().size(), 4u);
}

TEST(Packer, BandwidthConstraintForcesColocation) {
  // Thin 1 Mbps link; the 5 Mbps edge cannot cross it, so the second
  // component must co-locate despite CPU pressure... and if it cannot fit,
  // packing fails.
  TwoNodeFixture f(net::mbps(1));
  app::AppGraph g("bw");
  g.add_component({.name = "p", .cpu_milli = 8000, .memory_mb = 64});
  g.add_component({.name = "q", .cpu_milli = 2000, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(5)});
  f.set_app(std::move(g));
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().at(0), r.value().at(1));
}

TEST(Packer, BandwidthInfeasibleFails) {
  TwoNodeFixture f(net::mbps(1));
  app::AppGraph g("bw-fail");
  g.add_component({.name = "p", .cpu_milli = 8000, .memory_mb = 64});
  g.add_component({.name = "q", .cpu_milli = 8000, .memory_mb = 64});  // can't colocate
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(5)});
  f.set_app(std::move(g));
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  EXPECT_FALSE(r.ok());
}

TEST(Packer, ReservationsAccumulateAcrossEdges) {
  // Link fits one 3 Mbps edge but not two.
  TwoNodeFixture f(net::mbps(5));
  app::AppGraph g("accum");
  g.add_component({.name = "a", .cpu_milli = 6000, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 6000, .memory_mb = 64});
  g.add_component({.name = "c", .cpu_milli = 6000, .memory_mb = 64});
  g.add_component({.name = "d", .cpu_milli = 2000, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(3)});
  g.add_dependency({.from = 2, .to = 3, .bandwidth = net::mbps(3)});
  f.set_app(std::move(g));
  // Pairs (a,b) and (c,d) each need 3 Mbps if split. Capacity allows only
  // one crossing edge; with 12-core nodes each node fits two components,
  // so a feasible packing exists: {a,b} | {c,d} (or similar).
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  ASSERT_TRUE(r.ok()) << r.error();
  const Placement& p = r.value();
  int crossings = 0;
  for (const auto& e : f.app().edges()) {
    if (p.at(e.from) != p.at(e.to)) ++crossings;
  }
  EXPECT_LE(crossings, 1);
}

TEST(Packer, PinnedComponentsStayPut) {
  TwoNodeFixture f;
  app::AppGraph g("pinned");
  app::Component sfu{.name = "sfu", .cpu_milli = 1000, .memory_mb = 64};
  g.add_component(sfu);
  app::Component clients{.name = "clients", .cpu_milli = 0, .memory_mb = 0};
  clients.pinned_node = 1;
  g.add_component(clients);
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(2)});
  f.set_app(std::move(g));
  const auto r = sequential_pack(f.input(), bfs_order(f.app()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().at(1), 1);
}

}  // namespace
}  // namespace bass::sched

namespace bass::sched {
namespace {

TEST(Packer, LatencyConstraintForcesNearPlacement) {
  // Line topology 0-1-2: two hops from node 0 to node 2 at 1 ms each.
  sim::Simulation sim;
  net::Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node();
  topo.add_link(0, 1, net::gbps(1));
  topo.add_link(1, 2, net::gbps(1));
  net::Network network(sim, std::move(topo));
  LiveNetworkView view(network);
  cluster::ClusterState cl;
  // Components of 8 cores each: two cannot share a 12-core node.
  cl.add_node(0, {12000, 65536, true});
  cl.add_node(1, {12000, 65536, true});
  cl.add_node(2, {12000, 65536, true});

  app::AppGraph g("latency");
  g.add_component({.name = "a", .cpu_milli = 8000, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 8000, .memory_mb = 64});
  app::Edge e{.from = 0, .to = 1, .bandwidth = net::mbps(1)};
  e.max_latency = sim::millis(1);  // at most one hop apart
  g.add_dependency(e);

  const auto r = sequential_pack(
      PackInput{g, cl, view, rank_nodes(cl, view)}, bfs_order(g));
  ASSERT_TRUE(r.ok()) << r.error();
  const auto na = r.value().at(0);
  const auto nb = r.value().at(1);
  EXPECT_NE(na, nb);  // they can't share (CPU)
  EXPECT_LE(view.path_latency(na, nb), sim::millis(1));
}

TEST(Packer, LatencyConstraintCanMakePackingInfeasible) {
  // Two nodes three hops apart would be needed, but only a 2-hop-separated
  // pair of nodes has capacity: infeasible under a 1-hop latency budget.
  sim::Simulation sim;
  net::Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node();
  topo.add_link(0, 1, net::gbps(1));
  topo.add_link(1, 2, net::gbps(1));
  net::Network network(sim, std::move(topo));
  LiveNetworkView view(network);
  cluster::ClusterState cl;
  cl.add_node(0, {8000, 65536, true});
  cl.add_node(2, {8000, 65536, true});  // node 1 not schedulable (absent)

  app::AppGraph g("latency-fail");
  g.add_component({.name = "a", .cpu_milli = 8000, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 8000, .memory_mb = 64});
  app::Edge e{.from = 0, .to = 1, .bandwidth = net::mbps(1)};
  e.max_latency = sim::millis(1);  // nodes 0 and 2 are 2 ms apart
  g.add_dependency(e);

  const auto r = sequential_pack(
      PackInput{g, cl, view, rank_nodes(cl, view)}, bfs_order(g));
  EXPECT_FALSE(r.ok());
}

TEST(Packer, UnconstrainedLatencyIgnoresHops) {
  sim::Simulation sim;
  net::Topology topo;
  for (int i = 0; i < 3; ++i) topo.add_node();
  topo.add_link(0, 1, net::gbps(1));
  topo.add_link(1, 2, net::gbps(1));
  net::Network network(sim, std::move(topo));
  LiveNetworkView view(network);
  cluster::ClusterState cl;
  cl.add_node(0, {8000, 65536, true});
  cl.add_node(2, {8000, 65536, true});
  app::AppGraph g("free");
  g.add_component({.name = "a", .cpu_milli = 8000, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 8000, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1)});
  const auto r = sequential_pack(
      PackInput{g, cl, view, rank_nodes(cl, view)}, bfs_order(g));
  EXPECT_TRUE(r.ok());
}

}  // namespace
}  // namespace bass::sched
