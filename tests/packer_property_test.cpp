// Property suite for the BASS packer and schedulers: on random apps and
// clusters, any returned placement must respect CPU, memory, and per-link
// bandwidth reservations, cover every component, and honor pins.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "sched/bass_scheduler.h"
#include "sched/k3s_scheduler.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace bass::sched {
namespace {

struct World {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<LiveNetworkView> view;
  app::AppGraph app{"random"};
};

std::unique_ptr<World> random_world(std::uint64_t seed) {
  util::Rng rng(seed);
  auto w = std::make_unique<World>();

  const int nodes = static_cast<int>(rng.uniform_int(2, 6));
  net::Topology topo;
  for (int i = 0; i < nodes; ++i) topo.add_node();
  for (int i = 0; i < nodes; ++i) {
    for (int j = i + 1; j < nodes; ++j) {
      if (j == i + 1 || rng.chance(0.4)) {
        topo.add_link(i, j, net::mbps(rng.uniform_int(5, 100)));
      }
    }
  }
  w->network = std::make_unique<net::Network>(w->sim, std::move(topo));
  w->view = std::make_unique<LiveNetworkView>(*w->network);
  for (int i = 0; i < nodes; ++i) {
    w->cluster.add_node(i, {rng.uniform_int(4, 16) * 1000,
                            rng.uniform_int(2, 16) * 1024, true});
  }

  const int comps = static_cast<int>(rng.uniform_int(1, 12));
  for (int c = 0; c < comps; ++c) {
    app::Component comp{.name = "c" + std::to_string(c),
                        .cpu_milli = rng.uniform_int(100, 2000),
                        .memory_mb = rng.uniform_int(64, 1024)};
    if (rng.chance(0.1)) comp.pinned_node = static_cast<net::NodeId>(
        rng.uniform_int(0, nodes - 1));
    w->app.add_component(comp);
  }
  for (int i = 0; i < comps; ++i) {
    for (int j = i + 1; j < comps; ++j) {
      if (rng.chance(0.25)) {
        w->app.add_dependency({.from = i, .to = j,
                               .bandwidth = net::kbps(rng.uniform_int(100, 8000))});
      }
    }
  }
  return w;
}

void check_placement(const World& w, const Placement& p) {
  // Complete coverage.
  ASSERT_EQ(p.size(), static_cast<std::size_t>(w.app.component_count()));

  // CPU / memory fit per node.
  std::map<net::NodeId, std::int64_t> cpu, mem;
  for (const auto& [c, n] : p) {
    ASSERT_TRUE(w.cluster.has_node(n));
    cpu[n] += w.app.component(c).cpu_milli;
    mem[n] += w.app.component(c).memory_mb;
  }
  for (const auto& [n, used] : cpu) {
    EXPECT_LE(used, w.cluster.spec(n).cpu_milli) << "cpu oversubscribed on " << n;
  }
  for (const auto& [n, used] : mem) {
    EXPECT_LE(used, w.cluster.spec(n).memory_mb) << "mem oversubscribed on " << n;
  }

  // Pins honored.
  for (app::ComponentId c = 0; c < w.app.component_count(); ++c) {
    if (w.app.component(c).pinned_node) {
      EXPECT_EQ(p.at(c), *w.app.component(c).pinned_node);
    }
  }

  // Bandwidth reservations: per directed link, the sum of crossing-edge
  // requirements routed over it fits capacity.
  std::vector<net::Bps> reserved(static_cast<std::size_t>(w.view->link_count()), 0);
  for (const auto& e : w.app.edges()) {
    const net::NodeId a = p.at(e.from);
    const net::NodeId b = p.at(e.to);
    if (a == b) continue;
    for (net::LinkId l : w.view->path(a, b)) {
      reserved[static_cast<std::size_t>(l)] += e.bandwidth;
    }
  }
  for (int l = 0; l < w.view->link_count(); ++l) {
    EXPECT_LE(reserved[static_cast<std::size_t>(l)], w.view->link_capacity(l))
        << "bandwidth oversubscribed on link " << l;
  }
}

class PackerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PackerProperty, BfsPlacementsAreValid) {
  const auto w = random_world(GetParam());
  const auto r =
      BassScheduler(Heuristic::kBreadthFirst).schedule(w->app, w->cluster, *w->view);
  if (r.ok()) check_placement(*w, r.value());
  // Failure is acceptable (instance may be infeasible) — validity of
  // produced placements is the property under test.
}

TEST_P(PackerProperty, LongestPathPlacementsAreValid) {
  const auto w = random_world(GetParam());
  const auto r =
      BassScheduler(Heuristic::kLongestPath).schedule(w->app, w->cluster, *w->view);
  if (r.ok()) check_placement(*w, r.value());
}

TEST_P(PackerProperty, AutoPlacementsAreValidAndNoWorse) {
  const auto w = random_world(GetParam());
  const auto combined =
      BassScheduler(Heuristic::kAuto).schedule(w->app, w->cluster, *w->view);
  if (!combined.ok()) return;
  check_placement(*w, combined.value());
  const auto bfs =
      BassScheduler(Heuristic::kBreadthFirst).schedule(w->app, w->cluster, *w->view);
  const auto lp =
      BassScheduler(Heuristic::kLongestPath).schedule(w->app, w->cluster, *w->view);
  net::Bps best = net::kUnlimitedRate;
  if (bfs.ok()) best = std::min(best, crossing_bandwidth(w->app, bfs.value()));
  if (lp.ok()) best = std::min(best, crossing_bandwidth(w->app, lp.value()));
  EXPECT_LE(crossing_bandwidth(w->app, combined.value()), best);
}

TEST_P(PackerProperty, K3sRespectsComputeButMayBreakBandwidth) {
  const auto w = random_world(GetParam());
  const auto r = K3sScheduler().schedule(w->app, w->cluster, *w->view);
  if (!r.ok()) return;
  // k3s honours cpu/mem and pins but is *allowed* to oversubscribe links —
  // that gap is the paper's thesis. Check only the compute half.
  std::map<net::NodeId, std::int64_t> cpu;
  for (const auto& [c, n] : r.value()) cpu[n] += w->app.component(c).cpu_milli;
  for (const auto& [n, used] : cpu) EXPECT_LE(used, w->cluster.spec(n).cpu_milli);
  for (app::ComponentId c = 0; c < w->app.component_count(); ++c) {
    if (w->app.component(c).pinned_node) {
      EXPECT_EQ(r.value().at(c), *w->app.component(c).pinned_node);
    }
  }
}

TEST_P(PackerProperty, SchedulingIsDeterministic) {
  const auto w1 = random_world(GetParam());
  const auto w2 = random_world(GetParam());
  const auto r1 =
      BassScheduler(Heuristic::kAuto).schedule(w1->app, w1->cluster, *w1->view);
  const auto r2 =
      BassScheduler(Heuristic::kAuto).schedule(w2->app, w2->cluster, *w2->view);
  ASSERT_EQ(r1.ok(), r2.ok());
  if (r1.ok()) {
    EXPECT_EQ(r1.value(), r2.value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackerProperty, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace bass::sched
