#include <gtest/gtest.h>

#include "app/app_graph.h"
#include "app/catalog.h"

namespace bass::app {
namespace {

TEST(AppGraph, BuildAndLookup) {
  AppGraph g("test");
  const ComponentId a = g.add_component({.name = "a"});
  const ComponentId b = g.add_component({.name = "b"});
  g.add_dependency({.from = a, .to = b, .bandwidth = net::mbps(5)});
  EXPECT_EQ(g.component_count(), 2);
  EXPECT_EQ(g.find("b"), b);
  EXPECT_EQ(g.find("zzz"), kInvalidComponent);
  ASSERT_EQ(g.out_edges(a).size(), 1u);
  EXPECT_EQ(g.out_edges(a)[0].to, b);
  EXPECT_EQ(g.in_edges(b)[0].from, a);
  EXPECT_EQ(g.in_degree(a), 0);
  EXPECT_EQ(g.in_degree(b), 1);
}

TEST(AppGraph, TopoOrderRespectsEdges) {
  AppGraph g("test");
  const ComponentId a = g.add_component({.name = "a"});
  const ComponentId b = g.add_component({.name = "b"});
  const ComponentId c = g.add_component({.name = "c"});
  g.add_dependency({.from = c, .to = b});
  g.add_dependency({.from = b, .to = a});
  const auto order = g.topo_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], c);
  EXPECT_EQ(order[1], b);
  EXPECT_EQ(order[2], a);
}

TEST(AppGraph, CycleDetected) {
  AppGraph g("cyclic");
  const ComponentId a = g.add_component({.name = "a"});
  const ComponentId b = g.add_component({.name = "b"});
  g.add_dependency({.from = a, .to = b});
  g.add_dependency({.from = b, .to = a});
  EXPECT_TRUE(g.topo_order().empty());
  std::string error;
  EXPECT_FALSE(g.validate(&error));
  EXPECT_NE(error.find("cycle"), std::string::npos);
}

TEST(AppGraph, ValidateEmptyApp) {
  AppGraph g("empty");
  EXPECT_FALSE(g.validate());
}

TEST(AppGraph, ValidateBadProbability) {
  AppGraph g("bad");
  const ComponentId a = g.add_component({.name = "a"});
  const ComponentId b = g.add_component({.name = "b"});
  g.add_dependency({.from = a, .to = b, .bandwidth = 1, .probability = 1.5});
  EXPECT_FALSE(g.validate());
}

TEST(AppGraph, Totals) {
  AppGraph g("totals");
  g.add_component({.name = "a", .cpu_milli = 1000, .memory_mb = 256});
  g.add_component({.name = "b", .cpu_milli = 2000, .memory_mb = 512});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(3)});
  EXPECT_EQ(g.total_cpu_milli(), 3000);
  EXPECT_EQ(g.total_memory_mb(), 768);
  EXPECT_EQ(g.total_bandwidth(), net::mbps(3));
}

TEST(Catalog, Fig6Example) {
  const AppGraph g = fig6_example();
  EXPECT_EQ(g.component_count(), 7);
  EXPECT_TRUE(g.validate());
  // Component "1" is the unique root.
  EXPECT_EQ(g.in_degree(g.find("1")), 0);
}

TEST(Catalog, CameraPipeline) {
  const AppGraph g = camera_pipeline_app();
  EXPECT_EQ(g.component_count(), 5);
  EXPECT_TRUE(g.validate());
  const ComponentId det = g.find("object-detector");
  ASSERT_NE(det, kInvalidComponent);
  EXPECT_EQ(g.component(det).cpu_milli, 8000);  // §6.3.1: 8 cores
  EXPECT_EQ(g.component(g.find("frame-sampler")).cpu_milli, 4000);
  EXPECT_EQ(g.out_edges(det).size(), 2u);  // image + label listeners
}

TEST(Catalog, SocialNetworkHas27Components) {
  const AppGraph g = social_network_app();
  EXPECT_EQ(g.component_count(), 27);  // §6.1: 27 microservices
  EXPECT_TRUE(g.validate());
  // The frontend is the root of the request DAG.
  EXPECT_EQ(g.in_degree(g.find("nginx-web-server")), 0);
  // Paper's Fig. 11 cluster: 4 nodes x 4 cores; the app must fit.
  EXPECT_LE(g.total_cpu_milli(), 16000);
}

TEST(Catalog, VideoConferencePinnedClients) {
  const AppGraph g = video_conference_app({{1, 3}, {2, 3}}, net::kbps(800));
  EXPECT_EQ(g.component_count(), 3);  // sfu + 2 client groups
  EXPECT_TRUE(g.validate());          // pinned edges must not form cycles
  const ComponentId sfu = g.find("pion-sfu");
  EXPECT_FALSE(g.component(sfu).pinned_node.has_value());
  const ComponentId cg1 = g.find("clients@node1");
  ASSERT_NE(cg1, kInvalidComponent);
  EXPECT_EQ(g.component(cg1).pinned_node, 1);
  // Pair requirement: downlink 3 clients x 5 other participants plus
  // uplink 3 publishers, at 800 Kbps per stream.
  bool found = false;
  for (const Edge& e : g.edges()) {
    if (e.from == sfu && e.to == cg1) {
      EXPECT_EQ(e.bandwidth, net::kbps(800) * (3 * 5 + 3));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Catalog, VideoConferenceSingleNode) {
  const AppGraph g = video_conference_app({{0, 9}}, net::kbps(500));
  // 9 participants at one node: downlink 9 x 8 plus uplink 9, x 500 Kbps.
  const ComponentId sfu = g.find("pion-sfu");
  const auto edges = g.out_edges(sfu);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].bandwidth, net::kbps(500) * (9 * 8 + 9));
}

}  // namespace
}  // namespace bass::app

#include "app/dot.h"

namespace bass::app {
namespace {

TEST(Dot, PlainGraphListsComponentsAndEdges) {
  const AppGraph g = camera_pipeline_app();
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph \"camera-pipeline\""), std::string::npos);
  EXPECT_NE(dot.find("camera-stream"), std::string::npos);
  EXPECT_NE(dot.find("label=\"4.0M\""), std::string::npos);
  EXPECT_EQ(dot.find("cluster_node"), std::string::npos);
  EXPECT_EQ(dot.find("color=red"), std::string::npos);
}

TEST(Dot, PlacementClustersAndHighlightsCrossings) {
  AppGraph g("xy");
  g.add_component({.name = "x"});
  g.add_component({.name = "y"});
  g.add_component({.name = "z"});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::kbps(500)});
  g.add_dependency({.from = 1, .to = 2, .bandwidth = net::mbps(2)});
  const std::unordered_map<ComponentId, net::NodeId> placement{{0, 0}, {1, 0}, {2, 1}};
  const std::string dot = to_dot(g, &placement);
  EXPECT_NE(dot.find("cluster_node0"), std::string::npos);
  EXPECT_NE(dot.find("cluster_node1"), std::string::npos);
  // Only the crossing edge (y->z) is red.
  const auto first_red = dot.find("color=red");
  ASSERT_NE(first_red, std::string::npos);
  EXPECT_EQ(dot.find("color=red", first_red + 1), std::string::npos);
  EXPECT_NE(dot.find("label=\"500K\""), std::string::npos);
}

}  // namespace
}  // namespace bass::app
