#include <gtest/gtest.h>

#include <filesystem>

#include "net/network.h"
#include "trace/citylab.h"
#include "trace/generator.h"
#include "trace/player.h"
#include "trace/trace.h"

namespace bass::trace {
namespace {

TEST(BandwidthTrace, StepFunctionLookup) {
  BandwidthTrace t;
  t.append(sim::seconds(0), net::mbps(10));
  t.append(sim::seconds(10), net::mbps(5));
  EXPECT_EQ(t.value_at(-sim::seconds(1)), net::mbps(10));
  EXPECT_EQ(t.value_at(sim::seconds(0)), net::mbps(10));
  EXPECT_EQ(t.value_at(sim::seconds(9)), net::mbps(10));
  EXPECT_EQ(t.value_at(sim::seconds(10)), net::mbps(5));
  EXPECT_EQ(t.value_at(sim::seconds(100)), net::mbps(5));
}

TEST(BandwidthTrace, EmptyTrace) {
  BandwidthTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.value_at(0), 0);
  EXPECT_EQ(t.duration(), 0);
}

TEST(BandwidthTrace, Stats) {
  BandwidthTrace t;
  t.append(0, net::mbps(10));
  t.append(sim::seconds(1), net::mbps(20));
  EXPECT_DOUBLE_EQ(t.mean_bps(), 15e6);
  EXPECT_EQ(t.min_bps(), net::mbps(10));
  EXPECT_EQ(t.max_bps(), net::mbps(20));
}

TEST(BandwidthTrace, CsvRoundTrip) {
  BandwidthTrace t;
  t.append(0, net::mbps(7));
  t.append(sim::seconds(30), net::kbps(7620));
  const std::string path =
      (std::filesystem::temp_directory_path() / "bass_trace_test.csv").string();
  ASSERT_TRUE(t.save_csv(path));
  const auto loaded = BandwidthTrace::load_csv(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ(loaded->points()[1].bps, net::kbps(7620));
  EXPECT_EQ(loaded->points()[1].at, sim::seconds(30));
  std::filesystem::remove(path);
}

TEST(Generator, MatchesTargetStatistics) {
  GeneratorParams p;
  p.mean_bps = net::kbps(19900);
  p.stddev_frac = 0.10;
  p.duration = sim::minutes(120);  // long trace for tight convergence
  util::Rng rng(11);
  const BandwidthTrace t = generate_trace(p, rng);
  EXPECT_NEAR(t.mean_bps(), 19.9e6, 19.9e6 * 0.05);
  EXPECT_NEAR(t.stddev_bps() / t.mean_bps(), 0.10, 0.03);
}

TEST(Generator, VariableLinkHasHigherSpread) {
  util::Rng rng_a(5), rng_b(5);
  const BandwidthTrace stable = generate_trace(fig2_stable_link(), rng_a);
  const BandwidthTrace variable = generate_trace(fig2_variable_link(), rng_b);
  EXPECT_GT(variable.stddev_bps() / variable.mean_bps(),
            stable.stddev_bps() / stable.mean_bps());
}

TEST(Generator, Deterministic) {
  GeneratorParams p;
  util::Rng a(9), b(9);
  const auto t1 = generate_trace(p, a);
  const auto t2 = generate_trace(p, b);
  ASSERT_EQ(t1.size(), t2.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1.points()[i].bps, t2.points()[i].bps);
  }
}

TEST(Generator, FadesReachDepth) {
  GeneratorParams p;
  p.mean_bps = net::mbps(20);
  p.fade_probability = 0.02;
  p.fade_depth_frac = 0.25;
  p.duration = sim::minutes(30);
  util::Rng rng(3);
  const BandwidthTrace t = generate_trace(p, rng);
  EXPECT_LT(static_cast<double>(t.min_bps()), 20e6 * 0.3);
}

TEST(Generator, RespectsFloor) {
  GeneratorParams p;
  p.mean_bps = net::kbps(500);
  p.stddev_frac = 2.0;  // wild process, would go negative without the floor
  p.floor_bps = net::kbps(100);
  util::Rng rng(17);
  const BandwidthTrace t = generate_trace(p, rng);
  EXPECT_GE(t.min_bps(), net::kbps(100));
}

TEST(Player, DrivesLinkCapacities) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node(), b = topo.add_node();
  topo.add_link(a, b, net::mbps(10));
  net::Network network(sim, std::move(topo));

  BandwidthTrace t;
  t.append(sim::seconds(5), net::mbps(4));
  t.append(sim::seconds(10), net::mbps(2));
  TracePlayer player(network);
  player.add_bidirectional(a, b, t);
  player.start();

  sim.run_until(sim::seconds(6));
  EXPECT_EQ(network.path_capacity(a, b), net::mbps(4));
  EXPECT_EQ(network.path_capacity(b, a), net::mbps(4));
  sim.run_until(sim::seconds(11));
  EXPECT_EQ(network.path_capacity(a, b), net::mbps(2));
}

TEST(Player, LoopsWhenRequested) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node(), b = topo.add_node();
  topo.add_link(a, b, net::mbps(10));
  net::Network network(sim, std::move(topo));

  BandwidthTrace t;
  t.append(sim::seconds(0), net::mbps(8));
  t.append(sim::seconds(2), net::mbps(3));
  TracePlayer player(network);
  player.add_bidirectional(a, b, t);
  player.start(/*loop=*/true);

  // One full cycle is ~3 s (2 s trace + 1 s restart gap); after several
  // cycles the capacity still alternates.
  sim.run_until(sim::seconds(30));
  const net::Bps cap = network.path_capacity(a, b);
  EXPECT_TRUE(cap == net::mbps(8) || cap == net::mbps(3));
  EXPECT_GT(network.reallocation_count(), 10);
}

TEST(CityLab, MeshShape) {
  const CityLabMesh mesh = citylab_mesh();
  EXPECT_EQ(mesh.topology.node_count(), 5);
  EXPECT_EQ(mesh.workers.size(), 4u);
  // node3-node4 link averages 25 Mbps (Fig. 8 setup).
  const auto l = mesh.topology.link_between(3, 4);
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(mesh.topology.link(*l).capacity, net::mbps(25));
  // Fully connected (every pair reachable).
  net::RoutingTable rt(mesh.topology);
  for (net::NodeId u = 0; u < 5; ++u) {
    for (net::NodeId v = 0; v < 5; ++v) EXPECT_TRUE(rt.reachable(u, v));
  }
}

TEST(CityLab, TraceBindingCoversAllLinks) {
  const CityLabMesh mesh = citylab_mesh();
  sim::Simulation sim;
  net::Network network(sim, mesh.topology);
  TracePlayer player(network);
  bind_citylab_traces(mesh, player, sim::minutes(1), /*fades=*/false, /*seed=*/1);
  player.start();
  sim.run_until(sim::seconds(30));
  // Every link should have been driven away from its exact initial mean at
  // least once by now (the OU process almost surely moves).
  int moved = 0;
  for (const auto& l : mesh.links) {
    const auto id = mesh.topology.link_between(l.a, l.b);
    if (network.link_capacity(*id) != l.mean_bps) ++moved;
  }
  EXPECT_GT(moved, 0);
}

}  // namespace
}  // namespace bass::trace

namespace bass::trace {
namespace {

TEST(Generator, FadeDurationRespected) {
  GeneratorParams p;
  p.mean_bps = net::mbps(20);
  p.fade_probability = 1.0;  // fade starts immediately
  p.fade_depth_frac = 0.25;
  p.fade_duration = sim::seconds(40);
  p.duration = sim::minutes(2);
  util::Rng rng(1);
  const BandwidthTrace t = generate_trace(p, rng);
  // Every sample in the first 40 s is capped at 5 Mbps.
  for (const auto& pt : t.points()) {
    if (pt.at < sim::seconds(40)) {
      EXPECT_LE(pt.bps, net::mbps(5));
    }
  }
}

TEST(Generator, StepGranularityRespected) {
  GeneratorParams p;
  p.step = sim::seconds(5);
  p.duration = sim::minutes(1);
  util::Rng rng(2);
  const BandwidthTrace t = generate_trace(p, rng);
  EXPECT_EQ(t.size(), 13u);  // t=0,5,...,60
  EXPECT_EQ(t.points()[1].at, sim::seconds(5));
}

TEST(Player, SharedTimestampsApplyAsOneBatch) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node(), b = topo.add_node(), c = topo.add_node();
  topo.add_link(a, b, net::mbps(10));
  topo.add_link(b, c, net::mbps(10));
  net::Network network(sim, std::move(topo));
  network.open_stream(a, c, net::mbps(8));  // something to reallocate

  BandwidthTrace t1, t2;
  for (int i = 1; i <= 5; ++i) {
    t1.append(sim::seconds(i), net::mbps(3 + i));
    t2.append(sim::seconds(i), net::mbps(4 + i));
  }
  TracePlayer player(network);
  player.add_bidirectional(a, b, t1);
  player.add_bidirectional(b, c, t2);
  const auto before = network.reallocation_count();
  player.start();
  sim.run_until(sim::minutes(1));
  // 5 ticks, 4 links, but one reallocation per tick thanks to batching.
  EXPECT_LE(network.reallocation_count() - before, 5 + 1);
}

TEST(Player, EmptyPlayerIsANoOp) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node(), b = topo.add_node();
  topo.add_link(a, b, net::mbps(10));
  net::Network network(sim, std::move(topo));
  TracePlayer player(network);
  player.start(/*loop=*/true);
  sim.run_until(sim::minutes(1));
  EXPECT_EQ(network.path_capacity(a, b), net::mbps(10));
  EXPECT_EQ(player.max_duration(), 0);
}

TEST(CityLab, PerLinkFadeDepthClasses) {
  const CityLabMesh mesh = citylab_mesh();
  for (const auto& l : mesh.links) {
    EXPECT_GT(l.fade_depth, 0.0);
    EXPECT_LE(l.fade_depth, 1.0);
  }
  // The Fig. 2 "variable" class link collapses harder than the stable one.
  double stable_depth = 0, variable_depth = 0;
  for (const auto& l : mesh.links) {
    if (l.mean_bps == net::kbps(19900)) stable_depth = l.fade_depth;
    if (l.mean_bps == net::kbps(7620)) variable_depth = l.fade_depth;
  }
  EXPECT_GT(stable_depth, variable_depth);
}

}  // namespace
}  // namespace bass::trace
