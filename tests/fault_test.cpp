// Fault-injection subsystem: plan parsing/generation determinism, the
// injector's end-to-end effect on a scenario (crash -> recover round trip,
// probe loss, link-down overlays), and the invariant checker's ability to
// catch deliberately corrupted state.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "app/app_graph.h"
#include "core/orchestrator.h"
#include "fault/injector.h"
#include "fault/invariants.h"
#include "fault/plan.h"
#include "monitor/net_monitor.h"
#include "net/network.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "sim/simulation.h"
#include "util/ini.h"
#include "util/rng.h"

namespace bass::fault {
namespace {

// ---- Plan parsing ----

struct ParseRig {
  net::Topology topo;
  std::vector<std::string> names{"a", "b", "c"};

  ParseRig() {
    for (const auto& n : names) topo.add_node(n);
    topo.add_link(0, 1, net::mbps(20));
    topo.add_link(1, 2, net::mbps(20));
    topo.add_link(0, 2, net::mbps(20));
  }

  NodeResolver resolver() const {
    return [this](const std::string& name) -> net::NodeId {
      const auto it = std::find(names.begin(), names.end(), name);
      return it == names.end() ? net::kInvalidNode
                               : static_cast<net::NodeId>(it - names.begin());
    };
  }

  util::Expected<FaultPlan> parse(const std::string& text) const {
    auto ini = util::parse_ini(text);
    EXPECT_TRUE(ini.ok()) << (ini.ok() ? "" : ini.error());
    return parse_fault_plan(ini.value(), resolver(), topo);
  }
};

int count_kind(const FaultPlan& plan, FaultKind kind) {
  return static_cast<int>(std::count_if(
      plan.actions.begin(), plan.actions.end(),
      [kind](const FaultAction& a) { return a.kind == kind; }));
}

TEST(FaultPlan, ParsesScriptedSectionsAndExpandsCompoundFaults) {
  ParseRig rig;
  auto plan = rig.parse(R"(
[fault node_crash a]
at_s = 10
duration_s = 20
detection_delay_s = 5
[fault link_down a b]
at_s = 5
[fault link_flap b c]
start_s = 0
end_s = 60
period_s = 30
duty = 0.5
[fault partition c]
at_s = 40
duration_s = 10
[fault probe_loss]
at_s = 0
rate = 0.25
seed = 9
)");
  ASSERT_TRUE(plan.ok()) << plan.error();
  const auto& p = plan.value();
  // crash+auto-recover (2) + link_down (1) + two flap cycles (4) +
  // partition of {c} cutting b-c and a-c (2 down + 2 up) + probe_loss (1).
  EXPECT_EQ(p.size(), 12u);
  EXPECT_EQ(count_kind(p, FaultKind::kNodeCrash), 1);
  EXPECT_EQ(count_kind(p, FaultKind::kNodeRecover), 1);
  EXPECT_EQ(count_kind(p, FaultKind::kLinkDown), 5);
  EXPECT_EQ(count_kind(p, FaultKind::kLinkUp), 4);
  EXPECT_EQ(count_kind(p, FaultKind::kProbeLoss), 1);
  EXPECT_TRUE(std::is_sorted(
      p.actions.begin(), p.actions.end(),
      [](const FaultAction& x, const FaultAction& y) { return x.at < y.at; }));
  // The scripted crash carries its detection delay and auto-recovery.
  const auto crash = std::find_if(p.actions.begin(), p.actions.end(),
                                  [](const FaultAction& a) {
                                    return a.kind == FaultKind::kNodeCrash;
                                  });
  ASSERT_NE(crash, p.actions.end());
  EXPECT_EQ(crash->at, sim::seconds(10));
  EXPECT_EQ(crash->detection_delay, sim::seconds(5));
}

TEST(FaultPlan, RejectsUnknownNodesActionsAndUselessCuts) {
  ParseRig rig;
  auto unknown = rig.parse("[fault node_crash ghost]\nat_s = 1\n");
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.error().find("unknown node"), std::string::npos);

  auto bad_action = rig.parse("[fault meteor_strike a]\nat_s = 1\n");
  ASSERT_FALSE(bad_action.ok());
  EXPECT_NE(bad_action.error().find("unknown fault action"), std::string::npos);

  // A cut-set covering every node crosses nothing.
  auto no_cross = rig.parse("[fault partition a b c]\nat_s = 1\n");
  ASSERT_FALSE(no_cross.ok());
  EXPECT_NE(no_cross.error().find("crosses no links"), std::string::npos);

  auto no_link = rig.parse("[fault link_down a ghost]\nat_s = 1\n");
  EXPECT_FALSE(no_link.ok());
}

TEST(FaultPlan, ChaosGenerationIsDeterministicPerSeed) {
  ChaosParams params;
  params.crash_mtbf_s = 60;
  params.mttr_s = 30;
  params.flap_mtbf_s = 40;
  params.flap_down_s = 10;
  params.probe_loss = 0.2;
  params.horizon = sim::minutes(10);
  const std::vector<net::NodeId> nodes{0, 1, 2};
  const std::vector<std::pair<net::NodeId, net::NodeId>> links{{0, 1}, {1, 2}, {0, 2}};

  auto draw = [&](std::uint64_t seed) {
    util::Rng rng(seed);
    return generate_chaos_plan(params, nodes, links, rng);
  };
  const auto a = draw(42);
  const auto b = draw(42);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_GT(a.size(), 2u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.actions[i].at, b.actions[i].at) << "action " << i;
    EXPECT_EQ(a.actions[i].kind, b.actions[i].kind) << "action " << i;
    EXPECT_EQ(a.actions[i].node, b.actions[i].node) << "action " << i;
    EXPECT_EQ(a.actions[i].peer, b.actions[i].peer) << "action " << i;
    EXPECT_EQ(a.actions[i].seed, b.actions[i].seed) << "action " << i;
  }

  // A different seed draws a different timeline.
  const auto c = draw(43);
  bool differs = a.size() != c.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a.actions[i].at != c.actions[i].at ||
              a.actions[i].kind != c.actions[i].kind;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, ChaosAlwaysLeavesOneNodeStanding) {
  ChaosParams params;
  params.crash_mtbf_s = 5;  // brutal: ~120 crash attempts over the horizon
  params.mttr_s = 600;      // repairs far slower than crashes
  params.flap_mtbf_s = 0;
  params.horizon = sim::minutes(10);
  const std::vector<net::NodeId> nodes{0, 1, 2};
  util::Rng rng(7);
  const auto plan = generate_chaos_plan(params, nodes, {}, rng);
  // Replay the down/up timeline: never more than nodes-1 down at once.
  std::vector<bool> down(nodes.size(), false);
  for (const auto& a : plan.actions) {
    if (a.kind == FaultKind::kNodeCrash) down[static_cast<std::size_t>(a.node)] = true;
    if (a.kind == FaultKind::kNodeRecover) down[static_cast<std::size_t>(a.node)] = false;
    EXPECT_LT(static_cast<std::size_t>(std::count(down.begin(), down.end(), true)),
              nodes.size());
  }
}

// ---- Network link-down overlay ----

TEST(FaultNetwork, LinkDownOverlayLayersUnderCapacityWrites) {
  sim::Simulation sim;
  net::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_link(0, 1, net::mbps(20));
  net::Network network(sim, topo);

  network.set_link_down_between(0, 1, true);
  EXPECT_EQ(network.path_capacity(0, 1), 0);

  // A trace tick lands while the link is down: remembered, not applied.
  network.set_link_capacity_between(0, 1, net::mbps(5));
  EXPECT_EQ(network.path_capacity(0, 1), 0);

  // Lifting the overlay resurfaces the latest written capacity.
  network.set_link_down_between(0, 1, false);
  EXPECT_EQ(network.path_capacity(0, 1), net::mbps(5));

  // Idempotent and symmetric.
  network.set_link_down_between(0, 1, false);
  EXPECT_EQ(network.path_capacity(0, 1), net::mbps(5));
}

// ---- Probe loss ----

TEST(FaultMonitor, ProbeLossDropsResultsDeterministically) {
  sim::Simulation sim;
  net::Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  topo.add_link(0, 1, net::mbps(20));
  net::Network network(sim, topo);
  monitor::NetMonitor mon(network);
  mon.set_probe_loss(1.0, /*seed=*/3);
  mon.start();
  sim.run_until(sim::minutes(6));
  mon.stop();
  EXPECT_GT(mon.probes_dropped(), 0);
}

// ---- Invariant checker vs deliberately corrupted state ----

struct OrchRig {
  sim::Simulation sim;
  net::Topology topo;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;
  core::DeploymentId id = core::kInvalidDeployment;

  OrchRig() {
    topo.add_node("a");
    topo.add_node("b");
    topo.add_node("c");
    topo.add_link(0, 1, net::mbps(20));
    topo.add_link(1, 2, net::mbps(20));
    topo.add_link(0, 2, net::mbps(20));
    network = std::make_unique<net::Network>(sim, topo);
    for (net::NodeId n = 0; n <= 2; ++n) cluster.add_node(n, {4000, 4096, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster);
  }

  void deploy_pair() {
    app::AppGraph g("pair");
    g.add_component({.name = "x", .cpu_milli = 1000, .memory_mb = 256});
    g.add_component({.name = "y", .cpu_milli = 1000, .memory_mb = 256});
    g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(2)});
    id = orch->deploy(std::move(g), core::SchedulerKind::kBassAuto).take();
  }
};

TEST(FaultInvariants, CatchesCorruptedResourceAccounting) {
  OrchRig rig;
  rig.deploy_pair();
  Invariants inv(*rig.orch);
  EXPECT_EQ(inv.check_now(), 0);

  // Leak an allocation behind the orchestrator's back.
  ASSERT_TRUE(rig.cluster.allocate(rig.orch->node_of(rig.id, 0), 128, 0));
  EXPECT_GE(inv.check_now(), 1);
  EXPECT_GE(inv.violations(), 1);
}

TEST(FaultInvariants, CatchesUpComponentOnFailedNode) {
  OrchRig rig;
  rig.deploy_pair();
  Invariants inv(*rig.orch);

  // Fail a node hosting nothing (no components drop), then sneak an up
  // component onto it by uncordoning behind the orchestrator's back.
  net::NodeId dead = net::kInvalidNode;
  for (net::NodeId n = 0; n <= 2; ++n) {
    if (n != rig.orch->node_of(rig.id, 0) && n != rig.orch->node_of(rig.id, 1)) dead = n;
  }
  ASSERT_NE(dead, net::kInvalidNode);
  rig.orch->fail_node(dead, sim::minutes(30));
  EXPECT_EQ(inv.check_now(), 0);

  rig.cluster.set_schedulable(dead, true);
  ASSERT_TRUE(rig.orch->migrate(rig.id, 0, dead));
  rig.sim.run_until(rig.sim.now() + sim::minutes(1));  // past the restart
  ASSERT_TRUE(rig.orch->is_up(rig.id, 0));
  EXPECT_GE(inv.check_now(), 1);
}

TEST(FaultInvariants, CatchesJournalMigrationMismatch) {
  OrchRig rig;
  obs::Recorder recorder;
  rig.orch->set_recorder(&recorder);
  rig.deploy_pair();
  Invariants inv(*rig.orch, &recorder);
  EXPECT_EQ(inv.check_now(), 0);

  // A MigrationCompleted record with no matching MigrationEvent: the
  // journal and the orchestrator's ledger disagree.
  recorder.record(obs::MigrationCompleted{.at = rig.sim.now(),
                                          .deployment = rig.id,
                                          .component = 0,
                                          .from = 0,
                                          .to = 1,
                                          .reason = "manual"});
  EXPECT_GE(inv.check_now(), 1);
}

TEST(FaultInvariants, RecoverNodeUncordonsAfterDrain) {
  OrchRig rig;
  rig.deploy_pair();
  const net::NodeId victim = rig.orch->node_of(rig.id, 1);
  rig.orch->drain_node(victim);
  rig.sim.run_until(rig.sim.now() + sim::minutes(2));
  EXPECT_FALSE(rig.cluster.can_fit(victim, 0, 0));  // cordoned
  EXPECT_FALSE(rig.orch->node_failed(victim));      // drained, not failed

  rig.orch->recover_node(victim);
  EXPECT_TRUE(rig.cluster.can_fit(victim, 0, 0));

  Invariants inv(*rig.orch);
  EXPECT_EQ(inv.check_now(), 0);
}

}  // namespace
}  // namespace bass::fault

// ---- Scenario-level end-to-end ----

namespace bass::fault {
namespace {

constexpr const char* kFaultMesh = R"(
[node a]
cpu = 4000
[node b]
cpu = 4000
[node c]
cpu = 4000
[link a b]
capacity_mbps = 20
[link b c]
capacity_mbps = 20
[link a c]
capacity_mbps = 20
[component x]
cpu = 1000
[component y]
cpu = 1000
pinned = b
[edge x y]
bandwidth_mbps = 2
request_bytes = 1000
response_bytes = 2000
[workload]
rps = 20
client = a
[run]
duration_s = 300
)";

std::unique_ptr<scenario::Scenario> build(const std::string& text) {
  const auto ini = util::parse_ini(text);
  EXPECT_TRUE(ini.ok()) << (ini.ok() ? "" : ini.error());
  auto s = scenario::Scenario::from_ini(ini.value());
  EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error());
  return s.ok() ? std::move(s.value()) : nullptr;
}

TEST(FaultScenario, ScriptedCrashRecoverRoundTrip) {
  std::string text = kFaultMesh;
  text += "[fault node_crash b]\nat_s = 60\nduration_s = 60\n";
  auto s = build(text);
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->injector(), nullptr);
  ASSERT_NE(s->invariants(), nullptr);
  const auto report = s->run();

  EXPECT_EQ(report.faults_injected, 2);  // crash + auto-recover
  EXPECT_EQ(report.invariant_violations, 0);
  // The pinned component waited out the outage and came back on b.
  const auto y = s->app().find("y");
  EXPECT_TRUE(s->orchestrator().is_up(s->deployment(), y));
  EXPECT_EQ(s->orchestrator().node_of(s->deployment(), y), s->node_id("b"));
  EXPECT_FALSE(s->orchestrator().node_failed(s->node_id("b")));
  // Its recovery is on the ledger as a failover.
  bool failover_seen = false;
  for (const auto& ev : s->orchestrator().migration_events()) {
    if (ev.reason == core::MoveReason::kFailover) failover_seen = true;
  }
  EXPECT_TRUE(failover_seen);
}

TEST(FaultScenario, LinkFaultSectionsDriveTheOverlay) {
  std::string text = kFaultMesh;
  text += "[fault link_down a b]\nat_s = 30\nduration_s = 60\n";
  auto s = build(text);
  ASSERT_NE(s, nullptr);
  auto& net = s->network();
  const auto a = s->node_id("a"), b = s->node_id("b");
  s->orchestrator().simulation().run_until(sim::seconds(45));
  EXPECT_EQ(net.path_capacity(a, b), 0);
  s->orchestrator().simulation().run_until(sim::seconds(120));
  EXPECT_GT(net.path_capacity(a, b), 0);
}

constexpr const char* kChaosMesh = R"(
[node a]
cpu = 4000
[node b]
cpu = 4000
[node c]
cpu = 4000
[link a b]
capacity_mbps = 20
[link b c]
capacity_mbps = 20
[link a c]
capacity_mbps = 20
[component x]
cpu = 1000
[component y]
cpu = 1000
[edge x y]
bandwidth_mbps = 2
request_bytes = 1000
response_bytes = 2000
[migration]
enabled = true
interval_s = 30
[workload]
rps = 20
client = a
[chaos]
seed = 5
crash_mtbf_s = 90
mttr_s = 30
crash_detection_s = 5
flap_mtbf_s = 60
flap_down_s = 10
probe_loss = 0.2
[run]
duration_s = 240
)";

std::string fault_event_lines(const std::string& jsonl) {
  std::string out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("fault_injected") != std::string::npos) out += line + '\n';
  }
  return out;
}

TEST(FaultScenario, ChaosRunIsCleanAndSameSeedGivesSameFaultJournal) {
  auto run_one = [] {
    auto s = build(kChaosMesh);
    EXPECT_NE(s, nullptr);
    const auto report = s->run();
    EXPECT_GT(report.faults_injected, 0);
    EXPECT_EQ(report.invariant_violations, 0);
    return fault_event_lines(s->recorder().journal().to_jsonl());
  };
  const auto first = run_one();
  const auto second = run_one();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // byte-identical fault timeline per seed

  // A different seed perturbs the fault timeline.
  std::string other = kChaosMesh;
  other.replace(other.find("seed = 5"), 8, "seed = 6");
  auto s = build(other);
  ASSERT_NE(s, nullptr);
  s->run();
  EXPECT_NE(fault_event_lines(s->recorder().journal().to_jsonl()), first);
}

TEST(FaultScenario, InvariantsSectionCanDisableTheChecker) {
  std::string text = kFaultMesh;
  text += "[invariants]\nenabled = false\n";
  auto s = build(text);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->invariants(), nullptr);
  const auto report = s->run();
  EXPECT_EQ(report.invariant_violations, 0);
}

}  // namespace
}  // namespace bass::fault
