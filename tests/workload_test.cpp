#include <gtest/gtest.h>

#include <memory>

#include "app/catalog.h"
#include "core/orchestrator.h"
#include "workload/request_engine.h"
#include "workload/video_conference.h"

namespace bass::workload {
namespace {

struct Fixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;

  explicit Fixture(net::Bps link = net::mbps(100), int nodes = 3,
                   std::int64_t cpu = 16000) {
    net::Topology topo;
    for (int i = 0; i < nodes; ++i) topo.add_node();
    for (int i = 0; i + 1 < nodes; ++i) topo.add_link(i, i + 1, link);
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < nodes; ++i) cluster.add_node(i, {cpu, 32768, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster);
  }
};

app::AppGraph two_stage_app() {
  app::AppGraph g("two-stage");
  g.add_component({.name = "front", .cpu_milli = 100, .memory_mb = 64,
                   .service_time = sim::millis(2), .concurrency = 8});
  g.add_component({.name = "back", .cpu_milli = 100, .memory_mb = 64,
                   .service_time = sim::millis(3), .concurrency = 8});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(5),
                    .request_bytes = 2000, .response_bytes = 8000});
  return g;
}

TEST(RequestEngine, CompletesRequestsWithSaneLatency) {
  Fixture f;
  const auto id = f.orch->deploy(two_stage_app(), core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 20;
  cfg.client_node = 0;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::seconds(30));
  engine.stop();
  f.sim.run_until(sim::seconds(35));

  EXPECT_NEAR(static_cast<double>(engine.issued()), 600, 5);
  EXPECT_EQ(engine.in_flight(), 0);
  // Colocated deployment: latency = client hops + 2+3 ms service + small
  // transfers. Must sit in the few-ms to tens-of-ms band.
  EXPECT_GT(engine.latencies().mean_ms(), 4.0);
  EXPECT_LT(engine.latencies().mean_ms(), 50.0);
}

TEST(RequestEngine, ExponentialArrivalsMatchMeanRate) {
  Fixture f;
  const auto id = f.orch->deploy(two_stage_app(), core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 50;
  cfg.arrival = RequestWorkloadConfig::Arrival::kExponential;
  cfg.client_node = 0;
  cfg.seed = 7;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  // 50 rps * 120 s = 6000 +- sampling noise.
  EXPECT_NEAR(static_cast<double>(engine.issued()), 6000, 300);
}

TEST(RequestEngine, ThinLinkInflatesLatency) {
  // Same app, pair forced across a starved link via manual placements is
  // not directly expressible; instead compare fat vs thin link with k3s
  // spreading the two components.
  auto run = [](net::Bps link) {
    Fixture f(link, 2);
    // k3s spreads: front on one node, back on the other.
    const auto id =
        f.orch->deploy(two_stage_app(), core::SchedulerKind::kK3sDefault).take();
    EXPECT_NE(f.orch->node_of(id, 0), f.orch->node_of(id, 1));
    RequestWorkloadConfig cfg;
    cfg.rps = 30;
    cfg.client_node = 0;
    auto engine = std::make_unique<RequestEngine>(*f.orch, id, cfg);
    engine->start();
    f.sim.run_until(sim::seconds(60));
    engine->stop();
    f.sim.run_until(sim::seconds(90));
    return engine->latencies().mean_ms();
  };
  const double fat = run(net::mbps(100));
  const double thin = run(net::mbps(1));  // 30 rps * 10 KB * 8 = 2.4 Mbps >> 1 Mbps
  EXPECT_GT(thin, fat * 5.0);  // saturated link => queueing blow-up
}

TEST(RequestEngine, RecordsTrafficStats) {
  Fixture f;
  const auto id = f.orch->deploy(two_stage_app(), core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 20;
  cfg.client_node = 0;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::seconds(30));
  engine.stop();
  f.sim.run_until(sim::seconds(35));
  // ~600 requests x (2000+8000) bytes on the front->back edge.
  const auto total = f.orch->traffic_stats(id).total_bytes(0, 1);
  EXPECT_NEAR(static_cast<double>(total), 600.0 * 10000.0, 600.0 * 10000.0 * 0.05);
}

TEST(RequestEngine, ComponentDownParksAndDrains) {
  Fixture f;
  const auto id = f.orch->deploy(two_stage_app(), core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 10;
  cfg.client_node = 0;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  // Restart the backend at t=10 (20 s outage).
  f.sim.schedule_at(sim::seconds(10), [&] { f.orch->restart_component(id, 1); });
  f.sim.run_until(sim::seconds(60));
  engine.stop();
  f.sim.run_until(sim::seconds(90));
  EXPECT_EQ(engine.in_flight(), 0);  // parked calls drained after restart
  // Requests issued during the outage waited ~ up to 20 s.
  EXPECT_GT(engine.latencies().max_ms(), 5'000.0);
  EXPECT_LT(engine.latencies().median_ms(), 100.0);  // most unaffected
}

TEST(RequestEngine, ProbabilisticEdgesInvokedProportionally) {
  Fixture f;
  app::AppGraph g("prob");
  g.add_component({.name = "root", .cpu_milli = 100, .memory_mb = 64,
                   .service_time = sim::millis(1), .concurrency = 8});
  g.add_component({.name = "rare", .cpu_milli = 100, .memory_mb = 64,
                   .service_time = sim::millis(1), .concurrency = 8});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1),
                    .request_bytes = 1000, .response_bytes = 1000,
                    .probability = 0.25});
  const auto id = f.orch->deploy(g, core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 50;
  cfg.client_node = 0;
  cfg.seed = 3;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  f.sim.run_until(sim::minutes(3));
  const double invocations =
      static_cast<double>(f.orch->traffic_stats(id).total_bytes(0, 1)) / 2000.0;
  EXPECT_NEAR(invocations / static_cast<double>(engine.completed()), 0.25, 0.04);
}

// ---- Video conference ----

app::AppGraph vc_app(const std::vector<std::pair<net::NodeId, int>>& groups,
                     net::Bps rate) {
  return app::video_conference_app(groups, rate);
}

TEST(VideoConference, FullMeshBitrateWhenUncontended) {
  Fixture f(net::mbps(100));
  const std::vector<std::pair<net::NodeId, int>> groups{{0, 2}, {2, 2}};
  const auto id =
      f.orch->deploy(vc_app(groups, net::kbps(800)), core::SchedulerKind::kBassBfs)
          .take();
  VideoConferenceConfig cfg;
  cfg.groups = {{0, 2}, {2, 2}};
  cfg.per_stream = net::kbps(800);
  VideoConferenceEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(1));
  engine.stop();
  // 4 participants, each receives 3 streams of 800 Kbps.
  EXPECT_EQ(engine.total_participants(), 4);
  EXPECT_EQ(engine.expected_per_client(), net::kbps(2400));
  EXPECT_NEAR(engine.mean_bitrate(0, sim::seconds(5)), 2400e3, 50e3);
  EXPECT_NEAR(engine.mean_loss(0, sim::seconds(5)), 0.0, 0.02);
}

TEST(VideoConference, BottleneckCausesLoss) {
  Fixture f(net::mbps(100));
  const std::vector<std::pair<net::NodeId, int>> groups{{2, 8}};
  const auto id =
      f.orch->deploy(vc_app(groups, net::kbps(800)), core::SchedulerKind::kBassBfs)
          .take();
  VideoConferenceConfig cfg;
  cfg.groups = {{2, 8}};
  cfg.per_stream = net::kbps(800);
  VideoConferenceEngine engine(*f.orch, id, cfg);
  engine.start();
  // 8 clients x 7 streams x 800 Kbps = 44.8 Mbps of forwarding demand.
  // Squeeze the SFU-side link to 10 Mbps: heavy loss.
  const net::NodeId sfu_node = f.orch->node_of(id, 0);
  if (sfu_node != 2) {
    f.network->set_link_capacity_between(sfu_node, 2, net::mbps(10));
  }
  f.sim.run_until(sim::minutes(1));
  engine.stop();
  if (sfu_node != 2) {
    EXPECT_GT(engine.mean_loss(2, sim::seconds(5)), 0.5);
    EXPECT_LT(engine.mean_bitrate(2, sim::seconds(5)), 2e6);
  }
}

TEST(VideoConference, SinglePublisherMode) {
  Fixture f(net::mbps(100));
  const std::vector<std::pair<net::NodeId, int>> groups{{2, 9}};
  const auto id =
      f.orch->deploy(vc_app(groups, net::kbps(800)), core::SchedulerKind::kBassBfs)
          .take();
  VideoConferenceConfig cfg;
  cfg.groups = {{2, 9}};
  cfg.per_stream = net::kbps(800);
  cfg.single_publisher = true;
  VideoConferenceEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::seconds(30));
  engine.stop();
  EXPECT_EQ(engine.expected_per_client(), net::kbps(800));
  // Each of the 8 receiving clients gets the full 800 Kbps stream.
  EXPECT_NEAR(engine.mean_bitrate(2, sim::seconds(5)), 800e3, 40e3);
}

TEST(VideoConference, MigrationDisruptsThenRestores) {
  Fixture f(net::mbps(100));
  const std::vector<std::pair<net::NodeId, int>> groups{{0, 3}};
  const auto id =
      f.orch->deploy(vc_app(groups, net::kbps(800)), core::SchedulerKind::kBassBfs)
          .take();
  VideoConferenceConfig cfg;
  cfg.groups = {{0, 3}};
  cfg.per_stream = net::kbps(800);
  cfg.reconnect_delay = sim::seconds(10);
  VideoConferenceEngine engine(*f.orch, id, cfg);
  engine.start();
  const net::NodeId before = f.orch->node_of(id, 0);
  f.sim.schedule_at(sim::seconds(60), [&] {
    f.orch->migrate(id, 0, (before + 1) % 3);
  });
  f.sim.run_until(sim::minutes(3));
  engine.stop();
  // During the outage (60..90: 20 s restart + 10 s reconnect) bitrate ~0.
  EXPECT_LT(engine.bitrate_series(0).mean_in(sim::seconds(65), sim::seconds(85)), 1.0);
  // Restored afterwards.
  EXPECT_NEAR(engine.bitrate_series(0).mean_in(sim::seconds(100), sim::minutes(3)),
              1600e3, 100e3);
}

}  // namespace
}  // namespace bass::workload

namespace bass::workload {
namespace {

TEST(RequestEngine, ConnectionPoolShedsUnderOverload) {
  Fixture f(net::mbps(1), 2);  // starved link
  const auto id =
      f.orch->deploy(two_stage_app(), core::SchedulerKind::kK3sDefault).take();
  ASSERT_NE(f.orch->node_of(id, 0), f.orch->node_of(id, 1));
  RequestWorkloadConfig cfg;
  cfg.rps = 100;  // 100 * 10 KB * 8 = 8 Mbps offered over a 1 Mbps link
  cfg.client_node = 0;
  cfg.max_in_flight = 50;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  // Shedding happened and in-flight stayed at the cap.
  EXPECT_GT(engine.shed(), 0);
  EXPECT_LE(engine.in_flight(), 50);
  // Completed-request latency is bounded by the queue the cap allows,
  // far below the unbounded-backlog regime.
  EXPECT_LT(engine.latencies().max_ms(), 60'000.0);
}

TEST(RequestEngine, NoSheddingWhenHealthy) {
  Fixture f;
  const auto id =
      f.orch->deploy(two_stage_app(), core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 20;
  cfg.client_node = 0;
  cfg.max_in_flight = 50;
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(1));
  engine.stop();
  f.sim.run_until(sim::minutes(2));
  EXPECT_EQ(engine.shed(), 0);
}

TEST(RequestEngine, ServerConcurrencyBoundsThroughput) {
  Fixture f;
  app::AppGraph g("slow");
  g.add_component({.name = "only", .cpu_milli = 100, .memory_mb = 64,
                   .service_time = sim::millis(100), .concurrency = 1});
  const auto id = f.orch->deploy(g, core::SchedulerKind::kBassBfs).take();
  RequestWorkloadConfig cfg;
  cfg.rps = 50;  // 5x the single-slot service capacity of 10/s
  cfg.client_node = f.orch->node_of(id, 0);
  RequestEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::seconds(30));
  engine.stop();
  // Completions track the 10/s service rate, not the 50/s offered rate.
  EXPECT_NEAR(static_cast<double>(engine.completed()), 300.0, 15.0);
  // Queue wait dominates latency.
  EXPECT_GT(engine.latencies().max_ms(), 1'000.0);
}

TEST(VideoConference, SurvivesBackToBackMigrations) {
  Fixture f(net::mbps(100));
  const std::vector<std::pair<net::NodeId, int>> groups{{0, 3}};
  const auto id =
      f.orch->deploy(vc_app(groups, net::kbps(800)), core::SchedulerKind::kBassBfs)
          .take();
  VideoConferenceConfig cfg;
  cfg.groups = {{0, 3}};
  cfg.per_stream = net::kbps(800);
  cfg.reconnect_delay = sim::seconds(5);
  VideoConferenceEngine engine(*f.orch, id, cfg);
  engine.start();
  // Two migrations in quick succession; the engine must end up connected
  // at the final location, never double-connected.
  const net::NodeId start = f.orch->node_of(id, 0);
  f.sim.schedule_at(sim::seconds(30), [&] {
    f.orch->migrate(id, 0, (start + 1) % 3);
  });
  f.sim.schedule_at(sim::seconds(60), [&] {
    f.orch->migrate(id, 0, (start + 2) % 3);
  });
  f.sim.run_until(sim::minutes(4));
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_NEAR(engine.bitrate_series(0).mean_in(sim::minutes(3), sim::minutes(4)),
              1600e3, 100e3);
  engine.stop();
}

TEST(VideoConference, LossSeriesComplementsBitrate) {
  Fixture f(net::mbps(100));
  const std::vector<std::pair<net::NodeId, int>> groups{{2, 4}};
  const auto id =
      f.orch->deploy(vc_app(groups, net::mbps(1)), core::SchedulerKind::kBassBfs)
          .take();
  VideoConferenceConfig cfg;
  cfg.groups = {{2, 4}};
  cfg.per_stream = net::mbps(1);
  VideoConferenceEngine engine(*f.orch, id, cfg);
  engine.start();
  const net::NodeId sfu_node = f.orch->node_of(id, 0);
  if (sfu_node != 2) {
    // Halve the expected 12 Mbps forwarding load.
    f.network->set_link_capacity_between(sfu_node, 2, net::mbps(6));
  }
  f.sim.run_until(sim::minutes(1));
  engine.stop();
  if (sfu_node != 2) {
    const double bitrate = engine.mean_bitrate(2, sim::seconds(5));
    const double loss = engine.mean_loss(2, sim::seconds(5));
    const double expected = static_cast<double>(engine.expected_per_client());
    EXPECT_NEAR(bitrate / expected + loss, 1.0, 0.02);
  }
}

}  // namespace
}  // namespace bass::workload
