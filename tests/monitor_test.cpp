#include <gtest/gtest.h>

#include <memory>

#include "monitor/net_monitor.h"
#include "monitor/traffic_stats.h"

namespace bass::monitor {
namespace {

TEST(TrafficStats, RecordAndTotals) {
  TrafficStats stats;
  stats.record(1, 2, 1000);
  stats.record(1, 2, 500);
  stats.record(2, 1, 100);
  EXPECT_EQ(stats.total_bytes(1, 2), 1500);
  EXPECT_EQ(stats.total_bytes(2, 1), 100);
  EXPECT_EQ(stats.total_bytes(3, 4), 0);
}

TEST(TrafficStats, TakeRateResetsWindow) {
  TrafficStats stats;
  stats.record(1, 2, 12'500);  // 100 kbit
  // Over 10 s that is 10 kbps.
  EXPECT_EQ(stats.take_rate(1, 2, sim::seconds(10)), net::kbps(10));
  // Window reset: nothing since t=10.
  EXPECT_EQ(stats.take_rate(1, 2, sim::seconds(20)), 0);
  EXPECT_EQ(stats.total_bytes(1, 2), 12'500);  // totals persist
}

TEST(TrafficStats, PeekDoesNotReset) {
  TrafficStats stats;
  stats.record(1, 2, 12'500);
  EXPECT_EQ(stats.peek_rate(1, 2, sim::seconds(10)), net::kbps(10));
  EXPECT_EQ(stats.peek_rate(1, 2, sim::seconds(10)), net::kbps(10));
}

TEST(TrafficStats, ZeroWindowIsZeroRate) {
  TrafficStats stats;
  stats.record(1, 2, 1000);
  EXPECT_EQ(stats.peek_rate(1, 2, 0), 0);
}

struct MonitorFixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;

  // 3 nodes in a line, 20 Mbps links.
  MonitorFixture() {
    net::Topology topo;
    for (int i = 0; i < 3; ++i) topo.add_node();
    topo.add_link(0, 1, net::mbps(20));
    topo.add_link(1, 2, net::mbps(20));
    network = std::make_unique<net::Network>(sim, std::move(topo));
  }
};

TEST(NetMonitor, StartupFullProbesMeasureCapacity) {
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  monitor.start();
  f.sim.run_until(sim::seconds(2));
  for (int l = 0; l < f.network->topology().link_count(); ++l) {
    EXPECT_NEAR(static_cast<double>(monitor.cached_capacity(l)), 20e6, 20e6 * 0.02)
        << "link " << l;
  }
  EXPECT_EQ(monitor.full_probe_count(), 4);
  monitor.stop();
}

TEST(NetMonitor, CachedPathCapacityIsBottleneck) {
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  monitor.start();
  f.sim.run_until(sim::seconds(2));
  f.network->set_link_capacity_between(1, 2, net::mbps(5));
  // Cache still says 20 until the next probe discovers the change.
  EXPECT_NEAR(static_cast<double>(monitor.cached_path_capacity(0, 2)), 20e6, 1e6);
  monitor.full_probe(*f.network->topology().link_between(1, 2));
  f.sim.run_until(sim::seconds(4));
  EXPECT_NEAR(static_cast<double>(monitor.cached_path_capacity(0, 2)), 5e6, 0.5e6);
  monitor.stop();
}

TEST(NetMonitor, HeadroomProbesRunPeriodically) {
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.probe_interval = sim::seconds(30);
  NetMonitor monitor(*f.network, cfg);
  monitor.start();
  f.sim.run_until(sim::minutes(2));
  // 4 links probed at t=30,60,90,120.
  EXPECT_EQ(monitor.headroom_probe_count(), 16);
  monitor.stop();
}

TEST(NetMonitor, HeadroomViolationDetectedAndFullProbeFollows) {
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.probe_interval = sim::seconds(30);
  cfg.headroom_frac = 0.10;
  NetMonitor monitor(*f.network, cfg);

  int violations = 0;
  net::LinkId violated = net::kInvalidLink;
  monitor.set_violation_callback([&](net::LinkId l, net::Bps) {
    ++violations;
    violated = l;
  });
  monitor.start();
  f.sim.run_until(sim::seconds(5));

  // Saturate link 0->1 with app traffic and shrink that direction only:
  // the 2 Mbps headroom probe can no longer be delivered alongside the
  // demand. (The reverse direction stays healthy, pinning down which link
  // the violation fires for.)
  const auto link01 = *f.network->topology().link_between(0, 1);
  f.network->open_stream(0, 1, net::kUnlimitedRate);
  f.network->set_link_capacity(link01, net::mbps(1));

  f.sim.run_until(sim::minutes(2));
  EXPECT_GT(violations, 0);
  EXPECT_EQ(violated, link01);
  // The follow-up full probe updated the cache downward.
  EXPECT_LT(monitor.cached_capacity(link01), net::mbps(3));
  monitor.stop();
}

TEST(NetMonitor, HeadroomOkWhenLinkIdle) {
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  monitor.start();
  f.sim.run_until(sim::minutes(2));
  for (int l = 0; l < f.network->topology().link_count(); ++l) {
    EXPECT_TRUE(monitor.headroom_ok(l));
  }
  monitor.stop();
}

TEST(NetMonitor, ProbeOverheadIsBounded) {
  // §6.3.4: 30 s interval, 1 s probes at 10 % capacity => ~0.33 % of link
  // traffic. Verify the measured overhead is in that ballpark.
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  monitor.start();
  f.sim.run_until(sim::minutes(10));
  monitor.stop();
  const double probe_bytes = static_cast<double>(monitor.probe_bytes_sent());
  // Capacity-seconds available over 10 min on 4 links of 20 Mbps:
  const double capacity_bytes = 4 * 20e6 / 8 * 600;
  const double startup_flood = 4 * 20e6 / 8 * 1;  // one 1 s flood per link
  EXPECT_LT(probe_bytes - startup_flood, capacity_bytes * 0.005);
  EXPECT_GT(probe_bytes, 0);
}

TEST(MonitorNetworkView, ReflectsCache) {
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  monitor.start();
  f.sim.run_until(sim::seconds(2));
  MonitorNetworkView view(monitor);
  EXPECT_EQ(view.link_count(), 4);
  EXPECT_NEAR(static_cast<double>(view.link_capacity(0)), 20e6, 1e6);
  EXPECT_NEAR(static_cast<double>(view.node_link_capacity(1)), 40e6, 2e6);
  EXPECT_EQ(view.path(0, 2).size(), 2u);
  EXPECT_NEAR(static_cast<double>(view.path_capacity(0, 2)), 20e6, 1e6);
  monitor.stop();
}

}  // namespace
}  // namespace bass::monitor

namespace bass::monitor {
namespace {

TEST(NetMonitor, DisplacementDetectedOnSaturatedLink) {
  // A saturated link still *delivers* a fair-share probe, but doing so
  // displaces application traffic — which must count as a headroom
  // violation (otherwise a congested link looks healthy to the probe).
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  monitor.start();
  f.sim.run_until(sim::seconds(5));
  // Fill 0->1 completely with a backlogged stream at its full capacity.
  f.network->open_stream(0, 1, net::kUnlimitedRate);
  int violations = 0;
  monitor.set_violation_callback([&](net::LinkId, net::Bps) { ++violations; });
  f.sim.run_until(sim::minutes(2));
  EXPECT_GT(violations, 0);
  const auto link01 = *f.network->topology().link_between(0, 1);
  EXPECT_FALSE(monitor.headroom_ok(link01));
  monitor.stop();
}

TEST(NetMonitor, FullRefreshRecoversStaleLowCapacity) {
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.probe_interval = sim::seconds(30);
  cfg.full_refresh_interval = sim::minutes(2);
  NetMonitor monitor(*f.network, cfg);
  monitor.start();
  f.sim.run_until(sim::seconds(5));

  const auto link01 = *f.network->topology().link_between(0, 1);
  // Degrade, let a violation-triggered full probe cache the low value.
  f.network->set_link_capacity(link01, net::mbps(2));
  // Saturate so the headroom probe notices the degradation.
  const auto hog = f.network->open_stream(0, 1, net::kUnlimitedRate);
  f.sim.run_until(sim::seconds(70));
  EXPECT_LT(monitor.cached_capacity(link01), net::mbps(5));
  // Recover the link; only the periodic refresh can discover it (headroom
  // probes are sized off the stale-low cache and keep passing).
  f.network->close_stream(hog);
  f.network->set_link_capacity(link01, net::mbps(20));
  f.sim.run_until(sim::minutes(5));
  EXPECT_GT(monitor.cached_capacity(link01), net::mbps(15));
  monitor.stop();
}

TEST(NetMonitor, AlwaysFullProbeAblationFloodsEveryRound) {
  MonitorFixture f;
  MonitorConfig cfg;
  cfg.probe_interval = sim::seconds(30);
  cfg.always_full_probe = true;
  cfg.full_refresh_interval = 0;
  NetMonitor monitor(*f.network, cfg);
  monitor.start();
  f.sim.run_until(sim::minutes(2));
  monitor.stop();
  EXPECT_EQ(monitor.headroom_probe_count(), 0);
  // Startup round (4) + 4 rounds x 4 links.
  EXPECT_EQ(monitor.full_probe_count(), 20);
}

TEST(NetMonitor, ViolationNotRaisedByBriefProbeOfIdleLink) {
  // Probing an idle link must never displace anything or fail.
  MonitorFixture f;
  NetMonitor monitor(*f.network);
  int violations = 0;
  monitor.set_violation_callback([&](net::LinkId, net::Bps) { ++violations; });
  monitor.start();
  f.sim.run_until(sim::minutes(5));
  EXPECT_EQ(violations, 0);
  monitor.stop();
}

}  // namespace
}  // namespace bass::monitor
