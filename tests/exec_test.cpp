// Sweep-engine tests: pool lifecycle/exception safety, per-run isolation,
// and the serial-vs-parallel determinism contract (byte-identical journals
// at any --jobs).
#include <algorithm>
#include <atomic>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/pool.h"
#include "exec/sweep.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "trace/trace.h"
#include "util/ini.h"

namespace bass {
namespace {

// A small mesh under chaos: enough faults and migrations in 60 simulated
// seconds to make journals non-trivial, small enough to run many times.
constexpr const char* kChaosScenario = R"(
[node a]
cpu = 2000
memory_mb = 2048

[node b]
cpu = 2000
memory_mb = 2048

[node c]
cpu = 2000
memory_mb = 2048

[link a b]
capacity_mbps = 10

[link b c]
capacity_mbps = 10

[link a c]
capacity_mbps = 8

[component fe]
cpu = 400
memory_mb = 128
concurrency = 4

[component be]
cpu = 400
memory_mb = 128

[edge fe be]
bandwidth_mbps = 2
request_bytes = 1200
response_bytes = 4000

[migration]
enabled = true
threshold = 0.5
headroom = 0.2
interval_s = 10
cooldown_s = 5
min_gap_s = 20

[workload]
rps = 25
arrival = exponential
client = a
seed = 7
max_in_flight = 200

[chaos]
seed = 1
crash_mtbf_s = 60
mttr_s = 15
crash_detection_s = 5
flap_mtbf_s = 40
flap_down_s = 8
probe_loss = 0.1

[run]
duration_s = 60
)";

util::IniFile chaos_ini() {
  auto parsed = util::parse_ini(kChaosScenario);
  if (!parsed.ok()) ADD_FAILURE() << parsed.error();
  return parsed.take();
}

std::vector<exec::RunSpec> seed_specs(std::uint64_t first, std::uint64_t count) {
  std::vector<exec::RunSpec> specs;
  for (std::uint64_t i = 0; i < count; ++i) {
    specs.push_back({"seed " + std::to_string(first + i),
                     {{"chaos", "seed", std::to_string(first + i)}}});
  }
  return specs;
}

// ---- Pool ----

TEST(PoolTest, RunsEveryTaskAndIsReusableAfterWait) {
  exec::Pool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::atomic<int> ran{0};
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    EXPECT_EQ(ran.load(), 64 * (round + 1));
  }
}

TEST(PoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> ran{0};
  {
    exec::Pool pool(2);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait(): destruction itself must not drop submitted work.
  }
  EXPECT_EQ(ran.load(), 32);
}

TEST(PoolTest, WaitRethrowsLowestSubmissionIdException) {
  exec::Pool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    pool.submit([&ran, i] {
      ran.fetch_add(1, std::memory_order_relaxed);
      if (i == 11) throw std::runtime_error("task 11");
      if (i == 3) throw std::runtime_error("task 3");
    });
  }
  try {
    pool.wait();
    FAIL() << "wait() should rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3");
  }
  // Every task still ran, and the pool keeps working afterwards.
  EXPECT_EQ(ran.load(), 16);
  pool.submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(ran.load(), 17);
}

TEST(PoolTest, ParallelForSameSemanticsAtAnyThreadCount) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    std::vector<std::atomic<int>> hits(20);
    try {
      exec::parallel_for(threads, hits.size(), [&hits](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 13 || i == 5) throw std::runtime_error("index " + std::to_string(i));
      });
      FAIL() << "parallel_for should rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "index 5") << "threads=" << threads;
    }
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

// ---- Recorder isolation (the obs satellite) ----

TEST(RecorderSlotTest, ThreadLocalSlotWinsOverProcessDefault) {
  obs::Recorder fallback, mine;
  obs::set_default_global_recorder(&fallback);
  EXPECT_EQ(obs::global_recorder(), &fallback);

  std::thread worker([&] {
    // A fresh thread starts on the fallback, then binds its own.
    EXPECT_EQ(obs::global_recorder(), &fallback);
    obs::ScopedGlobalRecorder bind(&mine);
    EXPECT_EQ(obs::global_recorder(), &mine);
  });
  worker.join();

  // The worker's binding never leaked into this thread.
  EXPECT_EQ(obs::global_recorder(), &fallback);
  obs::set_default_global_recorder(nullptr);
  EXPECT_EQ(obs::global_recorder(), nullptr);
}

// ---- Sweep artifacts ----

TEST(SweepTest, ApplyOverridesCreatesMissingSection) {
  util::IniFile ini = chaos_ini();
  ini.sections.erase(
      std::remove_if(ini.sections.begin(), ini.sections.end(),
                     [](const util::IniSection& s) { return s.kind() == "migration"; }),
      ini.sections.end());
  ASSERT_EQ(ini.first_of_kind("migration"), nullptr);
  exec::apply_overrides(ini, {{"migration", "threshold", "0.75"},
                              {"chaos", "seed", "9"}});
  const auto* migration = ini.first_of_kind("migration");
  ASSERT_NE(migration, nullptr);
  EXPECT_EQ(migration->get_or("threshold", ""), "0.75");
  EXPECT_EQ(ini.first_of_kind("chaos")->get_or("seed", ""), "9");
}

TEST(SweepTest, PreloadedFileTracesMatchPerRunParsing) {
  // A scenario that replays a recorded CSV trace on one link.
  trace::BandwidthTrace recorded;
  for (int t = 0; t <= 60; t += 5) {
    recorded.append(sim::seconds(t), net::Bps{(8 + t % 3) * 1000 * 1000});
  }
  const std::string csv = testing::TempDir() + "exec_test_trace.csv";
  ASSERT_TRUE(recorded.save_csv(csv));

  util::IniFile ini = chaos_ini();
  ini.sections.push_back(
      util::IniSection{{"trace", "a", "b"}, {{"file", csv}}});

  auto assets = scenario::ScenarioAssets::preload(ini);
  ASSERT_TRUE(assets.ok()) << assets.error();
  EXPECT_EQ(assets.value()->file_traces.size(), 1u);
  EXPECT_EQ(assets.value()->file_traces.count(csv), 1u);

  auto cached = scenario::Scenario::from_ini(ini, assets.value().get());
  auto parsed = scenario::Scenario::from_ini(ini);
  ASSERT_TRUE(cached.ok()) << cached.error();
  ASSERT_TRUE(parsed.ok()) << parsed.error();
  cached.value()->run();
  parsed.value()->run();
  EXPECT_EQ(cached.value()->recorder().journal().to_jsonl(),
            parsed.value()->recorder().journal().to_jsonl());
}

TEST(SweepTest, AppFingerprintIgnoresSeedsButNotComponents) {
  util::IniFile base = chaos_ini();
  const std::string fp = scenario::app_fingerprint(base);

  util::IniFile reseeded = base;
  exec::apply_overrides(reseeded, {{"chaos", "seed", "42"},
                                   {"workload", "seed", "42"},
                                   {"migration", "threshold", "0.9"}});
  EXPECT_EQ(scenario::app_fingerprint(reseeded), fp)
      << "seed/controller overrides must keep the cached app shareable";

  util::IniFile edited = base;
  exec::apply_overrides(edited, {{"component", "cpu", "999"}});
  EXPECT_NE(scenario::app_fingerprint(edited), fp);
}

// ---- Determinism: the serial-vs-parallel parity contract ----

TEST(SweepTest, JournalsAreByteIdenticalAtAnyJobCount) {
  auto artifacts = exec::SweepArtifacts::from_ini(chaos_ini());
  ASSERT_TRUE(artifacts.ok()) << artifacts.error();
  const auto specs = seed_specs(1, 3);

  const auto serial = exec::run_sweep(artifacts.value(), specs, 1);
  const auto parallel = exec::run_sweep(artifacts.value(), specs, 8);
  ASSERT_EQ(serial.size(), specs.size());
  ASSERT_EQ(parallel.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    ASSERT_TRUE(serial[i].error.empty()) << serial[i].error;
    ASSERT_TRUE(parallel[i].error.empty()) << parallel[i].error;
    EXPECT_FALSE(serial[i].journal.empty());
    // The whole journal — not just fault events — must match byte for byte.
    EXPECT_EQ(serial[i].journal, parallel[i].journal) << specs[i].label;
    EXPECT_EQ(serial[i].fault_events, parallel[i].fault_events);
    EXPECT_EQ(serial[i].report.requests_issued, parallel[i].report.requests_issued);
    EXPECT_EQ(serial[i].report.requests_completed,
              parallel[i].report.requests_completed);
    EXPECT_EQ(serial[i].report.migrations, parallel[i].report.migrations);
    EXPECT_EQ(serial[i].report.faults_injected, parallel[i].report.faults_injected);
    EXPECT_DOUBLE_EQ(serial[i].report.latency_p99_ms,
                     parallel[i].report.latency_p99_ms);
    EXPECT_EQ(serial[i].recovery_s, parallel[i].recovery_s);
    EXPECT_EQ(serial[i].components_down, parallel[i].components_down);
  }
  // Different seeds genuinely differ (the runs aren't degenerate copies).
  EXPECT_NE(serial[0].journal, serial[1].journal);
}

TEST(SweepTest, ConcurrentRunsOfTheSameSeedCannotContaminateEachOther) {
  auto artifacts = exec::SweepArtifacts::from_ini(chaos_ini());
  ASSERT_TRUE(artifacts.ok()) << artifacts.error();
  // Four copies of the same seed racing on the pool: per-run Rng and
  // recorder isolation means all four must come out identical.
  std::vector<exec::RunSpec> specs(4, exec::RunSpec{"seed 5",
                                                    {{"chaos", "seed", "5"}}});
  const auto outcomes = exec::run_sweep(artifacts.value(), specs, 4);
  for (const auto& outcome : outcomes) {
    ASSERT_TRUE(outcome.error.empty()) << outcome.error;
    EXPECT_EQ(outcome.journal, outcomes[0].journal);
  }
}

TEST(SweepTest, BuildErrorsAreReportedPerRunNotThrown) {
  auto artifacts = exec::SweepArtifacts::from_ini(chaos_ini());
  ASSERT_TRUE(artifacts.ok()) << artifacts.error();
  std::vector<exec::RunSpec> specs = seed_specs(1, 1);
  specs.push_back({"bad", {{"workload", "client", "no-such-node"}}});
  const auto outcomes = exec::run_sweep(artifacts.value(), specs, 2);
  EXPECT_TRUE(outcomes[0].error.empty());
  EXPECT_NE(outcomes[1].error.find("no-such-node"), std::string::npos);
  EXPECT_TRUE(outcomes[1].journal.empty());
}

}  // namespace
}  // namespace bass
