#include <gtest/gtest.h>

#include "util/ini.h"

namespace bass::util {
namespace {

TEST(Ini, ParsesSectionsAndEntries) {
  const auto file = parse_ini(
      "[node alpha]\n"
      "cpu = 4000\n"
      "memory_mb = 4096\n"
      "\n"
      "[link alpha beta]\n"
      "capacity_mbps = 20\n");
  ASSERT_TRUE(file.ok()) << file.error();
  ASSERT_EQ(file.value().sections.size(), 2u);
  const auto& node = file.value().sections[0];
  EXPECT_EQ(node.heading, (std::vector<std::string>{"node", "alpha"}));
  EXPECT_EQ(node.get("cpu"), "4000");
  EXPECT_EQ(node.number_or("memory_mb", 0), 4096);
  const auto& link = file.value().sections[1];
  EXPECT_EQ(link.heading.size(), 3u);
  EXPECT_EQ(link.heading[2], "beta");
}

TEST(Ini, CommentsAndWhitespace) {
  const auto file = parse_ini(
      "# full-line comment\n"
      "[a]\n"
      "  key =  value with spaces   ; trailing comment\n"
      "other=1#comment\n");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value().sections[0].get("key"), "value with spaces");
  EXPECT_EQ(file.value().sections[0].get("other"), "1");
}

TEST(Ini, FlagsParse) {
  const auto file = parse_ini("[a]\nx = true\ny = off\nz = 1\n");
  ASSERT_TRUE(file.ok());
  const auto& s = file.value().sections[0];
  EXPECT_TRUE(s.flag_or("x", false));
  EXPECT_FALSE(s.flag_or("y", true));
  EXPECT_TRUE(s.flag_or("z", false));
  EXPECT_TRUE(s.flag_or("absent", true));
}

TEST(Ini, NumberFallbacks) {
  const auto file = parse_ini("[a]\ngood = 2.5\nbad = xyz\n");
  ASSERT_TRUE(file.ok());
  const auto& s = file.value().sections[0];
  EXPECT_DOUBLE_EQ(s.number_or("good", 0), 2.5);
  EXPECT_DOUBLE_EQ(s.number_or("bad", 7), 7);
  EXPECT_DOUBLE_EQ(s.number_or("absent", 9), 9);
}

TEST(Ini, OfKindPreservesOrder) {
  const auto file = parse_ini("[node a]\n[link a b]\n[node b]\n");
  ASSERT_TRUE(file.ok());
  const auto nodes = file.value().of_kind("node");
  ASSERT_EQ(nodes.size(), 2u);
  EXPECT_EQ(nodes[0]->heading[1], "a");
  EXPECT_EQ(nodes[1]->heading[1], "b");
  EXPECT_NE(file.value().first_of_kind("link"), nullptr);
  EXPECT_EQ(file.value().first_of_kind("zzz"), nullptr);
}

TEST(Ini, ErrorsCarryLineNumbers) {
  auto r = parse_ini("[ok]\nbroken line\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("line 2"), std::string::npos);

  r = parse_ini("key = before any section\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("line 1"), std::string::npos);

  r = parse_ini("[unterminated\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("line 1"), std::string::npos);

  r = parse_ini("[]\n");
  EXPECT_FALSE(r.ok());
}

TEST(Ini, MissingFile) {
  EXPECT_FALSE(load_ini("/no/such/scenario.ini").ok());
}

}  // namespace
}  // namespace bass::util
