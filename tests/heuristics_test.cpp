#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "app/catalog.h"
#include "sched/heuristics.h"
#include "util/rng.h"

namespace bass::sched {
namespace {

using app::AppGraph;
using app::ComponentId;

std::vector<std::string> names(const AppGraph& g, const std::vector<ComponentId>& ids) {
  std::vector<std::string> out;
  for (ComponentId id : ids) out.push_back(g.component(id).name);
  return out;
}

// --- The published Fig. 6 orders, reproduced exactly ---

TEST(Heuristics, Fig6BfsOrder) {
  const AppGraph g = app::fig6_example();
  EXPECT_EQ(names(g, bfs_order(g)),
            (std::vector<std::string>{"1", "3", "2", "4", "5", "7", "6"}));
}

TEST(Heuristics, Fig6LongestPathOrder) {
  const AppGraph g = app::fig6_example();
  EXPECT_EQ(names(g, longest_path_order(g)),
            (std::vector<std::string>{"1", "2", "4", "5", "7", "3", "6"}));
}

TEST(Heuristics, Fig6LongestPathDecomposition) {
  const AppGraph g = app::fig6_example();
  const auto paths = longest_path_paths(g);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(names(g, paths[0]), (std::vector<std::string>{"1", "2", "4", "5", "7"}));
  EXPECT_EQ(names(g, paths[1]), (std::vector<std::string>{"3", "6"}));
}

TEST(Heuristics, CameraPipelineOrders) {
  const AppGraph g = app::camera_pipeline_app();
  // Both heuristics walk the chain; the BFS tie-break puts the heavier
  // image edge before the label edge.
  EXPECT_EQ(names(g, bfs_order(g)),
            (std::vector<std::string>{"camera-stream", "frame-sampler",
                                      "object-detector", "image-listener",
                                      "label-listener"}));
  const auto paths = longest_path_paths(g);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(names(g, paths[0]),
            (std::vector<std::string>{"camera-stream", "frame-sampler",
                                      "object-detector", "image-listener"}));
  EXPECT_EQ(names(g, paths[1]), (std::vector<std::string>{"label-listener"}));
}

TEST(Heuristics, BfsStartsAtTopologicalRoot) {
  const AppGraph g = app::social_network_app();
  const auto order = bfs_order(g);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(g.component(order[0]).name, "nginx-web-server");
}

TEST(Heuristics, EmptyOnCyclicGraph) {
  AppGraph g("cyclic");
  const ComponentId a = g.add_component({.name = "a"});
  const ComponentId b = g.add_component({.name = "b"});
  g.add_dependency({.from = a, .to = b});
  g.add_dependency({.from = b, .to = a});
  EXPECT_TRUE(bfs_order(g).empty());
  EXPECT_TRUE(longest_path_paths(g).empty());
}

TEST(Heuristics, DisconnectedComponentsCovered) {
  AppGraph g("disconnected");
  g.add_component({.name = "a"});
  g.add_component({.name = "b"});
  g.add_component({.name = "c"});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1)});
  const auto order = bfs_order(g);
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(longest_path_order(g).size(), 3u);
}

// --- Property suite over random DAGs: both heuristics must emit
// permutations covering every component exactly once. ---

class HeuristicProperty : public ::testing::TestWithParam<std::uint64_t> {};

AppGraph random_dag(std::uint64_t seed) {
  util::Rng rng(seed);
  AppGraph g("random");
  const int n = static_cast<int>(rng.uniform_int(1, 20));
  for (int i = 0; i < n; ++i) {
    g.add_component({.name = "c" + std::to_string(i)});
  }
  // Forward edges only (i < j) guarantee acyclicity.
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.chance(0.2)) {
        g.add_dependency({.from = i, .to = j,
                          .bandwidth = net::kbps(rng.uniform_int(100, 50000))});
      }
    }
  }
  return g;
}

TEST_P(HeuristicProperty, BfsIsPermutation) {
  const AppGraph g = random_dag(GetParam());
  const auto order = bfs_order(g);
  std::set<ComponentId> seen(order.begin(), order.end());
  EXPECT_EQ(order.size(), static_cast<std::size_t>(g.component_count()));
  EXPECT_EQ(seen.size(), order.size());
}

TEST_P(HeuristicProperty, LongestPathIsPermutationAndPathsAreReal) {
  const AppGraph g = random_dag(GetParam());
  const auto paths = longest_path_paths(g);
  std::set<ComponentId> seen;
  std::size_t total = 0;
  for (const auto& path : paths) {
    total += path.size();
    for (ComponentId c : path) EXPECT_TRUE(seen.insert(c).second);
    // Consecutive path elements must be joined by real edges.
    for (std::size_t i = 1; i < path.size(); ++i) {
      bool found = false;
      for (const app::Edge& e : g.edges()) {
        if (e.from == path[i - 1] && e.to == path[i]) found = true;
      }
      EXPECT_TRUE(found) << "path hop without an edge";
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(g.component_count()));
}

TEST_P(HeuristicProperty, FirstPathIsHeaviest) {
  const AppGraph g = random_dag(GetParam());
  const auto paths = longest_path_paths(g);
  if (paths.empty()) return;
  // The first extracted path must weigh at least as much as any single
  // edge out of its own start vertex (sanity floor for "heaviest").
  auto path_weight = [&](const std::vector<ComponentId>& path) {
    double w = 0;
    for (std::size_t i = 1; i < path.size(); ++i) {
      for (const app::Edge& e : g.edges()) {
        if (e.from == path[i - 1] && e.to == path[i]) w += static_cast<double>(e.bandwidth);
      }
    }
    return w;
  };
  const double first = path_weight(paths[0]);
  for (const app::Edge& e : g.edges()) {
    if (e.from == paths[0][0]) {
      EXPECT_GE(first, static_cast<double>(e.bandwidth));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomDags, HeuristicProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace bass::sched
