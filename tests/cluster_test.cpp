#include <gtest/gtest.h>

#include "cluster/cluster.h"

namespace bass::cluster {
namespace {

TEST(Cluster, AddAndQuery) {
  ClusterState c;
  c.add_node(0, {16000, 131072, true});
  c.add_node(2, {4000, 12288, true});  // ids need not be contiguous
  EXPECT_TRUE(c.has_node(0));
  EXPECT_FALSE(c.has_node(1));
  EXPECT_TRUE(c.has_node(2));
  EXPECT_EQ(c.spec(0).cpu_milli, 16000);
  EXPECT_EQ(c.cpu_free(2), 4000);
}

TEST(Cluster, AllocateAndRelease) {
  ClusterState c;
  c.add_node(0, {4000, 1024, true});
  EXPECT_TRUE(c.allocate(0, 3000, 512));
  EXPECT_EQ(c.cpu_free(0), 1000);
  EXPECT_EQ(c.memory_free(0), 512);
  EXPECT_FALSE(c.allocate(0, 2000, 100));  // cpu exhausted
  EXPECT_EQ(c.cpu_free(0), 1000);          // failed allocate changes nothing
  c.release(0, 3000, 512);
  EXPECT_EQ(c.cpu_free(0), 4000);
}

TEST(Cluster, CanFitChecksBothResources) {
  ClusterState c;
  c.add_node(0, {4000, 1024, true});
  EXPECT_TRUE(c.can_fit(0, 4000, 1024));
  EXPECT_FALSE(c.can_fit(0, 4001, 1));
  EXPECT_FALSE(c.can_fit(0, 1, 1025));
  EXPECT_FALSE(c.can_fit(99, 1, 1));  // unknown node
}

TEST(Cluster, UnschedulableNode) {
  ClusterState c;
  c.add_node(0, {4000, 1024, false});
  c.add_node(1, {4000, 1024, true});
  EXPECT_FALSE(c.can_fit(0, 1, 1));
  EXPECT_EQ(c.schedulable_nodes(), (std::vector<net::NodeId>{1}));
  EXPECT_EQ(c.nodes().size(), 2u);
}

TEST(Cluster, ZeroDemandAlwaysFitsOnSchedulable) {
  ClusterState c;
  c.add_node(0, {0, 0, true});
  EXPECT_TRUE(c.can_fit(0, 0, 0));
  EXPECT_TRUE(c.allocate(0, 0, 0));
}

}  // namespace
}  // namespace bass::cluster

#include "sched/node_ranker.h"
#include "sched/network_view.h"
#include "sim/simulation.h"

#include <memory>

namespace bass::cluster {
namespace {

TEST(Cluster, SetSchedulableCordonsAndUncordons) {
  ClusterState c;
  c.add_node(0, {4000, 1024, true});
  c.set_schedulable(0, false);
  EXPECT_FALSE(c.can_fit(0, 1, 1));
  EXPECT_TRUE(c.schedulable_nodes().empty());
  c.set_schedulable(0, true);
  EXPECT_TRUE(c.can_fit(0, 1, 1));
}

TEST(NodeRanker, OrdersByCpuThenLinksThenMemory) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node(), b = topo.add_node(), c = topo.add_node();
  topo.add_link(a, b, net::mbps(10));
  topo.add_link(b, c, net::mbps(30));
  topo.add_link(a, c, net::mbps(10));
  net::Network network(sim, std::move(topo));
  sched::LiveNetworkView view(network);

  ClusterState cl;
  cl.add_node(a, {4000, 1024, true});
  cl.add_node(b, {4000, 1024, true});
  cl.add_node(c, {8000, 1024, true});
  // c has the most CPU; between a (20M of links) and b (40M), b wins.
  const auto ranked = sched::rank_nodes(cl, view);
  ASSERT_EQ(ranked.size(), 3u);
  EXPECT_EQ(ranked[0], c);
  EXPECT_EQ(ranked[1], b);
  EXPECT_EQ(ranked[2], a);

  // Allocations change the ranking: drain c's CPU and it falls to last.
  cl.allocate(c, 7000, 0);
  const auto reranked = sched::rank_nodes(cl, view);
  EXPECT_EQ(reranked[0], b);
  EXPECT_EQ(reranked[2], c);
}

TEST(NodeRanker, ExcludesUnschedulable) {
  sim::Simulation sim;
  net::Topology topo;
  const auto a = topo.add_node(), b = topo.add_node();
  topo.add_link(a, b, net::mbps(10));
  net::Network network(sim, std::move(topo));
  sched::LiveNetworkView view(network);
  ClusterState cl;
  cl.add_node(a, {4000, 1024, false});
  cl.add_node(b, {2000, 1024, true});
  const auto ranked = sched::rank_nodes(cl, view);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0], b);
}

}  // namespace
}  // namespace bass::cluster
