#include <gtest/gtest.h>

#include <memory>

#include "app/catalog.h"
#include "workload/camera_pipeline.h"

namespace bass::workload {
namespace {

struct Fixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;
  core::DeploymentId id = core::kInvalidDeployment;

  explicit Fixture(net::Bps link = net::gbps(1),
                   core::SchedulerKind kind = core::SchedulerKind::kBassBfs) {
    net::Topology topo;
    for (int i = 0; i < 3; ++i) topo.add_node();
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) topo.add_link(i, j, link);
    }
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < 3; ++i) cluster.add_node(i, {12000, 16384, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster);
    id = orch->deploy(app::camera_pipeline_app(), kind).take();
  }
};

TEST(CameraPipeline, AnnotatesEveryFrameWhenHealthy) {
  Fixture f;
  CameraPipelineConfig cfg;
  cfg.fps = 10;
  CameraPipelineEngine engine(*f.orch, f.id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  f.sim.run_until(sim::minutes(3));
  EXPECT_NEAR(static_cast<double>(engine.frames_captured()), 1200, 5);
  EXPECT_EQ(engine.frames_annotated() + engine.frames_dropped() +
                engine.frames_sampled_out(),
            engine.frames_captured());
  // Healthy fast cluster: virtually nothing drops.
  EXPECT_LT(engine.frames_dropped(), 10);
  // e2e = ~2+120+180 ms compute plus small transfers.
  EXPECT_NEAR(engine.e2e().mean_ms(), 305, 30);
}

TEST(CameraPipeline, StageBreakdownIsMonotone) {
  Fixture f;
  CameraPipelineEngine engine(*f.orch, f.id, {});
  engine.start();
  f.sim.run_until(sim::minutes(1));
  engine.stop();
  f.sim.run_until(sim::minutes(2));
  ASSERT_GT(engine.to_sampler().count(), 0u);
  EXPECT_LT(engine.to_sampler().mean_ms(), engine.to_detector().mean_ms());
  EXPECT_LT(engine.to_detector().mean_ms(), engine.to_image().mean_ms());
  EXPECT_DOUBLE_EQ(engine.to_image().mean_ms(), engine.e2e().mean_ms());
}

TEST(CameraPipeline, SamplerDropsDissimilarFraction) {
  Fixture f;
  CameraPipelineConfig cfg;
  cfg.fps = 20;
  cfg.sample_ratio = 0.4;
  cfg.seed = 7;
  CameraPipelineEngine engine(*f.orch, f.id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  f.sim.run_until(sim::minutes(3));
  const double forwarded =
      static_cast<double>(engine.frames_annotated()) /
      static_cast<double>(engine.frames_annotated() + engine.frames_sampled_out());
  EXPECT_NEAR(forwarded, 0.4, 0.05);
}

TEST(CameraPipeline, StarvedLinkDropsFramesInsteadOfQueueing) {
  // k3s spreads the stages; strangle every link so transfers crawl.
  Fixture f(net::mbps(2), core::SchedulerKind::kK3sDefault);
  CameraPipelineConfig cfg;
  cfg.fps = 10;
  cfg.frame_buffer = 8;
  CameraPipelineEngine engine(*f.orch, f.id, cfg);
  engine.start();
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  f.sim.run_until(sim::minutes(4));
  // 50 KB frames at 10 fps = 4 Mbps over 2 Mbps links: half must drop,
  // but delivered frames stay bounded-latency (the buffer's job).
  EXPECT_GT(engine.frames_dropped(), engine.frames_captured() / 4);
  EXPECT_LT(engine.e2e().max_ms(), 10'000.0);
}

TEST(CameraPipeline, MigrationDropsFramesThenRecovers) {
  Fixture f;
  CameraPipelineEngine engine(*f.orch, f.id, {});
  engine.start();
  const auto det = f.orch->app(f.id).find("object-detector");
  f.sim.schedule_at(sim::seconds(30), [&] { f.orch->restart_component(f.id, det); });
  f.sim.run_until(sim::minutes(2));
  engine.stop();
  f.sim.run_until(sim::minutes(3));
  // ~20 s outage at 10 fps: roughly 200 frames dropped, none parked.
  EXPECT_NEAR(static_cast<double>(engine.frames_dropped()), 200, 40);
  // Post-restart the pipeline annotates again at full quality.
  EXPECT_GT(engine.frames_annotated(), 900);
  EXPECT_LT(engine.e2e().max_ms(), 2'000.0);
}

TEST(CameraPipeline, TrafficStatsFeedTheController) {
  Fixture f;
  CameraPipelineEngine engine(*f.orch, f.id, {});
  engine.start();
  f.sim.run_until(sim::minutes(1));
  engine.stop();
  f.sim.run_until(sim::minutes(2));
  const auto& g = f.orch->app(f.id);
  const auto cam = g.find("camera-stream");
  const auto samp = g.find("frame-sampler");
  // ~600 frames x 50 KB on the camera->sampler edge.
  EXPECT_NEAR(static_cast<double>(f.orch->traffic_stats(f.id).total_bytes(cam, samp)),
              600.0 * 50000.0, 600.0 * 50000.0 * 0.05);
}

}  // namespace
}  // namespace bass::workload
