// Tests for the extension features: the auto (combined) heuristic, the
// proportional-share fairness ablation, stateful migration, the pair-dedup
// ablation switch, and the PairStreamEngine workload.
#include <gtest/gtest.h>

#include <memory>

#include "app/catalog.h"
#include "controller/migration_policy.h"
#include "core/orchestrator.h"
#include "net/maxmin.h"
#include "sched/bass_scheduler.h"
#include "workload/pair_stream.h"

namespace bass {
namespace {

// ---- Auto heuristic ----

struct SchedFixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<sched::LiveNetworkView> view;

  explicit SchedFixture(std::int64_t cpu = 12000) {
    net::Topology topo;
    for (int i = 0; i < 3; ++i) topo.add_node();
    topo.add_link(0, 1, net::gbps(1));
    topo.add_link(1, 2, net::gbps(1));
    topo.add_link(0, 2, net::gbps(1));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    view = std::make_unique<sched::LiveNetworkView>(*network);
    for (int i = 0; i < 3; ++i) cluster.add_node(i, {cpu, 65536, true});
  }
};

TEST(AutoHeuristic, NeverWorseThanEitherHeuristic) {
  SchedFixture f;
  for (const auto& g : {app::camera_pipeline_app(), app::social_network_app(),
                        app::fig6_example()}) {
    const auto bfs =
        sched::BassScheduler(sched::Heuristic::kBreadthFirst).schedule(g, f.cluster, *f.view);
    const auto lp =
        sched::BassScheduler(sched::Heuristic::kLongestPath).schedule(g, f.cluster, *f.view);
    const auto combined =
        sched::BassScheduler(sched::Heuristic::kAuto).schedule(g, f.cluster, *f.view);
    ASSERT_TRUE(bfs.ok() && lp.ok() && combined.ok()) << g.name();
    const auto best = std::min(sched::crossing_bandwidth(g, bfs.value()),
                               sched::crossing_bandwidth(g, lp.value()));
    EXPECT_EQ(sched::crossing_bandwidth(g, combined.value()), best) << g.name();
  }
}

TEST(AutoHeuristic, NameAndKind) {
  EXPECT_EQ(sched::BassScheduler(sched::Heuristic::kAuto).name(), "bass-auto");
  EXPECT_STREQ(core::scheduler_kind_name(core::SchedulerKind::kBassAuto), "bass-auto");
}

TEST(CrossingBandwidth, CountsOnlyMeshEdges) {
  app::AppGraph g("x");
  g.add_component({.name = "a"});
  g.add_component({.name = "b"});
  g.add_component({.name = "c"});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(5)});
  g.add_dependency({.from = 1, .to = 2, .bandwidth = net::mbps(3)});
  const sched::Placement p{{0, 0}, {1, 0}, {2, 1}};
  EXPECT_EQ(sched::crossing_bandwidth(g, p), net::mbps(3));
}

// ---- Proportional fairness ablation ----

TEST(ProportionalAllocate, ScalesByOversubscription) {
  // Two flows demand 8 and 2 on a 5 Mbps link: offered 10, scale 0.5.
  const auto r = net::proportional_allocate({5e6}, {{8e6, {0}}, {2e6, {0}}});
  EXPECT_NEAR(r[0], 4e6, 1e3);
  EXPECT_NEAR(r[1], 1e6, 1e3);
}

TEST(ProportionalAllocate, NoScalingWhenUnderSubscribed) {
  const auto r = net::proportional_allocate({10e6}, {{3e6, {0}}, {2e6, {0}}});
  EXPECT_NEAR(r[0], 3e6, 1e3);
  EXPECT_NEAR(r[1], 2e6, 1e3);
}

TEST(ProportionalAllocate, DiffersFromMaxMinUnderAsymmetry) {
  // Max-min equalizes (5/5); proportional preserves the 8:2 ratio.
  const auto mm = net::max_min_allocate({10e6}, {{8e6, {0}}, {8e6, {0}}});
  const auto pr = net::proportional_allocate({10e6}, {{8e6, {0}}, {2e6, {0}}});
  EXPECT_NEAR(mm[0], 5e6, 1e3);
  EXPECT_GT(pr[0], pr[1] * 3);
}

TEST(ProportionalAllocate, WorstLinkGoverns) {
  // Flow over two links; the second is 4x oversubscribed.
  const auto r = net::proportional_allocate(
      {100e6, 5e6}, {{20e6, {0, 1}}, {0.0, {}}});
  EXPECT_NEAR(r[0], 5e6, 1e3);
}

TEST(Network, ProportionalPolicyChangesSharing) {
  sim::Simulation sim;
  net::Topology topo;
  topo.add_node();
  topo.add_node();
  topo.add_link(0, 1, net::mbps(10));
  net::NetworkConfig cfg;
  cfg.fairness = net::FairnessPolicy::kProportional;
  net::Network network(sim, std::move(topo), cfg);
  // 8 Mbps and 2 Mbps streams on a 10 Mbps link: proportional keeps 8/2.
  const auto big = network.open_stream(0, 1, net::mbps(8));
  const auto small = network.open_stream(0, 1, net::mbps(2));
  EXPECT_NEAR(static_cast<double>(network.stream_rate(big)), 8e6, 1e5);
  EXPECT_NEAR(static_cast<double>(network.stream_rate(small)), 2e6, 1e5);
  // Shrink the link: both scale by the same 0.5 factor.
  network.set_link_capacity_between(0, 1, net::mbps(5));
  EXPECT_NEAR(static_cast<double>(network.stream_rate(big)), 4e6, 1e5);
  EXPECT_NEAR(static_cast<double>(network.stream_rate(small)), 1e6, 1e5);
}

// ---- Stateful migration ----

struct OrchFixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;

  OrchFixture() {
    net::Topology topo;
    for (int i = 0; i < 2; ++i) topo.add_node();
    topo.add_link(0, 1, net::mbps(80));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < 2; ++i) cluster.add_node(i, {8000, 8192, true});
    core::OrchestratorConfig cfg;
    cfg.restart_duration = sim::seconds(10);
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster, cfg);
  }
};

TEST(StatefulMigration, StateTransferDelaysRecovery) {
  OrchFixture f;
  app::AppGraph g("stateful");
  app::Component c{.name = "db", .cpu_milli = 1000, .memory_mb = 512};
  c.state_mb = 100;  // 100 MiB of checkpoint over an 80 Mbps link: ~10.5 s
  g.add_component(c);
  const auto id = f.orch->deploy_with_placement(std::move(g), {{0, 0}}).take();
  ASSERT_TRUE(f.orch->migrate(id, 0, 1));
  // At t=10s (restart alone) the component must still be down: the state
  // transfer (~10.5 s) has to land first.
  f.sim.run_until(sim::seconds(15));
  EXPECT_FALSE(f.orch->is_up(id, 0));
  f.sim.run_until(sim::seconds(25));  // 10.5 s transfer + 10 s restart
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_EQ(f.orch->node_of(id, 0), 1);
}

TEST(StatefulMigration, StatelessComponentRestartsInRestartTime) {
  OrchFixture f;
  app::AppGraph g("stateless");
  g.add_component({.name = "svc", .cpu_milli = 1000, .memory_mb = 256});
  const auto id = f.orch->deploy_with_placement(std::move(g), {{0, 0}}).take();
  f.orch->migrate(id, 0, 1);
  f.sim.run_until(sim::seconds(11));
  EXPECT_TRUE(f.orch->is_up(id, 0));
}

TEST(StatefulMigration, InPlaceRestartSkipsTransfer) {
  OrchFixture f;
  app::AppGraph g("stateful");
  app::Component c{.name = "db", .cpu_milli = 1000, .memory_mb = 512};
  c.state_mb = 500;
  g.add_component(c);
  const auto id = f.orch->deploy_with_placement(std::move(g), {{0, 0}}).take();
  f.orch->restart_component(id, 0);  // same node: no state movement
  f.sim.run_until(sim::seconds(11));
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_EQ(f.network->total_bytes_delivered(), 0);
}

TEST(StatefulMigration, TransferConsumesLinkBandwidth) {
  OrchFixture f;
  app::AppGraph g("stateful");
  app::Component c{.name = "db", .cpu_milli = 1000, .memory_mb = 512};
  c.state_mb = 10;
  g.add_component(c);
  const auto id = f.orch->deploy_with_placement(std::move(g), {{0, 0}}).take();
  f.orch->migrate(id, 0, 1);
  f.sim.run_until(sim::minutes(1));
  EXPECT_NEAR(static_cast<double>(f.network->total_bytes_delivered()),
              10.0 * 1024 * 1024, 1e4);
}

// ---- Pair-dedup ablation ----

TEST(DedupAblation, DisabledKeepsBothEndpoints) {
  app::AppGraph g("pair");
  g.add_component({.name = "a", .cpu_milli = 100, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 100, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  controller::EdgeObservation obs;
  obs.from = 0;
  obs.to = 1;
  obs.required = net::mbps(8);
  obs.measured = net::mbps(6);
  obs.path_capacity = net::mbps(7);
  controller::MigrationParams params;
  params.utilization_threshold = 0.5;
  params.headroom_frac = 0.2;
  ASSERT_EQ(controller::select_migration_candidates(g, {obs}, params).size(), 1u);
  params.dedup_pairs = false;
  EXPECT_EQ(controller::select_migration_candidates(g, {obs}, params).size(), 2u);
}

// ---- PairStreamEngine ----

TEST(PairStream, TracksGoodputAndMigration) {
  OrchFixture f;
  app::AppGraph g("pair");
  app::Component anchor{.name = "anchor", .cpu_milli = 100, .memory_mb = 64};
  anchor.pinned_node = 0;
  g.add_component(anchor);
  g.add_component({.name = "worker", .cpu_milli = 100, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  const auto id = f.orch->deploy_with_placement(std::move(g), {{0, 0}, {1, 1}}).take();

  workload::PairStreamConfig cfg{.from = 0, .to = 1, .demand = net::mbps(8)};
  workload::PairStreamEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::seconds(30));
  // Healthy 80 Mbps link: goodput ~1.
  EXPECT_NEAR(engine.goodput_series().mean_in(sim::seconds(5), sim::seconds(30)), 1.0,
              0.02);

  // Degrade the link: goodput tracks the shrink (4/8 = 0.5).
  f.network->set_link_capacity_between(0, 1, net::mbps(4));
  f.sim.run_until(sim::minutes(1));
  EXPECT_NEAR(engine.goodput_series().mean_in(sim::seconds(40), sim::minutes(1)), 0.5,
              0.05);
  // Traffic stats were fed for the controller.
  EXPECT_GT(f.orch->traffic_stats(id).total_bytes(0, 1), 0);
  engine.stop();
}

TEST(PairStream, GoesQuietWhileComponentDown) {
  OrchFixture f;
  app::AppGraph g("pair");
  g.add_component({.name = "a", .cpu_milli = 100, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 100, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  const auto id = f.orch->deploy_with_placement(std::move(g), {{0, 0}, {1, 1}}).take();
  workload::PairStreamConfig cfg{.from = 0, .to = 1, .demand = net::mbps(8)};
  workload::PairStreamEngine engine(*f.orch, id, cfg);
  engine.start();
  f.sim.run_until(sim::seconds(20));
  f.orch->restart_component(id, 1);  // 10 s outage
  f.sim.run_until(sim::seconds(29));
  EXPECT_LT(engine.rate_series().mean_in(sim::seconds(22), sim::seconds(29)), 1.0);
  f.sim.run_until(sim::minutes(1));
  EXPECT_NEAR(engine.goodput_series().mean_in(sim::seconds(40), sim::minutes(1)), 1.0,
              0.05);
  engine.stop();
}

}  // namespace
}  // namespace bass
