#include <gtest/gtest.h>

#include "scenario/scenario.h"

namespace bass::scenario {
namespace {

constexpr const char* kMinimal = R"(
[node a]
cpu = 4000
[node b]
cpu = 4000
[link a b]
capacity_mbps = 20
[component x]
cpu = 1000
[component y]
cpu = 1000
[edge x y]
bandwidth_mbps = 2
request_bytes = 1000
response_bytes = 2000
[workload]
rps = 20
client = a
[run]
duration_s = 30
)";

std::unique_ptr<Scenario> build(const std::string& text) {
  const auto ini = util::parse_ini(text);
  EXPECT_TRUE(ini.ok()) << (ini.ok() ? "" : ini.error());
  auto s = Scenario::from_ini(ini.value());
  EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error());
  return s.ok() ? std::move(s.value()) : nullptr;
}

TEST(Scenario, MinimalRunsAndReports) {
  auto s = build(kMinimal);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->duration(), sim::seconds(30));
  EXPECT_NE(s->node_id("a"), net::kInvalidNode);
  EXPECT_EQ(s->node_id("zzz"), net::kInvalidNode);
  const auto report = s->run();
  EXPECT_NEAR(static_cast<double>(report.requests_issued), 600, 10);
  EXPECT_EQ(report.requests_completed, report.requests_issued);
  EXPECT_GT(report.latency_mean_ms, 0);
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_GT(report.probe_bytes, 0);  // monitor on by default
  // The invariant checker rides along by default and stays quiet.
  EXPECT_NE(s->invariants(), nullptr);
  EXPECT_EQ(report.invariant_violations, 0);
  EXPECT_EQ(report.faults_injected, 0);
}

TEST(Scenario, SecondRunIsNoOp) {
  auto s = build(kMinimal);
  ASSERT_NE(s, nullptr);
  const auto first = s->run();
  const auto second = s->run();
  EXPECT_GT(first.requests_issued, 0);
  EXPECT_EQ(second.requests_issued, 0);
}

TEST(Scenario, PinnedComponentHonored) {
  std::string text = kMinimal;
  text.replace(text.find("[component y]\ncpu = 1000"), 24,
               "[component y]\ncpu = 1000\npinned = b");
  auto s = build(text);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->orchestrator().node_of(s->deployment(), s->app().find("y")),
            s->node_id("b"));
}

TEST(Scenario, RejectsUnknownNodeInLink) {
  const auto ini = util::parse_ini("[node a]\n[link a ghost]\n[component x]\n");
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("unknown node"), std::string::npos);
}

TEST(Scenario, RejectsPartitionedMesh) {
  const auto ini = util::parse_ini(
      "[node a]\n[node b]\n[node c]\n[link a b]\n[component x]\n");
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("partitioned"), std::string::npos);
}

TEST(Scenario, RejectsCyclicApp) {
  std::string text = kMinimal;
  text += "[edge y x]\nbandwidth_mbps = 1\n";
  const auto ini = util::parse_ini(text);
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("cycle"), std::string::npos);
}

TEST(Scenario, RejectsUnplaceableApp) {
  std::string text = kMinimal;
  text.replace(text.find("[component x]\ncpu = 1000"), 24,
               "[component x]\ncpu = 64000");
  const auto ini = util::parse_ini(text);
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("placement failed"), std::string::npos);
}

TEST(Scenario, RejectsDuplicateNames) {
  const auto ini = util::parse_ini("[node a]\n[node a]\n");
  ASSERT_TRUE(ini.ok());
  EXPECT_FALSE(Scenario::from_ini(ini.value()).ok());
}

util::Expected<std::unique_ptr<Scenario>> load_shipped(const std::string& name) {
  // ctest runs from build/tests; try source-relative fallbacks.
  for (const char* prefix : {"", "../../", "../"}) {
    auto s = Scenario::from_file(prefix + ("examples/scenarios/" + name));
    if (s.ok()) return s;
  }
  return Scenario::from_file("examples/scenarios/" + name);
}

TEST(Scenario, ShippedScenarioLoads) {
  // Keep the example scenario files valid as the code evolves.
  auto s = load_shipped("community_mesh.ini");
  ASSERT_TRUE(s.ok()) << s.error();
  EXPECT_EQ(s.value()->app().component_count(), 3);
  EXPECT_EQ(s.value()->app().find("db") != app::kInvalidComponent, true);
}

TEST(Scenario, ShippedConferenceScenarioLoads) {
  auto s = load_shipped("rooftop_conference.ini");
  ASSERT_TRUE(s.ok()) << s.error();
  // SFU + 3 client groups.
  EXPECT_EQ(s.value()->app().component_count(), 4);
  EXPECT_NE(s.value()->app().find("pion-sfu"), app::kInvalidComponent);
}

TEST(Scenario, MigrationSectionDrivesController) {
  std::string text = R"(
[node a]
cpu = 2000
[node b]
cpu = 2000
[node c]
cpu = 2000
[link a b]
capacity_mbps = 10
[link b c]
capacity_mbps = 10
[link a c]
capacity_mbps = 10
[component x]
cpu = 1500
[component y]
cpu = 1500
[edge x y]
bandwidth_mbps = 6
request_bytes = 4000
response_bytes = 18000
[scheduler]
kind = k3s
[migration]
enabled = true
threshold = 0.4
interval_s = 10
cooldown_s = 10
restart_s = 5
[workload]
rps = 50
client = a
[run]
duration_s = 180
)";
  auto s = build(text);
  ASSERT_NE(s, nullptr);
  // k3s spreads the 6 Mbps pair; 50 rps x 18 KB x 8 = 7.2 Mbps of traffic
  // saturates the 10 Mbps link, so the controller must act.
  const auto xa = s->orchestrator().node_of(s->deployment(), 0);
  const auto ya = s->orchestrator().node_of(s->deployment(), 1);
  ASSERT_NE(xa, ya);
  const auto report = s->run();
  EXPECT_GE(report.migrations, 1u);
  EXPECT_EQ(report.invariant_violations, 0);
}

}  // namespace
}  // namespace bass::scenario

namespace bass::scenario {
namespace {

constexpr const char* kConference = R"(
[node hub]
cpu = 8000
[node east]
cpu = 2000
[node west]
cpu = 2000
[link hub east]
capacity_mbps = 20
[link hub west]
capacity_mbps = 20
[link east west]
capacity_mbps = 5
[workload]
type = conference
per_stream_kbps = 500
[clients east]
count = 3
[clients west]
count = 3
[run]
duration_s = 120
)";

TEST(Scenario, ConferenceBuildsSfuAppAndReportsBitrates) {
  const auto ini = util::parse_ini(kConference);
  ASSERT_TRUE(ini.ok());
  auto s = Scenario::from_ini(ini.value());
  ASSERT_TRUE(s.ok()) << s.error();
  auto& scene = *s.value();
  EXPECT_EQ(scene.app().component_count(), 3);  // sfu + 2 client groups
  EXPECT_NE(scene.app().find("pion-sfu"), app::kInvalidComponent);

  const auto report = scene.run();
  ASSERT_EQ(report.median_bitrate_bps.size(), 2u);
  // 6 participants x 500 Kbps: each client expects 5 x 500 = 2.5 Mbps, and
  // the 20 Mbps spokes carry it (3 clients x 2.5 = 7.5 + uplinks).
  for (const auto& [node, bps] : report.median_bitrate_bps) {
    EXPECT_NEAR(bps, 2.5e6, 2e5) << "node " << node;
  }
  EXPECT_EQ(report.requests_issued, 0);
  EXPECT_EQ(report.invariant_violations, 0);
}

TEST(Scenario, ConferenceRejectsComponents) {
  std::string text = kConference;
  text += "[component rogue]\ncpu = 100\n";
  const auto ini = util::parse_ini(text);
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("[clients]"), std::string::npos);
}

TEST(Scenario, ConferenceNeedsClients) {
  const auto ini = util::parse_ini(
      "[node a]\ncpu = 4000\n[workload]\ntype = conference\n");
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("clients"), std::string::npos);
}

}  // namespace
}  // namespace bass::scenario

namespace bass::scenario {
namespace {

TEST(Scenario, TraceFileImport) {
  // Record a trace, then replay it from the scenario file.
  trace::BandwidthTrace recorded;
  recorded.append(sim::seconds(0), net::mbps(20));
  recorded.append(sim::seconds(10), net::mbps(2));
  const std::string path = "/tmp/bass_scenario_trace.csv";
  ASSERT_TRUE(recorded.save_csv(path));

  std::string text = kMinimal;
  text += "[trace a b]\nfile = " + path + "\n";
  const auto ini = util::parse_ini(text);
  ASSERT_TRUE(ini.ok());
  auto s = Scenario::from_ini(ini.value());
  ASSERT_TRUE(s.ok()) << s.error();
  auto& scene = *s.value();
  // Let the replay reach t=10s+: the link must sit at 2 Mbps.
  scene.orchestrator().simulation().run_until(sim::seconds(15));
  EXPECT_EQ(scene.network().path_capacity(scene.node_id("a"), scene.node_id("b")),
            net::mbps(2));
}

TEST(Scenario, TraceFileMissingIsAnError) {
  std::string text = kMinimal;
  text += "[trace a b]\nfile = /no/such/trace.csv\n";
  const auto ini = util::parse_ini(text);
  ASSERT_TRUE(ini.ok());
  const auto s = Scenario::from_ini(ini.value());
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.error().find("cannot load"), std::string::npos);
}

}  // namespace
}  // namespace bass::scenario
