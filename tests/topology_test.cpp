#include <gtest/gtest.h>

#include "net/topology.h"

namespace bass::net {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node();
  EXPECT_EQ(t.node_count(), 2);
  EXPECT_EQ(t.node_name(a), "a");
  EXPECT_EQ(t.node_name(b), "node1");

  const auto [ab, ba] = t.add_link(a, b, mbps(10), mbps(5));
  EXPECT_EQ(t.link_count(), 2);
  EXPECT_EQ(t.link(ab).src, a);
  EXPECT_EQ(t.link(ab).dst, b);
  EXPECT_EQ(t.link(ab).capacity, mbps(10));
  EXPECT_EQ(t.link(ba).capacity, mbps(5));
}

TEST(Topology, LinkBetween) {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node();
  const auto [ab, ba] = t.add_link(a, b, mbps(10));
  EXPECT_EQ(t.link_between(a, b), ab);
  EXPECT_EQ(t.link_between(b, a), ba);
  EXPECT_FALSE(t.link_between(a, c).has_value());
}

TEST(Topology, SetCapacity) {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node();
  const auto [ab, ba] = t.add_link(a, b, mbps(10));
  (void)ba;
  t.set_capacity(ab, mbps(3));
  EXPECT_EQ(t.link(ab).capacity, mbps(3));
}

TEST(Topology, TotalOutCapacity) {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node();
  t.add_link(a, b, mbps(10), mbps(4));
  t.add_link(a, c, mbps(7));
  EXPECT_EQ(t.total_out_capacity(a), mbps(17));
  EXPECT_EQ(t.total_out_capacity(b), mbps(4));
  EXPECT_EQ(t.total_out_capacity(c), mbps(7));
}

TEST(Topology, OutLinks) {
  Topology t;
  const NodeId a = t.add_node(), b = t.add_node(), c = t.add_node();
  t.add_link(a, b, mbps(1));
  t.add_link(a, c, mbps(1));
  EXPECT_EQ(t.out_links(a).size(), 2u);
  EXPECT_EQ(t.out_links(b).size(), 1u);
}

TEST(Units, Helpers) {
  EXPECT_EQ(kbps(240), 240'000);
  EXPECT_EQ(mbps(25), 25'000'000);
  EXPECT_EQ(gbps(1), 1'000'000'000);
}

}  // namespace
}  // namespace bass::net
