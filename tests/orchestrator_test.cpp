#include <gtest/gtest.h>

#include <memory>

#include "app/catalog.h"
#include "core/orchestrator.h"

namespace bass::core {
namespace {

struct Fixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<Orchestrator> orch;

  // Triangle of 3 workers, 50 Mbps links, 12 cores each.
  Fixture() {
    net::Topology topo;
    for (int i = 0; i < 3; ++i) topo.add_node();
    topo.add_link(0, 1, net::mbps(50));
    topo.add_link(1, 2, net::mbps(50));
    topo.add_link(0, 2, net::mbps(50));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < 3; ++i) cluster.add_node(i, {12000, 16384, true});
    orch = std::make_unique<Orchestrator>(sim, *network, cluster);
  }
};

app::AppGraph tiny_app() {
  app::AppGraph g("tiny");
  g.add_component({.name = "a", .cpu_milli = 1000, .memory_mb = 128});
  g.add_component({.name = "b", .cpu_milli = 1000, .memory_mb = 128});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8),
                    .request_bytes = 1000, .response_bytes = 1000});
  return g;
}

TEST(Orchestrator, DeployAllocatesResources) {
  Fixture f;
  const auto id = f.orch->deploy(app::camera_pipeline_app(), SchedulerKind::kBassBfs);
  ASSERT_TRUE(id.ok()) << id.error();
  std::int64_t allocated = 0;
  for (int n = 0; n < 3; ++n) allocated += f.cluster.usage(n).cpu_milli;
  EXPECT_EQ(allocated, app::camera_pipeline_app().total_cpu_milli());
  // All components up, every component has a node.
  for (app::ComponentId c = 0; c < 5; ++c) {
    EXPECT_TRUE(f.orch->is_up(id.value(), c));
    EXPECT_NE(f.orch->node_of(id.value(), c), net::kInvalidNode);
  }
}

TEST(Orchestrator, DeployFailureLeavesClusterUntouched) {
  Fixture f;
  app::AppGraph g("huge");
  g.add_component({.name = "x", .cpu_milli = 50000, .memory_mb = 64});
  const auto id = f.orch->deploy(g, SchedulerKind::kBassBfs);
  EXPECT_FALSE(id.ok());
  for (int n = 0; n < 3; ++n) EXPECT_EQ(f.cluster.usage(n).cpu_milli, 0);
}

TEST(Orchestrator, SchedulerKindNames) {
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::kBassBfs), "bass-bfs");
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::kBassLongestPath), "bass-longest-path");
  EXPECT_STREQ(scheduler_kind_name(SchedulerKind::kK3sDefault), "k3s-default");
}

struct RecordingListener : DeploymentListener {
  std::vector<app::ComponentId> downs;
  std::vector<std::pair<app::ComponentId, net::NodeId>> ups;
  void on_component_down(app::ComponentId c) override { downs.push_back(c); }
  void on_component_up(app::ComponentId c, net::NodeId n) override {
    ups.emplace_back(c, n);
  }
};

TEST(Orchestrator, ManualMigrationMovesAfterRestart) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  RecordingListener listener;
  f.orch->add_listener(id, &listener);

  const net::NodeId before = f.orch->node_of(id, 0);
  const net::NodeId target = (before + 1) % 3;
  ASSERT_TRUE(f.orch->migrate(id, 0, target));
  EXPECT_FALSE(f.orch->is_up(id, 0));  // down during restart
  EXPECT_EQ(listener.downs.size(), 1u);

  f.sim.run_until(sim::seconds(25));  // default restart is 20 s
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_EQ(f.orch->node_of(id, 0), target);
  ASSERT_EQ(listener.ups.size(), 1u);
  EXPECT_EQ(listener.ups[0].second, target);
  ASSERT_EQ(f.orch->migration_events().size(), 1u);
  EXPECT_EQ(f.orch->migration_events()[0].from, before);
  EXPECT_EQ(f.orch->migration_events()[0].to, target);
}

TEST(Orchestrator, MigrationMovesResourceAccounting) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  const net::NodeId before = f.orch->node_of(id, 0);
  const std::int64_t cpu_before = f.cluster.usage(before).cpu_milli;
  const net::NodeId target = (before + 1) % 3;
  f.orch->migrate(id, 0, target);
  f.sim.run_until(sim::seconds(25));
  EXPECT_EQ(f.cluster.usage(before).cpu_milli, cpu_before - 1000);
  EXPECT_GE(f.cluster.usage(target).cpu_milli, 1000);
}

TEST(Orchestrator, MigrateRejectsBadRequests) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  const net::NodeId here = f.orch->node_of(id, 0);
  EXPECT_FALSE(f.orch->migrate(id, 0, here));  // same node
  f.orch->migrate(id, 0, (here + 1) % 3);
  EXPECT_FALSE(f.orch->migrate(id, 0, (here + 2) % 3));  // already down
}

TEST(Orchestrator, RestartComponentKeepsNode) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  const net::NodeId before = f.orch->node_of(id, 0);
  f.orch->restart_component(id, 0);
  EXPECT_FALSE(f.orch->is_up(id, 0));
  f.sim.run_until(sim::seconds(25));
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_EQ(f.orch->node_of(id, 0), before);
}

TEST(Orchestrator, FallsBackWhenTargetFillsUp) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  const net::NodeId before = f.orch->node_of(id, 0);
  const net::NodeId target = (before + 1) % 3;
  f.orch->migrate(id, 0, target);
  // Fill the target while the component is restarting.
  f.cluster.allocate(target, f.cluster.cpu_free(target), 0);
  f.sim.run_until(sim::seconds(25));
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_EQ(f.orch->node_of(id, 0), before);  // bounced back
}

TEST(Orchestrator, ControllerMigratesUnderViolation) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kK3sDefault).take();
  // k3s spreads the pair across nodes; find the crossing.
  const net::NodeId na = f.orch->node_of(id, 0);
  const net::NodeId nb = f.orch->node_of(id, 1);
  ASSERT_NE(na, nb);

  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(10);
  params.utilization_threshold = 0.5;
  params.headroom_frac = 0.2;
  params.cooldown = sim::seconds(20);
  f.orch->enable_migration(id, params);

  // Strangle the a-b link and report heavy measured traffic on the edge.
  f.network->set_link_capacity_between(na, nb, net::mbps(6));
  const auto feeder = f.sim.schedule_periodic(sim::seconds(5), [&] {
    // 5 Mbps over each 5 s window.
    f.orch->traffic_stats(id).record(0, 1, net::mbps(5) / 8 * 5);
  });

  f.sim.run_until(sim::minutes(3));
  f.sim.cancel_periodic(feeder);
  EXPECT_GE(f.orch->migration_events().size(), 1u);
  // After migration the pair is colocated (the rescheduler prefers the
  // dependency's node).
  EXPECT_EQ(f.orch->node_of(id, 0), f.orch->node_of(id, 1));
  EXPECT_FALSE(f.orch->controller_rounds(id).empty());
}

TEST(Orchestrator, ControllerQuietWhenHealthy) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassLongestPath).take();
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(10);
  f.orch->enable_migration(id, params);
  f.sim.run_until(sim::minutes(3));
  EXPECT_TRUE(f.orch->migration_events().empty());
  EXPECT_TRUE(f.orch->controller_rounds(id).empty());
}

TEST(Orchestrator, DisableMigrationStopsController) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kK3sDefault).take();
  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(10);
  params.cooldown = sim::seconds(0);
  f.orch->enable_migration(id, params);
  f.orch->disable_migration(id);
  const net::NodeId na = f.orch->node_of(id, 0);
  const net::NodeId nb = f.orch->node_of(id, 1);
  f.network->set_link_capacity_between(na, nb, net::kbps(100));
  f.sim.schedule_periodic(sim::seconds(5), [&] {
    f.orch->traffic_stats(id).record(0, 1, 1'000'000);
  });
  f.sim.run_until(sim::minutes(2));
  EXPECT_TRUE(f.orch->migration_events().empty());
}

}  // namespace
}  // namespace bass::core

namespace bass::core {
namespace {

TEST(Orchestrator, DeployWithPlacementValidatesAndReserves) {
  Fixture f;
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 1}, {1, 2}});
  ASSERT_TRUE(id.ok()) << id.error();
  EXPECT_EQ(f.orch->node_of(id.value(), 0), 1);
  EXPECT_EQ(f.orch->node_of(id.value(), 1), 2);
  EXPECT_EQ(f.cluster.usage(1).cpu_milli, 1000);
  EXPECT_EQ(f.cluster.usage(2).cpu_milli, 1000);
}

TEST(Orchestrator, DeployWithPlacementRejectsMissingComponent) {
  Fixture f;
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 1}});
  EXPECT_FALSE(id.ok());
  EXPECT_NE(id.error().find("b"), std::string::npos);
  for (int n = 0; n < 3; ++n) EXPECT_EQ(f.cluster.usage(n).cpu_milli, 0);
}

TEST(Orchestrator, DeployWithPlacementRollsBackOnOverflow) {
  Fixture f;
  f.cluster.allocate(1, 11500, 0);  // node 1 nearly full
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 1}, {1, 1}});
  EXPECT_FALSE(id.ok());
  EXPECT_EQ(f.cluster.usage(1).cpu_milli, 11500);  // reservation rolled back
}

TEST(Orchestrator, AutoSchedulerDeploys) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassAuto);
  ASSERT_TRUE(id.ok()) << id.error();
  // The 8 Mbps pair colocates under any BASS heuristic on a 50 Mbps mesh
  // only if beneficial; either way both components are placed and up.
  EXPECT_TRUE(f.orch->is_up(id.value(), 0));
  EXPECT_TRUE(f.orch->is_up(id.value(), 1));
}

TEST(Orchestrator, UpdateEdgeBandwidth) {
  Fixture f;
  const auto id = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  EXPECT_TRUE(f.orch->update_edge_bandwidth(id, 0, 1, net::mbps(3)));
  EXPECT_FALSE(f.orch->update_edge_bandwidth(id, 1, 0, net::mbps(3)));
  EXPECT_EQ(f.orch->app(id).edges()[0].bandwidth, net::mbps(3));
}

TEST(Orchestrator, MigrationBudgetCapsPerRound) {
  Fixture f;
  // Four independent pairs, all violating at once.
  app::AppGraph g("pairs");
  for (int i = 0; i < 8; ++i) {
    g.add_component({.name = "p" + std::to_string(i), .cpu_milli = 500,
                     .memory_mb = 64});
  }
  for (int i = 0; i < 4; ++i) {
    g.add_dependency({.from = 2 * i, .to = 2 * i + 1, .bandwidth = net::mbps(8),
                      .request_bytes = 1000, .response_bytes = 1000});
  }
  // Spread each pair across the throttled 0-1 boundary.
  sched::Placement p;
  for (int i = 0; i < 4; ++i) {
    p[2 * i] = 0;
    p[2 * i + 1] = 1;
  }
  const auto id = f.orch->deploy_with_placement(std::move(g), std::move(p)).take();

  controller::MigrationParams params;
  params.evaluation_interval = sim::seconds(10);
  params.utilization_threshold = 0.3;
  params.headroom_frac = 0.2;
  params.cooldown = sim::seconds(10);
  params.min_migration_gap = sim::minutes(10);
  params.max_migrations_per_round = 2;
  f.orch->enable_migration(id, params);

  f.network->set_link_capacity_between(0, 1, net::mbps(6));
  f.sim.schedule_periodic(sim::seconds(5), [&] {
    for (int i = 0; i < 4; ++i) {
      f.orch->traffic_stats(id).record(2 * i, 2 * i + 1, net::mbps(5) / 8 * 5 / 4);
    }
  });
  f.sim.run_until(sim::seconds(45));
  // Rounds at 10,20,30,40; violations from 20; first eligible fire at 30.
  // With the budget of 2, at most 2 migrations can have *started* per
  // round; by t=45 at most 4 total.
  EXPECT_LE(f.orch->migration_events().size() +
                static_cast<std::size_t>(0),
            4u);
  for (const auto& round : f.orch->controller_rounds(id)) {
    EXPECT_LE(round.migrations_started, 2);
  }
}

TEST(Orchestrator, MultipleDeploymentsAreIndependent) {
  Fixture f;
  const auto a = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  const auto b = f.orch->deploy(tiny_app(), SchedulerKind::kBassBfs).take();
  EXPECT_NE(a, b);
  f.orch->traffic_stats(a).record(0, 1, 999);
  EXPECT_EQ(f.orch->traffic_stats(b).total_bytes(0, 1), 0);
  f.orch->restart_component(a, 0);
  EXPECT_FALSE(f.orch->is_up(a, 0));
  EXPECT_TRUE(f.orch->is_up(b, 0));
}

}  // namespace
}  // namespace bass::core

namespace bass::core {
namespace {

TEST(Orchestrator, DrainNodeEvacuatesAndCordons) {
  Fixture f;
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 1}, {1, 1}}).take();
  const int moved = f.orch->drain_node(1);
  EXPECT_EQ(moved, 2);
  EXPECT_FALSE(f.cluster.spec(1).schedulable);
  f.sim.run_until(sim::seconds(30));
  EXPECT_NE(f.orch->node_of(id, 0), 1);
  EXPECT_NE(f.orch->node_of(id, 1), 1);
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_TRUE(f.orch->is_up(id, 1));
  EXPECT_EQ(f.cluster.usage(1).cpu_milli, 0);
}

TEST(Orchestrator, DrainSkipsPinnedComponents) {
  Fixture f;
  app::AppGraph g("pinned");
  app::Component pinned{.name = "gateway", .cpu_milli = 100, .memory_mb = 64};
  pinned.pinned_node = 2;
  g.add_component(pinned);
  g.add_component({.name = "svc", .cpu_milli = 100, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(1)});
  const auto id = f.orch->deploy_with_placement(std::move(g), {{1, 2}}).take();
  const int moved = f.orch->drain_node(2);
  EXPECT_EQ(moved, 1);  // only the unpinned service leaves
  f.sim.run_until(sim::seconds(30));
  EXPECT_EQ(f.orch->node_of(id, 0), 2);
  EXPECT_NE(f.orch->node_of(id, 1), 2);
}

TEST(Orchestrator, DrainAcrossDeployments) {
  Fixture f;
  const auto a = f.orch->deploy_with_placement(tiny_app(), {{0, 0}, {1, 1}}).take();
  const auto b = f.orch->deploy_with_placement(tiny_app(), {{0, 1}, {1, 2}}).take();
  EXPECT_EQ(f.orch->drain_node(1), 2);
  f.sim.run_until(sim::seconds(30));
  EXPECT_NE(f.orch->node_of(a, 1), 1);
  EXPECT_NE(f.orch->node_of(b, 0), 1);
}

}  // namespace
}  // namespace bass::core

namespace bass::core {
namespace {

TEST(Orchestrator, FailNodeDropsAndRecovers) {
  Fixture f;
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 1}, {1, 1}}).take();
  f.orch->fail_node(1, sim::seconds(10));
  // Both components are down immediately; the node is cordoned and empty.
  EXPECT_FALSE(f.orch->is_up(id, 0));
  EXPECT_FALSE(f.orch->is_up(id, 1));
  EXPECT_FALSE(f.cluster.spec(1).schedulable);
  EXPECT_EQ(f.cluster.usage(1).cpu_milli, 0);
  // Detection (10 s) + restart (20 s default) later they're back elsewhere.
  f.sim.run_until(sim::seconds(35));
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_TRUE(f.orch->is_up(id, 1));
  EXPECT_NE(f.orch->node_of(id, 0), 1);
  EXPECT_NE(f.orch->node_of(id, 1), 1);
  EXPECT_EQ(f.orch->migration_events().size(), 2u);
}

TEST(Orchestrator, FailNodeRetriesWhenClusterFull) {
  Fixture f;
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 1}, {1, 2}}).take();
  // Fill the survivors so recovery cannot land at first.
  f.cluster.allocate(0, f.cluster.cpu_free(0), 0);
  f.cluster.allocate(2, f.cluster.cpu_free(2) - 1000, 0);  // 1000m free on 2... minus a's 1000
  f.orch->fail_node(1, sim::seconds(5));
  f.sim.run_until(sim::seconds(40));
  EXPECT_TRUE(f.orch->is_up(id, 0));  // fits the 1000m hole on node 2
  // Free space later; the retry loop eventually lands anything still down.
  f.cluster.release(0, 4000, 0);
  f.sim.run_until(sim::minutes(3));
  EXPECT_TRUE(f.orch->is_up(id, 0));
}

TEST(Orchestrator, FailNodeLeavesOtherNodesAlone) {
  Fixture f;
  const auto id = f.orch->deploy_with_placement(tiny_app(), {{0, 0}, {1, 2}}).take();
  f.orch->fail_node(1, sim::seconds(5));
  EXPECT_TRUE(f.orch->is_up(id, 0));
  EXPECT_TRUE(f.orch->is_up(id, 1));
  f.sim.run_until(sim::minutes(1));
  EXPECT_EQ(f.orch->migration_events().size(), 0u);
}

}  // namespace
}  // namespace bass::core
