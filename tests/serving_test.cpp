// The bassd serving loop stack: churn schedule generation, admission
// policies under overload, undeploy accounting, and end-to-end serving
// scenario determinism (same seed => byte-identical journal).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/admission.h"
#include "scenario/scenario.h"
#include "workload/churn.h"

namespace bass {
namespace {

// ---- Churn schedule ----

workload::ChurnConfig small_churn(std::uint64_t seed) {
  workload::ChurnConfig cfg;
  cfg.seed = seed;
  cfg.arrival_per_min = 4.0;
  cfg.mean_lifetime = sim::minutes(3);
  cfg.duration = sim::minutes(20);
  return cfg;
}

TEST(ChurnSchedule, SameSeedIsByteIdentical) {
  const auto a = workload::build_churn_schedule(small_churn(42));
  const auto b = workload::build_churn_schedule(small_churn(42));
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].at, b[i].at);
    EXPECT_EQ(a[i].depart, b[i].depart);
    EXPECT_EQ(a[i].instance, b[i].instance);
    EXPECT_EQ(a[i].family, b[i].family);
  }
}

TEST(ChurnSchedule, DifferentSeedsDiffer) {
  const auto a = workload::build_churn_schedule(small_churn(1));
  const auto b = workload::build_churn_schedule(small_churn(2));
  bool differs = a.size() != b.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != b[i].at || a[i].instance != b[i].instance;
  }
  EXPECT_TRUE(differs);
}

TEST(ChurnSchedule, OrderedAndArrivalPrecedesDeparture) {
  const auto events = workload::build_churn_schedule(small_churn(7));
  ASSERT_FALSE(events.empty());
  std::set<int> arrived;
  sim::Time last = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.at, last);
    EXPECT_LT(e.at, small_churn(7).duration);
    last = e.at;
    if (e.depart) {
      EXPECT_TRUE(arrived.count(e.instance)) << "departure before arrival";
    } else {
      EXPECT_TRUE(arrived.insert(e.instance).second) << "duplicate arrival";
    }
  }
}

TEST(ChurnSchedule, DiurnalThinningStaysDeterministic) {
  auto cfg = small_churn(11);
  cfg.diurnal_amplitude = 0.6;
  cfg.diurnal_period = sim::minutes(10);
  const auto a = workload::build_churn_schedule(cfg);
  const auto b = workload::build_churn_schedule(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].at, b[i].at);
  // Amplitude only thins; the zero-amplitude schedule at the same seed is a
  // superset in expectation, and thinning must not inflate the count.
  auto flat = cfg;
  flat.diurnal_amplitude = 0.0;
  EXPECT_LE(a.size(), workload::build_churn_schedule(flat).size() * 2);
}

TEST(ChurnApp, InstanceNamesAndScaling) {
  const std::vector<net::NodeId> mesh = {0, 1, 2};
  const auto quarter = workload::make_churn_app(
      workload::AppFamily::kCameraPipeline, 3, 0.25, 1, mesh);
  const auto full = workload::make_churn_app(
      workload::AppFamily::kCameraPipeline, 4, 1.0, 1, mesh);
  EXPECT_EQ(quarter.name(), "camera#3");
  EXPECT_EQ(full.name(), "camera#4");
  EXPECT_EQ(quarter.component_count(), full.component_count());
  EXPECT_LT(quarter.total_cpu_milli(), full.total_cpu_milli());
  EXPECT_LT(quarter.total_bandwidth(), full.total_bandwidth());
  std::string why;
  EXPECT_TRUE(quarter.validate(&why)) << why;
}

TEST(ChurnApp, ConferencePinsAreDeterministicPerInstance) {
  const std::vector<net::NodeId> mesh = {0, 1, 2, 3};
  const auto a = workload::make_churn_app(workload::AppFamily::kVideoConference,
                                          5, 0.5, 9, mesh);
  const auto b = workload::make_churn_app(workload::AppFamily::kVideoConference,
                                          5, 0.5, 9, mesh);
  ASSERT_EQ(a.component_count(), b.component_count());
  int pinned = 0;
  for (app::ComponentId c = 0; c < a.component_count(); ++c) {
    EXPECT_EQ(a.component(c).pinned_node, b.component(c).pinned_node);
    if (a.component(c).pinned_node) {
      ++pinned;
      EXPECT_LE(*a.component(c).pinned_node, 3);
    }
  }
  EXPECT_GE(pinned, 2);  // at least a two-way conference
}

// ---- Undeploy accounting & admission (shared fixture) ----

struct Fixture {
  sim::Simulation sim;
  std::unique_ptr<net::Network> network;
  cluster::ClusterState cluster;
  std::unique_ptr<core::Orchestrator> orch;

  // Triangle mesh, 3 modest nodes: overload is easy to provoke.
  explicit Fixture(std::int64_t cpu_per_node = 4000) {
    net::Topology topo;
    for (int i = 0; i < 3; ++i) topo.add_node();
    topo.add_link(0, 1, net::mbps(50));
    topo.add_link(1, 2, net::mbps(50));
    topo.add_link(0, 2, net::mbps(50));
    network = std::make_unique<net::Network>(sim, std::move(topo));
    for (int i = 0; i < 3; ++i) cluster.add_node(i, {cpu_per_node, 8192, true});
    orch = std::make_unique<core::Orchestrator>(sim, *network, cluster);
  }

  std::int64_t total_cpu_used() const {
    std::int64_t used = 0;
    for (int n = 0; n < 3; ++n) used += cluster.usage(n).cpu_milli;
    return used;
  }
  std::int64_t total_mem_used() const {
    std::int64_t used = 0;
    for (int n = 0; n < 3; ++n) used += cluster.usage(n).memory_mb;
    return used;
  }
};

app::AppGraph one_pod(const std::string& name, std::int64_t cpu) {
  app::AppGraph g(name);
  g.add_component({.name = "pod", .cpu_milli = cpu, .memory_mb = 256});
  return g;
}

TEST(Undeploy, AccountingRoundTripsToZero) {
  Fixture f(16000);  // roomy: four quarter-scale catalog apps must all fit
  const std::vector<net::NodeId> mesh = {0, 1, 2};
  std::vector<core::DeploymentId> ids;
  for (int i = 0; i < 4; ++i) {
    auto app = workload::make_churn_app(
        i % 2 == 0 ? workload::AppFamily::kCameraPipeline
                   : workload::AppFamily::kSocialNetwork,
        i, 0.25, 1, mesh);
    auto id = f.orch->deploy(std::move(app), core::SchedulerKind::kBassBfs,
                             "inst" + std::to_string(i));
    ASSERT_TRUE(id.ok()) << id.error();
    ids.push_back(id.value());
  }
  EXPECT_GT(f.total_cpu_used(), 0);
  EXPECT_EQ(f.orch->live_deployment_count(), 4);

  for (const auto id : ids) EXPECT_TRUE(f.orch->undeploy(id));
  EXPECT_EQ(f.total_cpu_used(), 0);
  EXPECT_EQ(f.total_mem_used(), 0);
  EXPECT_EQ(f.orch->live_deployment_count(), 0);
  // Second undeploy is rejected, not double-released.
  EXPECT_FALSE(f.orch->undeploy(ids[0]));
  EXPECT_EQ(f.total_cpu_used(), 0);
}

TEST(Undeploy, CancelsInFlightMigrationBringUp) {
  Fixture f(12000);
  app::AppGraph g("mover");
  g.add_component({.name = "a", .cpu_milli = 1000, .memory_mb = 128});
  g.add_component({.name = "b", .cpu_milli = 1000, .memory_mb = 128});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(4)});
  const auto id = f.orch->deploy(std::move(g), core::SchedulerKind::kBassBfs).take();
  const net::NodeId before = f.orch->node_of(id, 0);
  ASSERT_TRUE(f.orch->migrate(id, 0, (before + 1) % 3));
  // Undeploy while the restart is in flight: the pending bring-up must not
  // resurrect the component or leak an allocation.
  EXPECT_TRUE(f.orch->undeploy(id));
  f.sim.run_until(sim::minutes(2));
  EXPECT_EQ(f.total_cpu_used(), 0);
  EXPECT_FALSE(f.orch->deployment_active(id));
}

TEST(Undeploy, FreesNameForRedeployment) {
  Fixture f;
  const auto first =
      f.orch->deploy(one_pod("svc", 1000), core::SchedulerKind::kBassBfs, "svc");
  ASSERT_TRUE(first.ok());
  // Duplicate while active: rejected.
  EXPECT_FALSE(
      f.orch->deploy(one_pod("svc", 1000), core::SchedulerKind::kBassBfs, "svc").ok());
  EXPECT_TRUE(f.orch->undeploy(first.value()));
  // After undeploy the instance name is free again, with a fresh id.
  const auto second =
      f.orch->deploy(one_pod("svc", 1000), core::SchedulerKind::kBassBfs, "svc");
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second.value(), first.value());
}

TEST(Undeploy, LifecycleWarningsAreJournaled) {
  Fixture f;
  obs::Recorder recorder{obs::RecorderConfig{}};
  f.orch->set_recorder(&recorder);
  const auto id =
      f.orch->deploy(one_pod("svc", 1000), core::SchedulerKind::kBassBfs, "svc");
  ASSERT_TRUE(id.ok());
  // Each abuse journals a typed warning instead of corrupting state.
  EXPECT_FALSE(
      f.orch->deploy(one_pod("svc", 1000), core::SchedulerKind::kBassBfs, "svc").ok());
  f.orch->fail_node(2);
  f.orch->fail_node(2);  // double-fail: idempotent no-op + warning
  EXPECT_EQ(f.orch->failed_nodes().size(), 1u);
  EXPECT_TRUE(f.orch->undeploy(id.value()));
  EXPECT_FALSE(f.orch->undeploy(id.value()));
  const std::string journal = recorder.journal().to_jsonl();
  EXPECT_NE(journal.find("duplicate_deployment"), std::string::npos);
  EXPECT_NE(journal.find("node_already_failed"), std::string::npos);
  EXPECT_NE(journal.find("undeploy_inactive"), std::string::npos);
  EXPECT_NE(journal.find("deployment_closed"), std::string::npos);
}

// ---- Admission policies under overload ----

struct Decision {
  int instance;
  bool admitted;
};

TEST(Admission, FifoBlocksHeadOfLineAndNeverRejects) {
  // 4200 per node: three 4000-mcpu pods leave 200 free on each node, so the
  // 100-mcpu pod WOULD fit — fifo must still hold it behind the blocked head.
  Fixture f(4200);
  core::AdmissionConfig cfg;
  cfg.policy = core::AdmissionPolicy::kFifo;
  cfg.retry_interval = sim::seconds(10);
  core::AdmissionQueue q(f.sim, *f.orch, cfg);
  std::vector<Decision> decisions;
  const auto on_decision = [&](int instance, core::DeploymentId, bool admitted) {
    decisions.push_back({instance, admitted});
  };
  // Three 4000-mcpu pods fill the mesh; the fourth blocks, and the smaller
  // fifth must NOT overtake it (strict arrival order).
  for (int i = 0; i < 4; ++i) {
    q.submit(i, "big" + std::to_string(i), one_pod("big" + std::to_string(i), 4000),
             core::SchedulerKind::kBassBfs, on_decision);
  }
  q.submit(4, "small", one_pod("small", 100), core::SchedulerKind::kBassBfs,
           on_decision);
  EXPECT_EQ(decisions.size(), 3u);
  EXPECT_EQ(q.depth(), 2);
  f.sim.run_until(sim::minutes(5));
  EXPECT_EQ(decisions.size(), 3u);  // still blocked, still nothing rejected
  EXPECT_EQ(q.stats().rejected, 0);

  // Freeing capacity admits the head, then the small one behind it.
  ASSERT_TRUE(f.orch->undeploy(0));
  q.kick();
  ASSERT_EQ(decisions.size(), 5u);
  EXPECT_EQ(decisions[3].instance, 3);
  EXPECT_TRUE(decisions[3].admitted);
  EXPECT_EQ(decisions[4].instance, 4);
  EXPECT_TRUE(decisions[4].admitted);
  EXPECT_EQ(q.depth(), 0);
}

TEST(Admission, RejectResolvesAtTheDoorWithZeroDepth) {
  Fixture f;
  core::AdmissionConfig cfg;
  cfg.policy = core::AdmissionPolicy::kRejectOnPressure;
  core::AdmissionQueue q(f.sim, *f.orch, cfg);
  std::vector<Decision> decisions;
  for (int i = 0; i < 5; ++i) {
    q.submit(i, "p" + std::to_string(i), one_pod("p" + std::to_string(i), 4000),
             core::SchedulerKind::kBassBfs,
             [&](int instance, core::DeploymentId, bool admitted) {
               decisions.push_back({instance, admitted});
             });
    EXPECT_EQ(q.depth(), 0);  // reject never queues
  }
  ASSERT_EQ(decisions.size(), 5u);
  EXPECT_TRUE(decisions[0].admitted);
  EXPECT_TRUE(decisions[1].admitted);
  EXPECT_TRUE(decisions[2].admitted);
  EXPECT_FALSE(decisions[3].admitted);
  EXPECT_FALSE(decisions[4].admitted);
  EXPECT_EQ(q.stats().rejected, 2);
}

TEST(Admission, DeferAllowsOvertakingAndBoundsRetries) {
  Fixture f(4200);  // 200 free per node: small fits, huge never does
  core::AdmissionConfig cfg;
  cfg.policy = core::AdmissionPolicy::kDeferRetry;
  cfg.retry_interval = sim::seconds(10);
  cfg.max_retries = 3;
  core::AdmissionQueue q(f.sim, *f.orch, cfg);
  std::vector<Decision> decisions;
  const auto on_decision = [&](int instance, core::DeploymentId, bool admitted) {
    decisions.push_back({instance, admitted});
  };
  for (int i = 0; i < 3; ++i) {
    q.submit(i, "big" + std::to_string(i), one_pod("big" + std::to_string(i), 4000),
             core::SchedulerKind::kBassBfs, on_decision);
  }
  // Mesh is full. A too-big pod defers; a small one behind it overtakes.
  q.submit(3, "huge", one_pod("huge", 4000), core::SchedulerKind::kBassBfs,
           on_decision);
  q.submit(4, "small", one_pod("small", 100), core::SchedulerKind::kBassBfs,
           on_decision);
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_EQ(decisions[3].instance, 4);  // small overtook the stuck huge pod
  EXPECT_TRUE(decisions[3].admitted);

  // The stuck pod retries max_retries times, then is rejected — the queue
  // drains instead of growing forever.
  f.sim.run_until(sim::minutes(5));
  ASSERT_EQ(decisions.size(), 5u);
  EXPECT_EQ(decisions[4].instance, 3);
  EXPECT_FALSE(decisions[4].admitted);
  EXPECT_EQ(q.depth(), 0);
  EXPECT_GE(q.stats().deferred, 1);
}

TEST(Admission, CancelDropsQueuedRequest) {
  Fixture f;
  core::AdmissionConfig cfg;
  cfg.policy = core::AdmissionPolicy::kFifo;
  core::AdmissionQueue q(f.sim, *f.orch, cfg);
  int decided = 0;
  q.submit(0, "a", one_pod("a", 4000), core::SchedulerKind::kBassBfs,
           [&](int, core::DeploymentId, bool) { ++decided; });
  q.submit(1, "b", one_pod("b", 9000), core::SchedulerKind::kBassBfs,
           [&](int, core::DeploymentId, bool) { ++decided; });
  EXPECT_EQ(q.depth(), 1);
  EXPECT_TRUE(q.cancel(1));
  EXPECT_FALSE(q.cancel(1));  // already gone
  EXPECT_EQ(q.depth(), 0);
  EXPECT_EQ(q.stats().cancelled, 1);
  EXPECT_EQ(decided, 1);  // cancelled requests never get a decision
}

// ---- End-to-end serving scenario ----

constexpr const char* kServeIni = R"(
[node a]
cpu = 4000
memory_mb = 4096
[node b]
cpu = 4000
memory_mb = 4096
[node c]
cpu = 4000
memory_mb = 4096
[link a b]
capacity_mbps = 20
[link b c]
capacity_mbps = 16
[link a c]
capacity_mbps = 12
[serve]
mode = adaptive
seed = 5
arrival_per_min = 3
mean_lifetime_s = 120
resource_scale = 0.25
policy = fifo
retry_s = 15
[run]
duration_s = 600
)";

std::unique_ptr<scenario::Scenario> build_serve(const std::string& text) {
  const auto ini = util::parse_ini(text);
  EXPECT_TRUE(ini.ok()) << (ini.ok() ? "" : ini.error());
  auto s = scenario::Scenario::from_ini(ini.value());
  EXPECT_TRUE(s.ok()) << (s.ok() ? "" : s.error());
  return s.ok() ? std::move(s.value()) : nullptr;
}

TEST(ServingScenario, ChurnRunsCleanAndBalancesTheBooks) {
  auto s = build_serve(kServeIni);
  ASSERT_NE(s, nullptr);
  ASSERT_NE(s->serving(), nullptr);
  EXPECT_EQ(s->deployment(), core::kInvalidDeployment);  // no one-shot app
  const auto report = s->run();
  EXPECT_TRUE(report.served);
  EXPECT_GT(report.serve_arrivals, 0);
  EXPECT_GT(report.serve_admitted, 0);
  EXPECT_EQ(report.invariant_violations, 0);
  // Every arrival resolves exactly one way: admitted, rejected, or
  // cancelled-while-queued — minus whatever is still waiting at the end.
  EXPECT_EQ(report.serve_admitted + report.serve_rejected + report.serve_cancelled +
                s->serving()->queue_depth(),
            report.serve_arrivals);
  // The live population is exactly admitted minus undeployed.
  EXPECT_EQ(s->orchestrator().live_deployment_count(), report.serve_live_at_end);
}

TEST(ServingScenario, SameSeedGivesByteIdenticalJournal) {
  auto a = build_serve(kServeIni);
  auto b = build_serve(kServeIni);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->run();
  b->run();
  const std::string ja = a->recorder().journal().to_jsonl();
  const std::string jb = b->recorder().journal().to_jsonl();
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb);
}

TEST(ServingScenario, DifferentSeedDiverges) {
  auto a = build_serve(kServeIni);
  std::string other(kServeIni);
  other.replace(other.find("seed = 5"), 8, "seed = 6");
  auto b = build_serve(other);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  a->run();
  b->run();
  EXPECT_NE(a->recorder().journal().to_jsonl(), b->recorder().journal().to_jsonl());
}

TEST(ServingScenario, StaticModeNeverMigrates) {
  std::string text(kServeIni);
  text.replace(text.find("mode = adaptive"), 15, "mode = static  ");
  auto s = build_serve(text);
  ASSERT_NE(s, nullptr);
  const auto report = s->run();
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_EQ(report.invariant_violations, 0);
}

}  // namespace
}  // namespace bass
