#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "util/csv.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/strings.h"

namespace bass::util {
namespace {

TEST(Stats, MeanOfEmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Stats, MeanBasic) { EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0); }

TEST(Stats, StddevSingleSampleIsZero) { EXPECT_EQ(stddev({5.0}), 0.0); }

TEST(Stats, StddevKnownValue) {
  // Population stddev of {2,4,4,4,5,5,7,9} is exactly 2.
  EXPECT_DOUBLE_EQ(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
}

TEST(Stats, PercentileEdges) {
  std::vector<double> v{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 25.0);  // interpolated
}

TEST(Stats, PercentileUnsortedInput) {
  EXPECT_DOUBLE_EQ(percentile({40, 10, 30, 20}, 100), 40.0);
}

TEST(Stats, MinMax) {
  EXPECT_DOUBLE_EQ(min_of({3, 1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(max_of({3, 1, 2}), 3.0);
  EXPECT_EQ(min_of({}), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(7);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(20.0);
  EXPECT_NEAR(sum / n, 20.0, 0.5);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(Strings, Format) {
  EXPECT_EQ(str_format("x=%d y=%.1f", 3, 2.5), "x=3 y=2.5");
  EXPECT_EQ(str_format("%s", ""), "");
}

TEST(Strings, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  hi \t"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, FormatBps) {
  EXPECT_EQ(format_bps(7.62e6), "7.62 Mbps");
  EXPECT_EQ(format_bps(2.5e9), "2.50 Gbps");
  EXPECT_EQ(format_bps(240e3), "240.00 Kbps");
  EXPECT_EQ(format_bps(12), "12 bps");
}

TEST(Csv, RoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "bass_csv_test.csv").string();
  {
    CsvWriter w(path, {"a", "b"});
    ASSERT_TRUE(w.ok());
    w.row({"1", "x"});
    w.row({"2", "y"});
  }
  const auto table = read_csv(path);
  ASSERT_TRUE(table.has_value());
  EXPECT_EQ(table->header, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(table->rows.size(), 2u);
  EXPECT_EQ(table->rows[1][1], "y");
  std::remove(path.c_str());
}

TEST(Csv, MissingFile) {
  EXPECT_FALSE(read_csv("/nonexistent/definitely/not/here.csv").has_value());
}

}  // namespace
}  // namespace bass::util

#include "util/expected.h"

namespace bass::util {
namespace {

TEST(Expected, HoldsValueOrError) {
  Expected<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);

  Expected<int> bad(make_error("boom"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error(), "boom");
}

TEST(Expected, TakeMovesValue) {
  Expected<std::string> e(std::string("payload"));
  const std::string taken = e.take();
  EXPECT_EQ(taken, "payload");
}

TEST(Expected, BoolConversion) {
  Expected<int> ok(1);
  Expected<int> bad(make_error("x"));
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_FALSE(static_cast<bool>(bad));
}

TEST(Logging, LevelFilterSkipsFormatting) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  log_debug() << "value " << expensive();
  // The stream still evaluates arguments (C++ semantics) but must not
  // emit; verify no crash and restore the default.
  EXPECT_EQ(evaluations, 1);
  set_log_level(LogLevel::kWarn);
}

}  // namespace
}  // namespace bass::util
