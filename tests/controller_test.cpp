#include <gtest/gtest.h>

#include "app/catalog.h"
#include "controller/migration_policy.h"

namespace bass::controller {
namespace {

MigrationParams params_with(double threshold, double headroom) {
  MigrationParams p;
  p.utilization_threshold = threshold;
  p.headroom_frac = headroom;
  return p;
}

EdgeObservation obs(net::Bps required, net::Bps measured, net::Bps capacity,
                    app::ComponentId from = 0, app::ComponentId to = 1) {
  EdgeObservation o;
  o.from = from;
  o.to = to;
  o.required = required;
  o.measured = measured;
  o.path_capacity = capacity;
  return o;
}

TEST(EdgeViolates, RequiresHeadroomPlusATrigger) {
  const auto p = params_with(0.5, 0.2);
  // High utilization + insufficient headroom: violation.
  EXPECT_TRUE(edge_violates(obs(net::mbps(8), net::mbps(6), net::mbps(7)), p));
  // High utilization but capacity comfortably covers requirement+headroom.
  EXPECT_FALSE(edge_violates(obs(net::mbps(8), net::mbps(20), net::mbps(40)), p));
  // Small requirement, modest usage, link has plenty of headroom: healthy.
  EXPECT_FALSE(edge_violates(obs(net::mbps(2), net::mbps(1), net::mbps(7)), p));
  // Requirement no longer fits the degraded link and the pair receives
  // well under its quota: the proactive starvation trigger fires.
  EXPECT_TRUE(edge_violates(obs(net::mbps(8), net::mbps(1), net::mbps(7)), p));
}

TEST(EdgeViolates, ProbedHeadroomViolationEnablesStarvationTrigger) {
  const auto p = params_with(0.5, 0.2);
  // Small requirement (arithmetic headroom fine), but the monitor reports
  // the link's headroom gone and the pair only gets 30% of what it offers.
  auto o = obs(net::mbps(2), net::kbps(600), net::mbps(10));
  o.offered = net::mbps(2);
  EXPECT_FALSE(edge_violates(o, p));  // probe says the path is healthy
  o.path_headroom_ok = false;
  EXPECT_TRUE(edge_violates(o, p));
}

TEST(EdgeViolates, IdlePairOnBusyHealthyLinkIsNotStarved) {
  const auto p = params_with(0.5, 0.2);
  // Nothing offered, nothing measured, requirement fits: healthy.
  auto o = obs(net::mbps(2), 0, net::mbps(10));
  o.offered = 0;
  EXPECT_FALSE(edge_violates(o, p));
}

TEST(EdgeViolates, DeadPathAlwaysViolates) {
  const auto p = params_with(0.5, 0.2);
  EXPECT_TRUE(edge_violates(obs(net::mbps(1), 0, 0), p));
}

TEST(EdgeViolates, ThresholdSweepDirection) {
  // Same observation, rising thresholds: violation must flip off — lower
  // thresholds migrate more eagerly (the Figs. 14(c,d)/16 semantics).
  const auto o = obs(net::mbps(10), net::mbps(6), net::mbps(10));
  EXPECT_TRUE(edge_violates(o, params_with(0.25, 0.2)));
  EXPECT_TRUE(edge_violates(o, params_with(0.50, 0.2)));
  EXPECT_FALSE(edge_violates(o, params_with(0.75, 0.2)));
  EXPECT_FALSE(edge_violates(o, params_with(0.95, 0.2)));
}

app::AppGraph pair_app() {
  app::AppGraph g("pair");
  g.add_component({.name = "a", .cpu_milli = 100, .memory_mb = 64});
  g.add_component({.name = "b", .cpu_milli = 100, .memory_mb = 64});
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(8)});
  return g;
}

TEST(SelectCandidates, OnlyOneOfACommunicatingPairMigrates) {
  const auto g = pair_app();
  const auto p = params_with(0.5, 0.2);
  // Both endpoints of this violating edge are raw candidates; the dedup
  // must keep exactly one (§3.2.2 / Table 1 narrative).
  const auto chosen =
      select_migration_candidates(g, {obs(net::mbps(8), net::mbps(6), net::mbps(7))}, p);
  EXPECT_EQ(chosen.size(), 1u);
}

TEST(SelectCandidates, HeaviestRequirementFirst) {
  app::AppGraph g("three");
  for (int i = 0; i < 4; ++i) {
    g.add_component({.name = std::to_string(i), .cpu_milli = 100, .memory_mb = 64});
  }
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(2)});
  g.add_dependency({.from = 2, .to = 3, .bandwidth = net::mbps(9)});
  const auto p = params_with(0.5, 0.2);
  const auto chosen = select_migration_candidates(
      g,
      {obs(net::mbps(2), net::mbps(2), net::mbps(2), 0, 1),
       obs(net::mbps(9), net::mbps(8), net::mbps(8), 2, 3)},
      p);
  ASSERT_GE(chosen.size(), 2u);
  // A component of the 9 Mbps pair is ranked before the 2 Mbps pair's.
  EXPECT_TRUE(chosen[0] == 2 || chosen[0] == 3);
}

TEST(SelectCandidates, NoViolationsNoCandidates) {
  const auto g = pair_app();
  const auto p = params_with(0.5, 0.2);
  EXPECT_TRUE(
      select_migration_candidates(g, {obs(net::mbps(8), net::mbps(1), net::mbps(50))}, p)
          .empty());
  EXPECT_TRUE(select_migration_candidates(g, {}, p).empty());
}

TEST(SelectCandidates, PinnedComponentsNeverSelected) {
  app::AppGraph g("vc");
  g.add_component({.name = "sfu", .cpu_milli = 100, .memory_mb = 64});
  app::Component clients{.name = "clients", .cpu_milli = 0, .memory_mb = 0};
  clients.pinned_node = 3;
  g.add_component(clients);
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(20)});
  const auto p = params_with(0.5, 0.2);
  const auto chosen = select_migration_candidates(
      g, {obs(net::mbps(20), net::mbps(10), net::mbps(12), 0, 1)}, p);
  ASSERT_EQ(chosen.size(), 1u);
  EXPECT_EQ(chosen[0], 0);  // the SFU moves, the attachment point can't
}

TEST(SelectCandidates, ChainDedupDropsSharedMiddle) {
  // a-b-c chain where both edges violate. The dedup rule only forbids
  // migrating *communicating pairs* together: the middle component b is
  // dropped (it talks to both kept endpoints), while a and c — which do
  // not communicate — may both migrate.
  app::AppGraph g("chain");
  for (int i = 0; i < 3; ++i) {
    g.add_component({.name = std::to_string(i), .cpu_milli = 100, .memory_mb = 64});
  }
  g.add_dependency({.from = 0, .to = 1, .bandwidth = net::mbps(9)});
  g.add_dependency({.from = 1, .to = 2, .bandwidth = net::mbps(8)});
  const auto p = params_with(0.5, 0.2);
  const auto chosen = select_migration_candidates(
      g,
      {obs(net::mbps(9), net::mbps(7), net::mbps(8), 0, 1),
       obs(net::mbps(8), net::mbps(7), net::mbps(8), 1, 2)},
      p);
  // No chosen pair may share an edge.
  for (app::ComponentId a : chosen) {
    for (app::ComponentId b : chosen) {
      for (const app::Edge& e : g.edges()) {
        EXPECT_FALSE((e.from == a && e.to == b) || (e.from == b && e.to == a))
            << "communicating pair " << a << "," << b << " both selected";
      }
    }
  }
  EXPECT_FALSE(chosen.empty());
}

TEST(CooldownTracker, RequiresPersistence) {
  MigrationParams p;
  p.cooldown = sim::seconds(60);
  p.min_migration_gap = sim::seconds(60);
  CooldownTracker t(p);
  // First sighting arms the timer but does not fire.
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(0)));
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(30)));
  EXPECT_TRUE(t.should_migrate(0, true, sim::seconds(60)));
}

TEST(CooldownTracker, ClearingViolationResetsTimer) {
  MigrationParams p;
  p.cooldown = sim::seconds(60);
  CooldownTracker t(p);
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(0)));
  EXPECT_FALSE(t.should_migrate(0, false, sim::seconds(30)));  // transient dip over
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(60)));   // re-armed at 60
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(90)));
  EXPECT_TRUE(t.should_migrate(0, true, sim::seconds(120)));
}

TEST(CooldownTracker, MigrationGapSuppresssFlapping) {
  MigrationParams p;
  p.cooldown = sim::seconds(30);
  p.min_migration_gap = sim::seconds(120);
  CooldownTracker t(p);
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(0)));
  EXPECT_TRUE(t.should_migrate(0, true, sim::seconds(30)));
  t.note_migration(0, sim::seconds(30));
  // Violation re-appears right away but the gap blocks re-migration.
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(60)));
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(90)));
  // Gap over (150 >= 30+120) and violation persisted >= cooldown.
  EXPECT_TRUE(t.should_migrate(0, true, sim::seconds(150)));
}

TEST(CooldownTracker, IndependentPerComponent) {
  MigrationParams p;
  p.cooldown = sim::seconds(60);
  CooldownTracker t(p);
  EXPECT_FALSE(t.should_migrate(0, true, sim::seconds(0)));
  EXPECT_FALSE(t.should_migrate(1, true, sim::seconds(40)));
  EXPECT_TRUE(t.should_migrate(0, true, sim::seconds(60)));
  EXPECT_FALSE(t.should_migrate(1, true, sim::seconds(60)));
  EXPECT_TRUE(t.should_migrate(1, true, sim::seconds(100)));
}

}  // namespace
}  // namespace bass::controller
