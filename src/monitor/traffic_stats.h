// Passive per-component-pair traffic accounting — the paper's "TX/RX bytes
// between application components" metric (gathered there by an Istio
// sidecar + Prometheus; here the workload engines report delivered bytes as
// transfers and stream samples complete).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "app/app_graph.h"
#include "net/types.h"
#include "sim/time.h"

namespace bass::monitor {

class TrafficStats {
 public:
  // Adds `bytes` *delivered* from `from` to `to` (either direction of an
  // app edge is recorded under that directed pair).
  void record(app::ComponentId from, app::ComponentId to, std::int64_t bytes);

  // Adds `bytes` *offered* (handed to the network, whether or not it has
  // arrived yet). delivered/offered is the pair's goodput: ~1 when the
  // network keeps up, << 1 when the link starves the pair (§3.2.2's second
  // migration trigger).
  void record_offered(app::ComponentId from, app::ComponentId to, std::int64_t bytes);

  // Total delivered bytes for a pair since construction.
  std::int64_t total_bytes(app::ComponentId from, app::ComponentId to) const;

  struct WindowRates {
    net::Bps delivered = 0;
    net::Bps offered = 0;
  };
  // Average rates over the window since the pair's last take; resets it.
  WindowRates take_window(app::ComponentId from, app::ComponentId to, sim::Time now);

  // Convenience: take_window().delivered.
  net::Bps take_rate(app::ComponentId from, app::ComponentId to, sim::Time now);

  // Non-destructive delivered-rate peek.
  net::Bps peek_rate(app::ComponentId from, app::ComponentId to, sim::Time now) const;

 private:
  struct PairStats {
    std::int64_t window_bytes = 0;
    std::int64_t window_offered = 0;
    std::int64_t total_bytes = 0;
    sim::Time window_start = 0;
  };
  static std::int64_t key(app::ComponentId from, app::ComponentId to) {
    return (static_cast<std::int64_t>(from) << 32) | static_cast<std::uint32_t>(to);
  }
  std::unordered_map<std::int64_t, PairStats> pairs_;
};

}  // namespace bass::monitor
