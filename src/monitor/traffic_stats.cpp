#include "monitor/traffic_stats.h"

namespace bass::monitor {

namespace {

net::Bps rate_of(std::int64_t bytes, sim::Duration window) {
  if (window <= 0) return 0;
  return static_cast<net::Bps>(static_cast<double>(bytes) * 8e6 /
                               static_cast<double>(window));
}

}  // namespace

void TrafficStats::record(app::ComponentId from, app::ComponentId to, std::int64_t bytes) {
  PairStats& p = pairs_[key(from, to)];
  p.window_bytes += bytes;
  p.total_bytes += bytes;
}

void TrafficStats::record_offered(app::ComponentId from, app::ComponentId to,
                                  std::int64_t bytes) {
  pairs_[key(from, to)].window_offered += bytes;
}

std::int64_t TrafficStats::total_bytes(app::ComponentId from, app::ComponentId to) const {
  const auto it = pairs_.find(key(from, to));
  return it == pairs_.end() ? 0 : it->second.total_bytes;
}

TrafficStats::WindowRates TrafficStats::take_window(app::ComponentId from,
                                                    app::ComponentId to, sim::Time now) {
  PairStats& p = pairs_[key(from, to)];
  WindowRates rates{rate_of(p.window_bytes, now - p.window_start),
                    rate_of(p.window_offered, now - p.window_start)};
  p.window_bytes = 0;
  p.window_offered = 0;
  p.window_start = now;
  return rates;
}

net::Bps TrafficStats::take_rate(app::ComponentId from, app::ComponentId to, sim::Time now) {
  return take_window(from, to, now).delivered;
}

net::Bps TrafficStats::peek_rate(app::ComponentId from, app::ComponentId to,
                                 sim::Time now) const {
  const auto it = pairs_.find(key(from, to));
  if (it == pairs_.end()) return 0;
  return rate_of(it->second.window_bytes, now - it->second.window_start);
}

}  // namespace bass::monitor
