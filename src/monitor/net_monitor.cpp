#include "monitor/net_monitor.h"

#include <algorithm>

#include "util/logging.h"

namespace bass::monitor {

namespace {
// Probe traffic is tagged so delivered bytes can be read back per probe.
constexpr net::Tag kProbeTagBase = 0xBA55'0000'0000'0000ULL;
}  // namespace

NetMonitor::NetMonitor(net::Network& network, MonitorConfig config)
    : network_(&network),
      config_(config),
      links_(static_cast<std::size_t>(network.topology().link_count())),
      next_probe_tag_(kProbeTagBase) {
  // Until the first probe round, fall back to nominal capacities (the
  // operator's initial link inventory).
  for (int l = 0; l < network.topology().link_count(); ++l) {
    links_[static_cast<std::size_t>(l)].cached_capacity = network.topology().link(l).capacity;
  }
}

NetMonitor::~NetMonitor() { stop(); }

void NetMonitor::start() {
  if (started_) return;
  started_ = true;
  // Startup round: flood every directed link in parallel (§4.2 "when the
  // system starts up ... flooding each link with packets").
  for (int l = 0; l < network_->topology().link_count(); ++l) {
    full_probe(l);
  }
  periodic_ = network_->simulation().schedule_periodic(
      config_.probe_interval, [this] { run_headroom_round(); });
  if (config_.full_refresh_interval > 0) {
    refresh_ = network_->simulation().schedule_periodic(
        config_.full_refresh_interval, [this] {
          for (int l = 0; l < network_->topology().link_count(); ++l) {
            full_probe(l);
          }
        });
  }
}

void NetMonitor::stop() {
  if (!started_) return;
  started_ = false;
  if (periodic_ != sim::kInvalidEvent) {
    network_->simulation().cancel_periodic(periodic_);
    periodic_ = sim::kInvalidEvent;
  }
  if (refresh_ != sim::kInvalidEvent) {
    network_->simulation().cancel_periodic(refresh_);
    refresh_ = sim::kInvalidEvent;
  }
}

void NetMonitor::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  if (recorder == nullptr) {
    m_probe_bytes_ = nullptr;
    m_full_probes_ = nullptr;
    m_headroom_probes_ = nullptr;
    m_violations_ = nullptr;
    m_probes_dropped_ = nullptr;
    m_probe_rtt_us_ = nullptr;
    return;
  }
  auto& metrics = recorder->metrics();
  m_probe_bytes_ = &metrics.counter("monitor.probe_bytes");
  m_full_probes_ = &metrics.counter("monitor.probes", {{"kind", "full"}});
  m_headroom_probes_ = &metrics.counter("monitor.probes", {{"kind", "headroom"}});
  m_violations_ = &metrics.counter("monitor.headroom_violations");
  m_probes_dropped_ = &metrics.counter("monitor.probes_dropped");
  m_probe_rtt_us_ = &metrics.log_histogram("monitor.probe_rtt_us");
}

void NetMonitor::set_probe_loss(double rate, std::uint64_t seed) {
  probe_loss_rate_ = std::clamp(rate, 0.0, 1.0);
  if (probe_loss_rate_ > 0 && loss_rng_ == nullptr) {
    loss_rng_ = std::make_unique<util::Rng>(seed);
  }
}

net::Bps NetMonitor::cached_capacity(net::LinkId link) const {
  return links_.at(static_cast<std::size_t>(link)).cached_capacity;
}

net::Bps NetMonitor::cached_path_capacity(net::NodeId src, net::NodeId dst) const {
  if (src == dst) return net::kUnlimitedRate;
  const auto& path = network_->routing().path(src, dst);
  if (path.empty()) return 0;
  net::Bps bottleneck = net::kUnlimitedRate;
  for (net::LinkId l : path) bottleneck = std::min(bottleneck, cached_capacity(l));
  return bottleneck;
}

bool NetMonitor::headroom_ok(net::LinkId link) const {
  return links_.at(static_cast<std::size_t>(link)).headroom_ok;
}

void NetMonitor::full_probe(net::LinkId link, std::function<void(net::Bps)> done) {
  ++full_probes_;
  launch_probe(link, net::kUnlimitedRate, /*is_full=*/true, std::move(done));
}

void NetMonitor::run_headroom_round() {
  for (int l = 0; l < network_->topology().link_count(); ++l) {
    const LinkState& state = links_[static_cast<std::size_t>(l)];
    if (state.probing) continue;  // don't stack probes on one link
    if (config_.always_full_probe) {
      full_probe(l);
      continue;
    }
    const net::Bps demand = static_cast<net::Bps>(
        static_cast<double>(state.cached_capacity) * config_.headroom_frac);
    if (demand <= 0) continue;
    ++headroom_probes_;
    launch_probe(l, demand, /*is_full=*/false, {});
  }
}

void NetMonitor::launch_probe(net::LinkId link, net::Bps demand, bool is_full,
                              std::function<void(net::Bps)> done) {
  LinkState& state = links_[static_cast<std::size_t>(link)];
  if (state.probing) {
    if (done) done(state.cached_capacity);
    return;
  }
  state.probing = true;

  // The probe's span is allocated at launch — its completion, any headroom
  // violation it detects, and a lost-probe record all chain back to it.
  const obs::SpanId probe_span =
      recorder_ != nullptr ? recorder_->new_span() : obs::kNoSpan;
  const sim::Time launched = network_->simulation().now();

  const auto& l = network_->topology().link(link);
  const net::Tag tag = next_probe_tag_++;
  // Concurrent application traffic before the probe perturbs the link
  // (from the per-node TX counters — the eBPF metric of §5).
  const net::Bps usage_before = network_->link_allocated(link);
  const net::StreamId stream = network_->open_stream(l.src, l.dst, demand, tag);

  network_->simulation().schedule_after(
      config_.probe_duration,
      [this, link, demand, is_full, tag, stream, usage_before, probe_span,
       launched, done = std::move(done)] {
        // Competing application traffic on the link while the probe ran,
        // read from the node-pair TX counters (the eBPF metric): the
        // capacity estimate is probe goodput + concurrent usage.
        const net::Bps others =
            std::max<net::Bps>(network_->link_allocated(link) -
                                   network_->stream_rate(stream),
                               0);
        network_->close_stream(stream);
        const std::int64_t delivered = network_->take_tag_bytes(tag);
        probe_bytes_ += delivered;
        // Injected probe loss: the traffic was spent but the result never
        // reached the monitor — cache and headroom state stay stale.
        if (probe_loss_rate_ > 0 && loss_rng_ != nullptr &&
            loss_rng_->chance(probe_loss_rate_)) {
          LinkState& lost = links_[static_cast<std::size_t>(link)];
          lost.probing = false;
          ++probes_dropped_;
          if (recorder_ != nullptr) {
            m_probes_dropped_->inc();
            m_probe_bytes_->add(delivered);
            const auto& dropped_link = network_->topology().link(link);
            obs::FaultInjected lost_event;
            lost_event.at = network_->simulation().now();
            lost_event.kind = "probe_lost";
            lost_event.node = dropped_link.src;
            lost_event.peer = dropped_link.dst;
            lost_event.value = probe_loss_rate_;
            lost_event.parent = probe_span;  // the probe whose result vanished
            recorder_->record(lost_event);
          }
          if (done) done(lost.cached_capacity);
          return;
        }
        const net::Bps measured = static_cast<net::Bps>(
            static_cast<double>(delivered) * 8e6 /
            static_cast<double>(config_.probe_duration));
        if (recorder_ != nullptr) {
          m_probe_bytes_->add(delivered);
          (is_full ? m_full_probes_ : m_headroom_probes_)->inc();
          // Launch-to-result latency in sim time: constant while probes are
          // timer-driven, but the histogram is the scrape point a real
          // deployment would chart, and merge-tested across sweep workers.
          m_probe_rtt_us_->observe(
              static_cast<double>(network_->simulation().now() - launched));
          obs::ProbeCompleted completed;
          completed.at = network_->simulation().now();
          completed.link = link;
          completed.full = is_full;
          completed.offered_bps = demand;
          completed.measured_bps = measured;
          completed.bytes = delivered;
          completed.span = probe_span;
          recorder_->record(completed);
        }

        LinkState& state = links_[static_cast<std::size_t>(link)];
        state.probing = false;
        if (is_full) {
          // Note: a full probe refreshes the capacity estimate but does
          // NOT clear a standing headroom violation — only a succeeding
          // headroom probe does, otherwise the violation signal would be
          // erased by the very probe it triggered.
          state.cached_capacity = measured + others;
          util::log_debug() << "full probe link " << link << " -> "
                            << state.cached_capacity << " bps";
        } else {
          const bool delivered_in_full =
              static_cast<double>(measured) >=
              static_cast<double>(demand) * config_.violation_ratio;
          // Displacement: if the app's concurrent rate shrank by more than
          // measurement noise while the probe ran, the probe's bytes were
          // taken from the application, not from spare capacity.
          const double tolerance =
              std::max(static_cast<double>(usage_before) * 0.05, 100e3);
          const bool displaced =
              static_cast<double>(others) <
              static_cast<double>(usage_before) - tolerance;
          const bool ok = delivered_in_full && !displaced;
          state.headroom_ok = ok;
          if (!ok) {
            ++violations_;
            util::log_debug() << "headroom violation on link " << link
                              << " delivered " << measured << " of " << demand;
            if (recorder_ != nullptr) {
              m_violations_->inc();
              obs::HeadroomViolation violation;
              violation.at = network_->simulation().now();
              violation.link = link;
              violation.delivered_bps = measured;
              violation.span = recorder_->new_span();
              violation.parent = probe_span;  // the probe that came up short
              recorder_->record(violation);
            }
            if (on_violation_) on_violation_(link, measured);
            if (config_.full_probe_on_violation) full_probe(link);
          }
        }
        if (done) done(state.cached_capacity);
      });
}

net::Bps MonitorNetworkView::node_link_capacity(net::NodeId node) const {
  net::Bps total = 0;
  for (net::LinkId l : monitor_->network().topology().out_links(node)) {
    total += monitor_->cached_capacity(l);
  }
  return total;
}

}  // namespace bass::monitor
