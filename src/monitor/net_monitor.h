// The BASS net-monitor (§4.2): per-node daemons that measure the wireless
// links. Two probe types, both injected as real traffic into the flow
// simulator so probe overhead and interference are modelled:
//
//  * max-capacity probe — flood the directed link for probe_duration and
//    take what arrives (plus the passively observed competing traffic) as
//    the link's capacity estimate. Run once for every link at startup and
//    again on demand.
//  * headroom probe — offer only headroom_frac of the cached capacity.
//    Headroom is missing when either (i) the link cannot deliver the probe
//    in full, or (ii) delivering it *displaced* application traffic — the
//    node-pair TX counters show the concurrent traffic dropping while the
//    probe ran, meaning the probe's bytes came out of the application's
//    share rather than out of spare capacity. Either way a violation is
//    reported (and a full probe re-estimates the link).
//
// Between probes the monitor answers capacity queries from its cache — the
// scheduler's view of the mesh is *measured*, not oracular.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.h"
#include "obs/recorder.h"
#include "sched/network_view.h"
#include "sim/simulation.h"
#include "util/rng.h"

namespace bass::monitor {

struct MonitorConfig {
  sim::Duration probe_interval = sim::seconds(30);  // §6.3.4: every 30 s
  sim::Duration probe_duration = sim::seconds(1);   // §6.3.4: 1 s probes
  double headroom_frac = 0.10;                      // §6.3.4: 10 % of capacity
  // Delivered/offered ratio below which a headroom probe counts as failed.
  double violation_ratio = 0.90;
  // Automatically schedule a max-capacity probe after a headroom violation
  // (the Fig. 8 walkthrough behaviour).
  bool full_probe_on_violation = true;
  // Slow full-capacity refresh of every link. Headroom probes are sized by
  // the *cached* capacity, so a link that degraded and later recovered
  // would keep a stale-low estimate forever without an occasional flood
  // (the paper's cache likewise holds "until a new capacity probe request
  // is made by the bandwidth controller"). 0 disables.
  sim::Duration full_refresh_interval = sim::minutes(5);
  // Ablation: flood every link every round instead of headroom-probing —
  // the naive always-measure strategy BASS's two-tier probing replaces
  // (§4.2). Expect an order of magnitude more probe traffic.
  bool always_full_probe = false;
};

class NetMonitor {
 public:
  NetMonitor(net::Network& network, MonitorConfig config = {});
  ~NetMonitor();
  NetMonitor(const NetMonitor&) = delete;
  NetMonitor& operator=(const NetMonitor&) = delete;

  // Startup max-capacity probing round + periodic headroom probing.
  void start();
  void stop();

  // ---- Cached measurements (what BASS actually schedules against) ----
  net::Bps cached_capacity(net::LinkId link) const;
  // Bottleneck of cached capacities along the routed path; kUnlimitedRate
  // for src == dst.
  net::Bps cached_path_capacity(net::NodeId src, net::NodeId dst) const;
  // Result of the latest headroom probe: true while the spare capacity was
  // delivered in full. Links never probed report true.
  bool headroom_ok(net::LinkId link) const;

  // ---- Events ----
  // Fired when a headroom probe comes up short: (link, delivered bps).
  using ViolationCallback = std::function<void(net::LinkId, net::Bps)>;
  void set_violation_callback(ViolationCallback cb) { on_violation_ = std::move(cb); }

  // Attaches the run's recorder: probes journal ProbeCompleted, shortfalls
  // journal HeadroomViolation, and probe costs are mirrored into the
  // registry (monitor.probe_bytes, monitor.probes{kind=...}). nullptr
  // detaches.
  void set_recorder(obs::Recorder* recorder);

  // ---- On-demand probing ----
  // Floods the link now; `done` receives the new capacity estimate.
  void full_probe(net::LinkId link, std::function<void(net::Bps)> done = {});

  // ---- Fault injection ----
  // Each finished probe's RESULT is lost with probability `rate`: the probe
  // traffic is still spent (overhead stays real), but the cache and
  // headroom state keep their stale values — a lossy mesh eating the
  // monitor's report packets. 0 disables. Deterministic per seed.
  void set_probe_loss(double rate, std::uint64_t seed = 0xBA55);
  int probes_dropped() const { return probes_dropped_; }

  // ---- Overhead accounting (§6.3.4) ----
  std::int64_t probe_bytes_sent() const { return probe_bytes_; }
  int full_probe_count() const { return full_probes_; }
  int headroom_probe_count() const { return headroom_probes_; }
  // Headroom violations detected since start(); monotonic, so deltas tell
  // "did a probe come up short since I last looked" (the gated sharded
  // orchestrator's probe-activity signal).
  int violation_count() const { return violations_; }

  const net::Network& network() const { return *network_; }
  const MonitorConfig& config() const { return config_; }

 private:
  struct LinkState {
    net::Bps cached_capacity = 0;
    bool headroom_ok = true;
    bool probing = false;  // a probe stream is currently live on this link
  };

  void run_headroom_round();
  void launch_probe(net::LinkId link, net::Bps demand, bool is_full,
                    std::function<void(net::Bps)> done);

  net::Network* network_;
  MonitorConfig config_;
  std::vector<LinkState> links_;
  ViolationCallback on_violation_;
  obs::Recorder* recorder_ = nullptr;
  obs::Counter* m_probe_bytes_ = nullptr;
  obs::Counter* m_full_probes_ = nullptr;
  obs::Counter* m_headroom_probes_ = nullptr;
  obs::Counter* m_violations_ = nullptr;
  obs::Counter* m_probes_dropped_ = nullptr;
  obs::LogHistogram* m_probe_rtt_us_ = nullptr;
  sim::EventId periodic_ = sim::kInvalidEvent;
  sim::EventId refresh_ = sim::kInvalidEvent;
  bool started_ = false;
  std::int64_t probe_bytes_ = 0;
  int full_probes_ = 0;
  int headroom_probes_ = 0;
  int violations_ = 0;
  double probe_loss_rate_ = 0.0;
  std::unique_ptr<util::Rng> loss_rng_;
  int probes_dropped_ = 0;
  net::Tag next_probe_tag_;
};

// Scheduler view backed by the monitor's probe cache: BASS places
// components against measured capacities.
class MonitorNetworkView final : public sched::NetworkView {
 public:
  explicit MonitorNetworkView(const NetMonitor& monitor) : monitor_(&monitor) {}

  int link_count() const override {
    return monitor_->network().topology().link_count();
  }
  net::Bps link_capacity(net::LinkId link) const override {
    return monitor_->cached_capacity(link);
  }
  const std::vector<net::LinkId>& path(net::NodeId src, net::NodeId dst) const override {
    return monitor_->network().routing().path(src, dst);
  }
  net::Bps node_link_capacity(net::NodeId node) const override;
  sim::Duration path_latency(net::NodeId src, net::NodeId dst) const override {
    return monitor_->network().path_latency(src, dst);
  }

 private:
  const NetMonitor* monitor_;
};

}  // namespace bass::monitor
