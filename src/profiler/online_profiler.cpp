#include "profiler/online_profiler.h"

#include <algorithm>

namespace bass::profiler {

OnlineProfiler::OnlineProfiler(core::Orchestrator& orchestrator,
                               core::DeploymentId deployment, ProfilerConfig config)
    : orch_(&orchestrator), deployment_(deployment), config_(config) {}

OnlineProfiler::~OnlineProfiler() { stop(); }

void OnlineProfiler::start() {
  if (running_) return;
  running_ = true;
  last_sample_ = orch_->simulation().now();
  tick_ = orch_->simulation().schedule_periodic(config_.sample_interval,
                                                [this] { sample(); });
}

void OnlineProfiler::stop() {
  if (!running_) return;
  running_ = false;
  orch_->simulation().cancel_periodic(tick_);
  tick_ = sim::kInvalidEvent;
}

net::Bps OnlineProfiler::estimate(app::ComponentId from, app::ComponentId to) const {
  const auto it = edges_.find(key(from, to));
  if (it == edges_.end()) return 0;
  return static_cast<net::Bps>(it->second.envelope_bps * config_.safety_factor);
}

void OnlineProfiler::sample() {
  const sim::Time now = orch_->simulation().now();
  const double dt = sim::to_seconds(now - last_sample_);
  last_sample_ = now;
  if (dt <= 0.0) return;
  ++samples_;

  const auto& graph = orch_->app(deployment_);
  auto& stats = orch_->traffic_stats(deployment_);
  for (const app::Edge& e : graph.edges()) {
    EdgeState& state = edges_[key(e.from, e.to)];
    // Non-destructive read: diff the cumulative totals so the controller's
    // own windows stay untouched.
    const std::int64_t total = stats.total_bytes(e.from, e.to);
    const double rate = static_cast<double>(total - state.last_total_bytes) * 8.0 / dt;
    state.last_total_bytes = total;

    // Attack/release envelope: adopt surges instantly, forget slowly.
    if (rate >= state.envelope_bps) {
      state.envelope_bps = rate;
    } else {
      state.envelope_bps *= (1.0 - config_.release);
      state.envelope_bps = std::max(state.envelope_bps, rate);
    }

    if (samples_ >= config_.warmup_samples && state.envelope_bps > 0.0) {
      const auto requirement =
          static_cast<net::Bps>(state.envelope_bps * config_.safety_factor);
      if (requirement != e.bandwidth &&
          orch_->update_edge_bandwidth(deployment_, e.from, e.to, requirement)) {
        ++updates_;
      }
    }
  }
}

}  // namespace bass::profiler
