// Online bandwidth profiling — the paper's §8 future-work item
// ("automated online profiling for gathering bandwidth requirements ...
// once an application has been deployed"), replacing the cumbersome
// offline per-pair profiling the evaluation relied on.
//
// The profiler watches each deployed edge's delivered byte counters (the
// same passive TX/RX metric the controller uses, read non-destructively
// from the cumulative totals) and maintains an attack/release envelope of
// the observed rate: jumps are adopted immediately (a requirement estimate
// must never lag a real surge), quiet periods decay slowly (a one-off
// burst shouldn't pin the requirement forever). After a warm-up, the
// envelope — padded with a safety factor — is written back into the
// deployment's edge weights, so Algorithm 3 and the rescheduler reason
// about measured requirements instead of the developer's guesses.
#pragma once

#include <unordered_map>

#include "core/orchestrator.h"

namespace bass::profiler {

struct ProfilerConfig {
  sim::Duration sample_interval = sim::seconds(10);
  // Fraction the envelope decays per sample while below the peak.
  double release = 0.05;
  // Published requirement = safety_factor x envelope.
  double safety_factor = 1.25;
  // Samples observed before estimates are written into the deployment.
  int warmup_samples = 3;
};

class OnlineProfiler {
 public:
  OnlineProfiler(core::Orchestrator& orchestrator, core::DeploymentId deployment,
                 ProfilerConfig config = {});
  ~OnlineProfiler();
  OnlineProfiler(const OnlineProfiler&) = delete;
  OnlineProfiler& operator=(const OnlineProfiler&) = delete;

  void start();
  void stop();

  // Current requirement estimate for an edge (safety factor applied);
  // 0 until the edge has been observed.
  net::Bps estimate(app::ComponentId from, app::ComponentId to) const;

  int samples_taken() const { return samples_; }
  // Number of edge-requirement updates pushed into the orchestrator.
  int updates_published() const { return updates_; }

 private:
  struct EdgeState {
    std::int64_t last_total_bytes = 0;
    double envelope_bps = 0.0;
  };
  static std::int64_t key(app::ComponentId from, app::ComponentId to) {
    return (static_cast<std::int64_t>(from) << 32) | static_cast<std::uint32_t>(to);
  }

  void sample();

  core::Orchestrator* orch_;
  core::DeploymentId deployment_;
  ProfilerConfig config_;
  std::unordered_map<std::int64_t, EdgeState> edges_;
  sim::EventId tick_ = sim::kInvalidEvent;
  sim::Time last_sample_ = 0;
  int samples_ = 0;
  int updates_ = 0;
  bool running_ = false;
};

}  // namespace bass::profiler
