// The BASS bandwidth controller's decision logic (§3.2.2, Algorithm 3,
// §4.3). Kept pure so every rule is unit-testable; the orchestrator feeds
// it observations each evaluation round and executes its verdicts.
//
// A deployed edge is *violating* under either of the paper's two
// migration scenarios (§3.2.2):
//
//   (a1) usage: "the component generates traffic such that the link's
//        capacity is almost used up" — the pair's measured traffic reaches
//        `utilization_threshold` of the (cached) path capacity AND the
//        path can no longer carry the profiled requirement plus the spare
//        `headroom_frac` (Algorithm 3's `link.bandwidth < dep.bandwidth +
//        headroom`). This is the threshold the paper sweeps at
//        25/50/65/75/95 % (Figs. 14(c,d), 16).
//
//   (a2) starvation: "the link's capacity degrades so much that the
//        component's goodput is affected" — a *probed* headroom violation
//        stands on the path (the net-monitor could not push its spare-
//        capacity probe through, §4.2) AND the pair's delivered traffic
//        sits at or below `goodput_floor` of its bandwidth quota (the
//        profiled requirement — Algorithm 3's "fraction of the allocated
//        bandwidth quota the component has used") or of what it actually
//        offered this window. The offered-ratio matters because a
//        congested pair's offered load collapses together with its
//        delivery (its caller is itself starved); the static quota keeps
//        the signal alive, and the probe gate keeps idle-but-light pairs
//        from being flagged on healthy links.
//
// Note on Algorithm 3 as printed: its `goodput := dep.bandwidth /
// dep.required` line and `goodput > threshold` test are internally
// inconsistent with the §3.2.2 prose ("migrate when goodput falls below a
// threshold") and with the sweep semantics (low threshold => eager
// migrations). The interpretation above — threshold on the component's
// utilization of the link, headroom as the second condition — is the one
// consistent with the published parameter sweeps and the Fig. 8
// walkthrough, so that is what we implement. Algorithm 3 also returns
// `migrationCandidates` after computing `finalCandidates`; we return the
// deduplicated list, which is clearly the intent.
//
// Candidates are deduplicated so that, of any communicating pair in which
// both ends violate, only the heavier end migrates — "we do not migrate
// both a component and its dependency in one shot" (Table 1 discussion).
#pragma once

#include <unordered_map>
#include <vector>

#include "app/app_graph.h"
#include "net/types.h"
#include "sim/time.h"

namespace bass::controller {

struct MigrationParams {
  // Fraction of path capacity the pair's traffic must reach (trigger (a1)).
  double utilization_threshold = 0.65;
  // Delivered/offered ratio at or below which the pair counts as starved
  // (trigger (a2)).
  double goodput_floor = 0.50;
  // Spare capacity fraction the system maintains per link (trigger (b)).
  double headroom_frac = 0.20;
  // A violation must persist this long before a migration fires (§4.3
  // "cooldown" against transient dips).
  sim::Duration cooldown = sim::seconds(60);
  // Minimum gap between consecutive migrations of the same component.
  sim::Duration min_migration_gap = sim::seconds(60);
  // Controller evaluation period (the paper's 30/60/90 s querying interval).
  sim::Duration evaluation_interval = sim::seconds(30);
  // Implementation guardrail: at most this many components restart per
  // evaluation round, heaviest first. A migration is an outage; moving a
  // large slice of the application at once would itself collapse service
  // (the paper's observed rounds move 2, 1, 1 components — Table 1).
  int max_migrations_per_round = 2;
  // Ablation switch for §3.2.2's pair rule ("we do not migrate both a
  // component and its dependency in one shot"). Default on; turning it off
  // lets both ends of a violating pair move in the same round, exposing
  // the cascading behaviour the rule exists to prevent.
  bool dedup_pairs = true;
};

// One deployed, mesh-crossing edge as seen this round.
struct EdgeObservation {
  app::ComponentId from = app::kInvalidComponent;
  app::ComponentId to = app::kInvalidComponent;
  net::Bps required = 0;       // profiled requirement (edge weight)
  net::Bps measured = 0;       // passive delivered rate over the last window
  net::Bps offered = 0;        // passive offered rate (0 = unknown)
  net::Bps path_capacity = 0;  // monitor's cached bottleneck capacity
  // False when a probed headroom violation stands on any link of the path.
  bool path_headroom_ok = true;
};

// True when the observation violates (a1) or (a2).
bool edge_violates(const EdgeObservation& obs, const MigrationParams& params);

// Algorithm 3: components that should migrate this round, ordered by
// descending bandwidth requirement, with dependency pairs deduplicated.
std::vector<app::ComponentId> select_migration_candidates(
    const app::AppGraph& app, const std::vector<EdgeObservation>& observations,
    const MigrationParams& params);

// Stateful cooldown gate shared by the orchestrator's controller loop.
class CooldownTracker {
 public:
  explicit CooldownTracker(const MigrationParams& params) : params_(params) {}

  // Reports this round's violation state for a component; returns true when
  // the violation has persisted long enough AND the component hasn't
  // migrated too recently — i.e. the migration may fire now.
  bool should_migrate(app::ComponentId component, bool violating_now, sim::Time now);

  // Call when the migration actually executes.
  void note_migration(app::ComponentId component, sim::Time now);

 private:
  MigrationParams params_;
  std::unordered_map<app::ComponentId, sim::Time> first_violation_;
  std::unordered_map<app::ComponentId, sim::Time> last_migration_;
};

}  // namespace bass::controller
