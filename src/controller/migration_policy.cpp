#include "controller/migration_policy.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "obs/recorder.h"

namespace bass::controller {

bool edge_violates(const EdgeObservation& obs, const MigrationParams& params) {
  if (obs.path_capacity <= 0) return true;  // partitioned or dead path

  // Headroom is missing on the path when either signal says so:
  //  * arithmetic (Algorithm 3's `link.bandwidth < dep.bandwidth +
  //    headroom`): the cached capacity can no longer hold the profiled
  //    requirement plus the spare fraction;
  //  * observed: a probed headroom violation or passive usage leaving less
  //    than headroom_frac of a link free (path_headroom_ok, fed by the
  //    orchestrator from the monitor + TX counters).
  const double usable =
      static_cast<double>(obs.path_capacity) * (1.0 - params.headroom_frac);
  const bool headroom_bad =
      !obs.path_headroom_ok || usable < static_cast<double>(obs.required);
  if (!headroom_bad) return false;

  // Trigger (a1): the pair's traffic fills `utilization_threshold` of the
  // path while headroom is gone.
  const double utilization =
      static_cast<double>(obs.measured) / static_cast<double>(obs.path_capacity);
  if (utilization >= params.utilization_threshold) return true;

  // Trigger (a2): the pair is starved. Against the static quota
  // (Algorithm 3's goodput = used / allocated quota) no offered-traffic
  // gate applies — the paper migrates pairs "whose bandwidth requirements
  // are not being met, or likely to be not met" (§3.2.2), and a fully
  // stalled pair offers nothing precisely because it is starved. Against
  // the offered rate the gate is needed (0/0 is idle, not starved).
  if (obs.required > 0) {
    const double vs_quota =
        static_cast<double>(obs.measured) / static_cast<double>(obs.required);
    if (vs_quota <= params.goodput_floor) return true;
  }
  if (obs.offered > 0) {
    const double vs_offered =
        static_cast<double>(obs.measured) / static_cast<double>(obs.offered);
    if (vs_offered <= params.goodput_floor) return true;
  }
  return false;
}

std::vector<app::ComponentId> select_migration_candidates(
    const app::AppGraph& app, const std::vector<EdgeObservation>& observations,
    const MigrationParams& params) {
  BASS_OBS_SCOPE("controller.select_candidates_us");
  // Collect violating components with the largest bandwidth requirement
  // seen on any of their violating edges (the sort key in Algorithm 3).
  std::unordered_map<app::ComponentId, net::Bps> worst_requirement;
  for (const EdgeObservation& obs : observations) {
    if (!edge_violates(obs, params)) continue;
    // Both endpoints of a violating edge are candidates; the dedup pass
    // below keeps only one of each communicating pair. Pinned components
    // (client attachment points) can never move.
    for (app::ComponentId c : {obs.from, obs.to}) {
      if (app.component(c).pinned_node) continue;
      auto [it, inserted] = worst_requirement.try_emplace(c, obs.required);
      if (!inserted) it->second = std::max(it->second, obs.required);
    }
  }

  std::vector<app::ComponentId> candidates;
  candidates.reserve(worst_requirement.size());
  for (const auto& [c, bw] : worst_requirement) candidates.push_back(c);
  std::sort(candidates.begin(), candidates.end(),
            [&](app::ComponentId a, app::ComponentId b) {
              if (worst_requirement[a] != worst_requirement[b]) {
                return worst_requirement[a] > worst_requirement[b];
              }
              return a < b;
            });

  if (!params.dedup_pairs) return candidates;  // ablation: no pair rule

  // Dedup: walking heaviest-first, drop every direct dependency of a kept
  // candidate so a communicating pair never migrates together.
  std::set<app::ComponentId> removed;
  std::set<app::ComponentId> kept;
  for (app::ComponentId c : candidates) {
    if (removed.count(c)) continue;
    kept.insert(c);
    for (const app::Edge& e : app.edges()) {
      if (e.from == c && !kept.count(e.to)) removed.insert(e.to);
      if (e.to == c && !kept.count(e.from)) removed.insert(e.from);
    }
  }

  std::vector<app::ComponentId> final_candidates;
  for (app::ComponentId c : candidates) {
    if (!removed.count(c)) final_candidates.push_back(c);
  }
  return final_candidates;
}

bool CooldownTracker::should_migrate(app::ComponentId component, bool violating_now,
                                     sim::Time now) {
  if (!violating_now) {
    first_violation_.erase(component);
    return false;
  }
  const auto [it, inserted] = first_violation_.try_emplace(component, now);
  if (now - it->second < params_.cooldown) return false;
  const auto last = last_migration_.find(component);
  if (last != last_migration_.end() && now - last->second < params_.min_migration_gap) {
    return false;
  }
  return true;
}

void CooldownTracker::note_migration(app::ComponentId component, sim::Time now) {
  last_migration_[component] = now;
  first_violation_.erase(component);
}

}  // namespace bass::controller
