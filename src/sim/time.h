// Simulated time. Integer microseconds everywhere: no floating-point event
// ordering, exact replay, cheap arithmetic.
#pragma once

#include <cstdint>

namespace bass::sim {

// Microseconds since simulation start.
using Time = std::int64_t;
// A span of simulated time, also in microseconds.
using Duration = std::int64_t;

constexpr Duration kMicrosecond = 1;
constexpr Duration kMillisecond = 1000;
constexpr Duration kSecond = 1000 * kMillisecond;
constexpr Duration kMinute = 60 * kSecond;

constexpr Duration micros(std::int64_t n) { return n; }
constexpr Duration millis(std::int64_t n) { return n * kMillisecond; }
constexpr Duration seconds(std::int64_t n) { return n * kSecond; }
constexpr Duration minutes(std::int64_t n) { return n * kMinute; }

// Fractional seconds helper for workload code (rounded to whole micros).
constexpr Duration seconds_f(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + 0.5);
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr double to_millis(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}

}  // namespace bass::sim
