// The simulation driver: a virtual clock plus the event queue. Everything in
// the repository (network, workloads, monitors, controllers) schedules
// callbacks here; running the simulation advances virtual time with zero
// wall-clock dependence.
#pragma once

#include <functional>
#include <unordered_map>

#include "sim/event_queue.h"
#include "sim/time.h"

namespace bass::sim {

class Simulation {
 public:
  Time now() const { return now_; }

  // Schedules `fn` after `delay` (clamped to >= 0). Returns a cancel handle.
  EventId schedule_after(Duration delay, std::function<void()> fn);

  // Schedules `fn` at absolute time `at` (clamped to >= now).
  EventId schedule_at(Time at, std::function<void()> fn);

  bool cancel(EventId id) { return queue_.cancel(id); }

  // Repeats `fn` every `period` starting at now + period, until the returned
  // handle is cancelled via cancel_periodic().
  class PeriodicHandle;
  EventId schedule_periodic(Duration period, std::function<void()> fn);
  // Periodic tasks re-arm themselves, so the live EventId changes every
  // tick; cancel them through this map-based API instead of cancel().
  bool cancel_periodic(EventId handle);

  // Runs events until the queue drains or the next event is past `deadline`.
  // The clock lands exactly on `deadline`.
  void run_until(Time deadline);

  // Runs events until the queue is fully drained.
  void run_all();

  bool idle() const { return queue_.empty(); }
  std::size_t pending_events() const { return queue_.size(); }
  // True when a live event is scheduled at or before `deadline` — the
  // activity probe gated orchestration uses to distinguish "this world
  // would do something this round" from "run_until would only move the
  // clock". Non-const: peeking compacts cancelled tombstones.
  bool has_event_before(Time deadline) {
    return !queue_.empty() && queue_.next_time() <= deadline;
  }
  // Lazily-cancelled entries awaiting heap compaction; bounded by
  // pending_events() (see EventQueue::cancelled_backlog).
  std::size_t cancelled_backlog() const { return queue_.cancelled_backlog(); }

 private:
  struct Periodic {
    Duration period;
    std::function<void()> fn;
    EventId current_event = kInvalidEvent;
    bool cancelled = false;
  };

  void arm_periodic(EventId handle);

  EventQueue queue_;
  Time now_ = 0;
  EventId next_periodic_ = 1;
  std::unordered_map<EventId, Periodic> periodics_;
};

}  // namespace bass::sim
