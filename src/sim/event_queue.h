// Cancellable priority event queue. Events at equal timestamps fire in
// insertion order (FIFO), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace bass::sim {

// Opaque handle used to cancel a scheduled event. 0 is never a valid id.
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class EventQueue {
 public:
  // Enqueues `fn` to fire at absolute time `at`. Returns a cancellation id.
  EventId push(Time at, std::function<void()> fn);

  // Cancels a pending event; returns false if it already fired or was
  // cancelled. Cancellation is lazy: the entry is dropped when popped.
  bool cancel(EventId id);

  bool empty() const { return live_count_ == 0; }
  std::size_t size() const { return live_count_; }

  // Cancelled entries still sitting in the heap awaiting lazy removal.
  // Bounded by the number of pending events: cancel() only accepts ids that
  // are live, so every tombstone is guaranteed to be compacted when its heap
  // entry reaches the top (regression coverage in tests/sim_test.cpp).
  std::size_t cancelled_backlog() const { return cancelled_.size(); }

  // Timestamp of the next live event; only valid when !empty().
  Time next_time();

  // Pops and runs the next live event, returning its timestamp.
  Time pop_and_run();

 private:
  struct Entry {
    Time at;
    EventId id;  // doubles as the FIFO tiebreaker: ids are monotonic
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.id > b.id;
    }
  };

  // Drops cancelled entries from the top of the heap.
  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  // Ids of heap entries not yet popped or cancelled. Membership gates
  // cancel(): cancelling an id that already fired (or was never issued) is a
  // no-op instead of planting an uncollectable tombstone and corrupting
  // live_count_.
  std::unordered_set<EventId> live_;
  std::unordered_set<EventId> cancelled_;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
};

}  // namespace bass::sim
