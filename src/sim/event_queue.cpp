#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace bass::sim {

EventId EventQueue::push(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  live_.insert(id);
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only ids with a pending heap entry are cancellable; anything else (never
  // issued, already fired, already cancelled) would leave a tombstone that
  // skip_cancelled() can never match, growing cancelled_ without bound under
  // long-running churn.
  if (live_.erase(id) == 0) return false;
  cancelled_.insert(id);
  --live_count_;
  return true;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

Time EventQueue::pop_and_run() {
  skip_cancelled();
  assert(!heap_.empty());
  // Move the callback out before popping so the entry can be released.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  live_.erase(entry.id);
  --live_count_;
  entry.fn();
  return entry.at;
}

}  // namespace bass::sim
