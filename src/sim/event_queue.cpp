#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace bass::sim {

EventId EventQueue::push(Time at, std::function<void()> fn) {
  const EventId id = next_id_++;
  heap_.push(Entry{at, id, std::move(fn)});
  ++live_count_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (id == kInvalidEvent || id >= next_id_) return false;
  const bool inserted = cancelled_.insert(id).second;
  if (inserted && live_count_ > 0) --live_count_;
  return inserted;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

Time EventQueue::next_time() {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().at;
}

Time EventQueue::pop_and_run() {
  skip_cancelled();
  assert(!heap_.empty());
  // Move the callback out before popping so the entry can be released.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  --live_count_;
  entry.fn();
  return entry.at;
}

}  // namespace bass::sim
