#include "sim/simulation.h"

#include <algorithm>
#include <utility>

namespace bass::sim {

EventId Simulation::schedule_after(Duration delay, std::function<void()> fn) {
  return schedule_at(now_ + std::max<Duration>(delay, 0), std::move(fn));
}

EventId Simulation::schedule_at(Time at, std::function<void()> fn) {
  return queue_.push(std::max(at, now_), std::move(fn));
}

EventId Simulation::schedule_periodic(Duration period, std::function<void()> fn) {
  const EventId handle = next_periodic_++;
  periodics_[handle] = Periodic{period, std::move(fn), kInvalidEvent, false};
  arm_periodic(handle);
  return handle;
}

void Simulation::arm_periodic(EventId handle) {
  auto it = periodics_.find(handle);
  if (it == periodics_.end() || it->second.cancelled) return;
  it->second.current_event = schedule_after(it->second.period, [this, handle] {
    auto iter = periodics_.find(handle);
    if (iter == periodics_.end() || iter->second.cancelled) return;
    iter->second.fn();
    // The callback may have cancelled this periodic task; re-check.
    arm_periodic(handle);
  });
}

bool Simulation::cancel_periodic(EventId handle) {
  auto it = periodics_.find(handle);
  if (it == periodics_.end() || it->second.cancelled) return false;
  it->second.cancelled = true;
  if (it->second.current_event != kInvalidEvent) queue_.cancel(it->second.current_event);
  periodics_.erase(it);
  return true;
}

void Simulation::run_until(Time deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
  }
  now_ = std::max(now_, deadline);
}

void Simulation::run_all() {
  while (!queue_.empty()) {
    now_ = queue_.next_time();
    queue_.pop_and_run();
  }
}

}  // namespace bass::sim
