// The two component-ordering heuristics of §3.2.1.
//
// Breadth-first (Algorithm 1): BFS over the component DAG from its
// topologically first vertex, with the frontier ordered by the bandwidth of
// the edge that discovered each vertex (descending). The paper's prose
// ("sort the yet unexplored components by the edge bandwidth to the
// currently explored component", §1) and its Fig. 6 example both use the
// discovering-edge weight; Algorithm 1's `paths[]` bookkeeping suggests a
// cumulative weight, but that ordering contradicts the published example
// order, so we follow the prose + example.
//
// Longest path (Algorithm 2): repeatedly extract the heaviest (by edge
// weight sum) path among the unvisited vertices, starting from the
// topologically first unvisited vertex, emitting each path front-to-back.
// Algorithm 2's backtracking loop as printed drops the leaf and reverses
// the path; we implement the intent shown in Fig. 6 (1,2,4,5,7,3,6).
#pragma once

#include <vector>

#include "app/app_graph.h"

namespace bass::sched {

// Flat placement order for the BFS heuristic. Covers every component,
// including those unreachable from the first root (each starts a new BFS).
std::vector<app::ComponentId> bfs_order(const app::AppGraph& app);

// The longest-path heuristic's path decomposition: each inner vector is one
// heaviest path, in data-flow order; concatenated they cover every
// component exactly once.
std::vector<std::vector<app::ComponentId>> longest_path_paths(const app::AppGraph& app);

// Flattened longest-path order (concatenation of the paths).
std::vector<app::ComponentId> longest_path_order(const app::AppGraph& app);

}  // namespace bass::sched
