#include "sched/packer.h"

#include <unordered_map>

#include "obs/recorder.h"
#include "util/strings.h"

namespace bass::sched {

namespace {

// Tracks hypothetical resource usage and link bandwidth reservations while
// a placement is being built.
class PackState {
 public:
  explicit PackState(const PackInput& input)
      : input_(input),
        reserved_(static_cast<std::size_t>(input.view.link_count()), 0) {
    for (net::NodeId n : input_.cluster.nodes()) {
      cpu_free_[n] = input_.cluster.cpu_free(n);
      mem_free_[n] = input_.cluster.memory_free(n);
    }
  }

  const Placement& placement() const { return placement_; }

  // Pins pre-placed components (client attachment points) before packing.
  void place_pinned() {
    for (app::ComponentId c = 0; c < input_.app.component_count(); ++c) {
      const auto& comp = input_.app.component(c);
      if (comp.pinned_node) place(c, *comp.pinned_node);
    }
  }

  bool placed(app::ComponentId c) const { return placement_.count(c) != 0; }

  bool can_place(app::ComponentId c, net::NodeId node) const {
    const auto& comp = input_.app.component(c);
    if (!input_.cluster.has_node(node)) return false;
    if (cpu_free_.at(node) < comp.cpu_milli) return false;
    if (mem_free_.at(node) < comp.memory_mb) return false;
    // Bandwidth feasibility: every already-placed edge of c that would
    // cross the mesh must fit within residual link capacity. The edges are
    // checked *cumulatively* — two of c's edges whose paths share a link
    // must fit together, not just one at a time.
    std::unordered_map<net::LinkId, net::Bps> additional;
    for (const app::Edge& e : input_.app.edges()) {
      app::ComponentId other = app::kInvalidComponent;
      net::NodeId from_node = net::kInvalidNode;
      net::NodeId to_node = net::kInvalidNode;
      if (e.from == c) {
        other = e.to;
        if (!placed(other)) continue;
        from_node = node;
        to_node = placement_.at(other);
      } else if (e.to == c) {
        other = e.from;
        if (!placed(other)) continue;
        from_node = placement_.at(other);
        to_node = node;
      } else {
        continue;
      }
      if (from_node == to_node) continue;
      const auto& path = input_.view.path(from_node, to_node);
      if (path.empty()) return false;  // unreachable
      if (e.max_latency > 0 &&
          input_.view.path_latency(from_node, to_node) > e.max_latency) {
        return false;  // latency constraint (§3.2)
      }
      for (net::LinkId l : path) {
        additional[l] += e.bandwidth;
        if (reserved_[static_cast<std::size_t>(l)] + additional[l] >
            input_.view.link_capacity(l)) {
          return false;
        }
      }
    }
    return true;
  }

  void place(app::ComponentId c, net::NodeId node) {
    const auto& comp = input_.app.component(c);
    cpu_free_[node] -= comp.cpu_milli;
    mem_free_[node] -= comp.memory_mb;
    placement_[c] = node;
    // Reserve bandwidth on the paths of the edges that just materialized.
    for (const app::Edge& e : input_.app.edges()) {
      if (e.from != c && e.to != c) continue;
      const app::ComponentId other = (e.from == c) ? e.to : e.from;
      if (other == c || !placed(other) || other == c) continue;
      const net::NodeId from_node = placement_.at(e.from);
      const net::NodeId to_node = placement_.at(e.to);
      if (from_node == to_node) continue;
      for (net::LinkId l : input_.view.path(from_node, to_node)) {
        reserved_[static_cast<std::size_t>(l)] += e.bandwidth;
      }
    }
  }

  // First-fit over the ranked nodes; kInvalidNode if nothing fits.
  net::NodeId first_fit(app::ComponentId c) const {
    for (net::NodeId n : input_.ranked_nodes) {
      if (can_place(c, n)) return n;
    }
    return net::kInvalidNode;
  }

 private:
  const PackInput& input_;
  Placement placement_;
  std::unordered_map<net::NodeId, std::int64_t> cpu_free_;
  std::unordered_map<net::NodeId, std::int64_t> mem_free_;
  std::vector<net::Bps> reserved_;
};

util::Error pack_failure(const app::AppGraph& app, app::ComponentId c) {
  return util::make_error(util::str_format(
      "no node can host component '%s' of app '%s' (cpu/mem/bandwidth exhausted)",
      app.component(c).name.c_str(), app.name().c_str()));
}

}  // namespace

util::Expected<Placement> sequential_pack(const PackInput& input,
                                          const std::vector<app::ComponentId>& order) {
  BASS_OBS_SCOPE("sched.sequential_pack_us");
  PackState state(input);
  state.place_pinned();
  std::size_t idx = 0;
  for (app::ComponentId c : order) {
    if (state.placed(c)) continue;  // pinned
    // Fill the current node; advance when it can no longer host.
    while (idx < input.ranked_nodes.size() && !state.can_place(c, input.ranked_nodes[idx])) {
      ++idx;
    }
    net::NodeId target =
        idx < input.ranked_nodes.size() ? input.ranked_nodes[idx] : net::kInvalidNode;
    if (target == net::kInvalidNode) {
      // Advance-only exhausted the node list; fall back to first-fit so
      // stranded capacity on earlier nodes can still be used.
      idx = input.ranked_nodes.size();  // stay exhausted for later components
      target = state.first_fit(c);
      if (target == net::kInvalidNode) return pack_failure(input.app, c);
    }
    state.place(c, target);
  }
  return state.placement();
}

util::Expected<Placement> path_pack(const PackInput& input,
                                    const std::vector<std::vector<app::ComponentId>>& paths) {
  BASS_OBS_SCOPE("sched.path_pack_us");
  PackState state(input);
  state.place_pinned();
  for (const auto& path : paths) {
    // Each path restarts from the top-ranked node and advances forward so
    // the chain stays on as few nodes as possible.
    std::size_t idx = 0;
    for (app::ComponentId c : path) {
      if (state.placed(c)) continue;  // pinned
      while (idx < input.ranked_nodes.size() && !state.can_place(c, input.ranked_nodes[idx])) {
        ++idx;
      }
      net::NodeId target =
          idx < input.ranked_nodes.size() ? input.ranked_nodes[idx] : net::kInvalidNode;
      if (target == net::kInvalidNode) {
        target = state.first_fit(c);
        if (target == net::kInvalidNode) return pack_failure(input.app, c);
      }
      state.place(c, target);
    }
  }
  return state.placement();
}

}  // namespace bass::sched
