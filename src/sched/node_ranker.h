// Node ranking for the BASS packer (§3.2.1): "rank nodes based on their
// CPU, memory, and combined capacity across all of the node's links".
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "sched/network_view.h"

namespace bass::sched {

// Schedulable nodes ordered best-first: most free CPU, then largest
// combined link capacity, then most free memory, then lowest id.
std::vector<net::NodeId> rank_nodes(const cluster::ClusterState& cluster,
                                    const NetworkView& view);

}  // namespace bass::sched
