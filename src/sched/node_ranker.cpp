#include "sched/node_ranker.h"

#include <algorithm>
#include <tuple>

namespace bass::sched {

std::vector<net::NodeId> rank_nodes(const cluster::ClusterState& cluster,
                                    const NetworkView& view) {
  std::vector<net::NodeId> nodes = cluster.schedulable_nodes();
  std::sort(nodes.begin(), nodes.end(), [&](net::NodeId a, net::NodeId b) {
    return std::make_tuple(-cluster.cpu_free(a), -view.node_link_capacity(a),
                           -cluster.memory_free(a), a) <
           std::make_tuple(-cluster.cpu_free(b), -view.node_link_capacity(b),
                           -cluster.memory_free(b), b);
  });
  return nodes;
}

}  // namespace bass::sched
