#include "sched/network_view.h"

#include <algorithm>

namespace bass::sched {

net::Bps NetworkView::path_capacity(net::NodeId src, net::NodeId dst) const {
  if (src == dst) return net::kUnlimitedRate;
  const auto& links = path(src, dst);
  if (links.empty()) return 0;  // unreachable
  net::Bps bottleneck = net::kUnlimitedRate;
  for (net::LinkId l : links) bottleneck = std::min(bottleneck, link_capacity(l));
  return bottleneck;
}

}  // namespace bass::sched
