#include "sched/heuristics.h"

#include <algorithm>
#include <limits>

namespace bass::sched {

namespace {

// Adjacency with edge weights, built once per call.
struct Adjacency {
  std::vector<std::vector<app::Edge>> out;
  explicit Adjacency(const app::AppGraph& app)
      : out(static_cast<std::size_t>(app.component_count())) {
    for (const app::Edge& e : app.edges()) out[static_cast<std::size_t>(e.from)].push_back(e);
  }
};

}  // namespace

std::vector<app::ComponentId> bfs_order(const app::AppGraph& app) {
  const auto topo = app.topo_order();
  if (topo.empty()) return {};
  const Adjacency adj(app);

  std::vector<bool> visited(static_cast<std::size_t>(app.component_count()), false);
  std::vector<app::ComponentId> order;
  order.reserve(topo.size());

  struct QueueEntry {
    app::ComponentId comp;
    net::Bps discover_weight;  // bandwidth of the edge that found it
  };

  // The outer loop restarts the BFS from the topologically first unvisited
  // vertex, covering multi-root and disconnected graphs.
  for (app::ComponentId root : topo) {
    if (visited[static_cast<std::size_t>(root)]) continue;
    std::vector<QueueEntry> queue{{root, std::numeric_limits<net::Bps>::max()}};
    visited[static_cast<std::size_t>(root)] = true;
    while (!queue.empty()) {
      // Frontier ordered by the discovering edge's bandwidth, heaviest
      // first; ties broken by component id for determinism.
      auto best = std::min_element(queue.begin(), queue.end(),
                                   [](const QueueEntry& a, const QueueEntry& b) {
                                     if (a.discover_weight != b.discover_weight) {
                                       return a.discover_weight > b.discover_weight;
                                     }
                                     return a.comp < b.comp;
                                   });
      const app::ComponentId current = best->comp;
      queue.erase(best);
      order.push_back(current);
      // Components are marked visited when enqueued (Algorithm 1 line 11),
      // so a vertex keeps the weight of the edge that discovered it first.
      for (const app::Edge& e : adj.out[static_cast<std::size_t>(current)]) {
        if (visited[static_cast<std::size_t>(e.to)]) continue;
        visited[static_cast<std::size_t>(e.to)] = true;
        queue.push_back({e.to, e.bandwidth});
      }
    }
  }
  return order;
}

std::vector<std::vector<app::ComponentId>> longest_path_paths(const app::AppGraph& app) {
  const auto topo = app.topo_order();
  if (topo.empty()) return {};
  const Adjacency adj(app);
  const std::size_t n = static_cast<std::size_t>(app.component_count());

  std::vector<bool> visited(n, false);
  std::vector<std::vector<app::ComponentId>> paths;
  std::size_t covered = 0;

  while (covered < n) {
    // Start from the topologically first unvisited vertex (Algorithm 2's
    // findUnvisitedVertex on the topo-sorted component list).
    app::ComponentId start = app::kInvalidComponent;
    for (app::ComponentId c : topo) {
      if (!visited[static_cast<std::size_t>(c)]) {
        start = c;
        break;
      }
    }

    // Heaviest path from `start` through unvisited vertices: longest-path
    // DP over the topological order (exact, and O(V+E) per round).
    constexpr double kUnreached = -1.0;
    std::vector<double> dist(n, kUnreached);
    std::vector<app::ComponentId> parent(n, app::kInvalidComponent);
    dist[static_cast<std::size_t>(start)] = 0.0;
    for (app::ComponentId u : topo) {
      if (visited[static_cast<std::size_t>(u)]) continue;
      if (dist[static_cast<std::size_t>(u)] == kUnreached) continue;
      for (const app::Edge& e : adj.out[static_cast<std::size_t>(u)]) {
        if (visited[static_cast<std::size_t>(e.to)]) continue;
        const double cand = dist[static_cast<std::size_t>(u)] + static_cast<double>(e.bandwidth);
        if (cand > dist[static_cast<std::size_t>(e.to)]) {
          dist[static_cast<std::size_t>(e.to)] = cand;
          parent[static_cast<std::size_t>(e.to)] = u;
        }
      }
    }

    app::ComponentId leaf = start;
    for (app::ComponentId c : topo) {
      if (visited[static_cast<std::size_t>(c)] || dist[static_cast<std::size_t>(c)] == kUnreached) {
        continue;
      }
      if (dist[static_cast<std::size_t>(c)] > dist[static_cast<std::size_t>(leaf)]) leaf = c;
    }

    std::vector<app::ComponentId> path;
    for (app::ComponentId v = leaf; v != app::kInvalidComponent; v = parent[static_cast<std::size_t>(v)]) {
      path.push_back(v);
    }
    std::reverse(path.begin(), path.end());
    for (app::ComponentId v : path) visited[static_cast<std::size_t>(v)] = true;
    covered += path.size();
    paths.push_back(std::move(path));
  }
  return paths;
}

std::vector<app::ComponentId> longest_path_order(const app::AppGraph& app) {
  std::vector<app::ComponentId> order;
  for (const auto& path : longest_path_paths(app)) {
    order.insert(order.end(), path.begin(), path.end());
  }
  return order;
}

}  // namespace bass::sched
