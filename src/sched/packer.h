// Greedy bin packing of an ordered component list onto ranked nodes, with
// CPU/memory as hard constraints and edge bandwidth reservations checked
// against link capacities along routed paths (§3.2.1).
//
// Two filling disciplines, matching the two heuristics' intent:
//  * sequential_pack — fill the current node until something doesn't fit,
//    then advance and never go back (BFS heuristic: producers and their
//    heaviest consumers cluster on the best node).
//  * path_pack — each heaviest path restarts from the best-ranked node so
//    whole chains co-locate; leftover short paths first-fit into remaining
//    gaps (longest-path heuristic).
// Both fall back to a first-fit scan before declaring failure, so a large
// mid-order component cannot strand free capacity.
#pragma once

#include "app/app_graph.h"
#include "cluster/cluster.h"
#include "sched/network_view.h"
#include "sched/placement.h"
#include "util/expected.h"

namespace bass::sched {

struct PackInput {
  const app::AppGraph& app;
  const cluster::ClusterState& cluster;
  const NetworkView& view;
  std::vector<net::NodeId> ranked_nodes;  // best first
};

util::Expected<Placement> sequential_pack(const PackInput& input,
                                          const std::vector<app::ComponentId>& order);

util::Expected<Placement> path_pack(const PackInput& input,
                                    const std::vector<std::vector<app::ComponentId>>& paths);

}  // namespace bass::sched
