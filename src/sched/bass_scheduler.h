// The BASS scheduler: pick an ordering heuristic, rank the nodes, pack.
#pragma once

#include <memory>
#include <string>

#include "app/app_graph.h"
#include "cluster/cluster.h"
#include "sched/network_view.h"
#include "sched/placement.h"
#include "util/expected.h"

namespace bass::sched {

// Common interface so the orchestrator and benches can swap schedulers.
class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual std::string name() const = 0;
  virtual util::Expected<Placement> schedule(const app::AppGraph& app,
                                             const cluster::ClusterState& cluster,
                                             const NetworkView& view) const = 0;
};

// kAuto implements the paper's §8 future-work idea of combining the two
// heuristics: it builds both placements and keeps the one that leaves less
// bandwidth crossing the mesh (the quantity both heuristics try to
// minimize), so a fan-out-shaped app gets the BFS packing and a pipeline
// gets the longest-path packing without the developer choosing.
enum class Heuristic { kBreadthFirst, kLongestPath, kAuto };

const char* heuristic_name(Heuristic h);

// Total profiled bandwidth on edges whose endpoints sit on different nodes
// — the scheduler's figure of merit for a placement.
net::Bps crossing_bandwidth(const app::AppGraph& app, const Placement& placement);

class BassScheduler final : public Scheduler {
 public:
  explicit BassScheduler(Heuristic heuristic) : heuristic_(heuristic) {}

  std::string name() const override;
  Heuristic heuristic() const { return heuristic_; }

  util::Expected<Placement> schedule(const app::AppGraph& app,
                                     const cluster::ClusterState& cluster,
                                     const NetworkView& view) const override;

 private:
  Heuristic heuristic_;
};

}  // namespace bass::sched
