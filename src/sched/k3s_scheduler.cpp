#include "sched/k3s_scheduler.h"

#include <unordered_map>

#include "obs/recorder.h"

#include "util/strings.h"

namespace bass::sched {

util::Expected<Placement> K3sScheduler::schedule(const app::AppGraph& app,
                                                 const cluster::ClusterState& cluster,
                                                 const NetworkView& view) const {
  BASS_OBS_SCOPE("sched.schedule_us");
  (void)view;  // bandwidth-oblivious by design
  std::string error;
  if (!app.validate(&error)) return util::make_error(error);

  std::unordered_map<net::NodeId, std::int64_t> cpu_free;
  std::unordered_map<net::NodeId, std::int64_t> mem_free;
  for (net::NodeId n : cluster.schedulable_nodes()) {
    cpu_free[n] = cluster.cpu_free(n);
    mem_free[n] = cluster.memory_free(n);
  }
  if (cpu_free.empty()) return util::make_error("no schedulable nodes");

  Placement placement;
  // Pods arrive at the scheduler one at a time, in submission (id) order.
  for (app::ComponentId c = 0; c < app.component_count(); ++c) {
    const auto& comp = app.component(c);
    if (comp.pinned_node) {
      placement[c] = *comp.pinned_node;
      continue;
    }
    net::NodeId best = net::kInvalidNode;
    double best_score = -1.0;
    for (net::NodeId n : cluster.schedulable_nodes()) {
      if (cpu_free[n] < comp.cpu_milli || mem_free[n] < comp.memory_mb) continue;
      // Average free fraction after placing the pod; LeastAllocated prefers
      // the emptiest node, MostAllocated the fullest that still fits.
      const auto& spec = cluster.spec(n);
      const double cpu_frac =
          spec.cpu_milli == 0
              ? 0.0
              : static_cast<double>(cpu_free[n] - comp.cpu_milli) /
                    static_cast<double>(spec.cpu_milli);
      const double mem_frac =
          spec.memory_mb == 0
              ? 0.0
              : static_cast<double>(mem_free[n] - comp.memory_mb) /
                    static_cast<double>(spec.memory_mb);
      double score = (cpu_frac + mem_frac) / 2.0;
      if (scoring_ == K3sScoring::kMostAllocated) score = 1.0 - score;
      if (score > best_score) {
        best_score = score;
        best = n;
      }
    }
    if (best == net::kInvalidNode) {
      return util::make_error(util::str_format(
          "k3s: no node fits component '%s'", comp.name.c_str()));
    }
    cpu_free[best] -= comp.cpu_milli;
    mem_free[best] -= comp.memory_mb;
    placement[c] = best;
  }
  return placement;
}

}  // namespace bass::sched
