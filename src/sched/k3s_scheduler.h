// Bandwidth-oblivious baselines modelling k3s/Kubernetes: pods are placed
// one at a time (the paper's §5 notes vanilla Kubernetes cannot see
// inter-pod requirements), scored by a NodeResourcesFit strategy. Link
// capacities never enter the decision — by design, since that is the gap
// BASS fills.
//
//  * kLeastAllocated (the default policy, what the paper compares against)
//    spreads pods across the emptiest nodes;
//  * kMostAllocated (kube's bin-packing strategy) piles pods onto the
//    fullest node that still fits. It co-locates heavily *by accident* —
//    comparing it against BASS separates "BASS wins because it packs
//    tightly" from "BASS wins because it packs the right components
//    together" (see bench_ablation_heuristic).
#pragma once

#include "sched/bass_scheduler.h"

namespace bass::sched {

enum class K3sScoring { kLeastAllocated, kMostAllocated };

class K3sScheduler final : public Scheduler {
 public:
  explicit K3sScheduler(K3sScoring scoring = K3sScoring::kLeastAllocated)
      : scoring_(scoring) {}

  std::string name() const override {
    return scoring_ == K3sScoring::kLeastAllocated ? "k3s-default"
                                                   : "k3s-most-allocated";
  }

  util::Expected<Placement> schedule(const app::AppGraph& app,
                                     const cluster::ClusterState& cluster,
                                     const NetworkView& view) const override;

 private:
  K3sScoring scoring_;
};

}  // namespace bass::sched
