// The scheduler's window onto the mesh. BASS schedules against *measured*
// link capacities (the net-monitor's probe cache), while tests and oracle
// experiments can schedule against the live simulator truth; both sides of
// that choice implement this interface.
#pragma once

#include <vector>

#include "net/network.h"
#include "net/types.h"

namespace bass::sched {

class NetworkView {
 public:
  virtual ~NetworkView() = default;

  virtual int link_count() const = 0;
  virtual net::Bps link_capacity(net::LinkId link) const = 0;
  // Directed links traversed from src to dst (empty when src == dst).
  virtual const std::vector<net::LinkId>& path(net::NodeId src, net::NodeId dst) const = 0;
  // Combined outgoing link capacity of a node (for node ranking).
  virtual net::Bps node_link_capacity(net::NodeId node) const = 0;

  // One-way propagation latency of the routed path (0 when colocated) —
  // the packer checks edge latency requirements against it (§3.2 lists
  // latency among the placement constraints).
  virtual sim::Duration path_latency(net::NodeId src, net::NodeId dst) const = 0;

  // Bottleneck capacity along the path (derived).
  net::Bps path_capacity(net::NodeId src, net::NodeId dst) const;
};

// Ground-truth view straight off the live simulated network.
class LiveNetworkView final : public NetworkView {
 public:
  explicit LiveNetworkView(const net::Network& network) : network_(&network) {}

  int link_count() const override { return network_->topology().link_count(); }
  net::Bps link_capacity(net::LinkId link) const override {
    return network_->topology().link(link).capacity;
  }
  const std::vector<net::LinkId>& path(net::NodeId src, net::NodeId dst) const override {
    return network_->routing().path(src, dst);
  }
  net::Bps node_link_capacity(net::NodeId node) const override {
    return network_->topology().total_out_capacity(node);
  }
  sim::Duration path_latency(net::NodeId src, net::NodeId dst) const override {
    return network_->path_latency(src, dst);
  }

 private:
  const net::Network* network_;
};

}  // namespace bass::sched
