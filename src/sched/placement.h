// A placement maps every component of an application to a mesh node.
#pragma once

#include <unordered_map>

#include "app/app_graph.h"
#include "net/types.h"

namespace bass::sched {

using Placement = std::unordered_map<app::ComponentId, net::NodeId>;

// Convenience lookup with an explicit miss value.
inline net::NodeId node_of(const Placement& p, app::ComponentId c) {
  const auto it = p.find(c);
  return it == p.end() ? net::kInvalidNode : it->second;
}

}  // namespace bass::sched
