#include "sched/rescheduler.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "sched/node_ranker.h"

namespace bass::sched {

namespace {

// Residual link capacity check: can the component's edges be carried if it
// moves to `target`, given the bandwidth already implied by the rest of the
// deployment?
bool bandwidth_feasible(const app::AppGraph& app, const Placement& placement,
                        app::ComponentId component, net::NodeId target,
                        const NetworkView& view) {
  std::vector<net::Bps> reserved(static_cast<std::size_t>(view.link_count()), 0);
  // Reserve for all edges not touching the migrating component, at their
  // current nodes.
  for (const app::Edge& e : app.edges()) {
    if (e.from == component || e.to == component) continue;
    const net::NodeId a = node_of(placement, e.from);
    const net::NodeId b = node_of(placement, e.to);
    if (a == net::kInvalidNode || b == net::kInvalidNode || a == b) continue;
    for (net::LinkId l : view.path(a, b)) reserved[static_cast<std::size_t>(l)] += e.bandwidth;
  }
  // Now add the component's own edges from `target` and check capacity.
  for (const app::Edge& e : app.edges()) {
    if (e.from != component && e.to != component) continue;
    const app::ComponentId other = (e.from == component) ? e.to : e.from;
    const net::NodeId other_node = node_of(placement, other);
    if (other_node == net::kInvalidNode || other_node == target) continue;
    const net::NodeId from_node = (e.from == component) ? target : other_node;
    const net::NodeId to_node = (e.from == component) ? other_node : target;
    const auto& path = view.path(from_node, to_node);
    if (path.empty()) return false;
    if (e.max_latency > 0 && view.path_latency(from_node, to_node) > e.max_latency) {
      return false;
    }
    for (net::LinkId l : path) {
      reserved[static_cast<std::size_t>(l)] += e.bandwidth;
      if (reserved[static_cast<std::size_t>(l)] > view.link_capacity(l)) return false;
    }
  }
  return true;
}

}  // namespace

std::optional<net::NodeId> pick_migration_target(const app::AppGraph& app,
                                                 const Placement& placement,
                                                 app::ComponentId component,
                                                 const cluster::ClusterState& cluster,
                                                 const NetworkView& view) {
  const net::NodeId current = node_of(placement, component);
  const auto& comp = app.component(component);
  if (comp.pinned_node) return std::nullopt;  // attachment points never move

  // Count deployed dependencies (in either direction) per node.
  std::unordered_map<net::NodeId, int> dep_count;
  for (const app::Edge& e : app.edges()) {
    app::ComponentId other = app::kInvalidComponent;
    if (e.from == component) other = e.to;
    if (e.to == component) other = e.from;
    if (other == app::kInvalidComponent) continue;
    const net::NodeId n = node_of(placement, other);
    if (n != net::kInvalidNode) ++dep_count[n];
  }

  // Candidates ordered: most co-deployed dependencies first, then the
  // generic node ranking; the current node is excluded (a migration must
  // actually move the component).
  std::vector<net::NodeId> ranked = rank_nodes(cluster, view);
  std::stable_sort(ranked.begin(), ranked.end(), [&](net::NodeId a, net::NodeId b) {
    const int da = dep_count.count(a) ? dep_count.at(a) : 0;
    const int db = dep_count.count(b) ? dep_count.at(b) : 0;
    return da > db;
  });

  for (net::NodeId n : ranked) {
    if (n == current) continue;
    if (!cluster.can_fit(n, comp.cpu_milli, comp.memory_mb)) continue;
    if (!bandwidth_feasible(app, placement, component, n, view)) continue;
    return n;
  }

  // Best effort: when the mesh is so degraded that no target satisfies
  // every bandwidth constraint, still move. Preferring a dependency's node
  // co-locates a communicating pair and *removes* its traffic from the
  // mesh; failing that, any node with spare compute gets the component off
  // its starved links (the ranked order already favours well-connected
  // nodes). `ranked` is dependency-count-major, so both preferences are
  // one pass.
  for (net::NodeId n : ranked) {
    if (n == current) continue;
    if (!cluster.can_fit(n, comp.cpu_milli, comp.memory_mb)) continue;
    return n;
  }
  return std::nullopt;
}

}  // namespace bass::sched
