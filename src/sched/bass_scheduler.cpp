#include "sched/bass_scheduler.h"

#include "obs/recorder.h"
#include "sched/heuristics.h"
#include "sched/node_ranker.h"
#include "sched/packer.h"

namespace bass::sched {

const char* heuristic_name(Heuristic h) {
  switch (h) {
    case Heuristic::kBreadthFirst: return "bfs";
    case Heuristic::kLongestPath: return "longest-path";
    case Heuristic::kAuto: return "auto";
  }
  return "?";
}

net::Bps crossing_bandwidth(const app::AppGraph& app, const Placement& placement) {
  net::Bps total = 0;
  for (const app::Edge& e : app.edges()) {
    if (node_of(placement, e.from) != node_of(placement, e.to)) total += e.bandwidth;
  }
  return total;
}

std::string BassScheduler::name() const {
  return std::string("bass-") + heuristic_name(heuristic_);
}

util::Expected<Placement> BassScheduler::schedule(const app::AppGraph& app,
                                                  const cluster::ClusterState& cluster,
                                                  const NetworkView& view) const {
  BASS_OBS_SCOPE("sched.schedule_us");
  std::string error;
  if (!app.validate(&error)) return util::make_error(error);

  PackInput input{app, cluster, view, rank_nodes(cluster, view)};
  if (input.ranked_nodes.empty()) return util::make_error("no schedulable nodes");

  if (heuristic_ == Heuristic::kBreadthFirst) {
    return sequential_pack(input, bfs_order(app));
  }
  if (heuristic_ == Heuristic::kLongestPath) {
    return path_pack(input, longest_path_paths(app));
  }

  // kAuto: evaluate both and keep the placement with less mesh-crossing
  // bandwidth. Ties (including "both failed") resolve to BFS.
  auto bfs = sequential_pack(input, bfs_order(app));
  auto lp = path_pack(input, longest_path_paths(app));
  if (!bfs.ok()) return lp;
  if (!lp.ok()) return bfs;
  return crossing_bandwidth(app, lp.value()) < crossing_bandwidth(app, bfs.value())
             ? std::move(lp)
             : std::move(bfs);
}

}  // namespace bass::sched
