// Migration target selection (§3.2.2): "identify candidate nodes where the
// component already has dependencies deployed; re-deploy on the node which
// ranks highest in the number of existing deployed dependencies, with
// sufficient CPU, memory, and bandwidth" — minimizing inter-node transfer.
#pragma once

#include <optional>

#include "app/app_graph.h"
#include "cluster/cluster.h"
#include "sched/network_view.h"
#include "sched/placement.h"

namespace bass::sched {

// Picks the node the migrating component should move to, or nullopt when no
// node (other than its current one) can satisfy its demands. `placement` is
// the current deployment; `cluster` still accounts the component at its old
// node (its resources there are freed by the caller after the move).
std::optional<net::NodeId> pick_migration_target(const app::AppGraph& app,
                                                 const Placement& placement,
                                                 app::ComponentId component,
                                                 const cluster::ClusterState& cluster,
                                                 const NetworkView& view);

}  // namespace bass::sched
