// Scenario files: a declarative way to stand up a mesh, an application,
// and a workload without writing C++ — what a community-network operator
// actually edits. The INI schema (see examples/scenarios/*.ini):
//
//   [node alpha]            cpu = 4000        memory_mb = 4096
//                           schedulable = true
//   [link alpha beta]       capacity_mbps = 20
//   [trace alpha beta]      mean_mbps = 12    stddev_frac = 0.2
//                           fades = true      fade_probability = 0.002
//                           fade_depth = 0.25 seed = 7
//   [component producer]    cpu = 3000        memory_mb = 512
//                           service_time_ms = 1   concurrency = 4
//                           pinned = alpha    state_mb = 0
//   [edge producer consumer] bandwidth_mbps = 8  request_bytes = 4000
//                           response_bytes = 8000 probability = 1.0
//                           max_latency_ms = 0
//   [scheduler]             kind = auto       # bfs | longest-path | auto | k3s
//   [monitor]               enabled = true    probe_interval_s = 30
//                           headroom_frac = 0.1
//   [migration]             enabled = true    threshold = 0.5
//                           headroom = 0.2    interval_s = 30
//                           cooldown_s = 30   min_gap_s = 90
//   [profiler]              enabled = false   sample_interval_s = 10
//   [obs]                   enabled = true    journal_capacity = 65536
//   [workload]              type = requests   rps = 50
//                           arrival = constant|exponential
//                           client = alpha    max_in_flight = 0   seed = 1
//   [run]                   duration_s = 600  dot = placement.dot
//
// Generated topologies replace the explicit [node]/[link] sections (it is
// an error to give both) — node names and specs come from the generator:
//
//   [topology]              kind = city_grid  blocks_x = 8  blocks_y = 8
//                           nodes_per_block = 4  gateway_every = 8
//                           intra_mbps = 100  street_mbps = 50
//                           backbone_mbps = 200
//                           cpu = 4000        memory_mb = 4096
//
// Sharded orchestration ([zones], consumed by zone::ShardedOrchestrator via
// `bassctl serve --jobs N`; plain Scenario::from_ini ignores it, so the same
// file also runs unsharded):
//
//   [zones]                 count = 4         method = bfs  # bfs | chunks
//                           round_interval_s = 10
//                           transit_per_border = 1  transit_mbps = 2
//                           max_reconcile_iterations = 4
//
// Serving scenarios ([serve] present) replace the one-shot app + workload
// with the bassd control-plane loop: no [component]/[edge] sections; apps
// arrive and depart continuously per the churn schedule (DESIGN.md §10):
//
//   [serve]                 mode = adaptive   # static | adaptive | dynamic
//                           seed = 1          arrival_per_min = 2
//                           mean_lifetime_s = 300 resource_scale = 0.25
//                           diurnal_amplitude = 0 diurnal_period_s = 1440
//                           policy = fifo     # fifo | reject | defer
//                           retry_s = 30      max_retries = 5
//                           camera_weight = 1 conference_weight = 1
//                           social_weight = 1 rebalance_interval_s = 120
//                           rebalance_max_moves = 1
//                           rebalance_cpu_threshold = 0.85
//
// Fault injection (all sections optional; see src/fault/ and DESIGN.md):
//
//   [fault node_crash alpha]   at_s = 120  detection_delay_s = 10
//                              duration_s = 60   # auto node_recover
//   [fault node_recover alpha] at_s = 180
//   [fault link_down alpha beta] at_s = 60  duration_s = 30  # auto link_up
//   [fault link_up alpha beta]   at_s = 90
//   [fault link_flap alpha beta] start_s = 0  end_s = 300
//                              period_s = 60  duty = 0.25
//   [fault partition alpha beta] at_s = 100  duration_s = 50  # cut-set
//   [fault probe_loss]         at_s = 0  rate = 0.2  seed = 7
//   [chaos]                 seed = 1          crash_mtbf_s = 300
//                           mttr_s = 120      crash_detection_s = 10
//                           flap_mtbf_s = 120 flap_down_s = 30
//                           probe_loss = 0.0  horizon_s = 0  # 0 = duration
//   [invariants]            enabled = true    # continuous safety checker
//
// Conference scenarios replace [component]/[edge] with client groups — the
// SFU app is built automatically:
//
//   [workload]              type = conference  per_stream_kbps = 250
//                           single_publisher = false
//   [clients alpha]         count = 3
//   [clients beta]          count = 3
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "app/app_graph.h"
#include "core/orchestrator.h"
#include "fault/injector.h"
#include "fault/invariants.h"
#include "obs/flight.h"
#include "obs/recorder.h"
#include "profiler/online_profiler.h"
#include "scenario/serving.h"
#include "trace/player.h"
#include "util/expected.h"
#include "util/ini.h"
#include "workload/request_engine.h"
#include "workload/video_conference.h"

namespace bass::scenario {

struct RunReport {
  // Request workloads:
  std::int64_t requests_issued = 0;
  std::int64_t requests_completed = 0;
  std::int64_t requests_shed = 0;
  double latency_mean_ms = 0;
  double latency_median_ms = 0;
  double latency_p99_ms = 0;
  // Conference workloads: median per-client bitrate per group node.
  std::map<net::NodeId, double> median_bitrate_bps;
  // Always:
  std::size_t migrations = 0;
  std::int64_t probe_bytes = 0;
  // Fault subsystem (0 when no faults / checker configured):
  int faults_injected = 0;
  int invariant_violations = 0;
  // Serving scenarios ([serve] section): churn + admission accounting.
  bool served = false;
  std::int64_t serve_arrivals = 0;
  std::int64_t serve_departures = 0;
  std::int64_t serve_admitted = 0;
  std::int64_t serve_rejected = 0;
  std::int64_t serve_deferred = 0;
  std::int64_t serve_cancelled = 0;
  int serve_peak_queue_depth = 0;
  int serve_live_at_end = 0;
  std::int64_t serve_rebalance_moves = 0;
};

// Immutable, pre-parsed scenario inputs that many runs share read-only
// (via shared_ptr from exec::SweepArtifacts): a sweep preloads the trace
// CSVs, the seeded generated traces, and the validated application graph
// exactly once instead of re-parsing them for every seed. Passing assets
// built from a *different* scenario is safe — from_ini() only consumes an
// entry when it matches what the ini asks for (file path, generated-trace
// parameters, app fingerprint) and falls back to parsing otherwise.
struct ScenarioAssets {
  // [trace ...] file= CSVs, keyed by the path string in the ini.
  std::map<std::string, std::shared_ptr<const trace::BandwidthTrace>> file_traces;
  // Seeded synthetic traces, keyed by generation parameters + duration.
  std::map<std::string, std::shared_ptr<const trace::BandwidthTrace>> generated_traces;
  // The validated app graph (and its conference wiring), reused only when
  // the run's ini has the same app fingerprint.
  std::shared_ptr<const app::AppGraph> app;
  std::vector<std::pair<net::NodeId, int>> conference_groups;
  bool is_conference = false;
  std::string fingerprint;

  static util::Expected<std::shared_ptr<const ScenarioAssets>> preload(
      const util::IniFile& ini);
};

// Serializes the sections that determine the application graph and the
// node-id assignment ([node] order, [component]/[edge]/[clients], the
// app-shaping [workload] keys). Two inis with equal fingerprints build
// identical graphs, so assets built from one can serve the other.
std::string app_fingerprint(const util::IniFile& ini);

// The mesh substrate a scenario runs on, parsed once so Scenario::from_ini
// and zone::ShardedOrchestrator build identical worlds from the same file.
struct TopologySpec {
  net::Topology topology;
  std::vector<cluster::NodeSpec> specs;  // indexed by NodeId
  std::map<std::string, net::NodeId> nodes_by_name;
  // True for [topology]-generated meshes: the generator guarantees
  // connectivity, so callers skip the O(n^2) all-pairs reachability check
  // that would dominate city-scale construction.
  bool generated = false;
};

// Builds the mesh from [node]/[link] sections or a [topology] generator
// section (exactly one of the two must be present).
util::Expected<TopologySpec> build_topology(const util::IniFile& ini);

// ---- Shared ini parsers ----
// Exported so the sharded orchestrator configures per-zone worlds with the
// exact semantics (defaults included) of the unsharded scenario path.
core::SchedulerKind parse_scheduler_kind(const std::string& kind);
sim::Duration parse_run_duration(const util::IniFile& ini);
controller::MigrationParams parse_migration_params(const util::IniSection& mig);
// Requires a [serve] section to be present.
util::Expected<ServeConfig> parse_serve_config(const util::IniFile& ini,
                                               sim::Duration duration);

class Scenario {
 public:
  // Builds a fully wired world from a parsed scenario. The returned object
  // owns the simulation and every subsystem. `assets` (optional) supplies
  // pre-parsed shared artifacts; everything it does not cover is parsed
  // from the ini as usual.
  static util::Expected<std::unique_ptr<Scenario>> from_ini(
      const util::IniFile& ini, const ScenarioAssets* assets = nullptr);
  static util::Expected<std::unique_ptr<Scenario>> from_file(const std::string& path);

  // Runs the configured duration and returns the report. Callable once.
  RunReport run();

  // ---- Introspection (valid after construction) ----
  core::Orchestrator& orchestrator() { return *orch_; }
  net::Network& network() { return *network_; }
  // The run's observability recorder: every subsystem (network, monitor,
  // orchestrator) emits through it from construction onward, so the journal
  // covers initial probing and the deploy decision, not just run(). Export
  // with recorder().journal().write_jsonl(...) / write_trace(...) and
  // recorder().metrics().write_json(...) — bassctl run does exactly that.
  obs::Recorder& recorder() { return *recorder_; }
  // Invalid in serving scenarios, which have no single one-shot app: check
  // deployment() != core::kInvalidDeployment (or serving() != nullptr).
  const app::AppGraph& app() const { return orch_->app(deployment_); }
  core::DeploymentId deployment() const { return deployment_; }
  // Null unless the ini has a [serve] section.
  ServingLoop* serving() { return serving_.get(); }
  net::NodeId node_id(const std::string& name) const;
  std::string node_name(net::NodeId id) const;
  // Null unless the scenario configured faults / the checker (the checker
  // is on by default; [invariants] enabled = false disables it).
  fault::Injector* injector() { return injector_.get(); }
  fault::Invariants* invariants() { return invariants_.get(); }
  // Null unless [obs] flight = true; dumps on the first invariant
  // violation automatically, or on demand via dump().
  obs::FlightRecorder* flight() { return flight_.get(); }
  sim::Duration duration() const { return duration_; }
  sim::Time now() const { return sim_.now(); }
  const std::string& dot_path() const { return dot_path_; }

 private:
  Scenario() = default;

  sim::Simulation sim_;
  std::unique_ptr<obs::Recorder> recorder_;
  std::unique_ptr<net::Network> network_;
  cluster::ClusterState cluster_;
  std::unique_ptr<monitor::NetMonitor> monitor_;
  std::unique_ptr<core::Orchestrator> orch_;
  std::unique_ptr<trace::TracePlayer> player_;
  std::unique_ptr<fault::Injector> injector_;
  std::unique_ptr<fault::Invariants> invariants_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<profiler::OnlineProfiler> profiler_;
  std::unique_ptr<workload::RequestEngine> requests_;
  std::unique_ptr<workload::VideoConferenceEngine> conference_;
  std::unique_ptr<ServingLoop> serving_;
  core::DeploymentId deployment_ = core::kInvalidDeployment;
  std::map<std::string, net::NodeId> nodes_by_name_;
  sim::Duration duration_ = sim::minutes(10);
  std::string dot_path_;
  bool ran_ = false;
};

}  // namespace bass::scenario
