// The bassd serving loop (DESIGN.md §10): the reusable long-running control
// plane that a scenario's one-shot setup hands off to. Where Scenario::run()
// deploys one app and drives it for a fixed window, the serving loop keeps
// the orchestrator busy indefinitely — app instances arrive from a seeded
// open-loop churn schedule, pass through the admission queue, live under
// the configured operating mode, and depart through first-class undeploy:
//
//   * static   — placement happens once at admission; no controller, no
//                migrations (the k3s-style baseline).
//   * adaptive — each admitted deployment runs the per-deployment bandwidth
//                controller (Algorithm 3); placements chase link vagaries.
//   * dynamic  — adaptive plus a periodic global rebalance tick that moves
//                one component off the hottest node when its CPU allocation
//                crosses a threshold (the orchestrator-initiated
//                "resource orchestration" the paper sketches in §7).
//
// Everything is sim-clock and seed-driven: the same ServeConfig replays to
// byte-identical journals.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "core/admission.h"
#include "workload/churn.h"

namespace bass::monitor {
class NetMonitor;
}

namespace bass::scenario {

enum class ServeMode { kStatic, kAdaptive, kDynamic };

const char* serve_mode_name(ServeMode mode);
// Accepts "static", "adaptive", "dynamic"; error otherwise.
util::Expected<ServeMode> parse_serve_mode(const std::string& name);

struct ServeConfig {
  workload::ChurnConfig churn;
  ServeMode mode = ServeMode::kAdaptive;
  core::AdmissionConfig admission;
  core::SchedulerKind scheduler = core::SchedulerKind::kBassAuto;
  // Controller parameters for admitted deployments (adaptive & dynamic).
  controller::MigrationParams migration;
  // Dynamic mode: global rebalance cadence, per-tick move budget, and the
  // CPU allocation fraction above which a node sheds work.
  sim::Duration rebalance_interval = sim::minutes(2);
  int rebalance_max_moves = 1;
  double rebalance_cpu_threshold = 0.85;
};

struct ServeStats {
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t departed_live = 0;    // departures that undeployed a live instance
  std::int64_t departed_queued = 0;  // departures cancelled while still queued
  std::int64_t rebalance_moves = 0;  // dynamic mode only
  int live_at_end = 0;               // instances that outlived the run
};

class ServingLoop {
 public:
  // `monitor` is optional; when present the dynamic rebalance tick reasons
  // about measured capacities (like the scheduler), else simulator truth.
  ServingLoop(core::Orchestrator& orchestrator, ServeConfig config,
              monitor::NetMonitor* monitor = nullptr);
  ~ServingLoop();
  ServingLoop(const ServingLoop&) = delete;
  ServingLoop& operator=(const ServingLoop&) = delete;

  void set_recorder(obs::Recorder* recorder);

  // Builds the churn schedule from the config and arms every event relative
  // to the simulation's current time. Call once, then run the simulation.
  void start();
  // Stops traffic engines and the rebalance timer. Live deployments stay
  // deployed (they are the live_at_end population); pending arrivals that
  // never fired simply don't.
  void stop();

  const ServeStats& stats() const { return stats_; }
  const core::AdmissionStats& admission_stats() const { return admission_.stats(); }
  int queue_depth() const { return admission_.depth(); }
  int live_count() const { return static_cast<int>(live_.size()); }
  const std::vector<workload::ChurnEvent>& schedule() const { return schedule_; }

  // True when a churn event (arrival or departure) is armed strictly after
  // the simulation's current time and at or before `until`. The activity
  // probe for gated sharded rounds: events at or before now have already
  // fired, so this is exactly "would the schedule do anything this window".
  bool churn_due(sim::Time until) const;

 private:
  struct Live {
    core::DeploymentId deployment = core::kInvalidDeployment;
    std::unique_ptr<workload::ChurnTrafficEngine> engine;
  };

  void arrive(const workload::ChurnEvent& event);
  void depart(const workload::ChurnEvent& event);
  void on_admitted(int instance, core::DeploymentId deployment);
  void rebalance();

  core::Orchestrator* orch_;
  ServeConfig config_;
  monitor::NetMonitor* monitor_;
  core::AdmissionQueue admission_;
  obs::Recorder* recorder_ = nullptr;
  std::vector<workload::ChurnEvent> schedule_;
  sim::Time t0_ = 0;  // sim time the schedule was armed against
  // Keyed by churn instance id; std::map keeps iteration deterministic for
  // the rebalance sweep.
  std::map<int, Live> live_;
  ServeStats stats_;
  sim::EventId rebalance_timer_ = sim::kInvalidEvent;
  bool running_ = false;
};

}  // namespace bass::scenario
