#include "scenario/serving.h"

#include <algorithm>

#include "monitor/net_monitor.h"
#include "sched/network_view.h"
#include "sched/rescheduler.h"
#include "util/logging.h"

namespace bass::scenario {

const char* serve_mode_name(ServeMode mode) {
  switch (mode) {
    case ServeMode::kStatic: return "static";
    case ServeMode::kAdaptive: return "adaptive";
    case ServeMode::kDynamic: return "dynamic";
  }
  return "?";
}

util::Expected<ServeMode> parse_serve_mode(const std::string& name) {
  if (name == "static") return ServeMode::kStatic;
  if (name == "adaptive") return ServeMode::kAdaptive;
  if (name == "dynamic") return ServeMode::kDynamic;
  return util::make_error("unknown serve mode '" + name +
                          "' (expected static | adaptive | dynamic)");
}

ServingLoop::ServingLoop(core::Orchestrator& orchestrator, ServeConfig config,
                         monitor::NetMonitor* monitor)
    : orch_(&orchestrator),
      config_(config),
      monitor_(monitor),
      admission_(orchestrator.simulation(), orchestrator, config.admission) {}

ServingLoop::~ServingLoop() { stop(); }

void ServingLoop::set_recorder(obs::Recorder* recorder) {
  recorder_ = recorder;
  admission_.set_recorder(recorder);
}

void ServingLoop::start() {
  if (running_) return;
  running_ = true;
  schedule_ = workload::build_churn_schedule(config_.churn);
  t0_ = orch_->simulation().now();
  const sim::Time t0 = t0_;
  for (std::size_t i = 0; i < schedule_.size(); ++i) {
    // Index capture: schedule_ never changes after this loop.
    orch_->simulation().schedule_at(t0 + schedule_[i].at, [this, i] {
      const workload::ChurnEvent& event = schedule_[i];
      if (event.depart) {
        depart(event);
      } else {
        arrive(event);
      }
    });
  }
  if (config_.mode == ServeMode::kDynamic) {
    rebalance_timer_ = orch_->simulation().schedule_periodic(
        config_.rebalance_interval, [this] { rebalance(); });
  }
}

void ServingLoop::stop() {
  if (!running_) return;
  running_ = false;
  stats_.live_at_end = static_cast<int>(live_.size());
  for (auto& [instance, live] : live_) {
    if (live.engine) live.engine->stop();
  }
  if (rebalance_timer_ != sim::kInvalidEvent) {
    orch_->simulation().cancel_periodic(rebalance_timer_);
    rebalance_timer_ = sim::kInvalidEvent;
  }
}

bool ServingLoop::churn_due(sim::Time until) const {
  if (!running_ || schedule_.empty()) return false;
  const sim::Time now = orch_->simulation().now();
  // schedule_ is ordered by `at`; find the first event strictly after now.
  const auto it = std::upper_bound(
      schedule_.begin(), schedule_.end(), now - t0_,
      [](sim::Duration t, const workload::ChurnEvent& e) { return t < e.at; });
  return it != schedule_.end() && t0_ + it->at <= until;
}

void ServingLoop::arrive(const workload::ChurnEvent& event) {
  ++stats_.arrivals;
  std::vector<net::NodeId> nodes = orch_->cluster().schedulable_nodes();
  if (nodes.empty()) nodes = orch_->cluster().nodes();
  app::AppGraph app =
      workload::make_churn_app(event.family, event.instance,
                               config_.churn.resource_scale, config_.churn.seed, nodes);
  std::string name = app.name();
  admission_.submit(event.instance, std::move(name), std::move(app),
                    config_.scheduler,
                    [this](int instance, core::DeploymentId deployment, bool admitted) {
                      if (admitted) on_admitted(instance, deployment);
                    });
}

void ServingLoop::on_admitted(int instance, core::DeploymentId deployment) {
  Live live;
  live.deployment = deployment;
  live.engine = std::make_unique<workload::ChurnTrafficEngine>(*orch_, deployment);
  live.engine->start();
  if (config_.mode != ServeMode::kStatic) {
    orch_->enable_migration(deployment, config_.migration);
  }
  live_.emplace(instance, std::move(live));
}

void ServingLoop::depart(const workload::ChurnEvent& event) {
  ++stats_.departures;
  const auto it = live_.find(event.instance);
  if (it != live_.end()) {
    ++stats_.departed_live;
    // Stop the traffic source before teardown so no sampler fires against a
    // closing deployment; undeploy then releases resources and journals.
    it->second.engine->stop();
    orch_->undeploy(it->second.deployment);
    live_.erase(it);
    // Freed capacity: give waiting requests their shot immediately instead
    // of waiting out the retry interval.
    admission_.kick();
    return;
  }
  // Never admitted: either still queued (cancel it) or already rejected
  // (nothing to tear down — the admission journal has its story).
  if (admission_.cancel(event.instance)) ++stats_.departed_queued;
}

void ServingLoop::rebalance() {
  if (!running_) return;
  // Find the hottest schedulable node by CPU allocation fraction.
  net::NodeId hot = net::kInvalidNode;
  double hot_frac = config_.rebalance_cpu_threshold;
  for (const net::NodeId node : orch_->cluster().schedulable_nodes()) {
    const auto& spec = orch_->cluster().spec(node);
    if (spec.cpu_milli <= 0) continue;
    const double frac = static_cast<double>(orch_->cluster().usage(node).cpu_milli) /
                        static_cast<double>(spec.cpu_milli);
    if (frac > hot_frac) {
      hot_frac = frac;
      hot = node;
    }
  }
  if (hot == net::kInvalidNode) return;

  // Shed up to the per-tick budget off that node. The rescheduler picks the
  // destination with the same dependency-aware ranking the controller uses.
  std::unique_ptr<sched::NetworkView> view;
  if (monitor_ != nullptr) {
    view = std::make_unique<monitor::MonitorNetworkView>(*monitor_);
  } else {
    view = std::make_unique<sched::LiveNetworkView>(orch_->network());
  }
  int budget = std::max(config_.rebalance_max_moves, 1);
  for (const auto& [instance, live] : live_) {
    if (budget == 0) break;
    const core::DeploymentId id = live.deployment;
    if (!orch_->deployment_active(id)) continue;
    const app::AppGraph& app = orch_->app(id);
    for (app::ComponentId c = 0; c < app.component_count() && budget > 0; ++c) {
      if (orch_->node_of(id, c) != hot) continue;
      if (!orch_->is_up(id, c)) continue;
      if (app.component(c).pinned_node) continue;
      const auto target = sched::pick_migration_target(app, orch_->placement(id), c,
                                                       orch_->cluster(), *view);
      if (!target || *target == hot) continue;
      if (orch_->migrate(id, c, *target)) {
        ++stats_.rebalance_moves;
        --budget;
      }
    }
  }
}

}  // namespace bass::scenario
