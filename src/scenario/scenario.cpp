#include "scenario/scenario.h"

#include "app/catalog.h"
#include "trace/generator.h"
#include "util/strings.h"

namespace bass::scenario {

namespace {

util::Error err(const std::string& message) { return util::make_error(message); }

core::SchedulerKind parse_scheduler(const std::string& kind) {
  if (kind == "bfs") return core::SchedulerKind::kBassBfs;
  if (kind == "longest-path") return core::SchedulerKind::kBassLongestPath;
  if (kind == "k3s") return core::SchedulerKind::kK3sDefault;
  return core::SchedulerKind::kBassAuto;
}

}  // namespace

net::NodeId Scenario::node_id(const std::string& name) const {
  const auto it = nodes_by_name_.find(name);
  return it == nodes_by_name_.end() ? net::kInvalidNode : it->second;
}

std::string Scenario::node_name(net::NodeId id) const {
  for (const auto& [name, node] : nodes_by_name_) {
    if (node == id) return name;
  }
  return "node" + std::to_string(id);
}

util::Expected<std::unique_ptr<Scenario>> Scenario::from_file(const std::string& path) {
  auto ini = util::load_ini(path);
  if (!ini.ok()) return err(ini.error());
  return from_ini(ini.value());
}

util::Expected<std::unique_ptr<Scenario>> Scenario::from_ini(const util::IniFile& ini) {
  auto s = std::unique_ptr<Scenario>(new Scenario());

  // ---- Observability ----
  // Created before any subsystem so construction-time activity (the initial
  // probe round, the deploy decision) lands in the journal too.
  obs::RecorderConfig obs_cfg;
  if (const auto* obs_sec = ini.first_of_kind("obs")) {
    obs_cfg.enabled = obs_sec->flag_or("enabled", true);
    obs_cfg.journal_capacity = static_cast<std::size_t>(
        obs_sec->number_or("journal_capacity", static_cast<double>(obs_cfg.journal_capacity)));
  }
  s->recorder_ = std::make_unique<obs::Recorder>(obs_cfg);

  // ---- Nodes & topology ----
  net::Topology topo;
  for (const auto* section : ini.of_kind("node")) {
    if (section->heading.size() != 2) return err("[node] needs exactly one name");
    const std::string& name = section->heading[1];
    if (s->nodes_by_name_.count(name)) return err("duplicate node '" + name + "'");
    s->nodes_by_name_[name] = topo.add_node(name);
  }
  if (s->nodes_by_name_.empty()) return err("scenario defines no [node] sections");

  for (const auto* section : ini.of_kind("link")) {
    if (section->heading.size() != 3) return err("[link] needs two node names");
    const net::NodeId a = s->node_id(section->heading[1]);
    const net::NodeId b = s->node_id(section->heading[2]);
    if (a == net::kInvalidNode || b == net::kInvalidNode) {
      return err("[link " + section->heading[1] + " " + section->heading[2] +
                 "]: unknown node");
    }
    const double mbps = section->number_or("capacity_mbps", 10.0);
    topo.add_link(a, b, static_cast<net::Bps>(mbps * 1e6));
  }
  s->network_ = std::make_unique<net::Network>(s->sim_, std::move(topo));
  s->network_->set_recorder(s->recorder_.get());

  // Every pair must be reachable — the paper (and BASS) assume no
  // partitions (§3.1).
  for (const auto& [na, a] : s->nodes_by_name_) {
    for (const auto& [nb, b] : s->nodes_by_name_) {
      if (!s->network_->routing().reachable(a, b)) {
        return err("mesh is partitioned: '" + na + "' cannot reach '" + nb + "'");
      }
    }
  }

  // ---- Cluster resources ----
  for (const auto* section : ini.of_kind("node")) {
    const net::NodeId id = s->node_id(section->heading[1]);
    cluster::NodeSpec spec;
    spec.cpu_milli = static_cast<std::int64_t>(section->number_or("cpu", 4000));
    spec.memory_mb = static_cast<std::int64_t>(section->number_or("memory_mb", 4096));
    spec.schedulable = section->flag_or("schedulable", true);
    s->cluster_.add_node(id, spec);
  }

  // ---- Orchestrator & monitor ----
  core::OrchestratorConfig orch_cfg;
  if (const auto* mig = ini.first_of_kind("migration")) {
    orch_cfg.restart_duration =
        sim::seconds_f(mig->number_or("restart_s", 10.0));
  }
  s->orch_ = std::make_unique<core::Orchestrator>(s->sim_, *s->network_, s->cluster_,
                                                  orch_cfg);
  s->orch_->set_recorder(s->recorder_.get());
  const auto* mon = ini.first_of_kind("monitor");
  if (mon == nullptr || mon->flag_or("enabled", true)) {
    monitor::MonitorConfig mon_cfg;
    if (mon != nullptr) {
      mon_cfg.probe_interval = sim::seconds_f(mon->number_or("probe_interval_s", 30));
      mon_cfg.headroom_frac = mon->number_or("headroom_frac", 0.10);
    }
    s->monitor_ = std::make_unique<monitor::NetMonitor>(*s->network_, mon_cfg);
    s->monitor_->set_recorder(s->recorder_.get());
    s->orch_->attach_monitor(s->monitor_.get());
  }

  // ---- Traces ----
  s->player_ = std::make_unique<trace::TracePlayer>(*s->network_);
  const auto* run = ini.first_of_kind("run");
  s->duration_ = sim::seconds_f(run ? run->number_or("duration_s", 600) : 600);
  if (run != nullptr) s->dot_path_ = run->get_or("dot", "");
  bool has_traces = false;
  for (const auto* section : ini.of_kind("trace")) {
    if (section->heading.size() != 3) return err("[trace] needs two node names");
    const net::NodeId a = s->node_id(section->heading[1]);
    const net::NodeId b = s->node_id(section->heading[2]);
    if (a == net::kInvalidNode || b == net::kInvalidNode) return err("[trace]: unknown node");
    if (!s->network_->topology().link_between(a, b)) {
      return err("[trace " + section->heading[1] + " " + section->heading[2] +
                 "]: no such link");
    }
    if (const auto file = section->get("file")) {
      // Replay a recorded trace (CSV: t_seconds,bps — bassctl trace emits
      // this format, and real testbed traces can be converted to it).
      auto recorded = trace::BandwidthTrace::load_csv(*file);
      if (!recorded) return err("[trace]: cannot load '" + *file + "'");
      s->player_->add_bidirectional(a, b, std::move(*recorded));
      has_traces = true;
      continue;
    }
    trace::GeneratorParams params;
    params.mean_bps = static_cast<net::Bps>(section->number_or("mean_mbps", 10) * 1e6);
    params.stddev_frac = section->number_or("stddev_frac", 0.1);
    params.duration = s->duration_;
    if (section->flag_or("fades", false)) {
      params.fade_probability = section->number_or("fade_probability", 0.002);
      params.fade_depth_frac = section->number_or("fade_depth", 0.25);
      params.fade_duration = sim::seconds_f(section->number_or("fade_duration_s", 150));
    }
    util::Rng rng(static_cast<std::uint64_t>(section->number_or("seed", 1)));
    s->player_->add_bidirectional(a, b, trace::generate_trace(params, rng));
    has_traces = true;
  }

  // ---- Application ----
  const auto* wl = ini.first_of_kind("workload");
  const bool is_conference =
      wl != nullptr && wl->get_or("type", "requests") == "conference";

  app::AppGraph graph("scenario-app");
  std::vector<std::pair<net::NodeId, int>> conference_groups;
  if (is_conference) {
    if (!ini.of_kind("component").empty()) {
      return err("conference scenarios build the SFU app from [clients] "
                 "sections; remove [component]/[edge]");
    }
    for (const auto* section : ini.of_kind("clients")) {
      if (section->heading.size() != 2) return err("[clients] needs a node name");
      const net::NodeId node = s->node_id(section->heading[1]);
      if (node == net::kInvalidNode) {
        return err("[clients " + section->heading[1] + "]: unknown node");
      }
      conference_groups.emplace_back(
          node, static_cast<int>(section->number_or("count", 1)));
    }
    if (conference_groups.empty()) {
      return err("conference scenario defines no [clients] sections");
    }
    const auto per_stream =
        static_cast<net::Bps>(wl->number_or("per_stream_kbps", 250) * 1e3);
    graph = app::video_conference_app(conference_groups, per_stream);
  }
  std::map<std::string, app::ComponentId> comps;
  for (const auto* section : ini.of_kind("component")) {
    if (section->heading.size() != 2) return err("[component] needs exactly one name");
    const std::string& name = section->heading[1];
    if (comps.count(name)) return err("duplicate component '" + name + "'");
    app::Component c;
    c.name = name;
    c.cpu_milli = static_cast<std::int64_t>(section->number_or("cpu", 100));
    c.memory_mb = static_cast<std::int64_t>(section->number_or("memory_mb", 64));
    c.service_time = sim::seconds_f(section->number_or("service_time_ms", 1) / 1e3);
    c.concurrency = static_cast<int>(section->number_or("concurrency", 4));
    c.state_mb = static_cast<std::int64_t>(section->number_or("state_mb", 0));
    if (const auto pinned = section->get("pinned")) {
      const net::NodeId node = s->node_id(*pinned);
      if (node == net::kInvalidNode) {
        return err("component '" + name + "' pinned to unknown node '" + *pinned + "'");
      }
      c.pinned_node = node;
    }
    comps[name] = graph.add_component(c);
  }
  if (!is_conference && comps.empty()) {
    return err("scenario defines no [component] sections");
  }

  for (const auto* section : ini.of_kind("edge")) {
    if (section->heading.size() != 3) return err("[edge] needs two component names");
    const auto from = comps.find(section->heading[1]);
    const auto to = comps.find(section->heading[2]);
    if (from == comps.end() || to == comps.end()) {
      return err("[edge " + section->heading[1] + " " + section->heading[2] +
                 "]: unknown component");
    }
    app::Edge e;
    e.from = from->second;
    e.to = to->second;
    e.bandwidth = static_cast<net::Bps>(section->number_or("bandwidth_mbps", 1) * 1e6);
    e.request_bytes = static_cast<std::int64_t>(section->number_or("request_bytes", 1024));
    e.response_bytes =
        static_cast<std::int64_t>(section->number_or("response_bytes", 1024));
    e.probability = section->number_or("probability", 1.0);
    e.max_latency = sim::seconds_f(section->number_or("max_latency_ms", 0) / 1e3);
    graph.add_dependency(e);
  }
  std::string validation;
  if (!graph.validate(&validation)) return err("invalid application: " + validation);

  // ---- Deploy ----
  const auto* sched = ini.first_of_kind("scheduler");
  const auto kind = parse_scheduler(sched ? sched->get_or("kind", "auto") : "auto");
  // Probe the links once before placing if a monitor exists, so the
  // scheduler sees measured capacities.
  if (s->monitor_) {
    s->monitor_->start();
    s->sim_.run_until(sim::seconds(2));
  }
  if (has_traces) s->player_->start();
  auto deployed = s->orch_->deploy(std::move(graph), kind);
  if (!deployed.ok()) return err("placement failed: " + deployed.error());
  s->deployment_ = deployed.value();

  // ---- Migration & profiler ----
  if (const auto* mig = ini.first_of_kind("migration")) {
    if (mig->flag_or("enabled", true)) {
      controller::MigrationParams params;
      params.utilization_threshold = mig->number_or("threshold", 0.65);
      params.headroom_frac = mig->number_or("headroom", 0.2);
      params.goodput_floor = mig->number_or("goodput_floor", 0.5);
      params.evaluation_interval = sim::seconds_f(mig->number_or("interval_s", 30));
      params.cooldown = sim::seconds_f(mig->number_or("cooldown_s", 30));
      params.min_migration_gap = sim::seconds_f(mig->number_or("min_gap_s", 90));
      s->orch_->enable_migration(s->deployment_, params);
    }
  }
  if (const auto* prof = ini.first_of_kind("profiler")) {
    if (prof->flag_or("enabled", false)) {
      profiler::ProfilerConfig pcfg;
      pcfg.sample_interval = sim::seconds_f(prof->number_or("sample_interval_s", 10));
      pcfg.safety_factor = prof->number_or("safety_factor", 1.25);
      s->profiler_ = std::make_unique<profiler::OnlineProfiler>(*s->orch_,
                                                                s->deployment_, pcfg);
      s->profiler_->start();
    }
  }

  // ---- Faults & invariants ----
  // The continuous safety checker is on by default — every scenario run
  // doubles as a robustness test. [invariants] enabled = false opts out.
  const auto* inv = ini.first_of_kind("invariants");
  if (inv == nullptr || inv->flag_or("enabled", true)) {
    s->invariants_ = std::make_unique<fault::Invariants>(
        *s->orch_, s->recorder_.get());
    s->invariants_->attach();
  }
  auto scripted = fault::parse_fault_plan(
      ini, [&s](const std::string& name) { return s->node_id(name); },
      s->network_->topology());
  if (!scripted.ok()) return err(scripted.error());
  fault::FaultPlan plan = scripted.take();
  if (const auto* chaos = ini.first_of_kind("chaos")) {
    const fault::ChaosParams cp = fault::parse_chaos_params(*chaos, s->duration_);
    std::vector<std::pair<net::NodeId, net::NodeId>> links;
    for (const net::Link& link : s->network_->topology().links()) {
      if (link.src < link.dst) links.emplace_back(link.src, link.dst);
    }
    util::Rng chaos_rng(cp.seed);
    plan.merge(fault::generate_chaos_plan(cp, s->cluster_.schedulable_nodes(),
                                          links, chaos_rng));
    plan.sort();
  }
  if (!plan.empty()) {
    s->injector_ = std::make_unique<fault::Injector>(
        *s->orch_, *s->network_, s->monitor_.get(), s->recorder_.get());
    s->injector_->arm(std::move(plan));
  }

  // ---- Workload ----
  if (is_conference) {
    workload::VideoConferenceConfig cfg;
    for (const auto& [node, count] : conference_groups) {
      cfg.groups.push_back({node, count});
    }
    cfg.per_stream = static_cast<net::Bps>(wl->number_or("per_stream_kbps", 250) * 1e3);
    cfg.single_publisher = wl->flag_or("single_publisher", false);
    s->conference_ = std::make_unique<workload::VideoConferenceEngine>(
        *s->orch_, s->deployment_, cfg);
  } else if (wl != nullptr) {
    workload::RequestWorkloadConfig cfg;
    cfg.rps = wl->number_or("rps", 50);
    cfg.arrival = wl->get_or("arrival", "constant") == "exponential"
                      ? workload::RequestWorkloadConfig::Arrival::kExponential
                      : workload::RequestWorkloadConfig::Arrival::kConstant;
    cfg.seed = static_cast<std::uint64_t>(wl->number_or("seed", 1));
    cfg.max_in_flight = static_cast<std::int64_t>(wl->number_or("max_in_flight", 0));
    if (const auto client = wl->get("client")) {
      cfg.client_node = s->node_id(*client);
      if (cfg.client_node == net::kInvalidNode) {
        return err("workload client node '" + *client + "' unknown");
      }
    }
    s->requests_ = std::make_unique<workload::RequestEngine>(*s->orch_, s->deployment_,
                                                             cfg);
  }

  return s;
}

RunReport Scenario::run() {
  RunReport report;
  if (ran_) return report;
  ran_ = true;

  // Duration is measured from run() (construction may have burned a few
  // simulated seconds on the initial probe round).
  const sim::Time t0 = sim_.now();
  if (requests_) requests_->start();
  if (conference_) conference_->start();
  sim_.run_until(t0 + duration_);
  if (requests_) requests_->stop();
  if (conference_) conference_->stop();
  if (profiler_) profiler_->stop();
  // Drain in-flight work.
  sim_.run_until(t0 + duration_ + sim::minutes(2));
  if (monitor_) monitor_->stop();

  if (requests_) {
    report.requests_issued = requests_->issued();
    report.requests_completed = requests_->completed();
    report.requests_shed = requests_->shed();
    report.latency_mean_ms = requests_->latencies().mean_ms();
    report.latency_median_ms = requests_->latencies().median_ms();
    report.latency_p99_ms = requests_->latencies().p99_ms();
  }
  if (conference_) {
    for (const app::Edge& e : orch_->app(deployment_).edges()) {
      const auto node = orch_->app(deployment_).component(e.to).pinned_node;
      if (node) {
        report.median_bitrate_bps[*node] =
            conference_->median_bitrate(*node, sim::seconds(10));
      }
    }
  }
  report.migrations = orch_->migration_events().size();
  if (monitor_) report.probe_bytes = monitor_->probe_bytes_sent();
  if (injector_) report.faults_injected = injector_->injected();
  if (invariants_) {
    // One final sweep after the drain, so end-of-run state is covered even
    // when no controller round fired late.
    invariants_->check_now();
    report.invariant_violations = invariants_->violations();
  }
  return report;
}

}  // namespace bass::scenario
