#include "scenario/scenario.h"

#include <functional>

#include "app/catalog.h"
#include "topo/city_grid.h"
#include "trace/generator.h"
#include "util/strings.h"

namespace bass::scenario {

namespace {

util::Error err(const std::string& message) { return util::make_error(message); }

// Generation parameters for a synthetic [trace] section (no file= key).
trace::GeneratorParams parse_trace_gen_params(const util::IniSection& section,
                                              sim::Duration duration) {
  trace::GeneratorParams params;
  params.mean_bps = static_cast<net::Bps>(section.number_or("mean_mbps", 10) * 1e6);
  params.stddev_frac = section.number_or("stddev_frac", 0.1);
  params.duration = duration;
  if (section.flag_or("fades", false)) {
    params.fade_probability = section.number_or("fade_probability", 0.002);
    params.fade_depth_frac = section.number_or("fade_depth", 0.25);
    params.fade_duration = sim::seconds_f(section.number_or("fade_duration_s", 150));
  }
  return params;
}

// Cache key for a generated trace: every input that shapes the points.
std::string trace_cache_key(const util::IniSection& section, sim::Duration duration) {
  std::string key;
  for (const auto& word : section.heading) {
    key += word;
    key += ' ';
  }
  for (const auto& [k, v] : section.entries) {
    key += k;
    key += '=';
    key += v;
    key += ';';
  }
  key += "duration=" + std::to_string(duration);
  return key;
}

// The application graph plus the conference wiring derived from the ini's
// [component]/[edge]/[clients]/[workload] sections. Built once per sweep by
// ScenarioAssets::preload() and copied per run, or built inline by
// from_ini() when no matching assets are supplied.
struct AppBuild {
  app::AppGraph graph{"scenario-app"};
  std::vector<std::pair<net::NodeId, int>> conference_groups;
  bool is_conference = false;
};

util::Expected<AppBuild> build_app(
    const util::IniFile& ini,
    const std::function<net::NodeId(const std::string&)>& node_id) {
  AppBuild out;
  const auto* wl = ini.first_of_kind("workload");
  out.is_conference = wl != nullptr && wl->get_or("type", "requests") == "conference";

  if (out.is_conference) {
    if (!ini.of_kind("component").empty()) {
      return util::make_error(
          "conference scenarios build the SFU app from [clients] "
          "sections; remove [component]/[edge]");
    }
    for (const auto* section : ini.of_kind("clients")) {
      if (section->heading.size() != 2) {
        return util::make_error("[clients] needs a node name");
      }
      const net::NodeId node = node_id(section->heading[1]);
      if (node == net::kInvalidNode) {
        return util::make_error("[clients " + section->heading[1] + "]: unknown node");
      }
      out.conference_groups.emplace_back(
          node, static_cast<int>(section->number_or("count", 1)));
    }
    if (out.conference_groups.empty()) {
      return util::make_error("conference scenario defines no [clients] sections");
    }
    const auto per_stream =
        static_cast<net::Bps>(wl->number_or("per_stream_kbps", 250) * 1e3);
    out.graph = app::video_conference_app(out.conference_groups, per_stream);
  }
  std::map<std::string, app::ComponentId> comps;
  for (const auto* section : ini.of_kind("component")) {
    if (section->heading.size() != 2) {
      return util::make_error("[component] needs exactly one name");
    }
    const std::string& name = section->heading[1];
    if (comps.count(name)) return util::make_error("duplicate component '" + name + "'");
    app::Component c;
    c.name = name;
    c.cpu_milli = static_cast<std::int64_t>(section->number_or("cpu", 100));
    c.memory_mb = static_cast<std::int64_t>(section->number_or("memory_mb", 64));
    c.service_time = sim::seconds_f(section->number_or("service_time_ms", 1) / 1e3);
    c.concurrency = static_cast<int>(section->number_or("concurrency", 4));
    c.state_mb = static_cast<std::int64_t>(section->number_or("state_mb", 0));
    if (const auto pinned = section->get("pinned")) {
      const net::NodeId node = node_id(*pinned);
      if (node == net::kInvalidNode) {
        return util::make_error("component '" + name + "' pinned to unknown node '" +
                                *pinned + "'");
      }
      c.pinned_node = node;
    }
    comps[name] = out.graph.add_component(c);
  }
  if (!out.is_conference && comps.empty()) {
    return util::make_error("scenario defines no [component] sections");
  }

  for (const auto* section : ini.of_kind("edge")) {
    if (section->heading.size() != 3) {
      return util::make_error("[edge] needs two component names");
    }
    const auto from = comps.find(section->heading[1]);
    const auto to = comps.find(section->heading[2]);
    if (from == comps.end() || to == comps.end()) {
      return util::make_error("[edge " + section->heading[1] + " " +
                              section->heading[2] + "]: unknown component");
    }
    app::Edge e;
    e.from = from->second;
    e.to = to->second;
    e.bandwidth = static_cast<net::Bps>(section->number_or("bandwidth_mbps", 1) * 1e6);
    e.request_bytes = static_cast<std::int64_t>(section->number_or("request_bytes", 1024));
    e.response_bytes =
        static_cast<std::int64_t>(section->number_or("response_bytes", 1024));
    e.probability = section->number_or("probability", 1.0);
    e.max_latency = sim::seconds_f(section->number_or("max_latency_ms", 0) / 1e3);
    out.graph.add_dependency(e);
  }
  std::string validation;
  if (!out.graph.validate(&validation)) {
    return util::make_error("invalid application: " + validation);
  }
  return out;
}

}  // namespace

core::SchedulerKind parse_scheduler_kind(const std::string& kind) {
  if (kind == "bfs") return core::SchedulerKind::kBassBfs;
  if (kind == "longest-path") return core::SchedulerKind::kBassLongestPath;
  if (kind == "k3s") return core::SchedulerKind::kK3sDefault;
  return core::SchedulerKind::kBassAuto;
}

sim::Duration parse_run_duration(const util::IniFile& ini) {
  const auto* run = ini.first_of_kind("run");
  return sim::seconds_f(run ? run->number_or("duration_s", 600) : 600);
}

// Shared between from_ini's one-shot enable_migration and the serving
// loop's per-admission controller parameters.
controller::MigrationParams parse_migration_params(const util::IniSection& mig) {
  controller::MigrationParams params;
  params.utilization_threshold = mig.number_or("threshold", 0.65);
  params.headroom_frac = mig.number_or("headroom", 0.2);
  params.goodput_floor = mig.number_or("goodput_floor", 0.5);
  params.evaluation_interval = sim::seconds_f(mig.number_or("interval_s", 30));
  params.cooldown = sim::seconds_f(mig.number_or("cooldown_s", 30));
  params.min_migration_gap = sim::seconds_f(mig.number_or("min_gap_s", 90));
  return params;
}

util::Expected<ServeConfig> parse_serve_config(const util::IniFile& ini,
                                               sim::Duration duration) {
  const util::IniSection& serve = *ini.first_of_kind("serve");
  ServeConfig cfg;
  cfg.churn.seed = static_cast<std::uint64_t>(serve.number_or("seed", 1));
  cfg.churn.arrival_per_min = serve.number_or("arrival_per_min", 2.0);
  cfg.churn.diurnal_amplitude = serve.number_or("diurnal_amplitude", 0.0);
  cfg.churn.diurnal_period =
      sim::seconds_f(serve.number_or("diurnal_period_s", 1440));
  cfg.churn.mean_lifetime = sim::seconds_f(serve.number_or("mean_lifetime_s", 300));
  cfg.churn.duration = duration;
  cfg.churn.camera_weight = serve.number_or("camera_weight", 1.0);
  cfg.churn.conference_weight = serve.number_or("conference_weight", 1.0);
  cfg.churn.social_weight = serve.number_or("social_weight", 1.0);
  cfg.churn.resource_scale = serve.number_or("resource_scale", 0.25);

  auto mode = parse_serve_mode(serve.get_or("mode", "adaptive"));
  if (!mode.ok()) return util::make_error("[serve]: " + mode.error());
  cfg.mode = mode.value();

  auto policy = core::parse_admission_policy(serve.get_or("policy", "fifo"));
  if (!policy.ok()) return util::make_error("[serve]: " + policy.error());
  cfg.admission.policy = policy.value();
  cfg.admission.retry_interval = sim::seconds_f(serve.number_or("retry_s", 30));
  cfg.admission.max_retries = static_cast<int>(serve.number_or("max_retries", 5));

  const auto* sched = ini.first_of_kind("scheduler");
  cfg.scheduler = parse_scheduler_kind(sched ? sched->get_or("kind", "auto") : "auto");
  if (const auto* mig = ini.first_of_kind("migration")) {
    cfg.migration = parse_migration_params(*mig);
  }
  cfg.rebalance_interval =
      sim::seconds_f(serve.number_or("rebalance_interval_s", 120));
  cfg.rebalance_max_moves = static_cast<int>(serve.number_or("rebalance_max_moves", 1));
  cfg.rebalance_cpu_threshold = serve.number_or("rebalance_cpu_threshold", 0.85);
  return cfg;
}

util::Expected<TopologySpec> build_topology(const util::IniFile& ini) {
  TopologySpec spec;
  const auto* gen = ini.first_of_kind("topology");
  if (gen != nullptr && !ini.of_kind("node").empty()) {
    return err("scenario defines both [topology] and [node] sections");
  }
  if (gen != nullptr) {
    const std::string kind = gen->get_or("kind", "city_grid");
    if (kind != "city_grid") {
      return err("[topology]: unknown kind '" + kind + "'");
    }
    auto params = topo::parse_city_grid(*gen);
    if (!params.ok()) return err(params.error());
    auto grid = topo::make_city_grid(params.value());
    if (!grid.ok()) return err(grid.error());
    topo::CityGrid city = grid.take();
    spec.topology = std::move(city.topology);
    spec.generated = true;
    cluster::NodeSpec node_spec;
    node_spec.cpu_milli = static_cast<std::int64_t>(gen->number_or("cpu", 4000));
    node_spec.memory_mb =
        static_cast<std::int64_t>(gen->number_or("memory_mb", 4096));
    spec.specs.assign(static_cast<std::size_t>(spec.topology.node_count()),
                      node_spec);
    for (net::NodeId n = 0; n < spec.topology.node_count(); ++n) {
      spec.nodes_by_name[spec.topology.node_name(n)] = n;
    }
    return spec;
  }

  for (const auto* section : ini.of_kind("node")) {
    if (section->heading.size() != 2) return err("[node] needs exactly one name");
    const std::string& name = section->heading[1];
    if (spec.nodes_by_name.count(name)) return err("duplicate node '" + name + "'");
    spec.nodes_by_name[name] = spec.topology.add_node(name);
    cluster::NodeSpec node_spec;
    node_spec.cpu_milli = static_cast<std::int64_t>(section->number_or("cpu", 4000));
    node_spec.memory_mb =
        static_cast<std::int64_t>(section->number_or("memory_mb", 4096));
    node_spec.schedulable = section->flag_or("schedulable", true);
    spec.specs.push_back(node_spec);
  }
  if (spec.nodes_by_name.empty()) return err("scenario defines no [node] sections");

  for (const auto* section : ini.of_kind("link")) {
    if (section->heading.size() != 3) return err("[link] needs two node names");
    const auto a = spec.nodes_by_name.find(section->heading[1]);
    const auto b = spec.nodes_by_name.find(section->heading[2]);
    if (a == spec.nodes_by_name.end() || b == spec.nodes_by_name.end()) {
      return err("[link " + section->heading[1] + " " + section->heading[2] +
                 "]: unknown node");
    }
    const double mbps = section->number_or("capacity_mbps", 10.0);
    spec.topology.add_link(a->second, b->second, static_cast<net::Bps>(mbps * 1e6));
  }
  return spec;
}

std::string app_fingerprint(const util::IniFile& ini) {
  std::string fp;
  for (const auto& section : ini.sections) {
    const std::string& kind = section.kind();
    const bool app_shaping =
        kind == "component" || kind == "edge" || kind == "clients";
    if (kind == "node") {
      // Only names and order matter: they fix the NodeId assignment that
      // pinned= and [clients] resolve against.
      for (const auto& word : section.heading) {
        fp += word;
        fp += ' ';
      }
      fp += '\n';
    } else if (app_shaping) {
      for (const auto& word : section.heading) {
        fp += word;
        fp += ' ';
      }
      fp += '\n';
      for (const auto& [k, v] : section.entries) {
        fp += k;
        fp += '=';
        fp += v;
        fp += '\n';
      }
    } else if (kind == "workload") {
      // Of the workload keys, only these shape the graph itself — seeds and
      // rates deliberately stay out so seed sweeps share the cached app.
      fp += "workload type=" + section.get_or("type", "requests") +
            " per_stream_kbps=" + section.get_or("per_stream_kbps", "250") + '\n';
    }
  }
  return fp;
}

util::Expected<std::shared_ptr<const ScenarioAssets>> ScenarioAssets::preload(
    const util::IniFile& ini) {
  auto assets = std::make_shared<ScenarioAssets>();

  // Mirror from_ini's NodeId assignment: ids follow [node] section order.
  std::map<std::string, net::NodeId> nodes;
  net::NodeId next_id = 0;
  for (const auto* section : ini.of_kind("node")) {
    if (section->heading.size() != 2) return err("[node] needs exactly one name");
    if (!nodes.count(section->heading[1])) nodes[section->heading[1]] = next_id++;
  }
  const auto node_id = [&nodes](const std::string& name) {
    const auto it = nodes.find(name);
    return it == nodes.end() ? net::kInvalidNode : it->second;
  };

  const sim::Duration duration = parse_run_duration(ini);
  for (const auto* section : ini.of_kind("trace")) {
    if (section->heading.size() != 3) return err("[trace] needs two node names");
    if (const auto file = section->get("file")) {
      if (assets->file_traces.count(*file)) continue;
      auto recorded = trace::BandwidthTrace::load_csv(*file);
      if (!recorded) return err("[trace]: cannot load '" + *file + "'");
      assets->file_traces[*file] =
          std::make_shared<const trace::BandwidthTrace>(std::move(*recorded));
      continue;
    }
    const std::string key = trace_cache_key(*section, duration);
    if (assets->generated_traces.count(key)) continue;
    util::Rng rng(static_cast<std::uint64_t>(section->number_or("seed", 1)));
    assets->generated_traces[key] = std::make_shared<const trace::BandwidthTrace>(
        trace::generate_trace(parse_trace_gen_params(*section, duration), rng));
  }

  // Serving scenarios build their apps per-arrival from the churn schedule;
  // there is no one-shot graph to preload (traces above still cache).
  if (ini.first_of_kind("serve") == nullptr) {
    auto built = build_app(ini, node_id);
    if (!built.ok()) return err(built.error());
    AppBuild build = built.take();
    assets->app = std::make_shared<const app::AppGraph>(std::move(build.graph));
    assets->conference_groups = std::move(build.conference_groups);
    assets->is_conference = build.is_conference;
  }
  assets->fingerprint = app_fingerprint(ini);
  return std::shared_ptr<const ScenarioAssets>(std::move(assets));
}

net::NodeId Scenario::node_id(const std::string& name) const {
  const auto it = nodes_by_name_.find(name);
  return it == nodes_by_name_.end() ? net::kInvalidNode : it->second;
}

std::string Scenario::node_name(net::NodeId id) const {
  for (const auto& [name, node] : nodes_by_name_) {
    if (node == id) return name;
  }
  return "node" + std::to_string(id);
}

util::Expected<std::unique_ptr<Scenario>> Scenario::from_file(const std::string& path) {
  auto ini = util::load_ini(path);
  if (!ini.ok()) return err(ini.error());
  return from_ini(ini.value());
}

util::Expected<std::unique_ptr<Scenario>> Scenario::from_ini(
    const util::IniFile& ini, const ScenarioAssets* assets) {
  auto s = std::unique_ptr<Scenario>(new Scenario());

  // ---- Observability ----
  // Created before any subsystem so construction-time activity (the initial
  // probe round, the deploy decision) lands in the journal too.
  obs::RecorderConfig obs_cfg;
  if (const auto* obs_sec = ini.first_of_kind("obs")) {
    obs_cfg.enabled = obs_sec->flag_or("enabled", true);
    obs_cfg.journal_capacity = static_cast<std::size_t>(
        obs_sec->number_or("journal_capacity", static_cast<double>(obs_cfg.journal_capacity)));
  }
  s->recorder_ = std::make_unique<obs::Recorder>(obs_cfg);

  // ---- Nodes & topology ----
  auto built_topo = build_topology(ini);
  if (!built_topo.ok()) return err(built_topo.error());
  TopologySpec topo_spec = built_topo.take();
  s->nodes_by_name_ = std::move(topo_spec.nodes_by_name);
  s->network_ = std::make_unique<net::Network>(s->sim_, std::move(topo_spec.topology));
  s->network_->set_recorder(s->recorder_.get());

  // Every pair must be reachable — the paper (and BASS) assume no
  // partitions (§3.1). Generated topologies are connected by construction;
  // the all-pairs sweep would be O(n^2) at city scale, so they skip it.
  if (!topo_spec.generated) {
    for (const auto& [na, a] : s->nodes_by_name_) {
      for (const auto& [nb, b] : s->nodes_by_name_) {
        if (!s->network_->routing().reachable(a, b)) {
          return err("mesh is partitioned: '" + na + "' cannot reach '" + nb + "'");
        }
      }
    }
  }

  // ---- Cluster resources ----
  for (net::NodeId id = 0;
       id < static_cast<net::NodeId>(topo_spec.specs.size()); ++id) {
    s->cluster_.add_node(id, topo_spec.specs[static_cast<std::size_t>(id)]);
  }

  // ---- Orchestrator & monitor ----
  core::OrchestratorConfig orch_cfg;
  if (const auto* mig = ini.first_of_kind("migration")) {
    orch_cfg.restart_duration =
        sim::seconds_f(mig->number_or("restart_s", 10.0));
  }
  s->orch_ = std::make_unique<core::Orchestrator>(s->sim_, *s->network_, s->cluster_,
                                                  orch_cfg);
  s->orch_->set_recorder(s->recorder_.get());
  const auto* mon = ini.first_of_kind("monitor");
  if (mon == nullptr || mon->flag_or("enabled", true)) {
    monitor::MonitorConfig mon_cfg;
    if (mon != nullptr) {
      mon_cfg.probe_interval = sim::seconds_f(mon->number_or("probe_interval_s", 30));
      mon_cfg.headroom_frac = mon->number_or("headroom_frac", 0.10);
    }
    s->monitor_ = std::make_unique<monitor::NetMonitor>(*s->network_, mon_cfg);
    s->monitor_->set_recorder(s->recorder_.get());
    s->orch_->attach_monitor(s->monitor_.get());
  }

  // ---- Traces ----
  s->player_ = std::make_unique<trace::TracePlayer>(*s->network_);
  const auto* run = ini.first_of_kind("run");
  s->duration_ = parse_run_duration(ini);
  if (run != nullptr) s->dot_path_ = run->get_or("dot", "");
  bool has_traces = false;
  for (const auto* section : ini.of_kind("trace")) {
    if (section->heading.size() != 3) return err("[trace] needs two node names");
    const net::NodeId a = s->node_id(section->heading[1]);
    const net::NodeId b = s->node_id(section->heading[2]);
    if (a == net::kInvalidNode || b == net::kInvalidNode) return err("[trace]: unknown node");
    if (!s->network_->topology().link_between(a, b)) {
      return err("[trace " + section->heading[1] + " " + section->heading[2] +
                 "]: no such link");
    }
    if (const auto file = section->get("file")) {
      // Replay a recorded trace (CSV: t_seconds,bps — bassctl trace emits
      // this format, and real testbed traces can be converted to it).
      // Preloaded assets spare the per-run disk read + parse.
      if (assets != nullptr) {
        const auto it = assets->file_traces.find(*file);
        if (it != assets->file_traces.end()) {
          s->player_->add_bidirectional(a, b, *it->second);
          has_traces = true;
          continue;
        }
      }
      auto recorded = trace::BandwidthTrace::load_csv(*file);
      if (!recorded) return err("[trace]: cannot load '" + *file + "'");
      s->player_->add_bidirectional(a, b, std::move(*recorded));
      has_traces = true;
      continue;
    }
    // Synthetic trace: reuse the pre-generated points when the assets were
    // built with identical parameters (generation is seeded, so the cached
    // copy is exactly what this run would have produced).
    if (assets != nullptr) {
      const auto it =
          assets->generated_traces.find(trace_cache_key(*section, s->duration_));
      if (it != assets->generated_traces.end()) {
        s->player_->add_bidirectional(a, b, *it->second);
        has_traces = true;
        continue;
      }
    }
    util::Rng rng(static_cast<std::uint64_t>(section->number_or("seed", 1)));
    s->player_->add_bidirectional(
        a, b, trace::generate_trace(parse_trace_gen_params(*section, s->duration_), rng));
    has_traces = true;
  }

  // ---- Application ----
  // A [serve] section switches the scenario from "deploy one app, run a
  // workload against it" to the bassd serving loop: apps arrive via the
  // churn schedule and go through admission, so there is nothing to build
  // or deploy up front (and no one-shot profiler/workload).
  const bool serving = ini.first_of_kind("serve") != nullptr;
  const auto* wl = ini.first_of_kind("workload");
  AppBuild app_build;
  bool is_conference = false;
  if (!serving) {
    if (assets != nullptr && assets->app != nullptr &&
        assets->fingerprint == app_fingerprint(ini)) {
      // The cached graph was built from sections identical to ours: take a
      // copy and skip the rebuild + validation.
      app_build.graph = *assets->app;
      app_build.conference_groups = assets->conference_groups;
      app_build.is_conference = assets->is_conference;
    } else {
      auto built = build_app(
          ini, [&s](const std::string& name) { return s->node_id(name); });
      if (!built.ok()) return err(built.error());
      app_build = built.take();
    }
    is_conference = app_build.is_conference;
  }
  const std::vector<std::pair<net::NodeId, int>>& conference_groups =
      app_build.conference_groups;
  app::AppGraph& graph = app_build.graph;

  // ---- Deploy / serving loop ----
  const auto* sched = ini.first_of_kind("scheduler");
  const auto kind = parse_scheduler_kind(sched ? sched->get_or("kind", "auto") : "auto");
  // Probe the links once before placing if a monitor exists, so the
  // scheduler sees measured capacities.
  if (s->monitor_) {
    s->monitor_->start();
    s->sim_.run_until(sim::seconds(2));
  }
  if (has_traces) s->player_->start();
  if (serving) {
    auto serve_cfg = parse_serve_config(ini, s->duration_);
    if (!serve_cfg.ok()) return err(serve_cfg.error());
    s->serving_ = std::make_unique<ServingLoop>(*s->orch_, serve_cfg.take(),
                                                s->monitor_.get());
    s->serving_->set_recorder(s->recorder_.get());
  } else {
    auto deployed = s->orch_->deploy(std::move(graph), kind);
    if (!deployed.ok()) return err("placement failed: " + deployed.error());
    s->deployment_ = deployed.value();

    // ---- Migration & profiler ----
    if (const auto* mig = ini.first_of_kind("migration")) {
      if (mig->flag_or("enabled", true)) {
        s->orch_->enable_migration(s->deployment_, parse_migration_params(*mig));
      }
    }
    if (const auto* prof = ini.first_of_kind("profiler")) {
      if (prof->flag_or("enabled", false)) {
        profiler::ProfilerConfig pcfg;
        pcfg.sample_interval = sim::seconds_f(prof->number_or("sample_interval_s", 10));
        pcfg.safety_factor = prof->number_or("safety_factor", 1.25);
        s->profiler_ = std::make_unique<profiler::OnlineProfiler>(*s->orch_,
                                                                  s->deployment_, pcfg);
        s->profiler_->start();
      }
    }
  }

  // ---- Faults & invariants ----
  // The continuous safety checker is on by default — every scenario run
  // doubles as a robustness test. [invariants] enabled = false opts out.
  const auto* inv = ini.first_of_kind("invariants");
  if (inv == nullptr || inv->flag_or("enabled", true)) {
    s->invariants_ = std::make_unique<fault::Invariants>(
        *s->orch_, s->recorder_.get());
    s->invariants_->attach();
  }

  // ---- Flight recorder ----
  // Off by default (tests and sweeps should not scatter dump files); a
  // chaos harness turns it on with [obs] flight = true and gets a
  // self-contained flight_<tag>.jsonl on the first invariant violation.
  if (const auto* obs_sec = ini.first_of_kind("obs");
      obs_sec != nullptr && obs_sec->flag_or("flight", false)) {
    obs::FlightConfig fc;
    fc.last_events = static_cast<std::size_t>(
        obs_sec->number_or("flight_events", static_cast<double>(fc.last_events)));
    fc.directory = obs_sec->get_or("flight_dir", ".");
    std::string tag = obs_sec->get_or("flight_tag", "");
    if (tag.empty()) {
      // Default tag: the chaos seed, so parallel soak workers' dumps never
      // collide and a dump names the seed that reproduces it.
      const auto* chaos = ini.first_of_kind("chaos");
      tag = chaos != nullptr
                ? util::str_format(
                      "%llu", static_cast<unsigned long long>(
                                  chaos->number_or("seed", 1)))
                : "run";
    }
    fc.tag = std::move(tag);
    s->flight_ = std::make_unique<obs::FlightRecorder>(*s->recorder_, fc);
    if (obs_sec->flag_or("flight_signal", false)) s->flight_->arm_signal_hook();
    if (s->invariants_ != nullptr) {
      s->invariants_->set_violation_hook(
          [flight = s->flight_.get()](const char* name, const std::string&) {
            flight->dump_once(name);
          });
    }
  }
  auto scripted = fault::parse_fault_plan(
      ini, [&s](const std::string& name) { return s->node_id(name); },
      s->network_->topology());
  if (!scripted.ok()) return err(scripted.error());
  fault::FaultPlan plan = scripted.take();
  if (const auto* chaos = ini.first_of_kind("chaos")) {
    const fault::ChaosParams cp = fault::parse_chaos_params(*chaos, s->duration_);
    std::vector<std::pair<net::NodeId, net::NodeId>> links;
    for (const net::Link& link : s->network_->topology().links()) {
      if (link.src < link.dst) links.emplace_back(link.src, link.dst);
    }
    util::Rng chaos_rng(cp.seed);
    plan.merge(fault::generate_chaos_plan(cp, s->cluster_.schedulable_nodes(),
                                          links, chaos_rng));
    plan.sort();
  }
  if (!plan.empty()) {
    s->injector_ = std::make_unique<fault::Injector>(
        *s->orch_, *s->network_, s->monitor_.get(), s->recorder_.get());
    s->injector_->arm(std::move(plan));
  }

  // ---- Workload ----
  if (serving) {
    // The churn schedule IS the workload; [workload] sections are ignored.
  } else if (is_conference) {
    workload::VideoConferenceConfig cfg;
    for (const auto& [node, count] : conference_groups) {
      cfg.groups.push_back({node, count});
    }
    cfg.per_stream = static_cast<net::Bps>(wl->number_or("per_stream_kbps", 250) * 1e3);
    cfg.single_publisher = wl->flag_or("single_publisher", false);
    s->conference_ = std::make_unique<workload::VideoConferenceEngine>(
        *s->orch_, s->deployment_, cfg);
  } else if (wl != nullptr) {
    workload::RequestWorkloadConfig cfg;
    cfg.rps = wl->number_or("rps", 50);
    cfg.arrival = wl->get_or("arrival", "constant") == "exponential"
                      ? workload::RequestWorkloadConfig::Arrival::kExponential
                      : workload::RequestWorkloadConfig::Arrival::kConstant;
    cfg.seed = static_cast<std::uint64_t>(wl->number_or("seed", 1));
    cfg.max_in_flight = static_cast<std::int64_t>(wl->number_or("max_in_flight", 0));
    if (const auto client = wl->get("client")) {
      cfg.client_node = s->node_id(*client);
      if (cfg.client_node == net::kInvalidNode) {
        return err("workload client node '" + *client + "' unknown");
      }
    }
    s->requests_ = std::make_unique<workload::RequestEngine>(*s->orch_, s->deployment_,
                                                             cfg);
  }

  return s;
}

RunReport Scenario::run() {
  RunReport report;
  if (ran_) return report;
  ran_ = true;

  // Duration is measured from run() (construction may have burned a few
  // simulated seconds on the initial probe round).
  const sim::Time t0 = sim_.now();
  if (requests_) requests_->start();
  if (conference_) conference_->start();
  if (serving_) serving_->start();
  sim_.run_until(t0 + duration_);
  if (requests_) requests_->stop();
  if (conference_) conference_->stop();
  if (profiler_) profiler_->stop();
  // Drain in-flight work. The serving loop stays live through the drain so
  // in-flight admissions/migrations resolve before live_at_end is counted.
  sim_.run_until(t0 + duration_ + sim::minutes(2));
  if (serving_) serving_->stop();
  if (monitor_) monitor_->stop();

  if (requests_) {
    report.requests_issued = requests_->issued();
    report.requests_completed = requests_->completed();
    report.requests_shed = requests_->shed();
    report.latency_mean_ms = requests_->latencies().mean_ms();
    report.latency_median_ms = requests_->latencies().median_ms();
    report.latency_p99_ms = requests_->latencies().p99_ms();
  }
  if (conference_) {
    for (const app::Edge& e : orch_->app(deployment_).edges()) {
      const auto node = orch_->app(deployment_).component(e.to).pinned_node;
      if (node) {
        report.median_bitrate_bps[*node] =
            conference_->median_bitrate(*node, sim::seconds(10));
      }
    }
  }
  if (serving_) {
    report.served = true;
    const ServeStats& ss = serving_->stats();
    const core::AdmissionStats& as = serving_->admission_stats();
    report.serve_arrivals = ss.arrivals;
    report.serve_departures = ss.departures;
    report.serve_admitted = as.admitted;
    report.serve_rejected = as.rejected;
    report.serve_deferred = as.deferred;
    report.serve_cancelled = as.cancelled;
    report.serve_peak_queue_depth = as.peak_depth;
    report.serve_live_at_end = ss.live_at_end;
    report.serve_rebalance_moves = ss.rebalance_moves;
  }
  report.migrations = orch_->migration_events().size();
  if (monitor_) report.probe_bytes = monitor_->probe_bytes_sent();
  if (injector_) report.faults_injected = injector_->injected();
  if (invariants_) {
    // One final sweep after the drain, so end-of-run state is covered even
    // when no controller round fired late.
    invariants_->check_now();
    report.invariant_violations = invariants_->violations();
  }
  return report;
}

}  // namespace bass::scenario
