// Video-conferencing workload: an SFU (Pion-like selective forwarding
// unit) component forwarding participant streams. Client groups sit at
// fixed mesh nodes (the pinned pseudo-components built by
// app::video_conference_app); the SFU is the schedulable — and migratable —
// part.
//
// Traffic model: every publisher uplinks one stream at `per_stream` to the
// SFU's node; the SFU forwards each publisher's stream to every other
// participant. Delivered bitrate per client is the max-min allocation of
// its incoming forward streams; shortfall against the expected bitrate is
// the packet-loss proxy (Fig. 4's loss axis). When the SFU migrates, all
// WebRTC sessions drop and re-establish `reconnect_delay` after the
// component restarts (the paper's ~20-30 s disruption window).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/orchestrator.h"
#include "metrics/time_series.h"
#include "net/types.h"

namespace bass::workload {

struct VideoConferenceConfig {
  // Must mirror the groups passed to app::video_conference_app().
  struct ClientGroup {
    net::NodeId node;
    int count;
  };
  std::vector<ClientGroup> groups;
  net::Bps per_stream = net::kbps(800);
  // Fig. 4 / Fig. 12 mode: only the first participant publishes video and
  // everyone else receives that single stream.
  bool single_publisher = false;
  sim::Duration sample_interval = sim::seconds(1);
  // Extra time after component restart for WebRTC renegotiation.
  sim::Duration reconnect_delay = sim::seconds(10);
};

class VideoConferenceEngine final : public core::DeploymentListener {
 public:
  VideoConferenceEngine(core::Orchestrator& orchestrator,
                        core::DeploymentId deployment, VideoConferenceConfig config);
  ~VideoConferenceEngine() override;
  VideoConferenceEngine(const VideoConferenceEngine&) = delete;
  VideoConferenceEngine& operator=(const VideoConferenceEngine&) = delete;

  void start();
  void stop();

  // Mean *per-client download* bitrate (bps) at each sample instant, for
  // the clients attached at `group_node`. Zero while disconnected.
  const metrics::TimeSeries& bitrate_series(net::NodeId group_node) const;
  // Loss proxy: 1 - delivered/expected per sample.
  const metrics::TimeSeries& loss_series(net::NodeId group_node) const;

  double mean_bitrate(net::NodeId group_node, sim::Time from = 0) const;
  double median_bitrate(net::NodeId group_node, sim::Time from = 0) const;
  double mean_loss(net::NodeId group_node, sim::Time from = 0) const;

  int total_participants() const { return total_participants_; }
  net::Bps expected_per_client() const;

  // DeploymentListener:
  void on_component_down(app::ComponentId component) override;
  void on_component_up(app::ComponentId component, net::NodeId node) override;

 private:
  struct GroupMetrics {
    metrics::TimeSeries bitrate;
    metrics::TimeSeries loss;
  };

  void open_streams(net::NodeId sfu_node);
  void close_streams();
  void sample();

  core::Orchestrator* orch_;
  core::DeploymentId deployment_;
  VideoConferenceConfig config_;
  app::ComponentId sfu_ = app::kInvalidComponent;
  std::unordered_map<net::NodeId, app::ComponentId> group_component_;
  int total_participants_ = 0;

  // One uplink stream per publisher, per-group forward streams to clients.
  std::vector<net::StreamId> uplinks_;
  struct ForwardStream {
    net::StreamId id;
    net::NodeId group_node;
  };
  std::vector<ForwardStream> forwards_;
  bool connected_ = false;

  std::unordered_map<net::NodeId, GroupMetrics> metrics_;
  sim::EventId sampler_ = sim::kInvalidEvent;
  bool running_ = false;
};

}  // namespace bass::workload
