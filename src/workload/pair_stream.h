// A minimal constant-bitrate workload between one component pair — the
// Fig. 8 walkthrough's "component pair that requires at least 8 Mbps". The
// engine keeps a stream open between the pair's current nodes, follows
// migrations (with an outage while the moving end restarts), reports the
// pair's goodput (delivered / required), and feeds the passive traffic
// stats the bandwidth controller reads.
#pragma once

#include "core/orchestrator.h"
#include "metrics/time_series.h"

namespace bass::workload {

struct PairStreamConfig {
  app::ComponentId from = app::kInvalidComponent;
  app::ComponentId to = app::kInvalidComponent;
  net::Bps demand = net::mbps(8);
  sim::Duration sample_interval = sim::seconds(1);
};

class PairStreamEngine final : public core::DeploymentListener {
 public:
  PairStreamEngine(core::Orchestrator& orchestrator, core::DeploymentId deployment,
                   PairStreamConfig config);
  ~PairStreamEngine() override;
  PairStreamEngine(const PairStreamEngine&) = delete;
  PairStreamEngine& operator=(const PairStreamEngine&) = delete;

  void start();
  void stop();

  // Goodput fraction (delivered rate / demand) at each sample instant.
  const metrics::TimeSeries& goodput_series() const { return goodput_; }
  // Delivered rate in bps at each sample instant.
  const metrics::TimeSeries& rate_series() const { return rate_; }

  // DeploymentListener:
  void on_component_down(app::ComponentId component) override;
  void on_component_up(app::ComponentId component, net::NodeId node) override;

 private:
  void open();
  void close();
  void sample();

  core::Orchestrator* orch_;
  core::DeploymentId deployment_;
  PairStreamConfig config_;
  net::StreamId stream_ = 0;
  bool connected_ = false;
  bool running_ = false;
  sim::EventId sampler_ = sim::kInvalidEvent;
  metrics::TimeSeries goodput_;
  metrics::TimeSeries rate_;
};

}  // namespace bass::workload
