#include "workload/camera_pipeline.h"

#include <cassert>

namespace bass::workload {

CameraPipelineEngine::CameraPipelineEngine(core::Orchestrator& orchestrator,
                                           core::DeploymentId deployment,
                                           CameraPipelineConfig config)
    : orch_(&orchestrator),
      deployment_(deployment),
      config_(config),
      rng_(config.seed),
      servers_(static_cast<std::size_t>(orchestrator.app(deployment).component_count())) {
  const auto& g = orch_->app(deployment_);
  camera_ = g.find("camera-stream");
  sampler_ = g.find("frame-sampler");
  detector_ = g.find("object-detector");
  image_ = g.find("image-listener");
  label_ = g.find("label-listener");
  assert(camera_ != app::kInvalidComponent && detector_ != app::kInvalidComponent &&
         "deployment is not the camera pipeline app");
  for (const app::Edge& e : g.edges()) {
    if (e.from == camera_ && e.to == sampler_) cam_samp_ = e;
    if (e.from == sampler_ && e.to == detector_) samp_det_ = e;
    if (e.from == detector_ && e.to == image_) det_img_ = e;
    if (e.from == detector_ && e.to == label_) det_lbl_ = e;
  }
}

CameraPipelineEngine::~CameraPipelineEngine() { stop(); }

void CameraPipelineEngine::start() {
  if (running_) return;
  running_ = true;
  orch_->add_listener(deployment_, this);
  ticker_ = orch_->simulation().schedule_periodic(
      sim::seconds_f(1.0 / config_.fps), [this] { capture(); });
}

void CameraPipelineEngine::stop() {
  if (!running_) return;
  running_ = false;
  orch_->simulation().cancel_periodic(ticker_);
  ticker_ = sim::kInvalidEvent;
}

bool CameraPipelineEngine::stage_up(app::ComponentId c) const {
  return orch_->is_up(deployment_, c);
}

void CameraPipelineEngine::acquire_slot(app::ComponentId c, std::function<void()> ready) {
  Server& server = servers_[static_cast<std::size_t>(c)];
  const int concurrency = std::max(orch_->app(deployment_).component(c).concurrency, 1);
  if (server.busy < concurrency) {
    ++server.busy;
    ready();
    return;
  }
  server.waiting.push_back(std::move(ready));
}

void CameraPipelineEngine::release_slot(app::ComponentId c) {
  Server& server = servers_[static_cast<std::size_t>(c)];
  if (!server.waiting.empty()) {
    auto next = std::move(server.waiting.front());
    server.waiting.pop_front();
    next();
    return;
  }
  --server.busy;
}

void CameraPipelineEngine::drop_frame() {
  ++dropped_;
  --in_flight_;
}

// Transfers `edge`'s payload between the two components' current nodes,
// recording offered/delivered bytes, then continues with `next`.
void CameraPipelineEngine::ship(const app::Edge& edge, std::int64_t bytes,
                                std::function<void()> next) {
  auto& stats = orch_->traffic_stats(deployment_);
  stats.record_offered(edge.from, edge.to, bytes);
  orch_->network().start_transfer(
      orch_->node_of(deployment_, edge.from), orch_->node_of(deployment_, edge.to),
      bytes, [this, edge, bytes, next = std::move(next)] {
        orch_->traffic_stats(deployment_).record(edge.from, edge.to, bytes);
        next();
      });
}

// Runs `component`'s per-frame service (slot + service_time), then `next`.
void CameraPipelineEngine::serve(app::ComponentId component, std::function<void()> next) {
  acquire_slot(component, [this, component, next = std::move(next)] {
    const auto service = orch_->app(deployment_).component(component).service_time;
    orch_->simulation().schedule_after(service, [this, component,
                                                 next = std::move(next)] {
      release_slot(component);
      next();
    });
  });
}

void CameraPipelineEngine::capture() {
  ++captured_;
  // Real-time buffer: a backed-up or broken pipeline discards new frames.
  if (in_flight_ >= config_.frame_buffer || !stage_up(camera_) ||
      !stage_up(sampler_) || !stage_up(detector_)) {
    ++dropped_;
    return;
  }
  ++in_flight_;
  const sim::Time t0 = orch_->simulation().now();
  serve(camera_, [this, t0] {
    if (!stage_up(sampler_)) return drop_frame();
    ship(cam_samp_, cam_samp_.request_bytes, [this, t0] { sampler_stage(t0); });
  });
}

void CameraPipelineEngine::sampler_stage(sim::Time t0) {
  if (!stage_up(sampler_)) return drop_frame();
  to_sampler_.record(orch_->simulation().now(), orch_->simulation().now() - t0);
  serve(sampler_, [this, t0] {
    // Only dissimilar frames go on to the detector.
    if (config_.sample_ratio < 1.0 && !rng_.chance(config_.sample_ratio)) {
      ++sampled_out_;
      --in_flight_;
      return;
    }
    if (!stage_up(detector_)) return drop_frame();
    ship(samp_det_, samp_det_.request_bytes, [this, t0] { detector_stage(t0); });
  });
}

void CameraPipelineEngine::detector_stage(sim::Time t0) {
  if (!stage_up(detector_)) return drop_frame();
  to_detector_.record(orch_->simulation().now(), orch_->simulation().now() - t0);
  serve(detector_, [this, t0] {
    // Fan out annotated frames and labels; the frame completes when the
    // annotated image lands (labels are fire-and-forget telemetry).
    if (stage_up(label_)) {
      ship(det_lbl_, det_lbl_.request_bytes, [] {});
    }
    if (!stage_up(image_)) return drop_frame();
    ship(det_img_, det_img_.request_bytes, [this, t0] {
      const sim::Time now = orch_->simulation().now();
      to_image_.record(now, now - t0);
      e2e_.record(now, now - t0);
      ++annotated_;
      --in_flight_;
    });
  });
}

}  // namespace bass::workload
