#include "workload/pair_stream.h"

#include <cassert>

namespace bass::workload {

PairStreamEngine::PairStreamEngine(core::Orchestrator& orchestrator,
                                   core::DeploymentId deployment,
                                   PairStreamConfig config)
    : orch_(&orchestrator), deployment_(deployment), config_(config) {
  assert(config_.from != app::kInvalidComponent && config_.to != app::kInvalidComponent);
}

PairStreamEngine::~PairStreamEngine() { stop(); }

void PairStreamEngine::start() {
  if (running_) return;
  running_ = true;
  orch_->add_listener(deployment_, this);
  open();
  sampler_ = orch_->simulation().schedule_periodic(config_.sample_interval,
                                                   [this] { sample(); });
}

void PairStreamEngine::stop() {
  if (!running_) return;
  running_ = false;
  close();
  if (sampler_ != sim::kInvalidEvent) {
    orch_->simulation().cancel_periodic(sampler_);
    sampler_ = sim::kInvalidEvent;
  }
}

void PairStreamEngine::open() {
  if (connected_) return;
  if (!orch_->is_up(deployment_, config_.from) || !orch_->is_up(deployment_, config_.to)) {
    return;
  }
  stream_ = orch_->network().open_stream(orch_->node_of(deployment_, config_.from),
                                         orch_->node_of(deployment_, config_.to),
                                         config_.demand);
  connected_ = true;
}

void PairStreamEngine::close() {
  if (!connected_) return;
  orch_->network().close_stream(stream_);
  connected_ = false;
}

void PairStreamEngine::sample() {
  const sim::Time now = orch_->simulation().now();
  const double rate =
      connected_ ? static_cast<double>(orch_->network().stream_rate(stream_)) : 0.0;
  rate_.record(now, rate);
  goodput_.record(now, rate / static_cast<double>(config_.demand));
  if (connected_) {
    const double dt = sim::to_seconds(config_.sample_interval);
    orch_->traffic_stats(deployment_)
        .record(config_.from, config_.to,
                static_cast<std::int64_t>(rate * dt / 8.0));
    orch_->traffic_stats(deployment_)
        .record_offered(config_.from, config_.to,
                        static_cast<std::int64_t>(
                            static_cast<double>(config_.demand) * dt / 8.0));
  }
}

void PairStreamEngine::on_component_down(app::ComponentId component) {
  if (component == config_.from || component == config_.to) close();
}

void PairStreamEngine::on_component_up(app::ComponentId component, net::NodeId node) {
  (void)node;
  if (running_ && (component == config_.from || component == config_.to)) open();
}

}  // namespace bass::workload
