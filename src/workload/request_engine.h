// Open-loop RPC workload over a deployed application DAG — the engine
// behind the social-network experiments (DeathStarBench's wrk-style load
// generator) and the camera pipeline (each frame is one request through the
// pipeline DAG).
//
// Per request: the client node sends the request to the root component;
// each component queues for one of its `concurrency` server slots, computes
// for `service_time`, then invokes each outgoing edge (subject to the
// edge's probability) in parallel — request bytes over the mesh, recursive
// processing, response bytes back. The request completes when the root's
// response reaches the client; end-to-end latency therefore includes
// transfer time, queueing on saturated links, and server queueing — the
// three effects the paper's latency plots are made of.
//
// Components that are down (mid-migration) queue incoming invocations and
// drain them on restart, reproducing the paper's migration latency spikes
// (Fig. 14(a)).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "core/orchestrator.h"
#include "metrics/latency_recorder.h"
#include "util/rng.h"

namespace bass::workload {

struct RequestWorkloadConfig {
  // Node where the load generator runs; kInvalidNode = same node as the
  // root component (resolved at start()).
  net::NodeId client_node = net::kInvalidNode;
  double rps = 50.0;
  enum class Arrival { kConstant, kExponential };
  Arrival arrival = Arrival::kConstant;
  std::uint64_t seed = 1;
  std::int64_t request_bytes = 256;    // client -> root
  std::int64_t response_bytes = 2048;  // root -> client
  // Connection-pool cap of the load generator: arrivals beyond this many
  // in-flight requests are shed (counted, not issued). Real benchmark
  // clients (wrk/wrk2 with a fixed connection count) behave this way; it
  // bounds queue growth during overload so latency plateaus instead of
  // growing with the length of the congestion episode. 0 = unbounded.
  std::int64_t max_in_flight = 0;
};

class RequestEngine final : public core::DeploymentListener {
 public:
  RequestEngine(core::Orchestrator& orchestrator, core::DeploymentId deployment,
                RequestWorkloadConfig config);
  ~RequestEngine() override;
  RequestEngine(const RequestEngine&) = delete;
  RequestEngine& operator=(const RequestEngine&) = delete;

  // Begins issuing requests (and registers as a deployment listener).
  void start();
  // Stops new arrivals; in-flight requests run to completion.
  void stop();

  const metrics::LatencyRecorder& latencies() const { return latencies_; }
  std::int64_t issued() const { return issued_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t in_flight() const { return issued_ - completed_; }
  // Arrivals dropped because the connection pool was exhausted.
  std::int64_t shed() const { return shed_; }

  // DeploymentListener:
  void on_component_up(app::ComponentId component, net::NodeId node) override;

 private:
  void schedule_next_arrival();
  void arrive();
  // Invokes `component` from `caller_node`: request transfer, service,
  // children, response transfer; `done` fires when the response lands back
  // at the caller.
  void call(app::ComponentId component, net::NodeId caller_node,
            std::int64_t request_bytes, std::int64_t response_bytes,
            std::function<void()> done);
  void process(app::ComponentId component, net::NodeId caller_node,
               std::int64_t response_bytes, std::function<void()> done);
  void acquire_slot(app::ComponentId component, std::function<void()> ready);
  void release_slot(app::ComponentId component);

  core::Orchestrator* orch_;
  core::DeploymentId deployment_;
  RequestWorkloadConfig config_;
  util::Rng rng_;
  app::ComponentId root_ = app::kInvalidComponent;

  struct Server {
    int busy = 0;
    std::deque<std::function<void()>> waiting;
  };
  std::vector<Server> servers_;
  // Invocations parked while their component is down.
  std::vector<std::deque<std::function<void()>>> parked_;

  metrics::LatencyRecorder latencies_;
  std::int64_t issued_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t shed_ = 0;
  bool running_ = false;
  sim::EventId arrival_event_ = sim::kInvalidEvent;
};

}  // namespace bass::workload
