#include "workload/churn.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "app/catalog.h"
#include "util/strings.h"

namespace bass::workload {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Scaled copy of a catalog graph under a churn-instance name. Zero-resource
// pinned pseudo-components (conference client groups) pass through
// untouched; everything else keeps a floor so scaling never produces a
// zero-demand pod the packer would place for free.
app::AppGraph scaled_copy(const app::AppGraph& base, const std::string& name,
                          double scale) {
  app::AppGraph g(name);
  for (app::ComponentId c = 0; c < base.component_count(); ++c) {
    app::Component comp = base.component(c);
    if (comp.cpu_milli > 0 || comp.memory_mb > 0) {
      comp.cpu_milli = std::max<std::int64_t>(
          50, static_cast<std::int64_t>(static_cast<double>(comp.cpu_milli) * scale));
      comp.memory_mb = std::max<std::int64_t>(
          16, static_cast<std::int64_t>(static_cast<double>(comp.memory_mb) * scale));
    }
    g.add_component(std::move(comp));
  }
  for (app::Edge e : base.edges()) {
    e.bandwidth = std::max<net::Bps>(
        net::kbps(50),
        static_cast<net::Bps>(static_cast<double>(e.bandwidth) * scale));
    g.add_dependency(e);
  }
  return g;
}

}  // namespace

const char* app_family_name(AppFamily family) {
  switch (family) {
    case AppFamily::kCameraPipeline: return "camera";
    case AppFamily::kVideoConference: return "conference";
    case AppFamily::kSocialNetwork: return "social";
  }
  return "?";
}

std::vector<ChurnEvent> build_churn_schedule(const ChurnConfig& config) {
  std::vector<ChurnEvent> events;
  const double per_us = config.arrival_per_min / static_cast<double>(sim::kMinute);
  if (per_us <= 0.0 || config.duration <= 0) return events;
  const double amplitude = std::clamp(config.diurnal_amplitude, 0.0, 0.95);
  const double peak_per_us = per_us * (1.0 + amplitude);

  // Family CDF from the (clamped) weights.
  double weights[kAppFamilyCount] = {std::max(config.camera_weight, 0.0),
                                     std::max(config.conference_weight, 0.0),
                                     std::max(config.social_weight, 0.0)};
  double total_weight = weights[0] + weights[1] + weights[2];
  if (total_weight <= 0.0) {
    weights[0] = total_weight = 1.0;  // degenerate mix: all camera
  }

  util::Rng rng(config.seed);
  double t = 0.0;  // microseconds, double to avoid quantized thinning bias
  int instance = 0;
  int seq = 0;
  while (true) {
    // Thinning for the non-homogeneous rate: candidate arrivals come at the
    // peak rate, each kept with probability rate(t)/peak — a fixed two
    // draws per candidate, so the stream of rng consumption (and thus the
    // schedule) is a pure function of the config.
    t += rng.exponential(1.0 / peak_per_us);
    const double keep = rng.uniform(0.0, 1.0);
    if (t >= static_cast<double>(config.duration)) break;
    const double phase =
        2.0 * kPi * t / static_cast<double>(std::max<sim::Duration>(config.diurnal_period, 1));
    const double rate_frac = (1.0 + amplitude * std::sin(phase)) / (1.0 + amplitude);
    if (keep >= rate_frac) continue;

    const double pick = rng.uniform(0.0, total_weight);
    AppFamily family = AppFamily::kSocialNetwork;
    if (pick < weights[0]) {
      family = AppFamily::kCameraPipeline;
    } else if (pick < weights[0] + weights[1]) {
      family = AppFamily::kVideoConference;
    }
    const double lifetime =
        rng.exponential(static_cast<double>(std::max<sim::Duration>(config.mean_lifetime, 1)));

    const sim::Time arrive_at = static_cast<sim::Time>(t);
    events.push_back({arrive_at, false, instance, family});
    ++seq;
    const double depart_t = t + lifetime;
    if (depart_t < static_cast<double>(config.duration)) {
      events.push_back({static_cast<sim::Time>(depart_t), true, instance, family});
      ++seq;
    }
    ++instance;
  }
  (void)seq;
  // Departures interleave with later arrivals; order by time with the
  // generation sequence as the deterministic tiebreak (arrivals were pushed
  // before their departures, and stable_sort preserves that on ties).
  std::stable_sort(events.begin(), events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) { return a.at < b.at; });
  return events;
}

app::AppGraph make_churn_app(AppFamily family, int instance,
                             double resource_scale, std::uint64_t seed,
                             const std::vector<net::NodeId>& mesh_nodes) {
  const std::string name =
      util::str_format("%s#%d", app_family_name(family), instance);
  switch (family) {
    case AppFamily::kCameraPipeline:
      return scaled_copy(app::camera_pipeline_app(), name, resource_scale);
    case AppFamily::kSocialNetwork:
      // profile_scale already scales the social app's edge bandwidths; the
      // cpu/memory scaling comes from scaled_copy (bandwidth is re-scaled
      // from the already-reduced profile, floored at 50 kbps).
      return scaled_copy(app::social_network_app(1.0), name, resource_scale);
    case AppFamily::kVideoConference: {
      // Client groups land on per-instance deterministic nodes: a small
      // conference between two or three mesh locations.
      assert(!mesh_nodes.empty());
      util::Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(instance + 1)));
      const int groups = mesh_nodes.size() >= 3 && rng.chance(0.5) ? 3 : 2;
      std::vector<net::NodeId> nodes = mesh_nodes;
      // Partial Fisher–Yates for the first `groups` picks.
      for (int i = 0; i < groups && i < static_cast<int>(nodes.size()); ++i) {
        const auto j = static_cast<std::size_t>(rng.uniform_int(
            i, static_cast<std::int64_t>(nodes.size()) - 1));
        std::swap(nodes[static_cast<std::size_t>(i)], nodes[j]);
      }
      std::vector<std::pair<net::NodeId, int>> clients;
      for (int i = 0; i < groups && i < static_cast<int>(nodes.size()); ++i) {
        clients.emplace_back(nodes[static_cast<std::size_t>(i)],
                             static_cast<int>(rng.uniform_int(1, 3)));
      }
      const auto per_stream = static_cast<net::Bps>(
          std::max(25.0, 250.0 * resource_scale) * 1e3);
      return scaled_copy(app::video_conference_app(clients, per_stream), name,
                         resource_scale);
    }
  }
  return app::AppGraph(name);
}

ChurnTrafficEngine::ChurnTrafficEngine(core::Orchestrator& orchestrator,
                                       core::DeploymentId deployment,
                                       sim::Duration sample_interval)
    : orch_(&orchestrator),
      deployment_(deployment),
      sample_interval_(sample_interval) {}

ChurnTrafficEngine::~ChurnTrafficEngine() { stop(); }

void ChurnTrafficEngine::start() {
  if (running_) return;
  running_ = true;
  const app::AppGraph& graph = orch_->app(deployment_);
  for (const app::Edge& e : graph.edges()) {
    Flow flow;
    flow.from = e.from;
    flow.to = e.to;
    flow.demand = e.bandwidth;
    flows_.push_back(flow);
  }
  orch_->add_listener(deployment_, this);
  for (Flow& flow : flows_) open(flow);
  sampler_ = orch_->simulation().schedule_periodic(sample_interval_,
                                                   [this] { sample(); });
}

void ChurnTrafficEngine::stop() {
  if (!running_) return;
  running_ = false;
  for (Flow& flow : flows_) close(flow);
  if (sampler_ != sim::kInvalidEvent) {
    orch_->simulation().cancel_periodic(sampler_);
    sampler_ = sim::kInvalidEvent;
  }
}

void ChurnTrafficEngine::open(Flow& flow) {
  if (flow.connected) return;
  if (!orch_->is_up(deployment_, flow.from) || !orch_->is_up(deployment_, flow.to)) {
    return;
  }
  flow.stream = orch_->network().open_stream(orch_->node_of(deployment_, flow.from),
                                             orch_->node_of(deployment_, flow.to),
                                             flow.demand);
  flow.connected = true;
}

void ChurnTrafficEngine::close(Flow& flow) {
  if (!flow.connected) return;
  orch_->network().close_stream(flow.stream);
  flow.connected = false;
}

void ChurnTrafficEngine::sample() {
  if (!running_) return;
  const double dt = sim::to_seconds(sample_interval_);
  monitor::TrafficStats& stats = orch_->traffic_stats(deployment_);
  for (const Flow& flow : flows_) {
    if (!flow.connected) continue;
    const double rate = static_cast<double>(orch_->network().stream_rate(flow.stream));
    stats.record(flow.from, flow.to, static_cast<std::int64_t>(rate * dt / 8.0));
    stats.record_offered(flow.from, flow.to,
                         static_cast<std::int64_t>(
                             static_cast<double>(flow.demand) * dt / 8.0));
  }
}

void ChurnTrafficEngine::on_component_down(app::ComponentId component) {
  for (Flow& flow : flows_) {
    if (flow.from == component || flow.to == component) close(flow);
  }
}

void ChurnTrafficEngine::on_component_up(app::ComponentId component, net::NodeId node) {
  (void)node;
  if (!running_) return;
  for (Flow& flow : flows_) {
    if (flow.from != component && flow.to != component) continue;
    // Reopen at the component's new node (close is a no-op if the outage
    // already closed it).
    close(flow);
    open(flow);
  }
}

}  // namespace bass::workload
