#include "workload/video_conference.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/stats.h"
#include "util/strings.h"

namespace bass::workload {

VideoConferenceEngine::VideoConferenceEngine(core::Orchestrator& orchestrator,
                                             core::DeploymentId deployment,
                                             VideoConferenceConfig config)
    : orch_(&orchestrator), deployment_(deployment), config_(std::move(config)) {
  const auto& graph = orch_->app(deployment_);
  sfu_ = graph.find("pion-sfu");
  assert(sfu_ != app::kInvalidComponent && "not a video conference app");
  for (const auto& g : config_.groups) {
    total_participants_ += g.count;
    const app::ComponentId cg =
        graph.find(util::str_format("clients@node%d", g.node));
    assert(cg != app::kInvalidComponent && "config groups must match the app");
    group_component_[g.node] = cg;
    metrics_[g.node];  // materialize series
  }
}

VideoConferenceEngine::~VideoConferenceEngine() { stop(); }

net::Bps VideoConferenceEngine::expected_per_client() const {
  if (config_.single_publisher) return config_.per_stream;
  return config_.per_stream * std::max(total_participants_ - 1, 0);
}

void VideoConferenceEngine::start() {
  if (running_) return;
  running_ = true;
  orch_->add_listener(deployment_, this);
  open_streams(orch_->node_of(deployment_, sfu_));
  sampler_ = orch_->simulation().schedule_periodic(config_.sample_interval,
                                                   [this] { sample(); });
}

void VideoConferenceEngine::stop() {
  if (!running_) return;
  running_ = false;
  close_streams();
  if (sampler_ != sim::kInvalidEvent) {
    orch_->simulation().cancel_periodic(sampler_);
    sampler_ = sim::kInvalidEvent;
  }
}

void VideoConferenceEngine::open_streams(net::NodeId sfu_node) {
  assert(!connected_);
  connected_ = true;
  net::Network& net = orch_->network();

  // Publishers uplink to the SFU.
  if (config_.single_publisher) {
    const net::NodeId pub_node = config_.groups.front().node;
    uplinks_.push_back(net.open_stream(pub_node, sfu_node, config_.per_stream));
  } else {
    for (const auto& g : config_.groups) {
      for (int i = 0; i < g.count; ++i) {
        uplinks_.push_back(net.open_stream(g.node, sfu_node, config_.per_stream));
      }
    }
  }

  // The SFU forwards to every subscriber. Each subscriber at node n gets
  // one stream per *other* publisher.
  for (const auto& g : config_.groups) {
    for (int i = 0; i < g.count; ++i) {
      int incoming;
      if (config_.single_publisher) {
        // The publisher itself doesn't subscribe to its own stream.
        const bool is_publisher = (&g == &config_.groups.front()) && i == 0;
        incoming = is_publisher ? 0 : 1;
      } else {
        incoming = total_participants_ - 1;
      }
      for (int s = 0; s < incoming; ++s) {
        forwards_.push_back(
            {net.open_stream(sfu_node, g.node, config_.per_stream), g.node});
      }
    }
  }
}

void VideoConferenceEngine::close_streams() {
  if (!connected_) return;
  connected_ = false;
  net::Network& net = orch_->network();
  {
    net::Network::BatchUpdate batch(net);
    for (net::StreamId s : uplinks_) net.close_stream(s);
    for (const auto& f : forwards_) net.close_stream(f.id);
  }
  uplinks_.clear();
  forwards_.clear();
}

void VideoConferenceEngine::sample() {
  const sim::Time now = orch_->simulation().now();
  net::Network& net = orch_->network();

  // Per-group: total delivered forward rate / clients in the group.
  std::unordered_map<net::NodeId, double> delivered;
  for (const auto& f : forwards_) {
    delivered[f.group_node] += static_cast<double>(net.stream_rate(f.id));
  }
  for (const auto& g : config_.groups) {
    GroupMetrics& m = metrics_.at(g.node);
    // Average over *receiving* clients: in single-publisher mode the
    // publisher subscribes to nothing and must not dilute the mean.
    int receivers = g.count;
    if (config_.single_publisher && &g == &config_.groups.front()) {
      receivers = std::max(g.count - 1, 0);
    }
    const double per_client = connected_ && receivers > 0
                                  ? delivered[g.node] / static_cast<double>(receivers)
                                  : 0.0;
    m.bitrate.record(now, per_client);
    const double expected = static_cast<double>(expected_per_client());
    const double loss = expected <= 0.0
                            ? 0.0
                            : std::clamp(1.0 - per_client / expected, 0.0, 1.0);
    m.loss.record(now, loss);

    // Passive traffic accounting on the SFU<->group edges so the
    // bandwidth controller sees the SFU's link usage and goodput: offered
    // is the stream demand, delivered the max-min allocation.
    if (connected_) {
      const double dt = sim::to_seconds(config_.sample_interval);
      const auto down_bytes =
          static_cast<std::int64_t>(delivered[g.node] * dt / 8.0);
      orch_->traffic_stats(deployment_)
          .record(sfu_, group_component_.at(g.node), down_bytes);
      int forwards_here = 0;
      for (const auto& f : forwards_) {
        if (f.group_node == g.node) ++forwards_here;
      }
      const double offered =
          static_cast<double>(config_.per_stream) * forwards_here * dt / 8.0;
      orch_->traffic_stats(deployment_)
          .record_offered(sfu_, group_component_.at(g.node),
                          static_cast<std::int64_t>(offered));
    }
  }
  // Uplink accounting (group -> sfu).
  if (connected_) {
    const double dt = sim::to_seconds(config_.sample_interval);
    std::unordered_map<net::NodeId, double> up_rate;
    std::size_t idx = 0;
    if (config_.single_publisher) {
      if (!uplinks_.empty()) {
        up_rate[config_.groups.front().node] +=
            static_cast<double>(net.stream_rate(uplinks_[0]));
      }
    } else {
      for (const auto& g : config_.groups) {
        for (int i = 0; i < g.count; ++i, ++idx) {
          up_rate[g.node] += static_cast<double>(net.stream_rate(uplinks_[idx]));
        }
      }
    }
    // Uplink bytes are accounted against the same sfu->group DAG edge (the
    // app graph keeps one directed edge per pair to stay acyclic). Each
    // active uplink offers one full stream.
    std::unordered_map<net::NodeId, int> publishers;
    if (config_.single_publisher) {
      publishers[config_.groups.front().node] = uplinks_.empty() ? 0 : 1;
    } else {
      for (const auto& g : config_.groups) publishers[g.node] = g.count;
    }
    for (const auto& [node, rate] : up_rate) {
      orch_->traffic_stats(deployment_)
          .record(sfu_, group_component_.at(node),
                  static_cast<std::int64_t>(rate * dt / 8.0));
      orch_->traffic_stats(deployment_)
          .record_offered(sfu_, group_component_.at(node),
                          static_cast<std::int64_t>(
                              static_cast<double>(config_.per_stream) *
                              publishers[node] * dt / 8.0));
    }
  }
}

void VideoConferenceEngine::on_component_down(app::ComponentId component) {
  if (component != sfu_) return;
  close_streams();
}

void VideoConferenceEngine::on_component_up(app::ComponentId component,
                                            net::NodeId node) {
  if (component != sfu_ || !running_) return;
  (void)node;
  orch_->simulation().schedule_after(config_.reconnect_delay, [this] {
    // Re-resolve the node: another migration may have happened meanwhile.
    if (running_ && !connected_ && orch_->is_up(deployment_, sfu_)) {
      open_streams(orch_->node_of(deployment_, sfu_));
    }
  });
}

const metrics::TimeSeries& VideoConferenceEngine::bitrate_series(
    net::NodeId group_node) const {
  return metrics_.at(group_node).bitrate;
}

const metrics::TimeSeries& VideoConferenceEngine::loss_series(
    net::NodeId group_node) const {
  return metrics_.at(group_node).loss;
}

double VideoConferenceEngine::mean_bitrate(net::NodeId group_node, sim::Time from) const {
  const auto& series = metrics_.at(group_node).bitrate;
  return series.mean_in(from, std::numeric_limits<sim::Time>::max());
}

double VideoConferenceEngine::median_bitrate(net::NodeId group_node,
                                             sim::Time from) const {
  std::vector<double> values;
  for (const auto& s : metrics_.at(group_node).bitrate.samples()) {
    if (s.at >= from) values.push_back(s.value);
  }
  return util::percentile(std::move(values), 50.0);
}

double VideoConferenceEngine::mean_loss(net::NodeId group_node, sim::Time from) const {
  const auto& series = metrics_.at(group_node).loss;
  return series.mean_in(from, std::numeric_limits<sim::Time>::max());
}

}  // namespace bass::workload
