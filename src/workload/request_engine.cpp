#include "workload/request_engine.h"

#include <cassert>
#include <memory>

#include "util/logging.h"

namespace bass::workload {

RequestEngine::RequestEngine(core::Orchestrator& orchestrator,
                             core::DeploymentId deployment,
                             RequestWorkloadConfig config)
    : orch_(&orchestrator),
      deployment_(deployment),
      config_(config),
      rng_(config.seed),
      servers_(static_cast<std::size_t>(orchestrator.app(deployment).component_count())),
      parked_(servers_.size()) {
  const auto topo = orch_->app(deployment_).topo_order();
  assert(!topo.empty() && "request engine needs an acyclic app");
  root_ = topo.front();
}

RequestEngine::~RequestEngine() { stop(); }

void RequestEngine::start() {
  if (running_) return;
  running_ = true;
  orch_->add_listener(deployment_, this);
  if (config_.client_node == net::kInvalidNode) {
    config_.client_node = orch_->node_of(deployment_, root_);
  }
  schedule_next_arrival();
}

void RequestEngine::stop() {
  if (!running_) return;
  running_ = false;
  if (arrival_event_ != sim::kInvalidEvent) {
    orch_->simulation().cancel(arrival_event_);
    arrival_event_ = sim::kInvalidEvent;
  }
}

void RequestEngine::schedule_next_arrival() {
  if (!running_ || config_.rps <= 0.0) return;
  const double gap_s = config_.arrival == RequestWorkloadConfig::Arrival::kConstant
                           ? 1.0 / config_.rps
                           : rng_.exponential(1.0 / config_.rps);
  arrival_event_ = orch_->simulation().schedule_after(sim::seconds_f(gap_s), [this] {
    arrival_event_ = sim::kInvalidEvent;
    arrive();
    schedule_next_arrival();
  });
}

void RequestEngine::arrive() {
  if (config_.max_in_flight > 0 && in_flight() >= config_.max_in_flight) {
    ++shed_;
    return;
  }
  ++issued_;
  const sim::Time started = orch_->simulation().now();
  call(root_, config_.client_node, config_.request_bytes, config_.response_bytes,
       [this, started] {
         ++completed_;
         const sim::Time now = orch_->simulation().now();
         latencies_.record(now, now - started);
       });
}

void RequestEngine::call(app::ComponentId component, net::NodeId caller_node,
                         std::int64_t request_bytes, std::int64_t response_bytes,
                         std::function<void()> done) {
  if (!orch_->is_up(deployment_, component)) {
    // Park the whole invocation; it re-resolves the node once the component
    // restarts (possibly elsewhere).
    parked_[static_cast<std::size_t>(component)].push_back(
        [this, component, caller_node, request_bytes, response_bytes,
         done = std::move(done)]() mutable {
          call(component, caller_node, request_bytes, response_bytes, std::move(done));
        });
    return;
  }
  const net::NodeId target_node = orch_->node_of(deployment_, component);
  orch_->network().start_transfer(
      caller_node, target_node, request_bytes,
      [this, component, caller_node, response_bytes, done = std::move(done)]() mutable {
        process(component, caller_node, response_bytes, std::move(done));
      });
}

void RequestEngine::process(app::ComponentId component, net::NodeId caller_node,
                            std::int64_t response_bytes, std::function<void()> done) {
  acquire_slot(component, [this, component, caller_node, response_bytes,
                           done = std::move(done)]() mutable {
    const auto& comp = orch_->app(deployment_).component(component);
    orch_->simulation().schedule_after(
        comp.service_time,
        [this, component, caller_node, response_bytes, done = std::move(done)]() mutable {
          release_slot(component);

          // Fan out to the children this request actually touches.
          std::vector<app::Edge> invoked;
          for (const app::Edge& e : orch_->app(deployment_).out_edges(component)) {
            if (e.probability >= 1.0 || rng_.chance(e.probability)) invoked.push_back(e);
          }

          const net::NodeId my_node = orch_->node_of(deployment_, component);
          // Joined when all children have responded; then the response
          // travels back to the caller.
          auto remaining = std::make_shared<int>(static_cast<int>(invoked.size()) + 1);
          auto finish = [this, component, caller_node, my_node, response_bytes,
                         remaining, done = std::move(done)]() mutable {
            if (--*remaining > 0) return;
            orch_->network().start_transfer(my_node, caller_node, response_bytes,
                                            [done = std::move(done)] { done(); });
          };

          for (const app::Edge& e : invoked) {
            // Passive per-pair accounting: bytes offered when the call is
            // issued, delivered when the response lands. Their ratio is
            // the pair's goodput the controller watches.
            orch_->traffic_stats(deployment_)
                .record_offered(e.from, e.to, e.request_bytes + e.response_bytes);
            call(e.to, my_node, e.request_bytes, e.response_bytes,
                 [this, e, finish]() mutable {
                   orch_->traffic_stats(deployment_)
                       .record(e.from, e.to, e.request_bytes + e.response_bytes);
                   finish();
                 });
          }
          finish();  // the +1 guard: fires immediately when no children
        });
  });
}

void RequestEngine::acquire_slot(app::ComponentId component, std::function<void()> ready) {
  Server& server = servers_[static_cast<std::size_t>(component)];
  const int concurrency =
      std::max(orch_->app(deployment_).component(component).concurrency, 1);
  if (server.busy < concurrency) {
    ++server.busy;
    ready();
    return;
  }
  server.waiting.push_back(std::move(ready));
}

void RequestEngine::release_slot(app::ComponentId component) {
  Server& server = servers_[static_cast<std::size_t>(component)];
  if (!server.waiting.empty()) {
    auto next = std::move(server.waiting.front());
    server.waiting.pop_front();
    next();  // slot handed over directly
    return;
  }
  --server.busy;
}

void RequestEngine::on_component_up(app::ComponentId component, net::NodeId node) {
  (void)node;
  auto& parked = parked_[static_cast<std::size_t>(component)];
  while (!parked.empty()) {
    auto fn = std::move(parked.front());
    parked.pop_front();
    fn();
  }
}

}  // namespace bass::workload
