// Camera-processing workload (Fig. 9): a frame pipeline with real-time
// semantics. Frames are captured at a fixed rate at the camera-stream
// component's node, flow camera -> sampler -> detector -> {image, label}
// listeners, and are *dropped* — not queued forever — when the pipeline
// backs up or a stage is mid-migration: a stale frame is worthless to a
// live intersection monitor. End-to-end latency is capture to
// annotated-image receipt, with a per-stage breakdown for diagnosing where
// a placement hurts.
#pragma once

#include <deque>
#include <functional>

#include "core/orchestrator.h"
#include "metrics/latency_recorder.h"
#include "util/rng.h"

namespace bass::workload {

struct CameraPipelineConfig {
  double fps = 10.0;
  // Fraction of frames the sampler judges "dissimilar" and forwards to the
  // detector (the paper's sampler drops near-duplicates).
  double sample_ratio = 1.0;
  // Frames allowed in flight past capture; beyond this the camera drops
  // (the real-time buffer).
  int frame_buffer = 8;
  std::uint64_t seed = 1;
};

class CameraPipelineEngine final : public core::DeploymentListener {
 public:
  // `deployment` must host app::camera_pipeline_app() (matched by names).
  CameraPipelineEngine(core::Orchestrator& orchestrator,
                       core::DeploymentId deployment, CameraPipelineConfig config);
  ~CameraPipelineEngine() override;
  CameraPipelineEngine(const CameraPipelineEngine&) = delete;
  CameraPipelineEngine& operator=(const CameraPipelineEngine&) = delete;

  void start();
  void stop();

  // Capture -> annotated-image receipt.
  const metrics::LatencyRecorder& e2e() const { return e2e_; }
  // Stage breakdown: capture->sampler service start, ->detector service
  // start, ->image receipt (each includes its transfer + queueing).
  const metrics::LatencyRecorder& to_sampler() const { return to_sampler_; }
  const metrics::LatencyRecorder& to_detector() const { return to_detector_; }
  const metrics::LatencyRecorder& to_image() const { return to_image_; }

  std::int64_t frames_captured() const { return captured_; }
  std::int64_t frames_annotated() const { return annotated_; }
  // Drops: real-time buffer overflow + stage-down + sampled-out frames.
  std::int64_t frames_dropped() const { return dropped_; }
  std::int64_t frames_sampled_out() const { return sampled_out_; }

 private:
  void capture();
  void sampler_stage(sim::Time t0);
  void detector_stage(sim::Time t0);
  void drop_frame();
  void ship(const app::Edge& edge, std::int64_t bytes, std::function<void()> next);
  void serve(app::ComponentId component, std::function<void()> next);
  bool stage_up(app::ComponentId c) const;
  void acquire_slot(app::ComponentId c, std::function<void()> ready);
  void release_slot(app::ComponentId c);

  core::Orchestrator* orch_;
  core::DeploymentId deployment_;
  CameraPipelineConfig config_;
  util::Rng rng_;

  app::ComponentId camera_, sampler_, detector_, image_, label_;
  app::Edge cam_samp_, samp_det_, det_img_, det_lbl_;

  struct Server {
    int busy = 0;
    std::deque<std::function<void()>> waiting;
  };
  std::vector<Server> servers_;

  metrics::LatencyRecorder e2e_, to_sampler_, to_detector_, to_image_;
  std::int64_t captured_ = 0;
  std::int64_t annotated_ = 0;
  std::int64_t dropped_ = 0;
  std::int64_t sampled_out_ = 0;
  std::int64_t in_flight_ = 0;
  bool running_ = false;
  sim::EventId ticker_ = sim::kInvalidEvent;
};

}  // namespace bass::workload
