// Open-loop churn workload for the long-running control plane (bassd,
// DESIGN.md §10): app instances arrive as a seeded Poisson process —
// optionally modulated by a diurnal rate curve — live an exponential
// lifetime, and depart. The whole schedule is generated up front from the
// seed as a plain data vector, so the arrival process is (a) trivially
// testable for determinism and (b) replayable byte-for-byte: same seed ⇒
// identical event list ⇒ identical journals.
#pragma once

#include <cstdint>
#include <vector>

#include "core/orchestrator.h"
#include "util/rng.h"

namespace bass::workload {

// The three app families the paper evaluates (§6.1), drawn per arrival.
enum class AppFamily { kCameraPipeline = 0, kVideoConference = 1, kSocialNetwork = 2 };
constexpr int kAppFamilyCount = 3;

const char* app_family_name(AppFamily family);

struct ChurnConfig {
  std::uint64_t seed = 1;
  // Base Poisson arrival rate. With diurnal_amplitude > 0 the instantaneous
  // rate is arrival_per_min * (1 + amplitude * sin(2π t / diurnal_period))
  // — a compressed day/night curve — sampled by thinning, which preserves
  // determinism (every candidate arrival consumes exactly two rng draws).
  double arrival_per_min = 2.0;
  double diurnal_amplitude = 0.0;  // 0 = homogeneous; must stay < 1
  sim::Duration diurnal_period = sim::minutes(24);
  // Exponential instance lifetime; departures past `duration` are dropped
  // (those instances outlive the run and show up in live_at_end).
  sim::Duration mean_lifetime = sim::minutes(5);
  sim::Duration duration = sim::minutes(30);
  // Family mix weights (relative; <= 0 removes the family from the mix).
  double camera_weight = 1.0;
  double conference_weight = 1.0;
  double social_weight = 1.0;
  // Scales catalog cpu/memory/bandwidth so churn instances are mesh-sized:
  // the full catalog apps are built for the paper's dedicated experiments
  // (the camera detector alone wants 8 cores) and would choke a small mesh
  // at any realistic arrival rate.
  double resource_scale = 0.25;
};

struct ChurnEvent {
  sim::Time at = 0;
  bool depart = false;  // false = arrival
  int instance = -1;    // arrival order, 0-based; pairs arrivals/departures
  AppFamily family = AppFamily::kCameraPipeline;
};

// Pure function of the config — same config, same vector. Events are
// ordered by (at, generation sequence); an instance's departure never
// precedes its arrival.
std::vector<ChurnEvent> build_churn_schedule(const ChurnConfig& config);

// Builds the right-sized app graph for one churn instance: the catalog
// family graph with an instance-suffixed name (duplicate detection keys on
// it) and resources/bandwidth scaled by `resource_scale`. Conference
// instances pin their client pseudo-components to nodes drawn from
// `mesh_nodes` with Rng(seed ^ instance) — deterministic per instance.
app::AppGraph make_churn_app(AppFamily family, int instance,
                             double resource_scale, std::uint64_t seed,
                             const std::vector<net::NodeId>& mesh_nodes);

// Per-deployment traffic source for churn instances: one network stream per
// mesh-crossing app edge at the edge's profiled bandwidth, sampled into the
// deployment's passive TrafficStats every second — the signal the adaptive
// bandwidth controller reads. Streams follow migrations (close on
// component-down, reopen at the new node on component-up) and vanish on
// undeploy, exactly like the one-shot PairStreamEngine.
class ChurnTrafficEngine final : public core::DeploymentListener {
 public:
  ChurnTrafficEngine(core::Orchestrator& orchestrator,
                     core::DeploymentId deployment,
                     sim::Duration sample_interval = sim::seconds(1));
  ~ChurnTrafficEngine() override;
  ChurnTrafficEngine(const ChurnTrafficEngine&) = delete;
  ChurnTrafficEngine& operator=(const ChurnTrafficEngine&) = delete;

  void start();
  void stop();

  // DeploymentListener:
  void on_component_down(app::ComponentId component) override;
  void on_component_up(app::ComponentId component, net::NodeId node) override;

 private:
  struct Flow {
    app::ComponentId from = app::kInvalidComponent;
    app::ComponentId to = app::kInvalidComponent;
    net::Bps demand = 0;
    net::StreamId stream = 0;
    bool connected = false;
  };

  void open(Flow& flow);
  void close(Flow& flow);
  void sample();

  core::Orchestrator* orch_;
  core::DeploymentId deployment_;
  sim::Duration sample_interval_;
  std::vector<Flow> flows_;
  bool running_ = false;
  sim::EventId sampler_ = sim::kInvalidEvent;
};

}  // namespace bass::workload
