#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace bass::util {

namespace {

LogLevel initial_level() {
  LogLevel level = LogLevel::kWarn;
  if (const char* env = std::getenv("BASS_LOG")) parse_log_level(env, level);
  return level;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

bool parse_log_level(const std::string& name, LogLevel& out) {
  if (name == "debug") out = LogLevel::kDebug;
  else if (name == "info") out = LogLevel::kInfo;
  else if (name == "warn") out = LogLevel::kWarn;
  else if (name == "error") out = LogLevel::kError;
  else if (name == "off") out = LogLevel::kOff;
  else return false;
  return true;
}

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

}  // namespace bass::util
