#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include "util/strings.h"

namespace bass::util {

namespace {

void write_row(std::FILE* file, const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i != 0) std::fputc(',', file);
    std::fputs(fields[i].c_str(), file);
  }
  std::fputc('\n', file);
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, const std::vector<std::string>& header) {
  file_ = std::fopen(path.c_str(), "w");
  if (file_ != nullptr) write_row(file_, header);
}

CsvWriter::~CsvWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  if (file_ != nullptr) write_row(file_, fields);
}

bool CsvWriter::finish() {
  if (file_ == nullptr) return false;
  bool ok = std::fflush(file_) == 0;
  ok = std::ferror(file_) == 0 && ok;
  ok = std::fclose(file_) == 0 && ok;
  file_ = nullptr;
  return ok;
}

std::optional<CsvTable> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  CsvTable table;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = split(line, ',');
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) return std::nullopt;  // empty file
  return table;
}

}  // namespace bass::util
