// Small statistics helpers over value samples (used by metrics and benches).
#pragma once

#include <cstddef>
#include <vector>

namespace bass::util {

// Arithmetic mean; 0.0 for an empty input.
double mean(const std::vector<double>& values);

// Population standard deviation; 0.0 for fewer than two samples.
double stddev(const std::vector<double>& values);

// Nearest-rank percentile, q in [0,100]. Sorts a copy; 0.0 for empty input.
double percentile(std::vector<double> values, double q);

// Percentile over an already ascending-sorted vector (no copy).
double percentile_sorted(const std::vector<double>& sorted, double q);

double min_of(const std::vector<double>& values);
double max_of(const std::vector<double>& values);

}  // namespace bass::util
