// CSV emit/parse used by the trace module (import/export of bandwidth
// traces) and the bench harnesses (optional CSV dumps of series).
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace bass::util {

class CsvWriter {
 public:
  // Opens `path` for writing and emits the header row. Check ok() before use.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  void row(const std::vector<std::string>& fields);

  // Flushes and closes, reporting whether every byte actually landed —
  // fwrite can succeed into stdio's buffer and still lose data when the
  // disk fills at flush time. Returns false if the file never opened or
  // any write/flush failed. Idempotent; the destructor closes without
  // checking if finish() was never called.
  bool finish();

 private:
  std::FILE* file_ = nullptr;
};

struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;
};

// Parses a simple (unquoted) CSV file; nullopt if the file cannot be read.
std::optional<CsvTable> read_csv(const std::string& path);

}  // namespace bass::util
