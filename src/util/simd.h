// Portable 4-wide SIMD kernels for the max-min water-filling hot path.
//
// Built on GCC/Clang vector extensions (no arch-specific intrinsics: the
// compiler lowers to AVX, SSE pairs, NEON, or scalar code as the target
// allows). The scalar reference path is always compiled and selectable at
// runtime via each kernel's `use_simd` flag, so property tests cross-check
// the two bit-for-bit: every kernel is element-wise (no reassociated
// reductions), and element-wise IEEE-754 arithmetic is identical between
// the vector and scalar forms by construction.
//
// The compile-time toggle is the BASS_SIMD CMake option (default ON). With
// it off — or on a compiler without vector extensions — kCompiled is false
// and the `use_simd` flag is a no-op, leaving only the scalar path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>

#if defined(BASS_SIMD) && defined(__GNUC__)
#define BASS_SIMD_COMPILED 1
// The vector type only crosses inline-function boundaries, so the "AVX
// vector ABI" note GCC emits when 256-bit registers aren't enabled is
// irrelevant here (the type never appears in an external signature).
#pragma GCC diagnostic ignored "-Wpsabi"
#endif

namespace bass::util::simd {

#ifdef BASS_SIMD_COMPILED
inline constexpr bool kCompiled = true;

namespace detail {
typedef double V4 __attribute__((vector_size(32)));
// memcpy loads/stores compile to unaligned vector moves; the arrays these
// kernels see are arena-carved with no 32-byte alignment guarantee.
inline V4 load(const double* p) {
  V4 v;
  std::memcpy(&v, p, sizeof(V4));
  return v;
}
inline void store(double* p, V4 v) { std::memcpy(p, &v, sizeof(V4)); }
}  // namespace detail
#else
inline constexpr bool kCompiled = false;
#endif

// The saturation scan: dst[i] = remaining[i] / unfrozen[i] — each active
// link's fair share (the water level at which it saturates), computed in
// bulk to seed the solver's event heap.
inline void fair_share(double* dst, const double* remaining,
                       const double* unfrozen, std::size_t n, bool use_simd) {
  std::size_t i = 0;
#ifdef BASS_SIMD_COMPILED
  if (use_simd) {
    for (; i + 4 <= n; i += 4) {
      detail::store(dst + i, detail::load(remaining + i) / detail::load(unfrozen + i));
    }
  }
#else
  (void)use_simd;
#endif
  for (; i < n; ++i) dst[i] = remaining[i] / unfrozen[i];
}

// In-place dst[i] = max(dst[i], 0): the final clamp of float-noise-negative
// rates. Expression is `x > 0 ? x : 0` in both paths so -0.0 maps to +0.0
// identically.
inline void clamp_nonnegative(double* dst, std::size_t n, bool use_simd) {
  std::size_t i = 0;
#ifdef BASS_SIMD_COMPILED
  if (use_simd) {
    const detail::V4 zero = {0.0, 0.0, 0.0, 0.0};
    for (; i + 4 <= n; i += 4) {
      detail::V4 v = detail::load(dst + i);
      detail::store(dst + i, v > zero ? v : zero);
    }
  }
#else
  (void)use_simd;
#endif
  for (; i < n; ++i) dst[i] = dst[i] > 0.0 ? dst[i] : 0.0;
}

// The frozen-flow subtraction: remaining[idx[j]] -= rate and
// unfrozen[idx[j]] -= 1 for each link index on a freezing flow's path.
// A scatter has no portable vector form, so this is the 4-wide ILP-unrolled
// variant: a flow's path holds no duplicate links (AllocEntity contract),
// so the four lanes never alias and the compiler can overlap them.
inline void freeze_subtract(double* remaining, double* unfrozen,
                            const std::uint32_t* idx, std::size_t n,
                            double rate) {
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const std::uint32_t a = idx[j], b = idx[j + 1], c = idx[j + 2], d = idx[j + 3];
    remaining[a] -= rate;
    remaining[b] -= rate;
    remaining[c] -= rate;
    remaining[d] -= rate;
    unfrozen[a] -= 1.0;
    unfrozen[b] -= 1.0;
    unfrozen[c] -= 1.0;
    unfrozen[d] -= 1.0;
  }
  for (; j < n; ++j) {
    remaining[idx[j]] -= rate;
    unfrozen[idx[j]] -= 1.0;
  }
}

}  // namespace bass::util::simd
