// Minimal expected/result type: a value or a human-readable error string.
// Used for fallible operations that are part of normal control flow
// (e.g. "this application cannot be placed"), where exceptions would be
// the wrong tool.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace bass::util {

struct Error {
  std::string message;
};

inline Error make_error(std::string message) { return Error{std::move(message)}; }

template <typename T>
class Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}          // NOLINT(google-explicit-constructor)
  Expected(Error error) : data_(std::move(error)) {}      // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const T& value() const {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& take() {
    assert(ok());
    return std::move(std::get<T>(data_));
  }

  const std::string& error() const {
    assert(!ok());
    return std::get<Error>(data_).message;
  }

 private:
  std::variant<T, Error> data_;
};

}  // namespace bass::util
