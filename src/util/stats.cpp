#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace bass::util {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return std::accumulate(values.begin(), values.end(), 0.0) /
         static_cast<double>(values.size());
}

double stddev(const std::vector<double>& values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double accum = 0.0;
  for (double v : values) accum += (v - m) * (v - m);
  return std::sqrt(accum / static_cast<double>(values.size()));
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 100.0) return sorted.back();
  // Nearest-rank with linear interpolation between adjacent ranks.
  const double pos = (q / 100.0) * (static_cast<double>(sorted.size()) - 1.0);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double percentile(std::vector<double> values, double q) {
  std::sort(values.begin(), values.end());
  return percentile_sorted(values, q);
}

double min_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double max_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

}  // namespace bass::util
