// Bump arena for hot-path scratch. A solver owns one arena and carves its
// per-round transient arrays out of it at the start of every solve:
// `reset(bound)` guarantees capacity for the whole round up front (growing
// at most once, while no carvings are outstanding), then `alloc<T>(n)` is a
// pointer bump. Once the arena has grown to the workload's high-water mark,
// steady-state rounds perform zero heap allocations — the property the
// allocation gate in bench_alloc_fastpath holds.
//
// Contract: pointers returned by alloc() are valid until the next reset();
// reset() never preserves contents. Only trivially-destructible types may
// be carved (nothing runs destructors).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>

namespace bass::util {

class Arena {
 public:
  // Discards all outstanding carvings and guarantees that `bytes` bytes can
  // be alloc()'d before the next reset. Growth doubles, so repeated resets
  // with slowly-rising bounds settle quickly.
  void reset(std::size_t bytes) {
    if (bytes > capacity_) {
      std::size_t want = capacity_ == 0 ? 1024 : capacity_;
      while (want < bytes) want *= 2;
      // Plain new[] (not make_unique) to skip value-initialization: the
      // arena hands out uninitialized memory by design.
      buffer_.reset(new std::byte[want]);
      capacity_ = want;
      ++growths_;
    }
    used_ = 0;
  }

  // Carves `count` elements of T. The caller's reset() bound must cover
  // every carving of the round including alignment slack (alloc never
  // grows — growth would dangle earlier carvings).
  template <class T>
  T* alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory never runs destructors");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    const std::size_t aligned = (used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    const std::size_t end = aligned + count * sizeof(T);
    assert(end <= capacity_ && "arena reset() bound was too small");
    used_ = end;
    return reinterpret_cast<T*>(buffer_.get() + aligned);
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t used() const { return used_; }
  // Times the backing buffer was (re)allocated — a warmed-up arena stops
  // growing, which tests assert directly.
  std::int64_t growths() const { return growths_; }

 private:
  std::unique_ptr<std::byte[]> buffer_;
  std::size_t capacity_ = 0;
  std::size_t used_ = 0;
  std::int64_t growths_ = 0;
};

}  // namespace bass::util
