#include "util/strings.h"

#include <cstdarg>
#include <cstdio>

namespace bass::util {

std::string str_format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed <= 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::vector<std::string> split(const std::string& s, char delim) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      break;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::string format_bps(double bits_per_second) {
  if (bits_per_second >= 1e9) return str_format("%.2f Gbps", bits_per_second / 1e9);
  if (bits_per_second >= 1e6) return str_format("%.2f Mbps", bits_per_second / 1e6);
  if (bits_per_second >= 1e3) return str_format("%.2f Kbps", bits_per_second / 1e3);
  return str_format("%.0f bps", bits_per_second);
}

}  // namespace bass::util
