// Minimal leveled logger. Logging goes to stderr; the level is a process-wide
// setting so benches can silence the library while examples narrate.
//
// The initial level is kWarn, overridable with the BASS_LOG environment
// variable (debug|info|warn|error|off) — handy for operators debugging a
// scenario through bassctl without recompiling. Explicit set_log_level()
// calls (e.g. bassctl --log-level) win over the environment.
#pragma once

#include <sstream>
#include <string>

namespace bass::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Parses a level name (case-sensitive: "debug", "info", "warn", "error",
// "off"). Returns false and leaves `out` untouched on anything else.
bool parse_log_level(const std::string& name, LogLevel& out);

// Process-wide minimum level. Messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

// Emits one formatted line ("[level] message") if `level` passes the filter.
void log_line(LogLevel level, const std::string& message);

namespace detail {

// Stream-style builder: LogStream(kInfo) << "x=" << x; emits on destruction.
// Formatting is skipped entirely when the level is filtered out, so logging
// in hot paths costs a single comparison when disabled.
class LogStream {
 public:
  explicit LogStream(LogLevel level)
      : level_(level), enabled_(level >= log_level()) {}
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;
  LogStream(LogStream&&) = default;
  ~LogStream() {
    if (enabled_) log_line(level_, out_.str());
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    if (enabled_) out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream out_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace bass::util
