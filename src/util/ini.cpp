#include "util/ini.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace bass::util {

std::optional<std::string> IniSection::get(const std::string& key) const {
  for (const auto& [k, v] : entries) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string IniSection::get_or(const std::string& key, const std::string& fallback) const {
  const auto v = get(key);
  return v ? *v : fallback;
}

double IniSection::number_or(const std::string& key, double fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  return end == v->c_str() ? fallback : parsed;
}

bool IniSection::flag_or(const std::string& key, bool fallback) const {
  const auto v = get(key);
  if (!v) return fallback;
  return *v == "true" || *v == "1" || *v == "yes" || *v == "on";
}

std::vector<const IniSection*> IniFile::of_kind(const std::string& kind) const {
  std::vector<const IniSection*> out;
  for (const auto& s : sections) {
    if (!s.heading.empty() && s.kind() == kind) out.push_back(&s);
  }
  return out;
}

const IniSection* IniFile::first_of_kind(const std::string& kind) const {
  const auto all = of_kind(kind);
  return all.empty() ? nullptr : all.front();
}

Expected<IniFile> parse_ini(const std::string& text) {
  IniFile file;
  std::istringstream in(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    // Strip comments (whole-line or trailing) and whitespace.
    const auto hash = raw.find_first_of("#;");
    std::string line = trim(hash == std::string::npos ? raw : raw.substr(0, hash));
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']') {
        return make_error(str_format("line %d: unterminated section heading", line_no));
      }
      IniSection section;
      for (const auto& word : split(trim(line.substr(1, line.size() - 2)), ' ')) {
        if (!word.empty()) section.heading.push_back(word);
      }
      if (section.heading.empty()) {
        return make_error(str_format("line %d: empty section heading", line_no));
      }
      file.sections.push_back(std::move(section));
      continue;
    }

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      return make_error(str_format("line %d: expected 'key = value'", line_no));
    }
    if (file.sections.empty()) {
      return make_error(str_format("line %d: entry before any section", line_no));
    }
    file.sections.back().entries.emplace_back(trim(line.substr(0, eq)),
                                              trim(line.substr(eq + 1)));
  }
  return file;
}

Expected<IniFile> load_ini(const std::string& path) {
  std::ifstream in(path);
  if (!in) return make_error("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_ini(buffer.str());
}

}  // namespace bass::util
