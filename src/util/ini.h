// Minimal INI-style config parser for scenario files (see
// examples/scenarios/). Deliberately tiny: sections with space-separated
// heading words, `key = value` pairs, `#`/`;` comments, repeated sections
// allowed and order-preserving.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/expected.h"

namespace bass::util {

struct IniSection {
  // Heading words: "[link alpha beta]" -> {"link", "alpha", "beta"}.
  std::vector<std::string> heading;
  std::vector<std::pair<std::string, std::string>> entries;

  const std::string& kind() const { return heading.front(); }
  // nullopt when the key is absent.
  std::optional<std::string> get(const std::string& key) const;
  std::string get_or(const std::string& key, const std::string& fallback) const;
  double number_or(const std::string& key, double fallback) const;
  bool flag_or(const std::string& key, bool fallback) const;
};

struct IniFile {
  std::vector<IniSection> sections;

  // All sections whose first heading word is `kind`, in file order.
  std::vector<const IniSection*> of_kind(const std::string& kind) const;
  // The first such section, or nullptr.
  const IniSection* first_of_kind(const std::string& kind) const;
};

// Parses INI text; error message includes the offending line number.
Expected<IniFile> parse_ini(const std::string& text);

// Reads and parses a file.
Expected<IniFile> load_ini(const std::string& path);

}  // namespace bass::util
