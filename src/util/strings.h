// printf-style formatting into std::string (GCC 12 lacks std::format) and
// small string utilities shared across modules.
#pragma once

#include <string>
#include <vector>

namespace bass::util {

// printf-style format into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(const std::string& s, char delim);

// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

// Human-readable rate, e.g. "7.62 Mbps".
std::string format_bps(double bits_per_second);

}  // namespace bass::util
