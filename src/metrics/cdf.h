// Empirical CDF over a sample set (Figs. 14(a), 14(b)).
#pragma once

#include <string>
#include <vector>

namespace bass::metrics {

class Cdf {
 public:
  explicit Cdf(std::vector<double> samples);

  bool empty() const { return sorted_.empty(); }

  // Value at cumulative probability p in [0,1].
  double value_at(double p) const;

  // Cumulative probability of observing <= value.
  double probability_of(double value) const;

  // Evenly spaced (value, probability) points for plotting/printing.
  struct Point {
    double value;
    double probability;
  };
  std::vector<Point> points(std::size_t n) const;

  const std::vector<double>& sorted() const { return sorted_; }

 private:
  std::vector<double> sorted_;
};

}  // namespace bass::metrics
