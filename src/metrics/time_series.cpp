#include "metrics/time_series.h"

#include <deque>

#include "util/csv.h"
#include "util/strings.h"

namespace bass::metrics {

std::vector<double> TimeSeries::values() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.value);
  return out;
}

double TimeSeries::mean_in(sim::Time from, sim::Time to) const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    if (s.at >= from && s.at < to) {
      sum += s.value;
      ++n;
    }
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

TimeSeries TimeSeries::rolling_mean(sim::Duration window) const {
  TimeSeries out;
  std::deque<Sample> live;
  double sum = 0.0;
  for (const auto& s : samples_) {
    live.push_back(s);
    sum += s.value;
    while (!live.empty() && live.front().at <= s.at - window) {
      sum -= live.front().value;
      live.pop_front();
    }
    out.record(s.at, sum / static_cast<double>(live.size()));
  }
  return out;
}

TimeSeries TimeSeries::binned_mean(sim::Duration bin) const {
  TimeSeries out;
  if (bin <= 0 || samples_.empty()) return out;
  sim::Time bucket_start = 0;
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& s : samples_) {
    const sim::Time start = (s.at / bin) * bin;
    if (start != bucket_start && n > 0) {
      out.record(bucket_start, sum / static_cast<double>(n));
      sum = 0.0;
      n = 0;
    }
    bucket_start = start;
    sum += s.value;
    ++n;
  }
  if (n > 0) out.record(bucket_start, sum / static_cast<double>(n));
  return out;
}

bool TimeSeries::write_csv(const std::string& path, const std::string& value_name) const {
  util::CsvWriter w(path, {"t_seconds", value_name});
  if (!w.ok()) return false;
  for (const auto& s : samples_) {
    w.row({util::str_format("%.3f", sim::to_seconds(s.at)),
           util::str_format("%.6f", s.value)});
  }
  // Without the final flush check this returned true on a partially
  // written file whenever the disk filled mid-run.
  return w.finish();
}

}  // namespace bass::metrics
