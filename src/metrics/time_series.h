// Timestamped sample series — the shape behind every per-second plot in the
// paper (Figs. 2, 5, 8, 12, 13).
#pragma once

#include <string>
#include <vector>

#include "sim/time.h"

namespace bass::metrics {

struct Sample {
  sim::Time at;
  double value;
};

class TimeSeries {
 public:
  void record(sim::Time at, double value) { samples_.push_back({at, value}); }

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }

  std::vector<double> values() const;

  // Mean of values with timestamps in [from, to).
  double mean_in(sim::Time from, sim::Time to) const;

  // Rolling mean over a trailing window, sampled at each input timestamp —
  // reproduces the paper's "10-second rolling mean" presentation (Fig. 2).
  TimeSeries rolling_mean(sim::Duration window) const;

  // Re-buckets into fixed-width bins [0,bin), [bin,2bin)... averaging values;
  // empty bins are skipped. Used for "average latency at every second" plots.
  TimeSeries binned_mean(sim::Duration bin) const;

  // Writes "t_seconds,value" rows to a CSV file. Returns false on I/O error.
  bool write_csv(const std::string& path, const std::string& value_name) const;

 private:
  std::vector<Sample> samples_;
};

}  // namespace bass::metrics
