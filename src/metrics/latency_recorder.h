// Latency sample sink with the summary statistics the paper reports:
// mean, median, p99, and full sample access for CDFs.
#pragma once

#include <vector>

#include "metrics/time_series.h"
#include "sim/time.h"

namespace bass::metrics {

class LatencyRecorder {
 public:
  // Records one completed-request latency observed at time `at`.
  void record(sim::Time at, sim::Duration latency);

  std::size_t count() const { return latencies_ms_.size(); }
  double mean_ms() const;
  double median_ms() const;
  double p99_ms() const;
  double percentile_ms(double q) const;
  double max_ms() const;

  // All latencies, in milliseconds, in completion order.
  const std::vector<double>& latencies_ms() const { return latencies_ms_; }

  // Latency-vs-completion-time series (ms), for per-second plots.
  const TimeSeries& series() const { return series_; }

 private:
  std::vector<double> latencies_ms_;
  TimeSeries series_;
};

}  // namespace bass::metrics
