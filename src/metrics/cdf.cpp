#include "metrics/cdf.h"

#include <algorithm>

#include "util/stats.h"

namespace bass::metrics {

Cdf::Cdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Cdf::value_at(double p) const {
  return util::percentile_sorted(sorted_, p * 100.0);
}

double Cdf::probability_of(double value) const {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), value);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<Cdf::Point> Cdf::points(std::size_t n) const {
  std::vector<Point> out;
  if (sorted_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double p = (n == 1) ? 1.0 : static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back({value_at(p), p});
  }
  return out;
}

}  // namespace bass::metrics
