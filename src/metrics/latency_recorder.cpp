#include "metrics/latency_recorder.h"

#include "util/stats.h"

namespace bass::metrics {

void LatencyRecorder::record(sim::Time at, sim::Duration latency) {
  const double ms = sim::to_millis(latency);
  latencies_ms_.push_back(ms);
  series_.record(at, ms);
}

double LatencyRecorder::mean_ms() const { return util::mean(latencies_ms_); }

double LatencyRecorder::median_ms() const { return util::percentile(latencies_ms_, 50.0); }

double LatencyRecorder::p99_ms() const { return util::percentile(latencies_ms_, 99.0); }

double LatencyRecorder::percentile_ms(double q) const {
  return util::percentile(latencies_ms_, q);
}

double LatencyRecorder::max_ms() const { return util::max_of(latencies_ms_); }

}  // namespace bass::metrics
