// City-block / campus-grid topology generator. A city deployment is a grid
// of blocks; each block has one rooftop router and a handful of leaf nodes
// (homes, cameras, kiosks) star-wired to it. Routers mesh with their grid
// neighbours over street links, and every Nth block hosts a gateway whose
// street links run at backbone capacity. The generator is pure and
// deterministic: the same params always produce the same topology, node
// ids, and names — which is what lets zoned scenarios assert byte-identical
// journals across runs.
#pragma once

#include <string>
#include <vector>

#include "net/topology.h"
#include "util/expected.h"
#include "util/ini.h"

namespace bass::topo {

struct CityGridParams {
  int blocks_x = 4;
  int blocks_y = 4;
  // Leaves per block, router included (nodes_per_block = 1 means a bare
  // router grid).
  int nodes_per_block = 4;
  // Every Nth block (row-major index) is a gateway block; 0 disables
  // gateways entirely.
  int gateway_every = 8;
  net::Bps intra_bps = net::mbps(100);     // leaf <-> router
  net::Bps street_bps = net::mbps(50);     // router <-> neighbour router
  net::Bps backbone_bps = net::mbps(200);  // street links touching a gateway
};

struct CityGrid {
  net::Topology topology;
  std::vector<net::NodeId> routers;   // one per block, row-major block order
  std::vector<net::NodeId> gateways;  // subset of routers
};

class CityGridGenerator {
 public:
  explicit CityGridGenerator(CityGridParams params) : params_(params) {}

  int node_count() const {
    return params_.blocks_x * params_.blocks_y * params_.nodes_per_block;
  }
  const CityGridParams& params() const { return params_; }

  CityGrid build() const;

 private:
  CityGridParams params_;
};

// Validates params (positive dimensions, positive capacities) before
// building; errors name the offending field.
util::Expected<CityGrid> make_city_grid(const CityGridParams& params);

// Reads a [topology] ini section with kind = city_grid: blocks_x, blocks_y,
// nodes_per_block, gateway_every, intra_mbps, street_mbps, backbone_mbps —
// all optional with the struct defaults above.
util::Expected<CityGridParams> parse_city_grid(const util::IniSection& section);

}  // namespace bass::topo
