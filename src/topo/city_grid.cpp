#include "topo/city_grid.h"

#include <utility>

namespace bass::topo {
namespace {

std::string block_tag(int bx, int by) {
  return std::to_string(bx) + "x" + std::to_string(by);
}

}  // namespace

CityGrid CityGridGenerator::build() const {
  const CityGridParams& p = params_;
  CityGrid grid;

  // Node ids are contiguous per block in row-major block order: block
  // b = by * blocks_x + bx owns [b * nodes_per_block, (b+1) * nodes_per_block)
  // with the router first. Contiguity is what makes the id-chunk partition
  // method line up with spatial blocks.
  for (int by = 0; by < p.blocks_y; ++by) {
    for (int bx = 0; bx < p.blocks_x; ++bx) {
      const net::NodeId router = grid.topology.add_node("r" + block_tag(bx, by));
      grid.routers.push_back(router);
      for (int k = 1; k < p.nodes_per_block; ++k) {
        const net::NodeId leaf = grid.topology.add_node(
            "n" + block_tag(bx, by) + "_" + std::to_string(k));
        grid.topology.add_link(router, leaf, p.intra_bps);
      }
    }
  }

  const auto is_gateway_block = [&](int b) {
    return p.gateway_every > 0 && b % p.gateway_every == 0;
  };
  for (int b = 0; b < static_cast<int>(grid.routers.size()); ++b) {
    if (is_gateway_block(b)) grid.gateways.push_back(grid.routers[b]);
  }

  // Street mesh: each router links east and south so every neighbour pair
  // appears exactly once. Links touching a gateway block carry backbone
  // capacity — that is where city traffic drains.
  for (int by = 0; by < p.blocks_y; ++by) {
    for (int bx = 0; bx < p.blocks_x; ++bx) {
      const int b = by * p.blocks_x + bx;
      const auto street = [&](int other) {
        return is_gateway_block(b) || is_gateway_block(other) ? p.backbone_bps
                                                              : p.street_bps;
      };
      if (bx + 1 < p.blocks_x) {
        const int east = b + 1;
        grid.topology.add_link(grid.routers[b], grid.routers[east], street(east));
      }
      if (by + 1 < p.blocks_y) {
        const int south = b + p.blocks_x;
        grid.topology.add_link(grid.routers[b], grid.routers[south],
                               street(south));
      }
    }
  }
  return grid;
}

util::Expected<CityGrid> make_city_grid(const CityGridParams& params) {
  if (params.blocks_x <= 0 || params.blocks_y <= 0) {
    return util::make_error("city_grid: blocks_x and blocks_y must be positive");
  }
  if (params.nodes_per_block <= 0) {
    return util::make_error("city_grid: nodes_per_block must be positive");
  }
  if (params.gateway_every < 0) {
    return util::make_error("city_grid: gateway_every must be >= 0");
  }
  if (params.intra_bps <= 0 || params.street_bps <= 0 ||
      params.backbone_bps <= 0) {
    return util::make_error("city_grid: link capacities must be positive");
  }
  return CityGridGenerator(params).build();
}

util::Expected<CityGridParams> parse_city_grid(const util::IniSection& section) {
  CityGridParams p;
  p.blocks_x = static_cast<int>(section.number_or("blocks_x", p.blocks_x));
  p.blocks_y = static_cast<int>(section.number_or("blocks_y", p.blocks_y));
  p.nodes_per_block =
      static_cast<int>(section.number_or("nodes_per_block", p.nodes_per_block));
  p.gateway_every =
      static_cast<int>(section.number_or("gateway_every", p.gateway_every));
  const auto mbps_of = [&](const char* key, double fallback) {
    return static_cast<net::Bps>(section.number_or(key, fallback) * 1e6);
  };
  p.intra_bps = mbps_of("intra_mbps", 100.0);
  p.street_bps = mbps_of("street_mbps", 50.0);
  p.backbone_bps = mbps_of("backbone_mbps", 200.0);
  if (p.blocks_x <= 0 || p.blocks_y <= 0 || p.nodes_per_block <= 0) {
    return util::make_error(
        "[topology] city_grid: blocks_x, blocks_y, nodes_per_block must be "
        "positive");
  }
  return p;
}

}  // namespace bass::topo
