// fault::Invariants — a continuous safety-property checker for the
// orchestration stack. Attached to the Orchestrator's round hook it runs
// after every controller evaluation (and once more at end of run via
// check_now()), asserting:
//
//  * capacity     — no link's allocated flow sum exceeds its capacity
//                   (beyond float tolerance);
//  * placement    — no UP component sits on a failed node (cordoned-only
//                   nodes are legal hosts: drain leaves pinned components
//                   in place by design);
//  * accounting   — per-node cluster usage equals the sum of resources of
//                   the UP components placed there, i.e. allocate/release
//                   pairs never leak;
//  * cooldown     — consecutive controller-initiated moves of one
//                   component start >= min_migration_gap apart;
//  * pair-rule    — controller moves starting in the same round never take
//                   both endpoints of a communicating edge (Algorithm 3's
//                   anti-cascade rule), and per-round controller moves stay
//                   within max_migrations_per_round;
//  * journal      — every MigrationEvent has its MigrationCompleted journal
//                   record (checked only while the journal has dropped
//                   nothing).
//
// Violations are counted, logged, and journalled as obs::InvariantViolation
// events; tests assert violations() == 0 to hard-fail.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/orchestrator.h"
#include "obs/recorder.h"

namespace bass::fault {

struct InvariantConfig {
  // Relative slack on the capacity check (float accumulation in the
  // allocator's per-link sums).
  double capacity_rel_slack = 1e-6;
  // Absolute slack floor, bps.
  double capacity_abs_slack = 1000.0;
  // Verify journal MigrationCompleted records against migration_events().
  bool check_journal = true;
};

class Invariants {
 public:
  explicit Invariants(core::Orchestrator& orchestrator,
                      obs::Recorder* recorder = nullptr,
                      InvariantConfig config = {});
  Invariants(const Invariants&) = delete;
  Invariants& operator=(const Invariants&) = delete;

  // Installs this checker as the orchestrator's round hook (replacing any
  // previous hook). The orchestrator must outlive the checker.
  void attach();

  // Runs every check now; returns the number of NEW violations found.
  int check_now();

  // Invoked once per violation, after it is counted and journalled — the
  // flight recorder's dump trigger (scenario wires dump_once() in here).
  void set_violation_hook(std::function<void(const char*, const std::string&)> hook) {
    violation_hook_ = std::move(hook);
  }

  // Total violations since construction.
  int violations() const { return violations_; }

 private:
  void check_capacity();
  void check_placement();
  void check_accounting();
  void check_migration_discipline();
  void check_journal_consistency();
  void violate(const char* name, const std::string& detail);

  core::Orchestrator* orch_;
  obs::Recorder* recorder_;
  obs::Counter* m_violations_ = nullptr;
  InvariantConfig config_;
  std::function<void(const char*, const std::string&)> violation_hook_;
  int violations_ = 0;
  int violations_at_pass_start_ = 0;

  // Incremental migration-discipline state: events before next_migration_
  // have been consumed.
  std::size_t next_migration_ = 0;
  // (deployment, component) -> start time of its last controller move.
  std::map<std::pair<int, int>, sim::Time> last_controller_start_;
  // (deployment, round start time) -> components the controller moved.
  std::map<std::pair<int, sim::Time>, std::vector<int>> round_moves_;
};

}  // namespace bass::fault
