#include "fault/injector.h"

#include "util/logging.h"

namespace bass::fault {

Injector::Injector(core::Orchestrator& orchestrator, net::Network& network,
                   monitor::NetMonitor* monitor, obs::Recorder* recorder)
    : orchestrator_(&orchestrator),
      network_(&network),
      monitor_(monitor),
      recorder_(recorder) {
  if (recorder_ != nullptr) {
    m_injections_ = &recorder_->metrics().counter("fault.injections");
  }
}

void Injector::arm(FaultPlan plan) {
  if (armed_) {
    util::log_warn() << "fault injector armed twice; ignoring second plan";
    return;
  }
  armed_ = true;
  plan_ = std::move(plan);
  sim::Simulation& sim = orchestrator_->simulation();
  for (const FaultAction& action : plan_.actions) {
    sim.schedule_at(action.at, [this, action] { apply(action); });
  }
  util::log_info() << "fault injector armed with " << plan_.size() << " actions";
}

void Injector::apply(const FaultAction& action) {
  // The fault's span is opened before the action executes: a node crash's
  // failover MigrationStarted and a link fault's LinkCapacityChanged are
  // recorded inside this scope and inherit the fault as their parent. The
  // FaultInjected record itself is journalled after the action so journal
  // order keeps matching effect order (failover precedes the fault line).
  const obs::SpanId fault_span =
      recorder_ != nullptr ? recorder_->new_span() : obs::kNoSpan;
  obs::SpanScope fault_scope(recorder_, fault_span);
  double value = 0.0;
  switch (action.kind) {
    case FaultKind::kNodeCrash:
      if (orchestrator_->node_failed(action.node)) return;  // already down
      orchestrator_->fail_node(action.node, action.detection_delay);
      break;
    case FaultKind::kNodeRecover:
      orchestrator_->recover_node(action.node);
      break;
    case FaultKind::kLinkDown:
      network_->set_link_down_between(action.node, action.peer, true);
      break;
    case FaultKind::kLinkUp:
      network_->set_link_down_between(action.node, action.peer, false);
      break;
    case FaultKind::kProbeLoss:
      if (monitor_ == nullptr) {
        util::log_warn() << "probe_loss fault with no net-monitor attached";
        return;
      }
      monitor_->set_probe_loss(action.rate, action.seed);
      value = action.rate;
      break;
  }
  ++injected_;
  if (recorder_ != nullptr) {
    m_injections_->inc();
    obs::FaultInjected injected;
    injected.at = orchestrator_->simulation().now();
    injected.kind = fault_kind_name(action.kind);
    injected.node = action.node;
    injected.peer = action.peer;
    injected.value = value;
    injected.span = fault_span;
    recorder_->record(injected);
  }
}

}  // namespace bass::fault
