// fault::Injector — replays a FaultPlan on the sim clock. Each action is
// scheduled as its own sim event at arm() time; applying one drives the
// matching subsystem directly:
//
//  * node_crash  -> Orchestrator::fail_node (cordon + drop + failover)
//  * node_recover-> Orchestrator::recover_node (uncordon + schedulable)
//  * link_down   -> Network::set_link_down_between(..., true) — a capacity
//                   overlay, so trace playback underneath keeps running and
//                   the latest trace value resurfaces on link_up
//  * link_up     -> Network::set_link_down_between(..., false)
//  * probe_loss  -> NetMonitor::set_probe_loss
//
// Every applied action journals an obs::FaultInjected event, which is what
// the determinism check diffs across runs of the same seed.
#pragma once

#include "core/orchestrator.h"
#include "fault/plan.h"
#include "monitor/net_monitor.h"
#include "net/network.h"
#include "obs/recorder.h"

namespace bass::fault {

class Injector {
 public:
  // `monitor` and `recorder` may be null (probe_loss actions are skipped
  // with a warning / events are not journalled).
  Injector(core::Orchestrator& orchestrator, net::Network& network,
           monitor::NetMonitor* monitor, obs::Recorder* recorder);
  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  // Schedules every action of the plan. Call once, before Simulation::run;
  // actions whose time already passed fire on the next event drain.
  void arm(FaultPlan plan);

  const FaultPlan& plan() const { return plan_; }
  // Actions applied so far.
  int injected() const { return injected_; }

 private:
  void apply(const FaultAction& action);

  core::Orchestrator* orchestrator_;
  net::Network* network_;
  monitor::NetMonitor* monitor_;
  obs::Recorder* recorder_;
  obs::Counter* m_injections_ = nullptr;
  FaultPlan plan_;
  int injected_ = 0;
  bool armed_ = false;
};

}  // namespace bass::fault
