#include "fault/plan.h"

#include <algorithm>

namespace bass::fault {

namespace {

util::Error err(const std::string& message) { return util::make_error(message); }

std::string section_label(const util::IniSection& section) {
  std::string label = "[";
  for (std::size_t i = 0; i < section.heading.size(); ++i) {
    if (i > 0) label += ' ';
    label += section.heading[i];
  }
  return label + "]";
}

// Resolves heading word `index` to a node, or errors naming the section.
util::Expected<net::NodeId> node_at(const util::IniSection& section,
                                    std::size_t index, const NodeResolver& resolve) {
  if (index >= section.heading.size()) {
    return err(section_label(section) + ": missing node name");
  }
  const net::NodeId id = resolve(section.heading[index]);
  if (id == net::kInvalidNode) {
    return err(section_label(section) + ": unknown node '" +
               section.heading[index] + "'");
  }
  return id;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNodeCrash: return "node_crash";
    case FaultKind::kNodeRecover: return "node_recover";
    case FaultKind::kLinkDown: return "link_down";
    case FaultKind::kLinkUp: return "link_up";
    case FaultKind::kProbeLoss: return "probe_loss";
  }
  return "?";
}

void FaultPlan::sort() {
  std::stable_sort(actions.begin(), actions.end(),
                   [](const FaultAction& a, const FaultAction& b) { return a.at < b.at; });
}

void FaultPlan::merge(FaultPlan other) {
  actions.insert(actions.end(), std::make_move_iterator(other.actions.begin()),
                 std::make_move_iterator(other.actions.end()));
}

util::Expected<FaultPlan> parse_fault_plan(const util::IniFile& ini,
                                           const NodeResolver& resolve,
                                           const net::Topology& topology) {
  FaultPlan plan;
  for (const auto* section : ini.of_kind("fault")) {
    if (section->heading.size() < 2) {
      return err("[fault] needs an action (node_crash, node_recover, link_down, "
                 "link_up, link_flap, partition, probe_loss)");
    }
    const std::string& action = section->heading[1];
    const sim::Time at = sim::seconds_f(section->number_or("at_s", 0));
    const sim::Duration duration =
        sim::seconds_f(section->number_or("duration_s", 0));

    if (action == "node_crash" || action == "node_recover") {
      auto node = node_at(*section, 2, resolve);
      if (!node.ok()) return err(node.error());
      FaultAction a;
      a.at = at;
      a.kind = action == "node_crash" ? FaultKind::kNodeCrash : FaultKind::kNodeRecover;
      a.node = node.value();
      a.detection_delay = sim::seconds_f(section->number_or("detection_delay_s", 10));
      plan.actions.push_back(a);
      if (a.kind == FaultKind::kNodeCrash && duration > 0) {
        FaultAction up = a;
        up.kind = FaultKind::kNodeRecover;
        up.at = at + duration;
        plan.actions.push_back(up);
      }
    } else if (action == "link_down" || action == "link_up") {
      auto a_node = node_at(*section, 2, resolve);
      auto b_node = node_at(*section, 3, resolve);
      if (!a_node.ok()) return err(a_node.error());
      if (!b_node.ok()) return err(b_node.error());
      if (!topology.link_between(a_node.value(), b_node.value())) {
        return err(section_label(*section) + ": no such link");
      }
      FaultAction a;
      a.at = at;
      a.kind = action == "link_down" ? FaultKind::kLinkDown : FaultKind::kLinkUp;
      a.node = a_node.value();
      a.peer = b_node.value();
      plan.actions.push_back(a);
      if (a.kind == FaultKind::kLinkDown && duration > 0) {
        FaultAction up = a;
        up.kind = FaultKind::kLinkUp;
        up.at = at + duration;
        plan.actions.push_back(up);
      }
    } else if (action == "link_flap") {
      // Periodic down/up cycles with a duty factor: the link is DOWN for
      // `duty` of each period — the mesh-radio flap pattern real community
      // deployments report.
      auto a_node = node_at(*section, 2, resolve);
      auto b_node = node_at(*section, 3, resolve);
      if (!a_node.ok()) return err(a_node.error());
      if (!b_node.ok()) return err(b_node.error());
      if (!topology.link_between(a_node.value(), b_node.value())) {
        return err(section_label(*section) + ": no such link");
      }
      const sim::Time start = sim::seconds_f(section->number_or("start_s", 0));
      const sim::Time end = sim::seconds_f(section->number_or("end_s", 0));
      const sim::Duration period = sim::seconds_f(section->number_or("period_s", 60));
      const double duty = section->number_or("duty", 0.5);
      if (period <= 0 || end <= start) {
        return err(section_label(*section) + ": needs period_s > 0 and end_s > start_s");
      }
      if (duty <= 0 || duty >= 1) {
        return err(section_label(*section) + ": duty must be in (0, 1)");
      }
      const sim::Duration down_for =
          std::max<sim::Duration>(static_cast<sim::Duration>(duty * static_cast<double>(period)), 1);
      for (sim::Time t = start; t < end; t += period) {
        FaultAction down;
        down.at = t;
        down.kind = FaultKind::kLinkDown;
        down.node = a_node.value();
        down.peer = b_node.value();
        plan.actions.push_back(down);
        FaultAction up = down;
        up.kind = FaultKind::kLinkUp;
        up.at = std::min<sim::Time>(t + down_for, end);
        plan.actions.push_back(up);
      }
    } else if (action == "partition") {
      // The heading names one side of the cut; every topology link crossing
      // the cut goes down, isolating the named set from the rest of the
      // mesh while every node keeps computing — the real 802.11 partition
      // the paper scopes out (§3.1) and fail_node deliberately does NOT
      // model.
      if (section->heading.size() < 3) {
        return err(section_label(*section) + ": names no member nodes");
      }
      std::vector<net::NodeId> members;
      for (std::size_t i = 2; i < section->heading.size(); ++i) {
        auto node = node_at(*section, i, resolve);
        if (!node.ok()) return err(node.error());
        members.push_back(node.value());
      }
      auto in_cut = [&](net::NodeId n) {
        return std::find(members.begin(), members.end(), n) != members.end();
      };
      bool crossed = false;
      for (const net::Link& link : topology.links()) {
        // One action per undirected pair; the injector downs both directions.
        if (link.src > link.dst) continue;
        if (in_cut(link.src) == in_cut(link.dst)) continue;
        crossed = true;
        FaultAction down;
        down.at = at;
        down.kind = FaultKind::kLinkDown;
        down.node = link.src;
        down.peer = link.dst;
        plan.actions.push_back(down);
        if (duration > 0) {
          FaultAction up = down;
          up.kind = FaultKind::kLinkUp;
          up.at = at + duration;
          plan.actions.push_back(up);
        }
      }
      if (!crossed) {
        return err(section_label(*section) + ": cut-set crosses no links "
                   "(members cover the whole mesh or nothing)");
      }
    } else if (action == "probe_loss") {
      FaultAction a;
      a.at = at;
      a.kind = FaultKind::kProbeLoss;
      a.rate = section->number_or("rate", 0.1);
      a.seed = static_cast<std::uint64_t>(section->number_or("seed", 1));
      if (a.rate < 0 || a.rate > 1) {
        return err(section_label(*section) + ": rate must be in [0, 1]");
      }
      plan.actions.push_back(a);
      if (duration > 0) {
        FaultAction off = a;
        off.rate = 0.0;
        off.at = at + duration;
        plan.actions.push_back(off);
      }
    } else {
      return err(section_label(*section) + ": unknown fault action '" + action + "'");
    }
  }
  plan.sort();
  return plan;
}

ChaosParams parse_chaos_params(const util::IniSection& section,
                               sim::Duration default_horizon) {
  ChaosParams p;
  p.seed = static_cast<std::uint64_t>(section.number_or("seed", 1));
  p.crash_mtbf_s = section.number_or("crash_mtbf_s", 300);
  p.mttr_s = section.number_or("mttr_s", 120);
  p.crash_detection_s = section.number_or("crash_detection_s", 10);
  p.flap_mtbf_s = section.number_or("flap_mtbf_s", 120);
  p.flap_down_s = section.number_or("flap_down_s", 30);
  p.probe_loss = section.number_or("probe_loss", 0.0);
  const double horizon_s = section.number_or("horizon_s", 0);
  p.horizon = horizon_s > 0 ? sim::seconds_f(horizon_s) : default_horizon;
  return p;
}

FaultPlan generate_chaos_plan(const ChaosParams& params,
                              const std::vector<net::NodeId>& crashable,
                              const std::vector<std::pair<net::NodeId, net::NodeId>>& links,
                              util::Rng& rng) {
  FaultPlan plan;
  if (params.probe_loss > 0) {
    FaultAction a;
    a.at = 0;
    a.kind = FaultKind::kProbeLoss;
    a.rate = std::min(params.probe_loss, 1.0);
    a.seed = rng.engine()();  // derived, so the plan rng stays the only input
    plan.actions.push_back(a);
  }

  // Crash/repair timeline: crashes arrive as a Poisson process over the UP
  // crashable nodes; repairs follow exponential MTTR. At least one
  // crashable node is always left standing so recovery has a landing zone.
  if (params.crash_mtbf_s > 0 && crashable.size() >= 2) {
    std::vector<sim::Time> down_until(crashable.size(), -1);
    double t_s = rng.exponential(params.crash_mtbf_s);
    while (sim::seconds_f(t_s) < params.horizon) {
      const sim::Time now = sim::seconds_f(t_s);
      std::vector<std::size_t> up;
      for (std::size_t i = 0; i < crashable.size(); ++i) {
        if (down_until[i] < now) up.push_back(i);
      }
      if (up.size() >= 2) {
        const std::size_t pick = up[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(up.size()) - 1))];
        const sim::Duration outage =
            sim::seconds_f(std::max(rng.exponential(params.mttr_s), 1.0));
        FaultAction crash;
        crash.at = now;
        crash.kind = FaultKind::kNodeCrash;
        crash.node = crashable[pick];
        crash.detection_delay = sim::seconds_f(params.crash_detection_s);
        plan.actions.push_back(crash);
        FaultAction recover = crash;
        recover.kind = FaultKind::kNodeRecover;
        recover.at = now + outage;
        plan.actions.push_back(recover);
        down_until[pick] = recover.at;
      }
      t_s += rng.exponential(params.crash_mtbf_s);
    }
  }

  // Link flaps: independent Poisson onsets over all undirected links; a
  // link already down absorbs the draw (no stacked outages).
  if (params.flap_mtbf_s > 0 && !links.empty()) {
    std::vector<sim::Time> up_at(links.size(), -1);
    double t_s = rng.exponential(params.flap_mtbf_s);
    while (sim::seconds_f(t_s) < params.horizon) {
      const sim::Time now = sim::seconds_f(t_s);
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(links.size()) - 1));
      const double outage_s = std::max(rng.exponential(params.flap_down_s), 1.0);
      if (up_at[pick] < now) {
        FaultAction down;
        down.at = now;
        down.kind = FaultKind::kLinkDown;
        down.node = links[pick].first;
        down.peer = links[pick].second;
        plan.actions.push_back(down);
        FaultAction up = down;
        up.kind = FaultKind::kLinkUp;
        up.at = now + sim::seconds_f(outage_s);
        plan.actions.push_back(up);
        up_at[pick] = up.at;
      }
      t_s += rng.exponential(params.flap_mtbf_s);
    }
  }

  plan.sort();
  return plan;
}

}  // namespace bass::fault
