// Fault plans: deterministic timelines of mesh misbehaviour. A plan is a
// sorted list of actions the Injector replays on the sim clock — node
// crashes/recoveries, link outages, and net-monitor probe loss. Plans come
// from two sources, freely combined:
//
//  * scripted `[fault ...]` scenario sections (absolute times, flap
//    schedules, partitions — see the grammar in scenario/scenario.h), and
//  * a seeded `[chaos]` generator that draws crash/repair and link-flap
//    timelines from util::Rng, so every chaos run replays exactly per seed.
//
// Parsing and generation are pure (no side effects on the world); the
// Injector owns execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "net/topology.h"
#include "net/types.h"
#include "sim/time.h"
#include "util/expected.h"
#include "util/ini.h"
#include "util/rng.h"

namespace bass::fault {

enum class FaultKind {
  kNodeCrash,    // abrupt compute failure (Orchestrator::fail_node)
  kNodeRecover,  // board replaced / rebooted (Orchestrator::recover_node)
  kLinkDown,     // both directions of the (a, b) link forced to zero
  kLinkUp,       // overlay lifted; trace playback resumes where it left off
  kProbeLoss,    // net-monitor probe results lost with probability `rate`
};

// Stable snake_case tag used in journal events and scenario sections.
const char* fault_kind_name(FaultKind kind);

struct FaultAction {
  sim::Time at = 0;
  FaultKind kind = FaultKind::kNodeCrash;
  net::NodeId node = net::kInvalidNode;    // node faults
  net::NodeId peer = net::kInvalidNode;    // link faults: (node, peer) endpoints
  sim::Duration detection_delay = sim::seconds(10);  // node_crash only
  double rate = 0.0;                       // probe_loss only
  std::uint64_t seed = 1;                  // probe_loss rng seed
};

struct FaultPlan {
  std::vector<FaultAction> actions;  // sorted by `at`, insertion-stable

  bool empty() const { return actions.empty(); }
  std::size_t size() const { return actions.size(); }
  // Stable sort by time: actions scripted earlier in the file win ties.
  void sort();
  // Appends another plan's actions (caller re-sorts).
  void merge(FaultPlan other);
};

// Seeded chaos profile (`[chaos]` scenario section). Rates are mean times
// of exponential draws; 0 disables that fault class.
struct ChaosParams {
  std::uint64_t seed = 1;
  double crash_mtbf_s = 300;  // mean time between node crashes
  double mttr_s = 120;        // mean crash repair time
  double crash_detection_s = 10;
  double flap_mtbf_s = 120;   // mean time between link-outage onsets
  double flap_down_s = 30;    // mean link outage length
  double probe_loss = 0.0;    // probability a probe's result is lost
  sim::Duration horizon = sim::minutes(10);  // no new faults past this
};

// Resolves a scenario node name to its NodeId (kInvalidNode when unknown).
using NodeResolver = std::function<net::NodeId(const std::string&)>;

// Parses every `[fault ...]` section of a scenario file into one plan.
// Flaps and partitions are expanded into link_down/link_up pairs here, so
// the Injector only ever sees primitive actions. Errors name the section.
util::Expected<FaultPlan> parse_fault_plan(const util::IniFile& ini,
                                           const NodeResolver& resolve,
                                           const net::Topology& topology);

// Reads a `[chaos]` section; `default_horizon` is the scenario run length.
ChaosParams parse_chaos_params(const util::IniSection& section,
                               sim::Duration default_horizon);

// Draws a randomized plan from the profile. `crashable` nodes take crashes
// (at least one is always left standing); undirected `links` (as endpoint
// pairs) take flaps. Same params + same rng state => identical plan.
FaultPlan generate_chaos_plan(const ChaosParams& params,
                              const std::vector<net::NodeId>& crashable,
                              const std::vector<std::pair<net::NodeId, net::NodeId>>& links,
                              util::Rng& rng);

}  // namespace bass::fault
