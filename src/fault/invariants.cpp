#include "fault/invariants.h"

#include <algorithm>
#include <variant>

#include "util/logging.h"
#include "util/strings.h"

namespace bass::fault {

Invariants::Invariants(core::Orchestrator& orchestrator, obs::Recorder* recorder,
                       InvariantConfig config)
    : orch_(&orchestrator), recorder_(recorder), config_(config) {
  if (recorder_ != nullptr) {
    m_violations_ = &recorder_->metrics().counter("fault.invariant_violations");
  }
}

void Invariants::attach() {
  orch_->set_round_hook([this](core::DeploymentId) { check_now(); });
}

int Invariants::check_now() {
  violations_at_pass_start_ = violations_;
  check_capacity();
  check_placement();
  check_accounting();
  check_migration_discipline();
  check_journal_consistency();
  return violations_ - violations_at_pass_start_;
}

void Invariants::violate(const char* name, const std::string& detail) {
  ++violations_;
  util::log_warn() << "INVARIANT VIOLATION [" << name << "] " << detail;
  if (recorder_ != nullptr) {
    m_violations_->inc();
    obs::InvariantViolation violation;
    violation.at = orch_->simulation().now();
    violation.name = name;
    violation.detail = detail;
    violation.span = recorder_->new_span();
    // Round-hook checks run inside the controller round's span scope, so
    // the violation points at the round whose state it caught.
    violation.parent = recorder_->current_span();
    recorder_->record(std::move(violation));
  }
  if (violation_hook_) violation_hook_(name, detail);
}

void Invariants::check_capacity() {
  net::Network& network = orch_->network();
  const net::Topology& topology = network.topology();
  for (int l = 0; l < topology.link_count(); ++l) {
    const double capacity = static_cast<double>(topology.link(l).capacity);
    const double allocated = static_cast<double>(network.link_allocated(l));
    const double slack = std::max(capacity * config_.capacity_rel_slack,
                                  config_.capacity_abs_slack);
    if (allocated > capacity + slack) {
      violate("link_overallocated",
              util::str_format("link%d allocated %.0f bps > capacity %.0f bps", l,
                               allocated, capacity));
    }
  }
}

void Invariants::check_placement() {
  for (core::DeploymentId id = 0; id < orch_->deployment_count(); ++id) {
    const app::AppGraph& app = orch_->app(id);
    for (app::ComponentId c = 0; c < app.component_count(); ++c) {
      if (!orch_->is_up(id, c)) continue;
      const net::NodeId node = orch_->node_of(id, c);
      if (orch_->node_failed(node)) {
        violate("component_on_failed_node",
                util::str_format("'%s' (dep %d) is up on failed node%d",
                                 app.component(c).name.c_str(), id, node));
      }
    }
  }
}

void Invariants::check_accounting() {
  // Expected usage per node: resources of every UP component placed there.
  std::map<net::NodeId, cluster::NodeUsage> expected;
  for (core::DeploymentId id = 0; id < orch_->deployment_count(); ++id) {
    const app::AppGraph& app = orch_->app(id);
    for (app::ComponentId c = 0; c < app.component_count(); ++c) {
      if (!orch_->is_up(id, c)) continue;
      const auto& comp = app.component(c);
      if (comp.cpu_milli <= 0 && comp.memory_mb <= 0) continue;
      auto& u = expected[orch_->node_of(id, c)];
      u.cpu_milli += comp.cpu_milli;
      u.memory_mb += comp.memory_mb;
    }
  }
  const cluster::ClusterState& cluster = orch_->cluster();
  for (net::NodeId node : cluster.nodes()) {
    const cluster::NodeUsage& actual = cluster.usage(node);
    const cluster::NodeUsage want = expected.count(node) ? expected[node]
                                                         : cluster::NodeUsage{};
    if (actual.cpu_milli != want.cpu_milli || actual.memory_mb != want.memory_mb) {
      violate("resource_accounting",
              util::str_format(
                  "node%d usage (%lld mcpu, %lld MiB) != placed components "
                  "(%lld mcpu, %lld MiB)",
                  node, static_cast<long long>(actual.cpu_milli),
                  static_cast<long long>(actual.memory_mb),
                  static_cast<long long>(want.cpu_milli),
                  static_cast<long long>(want.memory_mb)));
    }
  }
}

void Invariants::check_migration_discipline() {
  const auto& events = orch_->migration_events();
  for (; next_migration_ < events.size(); ++next_migration_) {
    const core::MigrationEvent& ev = events[next_migration_];
    if (ev.reason != core::MoveReason::kController) continue;
    const controller::MigrationParams* params = orch_->migration_params(ev.deployment);
    const std::pair<int, int> comp_key{ev.deployment, ev.component};

    // Cooldown: consecutive controller moves of one component must start at
    // least min_migration_gap apart.
    auto last = last_controller_start_.find(comp_key);
    if (last != last_controller_start_.end() && params != nullptr &&
        ev.started_at - last->second < params->min_migration_gap) {
      violate("migration_cooldown",
              util::str_format(
                  "dep %d component %d controller-moved %.1f s after the "
                  "previous move (min gap %.1f s)",
                  ev.deployment, ev.component,
                  sim::to_seconds(ev.started_at - last->second),
                  sim::to_seconds(params->min_migration_gap)));
    }
    last_controller_start_[comp_key] = ev.started_at;

    // Pair rule + round cap: controller moves starting at the same instant
    // belong to one evaluation round.
    auto& round = round_moves_[{ev.deployment, ev.started_at}];
    const app::AppGraph& app = orch_->app(ev.deployment);
    for (int other : round) {
      const bool communicate =
          std::any_of(app.edges().begin(), app.edges().end(), [&](const app::Edge& e) {
            return (e.from == ev.component && e.to == other) ||
                   (e.from == other && e.to == ev.component);
          });
      if (communicate) {
        violate("pair_rule",
                util::str_format(
                    "dep %d moved both endpoints of edge %d<->%d in one round",
                    ev.deployment, other, ev.component));
      }
    }
    round.push_back(ev.component);
    if (params != nullptr && params->max_migrations_per_round > 0 &&
        static_cast<int>(round.size()) > params->max_migrations_per_round) {
      violate("round_cap",
              util::str_format("dep %d started %d controller moves in one round "
                               "(cap %d)",
                               ev.deployment, static_cast<int>(round.size()),
                               params->max_migrations_per_round));
    }
  }
}

void Invariants::check_journal_consistency() {
  if (!config_.check_journal || recorder_ == nullptr || !recorder_->enabled()) return;
  const obs::EventJournal& journal = recorder_->journal();
  // A full ring has forgotten its oldest events; the count check is only
  // meaningful while nothing was dropped.
  if (journal.dropped() > 0) return;
  std::size_t completed = 0;
  journal.for_each([&completed](const obs::Event& e) {
    if (std::holds_alternative<obs::MigrationCompleted>(e)) ++completed;
  });
  const std::size_t events = orch_->migration_events().size();
  if (completed != events) {
    violate("journal_migrations",
            util::str_format("journal has %zu migration_completed records but "
                             "migration_events() has %zu entries",
                             completed, events));
  }
}

}  // namespace bass::fault
