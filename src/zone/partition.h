// Spatial partitioning of a mesh topology into zones. A partition assigns
// every node to exactly one zone and names the directed links whose
// endpoints land in different zones — the border set the sharded
// orchestrator reconciles across. Partitioning is pure and deterministic:
// same topology + same config => same assignment, which the byte-identical
// journal contract depends on.
#pragma once

#include <vector>

#include "net/topology.h"

namespace bass::zone {

enum class PartitionMethod {
  // Multi-source BFS from farthest-point seeds, growing all zones in
  // round-robin lockstep: zones come out connected and near-balanced on any
  // connected mesh. Falls back to kChunks when the mesh is disconnected.
  kBfsBalanced,
  // Equal contiguous NodeId ranges. On generator topologies with contiguous
  // per-block ids (topo::CityGridGenerator) the chunks line up with city
  // blocks; on arbitrary id assignments zones may be disconnected.
  kChunks,
};

struct Partition {
  int zones = 0;
  std::vector<int> zone_of;                       // indexed by NodeId
  std::vector<std::vector<net::NodeId>> members;  // per zone, ascending ids
  std::vector<net::LinkId> border_links;          // directed, ascending ids
};

class ZonePartitioner {
 public:
  explicit ZonePartitioner(int zones,
                           PartitionMethod method = PartitionMethod::kBfsBalanced)
      : zones_(zones < 1 ? 1 : zones), method_(method) {}

  int zones() const { return zones_; }
  PartitionMethod method() const { return method_; }

  // Zone count is clamped to the node count; empty zones never occur.
  Partition partition(const net::Topology& topo) const;

 private:
  int zones_;
  PartitionMethod method_;
};

}  // namespace bass::zone
