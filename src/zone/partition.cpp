#include "zone/partition.h"

#include <algorithm>
#include <deque>
#include <limits>

namespace bass::zone {
namespace {

// Undirected neighbour lists with ascending neighbour order — the BFS
// visit order (and therefore the partition) must not depend on link
// insertion order.
std::vector<std::vector<net::NodeId>> adjacency(const net::Topology& topo) {
  std::vector<std::vector<net::NodeId>> adj(
      static_cast<std::size_t>(topo.node_count()));
  for (net::NodeId n = 0; n < topo.node_count(); ++n) {
    for (const net::LinkId l : topo.out_links(n)) {
      adj[static_cast<std::size_t>(n)].push_back(topo.link(l).dst);
    }
    auto& row = adj[static_cast<std::size_t>(n)];
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
  }
  return adj;
}

constexpr int kUnreached = std::numeric_limits<int>::max();

// BFS distance from every node to its nearest seed.
void multi_source_bfs(const std::vector<std::vector<net::NodeId>>& adj,
                      const std::vector<net::NodeId>& seeds,
                      std::vector<int>& dist) {
  dist.assign(adj.size(), kUnreached);
  std::deque<net::NodeId> queue;
  for (const net::NodeId s : seeds) {
    dist[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
  }
  while (!queue.empty()) {
    const net::NodeId n = queue.front();
    queue.pop_front();
    for (const net::NodeId m : adj[static_cast<std::size_t>(n)]) {
      if (dist[static_cast<std::size_t>(m)] != kUnreached) continue;
      dist[static_cast<std::size_t>(m)] = dist[static_cast<std::size_t>(n)] + 1;
      queue.push_back(m);
    }
  }
}

std::vector<int> assign_chunks(int nodes, int zones) {
  // Equal contiguous ranges; the first (nodes % zones) zones take the
  // remainder node each.
  std::vector<int> zone_of(static_cast<std::size_t>(nodes));
  const int base = nodes / zones;
  const int rem = nodes % zones;
  int next = 0;
  for (int z = 0; z < zones; ++z) {
    const int size = base + (z < rem ? 1 : 0);
    for (int i = 0; i < size; ++i) zone_of[static_cast<std::size_t>(next++)] = z;
  }
  return zone_of;
}

std::vector<int> assign_bfs(const std::vector<std::vector<net::NodeId>>& adj,
                            int zones) {
  const int nodes = static_cast<int>(adj.size());

  // Farthest-point seeding: node 0 first, then repeatedly the node farthest
  // from every existing seed (ties to the lowest id) — spreads seeds across
  // the mesh diameter without any geometry input.
  std::vector<net::NodeId> seeds{0};
  std::vector<int> dist;
  while (static_cast<int>(seeds.size()) < zones) {
    multi_source_bfs(adj, seeds, dist);
    net::NodeId best = net::kInvalidNode;
    int best_dist = -1;
    for (net::NodeId n = 0; n < nodes; ++n) {
      const int d = dist[static_cast<std::size_t>(n)];
      if (d == kUnreached || d == 0) continue;
      if (d > best_dist) {
        best_dist = d;
        best = n;
      }
    }
    if (best == net::kInvalidNode) {
      // Disconnected mesh (or fewer nodes than zones): BFS growth cannot
      // reach everything, so fall back to deterministic id chunks.
      return assign_chunks(nodes, zones);
    }
    seeds.push_back(best);
  }

  // Round-robin lockstep growth: each zone claims one node per turn from
  // its BFS frontier, so zone sizes stay within one claim of each other and
  // every zone is connected (each claim is adjacent to a claimed node).
  std::vector<int> zone_of(static_cast<std::size_t>(nodes), -1);
  std::vector<std::deque<net::NodeId>> frontier(static_cast<std::size_t>(zones));
  int claimed = 0;
  for (int z = 0; z < zones; ++z) {
    zone_of[static_cast<std::size_t>(seeds[static_cast<std::size_t>(z)])] = z;
    ++claimed;
    for (const net::NodeId m : adj[static_cast<std::size_t>(seeds[static_cast<std::size_t>(z)])]) {
      frontier[static_cast<std::size_t>(z)].push_back(m);
    }
  }
  while (claimed < nodes) {
    bool progress = false;
    for (int z = 0; z < zones && claimed < nodes; ++z) {
      auto& queue = frontier[static_cast<std::size_t>(z)];
      while (!queue.empty()) {
        const net::NodeId n = queue.front();
        queue.pop_front();
        if (zone_of[static_cast<std::size_t>(n)] != -1) continue;
        zone_of[static_cast<std::size_t>(n)] = z;
        ++claimed;
        progress = true;
        for (const net::NodeId m : adj[static_cast<std::size_t>(n)]) {
          if (zone_of[static_cast<std::size_t>(m)] == -1) queue.push_back(m);
        }
        break;  // one claim per zone per turn keeps sizes balanced
      }
    }
    if (!progress) {
      // Unreachable leftovers (disconnected mesh): chunk the stragglers.
      for (net::NodeId n = 0; n < nodes; ++n) {
        if (zone_of[static_cast<std::size_t>(n)] == -1) {
          zone_of[static_cast<std::size_t>(n)] = n % zones;
        }
      }
      break;
    }
  }
  return zone_of;
}

}  // namespace

Partition ZonePartitioner::partition(const net::Topology& topo) const {
  Partition out;
  const int nodes = topo.node_count();
  out.zones = std::min(zones_, std::max(nodes, 1));
  if (nodes == 0) {
    out.zones = 0;
    return out;
  }
  if (out.zones <= 1) {
    out.zones = 1;
    out.zone_of.assign(static_cast<std::size_t>(nodes), 0);
  } else if (method_ == PartitionMethod::kChunks) {
    out.zone_of = assign_chunks(nodes, out.zones);
  } else {
    out.zone_of = assign_bfs(adjacency(topo), out.zones);
  }

  out.members.resize(static_cast<std::size_t>(out.zones));
  for (net::NodeId n = 0; n < nodes; ++n) {
    out.members[static_cast<std::size_t>(out.zone_of[static_cast<std::size_t>(n)])]
        .push_back(n);
  }
  for (net::LinkId l = 0; l < topo.link_count(); ++l) {
    const net::Link& link = topo.link(l);
    if (out.zone_of[static_cast<std::size_t>(link.src)] !=
        out.zone_of[static_cast<std::size_t>(link.dst)]) {
      out.border_links.push_back(l);
    }
  }
  return out;
}

}  // namespace bass::zone
