#include "zone/sharded.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

#include "util/strings.h"

namespace bass::zone {
namespace {

util::Error err(const std::string& message) { return util::make_error(message); }

// Imposed border rates are integer bps; llround jitter of a single bit per
// second must not count as "the fixpoint moved" or steady state would
// re-settle every round.
constexpr net::Bps kRateEpsBps = 1;

// Distinct per-zone churn seeds derived from the scenario seed: the golden
// ratio stride keeps them far apart for any zone count while staying a pure
// function of (seed, zone) — replays and --jobs variations see identical
// schedules.
std::uint64_t zone_seed(std::uint64_t base, int zone) {
  return base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(zone + 1);
}

}  // namespace

ShardedOrchestrator::~ShardedOrchestrator() = default;

util::Expected<std::unique_ptr<ShardedOrchestrator>> ShardedOrchestrator::create(
    ShardedBuild build, std::size_t jobs) {
  if (build.topology.node_count() == 0) {
    return err("zones: topology has no nodes");
  }
  auto s = std::unique_ptr<ShardedOrchestrator>(new ShardedOrchestrator());
  s->cfg_ = build.zones;
  s->duration_ = build.duration;
  const sim::Duration interval = std::max<sim::Duration>(s->cfg_.round_interval, 1);
  s->cfg_.round_interval = interval;
  s->rounds_total_ = static_cast<int>(
      std::max<sim::Duration>(1, (build.duration + interval - 1) / interval));

  ZonePartitioner partitioner(s->cfg_.count, s->cfg_.method);
  s->partition_ = partitioner.partition(build.topology);

  const std::size_t links = static_cast<std::size_t>(build.topology.link_count());
  s->link_owners_.assign(links, {});
  s->recon_caps_.assign(links, 0.0);
  s->caps_stamp_.assign(links, 0);

  for (int z = 0; z < s->partition_.zones; ++z) {
    s->worlds_.push_back(std::make_unique<World>(build.recorder));
    s->worlds_.back()->zone = z;
    s->build_world(*s->worlds_.back(), build);
  }
  s->setup_transit(build);

  std::size_t workers = jobs;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers = std::min<std::size_t>(workers, s->worlds_.size());
  if (workers > 1) s->pool_ = std::make_unique<exec::Pool>(workers);
  return s;
}

util::Expected<std::unique_ptr<ShardedOrchestrator>> ShardedOrchestrator::from_ini(
    const util::IniFile& ini, std::size_t jobs) {
  const auto* zsec = ini.first_of_kind("zones");
  if (zsec == nullptr) return err("scenario has no [zones] section");
  if (ini.first_of_kind("serve") == nullptr) {
    return err("sharded orchestration requires a [serve] section");
  }

  ShardedBuild build;
  build.duration = scenario::parse_run_duration(ini);

  auto topo = scenario::build_topology(ini);
  if (!topo.ok()) return err(topo.error());
  scenario::TopologySpec spec = topo.take();
  build.topology = std::move(spec.topology);
  build.specs = std::move(spec.specs);

  auto serve = scenario::parse_serve_config(ini, build.duration);
  if (!serve.ok()) return err(serve.error());
  build.serve = serve.take();

  build.zones.count = static_cast<int>(zsec->number_or("count", 2));
  if (build.zones.count < 1) return err("[zones]: count must be >= 1");
  const std::string method = zsec->get_or("method", "bfs");
  if (method == "chunks") {
    build.zones.method = PartitionMethod::kChunks;
  } else if (method == "bfs") {
    build.zones.method = PartitionMethod::kBfsBalanced;
  } else {
    return err("[zones]: unknown method '" + method + "' (bfs | chunks)");
  }
  build.zones.round_interval =
      sim::seconds_f(zsec->number_or("round_interval_s", 10));
  build.zones.transit_per_border =
      static_cast<int>(zsec->number_or("transit_per_border", 1));
  build.zones.transit_bps =
      static_cast<net::Bps>(zsec->number_or("transit_mbps", 2.0) * 1e6);
  build.zones.max_reconcile_iterations =
      static_cast<int>(zsec->number_or("max_reconcile_iterations", 4));

  const auto* mon = ini.first_of_kind("monitor");
  build.monitor_enabled = mon == nullptr || mon->flag_or("enabled", true);
  if (mon != nullptr) {
    build.monitor.probe_interval =
        sim::seconds_f(mon->number_or("probe_interval_s", 30));
    build.monitor.headroom_frac = mon->number_or("headroom_frac", 0.10);
  }
  const auto* inv = ini.first_of_kind("invariants");
  build.invariants_enabled = inv == nullptr || inv->flag_or("enabled", true);
  if (const auto* mig = ini.first_of_kind("migration")) {
    build.orch.restart_duration = sim::seconds_f(mig->number_or("restart_s", 10.0));
  }
  if (const auto* obs_sec = ini.first_of_kind("obs")) {
    build.recorder.enabled = obs_sec->flag_or("enabled", true);
    build.recorder.journal_capacity = static_cast<std::size_t>(obs_sec->number_or(
        "journal_capacity", static_cast<double>(build.recorder.journal_capacity)));
  }
  return create(std::move(build), jobs);
}

void ShardedOrchestrator::build_world(World& w, const ShardedBuild& build) {
  const net::Topology& topo = build.topology;
  const std::vector<net::NodeId>& members =
      partition_.members[static_cast<std::size_t>(w.zone)];

  // Interior nodes first (ascending global id), then the one-hop halo:
  // remote endpoints of border links touching this zone.
  w.global_to_local.assign(static_cast<std::size_t>(topo.node_count()),
                           net::kInvalidNode);
  w.local_to_global = members;
  w.interior_count = static_cast<int>(members.size());
  std::vector<net::NodeId> halo;
  for (const net::LinkId gl : partition_.border_links) {
    const net::Link& link = topo.link(gl);
    if (partition_.zone_of[static_cast<std::size_t>(link.src)] == w.zone) {
      halo.push_back(link.dst);
    } else if (partition_.zone_of[static_cast<std::size_t>(link.dst)] == w.zone) {
      halo.push_back(link.src);
    }
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  w.local_to_global.insert(w.local_to_global.end(), halo.begin(), halo.end());
  for (std::size_t i = 0; i < w.local_to_global.size(); ++i) {
    w.global_to_local[static_cast<std::size_t>(w.local_to_global[i])] =
        static_cast<net::NodeId>(i);
  }

  net::Topology local;
  for (const net::NodeId g : w.local_to_global) local.add_node(topo.node_name(g));

  // Local links: every global link with both endpoints present and at least
  // one interior. Halo-halo links stay out — halo nodes exist only to
  // terminate border paths, not to route foreign traffic through the zone.
  // Iterate the src < dst direction of each pair once; the paired reverse
  // link carries the opposite direction's capacity.
  for (net::LinkId gl = 0; gl < topo.link_count(); ++gl) {
    const net::Link& link = topo.link(gl);
    if (link.src >= link.dst) continue;
    const net::NodeId la = w.global_to_local[static_cast<std::size_t>(link.src)];
    const net::NodeId lb = w.global_to_local[static_cast<std::size_t>(link.dst)];
    if (la == net::kInvalidNode || lb == net::kInvalidNode) continue;
    if (la >= w.interior_count && lb >= w.interior_count) continue;
    const auto rev = topo.link_between(link.dst, link.src);
    const net::Bps cap_ba = rev ? topo.link(*rev).capacity : link.capacity;
    const auto [ab, ba] = local.add_link(la, lb, link.capacity, cap_ba);
    w.link_to_global.resize(static_cast<std::size_t>(local.link_count()),
                            net::kInvalidLink);
    w.link_to_global[static_cast<std::size_t>(ab)] = gl;
    if (rev) w.link_to_global[static_cast<std::size_t>(ba)] = *rev;
    auto claim = [&](net::LinkId global, net::LinkId local_id) {
      for (LinkOwner& owner : link_owners_[static_cast<std::size_t>(global)]) {
        if (owner.zone == -1) {
          owner = {w.zone, local_id};
          return;
        }
      }
    };
    claim(gl, ab);
    if (rev) claim(*rev, ba);
  }

  for (std::size_t i = 0; i < w.local_to_global.size(); ++i) {
    cluster::NodeSpec spec;
    if (static_cast<int>(i) < w.interior_count) {
      spec = build.specs[static_cast<std::size_t>(w.local_to_global[i])];
    } else {
      spec.cpu_milli = 0;
      spec.memory_mb = 0;
      spec.schedulable = false;  // halo nodes never host components
    }
    w.cluster.add_node(static_cast<net::NodeId>(i), spec);
  }

  w.network = std::make_unique<net::Network>(w.sim, std::move(local));
  w.network->set_recorder(&w.recorder);
  w.transit_load.assign(static_cast<std::size_t>(topo.link_count()), 0.0);

  w.orch = std::make_unique<core::Orchestrator>(w.sim, *w.network, w.cluster,
                                                build.orch);
  w.orch->set_recorder(&w.recorder);
  if (build.monitor_enabled) {
    w.monitor = std::make_unique<monitor::NetMonitor>(*w.network, build.monitor);
    w.monitor->set_recorder(&w.recorder);
    w.orch->attach_monitor(w.monitor.get());
  }
  if (build.invariants_enabled) {
    w.invariants = std::make_unique<fault::Invariants>(*w.orch, &w.recorder);
    w.invariants->attach();
  }
  if (build.serving) {
    scenario::ServeConfig cfg = build.serve;
    cfg.churn.seed = zone_seed(build.serve.churn.seed, w.zone);
    cfg.churn.arrival_per_min =
        build.serve.churn.arrival_per_min / partition_.zones;
    cfg.churn.duration = build.duration;
    w.serving = std::make_unique<scenario::ServingLoop>(*w.orch, cfg,
                                                        w.monitor.get());
    w.serving->set_recorder(&w.recorder);
  }
}

void ShardedOrchestrator::setup_transit(const ShardedBuild& build) {
  if (cfg_.transit_per_border <= 0 || partition_.zones < 2) return;
  const net::Topology& topo = build.topology;
  int seq = 0;
  for (const net::LinkId gl : partition_.border_links) {
    const net::Link& link = topo.link(gl);
    const int za = partition_.zone_of[static_cast<std::size_t>(link.src)];
    const int zb = partition_.zone_of[static_cast<std::size_t>(link.dst)];
    World& a = *worlds_[static_cast<std::size_t>(za)];
    World& b = *worlds_[static_cast<std::size_t>(zb)];
    for (int k = 0; k < cfg_.transit_per_border; ++k, ++seq) {
      TransitFlow f;
      f.zone_a = za;
      f.zone_b = zb;
      f.demand = cfg_.transit_bps;
      // Rotate the intra-zone endpoints across members so transit couples
      // to different parts of each zone, not always the border router.
      f.a_src = static_cast<net::NodeId>((seq * 7) % a.interior_count);
      f.a_dst = a.global_to_local[static_cast<std::size_t>(link.dst)];
      f.b_src = b.global_to_local[static_cast<std::size_t>(link.src)];
      f.b_dst = static_cast<net::NodeId>((seq * 7 + 3) % b.interior_count);

      const auto map_path = [this](World& w, net::NodeId src, net::NodeId dst,
                                   std::vector<net::LinkId>& out) {
        out.clear();
        if (src == dst) return true;
        const std::vector<net::LinkId>& path = w.network->routing().path(src, dst);
        if (path.empty()) return false;
        for (const net::LinkId ll : path) {
          const net::LinkId g = w.link_to_global[static_cast<std::size_t>(ll)];
          if (g == net::kInvalidLink) return false;
          out.push_back(g);
        }
        return true;
      };
      if (!map_path(a, f.a_src, f.a_dst, f.a_path) ||
          !map_path(b, f.b_src, f.b_dst, f.b_path)) {
        ++skipped_transit_;
        continue;
      }
      f.union_links = f.a_path;
      f.union_links.insert(f.union_links.end(), f.b_path.begin(), f.b_path.end());
      std::sort(f.union_links.begin(), f.union_links.end());
      f.union_links.erase(
          std::unique(f.union_links.begin(), f.union_links.end()),
          f.union_links.end());
      ++a.border_halves;
      ++b.border_halves;
      transit_.push_back(std::move(f));
    }
  }
}

void ShardedOrchestrator::advance_all(sim::Time deadline, bool timed) {
  const auto task = [deadline, timed](World& w) {
    obs::ScopedGlobalRecorder guard(&w.recorder);
    const auto t0 = std::chrono::steady_clock::now();
    w.sim.run_until(deadline);
    if (timed) {
      w.round_wall_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
  };
  if (pool_) {
    for (auto& w : worlds_) {
      World* wp = w.get();
      pool_->submit([task, wp] { task(*wp); });
    }
    pool_->wait();
  } else {
    for (auto& w : worlds_) task(*w);
  }
}

void ShardedOrchestrator::start() {
  if (started_) return;
  started_ = true;

  // Warmup mirrors Scenario::from_ini: monitors pre-probe for two sim
  // seconds so schedulers see measured capacities before the first round.
  for (auto& w : worlds_) {
    if (w->monitor) {
      obs::ScopedGlobalRecorder guard(&w->recorder);
      w->monitor->start();
    }
  }
  advance_all(sim::seconds(2), false);
  base_ = sim::seconds(2);

  // Border transit comes up at the end of warmup, serially in border-link
  // order — every run (any --jobs) opens the same streams in the same
  // order. One batch per zone: opening T streams individually re-settles
  // the shared contention component each time (O(T^2) flow touches);
  // batched, each zone settles once.
  {
    std::vector<std::unique_ptr<net::Network::BatchUpdate>> batches(
        worlds_.size());
    for (TransitFlow& f : transit_) {
      World& a = *worlds_[static_cast<std::size_t>(f.zone_a)];
      World& b = *worlds_[static_cast<std::size_t>(f.zone_b)];
      if (!batches[static_cast<std::size_t>(f.zone_a)]) {
        batches[static_cast<std::size_t>(f.zone_a)] =
            std::make_unique<net::Network::BatchUpdate>(*a.network);
      }
      if (!batches[static_cast<std::size_t>(f.zone_b)]) {
        batches[static_cast<std::size_t>(f.zone_b)] =
            std::make_unique<net::Network::BatchUpdate>(*b.network);
      }
      {
        obs::ScopedGlobalRecorder guard(&a.recorder);
        f.a_stream = a.network->open_stream(f.a_src, f.a_dst, f.demand);
      }
      {
        obs::ScopedGlobalRecorder guard(&b.recorder);
        f.b_stream = b.network->open_stream(f.b_src, f.b_dst, f.demand);
      }
      f.imposed_a = f.demand;
      f.imposed_b = f.demand;
    }
    for (std::size_t z = 0; z < worlds_.size(); ++z) {
      if (!batches[z]) continue;
      obs::ScopedGlobalRecorder guard(&worlds_[z]->recorder);
      batches[z].reset();  // settle this zone once
    }
  }

  for (auto& w : worlds_) {
    if (w->serving) {
      obs::ScopedGlobalRecorder guard(&w->recorder);
      w->serving->start();
    }
  }
}

int ShardedOrchestrator::reconcile() {
  if (transit_.empty()) return 0;
  int changed_iterations = 0;
  std::vector<net::AllocEntityRef> entities;
  entities.reserve(transit_.size());
  for (const TransitFlow& f : transit_) {
    entities.push_back({static_cast<double>(f.demand), &f.union_links});
  }

  for (int pass = 0; pass < cfg_.max_reconcile_iterations; ++pass) {
    // Transit load per world per global link, from the halves' current
    // zone-allocated rates.
    for (auto& w : worlds_) {
      for (const net::LinkId gl : w->transit_touched) {
        w->transit_load[static_cast<std::size_t>(gl)] = 0.0;
      }
      w->transit_touched.clear();
    }
    const auto add_load = [](World& w, const std::vector<net::LinkId>& path,
                             double rate) {
      for (const net::LinkId gl : path) {
        if (w.transit_load[static_cast<std::size_t>(gl)] == 0.0) {
          w.transit_touched.push_back(gl);
        }
        w.transit_load[static_cast<std::size_t>(gl)] += rate;
      }
    };
    for (const TransitFlow& f : transit_) {
      World& a = *worlds_[static_cast<std::size_t>(f.zone_a)];
      World& b = *worlds_[static_cast<std::size_t>(f.zone_b)];
      add_load(a, f.a_path, static_cast<double>(a.network->stream_rate(f.a_stream)));
      add_load(b, f.b_path, static_cast<double>(b.network->stream_rate(f.b_stream)));
    }

    // Residual capacity for border traffic on every link the flows cross:
    // what the owning worlds' non-transit allocations leave over, min
    // across owners (border links are owned by both touching zones).
    ++stamp_;
    for (const TransitFlow& f : transit_) {
      for (const net::LinkId gl : f.union_links) {
        if (caps_stamp_[static_cast<std::size_t>(gl)] == stamp_) continue;
        caps_stamp_[static_cast<std::size_t>(gl)] = stamp_;
        double residual = std::numeric_limits<double>::max();
        for (const LinkOwner& owner : link_owners_[static_cast<std::size_t>(gl)]) {
          if (owner.zone == -1) continue;
          World& w = *worlds_[static_cast<std::size_t>(owner.zone)];
          const double non_transit =
              static_cast<double>(w.network->link_allocated(owner.local)) -
              w.transit_load[static_cast<std::size_t>(gl)];
          const double avail =
              static_cast<double>(w.network->link_capacity(owner.local)) -
              non_transit;
          residual = std::min(residual, avail);
        }
        recon_caps_[static_cast<std::size_t>(gl)] = std::max(residual, 0.0);
      }
    }

    const std::vector<double>& rates = border_solver_.solve(recon_caps_, entities);

    // Impose the union-solve as demand caps on both halves; each zone
    // settles once per pass via a batch update.
    std::vector<std::unique_ptr<net::Network::BatchUpdate>> batches(worlds_.size());
    const auto batch_for = [&](int zone) -> void {
      if (!batches[static_cast<std::size_t>(zone)]) {
        batches[static_cast<std::size_t>(zone)] =
            std::make_unique<net::Network::BatchUpdate>(
                *worlds_[static_cast<std::size_t>(zone)]->network);
      }
    };
    bool changed = false;
    for (std::size_t i = 0; i < transit_.size(); ++i) {
      TransitFlow& f = transit_[i];
      const net::Bps target = std::clamp<net::Bps>(
          static_cast<net::Bps>(std::llround(rates[i])), 0, f.demand);
      if (std::llabs(target - f.imposed_a) > kRateEpsBps) {
        batch_for(f.zone_a);
        obs::ScopedGlobalRecorder guard(
            &worlds_[static_cast<std::size_t>(f.zone_a)]->recorder);
        worlds_[static_cast<std::size_t>(f.zone_a)]->network->set_stream_demand(
            f.a_stream, target);
        f.imposed_a = target;
        changed = true;
      }
      if (std::llabs(target - f.imposed_b) > kRateEpsBps) {
        batch_for(f.zone_b);
        obs::ScopedGlobalRecorder guard(
            &worlds_[static_cast<std::size_t>(f.zone_b)]->recorder);
        worlds_[static_cast<std::size_t>(f.zone_b)]->network->set_stream_demand(
            f.b_stream, target);
        f.imposed_b = target;
        changed = true;
      }
    }
    batches.clear();  // settle all touched zones
    if (!changed) break;
    ++changed_iterations;
  }
  return changed_iterations;
}

void ShardedOrchestrator::run_round() {
  if (!started_) start();
  const int r = round_;
  const sim::Time deadline =
      base_ + static_cast<sim::Time>(r + 1) * cfg_.round_interval;
  advance_all(deadline, true);
  const int iterations = reconcile();
  reconcile_total_ += iterations;
  ++round_;

  // Coordinator journal + metrics, serially — deterministic regardless of
  // worker count. The summary span parents the per-zone records.
  int total_flows = 0;
  int total_halves = 0;
  for (const auto& w : worlds_) {
    total_flows += static_cast<int>(w->network->stream_count());
    total_halves += w->border_halves;
  }
  obs::ZoneRound summary;
  summary.at = deadline;
  summary.zone = -1;
  summary.round = r;
  summary.flows = total_flows;
  summary.border_streams = total_halves;
  summary.recon_iterations = iterations;
  summary.span = coordinator_.new_span();
  coordinator_.record(obs::Event{summary});

  obs::MetricsRegistry& metrics = coordinator_.metrics();
  metrics.counter("zone.rounds").inc();
  metrics.counter("zone.reconcile_iterations").add(iterations);
  for (const auto& w : worlds_) {
    const obs::Labels labels{{"zone", std::to_string(w->zone)}};
    obs::ZoneRound zr;
    zr.at = deadline;
    zr.zone = w->zone;
    zr.round = r;
    zr.flows = static_cast<int>(w->network->stream_count());
    zr.border_streams = w->border_halves;
    zr.recon_iterations = iterations;
    zr.span = coordinator_.new_span();
    zr.parent = summary.span;
    coordinator_.record(obs::Event{zr});
    metrics.log_timer_us("zone.round_wall_us", labels).observe(w->round_wall_us);
    metrics.gauge("zone.border_streams", labels)
        .set(static_cast<double>(w->border_halves));
    metrics.gauge("zone.flows", labels).set(static_cast<double>(zr.flows));
  }
}

void ShardedOrchestrator::finish() {
  if (finished_) return;
  if (!started_) start();
  finished_ = true;

  // Drain mirrors Scenario::run(): two extra sim-minutes with the serving
  // loops live so in-flight admissions and migrations resolve.
  const sim::Time end =
      base_ + static_cast<sim::Time>(round_) * cfg_.round_interval;
  advance_all(end + sim::minutes(2), false);

  report_ = ShardedReport{};
  for (auto& w : worlds_) {
    obs::ScopedGlobalRecorder guard(&w->recorder);
    if (w->serving) w->serving->stop();
    if (w->monitor) w->monitor->stop();
    if (w->invariants) w->invariants->check_now();
  }

  // Fold every zone's instruments into the coordinator registry under an
  // added {zone} label, so one metrics snapshot covers the whole city.
  obs::MetricsRegistry& dst = coordinator_.metrics();
  for (auto& w : worlds_) {
    const std::string zone_label = std::to_string(w->zone);
    const auto relabel = [&zone_label](const obs::Labels& labels) {
      obs::Labels out = labels;
      out.emplace_back("zone", zone_label);
      return out;
    };
    const obs::MetricsRegistry& src = w->recorder.metrics();
    src.for_each_counter([&](const std::string& name, const obs::Labels& labels,
                             const obs::Counter& c) {
      dst.counter(name, relabel(labels)).add(c.value());
    });
    src.for_each_gauge([&](const std::string& name, const obs::Labels& labels,
                           const obs::Gauge& g) {
      dst.gauge(name, relabel(labels)).set(g.value());
    });
    src.for_each_log_histogram([&](const std::string& name,
                                   const obs::Labels& labels,
                                   const obs::LogHistogram& h) {
      dst.log_histogram(name, relabel(labels)).merge(h);
    });
  }

  for (auto& w : worlds_) {
    if (w->serving) {
      const scenario::ServeStats& ss = w->serving->stats();
      const core::AdmissionStats& as = w->serving->admission_stats();
      report_.serve_arrivals += ss.arrivals;
      report_.serve_departures += ss.departures;
      report_.serve_admitted += as.admitted;
      report_.serve_rejected += as.rejected;
      report_.serve_deferred += as.deferred;
      report_.serve_cancelled += as.cancelled;
      report_.serve_peak_queue_depth =
          std::max(report_.serve_peak_queue_depth, as.peak_depth);
      report_.serve_live_at_end += ss.live_at_end;
    }
    report_.migrations += w->orch->migration_events().size();
    if (w->invariants) report_.invariant_violations += w->invariants->violations();
  }
  report_.rounds = round_;
  report_.reconcile_iterations = reconcile_total_;
  report_.border_links = partition_.border_links.size();
  report_.transit_streams = transit_.size();
}

ShardedReport ShardedOrchestrator::run() {
  start();
  while (round_ < rounds_total_) run_round();
  finish();
  return report_;
}

core::Orchestrator& ShardedOrchestrator::zone_orchestrator(int z) {
  return *worlds_[static_cast<std::size_t>(z)]->orch;
}

net::Network& ShardedOrchestrator::zone_network(int z) {
  return *worlds_[static_cast<std::size_t>(z)]->network;
}

obs::Recorder& ShardedOrchestrator::zone_recorder(int z) {
  return worlds_[static_cast<std::size_t>(z)]->recorder;
}

scenario::ServingLoop* ShardedOrchestrator::zone_serving(int z) {
  return worlds_[static_cast<std::size_t>(z)]->serving.get();
}

net::NodeId ShardedOrchestrator::local_node(int z, net::NodeId global) const {
  const World& w = *worlds_[static_cast<std::size_t>(z)];
  if (global < 0 ||
      global >= static_cast<net::NodeId>(w.global_to_local.size())) {
    return net::kInvalidNode;
  }
  return w.global_to_local[static_cast<std::size_t>(global)];
}

net::NodeId ShardedOrchestrator::global_node(int z, net::NodeId local) const {
  const World& w = *worlds_[static_cast<std::size_t>(z)];
  if (local < 0 || local >= static_cast<net::NodeId>(w.local_to_global.size())) {
    return net::kInvalidNode;
  }
  return w.local_to_global[static_cast<std::size_t>(local)];
}

std::string ShardedOrchestrator::merged_journal() {
  // Zone lines (annotated with their zone) in zone order, coordinator lines
  // last; a stable sort on t_us alone then interleaves them while
  // preserving that source order for ties. Every input is deterministic,
  // so the merged journal is too — across runs and across --jobs counts.
  std::vector<std::pair<long long, std::string>> lines;
  const auto add_lines = [&lines](const std::string& jsonl, int zone) {
    std::size_t start = 0;
    while (start < jsonl.size()) {
      std::size_t end = jsonl.find('\n', start);
      if (end == std::string::npos) end = jsonl.size();
      std::string line = jsonl.substr(start, end - start);
      start = end + 1;
      if (line.empty()) continue;
      const long long t = std::strtoll(line.c_str() + 8, nullptr, 10);
      if (zone >= 0 && !line.empty() && line.back() == '}') {
        line.pop_back();
        line += util::str_format(",\"zone\":%d}", zone);
      }
      lines.emplace_back(t, std::move(line));
    }
  };
  for (auto& w : worlds_) {
    add_lines(w->recorder.journal().to_jsonl(), w->zone);
  }
  add_lines(coordinator_.journal().to_jsonl(), -1);
  std::stable_sort(lines.begin(), lines.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (auto& [t, line] : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

}  // namespace bass::zone
