#include "zone/sharded.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <thread>

#include "util/strings.h"

namespace bass::zone {
namespace {

util::Error err(const std::string& message) { return util::make_error(message); }

// Imposed border rates are integer bps; llround jitter of a single bit per
// second must not count as "the fixpoint moved" or steady state would
// re-settle every round.
constexpr net::Bps kRateEpsBps = 1;

// Distinct per-zone churn seeds derived from the scenario seed: the golden
// ratio stride keeps them far apart for any zone count while staying a pure
// function of (seed, zone) — replays and --jobs variations see identical
// schedules.
std::uint64_t zone_seed(std::uint64_t base, int zone) {
  return base + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(zone + 1);
}

}  // namespace

ShardedOrchestrator::~ShardedOrchestrator() = default;

util::Expected<std::unique_ptr<ShardedOrchestrator>> ShardedOrchestrator::create(
    ShardedBuild build, std::size_t jobs) {
  if (build.topology.node_count() == 0) {
    return err("zones: topology has no nodes");
  }
  auto s = std::unique_ptr<ShardedOrchestrator>(new ShardedOrchestrator());
  s->cfg_ = build.zones;
  s->duration_ = build.duration;
  const sim::Duration interval = std::max<sim::Duration>(s->cfg_.round_interval, 1);
  s->cfg_.round_interval = interval;
  s->rounds_total_ = static_cast<int>(
      std::max<sim::Duration>(1, (build.duration + interval - 1) / interval));

  ZonePartitioner partitioner(s->cfg_.count, s->cfg_.method);
  s->partition_ = partitioner.partition(build.topology);

  const std::size_t links = static_cast<std::size_t>(build.topology.link_count());
  s->link_owners_.assign(links, {});
  s->recon_caps_.assign(links, 0.0);
  s->caps_stamp_.assign(links, 0);

  s->cfg_.max_skip = std::max(s->cfg_.max_skip, 1);
  for (int z = 0; z < s->partition_.zones; ++z) {
    s->worlds_.push_back(std::make_unique<World>(build.recorder));
    s->worlds_.back()->zone = z;
    s->build_world(*s->worlds_.back(), build);
  }
  s->setup_transit(build);
  s->build_components();
  s->cache_instruments();
  s->zone_dirty_.assign(s->worlds_.size(), 0);
  s->comp_dirty_.assign(s->components_.size(), 0);
  s->entity_scratch_.reserve(s->transit_.size());
  s->entity_flow_.reserve(s->transit_.size());

  std::size_t workers = jobs;
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers = std::min<std::size_t>(workers, s->worlds_.size());
  if (workers > 1) s->pool_ = std::make_unique<exec::Pool>(workers);
  return s;
}

util::Expected<std::unique_ptr<ShardedOrchestrator>> ShardedOrchestrator::from_ini(
    const util::IniFile& ini, std::size_t jobs) {
  const auto* zsec = ini.first_of_kind("zones");
  if (zsec == nullptr) return err("scenario has no [zones] section");
  if (ini.first_of_kind("serve") == nullptr) {
    return err("sharded orchestration requires a [serve] section");
  }

  ShardedBuild build;
  build.duration = scenario::parse_run_duration(ini);

  auto topo = scenario::build_topology(ini);
  if (!topo.ok()) return err(topo.error());
  scenario::TopologySpec spec = topo.take();
  build.topology = std::move(spec.topology);
  build.specs = std::move(spec.specs);

  auto serve = scenario::parse_serve_config(ini, build.duration);
  if (!serve.ok()) return err(serve.error());
  build.serve = serve.take();

  build.zones.count = static_cast<int>(zsec->number_or("count", 2));
  if (build.zones.count < 1) return err("[zones]: count must be >= 1");
  const std::string method = zsec->get_or("method", "bfs");
  if (method == "chunks") {
    build.zones.method = PartitionMethod::kChunks;
  } else if (method == "bfs") {
    build.zones.method = PartitionMethod::kBfsBalanced;
  } else {
    return err("[zones]: unknown method '" + method + "' (bfs | chunks)");
  }
  build.zones.round_interval =
      sim::seconds_f(zsec->number_or("round_interval_s", 10));
  build.zones.transit_per_border =
      static_cast<int>(zsec->number_or("transit_per_border", 1));
  build.zones.transit_bps =
      static_cast<net::Bps>(zsec->number_or("transit_mbps", 2.0) * 1e6);
  build.zones.transit_local = zsec->flag_or("transit_local", false);
  build.zones.max_reconcile_iterations =
      static_cast<int>(zsec->number_or("max_reconcile_iterations", 4));
  build.zones.gating = zsec->flag_or("gating", true);
  build.zones.max_skip = static_cast<int>(zsec->number_or("max_skip", 8));
  if (build.zones.max_skip < 1) return err("[zones]: max_skip must be >= 1");
  build.zones.active_zones =
      static_cast<int>(zsec->number_or("active_zones", 0));
  if (build.zones.active_zones < 0) {
    return err("[zones]: active_zones must be >= 0");
  }

  const auto* mon = ini.first_of_kind("monitor");
  build.monitor_enabled = mon == nullptr || mon->flag_or("enabled", true);
  if (mon != nullptr) {
    build.monitor.probe_interval =
        sim::seconds_f(mon->number_or("probe_interval_s", 30));
    build.monitor.headroom_frac = mon->number_or("headroom_frac", 0.10);
  }
  const auto* inv = ini.first_of_kind("invariants");
  build.invariants_enabled = inv == nullptr || inv->flag_or("enabled", true);
  if (const auto* mig = ini.first_of_kind("migration")) {
    build.orch.restart_duration = sim::seconds_f(mig->number_or("restart_s", 10.0));
  }
  if (const auto* obs_sec = ini.first_of_kind("obs")) {
    build.recorder.enabled = obs_sec->flag_or("enabled", true);
    build.recorder.journal_capacity = static_cast<std::size_t>(obs_sec->number_or(
        "journal_capacity", static_cast<double>(build.recorder.journal_capacity)));
  }
  return create(std::move(build), jobs);
}

void ShardedOrchestrator::build_world(World& w, const ShardedBuild& build) {
  const net::Topology& topo = build.topology;
  const std::vector<net::NodeId>& members =
      partition_.members[static_cast<std::size_t>(w.zone)];

  // Interior nodes first (ascending global id), then the one-hop halo:
  // remote endpoints of border links touching this zone.
  w.global_to_local.assign(static_cast<std::size_t>(topo.node_count()),
                           net::kInvalidNode);
  w.local_to_global = members;
  w.interior_count = static_cast<int>(members.size());
  std::vector<net::NodeId> halo;
  for (const net::LinkId gl : partition_.border_links) {
    const net::Link& link = topo.link(gl);
    if (partition_.zone_of[static_cast<std::size_t>(link.src)] == w.zone) {
      halo.push_back(link.dst);
    } else if (partition_.zone_of[static_cast<std::size_t>(link.dst)] == w.zone) {
      halo.push_back(link.src);
    }
  }
  std::sort(halo.begin(), halo.end());
  halo.erase(std::unique(halo.begin(), halo.end()), halo.end());
  w.local_to_global.insert(w.local_to_global.end(), halo.begin(), halo.end());
  for (std::size_t i = 0; i < w.local_to_global.size(); ++i) {
    w.global_to_local[static_cast<std::size_t>(w.local_to_global[i])] =
        static_cast<net::NodeId>(i);
  }

  net::Topology local;
  for (const net::NodeId g : w.local_to_global) local.add_node(topo.node_name(g));

  // Local links: every global link with both endpoints present and at least
  // one interior. Halo-halo links stay out — halo nodes exist only to
  // terminate border paths, not to route foreign traffic through the zone.
  // Iterate the src < dst direction of each pair once; the paired reverse
  // link carries the opposite direction's capacity.
  for (net::LinkId gl = 0; gl < topo.link_count(); ++gl) {
    const net::Link& link = topo.link(gl);
    if (link.src >= link.dst) continue;
    const net::NodeId la = w.global_to_local[static_cast<std::size_t>(link.src)];
    const net::NodeId lb = w.global_to_local[static_cast<std::size_t>(link.dst)];
    if (la == net::kInvalidNode || lb == net::kInvalidNode) continue;
    if (la >= w.interior_count && lb >= w.interior_count) continue;
    const auto rev = topo.link_between(link.dst, link.src);
    const net::Bps cap_ba = rev ? topo.link(*rev).capacity : link.capacity;
    const auto [ab, ba] = local.add_link(la, lb, link.capacity, cap_ba);
    w.link_to_global.resize(static_cast<std::size_t>(local.link_count()),
                            net::kInvalidLink);
    w.link_to_global[static_cast<std::size_t>(ab)] = gl;
    if (rev) w.link_to_global[static_cast<std::size_t>(ba)] = *rev;
    auto claim = [&](net::LinkId global, net::LinkId local_id) {
      for (LinkOwner& owner : link_owners_[static_cast<std::size_t>(global)]) {
        if (owner.zone == -1) {
          owner = {w.zone, local_id};
          return;
        }
      }
    };
    claim(gl, ab);
    if (rev) claim(*rev, ba);
  }

  for (std::size_t i = 0; i < w.local_to_global.size(); ++i) {
    cluster::NodeSpec spec;
    if (static_cast<int>(i) < w.interior_count) {
      spec = build.specs[static_cast<std::size_t>(w.local_to_global[i])];
    } else {
      spec.cpu_milli = 0;
      spec.memory_mb = 0;
      spec.schedulable = false;  // halo nodes never host components
    }
    w.cluster.add_node(static_cast<net::NodeId>(i), spec);
  }

  w.network = std::make_unique<net::Network>(w.sim, std::move(local));
  w.network->set_recorder(&w.recorder);
  w.transit_load.assign(static_cast<std::size_t>(topo.link_count()), 0.0);

  w.orch = std::make_unique<core::Orchestrator>(w.sim, *w.network, w.cluster,
                                                build.orch);
  w.orch->set_recorder(&w.recorder);
  if (build.monitor_enabled) {
    w.monitor = std::make_unique<monitor::NetMonitor>(*w.network, build.monitor);
    w.monitor->set_recorder(&w.recorder);
    w.orch->attach_monitor(w.monitor.get());
  }
  if (build.invariants_enabled) {
    w.invariants = std::make_unique<fault::Invariants>(*w.orch, &w.recorder);
    w.invariants->attach();
  }
  if (build.serving) {
    scenario::ServeConfig cfg = build.serve;
    cfg.churn.seed = zone_seed(build.serve.churn.seed, w.zone);
    if (cfg_.active_zones > 0) {
      // Sparse-churn shaping: the whole configured arrival rate lands on
      // the first active_zones zones; the rest serve an empty schedule.
      const int active = std::min(cfg_.active_zones, partition_.zones);
      cfg.churn.arrival_per_min =
          w.zone < active ? build.serve.churn.arrival_per_min / active : 0.0;
    } else {
      cfg.churn.arrival_per_min =
          build.serve.churn.arrival_per_min / partition_.zones;
    }
    cfg.churn.duration = build.duration;
    w.serving = std::make_unique<scenario::ServingLoop>(*w.orch, cfg,
                                                        w.monitor.get());
    w.serving->set_recorder(&w.recorder);
  }
}

void ShardedOrchestrator::setup_transit(const ShardedBuild& build) {
  if (cfg_.transit_per_border <= 0 || partition_.zones < 2) return;
  const net::Topology& topo = build.topology;
  int seq = 0;
  for (const net::LinkId gl : partition_.border_links) {
    const net::Link& link = topo.link(gl);
    const int za = partition_.zone_of[static_cast<std::size_t>(link.src)];
    const int zb = partition_.zone_of[static_cast<std::size_t>(link.dst)];
    World& a = *worlds_[static_cast<std::size_t>(za)];
    World& b = *worlds_[static_cast<std::size_t>(zb)];
    for (int k = 0; k < cfg_.transit_per_border; ++k, ++seq) {
      TransitFlow f;
      f.zone_a = za;
      f.zone_b = zb;
      f.demand = cfg_.transit_bps;
      if (cfg_.transit_local) {
        // Border-router endpoints: both halves collapse onto the border
        // link itself, so each border's flows contend only with each other.
        f.a_src = a.global_to_local[static_cast<std::size_t>(link.src)];
        f.b_dst = b.global_to_local[static_cast<std::size_t>(link.dst)];
      } else {
        // Rotate the intra-zone endpoints across members so transit couples
        // to different parts of each zone, not always the border router.
        f.a_src = static_cast<net::NodeId>((seq * 7) % a.interior_count);
        f.b_dst = static_cast<net::NodeId>((seq * 7 + 3) % b.interior_count);
      }
      f.a_dst = a.global_to_local[static_cast<std::size_t>(link.dst)];
      f.b_src = b.global_to_local[static_cast<std::size_t>(link.src)];

      const auto map_path = [this](World& w, net::NodeId src, net::NodeId dst,
                                   std::vector<net::LinkId>& out) {
        out.clear();
        if (src == dst) return true;
        const std::vector<net::LinkId>& path = w.network->routing().path(src, dst);
        if (path.empty()) return false;
        for (const net::LinkId ll : path) {
          const net::LinkId g = w.link_to_global[static_cast<std::size_t>(ll)];
          if (g == net::kInvalidLink) return false;
          out.push_back(g);
        }
        return true;
      };
      if (!map_path(a, f.a_src, f.a_dst, f.a_path) ||
          !map_path(b, f.b_src, f.b_dst, f.b_path)) {
        ++skipped_transit_;
        continue;
      }
      f.union_links = f.a_path;
      f.union_links.insert(f.union_links.end(), f.b_path.begin(), f.b_path.end());
      std::sort(f.union_links.begin(), f.union_links.end());
      f.union_links.erase(
          std::unique(f.union_links.begin(), f.union_links.end()),
          f.union_links.end());
      ++a.border_halves;
      ++b.border_halves;
      transit_.push_back(std::move(f));
    }
  }
}

void ShardedOrchestrator::build_components() {
  // Union-find over transit flows: flows sharing any global link coalesce.
  // The grouping is a pure function of the (deterministic) transit layout,
  // so component ids and orders are identical across runs and --jobs.
  const std::size_t n = transit_.size();
  flow_component_.assign(n, -1);
  if (n == 0) return;
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  const auto find = [&parent](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<std::size_t> link_flow(link_owners_.size(), kNone);
  for (std::size_t i = 0; i < n; ++i) {
    for (const net::LinkId gl : transit_[i].union_links) {
      std::size_t& seen = link_flow[static_cast<std::size_t>(gl)];
      if (seen == kNone) {
        seen = i;
      } else {
        parent[find(i)] = find(seen);
      }
    }
  }

  // Components numbered by their lowest flow index; flows listed ascending.
  std::vector<int> comp_of_root(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = find(i);
    if (comp_of_root[root] == -1) {
      comp_of_root[root] = static_cast<int>(components_.size());
      components_.emplace_back();
    }
    const int c = comp_of_root[root];
    flow_component_[i] = c;
    components_[static_cast<std::size_t>(c)].flows.push_back(i);
  }
  const auto sort_dedup = [](auto& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  for (BorderComponent& comp : components_) {
    for (const std::size_t fi : comp.flows) {
      const TransitFlow& f = transit_[fi];
      comp.links.insert(comp.links.end(), f.union_links.begin(),
                        f.union_links.end());
      comp.load_zones.push_back(f.zone_a);
      comp.load_zones.push_back(f.zone_b);
    }
    sort_dedup(comp.links);
    sort_dedup(comp.load_zones);
    for (const net::LinkId gl : comp.links) {
      for (const LinkOwner& owner : link_owners_[static_cast<std::size_t>(gl)]) {
        if (owner.zone != -1) comp.owner_zones.push_back(owner.zone);
      }
    }
    sort_dedup(comp.owner_zones);
  }
}

void ShardedOrchestrator::cache_instruments() {
  obs::MetricsRegistry& metrics = coordinator_.metrics();
  m_rounds_ = &metrics.counter("zone.rounds");
  m_recon_iterations_ = &metrics.counter("zone.reconcile_iterations");
  m_dirty_borders_ = &metrics.counter("zone.dirty_borders");
  for (auto& w : worlds_) {
    const obs::Labels labels{{"zone", std::to_string(w->zone)}};
    w->m_round_wall = &metrics.log_timer_us("zone.round_wall_us", labels);
    w->m_border_streams = &metrics.gauge("zone.border_streams", labels);
    w->m_flows = &metrics.gauge("zone.flows", labels);
    w->m_skipped_rounds = &metrics.counter("zone.skipped_rounds", labels);
  }
}

void ShardedOrchestrator::advance_all(sim::Time deadline, bool timed) {
  const auto task = [deadline, timed](World& w) {
    obs::ScopedGlobalRecorder guard(&w.recorder);
    const auto t0 = std::chrono::steady_clock::now();
    w.sim.run_until(deadline);
    if (timed) {
      w.round_wall_us = std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    }
  };
  if (pool_) {
    for (auto& w : worlds_) {
      World* wp = w.get();
      pool_->submit([task, wp] { task(*wp); });
    }
    pool_->wait();
  } else {
    for (auto& w : worlds_) task(*w);
  }
}

void ShardedOrchestrator::advance_due(sim::Time deadline) {
  const auto task = [deadline](World& w) {
    obs::ScopedGlobalRecorder guard(&w.recorder);
    const auto t0 = std::chrono::steady_clock::now();
    w.sim.run_until(deadline);
    w.round_wall_us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  };
  if (pool_) {
    for (auto& w : worlds_) {
      if (!w->due) continue;
      World* wp = w.get();
      pool_->submit([task, wp] { task(*wp); });
    }
    pool_->wait();
  } else {
    for (auto& w : worlds_) {
      if (w->due) task(*w);
    }
  }
}

bool ShardedOrchestrator::zone_due(World& w, sim::Time deadline) {
  // The activity summary. Every class but the heartbeat is also visible as
  // a scheduled event, so the kActTimer probe alone decides correctness;
  // the named classes exist for the census and cost nothing measurable.
  bool due = false;
  if (w.serving != nullptr && w.serving->churn_due(deadline)) {
    ++w.activity[kActChurn];
    due = true;
  }
  if (w.serving != nullptr && w.serving->queue_depth() > 0) {
    ++w.activity[kActQueue];
    due = true;
  }
  if (w.orch->live_deployment_count() > 0) {
    ++w.activity[kActLive];
    due = true;
  }
  if (!w.orch->failed_nodes().empty()) {
    ++w.activity[kActFault];
    due = true;
  }
  if (w.monitor != nullptr) {
    const int violations = w.monitor->violation_count();
    if (violations != w.probe_violations_seen) {
      w.probe_violations_seen = violations;
      ++w.activity[kActProbe];
      due = true;
    }
  }
  if (w.sim.has_event_before(deadline)) {
    ++w.activity[kActTimer];
    due = true;
  }
  if (!due && w.consecutive_skips >= cfg_.max_skip) {
    ++w.activity[kActHeartbeat];
    due = true;
  }
  return due;
}

void ShardedOrchestrator::start() {
  if (started_) return;
  started_ = true;

  // Warmup mirrors Scenario::from_ini: monitors pre-probe for two sim
  // seconds so schedulers see measured capacities before the first round.
  for (auto& w : worlds_) {
    if (w->monitor) {
      obs::ScopedGlobalRecorder guard(&w->recorder);
      w->monitor->start();
    }
  }
  advance_all(sim::seconds(2), false);
  base_ = sim::seconds(2);

  // Border transit comes up at the end of warmup, serially in border-link
  // order — every run (any --jobs) opens the same streams in the same
  // order. One batch per zone: opening T streams individually re-settles
  // the shared contention component each time (O(T^2) flow touches);
  // batched, each zone settles once.
  {
    std::vector<std::unique_ptr<net::Network::BatchUpdate>> batches(
        worlds_.size());
    for (TransitFlow& f : transit_) {
      World& a = *worlds_[static_cast<std::size_t>(f.zone_a)];
      World& b = *worlds_[static_cast<std::size_t>(f.zone_b)];
      if (!batches[static_cast<std::size_t>(f.zone_a)]) {
        batches[static_cast<std::size_t>(f.zone_a)] =
            std::make_unique<net::Network::BatchUpdate>(*a.network);
      }
      if (!batches[static_cast<std::size_t>(f.zone_b)]) {
        batches[static_cast<std::size_t>(f.zone_b)] =
            std::make_unique<net::Network::BatchUpdate>(*b.network);
      }
      {
        obs::ScopedGlobalRecorder guard(&a.recorder);
        f.a_stream = a.network->open_stream(f.a_src, f.a_dst, f.demand);
      }
      {
        obs::ScopedGlobalRecorder guard(&b.recorder);
        f.b_stream = b.network->open_stream(f.b_src, f.b_dst, f.demand);
      }
      f.imposed_a = f.demand;
      f.imposed_b = f.demand;
    }
    for (std::size_t z = 0; z < worlds_.size(); ++z) {
      if (!batches[z]) continue;
      obs::ScopedGlobalRecorder guard(&worlds_[z]->recorder);
      batches[z].reset();  // settle this zone once
    }
  }

  for (auto& w : worlds_) {
    if (w->serving) {
      obs::ScopedGlobalRecorder guard(&w->recorder);
      w->serving->start();
    }
  }
}

int ShardedOrchestrator::reconcile() {
  if (transit_.empty()) return 0;
  int changed_iterations = 0;
  bool rebuilt_any = false;
  const bool gate = cfg_.gating;

  for (int pass = 0; pass < cfg_.max_reconcile_iterations; ++pass) {
    // Which zones reallocated since we last looked. Every allocation-moving
    // path — stream open/close, demand change, capacity shift — runs
    // through Network::reallocate(), which bumps the counter; transit
    // rates and link_allocated can only move with it. Ungated mode treats
    // everything as dirty, reproducing the pre-gating pass exactly.
    bool any_zone_dirty = false;
    for (auto& w : worlds_) {
      const std::int64_t marker = w->network->alloc_stats().reallocations;
      const bool dirty = !gate || marker != w->recon_marker;
      w->recon_marker = marker;
      zone_dirty_[static_cast<std::size_t>(w->zone)] =
          static_cast<std::uint8_t>(dirty);
      any_zone_dirty |= dirty;
    }
    if (!any_zone_dirty) break;

    // A component is dirty when any owner zone of any of its links
    // reallocated. Clean components are bitwise fixpoints: their links'
    // residuals and their flows' rates are untouched since the solve that
    // imposed them, and the max-min fill is component-local — re-solving
    // would reproduce the imposed rates to the bit.
    int dirty_comps = 0;
    std::size_t dirty_links = 0;
    for (std::size_t ci = 0; ci < components_.size(); ++ci) {
      const BorderComponent& comp = components_[ci];
      bool dirty = false;
      for (const int z : comp.owner_zones) {
        if (zone_dirty_[static_cast<std::size_t>(z)] != 0) {
          dirty = true;
          break;
        }
      }
      comp_dirty_[ci] = static_cast<std::uint8_t>(dirty);
      if (dirty) {
        ++dirty_comps;
        dirty_links += comp.links.size();
      }
    }
    if (dirty_comps == 0) break;
    border_rebuilds_ += dirty_comps;
    if (m_dirty_borders_ != nullptr) m_dirty_borders_->add(dirty_comps);
    rebuilt_any = true;

    // Transit load per world per global link, rebuilt for dirty components
    // only. Components are link-disjoint, so the stale entries left behind
    // for clean components are never read below.
    for (std::size_t ci = 0; ci < components_.size(); ++ci) {
      if (comp_dirty_[ci] == 0) continue;
      const BorderComponent& comp = components_[ci];
      for (const int z : comp.load_zones) {
        World& w = *worlds_[static_cast<std::size_t>(z)];
        for (const net::LinkId gl : comp.links) {
          w.transit_load[static_cast<std::size_t>(gl)] = 0.0;
        }
      }
      for (const std::size_t fi : comp.flows) {
        const TransitFlow& f = transit_[fi];
        World& a = *worlds_[static_cast<std::size_t>(f.zone_a)];
        World& b = *worlds_[static_cast<std::size_t>(f.zone_b)];
        const auto add_load = [](World& w, const std::vector<net::LinkId>& path,
                                 double rate) {
          for (const net::LinkId gl : path) {
            w.transit_load[static_cast<std::size_t>(gl)] += rate;
          }
        };
        add_load(a, f.a_path,
                 static_cast<double>(a.network->stream_rate(f.a_stream)));
        add_load(b, f.b_path,
                 static_cast<double>(b.network->stream_rate(f.b_stream)));
      }
    }

    // Residual capacity for border traffic on every dirty-component link:
    // what the owning worlds' non-transit allocations leave over, min
    // across owners (border links are owned by both touching zones).
    ++stamp_;
    for (std::size_t ci = 0; ci < components_.size(); ++ci) {
      if (comp_dirty_[ci] == 0) continue;
      for (const net::LinkId gl : components_[ci].links) {
        if (caps_stamp_[static_cast<std::size_t>(gl)] == stamp_) continue;
        caps_stamp_[static_cast<std::size_t>(gl)] = stamp_;
        double residual = std::numeric_limits<double>::max();
        for (const LinkOwner& owner : link_owners_[static_cast<std::size_t>(gl)]) {
          if (owner.zone == -1) continue;
          World& w = *worlds_[static_cast<std::size_t>(owner.zone)];
          const double non_transit =
              static_cast<double>(w.network->link_allocated(owner.local)) -
              w.transit_load[static_cast<std::size_t>(gl)];
          const double avail =
              static_cast<double>(w.network->link_capacity(owner.local)) -
              non_transit;
          residual = std::min(residual, avail);
        }
        recon_caps_[static_cast<std::size_t>(gl)] = std::max(residual, 0.0);
      }
    }

    // One solve over the dirty components' flows, in transit order — the
    // solver is component-local, so the subset solve matches the full
    // solve bitwise for every included flow.
    entity_scratch_.clear();
    entity_flow_.clear();
    for (std::size_t i = 0; i < transit_.size(); ++i) {
      if (comp_dirty_[static_cast<std::size_t>(flow_component_[i])] == 0) {
        continue;
      }
      entity_scratch_.push_back(
          {static_cast<double>(transit_[i].demand), &transit_[i].union_links});
      entity_flow_.push_back(i);
    }
    const std::vector<double>& rates =
        border_solver_.solve(recon_caps_, entity_scratch_);

    // Impose the solve as demand caps on both halves; each zone settles
    // once per pass via a batch update. Impositions bump the target zones'
    // reallocation markers, so the next pass picks them up as dirty — the
    // fixpoint loop needs no extra bookkeeping.
    batch_scratch_.clear();
    batch_scratch_.resize(worlds_.size());
    const auto batch_for = [this](int zone) -> void {
      if (!batch_scratch_[static_cast<std::size_t>(zone)]) {
        batch_scratch_[static_cast<std::size_t>(zone)] =
            std::make_unique<net::Network::BatchUpdate>(
                *worlds_[static_cast<std::size_t>(zone)]->network);
      }
    };
    bool changed = false;
    for (std::size_t e = 0; e < entity_flow_.size(); ++e) {
      TransitFlow& f = transit_[entity_flow_[e]];
      const net::Bps target = std::clamp<net::Bps>(
          static_cast<net::Bps>(std::llround(rates[e])), 0, f.demand);
      if (std::llabs(target - f.imposed_a) > kRateEpsBps) {
        batch_for(f.zone_a);
        obs::ScopedGlobalRecorder guard(
            &worlds_[static_cast<std::size_t>(f.zone_a)]->recorder);
        worlds_[static_cast<std::size_t>(f.zone_a)]->network->set_stream_demand(
            f.a_stream, target);
        f.imposed_a = target;
        changed = true;
      }
      if (std::llabs(target - f.imposed_b) > kRateEpsBps) {
        batch_for(f.zone_b);
        obs::ScopedGlobalRecorder guard(
            &worlds_[static_cast<std::size_t>(f.zone_b)]->recorder);
        worlds_[static_cast<std::size_t>(f.zone_b)]->network->set_stream_demand(
            f.b_stream, target);
        f.imposed_b = target;
        changed = true;
      }
    }
    batch_scratch_.clear();  // settle all touched zones
    if (!changed) break;
    ++changed_iterations;
  }
  if (!rebuilt_any) ++reconcile_skipped_;
  return changed_iterations;
}

void ShardedOrchestrator::run_round() {
  if (!started_) start();
  const int r = round_;
  const sim::Time deadline =
      base_ + static_cast<sim::Time>(r + 1) * cfg_.round_interval;

  // Serial activity scan — a pure function of zone state, so the due set
  // is identical at any --jobs value.
  const bool gate = cfg_.gating;
  for (auto& w : worlds_) {
    w->due = !gate || zone_due(*w, deadline);
  }

  const auto now_wall = [] { return std::chrono::steady_clock::now(); };
  const auto us_since = [](std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  };

  // Quiescent zones: nothing is scheduled in their window, so run_until
  // only moves the clock — the exact instructions the full pass would
  // execute, minus the pool round-trip. Journals stay byte-identical.
  auto t0 = now_wall();
  int due_count = 0;
  for (auto& w : worlds_) {
    if (w->due) {
      ++due_count;
      continue;
    }
    w->sim.run_until(deadline);
    ++w->rounds_skipped;
    ++w->consecutive_skips;
    w->max_skip_streak = std::max(w->max_skip_streak, w->consecutive_skips);
    w->m_skipped_rounds->inc();
  }
  tick_wall_us_ += us_since(t0);

  t0 = now_wall();
  if (due_count > 0) {
    advance_due(deadline);
    for (auto& w : worlds_) {
      if (!w->due) continue;
      ++w->rounds_full;
      w->consecutive_skips = 0;
    }
  }
  advance_wall_us_ += us_since(t0);

  t0 = now_wall();
  const int iterations = reconcile();
  reconcile_wall_us_ += us_since(t0);
  reconcile_total_ += iterations;
  ++round_;

  // Coordinator journal + metrics, serially — deterministic regardless of
  // worker count. The summary span parents the per-zone records. These
  // events are identical gated and ungated (the journal byte-identity
  // contract); gating surfaces only through metrics and the report.
  int total_flows = 0;
  int total_halves = 0;
  for (const auto& w : worlds_) {
    total_flows += static_cast<int>(w->network->stream_count());
    total_halves += w->border_halves;
  }
  obs::ZoneRound summary;
  summary.at = deadline;
  summary.zone = -1;
  summary.round = r;
  summary.flows = total_flows;
  summary.border_streams = total_halves;
  summary.recon_iterations = iterations;
  summary.span = coordinator_.new_span();
  coordinator_.record(obs::Event{summary});

  m_rounds_->inc();
  m_recon_iterations_->add(iterations);
  for (const auto& w : worlds_) {
    obs::ZoneRound zr;
    zr.at = deadline;
    zr.zone = w->zone;
    zr.round = r;
    zr.flows = static_cast<int>(w->network->stream_count());
    zr.border_streams = w->border_halves;
    zr.recon_iterations = iterations;
    zr.span = coordinator_.new_span();
    zr.parent = summary.span;
    coordinator_.record(obs::Event{zr});
    if (w->due) w->m_round_wall->observe(w->round_wall_us);
    w->m_border_streams->set(static_cast<double>(w->border_halves));
    w->m_flows->set(static_cast<double>(zr.flows));
  }
}

void ShardedOrchestrator::finish() {
  if (finished_) return;
  if (!started_) start();
  finished_ = true;

  // Drain mirrors Scenario::run(): two extra sim-minutes with the serving
  // loops live so in-flight admissions and migrations resolve.
  const sim::Time end =
      base_ + static_cast<sim::Time>(round_) * cfg_.round_interval;
  advance_all(end + sim::minutes(2), false);

  report_ = ShardedReport{};
  for (auto& w : worlds_) {
    obs::ScopedGlobalRecorder guard(&w->recorder);
    if (w->serving) w->serving->stop();
    if (w->monitor) w->monitor->stop();
    if (w->invariants) w->invariants->check_now();
  }

  // Fold every zone's instruments into the coordinator registry under an
  // added {zone} label, so one metrics snapshot covers the whole city.
  obs::MetricsRegistry& dst = coordinator_.metrics();
  for (auto& w : worlds_) {
    const std::string zone_label = std::to_string(w->zone);
    const auto relabel = [&zone_label](const obs::Labels& labels) {
      obs::Labels out = labels;
      out.emplace_back("zone", zone_label);
      return out;
    };
    const obs::MetricsRegistry& src = w->recorder.metrics();
    src.for_each_counter([&](const std::string& name, const obs::Labels& labels,
                             const obs::Counter& c) {
      dst.counter(name, relabel(labels)).add(c.value());
    });
    src.for_each_gauge([&](const std::string& name, const obs::Labels& labels,
                           const obs::Gauge& g) {
      dst.gauge(name, relabel(labels)).set(g.value());
    });
    src.for_each_log_histogram([&](const std::string& name,
                                   const obs::Labels& labels,
                                   const obs::LogHistogram& h) {
      dst.log_histogram(name, relabel(labels)).merge(h);
    });
  }

  for (auto& w : worlds_) {
    if (w->serving) {
      const scenario::ServeStats& ss = w->serving->stats();
      const core::AdmissionStats& as = w->serving->admission_stats();
      report_.serve_arrivals += ss.arrivals;
      report_.serve_departures += ss.departures;
      report_.serve_admitted += as.admitted;
      report_.serve_rejected += as.rejected;
      report_.serve_deferred += as.deferred;
      report_.serve_cancelled += as.cancelled;
      report_.serve_peak_queue_depth =
          std::max(report_.serve_peak_queue_depth, as.peak_depth);
      report_.serve_live_at_end += ss.live_at_end;
    }
    report_.migrations += w->orch->migration_events().size();
    if (w->invariants) report_.invariant_violations += w->invariants->violations();
  }
  report_.rounds = round_;
  report_.reconcile_iterations = reconcile_total_;
  report_.border_links = partition_.border_links.size();
  report_.transit_streams = transit_.size();
  report_.transit_unroutable = skipped_transit_;
  report_.border_components = components_.size();
  report_.border_rebuilds = border_rebuilds_;
  report_.reconcile_rounds_skipped = reconcile_skipped_;
  report_.tick_wall_us = tick_wall_us_;
  report_.advance_wall_us = advance_wall_us_;
  report_.reconcile_wall_us = reconcile_wall_us_;

  // Activity census: why each zone's rounds could not be skipped.
  static constexpr const char* kActivityNames[kActivityKinds] = {
      "churn", "queue", "live", "fault", "probe", "timer", "heartbeat"};
  for (auto& w : worlds_) {
    report_.zone_rounds_full += w->rounds_full;
    report_.zone_rounds_skipped += w->rounds_skipped;
    const std::string zone_label = std::to_string(w->zone);
    for (int k = 0; k < kActivityKinds; ++k) {
      if (w->activity[static_cast<std::size_t>(k)] == 0) continue;
      dst.counter("zone.activity",
                  {{"kind", kActivityNames[k]}, {"zone", zone_label}})
          .add(w->activity[static_cast<std::size_t>(k)]);
    }
  }
}

int ShardedOrchestrator::max_consecutive_skips() const {
  int streak = 0;
  for (const auto& w : worlds_) streak = std::max(streak, w->max_skip_streak);
  return streak;
}

ShardedReport ShardedOrchestrator::run() {
  start();
  while (round_ < rounds_total_) run_round();
  finish();
  return report_;
}

core::Orchestrator& ShardedOrchestrator::zone_orchestrator(int z) {
  return *worlds_[static_cast<std::size_t>(z)]->orch;
}

net::Network& ShardedOrchestrator::zone_network(int z) {
  return *worlds_[static_cast<std::size_t>(z)]->network;
}

obs::Recorder& ShardedOrchestrator::zone_recorder(int z) {
  return worlds_[static_cast<std::size_t>(z)]->recorder;
}

scenario::ServingLoop* ShardedOrchestrator::zone_serving(int z) {
  return worlds_[static_cast<std::size_t>(z)]->serving.get();
}

net::NodeId ShardedOrchestrator::local_node(int z, net::NodeId global) const {
  const World& w = *worlds_[static_cast<std::size_t>(z)];
  if (global < 0 ||
      global >= static_cast<net::NodeId>(w.global_to_local.size())) {
    return net::kInvalidNode;
  }
  return w.global_to_local[static_cast<std::size_t>(global)];
}

net::NodeId ShardedOrchestrator::global_node(int z, net::NodeId local) const {
  const World& w = *worlds_[static_cast<std::size_t>(z)];
  if (local < 0 || local >= static_cast<net::NodeId>(w.local_to_global.size())) {
    return net::kInvalidNode;
  }
  return w.local_to_global[static_cast<std::size_t>(local)];
}

std::string ShardedOrchestrator::merged_journal() {
  // Semantics are unchanged from the original stable_sort implementation:
  // zone lines (annotated with their zone) in zone order, coordinator
  // lines last, ordered by t_us with source order breaking ties. Each
  // per-source journal is already time-ordered — recorders journal
  // monotonically — so an incremental k-way heap merge keyed on
  // (t, source index) reproduces the stable sort byte for byte without
  // materializing or re-sorting the whole city's line set. A non-monotonic
  // source (never expected; defensive) falls back to sorting indices.
  struct Source {
    std::string jsonl;       // owns the bytes the views point into
    std::string annotation;  // ",\"zone\":N}" for zones, "" for coordinator
    std::vector<std::pair<long long, std::string_view>> lines;
    std::size_t next = 0;
    bool sorted = true;
  };
  std::vector<Source> sources;
  sources.reserve(worlds_.size() + 1);
  std::size_t total_bytes = 0;
  const auto add_source = [&sources, &total_bytes](std::string jsonl, int zone) {
    Source src;
    src.jsonl = std::move(jsonl);
    if (zone >= 0) src.annotation = util::str_format(",\"zone\":%d}", zone);
    long long prev = std::numeric_limits<long long>::min();
    std::size_t start = 0;
    const std::string& text = src.jsonl;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      if (end == std::string::npos) end = text.size();
      if (end > start) {
        const std::string_view line(text.data() + start, end - start);
        const long long t = std::strtoll(line.data() + 8, nullptr, 10);
        if (t < prev) src.sorted = false;
        prev = t;
        src.lines.emplace_back(t, line);
        total_bytes += line.size() + src.annotation.size() + 1;
      }
      start = end + 1;
    }
    sources.push_back(std::move(src));
  };
  for (auto& w : worlds_) {
    add_source(w->recorder.journal().to_jsonl(), w->zone);
  }
  add_source(coordinator_.journal().to_jsonl(), -1);

  std::string out;
  out.reserve(total_bytes);
  const auto append = [&out](Source& src) {
    const std::string_view line = src.lines[src.next++].second;
    if (!src.annotation.empty() && !line.empty() && line.back() == '}') {
      out.append(line.data(), line.size() - 1);
      out += src.annotation;
    } else {
      out.append(line.data(), line.size());
    }
    out += '\n';
  };

  bool all_sorted = true;
  for (const Source& src : sources) all_sorted &= src.sorted;
  if (all_sorted) {
    // Min-heap of (next timestamp, source index); the index tiebreak is
    // exactly stable_sort's preserved concatenation order.
    struct Head {
      long long t;
      std::size_t src;
    };
    const auto later = [](const Head& a, const Head& b) {
      if (a.t != b.t) return a.t > b.t;
      return a.src > b.src;
    };
    std::vector<Head> heap;
    heap.reserve(sources.size());
    for (std::size_t s = 0; s < sources.size(); ++s) {
      if (!sources[s].lines.empty()) {
        heap.push_back({sources[s].lines.front().first, s});
      }
    }
    std::make_heap(heap.begin(), heap.end(), later);
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), later);
      const std::size_t s = heap.back().src;
      heap.pop_back();
      Source& src = sources[s];
      append(src);
      if (src.next < src.lines.size()) {
        heap.push_back({src.lines[src.next].first, s});
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
    return out;
  }

  // Fallback: order (t, source, position) triples — the same total order
  // the merge produces, minus the monotonic-source assumption.
  struct Ref {
    long long t;
    std::size_t src;
    std::size_t idx;
  };
  std::vector<Ref> refs;
  for (std::size_t s = 0; s < sources.size(); ++s) {
    for (std::size_t i = 0; i < sources[s].lines.size(); ++i) {
      refs.push_back({sources[s].lines[i].first, s, i});
    }
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    if (a.t != b.t) return a.t < b.t;
    if (a.src != b.src) return a.src < b.src;
    return a.idx < b.idx;
  });
  for (const Ref& ref : refs) {
    Source& src = sources[ref.src];
    src.next = ref.idx;
    append(src);
  }
  return out;
}

}  // namespace bass::zone
