// Sharded orchestration: one Orchestrator/MaxMinSolver/ServingLoop per
// zone, each in its own simulation world over a zone-local slice of the
// mesh (zone members plus a one-hop halo of border endpoints), with a
// deterministic border reconciliation pass between rounds.
//
// Scaling argument: the unsharded path carries O(n^2) routing state and
// every control-plane pass (placement, rebalance, probing) walks the whole
// mesh. A zone world is ~n/z nodes, so per-zone routing is O((n/z)^2) and
// control passes shrink by z — near-linear round-time scaling in zone
// count, independent of worker threads. Worker threads (exec::Pool) then
// overlap zone rounds on top.
//
// Determinism contract: zone worlds are fully isolated (own Simulation,
// own Recorder, seeds derived from the zone index), reconciliation runs
// serially on the coordinator after the round barrier, and the merged
// journal is a stable sort by timestamp over per-zone journals in zone
// order — so same seed + any --jobs value => byte-identical journals.
//
// Reconciliation (DESIGN.md §11): intra-zone flows never leave their
// world — their allocations are reused untouched. Border (transit) flows
// exist as two stream halves, one per touching world. Each pass rebuilds
// the residual capacity of every link the border flows cross (capacity
// minus non-transit allocation, min over the owning worlds), re-solves
// border flows max-min fair against the union of their touching zones'
// links with one shared solver, and imposes the solved rates back on both
// halves as demand caps. Passes repeat until no rate moves (steady state:
// zero passes change anything; a capacity shift settles in one).
//
// Activity gating (this file + DESIGN.md §11): round cost tracks churn,
// not city size. Zones with nothing scheduled in the round window take a
// serial clock-advance tick (run_until over an empty window — the exact
// instructions the full path would execute — so journals stay
// byte-identical); reconciliation partitions transit flows into
// link-disjoint border components and re-solves only those whose owner
// zones reallocated since the last look, skipping the pass outright when
// none did. Both halves are provably bitwise-neutral: a skipped zone
// processed no events either way, and a clean component's residuals and
// solved rates are unchanged by construction.
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/orchestrator.h"
#include "exec/pool.h"
#include "fault/invariants.h"
#include "monitor/net_monitor.h"
#include "net/maxmin.h"
#include "net/network.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "scenario/serving.h"
#include "sim/simulation.h"
#include "util/expected.h"
#include "util/ini.h"
#include "zone/partition.h"

namespace bass::zone {

struct ZonesConfig {
  int count = 2;
  PartitionMethod method = PartitionMethod::kBfsBalanced;
  sim::Duration round_interval = sim::seconds(10);
  int max_reconcile_iterations = 4;
  // Synthetic cross-zone transit: flows per directed border link, each
  // demanding transit_bps. 0 decouples zones entirely (no reconciliation).
  int transit_per_border = 1;
  net::Bps transit_bps = net::mbps(2);
  // Transit endpoint shaping. false (default): endpoints rotate through
  // each zone's interior, so transit couples to the whole street grid —
  // one city-wide contention component, worst case for per-component
  // gating. true: flows enter/exit at the border link's own routers
  // (classic transit), keeping each border's contention link-disjoint from
  // the others — the regime where dirty-border reconciliation pays off.
  bool transit_local = false;
  // Activity gating: quiescent zones (nothing scheduled in the round
  // window) take a clock-advance tick instead of a full pooled pass, and
  // reconciliation only rebuilds border components whose owner zones
  // reallocated. Gated and ungated runs produce byte-identical journals
  // and bitwise-equal final allocations (zone_test locks both); the knob
  // exists as the bench/CI baseline, not as a semantic switch.
  bool gating = true;
  // Heartbeat: force a full pass after this many consecutive skips so no
  // zone coasts unboundedly on the cheap tick. Deterministic — a pure
  // function of the skip history, identical at any --jobs.
  int max_skip = 8;
  // Sparse-churn shaping: 0 spreads arrivals over every zone (default);
  // K > 0 confines the configured total arrival rate to zones [0, K) —
  // the bench/test handle for "activity lives in one corner of the city".
  int active_zones = 0;
};

// Everything needed to stand up a sharded world; from_ini() fills it from
// the same scenario file the unsharded path reads ([zones] + [topology] /
// [node] + [serve] + [monitor]/[invariants]/[migration]/[obs]/[run]).
struct ShardedBuild {
  net::Topology topology;
  std::vector<cluster::NodeSpec> specs;  // indexed by NodeId
  ZonesConfig zones;
  bool serving = true;
  scenario::ServeConfig serve;
  sim::Duration duration = sim::minutes(10);
  bool monitor_enabled = true;
  monitor::MonitorConfig monitor;
  bool invariants_enabled = true;
  core::OrchestratorConfig orch;
  obs::RecorderConfig recorder;
};

struct ShardedReport {
  // Aggregated over zones (serving builds only):
  std::int64_t serve_arrivals = 0;
  std::int64_t serve_departures = 0;
  std::int64_t serve_admitted = 0;
  std::int64_t serve_rejected = 0;
  std::int64_t serve_deferred = 0;
  std::int64_t serve_cancelled = 0;
  int serve_peak_queue_depth = 0;  // max over zones
  int serve_live_at_end = 0;
  std::size_t migrations = 0;
  int invariant_violations = 0;
  // Sharding:
  int rounds = 0;
  std::int64_t reconcile_iterations = 0;  // passes that changed a rate
  std::size_t border_links = 0;           // directed global border links
  std::size_t transit_streams = 0;        // border flows actually routed
  std::size_t transit_unroutable = 0;     // border flows with no routable path
  std::size_t border_components = 0;      // link-disjoint transit groups
  // Activity gating:
  std::int64_t zone_rounds_full = 0;     // zone-rounds that ran the full pass
  std::int64_t zone_rounds_skipped = 0;  // zone-rounds served by the tick
  std::int64_t border_rebuilds = 0;      // dirty border components re-solved
  std::int64_t reconcile_rounds_skipped = 0;  // rounds with no dirty border
  // Wall-clock split of the round loop (cumulative, µs): quiescent-zone
  // ticks, full zone passes, border reconciliation.
  double tick_wall_us = 0.0;
  double advance_wall_us = 0.0;
  double reconcile_wall_us = 0.0;
};

class ShardedOrchestrator {
 public:
  // `jobs` is the worker count for zone rounds: 0 => one thread per zone
  // (capped at the zone count), 1 => run rounds inline.
  static util::Expected<std::unique_ptr<ShardedOrchestrator>> create(
      ShardedBuild build, std::size_t jobs);
  static util::Expected<std::unique_ptr<ShardedOrchestrator>> from_ini(
      const util::IniFile& ini, std::size_t jobs);

  ~ShardedOrchestrator();

  // start() warms every world up (monitor pre-probe window, transit
  // streams, serving loops); run_round() advances all zones one interval
  // and reconciles; finish() drains, stops, folds per-zone metrics into the
  // coordinator registry, and builds the report. run() does all of it.
  void start();
  void run_round();
  void finish();
  ShardedReport run();

  int zones() const { return static_cast<int>(worlds_.size()); }
  sim::Time now() const { return worlds_.front()->sim.now(); }
  int rounds_total() const { return rounds_total_; }
  int rounds_done() const { return round_; }
  const Partition& partition() const { return partition_; }
  const ShardedReport& report() const { return report_; }
  const ZonesConfig& config() const { return cfg_; }
  // Longest consecutive-skip streak any zone has accumulated so far; the
  // heartbeat contract (zone_test) bounds it by ZonesConfig::max_skip.
  int max_consecutive_skips() const;

  // Cumulative phase wall-clock (µs), live during the round loop, so a
  // bench can window out bring-up rounds: round 0's reconcile imposes
  // every initial transit rate and dwarfs the steady-state cost it is
  // trying to measure. finish() folds the same totals into the report.
  struct PhaseWalls {
    double tick_us = 0.0;
    double advance_us = 0.0;
    double reconcile_us = 0.0;
    std::int64_t border_rebuilds = 0;
  };
  PhaseWalls phase_walls() const {
    return {tick_wall_us_, advance_wall_us_, reconcile_wall_us_,
            border_rebuilds_};
  }

  core::Orchestrator& zone_orchestrator(int z);
  net::Network& zone_network(int z);
  obs::Recorder& zone_recorder(int z);
  scenario::ServingLoop* zone_serving(int z);
  // Global <-> zone-local node id mapping (kInvalidNode when the node is
  // not in that world). Halo nodes are present but unschedulable.
  net::NodeId local_node(int z, net::NodeId global) const;
  net::NodeId global_node(int z, net::NodeId local) const;

  // Coordinator-side observability: the recorder carrying zone_round events
  // and (after finish()) the folded per-zone metrics under {zone} labels.
  obs::Recorder& recorder() { return coordinator_; }

  // Per-zone journals annotated with a "zone" field, plus coordinator
  // events, stable-sorted by t_us. Byte-identical for same seed across any
  // jobs value. Flushes deferred events, hence non-const.
  std::string merged_journal();

 private:
  struct TransitFlow {
    int zone_a = -1;  // egress world (owns the border link's src)
    int zone_b = -1;  // ingress world
    net::StreamId a_stream = 0;
    net::StreamId b_stream = 0;
    net::NodeId a_src = net::kInvalidNode;  // local ids
    net::NodeId a_dst = net::kInvalidNode;
    net::NodeId b_src = net::kInvalidNode;
    net::NodeId b_dst = net::kInvalidNode;
    std::vector<net::LinkId> a_path;      // global link ids of the A half
    std::vector<net::LinkId> b_path;      // global link ids of the B half
    std::vector<net::LinkId> union_links; // dedup union of both halves
    net::Bps demand = 0;
    net::Bps imposed_a = -1;
    net::Bps imposed_b = -1;
  };

  // Why a zone's round could not be skipped, for the per-zone activity
  // census (`zone.activity{kind}` counters). kTimer — any event armed in
  // the window — is the safety superset of the rest: churn, probes,
  // admission retries, controller ticks and fault recoveries all live in
  // the zone's event queue, so gating can never miss activity.
  enum ActivityKind {
    kActChurn = 0,   // churn arrival/departure due this window
    kActQueue,       // admission queue holds work
    kActLive,        // live deployments (traffic samplers, controllers)
    kActFault,       // failed nodes awaiting recovery
    kActProbe,       // headroom violation since the last look
    kActTimer,       // any scheduled event at or before the deadline
    kActHeartbeat,   // max_skip forced a full pass
    kActivityKinds
  };

  struct World {
    int zone = -1;
    obs::Recorder recorder;
    sim::Simulation sim;
    cluster::ClusterState cluster;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<core::Orchestrator> orch;
    std::unique_ptr<monitor::NetMonitor> monitor;
    std::unique_ptr<fault::Invariants> invariants;
    std::unique_ptr<scenario::ServingLoop> serving;
    std::vector<net::NodeId> local_to_global;
    std::vector<net::NodeId> global_to_local;  // kInvalidNode when absent
    std::vector<net::LinkId> link_to_global;   // local link -> global link
    int interior_count = 0;  // locals [0, interior_count) are zone members
    int border_halves = 0;   // transit stream halves living in this world
    // Reconciliation scratch: transit traffic per *global* link, rebuilt
    // only for links of dirty border components (stale entries elsewhere
    // are never read — components are link-disjoint).
    std::vector<double> transit_load;
    double round_wall_us = 0.0;
    // Activity gating (coordinator-side, touched serially only).
    bool due = true;
    std::int64_t recon_marker = -1;  // alloc_stats().reallocations last seen
    int probe_violations_seen = 0;
    int consecutive_skips = 0;
    int max_skip_streak = 0;
    std::int64_t rounds_full = 0;
    std::int64_t rounds_skipped = 0;
    std::array<std::int64_t, kActivityKinds> activity{};
    // Coordinator instruments resolved once at create(): per-round metric
    // updates must not rebuild Labels (zero-alloc steady state).
    obs::LogHistogram* m_round_wall = nullptr;
    obs::Gauge* m_border_streams = nullptr;
    obs::Gauge* m_flows = nullptr;
    obs::Counter* m_skipped_rounds = nullptr;

    explicit World(const obs::RecorderConfig& rc) : recorder(rc) {}
  };

  // Link-disjoint group of transit flows: two flows sharing any global
  // link land in one component. The max-min solve is contention-component
  // local (maxmin_property_test locks it bitwise), so a component whose
  // owner zones did not reallocate solves to exactly its previous rates —
  // reconciliation rebuilds dirty components only.
  struct BorderComponent {
    std::vector<std::size_t> flows;  // indices into transit_, ascending
    std::vector<net::LinkId> links;  // sorted dedup union of member links
    std::vector<int> owner_zones;    // zones whose allocations gate dirtiness
    std::vector<int> load_zones;     // zones carrying member flow halves
  };

  ShardedOrchestrator() : coordinator_(obs::RecorderConfig{}) {}

  void build_world(World& w, const ShardedBuild& build);
  void setup_transit(const ShardedBuild& build);
  void build_components();
  void cache_instruments();
  bool zone_due(World& w, sim::Time deadline);
  int reconcile();
  void advance_all(sim::Time deadline, bool timed);
  void advance_due(sim::Time deadline);

  Partition partition_;
  std::vector<std::unique_ptr<World>> worlds_;
  std::vector<TransitFlow> transit_;
  // Per global link: the worlds carrying a copy (zone, local id). Interior
  // links appear once, border links twice, halo-halo links never.
  struct LinkOwner {
    int zone = -1;
    net::LinkId local = net::kInvalidLink;
  };
  std::vector<std::array<LinkOwner, 2>> link_owners_;

  obs::Recorder coordinator_;
  net::MaxMinSolver border_solver_;
  std::vector<double> recon_caps_;         // indexed by global link id
  std::vector<std::uint32_t> caps_stamp_;  // per-pass fill guard
  std::uint32_t stamp_ = 0;

  // Border components + persistent reconcile scratch (no per-round heap
  // traffic in steady state — the PR-5 discipline).
  std::vector<BorderComponent> components_;
  std::vector<int> flow_component_;  // transit_ index -> components_ index
  std::vector<std::uint8_t> zone_dirty_;
  std::vector<std::uint8_t> comp_dirty_;
  std::vector<net::AllocEntityRef> entity_scratch_;
  std::vector<std::size_t> entity_flow_;  // entity index -> transit_ index
  std::vector<std::unique_ptr<net::Network::BatchUpdate>> batch_scratch_;

  // Cached coordinator instruments (addresses are stable for the registry's
  // lifetime).
  obs::Counter* m_rounds_ = nullptr;
  obs::Counter* m_recon_iterations_ = nullptr;
  obs::Counter* m_dirty_borders_ = nullptr;

  ZonesConfig cfg_;
  sim::Duration duration_ = 0;
  sim::Time base_ = 0;  // sim time when rounds begin (after warmup)
  int rounds_total_ = 0;
  int round_ = 0;
  std::int64_t reconcile_total_ = 0;
  std::int64_t border_rebuilds_ = 0;
  std::int64_t reconcile_skipped_ = 0;
  double tick_wall_us_ = 0.0;
  double advance_wall_us_ = 0.0;
  double reconcile_wall_us_ = 0.0;
  std::size_t skipped_transit_ = 0;  // border flows with no routable path
  std::unique_ptr<exec::Pool> pool_;
  bool started_ = false;
  bool finished_ = false;
  ShardedReport report_;
};

}  // namespace bass::zone
