// Sharded orchestration: one Orchestrator/MaxMinSolver/ServingLoop per
// zone, each in its own simulation world over a zone-local slice of the
// mesh (zone members plus a one-hop halo of border endpoints), with a
// deterministic border reconciliation pass between rounds.
//
// Scaling argument: the unsharded path carries O(n^2) routing state and
// every control-plane pass (placement, rebalance, probing) walks the whole
// mesh. A zone world is ~n/z nodes, so per-zone routing is O((n/z)^2) and
// control passes shrink by z — near-linear round-time scaling in zone
// count, independent of worker threads. Worker threads (exec::Pool) then
// overlap zone rounds on top.
//
// Determinism contract: zone worlds are fully isolated (own Simulation,
// own Recorder, seeds derived from the zone index), reconciliation runs
// serially on the coordinator after the round barrier, and the merged
// journal is a stable sort by timestamp over per-zone journals in zone
// order — so same seed + any --jobs value => byte-identical journals.
//
// Reconciliation (DESIGN.md §11): intra-zone flows never leave their
// world — their allocations are reused untouched. Border (transit) flows
// exist as two stream halves, one per touching world. Each pass rebuilds
// the residual capacity of every link the border flows cross (capacity
// minus non-transit allocation, min over the owning worlds), re-solves all
// border flows max-min fair against the union of their touching zones'
// links with one shared solver, and imposes the solved rates back on both
// halves as demand caps. Passes repeat until no rate moves (steady state:
// zero passes change anything; a capacity shift settles in one).
#pragma once

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/orchestrator.h"
#include "exec/pool.h"
#include "fault/invariants.h"
#include "monitor/net_monitor.h"
#include "net/maxmin.h"
#include "net/network.h"
#include "obs/recorder.h"
#include "scenario/scenario.h"
#include "scenario/serving.h"
#include "sim/simulation.h"
#include "util/expected.h"
#include "util/ini.h"
#include "zone/partition.h"

namespace bass::zone {

struct ZonesConfig {
  int count = 2;
  PartitionMethod method = PartitionMethod::kBfsBalanced;
  sim::Duration round_interval = sim::seconds(10);
  int max_reconcile_iterations = 4;
  // Synthetic cross-zone transit: flows per directed border link, each
  // demanding transit_bps. 0 decouples zones entirely (no reconciliation).
  int transit_per_border = 1;
  net::Bps transit_bps = net::mbps(2);
};

// Everything needed to stand up a sharded world; from_ini() fills it from
// the same scenario file the unsharded path reads ([zones] + [topology] /
// [node] + [serve] + [monitor]/[invariants]/[migration]/[obs]/[run]).
struct ShardedBuild {
  net::Topology topology;
  std::vector<cluster::NodeSpec> specs;  // indexed by NodeId
  ZonesConfig zones;
  bool serving = true;
  scenario::ServeConfig serve;
  sim::Duration duration = sim::minutes(10);
  bool monitor_enabled = true;
  monitor::MonitorConfig monitor;
  bool invariants_enabled = true;
  core::OrchestratorConfig orch;
  obs::RecorderConfig recorder;
};

struct ShardedReport {
  // Aggregated over zones (serving builds only):
  std::int64_t serve_arrivals = 0;
  std::int64_t serve_departures = 0;
  std::int64_t serve_admitted = 0;
  std::int64_t serve_rejected = 0;
  std::int64_t serve_deferred = 0;
  std::int64_t serve_cancelled = 0;
  int serve_peak_queue_depth = 0;  // max over zones
  int serve_live_at_end = 0;
  std::size_t migrations = 0;
  int invariant_violations = 0;
  // Sharding:
  int rounds = 0;
  std::int64_t reconcile_iterations = 0;  // passes that changed a rate
  std::size_t border_links = 0;           // directed global border links
  std::size_t transit_streams = 0;        // border flows actually routed
};

class ShardedOrchestrator {
 public:
  // `jobs` is the worker count for zone rounds: 0 => one thread per zone
  // (capped at the zone count), 1 => run rounds inline.
  static util::Expected<std::unique_ptr<ShardedOrchestrator>> create(
      ShardedBuild build, std::size_t jobs);
  static util::Expected<std::unique_ptr<ShardedOrchestrator>> from_ini(
      const util::IniFile& ini, std::size_t jobs);

  ~ShardedOrchestrator();

  // start() warms every world up (monitor pre-probe window, transit
  // streams, serving loops); run_round() advances all zones one interval
  // and reconciles; finish() drains, stops, folds per-zone metrics into the
  // coordinator registry, and builds the report. run() does all of it.
  void start();
  void run_round();
  void finish();
  ShardedReport run();

  int zones() const { return static_cast<int>(worlds_.size()); }
  sim::Time now() const { return worlds_.front()->sim.now(); }
  int rounds_total() const { return rounds_total_; }
  int rounds_done() const { return round_; }
  const Partition& partition() const { return partition_; }
  const ShardedReport& report() const { return report_; }

  core::Orchestrator& zone_orchestrator(int z);
  net::Network& zone_network(int z);
  obs::Recorder& zone_recorder(int z);
  scenario::ServingLoop* zone_serving(int z);
  // Global <-> zone-local node id mapping (kInvalidNode when the node is
  // not in that world). Halo nodes are present but unschedulable.
  net::NodeId local_node(int z, net::NodeId global) const;
  net::NodeId global_node(int z, net::NodeId local) const;

  // Coordinator-side observability: the recorder carrying zone_round events
  // and (after finish()) the folded per-zone metrics under {zone} labels.
  obs::Recorder& recorder() { return coordinator_; }

  // Per-zone journals annotated with a "zone" field, plus coordinator
  // events, stable-sorted by t_us. Byte-identical for same seed across any
  // jobs value. Flushes deferred events, hence non-const.
  std::string merged_journal();

 private:
  struct TransitFlow {
    int zone_a = -1;  // egress world (owns the border link's src)
    int zone_b = -1;  // ingress world
    net::StreamId a_stream = 0;
    net::StreamId b_stream = 0;
    net::NodeId a_src = net::kInvalidNode;  // local ids
    net::NodeId a_dst = net::kInvalidNode;
    net::NodeId b_src = net::kInvalidNode;
    net::NodeId b_dst = net::kInvalidNode;
    std::vector<net::LinkId> a_path;      // global link ids of the A half
    std::vector<net::LinkId> b_path;      // global link ids of the B half
    std::vector<net::LinkId> union_links; // dedup union of both halves
    net::Bps demand = 0;
    net::Bps imposed_a = -1;
    net::Bps imposed_b = -1;
  };

  struct World {
    int zone = -1;
    obs::Recorder recorder;
    sim::Simulation sim;
    cluster::ClusterState cluster;
    std::unique_ptr<net::Network> network;
    std::unique_ptr<core::Orchestrator> orch;
    std::unique_ptr<monitor::NetMonitor> monitor;
    std::unique_ptr<fault::Invariants> invariants;
    std::unique_ptr<scenario::ServingLoop> serving;
    std::vector<net::NodeId> local_to_global;
    std::vector<net::NodeId> global_to_local;  // kInvalidNode when absent
    std::vector<net::LinkId> link_to_global;   // local link -> global link
    int interior_count = 0;  // locals [0, interior_count) are zone members
    int border_halves = 0;   // transit stream halves living in this world
    // Reconciliation scratch: transit traffic per *global* link this round.
    std::vector<double> transit_load;
    std::vector<net::LinkId> transit_touched;
    double round_wall_us = 0.0;

    explicit World(const obs::RecorderConfig& rc) : recorder(rc) {}
  };

  ShardedOrchestrator() : coordinator_(obs::RecorderConfig{}) {}

  void build_world(World& w, const ShardedBuild& build);
  void setup_transit(const ShardedBuild& build);
  int reconcile();
  void advance_all(sim::Time deadline, bool timed);

  Partition partition_;
  std::vector<std::unique_ptr<World>> worlds_;
  std::vector<TransitFlow> transit_;
  // Per global link: the worlds carrying a copy (zone, local id). Interior
  // links appear once, border links twice, halo-halo links never.
  struct LinkOwner {
    int zone = -1;
    net::LinkId local = net::kInvalidLink;
  };
  std::vector<std::array<LinkOwner, 2>> link_owners_;

  obs::Recorder coordinator_;
  net::MaxMinSolver border_solver_;
  std::vector<double> recon_caps_;         // indexed by global link id
  std::vector<std::uint32_t> caps_stamp_;  // per-pass fill guard
  std::uint32_t stamp_ = 0;

  ZonesConfig cfg_;
  sim::Duration duration_ = 0;
  sim::Time base_ = 0;  // sim time when rounds begin (after warmup)
  int rounds_total_ = 0;
  int round_ = 0;
  std::int64_t reconcile_total_ = 0;
  std::size_t skipped_transit_ = 0;  // border flows with no routable path
  std::unique_ptr<exec::Pool> pool_;
  bool started_ = false;
  bool finished_ = false;
  ShardedReport report_;
};

}  // namespace bass::zone
