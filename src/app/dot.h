// Graphviz export of application DAGs and placements — the inspection tool
// an operator reaches for when a placement looks wrong. Render with:
//   dot -Tsvg app.dot -o app.svg
#pragma once

#include <string>
#include <unordered_map>

#include "app/app_graph.h"

namespace bass::app {

// DOT source for the component DAG. Edge labels carry the bandwidth
// requirement; when `placement` is given, components are clustered by node
// and mesh-crossing edges are highlighted.
std::string to_dot(const AppGraph& app,
                   const std::unordered_map<ComponentId, net::NodeId>* placement =
                       nullptr);

}  // namespace bass::app
